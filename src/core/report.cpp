#include "dds/core/report.hpp"

namespace dds {

CsvTable intervalSeriesCsv(const RunResult& run) {
  CsvTable t;
  t.header = {"interval", "start_s",  "input_rate", "omega",
              "gamma",    "cost_usd", "active_vms", "cores"};
  t.rows.reserve(run.intervals().size());
  for (const auto& m : run.intervals()) {
    t.rows.push_back({static_cast<double>(m.index), m.start, m.input_rate,
                      m.omega, m.gamma, m.cost_cumulative,
                      static_cast<double>(m.active_vms),
                      static_cast<double>(m.allocated_cores)});
  }
  return t;
}

CsvTable summaryCsv(std::span<const ExperimentResult> results) {
  CsvTable t;
  t.header = {"omega",     "gamma",    "cost_usd",  "theta",
              "met",       "peak_vms", "peak_cores", "failures",
              "lost_msgs", "sigma"};
  t.rows.reserve(results.size());
  for (const auto& r : results) {
    t.rows.push_back({r.average_omega, r.average_gamma, r.total_cost,
                      r.theta, r.constraint_met ? 1.0 : 0.0,
                      static_cast<double>(r.peak_vms),
                      static_cast<double>(r.peak_cores),
                      static_cast<double>(r.vm_failures), r.messages_lost,
                      r.sigma});
  }
  return t;
}

TextTable summaryTable(std::span<const ExperimentResult> results) {
  TextTable table({"scheduler", "omega", "met", "gamma", "cost$", "theta",
                   "peak-VMs", "failures"});
  for (const auto& r : results) {
    table.addRow({r.scheduler_name, TextTable::num(r.average_omega),
                  r.constraint_met ? "yes" : "NO",
                  TextTable::num(r.average_gamma),
                  TextTable::num(r.total_cost, 2), TextTable::num(r.theta),
                  std::to_string(r.peak_vms),
                  std::to_string(r.vm_failures)});
  }
  return table;
}

}  // namespace dds
