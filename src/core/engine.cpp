#include "dds/core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/eventsim/event_simulator.hpp"
#include "dds/faults/fault_plan.hpp"
#include "dds/monitor/monitoring.hpp"
#include "dds/sim/simulator.hpp"
#include "dds/trace/trace_replayer.hpp"

namespace dds {

std::string toString(SimBackend backend) {
  return backend == SimBackend::Fluid ? "fluid" : "event";
}

namespace {

/// The fault-family knobs of `config`, as a FaultPlanConfig.
FaultPlanConfig faultPlanConfigOf(const ExperimentConfig& config) {
  FaultPlanConfig fc;
  fc.seed = config.seed ^ 0xfa117ull;
  fc.vm_mtbf_hours = config.faults.vm_mtbf_hours;
  fc.straggler_mtbf_hours = config.faults.straggler_mtbf_hours;
  fc.straggler_factor = config.faults.straggler_factor;
  fc.straggler_duration_s = config.faults.straggler_duration_s;
  fc.acquisition_failure_prob = config.faults.acquisition_failure_prob;
  // Validation rejects configs setting the delay under both fault.* and
  // elasticity.*; whichever is set feeds the same seed-deterministic draw.
  fc.provisioning_delay_s = config.faults.provisioning_delay_s > 0.0
                                ? config.faults.provisioning_delay_s
                                : config.elasticity.provisioning_delay_s;
  fc.provisioning_delay_per_core_s =
      config.elasticity.provisioning_delay_per_core_s;
  fc.spot_preemption_mtbf_hours = config.elasticity.spot_preemption_mtbf_h;
  fc.spot_notice_s = config.elasticity.spot_notice_s;
  fc.partition_mtbf_hours = config.faults.partition_mtbf_hours;
  fc.partition_duration_s = config.faults.partition_duration_s;
  return fc;
}

/// Seconds a PE's service pauses while `fraction` of its buffered state
/// (pe_state_mb megabytes total) migrates over the elasticity model's
/// migration bandwidth. Zero when migration cost is disabled.
double migrationDowntime(const ElasticityConfig& ec, double fraction) {
  if (!ec.migrationEnabled() || fraction <= 0.0) return 0.0;
  // MB -> megabits over Mbps gives seconds.
  return ec.pe_state_mb * fraction * 8.0 / ec.migration_bandwidth_mbps;
}

/// The resilience knobs of `config`, as scheduler ResilienceOptions.
ResilienceOptions resilienceOptionsOf(const ExperimentConfig& config) {
  ResilienceOptions ro;
  ro.acquisition_max_retries = config.resilience.acquisition_max_retries;
  ro.acquisition_backoff_s = config.resilience.acquisition_backoff_s;
  ro.straggler_threshold = config.resilience.quarantine_threshold;
  ro.straggler_probes = config.resilience.quarantine_probes;
  ro.graceful_degradation = config.resilience.graceful_degradation;
  return ro;
}

void require(std::vector<std::string>& errors, bool ok, const char* message) {
  if (!ok) errors.emplace_back(message);
}

}  // namespace

void WorkloadConfig::appendErrors(std::vector<std::string>& errors) const {
  require(errors, mean_rate > 0.0, "mean rate must be positive");
  require(errors, msg_size_bytes > 0.0, "message size must be positive");
}

bool FaultConfig::anyEnabled() const {
  return vm_mtbf_hours > 0.0 || straggler_mtbf_hours > 0.0 ||
         acquisition_failure_prob > 0.0 || provisioning_delay_s > 0.0 ||
         partition_mtbf_hours > 0.0;
}

void FaultConfig::appendErrors(std::vector<std::string>& errors) const {
  require(errors, vm_mtbf_hours >= 0.0, "MTBF must be non-negative");
  require(errors, straggler_mtbf_hours >= 0.0,
          "straggler MTBF must be non-negative");
  require(errors, straggler_factor >= 0.0 && straggler_factor < 1.0,
          "straggler factor must be in [0, 1)");
  require(errors, straggler_mtbf_hours <= 0.0 || straggler_duration_s > 0.0,
          "straggler duration must be positive");
  require(errors,
          acquisition_failure_prob >= 0.0 && acquisition_failure_prob < 1.0,
          "acquisition failure probability must be in [0, 1)");
  require(errors, provisioning_delay_s >= 0.0,
          "provisioning delay must be non-negative");
  require(errors, partition_mtbf_hours >= 0.0,
          "partition MTBF must be non-negative");
  require(errors, partition_mtbf_hours <= 0.0 || partition_duration_s > 0.0,
          "partition duration must be positive");
}

void ElasticityConfig::appendErrors(std::vector<std::string>& errors) const {
  require(errors, provisioning_delay_s >= 0.0,
          "elasticity provisioning delay must be non-negative");
  require(errors, provisioning_delay_per_core_s >= 0.0,
          "per-core provisioning delay must be non-negative");
  require(errors, spot_discount >= 0.0 && spot_discount < 1.0,
          "spot discount must be in [0, 1)");
  require(errors, spot_preemption_mtbf_h >= 0.0,
          "spot preemption MTBF must be non-negative");
  require(errors, spot_notice_s >= 0.0,
          "spot notice window must be non-negative");
  require(errors, spot_fraction >= 0.0 && spot_fraction <= 1.0,
          "spot fraction must be in [0, 1]");
  require(errors, spot_discount > 0.0 || spot_preemption_mtbf_h <= 0.0,
          "spot preemption requires a spot tier (set the spot discount)");
  require(errors, pe_state_mb >= 0.0,
          "per-PE state size must be non-negative");
  require(errors, migration_bandwidth_mbps > 0.0,
          "migration bandwidth must be positive");
}

void ResilienceConfig::appendErrors(std::vector<std::string>& errors) const {
  require(errors, acquisition_max_retries >= 1,
          "acquisition retries must be at least 1");
  require(errors, acquisition_backoff_s >= 0.0,
          "acquisition backoff must be non-negative");
  require(errors, quarantine_threshold >= 0.0 && quarantine_threshold < 1.0,
          "straggler threshold must be in [0, 1)");
  require(errors, quarantine_probes >= 1,
          "straggler probe count must be at least 1");
}

void ForecastConfig::appendErrors(std::vector<std::string>& errors) const {
  require(errors, horizon_intervals >= 1,
          "forecast horizon must be at least 1 interval");
  require(errors, ewma_alpha > 0.0 && ewma_alpha <= 1.0,
          "EWMA alpha must be in (0, 1]");
  require(errors, hw_alpha > 0.0 && hw_alpha <= 1.0,
          "Holt-Winters alpha must be in (0, 1]");
  require(errors, hw_beta >= 0.0 && hw_beta <= 1.0,
          "Holt-Winters beta must be in [0, 1]");
  require(errors, hw_gamma >= 0.0 && hw_gamma <= 1.0,
          "Holt-Winters gamma must be in [0, 1]");
  require(errors, hw_season_intervals >= 2,
          "Holt-Winters season must be at least 2 intervals");
  require(errors, preacquire_margin >= 0.0,
          "pre-acquisition margin must be non-negative");
}

std::vector<std::string> ExperimentConfig::validationErrors() const {
  std::vector<std::string> errors;
  require(errors, horizon_s > 0.0, "horizon must be positive");
  require(errors, interval_s > 0.0 && interval_s <= horizon_s,
          "interval must be positive and within the horizon");
  require(errors, omega_target > 0.0 && omega_target <= 1.0,
          "omega target out of range");
  require(errors, epsilon >= 0.0 && epsilon < 1.0, "epsilon out of range");
  require(errors, alternate_period >= 1, "alternate period must be >= 1");
  require(errors, resource_period >= 1, "resource period must be >= 1");
  require(errors,
          power_smoothing_alpha > 0.0 && power_smoothing_alpha <= 1.0,
          "smoothing alpha must be in (0, 1]");
  require(errors, placement_racks >= 0, "rack count must be non-negative");
  require(errors, max_queue_delay_s >= 0.0,
          "queue-delay SLA must be non-negative");
  try {
    (void)catalogByName(catalog);
  } catch (const PreconditionError& e) {
    errors.emplace_back(e.what());
  }
  workload.appendErrors(errors);
  faults.appendErrors(errors);
  elasticity.appendErrors(errors);
  resilience.appendErrors(errors);
  forecast.appendErrors(errors);
  require(errors, backend == SimBackend::Fluid || !faults.anyEnabled(),
          "fault injection is only supported by the fluid backend");
  require(errors, backend == SimBackend::Fluid || !forecast.enabled(),
          "rate forecasting is only supported by the fluid backend");
  require(errors,
          backend == SimBackend::Fluid ||
              (!elasticity.delaysEnabled() && !elasticity.spotEnabled()),
          "elasticity delays and the spot tier are only supported by the "
          "fluid backend");
  require(errors,
          !(faults.provisioning_delay_s > 0.0 && elasticity.delaysEnabled()),
          "set the provisioning delay under fault.* or elasticity.*, not "
          "both");
  return errors;
}

void ExperimentConfig::validate() const {
  const std::vector<std::string> errors = validationErrors();
  if (errors.empty()) return;
  std::ostringstream os;
  os << "invalid experiment config (" << errors.size() << " error"
     << (errors.size() == 1 ? "" : "s") << "): ";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    os << (i ? "; " : "") << errors[i];
  }
  throw PreconditionError(os.str());
}

double deriveSigma(const Dataflow& df, double mean_rate, SimTime horizon_s) {
  double gamma_min_sum = 0.0;
  for (const auto& pe : df.pes()) {
    gamma_min_sum += pe.relativeValue(pe.worstValueAlternate());
  }
  const double gamma_min =
      gamma_min_sum / static_cast<double>(df.peCount());
  const double gamma_max = 1.0;  // best-value alternates normalize to 1
  if (gamma_max - gamma_min < 1e-12) {
    // No dynamism in the graph: value is constant, so any positive sigma
    // only scales cost; normalize against the acceptable cost directly.
    return 1.0 / evaluationAcceptableCost(mean_rate, horizon_s);
  }
  // Acceptable-cost line through the origin: running the min-value
  // configuration is worth proportionally less, C_min = Gamma_min * C_max.
  // This reduces sigma to 1 / C_max — one unit of application value is
  // worth exactly the full acceptable budget.
  const double cost_at_max = evaluationAcceptableCost(mean_rate, horizon_s);
  const double cost_at_min = gamma_min * cost_at_max;
  return equivalenceFactor(gamma_max, gamma_min, cost_at_max, cost_at_min);
}

SimulationEngine::SimulationEngine(const Dataflow& dataflow,
                                   ExperimentConfig config)
    : SimulationEngine(dataflow, std::move(config), EngineArenas{}) {}

SimulationEngine::SimulationEngine(const Dataflow& dataflow,
                                   ExperimentConfig config,
                                   EngineArenas arenas)
    : dataflow_(&dataflow),
      config_(std::move(config)),
      arenas_(std::move(arenas)) {
  config_.validate();
  sigma_ = config_.sigma_override >= 0.0
               ? config_.sigma_override
               : deriveSigma(dataflow, config_.workload.mean_rate,
                             config_.horizon_s);
}

ExperimentResult SimulationEngine::run(SchedulerKind kind,
                                       obs::TraceSink* sink) const {
  const Dataflow& df = *dataflow_;
  const obs::Tracer tracer(sink);
  obs::MetricsRegistry registry;
  // The spot tier is a pure catalog extension: disabled, the catalog (and
  // with it every class id and plan) is byte-identical to the pre-spot
  // behavior. A substrate-provided catalog arena was resolved through
  // these same calls once per campaign instead of once per run.
  CloudProvider cloud(
      arenas_.catalog != nullptr
          ? CloudProvider(arenas_.catalog)
          : CloudProvider(config_.elasticity.spotEnabled()
                              ? withSpotTier(catalogByName(config_.catalog),
                                             config_.elasticity.spot_discount)
                              : catalogByName(config_.catalog)));
  cloud.setTracer(tracer);
  // Shared trace-pool arenas skip regeneration but keep the per-run
  // assignment RNG stream: overPools(pools(seed), seed) replays exactly
  // what futureGridLike(seed) would.
  TraceReplayer replayer =
      config_.workload.infra_variability
          ? (arenas_.trace_pools != nullptr
                 ? TraceReplayer::overPools(arenas_.trace_pools,
                                            config_.seed)
                 : TraceReplayer::futureGridLike(config_.seed))
          : TraceReplayer::ideal();
  PlacementConfig placement_cfg;
  placement_cfg.racks = std::max(config_.placement_racks, 1);
  const PlacementModel placement(placement_cfg, config_.seed ^ 0x9a7cull);

  // The fault plan reaches the run through exactly two seams: monitoring
  // (stragglers and partitions perturb what everyone observes — scheduler
  // and simulator alike) and the provider's tryAcquire (rejections and
  // provisioning lag). Schedulers never see the plan itself.
  const FaultPlan faults(faultPlanConfigOf(config_));
  cloud.setAcquisitionFaults(faults.perturbsAcquisition() ? &faults
                                                          : nullptr);
  cloud.setPreemptionModel(faults.perturbsSpot() ? &faults : nullptr);
  MonitoringService monitor(
      cloud, replayer,
      config_.placement_racks > 0 ? &placement : nullptr,
      faults.perturbsPerformance() ? &faults : nullptr);

  SimConfig sim_cfg;
  sim_cfg.msg_size_bytes = config_.workload.msg_size_bytes;
  sim_cfg.interval_s = config_.interval_s;
  sim_cfg.engine = config_.fluid_reference_engine
                       ? SimConfig::Engine::Reference
                       : SimConfig::Engine::Cached;

  ProbeHistory probes(monitor, config_.power_smoothing_alpha);
  SchedulerEnv env;
  env.dataflow = &df;
  env.cloud = &cloud;
  env.monitor = &monitor;
  if (config_.power_smoothing_alpha < 1.0) env.probes = &probes;
  env.sim_config = sim_cfg;
  env.omega_target = config_.omega_target;
  env.epsilon = config_.epsilon;
  env.tracer = tracer;
  env.metrics = &registry;
  env.plan_structure = arenas_.plan_structure;

  SchedulerTuning tuning;
  tuning.sigma = sigma_;
  tuning.horizon_s = config_.horizon_s;
  tuning.seed = config_.seed;
  tuning.alternate_period = config_.alternate_period;
  tuning.resource_period = config_.resource_period;
  tuning.cheapest_class_acquisition = config_.cheapest_class_acquisition;
  tuning.max_queue_delay_s = config_.max_queue_delay_s;
  tuning.spot_fraction = config_.elasticity.spotEnabled()
                             ? config_.elasticity.spot_fraction
                             : 0.0;
  tuning.resilience = resilienceOptionsOf(config_);
  tuning.preacquire_margin = config_.forecast.preacquire_margin;
  tuning.lookahead_alternates = config_.forecast.lookahead_alternates;
  // Pre-acquisition lead: the worst-case *mean* provisioning delay over
  // the catalog, so VMs ordered now are (in expectation) ready when the
  // forecast peak lands. Zero when delivery is instant — pre-acquisition
  // then fires only one resource period ahead.
  {
    const double base = config_.faults.provisioning_delay_s > 0.0
                            ? config_.faults.provisioning_delay_s
                            : config_.elasticity.provisioning_delay_s;
    int max_cores = 1;
    for (const auto& cls : cloud.catalog().classes()) {
      max_cores = std::max(max_cores, cls.cores);
    }
    tuning.preacquire_lead_s =
        base + config_.elasticity.provisioning_delay_per_core_s *
                   static_cast<double>(max_cores - 1);
  }

  std::unique_ptr<Scheduler> scheduler = makeScheduler(kind, env, tuning);

  // The header is the first line of every trace: it carries everything the
  // analyzer needs to recompute Theta and attribute events to intervals.
  if (tracer.enabled()) {
    tracer.emit(obs::RunHeaderEvent{.scheduler = scheduler->name(),
                                    .seed = config_.seed,
                                    .sigma = sigma_,
                                    .omega_target = config_.omega_target,
                                    .epsilon = config_.epsilon,
                                    .horizon_s = config_.horizon_s,
                                    .interval_s = config_.interval_s,
                                    .backend = toString(config_.backend)});
  }

  const auto profile =
      makeProfile(config_.workload.profile, config_.workload.mean_rate,
                  config_.horizon_s, config_.seed ^ 0x5bd1e995u);
  const IntervalClock clock(config_.interval_s, config_.horizon_s);

  // Initial deployment sees the estimated rate — the profile's value at t0.
  Deployment deployment = scheduler->deploy(profile->rate(0.0));

  if (config_.backend == SimBackend::Event) {
    EventSimConfig ev_cfg;
    ev_cfg.msg_size_bytes = config_.workload.msg_size_bytes;
    ev_cfg.interval_s = config_.interval_s;
    ev_cfg.horizon_s = config_.horizon_s;
    ev_cfg.seed = config_.seed ^ 0xe7e9ull;
    ev_cfg.engine = config_.event_reference_engine
                        ? EventSimConfig::Engine::Reference
                        : EventSimConfig::Engine::Cached;
    ev_cfg.pe_state_mb = config_.elasticity.pe_state_mb;
    ev_cfg.migration_bandwidth_mbps =
        config_.elasticity.migration_bandwidth_mbps;
    EventSimulator esim(df, cloud, monitor, ev_cfg);
    const EventSimResult er =
        esim.run(*profile, std::move(deployment), scheduler.get());

    ExperimentResult result;
    result.scheduler_name = scheduler->name();
    result.sigma = sigma_;
    result.run = er.intervals;
    for (const auto& m : er.intervals.intervals()) {
      result.peak_vms = std::max(result.peak_vms, m.active_vms);
      result.peak_cores = std::max(result.peak_cores, m.allocated_cores);
    }
    result.average_omega = result.run.averageOmega();
    result.average_gamma = result.run.averageGamma();
    result.total_cost = cloud.accumulatedCost(config_.horizon_s);
    result.theta = result.average_gamma - sigma_ * result.total_cost;
    result.constraint_met = result.run.meetsThroughputConstraint(
        config_.omega_target, config_.epsilon);
    result.recovery = computeRecoveryStats(
        result.run, config_.omega_target, config_.interval_s);
    result.resilience = scheduler->telemetry();
    result.messages_delivered = er.messages_delivered;
    result.latency_mean_s = er.latency.mean();
    if (!er.latency_samples.empty()) {
      result.latency_p95_s = er.latencyPercentile(95.0);
      result.latency_p99_s = er.latencyPercentile(99.0);
    }
    // The event simulator does not stream interval events; reconstruct
    // them post-hoc from its interval series. VM lifecycle events were
    // emitted live by the provider during the run, so in an event-backend
    // trace all interval records follow the VM records.
    if (tracer.enabled()) {
      double omega_sum = 0.0;
      std::int64_t n = 0;
      for (const auto& m : er.intervals.intervals()) {
        tracer.emit(obs::IntervalBeginEvent{.t = m.start,
                                            .interval = m.index,
                                            .input_rate = m.input_rate});
        omega_sum += m.omega;
        ++n;
        double processed = 0.0;
        double capacity = 0.0;
        double backlog = 0.0;
        for (const auto& pe : m.pe_stats) {
          processed += pe.processed_rate;
          capacity += pe.capacity_rate;
          backlog += pe.backlog_msgs;
        }
        const double rho =
            capacity > 0.0
                ? std::clamp(processed / capacity, 0.0, 1.0)
                : 0.0;
        tracer.emit(obs::IntervalEndEvent{
            .t = m.start + config_.interval_s,
            .interval = m.index,
            .omega = m.omega,
            .omega_bar = omega_sum / static_cast<double>(n),
            .gamma = m.gamma,
            .cost = m.cost_cumulative,
            .utilization = rho,
            .backlog_msgs = backlog,
            .active_vms = m.active_vms,
            .allocated_cores = m.allocated_cores});
        if (m.omega < config_.omega_target) {
          tracer.emit(obs::OmegaViolationEvent{
              .t = m.start + config_.interval_s,
              .interval = m.index,
              .omega = m.omega,
              .omega_target = config_.omega_target});
        }
      }
    }
    {
      obs::Histogram& h_omega = registry.histogram("interval.omega");
      obs::Histogram& h_gamma = registry.histogram("interval.gamma");
      obs::Histogram& h_rate = registry.histogram("interval.input_rate");
      for (const auto& m : er.intervals.intervals()) {
        h_omega.observe(m.omega);
        h_gamma.observe(m.gamma);
        h_rate.observe(m.input_rate);
        if (m.omega < config_.omega_target) {
          registry.counter("run.omega_violations").inc();
        }
      }
    }
    registry.gauge("run.intervals")
        .set(static_cast<double>(er.intervals.intervals().size()));
    registry.gauge("cloud.total_cost").set(result.total_cost);
    registry.counter("eventsim.arrivals").inc(er.counters.arrivals);
    registry.counter("eventsim.deliveries").inc(er.counters.deliveries);
    registry.counter("eventsim.completions").inc(er.counters.completions);
    registry.counter("eventsim.dispatches").inc(er.counters.dispatches);
    registry.counter("eventsim.route_refreshes")
        .inc(er.counters.route_refreshes);
    registry.counter("eventsim.core_index_rebuilds")
        .inc(er.counters.core_index_rebuilds);
    if (er.wall_seconds > 0.0) {
      registry.gauge("eventsim.events_per_s")
          .set(static_cast<double>(er.counters.drained()) / er.wall_seconds);
    }
    result.metrics = registry.snapshot();
    return result;
  }

  DataflowSimulator simulator(df, cloud, monitor, sim_cfg,
                              arenas_.fluid_layout);
  simulator.setTracer(tracer);

  ExperimentResult result;
  result.scheduler_name = scheduler->name();
  result.sigma = sigma_;

  obs::Histogram& h_omega = registry.histogram("interval.omega");
  obs::Histogram& h_gamma = registry.histogram("interval.gamma");
  obs::Histogram& h_rate = registry.histogram("interval.input_rate");

  double omega_sum = 0.0;
  double fluid_wall_s = 0.0;  ///< wall-clock inside simulator.step only.
  IntervalMetrics last{};
  // Rate forecasting (fluid-only; validation rejects it on the event
  // backend). Off, the forecaster stays null and schedulers see a null
  // forecast pointer — bit-identical to the reactive behaviour.
  std::unique_ptr<Forecaster> forecaster;
  if (config_.forecast.enabled()) {
    ForecastOptions fopts;
    fopts.ewma_alpha = config_.forecast.ewma_alpha;
    fopts.hw_alpha = config_.forecast.hw_alpha;
    fopts.hw_beta = config_.forecast.hw_beta;
    fopts.hw_gamma = config_.forecast.hw_gamma;
    fopts.hw_season_intervals = config_.forecast.hw_season_intervals;
    forecaster = makeForecaster(config_.forecast.model, fopts);
  }
  ForecastErrorTracker forecast_errors;
  std::vector<double> forecast_rates;
  // Per-VM "already announced" flags for the elasticity trace records;
  // indexed by VmId, grown lazily as instances appear.
  std::vector<bool> provisioning_announced;
  std::vector<bool> notice_announced;
  for (IntervalIndex i = 0; i < clock.intervalCount(); ++i) {
    const SimTime now = clock.startOf(i);
    if (tracer.enabled()) {
      tracer.emit(obs::IntervalBeginEvent{
          .t = now, .interval = i, .input_rate = profile->rate(now)});
    }
    // Provisioning-complete records: a delayed VM's capacity came online
    // since the last interval boundary.
    if (tracer.enabled() && faults.perturbsAcquisition()) {
      const auto& instances = cloud.instances();
      provisioning_announced.resize(instances.size(), false);
      for (const VmInstance& vm : instances) {
        if (provisioning_announced[vm.id().value()]) continue;
        if (vm.readyTime() <= vm.startTime()) {
          provisioning_announced[vm.id().value()] = true;
          continue;
        }
        if (vm.readyTime() > now || vm.readyTime() > vm.offTime()) continue;
        provisioning_announced[vm.id().value()] = true;
        tracer.emit(obs::ProvisioningCompleteEvent{
            .t = vm.readyTime(), .vm = vm.id().value()});
      }
    }
    // Preemption notices precede the reclamation itself: the provider
    // announces `spot_notice_s` ahead, and the scheduler's next
    // resource phase (this interval) sees preemptionImminent() flip.
    if (faults.perturbsSpot()) {
      const auto& instances = cloud.instances();
      notice_announced.resize(instances.size(), false);
      for (const VmInstance& vm : instances) {
        if (notice_announced[vm.id().value()] || !vm.isActive()) continue;
        if (!cloud.preemptionImminent(vm.id(), now)) continue;
        notice_announced[vm.id().value()] = true;
        if (tracer.enabled()) {
          tracer.emit(obs::PreemptionNoticeEvent{
              .t = now,
              .vm = vm.id().value(),
              .preempt_at = cloud.preemptionTimeOf(vm.id())});
        }
      }
    }
    // Crashes land before the adaptation step observes the world, so the
    // scheduler reacts to the reduced capacity this very interval.
    for (const FailureEvent& ev : faults.injectUpTo(cloud, now)) {
      ++result.vm_failures;
      registry.counter("run.vm_failures").inc();
      double lost_here = 0.0;
      for (const BacklogLoss& loss : ev.losses) {
        lost_here += simulator.dropBacklog(loss.pe, loss.fraction);
      }
      result.messages_lost += lost_here;
      if (tracer.enabled()) {
        tracer.emit(obs::FaultInjectionEvent{.t = now,
                                             .vm = ev.vm.value(),
                                             .family = "crash",
                                             .messages_lost = lost_here});
      }
    }
    // Spot reclamations work exactly like crashes (undrained backlog on
    // the reclaimed VM is lost) but bill under the preemption rule.
    for (const FailureEvent& ev : faults.injectPreemptionsUpTo(cloud, now)) {
      ++result.preemptions;
      registry.counter("run.preemptions").inc();
      double lost_here = 0.0;
      for (const BacklogLoss& loss : ev.losses) {
        lost_here += simulator.dropBacklog(loss.pe, loss.fraction);
      }
      result.messages_lost += lost_here;
      if (tracer.enabled()) {
        tracer.emit(obs::PreemptionEvent{.t = now,
                                         .vm = ev.vm.value(),
                                         .messages_lost = lost_here});
      }
    }
    if (env.probes != nullptr) probes.probe(now);
    if (i > 0) {
      ObservedState state;
      state.interval = i;
      state.now = now;
      // What monitoring measured during the previous interval; the
      // adaptation assumes t_{i+1} looks like t_i (§7.2).
      state.input_rate = profile->rate(clock.startOf(i - 1));
      state.average_omega = omega_sum / static_cast<double>(i);
      state.last_interval = &last;
      if (forecaster != nullptr) {
        // The model sees exactly what the scheduler sees: the rate
        // measured over the interval that just ended. forecast[0] is
        // then the one-step prediction of the current interval.
        forecaster->observe(state.input_rate);
        forecast_rates =
            forecaster->forecast(config_.forecast.horizon_intervals);
        forecast_errors.record(forecast_rates.front(), profile->rate(now));
        state.forecast = &forecast_rates;
        registry.counter("forecast.predictions").inc();
        if (tracer.enabled()) {
          tracer.emit(obs::ForecastEvent{.t = now,
                                         .interval = i,
                                         .model = forecaster->name(),
                                         .rates = forecast_rates});
        }
      }
      for (const MigrationEvent& ev :
           scheduler->adapt(state, deployment)) {
        simulator.migrateBacklog(ev.pe, ev.backlog_fraction);
        // Buffer migration is not free: the moved share's service pauses
        // while its state transfers (fluid model: lost capacity-seconds).
        const double downtime =
            migrationDowntime(config_.elasticity, ev.backlog_fraction);
        if (downtime > 0.0) {
          simulator.pauseService(ev.pe, downtime);
          if (tracer.enabled()) {
            tracer.emit(obs::MigrationBeginEvent{
                .t = now,
                .pe = ev.pe.value(),
                .backlog_fraction = ev.backlog_fraction,
                .downtime_s = downtime});
            tracer.emit(obs::MigrationEndEvent{.t = now + downtime,
                                               .pe = ev.pe.value()});
          }
        }
      }
    }
    {
      const auto wall_begin = std::chrono::steady_clock::now();
      last = simulator.step(i, profile->rate(now), deployment);
      fluid_wall_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_begin)
              .count();
    }
    omega_sum += last.omega;
    h_omega.observe(last.omega);
    h_gamma.observe(last.gamma);
    h_rate.observe(last.input_rate);
    if (last.omega < config_.omega_target) {
      registry.counter("run.omega_violations").inc();
      if (tracer.enabled()) {
        tracer.emit(obs::OmegaViolationEvent{
            .t = now + config_.interval_s,
            .interval = i,
            .omega = last.omega,
            .omega_target = config_.omega_target});
      }
    }
    result.peak_vms = std::max(result.peak_vms, last.active_vms);
    result.peak_cores = std::max(result.peak_cores, last.allocated_cores);
    result.run.add(last);
  }

  result.average_omega = result.run.averageOmega();
  result.average_gamma = result.run.averageGamma();
  result.total_cost = cloud.accumulatedCost(config_.horizon_s);
  // The stored per-interval cumulative cost already tracks this; keep the
  // final authoritative number from the provider.
  result.theta = result.average_gamma - sigma_ * result.total_cost;
  result.constraint_met = result.run.meetsThroughputConstraint(
      config_.omega_target, config_.epsilon);
  result.recovery = computeRecoveryStats(result.run, config_.omega_target,
                                         config_.interval_s);
  result.resilience = scheduler->telemetry();
  result.acquisition_rejections = cloud.rejectedAcquisitions();
  registry.gauge("run.intervals")
      .set(static_cast<double>(clock.intervalCount()));
  registry.gauge("run.messages_lost").set(result.messages_lost);
  registry.gauge("cloud.total_cost").set(result.total_cost);
  registry.gauge("cloud.vms_acquired")
      .set(static_cast<double>(cloud.instanceCount()));
  registry.gauge("cloud.acquisition_rejections")
      .set(static_cast<double>(cloud.rejectedAcquisitions()));
  if (forecaster != nullptr && forecast_errors.count() > 0) {
    registry.gauge("forecast.mape").set(forecast_errors.mape());
    registry.gauge("forecast.bias").set(forecast_errors.bias());
  }
  // Fluid-kernel health: ledger-image rebuilds are deterministic (the
  // cached kernel rebuilds per allocation-ledger generation, the
  // reference kernel once per interval); intervals/s is wall-clock and —
  // like every *_per_s gauge — stripped from timing-free campaign JSON.
  registry.counter("fluid.kernel_rebuilds").inc(simulator.kernelRebuilds());
  if (fluid_wall_s > 0.0) {
    registry.gauge("fluid.intervals_per_s")
        .set(static_cast<double>(clock.intervalCount()) / fluid_wall_s);
  }
  result.metrics = registry.snapshot();
  return result;
}

}  // namespace dds
