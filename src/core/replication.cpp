#include "dds/core/replication.hpp"

namespace dds {

ReplicatedResult runReplicated(const Dataflow& dataflow,
                               ExperimentConfig base, SchedulerKind kind,
                               std::size_t runs) {
  DDS_REQUIRE(runs >= 1, "need at least one run");
  ReplicatedResult out;
  out.runs = runs;
  for (std::size_t i = 0; i < runs; ++i) {
    ExperimentConfig cfg = base;
    cfg.seed = base.seed + i;
    const auto r = SimulationEngine(dataflow, cfg).run(kind);
    out.scheduler_name = r.scheduler_name;
    out.omega.add(r.average_omega);
    out.gamma.add(r.average_gamma);
    out.cost.add(r.total_cost);
    out.theta.add(r.theta);
    if (!r.constraint_met) ++out.constraint_violations;
  }
  return out;
}

}  // namespace dds
