#include "dds/obs/trace_reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "dds/common/error.hpp"

namespace dds::obs {

namespace {

// Minimal recursive-descent JSON parser — just enough for the trace
// records this module itself writes. Internal on purpose: the repo's
// public JSON surface stays emit-only (common/json).
struct JsonValue;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw IoError("trace JSON parse error at offset " +
                  std::to_string(pos_) + ": " + what);
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parseValue() {
    skipWs();
    const char c = peek();
    switch (c) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return JsonValue{parseString()};
      case 't':
        parseLiteral("true");
        return JsonValue{true};
      case 'f':
        parseLiteral("false");
        return JsonValue{false};
      case 'n':
        parseLiteral("null");
        return JsonValue{nullptr};
      default:
        return JsonValue{parseNumber()};
    }
  }

  void parseLiteral(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) {
      fail("invalid literal");
    }
    pos_ += lit.size();
  }

  JsonValue parseObject() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      obj->emplace_back(std::move(key), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue parseArray() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    while (true) {
      arr->push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const unsigned long code = std::strtoul(hex.c_str(), nullptr, 16);
          // Trace strings are ASCII; control characters round-trip,
          // anything else is preserved as a raw byte.
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  double parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonObject& obj, const std::string& key) {
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

[[noreturn]] void missing(const std::string& key) {
  throw IoError("trace record missing field: " + key);
}

const JsonValue& get(const JsonObject& obj, const std::string& key) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr) missing(key);
  return *v;
}

std::string getStr(const JsonObject& obj, const std::string& key) {
  const JsonValue& v = get(obj, key);
  if (const auto* s = std::get_if<std::string>(&v.v)) return *s;
  throw IoError("trace field is not a string: " + key);
}

// Numeric fields may carry the writer's non-finite string sentinels.
double getNum(const JsonObject& obj, const std::string& key) {
  const JsonValue& v = get(obj, key);
  if (const auto* d = std::get_if<double>(&v.v)) return *d;
  if (const auto* s = std::get_if<std::string>(&v.v)) {
    if (*s == "NaN") return std::numeric_limits<double>::quiet_NaN();
    if (*s == "Infinity") return std::numeric_limits<double>::infinity();
    if (*s == "-Infinity") return -std::numeric_limits<double>::infinity();
  }
  throw IoError("trace field is not a number: " + key);
}

std::int64_t getInt(const JsonObject& obj, const std::string& key) {
  return static_cast<std::int64_t>(getNum(obj, key));
}

std::uint32_t getId(const JsonObject& obj, const std::string& key) {
  return static_cast<std::uint32_t>(getNum(obj, key));
}

const JsonArray& getArr(const JsonObject& obj, const std::string& key) {
  const JsonValue& v = get(obj, key);
  if (const auto* a = std::get_if<std::shared_ptr<JsonArray>>(&v.v)) {
    return **a;
  }
  throw IoError("trace field is not an array: " + key);
}

TraceEvent buildEvent(const std::string& ev, const JsonObject& o) {
  if (ev == "run_header") {
    RunHeaderEvent e;
    e.scheduler = getStr(o, "scheduler");
    e.seed = static_cast<std::uint64_t>(getNum(o, "seed"));
    e.sigma = getNum(o, "sigma");
    e.omega_target = getNum(o, "omega_target");
    e.epsilon = getNum(o, "epsilon");
    e.horizon_s = getNum(o, "horizon_s");
    e.interval_s = getNum(o, "interval_s");
    e.backend = getStr(o, "backend");
    return e;
  }
  if (ev == "interval_begin") {
    IntervalBeginEvent e;
    e.t = getNum(o, "t");
    e.interval = getInt(o, "interval");
    e.input_rate = getNum(o, "input_rate");
    return e;
  }
  if (ev == "interval_end") {
    IntervalEndEvent e;
    e.t = getNum(o, "t");
    e.interval = getInt(o, "interval");
    e.omega = getNum(o, "omega");
    e.omega_bar = getNum(o, "omega_bar");
    e.gamma = getNum(o, "gamma");
    e.cost = getNum(o, "cost");
    e.utilization = getNum(o, "utilization");
    e.backlog_msgs = getNum(o, "backlog_msgs");
    e.active_vms = getInt(o, "active_vms");
    e.allocated_cores = getInt(o, "allocated_cores");
    return e;
  }
  if (ev == "vm_acquire") {
    VmAcquireEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.vm_class = getStr(o, "class");
    e.cores = getInt(o, "cores");
    e.price_per_hour = getNum(o, "price_per_hour");
    e.ready = getNum(o, "ready");
    return e;
  }
  if (ev == "vm_release") {
    VmReleaseEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.vm_class = getStr(o, "class");
    e.billed_cost = getNum(o, "billed_cost");
    return e;
  }
  if (ev == "acquisition_failure") {
    AcquisitionFailureEvent e;
    e.t = getNum(o, "t");
    e.vm_class = getStr(o, "class");
    return e;
  }
  if (ev == "core_alloc") {
    CoreAllocEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.pe = getId(o, "pe");
    e.delta = getInt(o, "delta");
    return e;
  }
  if (ev == "alternate_switch") {
    AlternateSwitchEvent e;
    e.t = getNum(o, "t");
    e.pe = getId(o, "pe");
    e.from = getId(o, "from");
    e.to = getId(o, "to");
    e.gamma_from = getNum(o, "gamma_from");
    e.gamma_to = getNum(o, "gamma_to");
    return e;
  }
  if (ev == "straggler_quarantine") {
    StragglerQuarantineEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.smoothed_ratio = getNum(o, "smoothed_ratio");
    e.evacuated_cores = getInt(o, "evacuated_cores");
    return e;
  }
  if (ev == "straggler_recovery") {
    StragglerRecoveryEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    return e;
  }
  if (ev == "fault_injection") {
    FaultInjectionEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.family = getStr(o, "family");
    e.messages_lost = getNum(o, "messages_lost");
    return e;
  }
  if (ev == "provisioning_complete") {
    ProvisioningCompleteEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    return e;
  }
  if (ev == "preemption_notice") {
    PreemptionNoticeEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.preempt_at = getNum(o, "preempt_at");
    return e;
  }
  if (ev == "preemption") {
    PreemptionEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.messages_lost = getNum(o, "messages_lost");
    return e;
  }
  if (ev == "migration_begin") {
    MigrationBeginEvent e;
    e.t = getNum(o, "t");
    e.pe = getId(o, "pe");
    e.backlog_fraction = getNum(o, "backlog_fraction");
    e.downtime_s = getNum(o, "downtime_s");
    return e;
  }
  if (ev == "migration_end") {
    MigrationEndEvent e;
    e.t = getNum(o, "t");
    e.pe = getId(o, "pe");
    return e;
  }
  if (ev == "omega_violation") {
    OmegaViolationEvent e;
    e.t = getNum(o, "t");
    e.interval = getInt(o, "interval");
    e.omega = getNum(o, "omega");
    e.omega_target = getNum(o, "omega_target");
    return e;
  }
  if (ev == "scheduler_decision") {
    SchedulerDecisionEvent e;
    e.t = getNum(o, "t");
    e.interval = getInt(o, "interval");
    e.phase = getStr(o, "phase");
    e.action = getStr(o, "action");
    e.omega = getNum(o, "omega");
    e.omega_bar = getNum(o, "omega_bar");
    e.theta = getNum(o, "theta");
    for (const JsonValue& item : getArr(o, "rejected")) {
      const auto* robj = std::get_if<std::shared_ptr<JsonObject>>(&item.v);
      if (robj == nullptr) {
        throw IoError("rejected plan entry is not an object");
      }
      RejectedPlan r;
      r.plan = getStr(**robj, "plan");
      r.theta = getNum(**robj, "theta");
      e.rejected.push_back(std::move(r));
    }
    return e;
  }
  throw IoError("unknown trace event type: " + ev);
}

}  // namespace

TraceEvent parseTraceEventJson(const std::string& line) {
  const JsonValue root = Parser(line).parse();
  const auto* obj = std::get_if<std::shared_ptr<JsonObject>>(&root.v);
  if (obj == nullptr) throw IoError("trace record is not a JSON object");
  return buildEvent(getStr(**obj, "ev"), **obj);
}

std::vector<TraceEvent> readTraceJsonl(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      events.push_back(parseTraceEventJson(line));
    } catch (const IoError& e) {
      throw IoError("trace line " + std::to_string(line_no) + ": " +
                    e.what());
    }
  }
  return events;
}

}  // namespace dds::obs
