#include "dds/obs/trace_reader.hpp"

#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "dds/common/error.hpp"
#include "dds/common/json_value.hpp"

namespace dds::obs {

namespace {

// JSON parsing lives in common/json_value; this module keeps only the
// trace-specific field accessors (non-finite sentinels, id widths) and
// the per-event-type record builders.
[[noreturn]] void missing(const std::string& key) {
  throw IoError("trace record missing field: " + key);
}

const JsonValue& get(const JsonObject& obj, const std::string& key) {
  const JsonValue* v = jsonFind(obj, key);
  if (v == nullptr) missing(key);
  return *v;
}

std::string getStr(const JsonObject& obj, const std::string& key) {
  const JsonValue& v = get(obj, key);
  if (const auto* s = v.asString()) return *s;
  throw IoError("trace field is not a string: " + key);
}

// Numeric fields may carry the writer's non-finite string sentinels.
double getNum(const JsonObject& obj, const std::string& key) {
  const JsonValue& v = get(obj, key);
  if (const auto* d = v.asNumber()) return *d;
  if (const auto* s = v.asString()) {
    if (*s == "NaN") return std::numeric_limits<double>::quiet_NaN();
    if (*s == "Infinity") return std::numeric_limits<double>::infinity();
    if (*s == "-Infinity") return -std::numeric_limits<double>::infinity();
  }
  throw IoError("trace field is not a number: " + key);
}

std::int64_t getInt(const JsonObject& obj, const std::string& key) {
  return static_cast<std::int64_t>(getNum(obj, key));
}

std::uint32_t getId(const JsonObject& obj, const std::string& key) {
  return static_cast<std::uint32_t>(getNum(obj, key));
}

const JsonArray& getArr(const JsonObject& obj, const std::string& key) {
  const JsonValue& v = get(obj, key);
  if (const auto* a = v.asArray()) return *a;
  throw IoError("trace field is not an array: " + key);
}

TraceEvent buildEvent(const std::string& ev, const JsonObject& o) {
  if (ev == "run_header") {
    RunHeaderEvent e;
    e.scheduler = getStr(o, "scheduler");
    e.seed = static_cast<std::uint64_t>(getNum(o, "seed"));
    e.sigma = getNum(o, "sigma");
    e.omega_target = getNum(o, "omega_target");
    e.epsilon = getNum(o, "epsilon");
    e.horizon_s = getNum(o, "horizon_s");
    e.interval_s = getNum(o, "interval_s");
    e.backend = getStr(o, "backend");
    return e;
  }
  if (ev == "interval_begin") {
    IntervalBeginEvent e;
    e.t = getNum(o, "t");
    e.interval = getInt(o, "interval");
    e.input_rate = getNum(o, "input_rate");
    return e;
  }
  if (ev == "interval_end") {
    IntervalEndEvent e;
    e.t = getNum(o, "t");
    e.interval = getInt(o, "interval");
    e.omega = getNum(o, "omega");
    e.omega_bar = getNum(o, "omega_bar");
    e.gamma = getNum(o, "gamma");
    e.cost = getNum(o, "cost");
    e.utilization = getNum(o, "utilization");
    e.backlog_msgs = getNum(o, "backlog_msgs");
    e.active_vms = getInt(o, "active_vms");
    e.allocated_cores = getInt(o, "allocated_cores");
    return e;
  }
  if (ev == "vm_acquire") {
    VmAcquireEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.vm_class = getStr(o, "class");
    e.cores = getInt(o, "cores");
    e.price_per_hour = getNum(o, "price_per_hour");
    e.ready = getNum(o, "ready");
    return e;
  }
  if (ev == "vm_release") {
    VmReleaseEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.vm_class = getStr(o, "class");
    e.billed_cost = getNum(o, "billed_cost");
    return e;
  }
  if (ev == "acquisition_failure") {
    AcquisitionFailureEvent e;
    e.t = getNum(o, "t");
    e.vm_class = getStr(o, "class");
    return e;
  }
  if (ev == "core_alloc") {
    CoreAllocEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.pe = getId(o, "pe");
    e.delta = getInt(o, "delta");
    return e;
  }
  if (ev == "alternate_switch") {
    AlternateSwitchEvent e;
    e.t = getNum(o, "t");
    e.pe = getId(o, "pe");
    e.from = getId(o, "from");
    e.to = getId(o, "to");
    e.gamma_from = getNum(o, "gamma_from");
    e.gamma_to = getNum(o, "gamma_to");
    return e;
  }
  if (ev == "straggler_quarantine") {
    StragglerQuarantineEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.smoothed_ratio = getNum(o, "smoothed_ratio");
    e.evacuated_cores = getInt(o, "evacuated_cores");
    return e;
  }
  if (ev == "straggler_recovery") {
    StragglerRecoveryEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    return e;
  }
  if (ev == "fault_injection") {
    FaultInjectionEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.family = getStr(o, "family");
    e.messages_lost = getNum(o, "messages_lost");
    return e;
  }
  if (ev == "provisioning_complete") {
    ProvisioningCompleteEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    return e;
  }
  if (ev == "preemption_notice") {
    PreemptionNoticeEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.preempt_at = getNum(o, "preempt_at");
    return e;
  }
  if (ev == "preemption") {
    PreemptionEvent e;
    e.t = getNum(o, "t");
    e.vm = getId(o, "vm");
    e.messages_lost = getNum(o, "messages_lost");
    return e;
  }
  if (ev == "migration_begin") {
    MigrationBeginEvent e;
    e.t = getNum(o, "t");
    e.pe = getId(o, "pe");
    e.backlog_fraction = getNum(o, "backlog_fraction");
    e.downtime_s = getNum(o, "downtime_s");
    return e;
  }
  if (ev == "migration_end") {
    MigrationEndEvent e;
    e.t = getNum(o, "t");
    e.pe = getId(o, "pe");
    return e;
  }
  if (ev == "omega_violation") {
    OmegaViolationEvent e;
    e.t = getNum(o, "t");
    e.interval = getInt(o, "interval");
    e.omega = getNum(o, "omega");
    e.omega_target = getNum(o, "omega_target");
    return e;
  }
  if (ev == "scheduler_decision") {
    SchedulerDecisionEvent e;
    e.t = getNum(o, "t");
    e.interval = getInt(o, "interval");
    e.phase = getStr(o, "phase");
    e.action = getStr(o, "action");
    e.omega = getNum(o, "omega");
    e.omega_bar = getNum(o, "omega_bar");
    e.theta = getNum(o, "theta");
    for (const JsonValue& item : getArr(o, "rejected")) {
      const JsonObject* robj = item.asObject();
      if (robj == nullptr) {
        throw IoError("rejected plan entry is not an object");
      }
      RejectedPlan r;
      r.plan = getStr(*robj, "plan");
      r.theta = getNum(*robj, "theta");
      e.rejected.push_back(std::move(r));
    }
    return e;
  }
  if (ev == "forecast") {
    ForecastEvent e;
    e.t = getNum(o, "t");
    e.interval = getInt(o, "interval");
    e.model = getStr(o, "model");
    for (const JsonValue& item : getArr(o, "rates")) {
      const double* d = item.asNumber();
      if (d == nullptr) throw IoError("forecast rate is not a number");
      e.rates.push_back(*d);
    }
    return e;
  }
  if (ev == "preacquire") {
    PreAcquireEvent e;
    e.t = getNum(o, "t");
    e.interval = getInt(o, "interval");
    e.peak_interval = getInt(o, "peak_interval");
    e.peak_rate = getNum(o, "peak_rate");
    e.lead_s = getNum(o, "lead_s");
    e.vms = getInt(o, "vms");
    e.ready_by = getNum(o, "ready_by");
    return e;
  }
  throw IoError("unknown trace event type: " + ev);
}

}  // namespace

TraceEvent parseTraceEventJson(const std::string& line) {
  const JsonValue root = parseJson(line);
  const JsonObject* obj = root.asObject();
  if (obj == nullptr) throw IoError("trace record is not a JSON object");
  return buildEvent(getStr(*obj, "ev"), *obj);
}

std::vector<TraceEvent> readTraceJsonl(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      events.push_back(parseTraceEventJson(line));
    } catch (const IoError& e) {
      throw IoError("trace line " + std::to_string(line_no) + ": " +
                    e.what());
    }
  }
  return events;
}

}  // namespace dds::obs
