#include "dds/obs/trace_event.hpp"

#include "dds/common/json.hpp"
#include "dds/obs/jsonl_sink.hpp"

namespace dds::obs {

namespace {

// Wire names double as the "ev" discriminator TraceReader dispatches
// on; changing one is a trace-format break.
std::string_view wireName(const RunHeaderEvent&) { return "run_header"; }
std::string_view wireName(const IntervalBeginEvent&) {
  return "interval_begin";
}
std::string_view wireName(const IntervalEndEvent&) { return "interval_end"; }
std::string_view wireName(const VmAcquireEvent&) { return "vm_acquire"; }
std::string_view wireName(const VmReleaseEvent&) { return "vm_release"; }
std::string_view wireName(const AcquisitionFailureEvent&) {
  return "acquisition_failure";
}
std::string_view wireName(const CoreAllocEvent&) { return "core_alloc"; }
std::string_view wireName(const AlternateSwitchEvent&) {
  return "alternate_switch";
}
std::string_view wireName(const StragglerQuarantineEvent&) {
  return "straggler_quarantine";
}
std::string_view wireName(const StragglerRecoveryEvent&) {
  return "straggler_recovery";
}
std::string_view wireName(const FaultInjectionEvent&) {
  return "fault_injection";
}
std::string_view wireName(const ProvisioningCompleteEvent&) {
  return "provisioning_complete";
}
std::string_view wireName(const PreemptionNoticeEvent&) {
  return "preemption_notice";
}
std::string_view wireName(const PreemptionEvent&) { return "preemption"; }
std::string_view wireName(const MigrationBeginEvent&) {
  return "migration_begin";
}
std::string_view wireName(const MigrationEndEvent&) {
  return "migration_end";
}
std::string_view wireName(const OmegaViolationEvent&) {
  return "omega_violation";
}
std::string_view wireName(const SchedulerDecisionEvent&) {
  return "scheduler_decision";
}
std::string_view wireName(const ForecastEvent&) { return "forecast"; }
std::string_view wireName(const PreAcquireEvent&) { return "preacquire"; }

JsonWriter makeLineWriter() {
  return JsonWriter{{.style = JsonWriter::Style::Compact,
                     .non_finite =
                         JsonWriter::NonFinitePolicy::StringSentinel}};
}

void writeBody(JsonWriter& w, const RunHeaderEvent& e) {
  w.key("scheduler").value(e.scheduler);
  w.key("seed").value(e.seed);
  w.key("sigma").value(e.sigma);
  w.key("omega_target").value(e.omega_target);
  w.key("epsilon").value(e.epsilon);
  w.key("horizon_s").value(e.horizon_s);
  w.key("interval_s").value(e.interval_s);
  w.key("backend").value(e.backend);
}

void writeBody(JsonWriter& w, const IntervalBeginEvent& e) {
  w.key("t").value(e.t);
  w.key("interval").value(e.interval);
  w.key("input_rate").value(e.input_rate);
}

void writeBody(JsonWriter& w, const IntervalEndEvent& e) {
  w.key("t").value(e.t);
  w.key("interval").value(e.interval);
  w.key("omega").value(e.omega);
  w.key("omega_bar").value(e.omega_bar);
  w.key("gamma").value(e.gamma);
  w.key("cost").value(e.cost);
  w.key("utilization").value(e.utilization);
  w.key("backlog_msgs").value(e.backlog_msgs);
  w.key("active_vms").value(e.active_vms);
  w.key("allocated_cores").value(e.allocated_cores);
}

void writeBody(JsonWriter& w, const VmAcquireEvent& e) {
  w.key("t").value(e.t);
  w.key("vm").value(std::uint64_t{e.vm});
  w.key("class").value(e.vm_class);
  w.key("cores").value(e.cores);
  w.key("price_per_hour").value(e.price_per_hour);
  w.key("ready").value(e.ready);
}

void writeBody(JsonWriter& w, const VmReleaseEvent& e) {
  w.key("t").value(e.t);
  w.key("vm").value(std::uint64_t{e.vm});
  w.key("class").value(e.vm_class);
  w.key("billed_cost").value(e.billed_cost);
}

void writeBody(JsonWriter& w, const AcquisitionFailureEvent& e) {
  w.key("t").value(e.t);
  w.key("class").value(e.vm_class);
}

void writeBody(JsonWriter& w, const CoreAllocEvent& e) {
  w.key("t").value(e.t);
  w.key("vm").value(std::uint64_t{e.vm});
  w.key("pe").value(std::uint64_t{e.pe});
  w.key("delta").value(e.delta);
}

void writeBody(JsonWriter& w, const AlternateSwitchEvent& e) {
  w.key("t").value(e.t);
  w.key("pe").value(std::uint64_t{e.pe});
  w.key("from").value(std::uint64_t{e.from});
  w.key("to").value(std::uint64_t{e.to});
  w.key("gamma_from").value(e.gamma_from);
  w.key("gamma_to").value(e.gamma_to);
}

void writeBody(JsonWriter& w, const StragglerQuarantineEvent& e) {
  w.key("t").value(e.t);
  w.key("vm").value(std::uint64_t{e.vm});
  w.key("smoothed_ratio").value(e.smoothed_ratio);
  w.key("evacuated_cores").value(e.evacuated_cores);
}

void writeBody(JsonWriter& w, const StragglerRecoveryEvent& e) {
  w.key("t").value(e.t);
  w.key("vm").value(std::uint64_t{e.vm});
}

void writeBody(JsonWriter& w, const FaultInjectionEvent& e) {
  w.key("t").value(e.t);
  w.key("vm").value(std::uint64_t{e.vm});
  w.key("family").value(e.family);
  w.key("messages_lost").value(e.messages_lost);
}

void writeBody(JsonWriter& w, const ProvisioningCompleteEvent& e) {
  w.key("t").value(e.t);
  w.key("vm").value(std::uint64_t{e.vm});
}

void writeBody(JsonWriter& w, const PreemptionNoticeEvent& e) {
  w.key("t").value(e.t);
  w.key("vm").value(std::uint64_t{e.vm});
  w.key("preempt_at").value(e.preempt_at);
}

void writeBody(JsonWriter& w, const PreemptionEvent& e) {
  w.key("t").value(e.t);
  w.key("vm").value(std::uint64_t{e.vm});
  w.key("messages_lost").value(e.messages_lost);
}

void writeBody(JsonWriter& w, const MigrationBeginEvent& e) {
  w.key("t").value(e.t);
  w.key("pe").value(std::uint64_t{e.pe});
  w.key("backlog_fraction").value(e.backlog_fraction);
  w.key("downtime_s").value(e.downtime_s);
}

void writeBody(JsonWriter& w, const MigrationEndEvent& e) {
  w.key("t").value(e.t);
  w.key("pe").value(std::uint64_t{e.pe});
}

void writeBody(JsonWriter& w, const OmegaViolationEvent& e) {
  w.key("t").value(e.t);
  w.key("interval").value(e.interval);
  w.key("omega").value(e.omega);
  w.key("omega_target").value(e.omega_target);
}

void writeBody(JsonWriter& w, const SchedulerDecisionEvent& e) {
  w.key("t").value(e.t);
  w.key("interval").value(e.interval);
  w.key("phase").value(e.phase);
  w.key("action").value(e.action);
  w.key("omega").value(e.omega);
  w.key("omega_bar").value(e.omega_bar);
  w.key("theta").value(e.theta);
  w.key("rejected").beginArray();
  for (const RejectedPlan& r : e.rejected) {
    w.beginObject();
    w.key("plan").value(r.plan);
    w.key("theta").value(r.theta);
    w.endObject();
  }
  w.endArray();
}

void writeBody(JsonWriter& w, const ForecastEvent& e) {
  w.key("t").value(e.t);
  w.key("interval").value(e.interval);
  w.key("model").value(e.model);
  w.key("rates").beginArray();
  for (const double r : e.rates) w.value(r);
  w.endArray();
}

void writeBody(JsonWriter& w, const PreAcquireEvent& e) {
  w.key("t").value(e.t);
  w.key("interval").value(e.interval);
  w.key("peak_interval").value(e.peak_interval);
  w.key("peak_rate").value(e.peak_rate);
  w.key("lead_s").value(e.lead_s);
  w.key("vms").value(e.vms);
  w.key("ready_by").value(e.ready_by);
}

}  // namespace

std::string_view traceEventName(const TraceEvent& e) {
  return std::visit([](const auto& ev) { return wireName(ev); }, e);
}

SimTime traceEventTime(const TraceEvent& e) {
  return std::visit(
      [](const auto& ev) -> SimTime {
        if constexpr (std::is_same_v<std::decay_t<decltype(ev)>,
                                     RunHeaderEvent>) {
          return 0.0;
        } else {
          return ev.t;
        }
      },
      e);
}

std::string traceEventJson(const TraceEvent& event) {
  JsonWriter w = makeLineWriter();
  w.beginObject();
  w.key("ev").value(std::string(traceEventName(event)));
  std::visit([&w](const auto& ev) { writeBody(w, ev); }, event);
  w.endObject();
  return w.str();
}

}  // namespace dds::obs
