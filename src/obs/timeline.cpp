#include "dds/obs/timeline.hpp"

#include <algorithm>
#include <cmath>

namespace dds::obs {

namespace {

// Interval a discrete event at time t belongs to. Events emitted
// exactly on a boundary (the common case: adaptation runs at interval
// start) attribute to the interval that begins there.
std::int64_t intervalOf(SimTime t, double interval_s) {
  if (interval_s <= 0.0) return 0;
  return static_cast<std::int64_t>(std::floor(t / interval_s + 1e-9));
}

struct Fold {
  TraceAnalysis out;
  std::map<std::int64_t, TimelineRow> rows;
  double omega_sum = 0.0;
  double gamma_sum = 0.0;

  TimelineRow& row(std::int64_t interval) {
    TimelineRow& r = rows[interval];
    r.interval = interval;
    return r;
  }

  TimelineRow& rowAt(SimTime t) {
    return row(intervalOf(t, out.has_header ? out.header.interval_s : 0.0));
  }

  void operator()(const RunHeaderEvent& e) {
    out.header = e;
    out.has_header = true;
  }

  void operator()(const IntervalBeginEvent& e) {
    TimelineRow& r = row(e.interval);
    r.t = e.t;
    r.input_rate = e.input_rate;
  }

  void operator()(const IntervalEndEvent& e) {
    TimelineRow& r = row(e.interval);
    r.omega = e.omega;
    r.omega_bar = e.omega_bar;
    r.gamma = e.gamma;
    r.cost = e.cost;
    r.utilization = e.utilization;
    r.backlog_msgs = e.backlog_msgs;
    r.active_vms = e.active_vms;
    r.allocated_cores = e.allocated_cores;
    omega_sum += e.omega;
    gamma_sum += e.gamma;
    out.final_cost = e.cost;
    out.peak_vms =
        std::max(out.peak_vms, static_cast<double>(e.active_vms));
    out.peak_cores =
        std::max(out.peak_cores, static_cast<double>(e.allocated_cores));
  }

  void operator()(const VmAcquireEvent& e) { ++rowAt(e.t).vm_acquires; }
  void operator()(const VmReleaseEvent& e) { ++rowAt(e.t).vm_releases; }

  void operator()(const AcquisitionFailureEvent& e) {
    ++rowAt(e.t).acquisition_failures;
  }

  void operator()(const CoreAllocEvent&) {}

  void operator()(const AlternateSwitchEvent& e) {
    ++rowAt(e.t).alternate_switches;
  }

  void operator()(const StragglerQuarantineEvent& e) {
    ++rowAt(e.t).quarantines;
  }

  void operator()(const StragglerRecoveryEvent&) {}

  void operator()(const FaultInjectionEvent& e) { ++rowAt(e.t).faults; }

  void operator()(const ProvisioningCompleteEvent& e) {
    ++rowAt(e.t).provisioning_completions;
  }

  void operator()(const PreemptionNoticeEvent& e) {
    ++rowAt(e.t).preemption_notices;
  }

  void operator()(const PreemptionEvent& e) { ++rowAt(e.t).preemptions; }

  void operator()(const MigrationBeginEvent& e) { ++rowAt(e.t).migrations; }

  void operator()(const MigrationEndEvent&) {}

  void operator()(const OmegaViolationEvent& e) {
    row(e.interval).violated = true;
    ++out.violations;
  }

  void operator()(const SchedulerDecisionEvent& e) {
    ++row(e.interval).decisions;
  }

  void operator()(const ForecastEvent& e) {
    out.forecast_model = e.model;
    if (e.rates.empty()) return;
    TimelineRow& r = row(e.interval);
    r.predicted_rate = e.rates.front();
    r.has_prediction = true;
  }

  void operator()(const PreAcquireEvent& e) {
    ++row(e.interval).preacquires;
    out.preacquires.push_back({.interval = e.interval,
                               .peak_interval = e.peak_interval,
                               .peak_rate = e.peak_rate,
                               .lead_s = e.lead_s,
                               .vms = e.vms,
                               .ready_by = e.ready_by,
                               .beat_peak = false});
  }
};

/// Near-zero realized rates are excluded from MAPE (the relative error
/// is unbounded there); bias keeps every joined sample.
constexpr double kMapeRateFloor = 1e-6;

}  // namespace

TraceAnalysis analyzeTrace(const std::vector<TraceEvent>& events) {
  Fold fold;
  for (const TraceEvent& event : events) {
    ++fold.out.event_counts[std::string(traceEventName(event))];
    std::visit(fold, event);
  }
  for (auto& [interval, r] : fold.rows) {
    fold.out.rows.push_back(r);
  }
  // std::map iteration is already interval-ordered.
  const auto n = static_cast<double>(
      fold.out.event_counts.count("interval_end") != 0
          ? fold.out.event_counts.at("interval_end")
          : 0);
  if (n > 0.0) {
    fold.out.average_omega = fold.omega_sum / n;
    fold.out.average_gamma = fold.gamma_sum / n;
  }
  fold.out.theta = fold.out.average_gamma -
                   (fold.out.has_header ? fold.out.header.sigma : 0.0) *
                       fold.out.final_cost;

  // Elasticity summary: episodes are maximal runs of violated intervals.
  const double interval_s =
      fold.out.has_header ? fold.out.header.interval_s : 0.0;
  std::vector<double> episodes;
  std::int64_t streak = 0;
  std::int64_t violated_intervals = 0;
  for (const TimelineRow& r : fold.out.rows) {
    if (r.violated) {
      ++streak;
      ++violated_intervals;
    } else if (streak > 0) {
      episodes.push_back(static_cast<double>(streak) * interval_s);
      streak = 0;
    }
  }
  if (streak > 0) {
    episodes.push_back(static_cast<double>(streak) * interval_s);
  }
  fold.out.slo_violation_s =
      static_cast<double>(violated_intervals) * interval_s;
  fold.out.recovery_episodes = static_cast<std::int64_t>(episodes.size());
  if (!episodes.empty()) {
    double sum = 0.0;
    for (const double e : episodes) sum += e;
    fold.out.mean_recovery_s = sum / static_cast<double>(episodes.size());
    std::sort(episodes.begin(), episodes.end());
    const double rank =
        0.95 * static_cast<double>(episodes.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    fold.out.p95_recovery_s =
        episodes[lo] + (episodes[hi] - episodes[lo]) * frac;
  }

  // Forecast accuracy: join each interval's one-step prediction with
  // the realized input rate the interval_begin event recorded.
  double ape_sum = 0.0;
  double bias_sum = 0.0;
  std::int64_t mape_samples = 0;
  for (const TimelineRow& r : fold.out.rows) {
    if (!r.has_prediction) continue;
    ++fold.out.forecast_samples;
    bias_sum += r.predicted_rate - r.input_rate;
    if (r.input_rate > kMapeRateFloor) {
      ape_sum += std::abs(r.predicted_rate - r.input_rate) / r.input_rate;
      ++mape_samples;
    }
  }
  if (fold.out.forecast_samples > 0) {
    fold.out.forecast_bias =
        bias_sum / static_cast<double>(fold.out.forecast_samples);
  }
  if (mape_samples > 0) {
    fold.out.forecast_mape = ape_sum / static_cast<double>(mape_samples);
  }
  for (PreAcquireRecord& p : fold.out.preacquires) {
    p.beat_peak =
        p.ready_by <= static_cast<double>(p.peak_interval) * interval_s;
    ++(p.beat_peak ? fold.out.preacquires_beat
                   : fold.out.preacquires_missed);
  }
  return fold.out;
}

}  // namespace dds::obs
