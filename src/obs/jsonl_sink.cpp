#include "dds/obs/jsonl_sink.hpp"

#include "dds/common/error.hpp"

namespace dds::obs {

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path,
                                             std::ios::out |
                                                 std::ios::trunc |
                                                 std::ios::binary)),
      out_(owned_.get()) {
  if (!owned_->is_open()) {
    throw IoError("cannot open trace file: " + path);
  }
}

void JsonlTraceSink::emit(const TraceEvent& event) {
  *out_ << traceEventJson(event) << '\n';
  ++count_;
}

}  // namespace dds::obs
