#include "dds/obs/metrics_registry.hpp"

#include <algorithm>

namespace dds::obs {

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::Counter;
    s.value = static_cast<double>(c.value());
    s.count = c.value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::Gauge;
    s.value = g.value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::Histogram;
    s.count = h.stats().count();
    s.mean = h.stats().mean();
    s.min = h.stats().min();
    s.max = h.stats().max();
    s.p50 = h.percentile(50.0);
    s.p95 = h.percentile(95.0);
    s.p99 = h.percentile(99.0);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace dds::obs
