#include "dds/eventsim/event_simulator.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <sstream>

#include "dds/common/time.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {

void EventSimConfig::validate() const {
  DDS_REQUIRE(msg_size_bytes > 0.0, "message size must be positive");
  DDS_REQUIRE(interval_s > 0.0, "interval must be positive");
  DDS_REQUIRE(horizon_s >= interval_s, "horizon shorter than one interval");
  DDS_REQUIRE(max_latency_samples > 0, "latency sample cap must be > 0");
  DDS_REQUIRE(pe_state_mb >= 0.0, "PE state size must be non-negative");
  DDS_REQUIRE(migration_bandwidth_mbps > 0.0,
              "migration bandwidth must be positive");
}

double EventSimResult::latencyPercentile(double p) const {
  DDS_REQUIRE(!latency_samples.empty(), "no latency samples recorded");
  return percentile(latency_samples, p);
}

PeId EventSimResult::worstQueueingPe() const {
  std::size_t worst = 0;
  bool found = false;
  for (std::size_t i = 0; i < pe_queue_wait.size(); ++i) {
    if (pe_queue_wait[i].count() == 0) continue;
    if (!found || pe_queue_wait[i].mean() > pe_queue_wait[worst].mean()) {
      worst = i;
      found = true;
    }
  }
  return found ? PeId(static_cast<PeId::value_type>(worst)) : PeId(0);
}

std::string fingerprint(const EventSimResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  const auto stats = [&os](const RunningStats& s) {
    os << s.count() << ' ' << s.mean() << ' ' << s.variance() << ' '
       << s.min() << ' ' << s.max() << '\n';
  };
  os << r.messages_injected << ' ' << r.messages_delivered << '\n';
  os << r.counters.arrivals << ' ' << r.counters.deliveries << ' '
     << r.counters.completions << ' ' << r.counters.dispatches << '\n';
  stats(r.latency);
  os << r.latency_samples.size() << '\n';
  for (const double v : r.latency_samples) os << v << ' ';
  os << '\n';
  for (const auto& w : r.pe_queue_wait) stats(w);
  for (const auto& m : r.intervals.intervals()) {
    os << m.index << ' ' << m.start << ' ' << m.input_rate << ' ' << m.omega
       << ' ' << m.gamma << ' ' << m.cost_cumulative << ' ' << m.active_vms
       << ' ' << m.allocated_cores << '\n';
    for (const auto& ps : m.pe_stats) {
      os << ps.arrival_rate << ' ' << ps.offered_rate << ' '
         << ps.processed_rate << ' ' << ps.output_rate << ' '
         << ps.capacity_rate << ' ' << ps.relative_throughput << ' '
         << ps.backlog_msgs << ' ' << ps.allocated_cores << '\n';
    }
  }
  return os.str();
}

EventSimulator::EventSimulator(const Dataflow& df, CloudProvider& cloud,
                               const MonitoringService& mon,
                               EventSimConfig cfg)
    : df_(&df), cloud_(&cloud), mon_(&mon), cfg_(cfg), power_(mon) {
  cfg_.validate();
}

// ---------------------------------------------------------------------------
// Shared model logic.
// ---------------------------------------------------------------------------

void EventSimulator::dispatchIdleCores(PeId pe, SimTime now,
                                       const Deployment& dep) {
  // Migration downtime gate: while the PE's buffered state is in flight,
  // no new message may start service (queued arrivals wait; cores already
  // busy run to completion). Shared by both engines for bit-identity.
  if (pe.value() < pe_pause_until_.size() &&
      now < pe_pause_until_[pe.value()]) {
    return;
  }
  if (cached_) {
    dispatchIdleCoresCached(pe, now, dep);
  } else {
    dispatchIdleCoresReference(pe, now, dep);
  }
}

void EventSimulator::enqueueAt(PeId pe, Message msg, SimTime now,
                               const Deployment& dep) {
  msg.enqueued = now;
  pe_state_[pe.value()].queue.push_back(msg);
  ++pe_state_[pe.value()].arrivals_in_interval;
  dispatchIdleCores(pe, now, dep);
}

void EventSimulator::deliverDownstream(PeId from, VmId from_vm,
                                       const Message& msg, SimTime now,
                                       const Deployment& dep) {
  // And-split: every successor receives a copy. The copy keeps the
  // original creation time so end-to-end latency spans the whole path.
  for (const PeId succ : df_->successors(from)) {
    // Network cost from the producing VM to the successor's best VM;
    // colocated flows are in-memory (§4).
    const double delay = cached_ ? cachedRouteDelay(from_vm, succ, now)
                                 : referenceRouteDelay(from_vm, succ, now);
    if (delay <= 0.0) {
      enqueueAt(succ, msg, now, dep);
    } else if (cached_) {
      heap_.push(now + delay, EventKind::Delivery, succ, VmId(0), 0,
                 msg.created, msg.enqueued);
    } else {
      deliveries_.push({now + delay, ref_seq_++, succ, msg});
    }
  }
}

void EventSimulator::recordDeliveredLatency(double latency) {
  result_.latency.add(latency);
  ++result_.messages_delivered;
  if (result_.latency_samples.size() < cfg_.max_latency_samples) {
    result_.latency_samples.push_back(latency);
    return;
  }
  // Algorithm R: past the cap, the i-th delivery replaces a random stored
  // sample with probability cap/i, keeping the reservoir uniform over all
  // deliveries. Draws come from a dedicated stream so capping never
  // perturbs the arrival process.
  const auto seen = static_cast<std::int64_t>(result_.latency.count());
  const std::int64_t j = reservoir_rng_.uniformInt(0, seen - 1);
  if (j < static_cast<std::int64_t>(cfg_.max_latency_samples)) {
    result_.latency_samples[static_cast<std::size_t>(j)] = latency;
  }
}

void EventSimulator::handleCompletion(SimTime time, PeId pe, VmId vm,
                                      int core, const Message& msg,
                                      const Deployment& dep) {
  // Free the physical core (ownership may have changed during
  // adaptation; the busy flag is positional, so this stays correct).
  if (vm.value() < core_busy_.size()) {
    auto& busy = core_busy_[vm.value()];
    if (static_cast<std::size_t>(core) < busy.size()) {
      busy[static_cast<std::size_t>(core)] = false;
      // Mirror the free into the bitmap under the core's *current* owner.
      // Stale views (ledger moved since the last rebuild) skip this; the
      // next rebuild reconstructs the bitmap from the busy flags.
      if (cached_ && slots_valid_ &&
          slots_gen_ == cloud_->ledgerGeneration() &&
          vm.value() < slot_ref_.size() &&
          static_cast<std::size_t>(core) < slot_ref_[vm.value()].size()) {
        const SlotRef ref =
            slot_ref_[vm.value()][static_cast<std::size_t>(core)];
        if (ref.idx != kNoSlot) {
          pe_free_[ref.owner.value()][ref.idx >> 6] |=
              std::uint64_t{1} << (ref.idx & 63);
        }
      }
    }
  }
  PeState& st = pe_state_[pe.value()];
  ++st.processed_in_interval;

  const auto& alt = df_->pe(pe).alternate(dep.activeAlternate(pe));
  if (df_->isOutput(pe)) {
    recordDeliveredLatency(time - msg.created);
  }
  // Selectivity as credit so fractional ratios average out exactly.
  st.selectivity_credit += alt.selectivity;
  while (st.selectivity_credit >= 1.0 - 1e-12) {
    st.selectivity_credit -= 1.0;
    ++st.emitted_in_interval;
    deliverDownstream(pe, vm, msg, time, dep);
  }
  dispatchIdleCores(pe, time, dep);
}

// ---------------------------------------------------------------------------
// Reference engine: scan the ledger and query the monitor per event.
// ---------------------------------------------------------------------------

void EventSimulator::dispatchIdleCoresReference(PeId pe, SimTime now,
                                                const Deployment& dep) {
  PeState& st = pe_state_[pe.value()];
  if (st.queue.empty()) return;
  const auto& alt = df_->pe(pe).alternate(dep.activeAlternate(pe));
  for (const auto& vc : peCores(*cloud_, pe)) {
    const VmInstance& vm = cloud_->instance(vc.vm);
    if (vc.vm.value() >= core_busy_.size()) {
      core_busy_.resize(vc.vm.value() + 1);
    }
    auto& busy = core_busy_[vc.vm.value()];
    if (busy.size() < static_cast<std::size_t>(vm.coreCount())) {
      busy.resize(static_cast<std::size_t>(vm.coreCount()), false);
    }
    for (int c = 0; c < vm.coreCount() && !st.queue.empty(); ++c) {
      const auto owner = vm.coreOwner(c);
      if (!owner.has_value() || *owner != pe) continue;
      if (busy[static_cast<std::size_t>(c)]) continue;
      // Claim the core and start the message at the head of the queue.
      busy[static_cast<std::size_t>(c)] = true;
      const Message msg = st.queue.front();
      st.queue.pop_front();
      result_.pe_queue_wait[pe.value()].add(now - msg.enqueued);
      ++result_.counters.dispatches;
      const double speed = mon_->observedCorePower(vc.vm, now);
      const double service =
          speed > 0.0 ? alt.cost_core_sec / speed
                      : std::numeric_limits<double>::infinity();
      completions_.push({now + service, ref_seq_++, pe, vc.vm, c, msg});
    }
    if (st.queue.empty()) break;
  }
}

double EventSimulator::referenceRouteDelay(VmId from_vm, PeId succ,
                                           SimTime now) const {
  double delay = 0.0;
  bool colocated = false;
  double best_mbps = 0.0;
  for (const auto& vc : peCores(*cloud_, succ)) {
    if (vc.vm == from_vm) {
      colocated = true;
      break;
    }
    best_mbps =
        std::max(best_mbps, mon_->observedBandwidthMbps(from_vm, vc.vm, now));
  }
  if (!colocated && best_mbps > 0.0) {
    // Route over the best-connected target VM: one-way latency plus the
    // serialization time of a ~100 KB message at the observed bandwidth.
    for (const auto& vc : peCores(*cloud_, succ)) {
      if (mon_->observedBandwidthMbps(from_vm, vc.vm, now) == best_mbps) {
        delay = mon_->observedLatencyMs(from_vm, vc.vm, now) / 1000.0 +
                cfg_.msg_size_bytes * 8.0 / (best_mbps * 1.0e6);
        break;
      }
    }
  }
  return delay;
}

void EventSimulator::drainReference(SimTime t0, SimTime t1, double rate,
                                    const Deployment& dep) {
  // Piecewise-constant arrival rate within the interval.
  SimTime next_arrival = std::numeric_limits<SimTime>::infinity();
  if (rate > 0.0) {
    next_arrival =
        t0 + (cfg_.poisson_arrivals ? rng_.exponential(rate) : 1.0 / rate);
  }

  // Drain events in time order until the interval ends.
  while (true) {
    const SimTime completion_time =
        completions_.empty() ? std::numeric_limits<SimTime>::infinity()
                             : completions_.top().time;
    const SimTime delivery_time =
        deliveries_.empty() ? std::numeric_limits<SimTime>::infinity()
                            : deliveries_.top().time;
    const SimTime next_time =
        std::min({next_arrival, completion_time, delivery_time});
    if (next_time >= t1) break;

    if (next_arrival <= completion_time && next_arrival <= delivery_time) {
      // External message enters every input PE (same stream fan-in as
      // the fluid model).
      ++result_.messages_injected;
      ++result_.counters.arrivals;
      for (const PeId in : df_->inputs()) {
        enqueueAt(in, Message{next_arrival, next_arrival}, next_arrival,
                  dep);
      }
      next_arrival +=
          cfg_.poisson_arrivals ? rng_.exponential(rate) : 1.0 / rate;
    } else if (delivery_time <= completion_time) {
      const Delivery arriving = deliveries_.top();
      deliveries_.pop();
      ++result_.counters.deliveries;
      enqueueAt(arriving.pe, arriving.msg, arriving.time, dep);
    } else {
      const Completion done = completions_.top();
      completions_.pop();
      ++result_.counters.completions;
      handleCompletion(done.time, done.pe, done.vm, done.core, done.msg,
                       dep);
    }
  }
}

// ---------------------------------------------------------------------------
// Cached engine: ledger-generation-guarded indexes, zero-order-hold
// windowed monitor lookups, one pooled event heap.
// ---------------------------------------------------------------------------

void EventSimulator::refreshLedgerViews() {
  const CloudProvider& cloud = *cloud_;  // const: never bump the ledger.
  const std::uint64_t gen = cloud.ledgerGeneration();
  if (slots_valid_ && gen == slots_gen_) return;
  for (auto& v : pe_slots_) v.clear();
  for (auto& v : pe_vms_) v.clear();
  for (auto& refs : slot_ref_) {
    std::fill(refs.begin(), refs.end(), SlotRef{});
  }
  for (const VmInstance& vm : cloud.instances()) {
    if (!vm.isActive()) continue;
    const std::size_t vmi = vm.id().value();
    if (vmi >= core_busy_.size()) core_busy_.resize(vmi + 1);
    auto& busy = core_busy_[vmi];
    if (busy.size() < static_cast<std::size_t>(vm.coreCount())) {
      busy.resize(static_cast<std::size_t>(vm.coreCount()), false);
    }
    if (vmi >= slot_ref_.size()) slot_ref_.resize(vmi + 1);
    auto& refs = slot_ref_[vmi];
    if (refs.size() < static_cast<std::size_t>(vm.coreCount())) {
      refs.resize(static_cast<std::size_t>(vm.coreCount()));
    }
    for (int c = 0; c < vm.coreCount(); ++c) {
      const auto owner = vm.coreOwner(c);
      if (!owner.has_value()) continue;
      auto& slots = pe_slots_[owner->value()];
      refs[static_cast<std::size_t>(c)] = {
          *owner, static_cast<std::uint32_t>(slots.size())};
      slots.push_back({vm.id(), c});
      auto& vms = pe_vms_[owner->value()];
      if (vms.empty() || vms.back() != vm.id()) vms.push_back(vm.id());
    }
  }
  // Free-slot bitmaps, from the positional busy flags (ground truth).
  for (std::size_t p = 0; p < pe_slots_.size(); ++p) {
    const auto& slots = pe_slots_[p];
    auto& words = pe_free_[p];
    words.assign((slots.size() + 63) / 64, 0);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const CoreSlot& s = slots[i];
      if (!core_busy_[s.vm.value()][static_cast<std::size_t>(s.core)]) {
        words[i >> 6] |= std::uint64_t{1} << (i & 63);
      }
    }
  }
  slots_gen_ = gen;
  slots_valid_ = true;
  ++result_.counters.core_index_rebuilds;
}

void EventSimulator::dispatchIdleCoresCached(PeId pe, SimTime now,
                                             const Deployment& dep) {
  PeState& st = pe_state_[pe.value()];
  if (st.queue.empty()) return;
  refreshLedgerViews();
  const auto& alt = df_->pe(pe).alternate(dep.activeAlternate(pe));
  // Find-first-set over the free-slot bitmap claims the lowest slot
  // index — the reference ledger scan's (vm asc, core asc) order —
  // without walking the busy prefix.
  const auto& slots = pe_slots_[pe.value()];
  auto& words = pe_free_[pe.value()];
  for (std::size_t w = 0; w < words.size();) {
    if (words[w] == 0) {
      ++w;
      continue;
    }
    const auto b = static_cast<std::size_t>(std::countr_zero(words[w]));
    words[w] &= words[w] - 1;  // claim the slot.
    const CoreSlot& slot = slots[(w << 6) + b];
    core_busy_[slot.vm.value()][static_cast<std::size_t>(slot.core)] = true;
    const Message msg = st.queue.front();
    st.queue.pop_front();
    result_.pe_queue_wait[pe.value()].add(now - msg.enqueued);
    ++result_.counters.dispatches;
    const double speed = power_.corePower(slot.vm, now);
    const double service =
        speed > 0.0 ? alt.cost_core_sec / speed
                    : std::numeric_limits<double>::infinity();
    heap_.push(now + service, EventKind::Completion, pe, slot.vm, slot.core,
               msg.created, msg.enqueued);
    if (st.queue.empty()) break;
  }
}

double EventSimulator::cachedRouteDelay(VmId from_vm, PeId succ,
                                        SimTime now) {
  auto& row = routes_[succ.value()];
  if (from_vm.value() >= row.size()) row.resize(from_vm.value() + 1);
  RouteEntry& e = row[from_vm.value()];
  const std::uint64_t gen = cloud_->ledgerGeneration();
  if (e.ledger_gen == gen && now < e.valid_until) return e.delay;

  // Recompute with the reference's exact scan order and queries (the
  // first query of a VM pair assigns its replay window, consuming the
  // replayer RNG — order must match). Fold the zero-order-hold window of
  // every coefficient consulted; a colocated or network-free route
  // depends only on core placement, which the generation guard covers.
  refreshLedgerViews();  // pe_vms_ may predate the current generation.
  ++result_.counters.route_refreshes;
  const auto inf = std::numeric_limits<SimTime>::infinity();
  SimTime until = inf;
  double delay = 0.0;
  bool colocated = false;
  double best_mbps = 0.0;
  const auto& vms = pe_vms_[succ.value()];
  if (from_vm.value() >= bw_pairs_.size()) {
    bw_pairs_.resize(from_vm.value() + 1);
  }
  auto& pair_row = bw_pairs_[from_vm.value()];
  for (const VmId vm : vms) {
    if (vm == from_vm) {
      colocated = true;
      break;
    }
    // Per-pair memo: query the replayer only when the pair's own
    // zero-order-hold window has lapsed. A pair's first-ever touch is
    // always a miss, so replay-window assignment order (which consumes
    // the replayer RNG) matches the reference scan exactly.
    if (vm.value() >= pair_row.size()) pair_row.resize(vm.value() + 1);
    PairSample& p = pair_row[vm.value()];
    if (!(now < p.valid_until)) {
      const CoeffSample s = mon_->observedBandwidthSample(from_vm, vm, now);
      p.value = s.value;
      p.valid_until = s.valid_until;
    }
    best_mbps = std::max(best_mbps, p.value);
    until = std::min(until, p.valid_until);
  }
  if (!colocated && best_mbps > 0.0) {
    for (const VmId vm : vms) {
      if (pair_row[vm.value()].value == best_mbps) {
        const CoeffSample l = mon_->observedLatencySample(from_vm, vm, now);
        delay = l.value / 1000.0 +
                cfg_.msg_size_bytes * 8.0 / (best_mbps * 1.0e6);
        until = std::min(until, l.valid_until);
        break;
      }
    }
  }
  if (colocated) until = inf;
  e.delay = delay;
  e.valid_until = until;
  e.ledger_gen = gen;
  return delay;
}

void EventSimulator::drainCached(SimTime t0, SimTime t1, double rate,
                                 const Deployment& dep) {
  // The pending arrival lives in the heap as a removable record; like the
  // reference's local `next_arrival`, it is discarded at the interval end
  // and re-drawn at the next interval start (rates change per interval).
  pending_arrival_ = EventHeap::kInvalidSlot;
  if (rate > 0.0) {
    const SimTime t =
        t0 + (cfg_.poisson_arrivals ? rng_.exponential(rate) : 1.0 / rate);
    pending_arrival_ = heap_.push(t, EventKind::Arrival, PeId(0), VmId(0),
                                  0, 0.0, 0.0);
  }

  while (!heap_.empty() && heap_.top().time < t1) {
    const PooledEvent ev = heap_.popTop();
    switch (ev.kind) {
      case EventKind::Arrival: {
        ++result_.messages_injected;
        ++result_.counters.arrivals;
        for (const PeId in : df_->inputs()) {
          enqueueAt(in, Message{ev.time, ev.time}, ev.time, dep);
        }
        const SimTime t =
            ev.time +
            (cfg_.poisson_arrivals ? rng_.exponential(rate) : 1.0 / rate);
        pending_arrival_ = heap_.push(t, EventKind::Arrival, PeId(0),
                                      VmId(0), 0, 0.0, 0.0);
        break;
      }
      case EventKind::Delivery: {
        ++result_.counters.deliveries;
        enqueueAt(ev.pe, Message{ev.msg_created, ev.msg_enqueued}, ev.time,
                  dep);
        break;
      }
      case EventKind::Completion: {
        ++result_.counters.completions;
        handleCompletion(ev.time, ev.pe, ev.vm, ev.core,
                         Message{ev.msg_created, ev.msg_enqueued}, dep);
        break;
      }
    }
  }

  if (pending_arrival_ != EventHeap::kInvalidSlot) {
    heap_.remove(pending_arrival_);
    pending_arrival_ = EventHeap::kInvalidSlot;
  }
}

// ---------------------------------------------------------------------------
// The shared interval loop.
// ---------------------------------------------------------------------------

EventSimResult EventSimulator::run(const RateProfile& profile,
                                   Deployment deployment,
                                   Scheduler* scheduler) {
  const std::size_t n = df_->peCount();
  pe_state_.assign(n, {});
  pe_pause_until_.assign(n, 0.0);
  core_busy_.clear();
  completions_ = {};
  deliveries_ = {};
  ref_seq_ = 0;
  heap_.clear();
  pending_arrival_ = EventHeap::kInvalidSlot;
  pe_slots_.assign(n, {});
  pe_vms_.assign(n, {});
  pe_free_.assign(n, {});
  slot_ref_.clear();
  slots_valid_ = false;
  slots_gen_ = 0;
  routes_.assign(n, {});
  bw_pairs_.clear();
  power_.clear();
  result_ = {};
  result_.pe_queue_wait.assign(n, RunningStats{});
  rng_ = Rng(cfg_.seed);
  reservoir_rng_ = Rng(cfg_.seed ^ 0x5ee5a11e5ull);
  cached_ = cfg_.engine == EventSimConfig::Engine::Cached;

  const IntervalClock clock(cfg_.interval_s, cfg_.horizon_s);
  SimConfig fluid_cfg;
  fluid_cfg.msg_size_bytes = cfg_.msg_size_bytes;
  fluid_cfg.interval_s = cfg_.interval_s;

  double omega_sum = 0.0;
  IntervalMetrics last{};
  // Messages pulled out of queues by a migration, due back at a deadline.
  std::vector<std::pair<SimTime, std::pair<PeId, std::deque<Message>>>>
      in_transit;

  const auto wall_start = std::chrono::steady_clock::now();

  for (IntervalIndex i = 0; i < clock.intervalCount(); ++i) {
    const SimTime t0 = clock.startOf(i);
    const SimTime t1 = clock.endOf(i);

    if (i > 0 && scheduler != nullptr) {
      ObservedState st;
      st.interval = i;
      st.now = t0;
      st.input_rate = profile.rate(clock.startOf(i - 1));
      st.average_omega = omega_sum / static_cast<double>(i);
      st.last_interval = &last;
      for (const MigrationEvent& ev : scheduler->adapt(st, deployment)) {
        // Pull the migrated share out of the queue; it lands back at the
        // start of the next interval (network transfer, §5).
        auto& queue = pe_state_[ev.pe.value()].queue;
        const auto take = static_cast<std::size_t>(
            std::llround(static_cast<double>(queue.size()) *
                         ev.backlog_fraction));
        std::deque<Message> moved;
        for (std::size_t k = 0; k < take && !queue.empty(); ++k) {
          moved.push_back(queue.back());
          queue.pop_back();
        }
        if (!moved.empty()) {
          in_transit.push_back({t1, {ev.pe, std::move(moved)}});
        }
        // State-size migration cost: moving the PE's buffered state
        // pauses its dispatch while the share transfers (same formula as
        // the fluid engine's downtime: MB -> Mb over Mbps). Pauses from
        // several migrations of the same PE extend, not stack.
        if (cfg_.pe_state_mb > 0.0 && ev.backlog_fraction > 0.0) {
          const SimTime downtime = cfg_.pe_state_mb * ev.backlog_fraction *
                                   8.0 / cfg_.migration_bandwidth_mbps;
          pe_pause_until_[ev.pe.value()] =
              std::max(pe_pause_until_[ev.pe.value()], t0 + downtime);
        }
      }
    }

    // Resume PEs whose migration pause lapsed before this interval: their
    // queued messages got no dispatch kick while the gate was closed.
    // Guarded so disabled runs make exactly the pre-elasticity calls.
    if (cfg_.pe_state_mb > 0.0) {
      for (std::size_t p = 0; p < n; ++p) {
        if (pe_pause_until_[p] > 0.0 && t0 >= pe_pause_until_[p]) {
          pe_pause_until_[p] = 0.0;
          if (!pe_state_[p].queue.empty()) {
            dispatchIdleCores(PeId(static_cast<PeId::value_type>(p)), t0,
                              deployment);
          }
        }
      }
    }

    // Deliver any migrated messages whose transfer completed by t0.
    // Stable swap-free compaction: landed entries are processed in
    // insertion order and the survivors keep their relative order, like
    // the old erase() loop but without its O(n^2) shifting.
    std::size_t keep = 0;
    for (std::size_t k = 0; k < in_transit.size(); ++k) {
      if (in_transit[k].first <= t0) {
        auto& [pe, msgs] = in_transit[k].second;
        auto& queue = pe_state_[pe.value()].queue;
        for (Message m : msgs) {
          m.enqueued = t0;
          queue.push_back(m);
        }
        dispatchIdleCores(pe, t0, deployment);
      } else {
        if (keep != k) in_transit[keep] = std::move(in_transit[k]);
        ++keep;
      }
    }
    in_transit.resize(keep);

    for (auto& st : pe_state_) {
      st.arrivals_in_interval = 0;
      st.processed_in_interval = 0;
      st.emitted_in_interval = 0;
    }

    const double rate = profile.rate(t0);
    if (cached_) {
      drainCached(t0, t1, rate, deployment);
    } else {
      drainReference(t0, t1, rate, deployment);
    }

    // Interval metrics, same shape as the fluid simulator's.
    IntervalMetrics m;
    m.index = i;
    m.start = t0;
    m.input_rate = rate;
    m.pe_stats.resize(n);
    const auto expected = expectedOutputRates(*df_, deployment, rate);
    double omega_acc = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      const PeId pe(static_cast<PeId::value_type>(p));
      PeIntervalStats& ps = m.pe_stats[p];
      const PeState& st = pe_state_[p];
      const double dt = cfg_.interval_s;
      ps.arrival_rate = static_cast<double>(st.arrivals_in_interval) / dt;
      ps.processed_rate =
          static_cast<double>(st.processed_in_interval) / dt;
      ps.output_rate = static_cast<double>(st.emitted_in_interval) / dt;
      ps.offered_rate =
          ps.arrival_rate + static_cast<double>(st.queue.size()) / dt;
      ps.backlog_msgs = static_cast<double>(st.queue.size());
      ps.allocated_cores = totalCores(*cloud_, pe);
      const auto& alt = df_->pe(pe).alternate(deployment.activeAlternate(pe));
      ps.capacity_rate =
          observedPowerOf(*cloud_, *mon_, pe, clock.midOf(i)) /
          alt.cost_core_sec;
      const double offered_msgs =
          static_cast<double>(st.arrivals_in_interval + st.queue.size());
      ps.relative_throughput =
          offered_msgs > 0.0
              ? static_cast<double>(st.processed_in_interval) / offered_msgs
              : 1.0;
    }
    for (const PeId o : df_->outputs()) {
      const double exp_rate = expected[o.value()];
      const double ratio =
          exp_rate > 0.0 ? m.pe_stats[o.value()].output_rate / exp_rate
                         : 1.0;
      omega_acc += std::clamp(ratio, 0.0, 1.0);
    }
    m.omega = omega_acc / static_cast<double>(df_->outputs().size());
    double gamma_acc = 0.0;
    for (const auto& pe : df_->pes()) {
      gamma_acc += pe.relativeValue(deployment.activeAlternate(pe.id()));
    }
    m.gamma = gamma_acc / static_cast<double>(n);
    m.cost_cumulative = cloud_->accumulatedCost(t1);
    m.active_vms = static_cast<int>(cloud_->activeVms().size());
    m.allocated_cores = totalAllocatedCores(*cloud_);

    omega_sum += m.omega;
    last = m;
    result_.intervals.add(std::move(m));
  }

  result_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return std::move(result_);
}

}  // namespace dds
