#include "dds/eventsim/event_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "dds/common/time.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {

void EventSimConfig::validate() const {
  DDS_REQUIRE(msg_size_bytes > 0.0, "message size must be positive");
  DDS_REQUIRE(interval_s > 0.0, "interval must be positive");
  DDS_REQUIRE(horizon_s >= interval_s, "horizon shorter than one interval");
  DDS_REQUIRE(max_latency_samples > 0, "latency sample cap must be > 0");
}

double EventSimResult::latencyPercentile(double p) const {
  DDS_REQUIRE(!latency_samples.empty(), "no latency samples recorded");
  return percentile(latency_samples, p);
}

PeId EventSimResult::worstQueueingPe() const {
  std::size_t worst = 0;
  for (std::size_t i = 1; i < pe_queue_wait.size(); ++i) {
    if (pe_queue_wait[i].mean() > pe_queue_wait[worst].mean()) worst = i;
  }
  return PeId(static_cast<PeId::value_type>(worst));
}

EventSimulator::EventSimulator(const Dataflow& df, CloudProvider& cloud,
                               const MonitoringService& mon,
                               EventSimConfig cfg)
    : df_(&df), cloud_(&cloud), mon_(&mon), cfg_(cfg) {
  cfg_.validate();
}

void EventSimulator::dispatchIdleCores(PeId pe, SimTime now,
                                       const Deployment& dep) {
  PeState& st = pe_state_[pe.value()];
  if (st.queue.empty()) return;
  const auto& alt = df_->pe(pe).alternate(dep.activeAlternate(pe));
  for (const auto& vc : peCores(*cloud_, pe)) {
    const VmInstance& vm = cloud_->instance(vc.vm);
    if (vc.vm.value() >= core_busy_.size()) {
      core_busy_.resize(vc.vm.value() + 1);
    }
    auto& busy = core_busy_[vc.vm.value()];
    if (busy.size() < static_cast<std::size_t>(vm.coreCount())) {
      busy.resize(static_cast<std::size_t>(vm.coreCount()), false);
    }
    for (int c = 0; c < vm.coreCount() && !st.queue.empty(); ++c) {
      const auto owner = vm.coreOwner(c);
      if (!owner.has_value() || *owner != pe) continue;
      if (busy[static_cast<std::size_t>(c)]) continue;
      // Claim the core and start the message at the head of the queue.
      busy[static_cast<std::size_t>(c)] = true;
      const Message msg = st.queue.front();
      st.queue.pop_front();
      result_.pe_queue_wait[pe.value()].add(now - msg.enqueued);
      const double speed = mon_->observedCorePower(vc.vm, now);
      const double service =
          speed > 0.0 ? alt.cost_core_sec / speed
                      : std::numeric_limits<double>::infinity();
      completions_.push({now + service, pe, vc.vm, c, msg});
    }
    if (st.queue.empty()) break;
  }
}

void EventSimulator::enqueueAt(PeId pe, Message msg, SimTime now,
                               const Deployment& dep) {
  msg.enqueued = now;
  pe_state_[pe.value()].queue.push_back(msg);
  ++pe_state_[pe.value()].arrivals_in_interval;
  dispatchIdleCores(pe, now, dep);
}

void EventSimulator::deliverDownstream(PeId from, VmId from_vm,
                                       const Message& msg, SimTime now,
                                       const Deployment& dep) {
  // And-split: every successor receives a copy. The copy keeps the
  // original creation time so end-to-end latency spans the whole path.
  for (const PeId succ : df_->successors(from)) {
    // Network cost from the producing VM to the successor's best VM;
    // colocated flows are in-memory (§4).
    double delay = 0.0;
    bool colocated = false;
    double best_mbps = 0.0;
    for (const auto& vc : peCores(*cloud_, succ)) {
      if (vc.vm == from_vm) {
        colocated = true;
        break;
      }
      best_mbps = std::max(
          best_mbps, mon_->observedBandwidthMbps(from_vm, vc.vm, now));
    }
    if (!colocated && best_mbps > 0.0) {
      // Route over the best-connected target VM: one-way latency plus the
      // serialization time of a ~100 KB message at the observed bandwidth.
      for (const auto& vc : peCores(*cloud_, succ)) {
        if (mon_->observedBandwidthMbps(from_vm, vc.vm, now) == best_mbps) {
          delay = mon_->observedLatencyMs(from_vm, vc.vm, now) / 1000.0 +
                  cfg_.msg_size_bytes * 8.0 / (best_mbps * 1.0e6);
          break;
        }
      }
    }
    if (delay <= 0.0) {
      enqueueAt(succ, msg, now, dep);
    } else {
      Message copy = msg;
      deliveries_.push({now + delay, succ, copy});
    }
  }
}

EventSimResult EventSimulator::run(const RateProfile& profile,
                                   Deployment deployment,
                                   Scheduler* scheduler) {
  const std::size_t n = df_->peCount();
  pe_state_.assign(n, {});
  core_busy_.clear();
  completions_ = {};
  deliveries_ = {};
  result_ = {};
  result_.pe_queue_wait.assign(n, RunningStats{});
  rng_ = Rng(cfg_.seed);

  const IntervalClock clock(cfg_.interval_s, cfg_.horizon_s);
  SimConfig fluid_cfg;
  fluid_cfg.msg_size_bytes = cfg_.msg_size_bytes;
  fluid_cfg.interval_s = cfg_.interval_s;

  double omega_sum = 0.0;
  IntervalMetrics last{};
  // Messages pulled out of queues by a migration, due back at a deadline.
  std::vector<std::pair<SimTime, std::pair<PeId, std::deque<Message>>>>
      in_transit;

  for (IntervalIndex i = 0; i < clock.intervalCount(); ++i) {
    const SimTime t0 = clock.startOf(i);
    const SimTime t1 = clock.endOf(i);

    if (i > 0 && scheduler != nullptr) {
      ObservedState st;
      st.interval = i;
      st.now = t0;
      st.input_rate = profile.rate(clock.startOf(i - 1));
      st.average_omega = omega_sum / static_cast<double>(i);
      st.last_interval = &last;
      for (const MigrationEvent& ev : scheduler->adapt(st, deployment)) {
        // Pull the migrated share out of the queue; it lands back at the
        // start of the next interval (network transfer, §5).
        auto& queue = pe_state_[ev.pe.value()].queue;
        const auto take = static_cast<std::size_t>(
            std::llround(static_cast<double>(queue.size()) *
                         ev.backlog_fraction));
        std::deque<Message> moved;
        for (std::size_t k = 0; k < take && !queue.empty(); ++k) {
          moved.push_back(queue.back());
          queue.pop_back();
        }
        if (!moved.empty()) {
          in_transit.push_back({t1, {ev.pe, std::move(moved)}});
        }
      }
    }

    // Deliver any migrated messages whose transfer completed by t0.
    for (auto it = in_transit.begin(); it != in_transit.end();) {
      if (it->first <= t0) {
        auto& [pe, msgs] = it->second;
        auto& queue = pe_state_[pe.value()].queue;
        for (Message m : msgs) {
          m.enqueued = t0;
          queue.push_back(m);
        }
        dispatchIdleCores(pe, t0, deployment);
        it = in_transit.erase(it);
      } else {
        ++it;
      }
    }

    for (auto& st : pe_state_) {
      st.arrivals_in_interval = 0;
      st.processed_in_interval = 0;
      st.emitted_in_interval = 0;
    }

    // Piecewise-constant arrival rate within the interval.
    const double rate = profile.rate(t0);
    SimTime next_arrival = std::numeric_limits<SimTime>::infinity();
    if (rate > 0.0) {
      next_arrival =
          t0 + (cfg_.poisson_arrivals ? rng_.exponential(rate) : 1.0 / rate);
    }

    // Drain events in time order until the interval ends.
    while (true) {
      const SimTime completion_time =
          completions_.empty() ? std::numeric_limits<SimTime>::infinity()
                               : completions_.top().time;
      const SimTime delivery_time =
          deliveries_.empty() ? std::numeric_limits<SimTime>::infinity()
                              : deliveries_.top().time;
      const SimTime next_time =
          std::min({next_arrival, completion_time, delivery_time});
      if (next_time >= t1) break;

      if (next_arrival <= completion_time &&
          next_arrival <= delivery_time) {
        // External message enters every input PE (same stream fan-in as
        // the fluid model).
        ++result_.messages_injected;
        for (const PeId in : df_->inputs()) {
          enqueueAt(in, Message{next_arrival, next_arrival}, next_arrival,
                    deployment);
        }
        next_arrival += cfg_.poisson_arrivals ? rng_.exponential(rate)
                                              : 1.0 / rate;
      } else if (delivery_time <= completion_time) {
        const Delivery arriving = deliveries_.top();
        deliveries_.pop();
        enqueueAt(arriving.pe, arriving.msg, arriving.time, deployment);
      } else {
        const Completion done = completions_.top();
        completions_.pop();
        // Free the physical core (ownership may have changed during
        // adaptation; the busy flag is positional, so this stays correct).
        if (done.vm.value() < core_busy_.size()) {
          auto& busy = core_busy_[done.vm.value()];
          if (static_cast<std::size_t>(done.core) < busy.size()) {
            busy[static_cast<std::size_t>(done.core)] = false;
          }
        }
        PeState& st = pe_state_[done.pe.value()];
        ++st.processed_in_interval;

        const auto& alt =
            df_->pe(done.pe).alternate(deployment.activeAlternate(done.pe));
        if (df_->isOutput(done.pe)) {
          const double latency = done.time - done.msg.created;
          result_.latency.add(latency);
          ++result_.messages_delivered;
          if (result_.latency_samples.size() < cfg_.max_latency_samples) {
            result_.latency_samples.push_back(latency);
          }
        }
        // Selectivity as credit so fractional ratios average out exactly.
        st.selectivity_credit += alt.selectivity;
        while (st.selectivity_credit >= 1.0 - 1e-12) {
          st.selectivity_credit -= 1.0;
          ++st.emitted_in_interval;
          deliverDownstream(done.pe, done.vm, done.msg, done.time,
                            deployment);
        }
        dispatchIdleCores(done.pe, done.time, deployment);
      }
    }

    // Interval metrics, same shape as the fluid simulator's.
    IntervalMetrics m;
    m.index = i;
    m.start = t0;
    m.input_rate = rate;
    m.pe_stats.resize(n);
    const auto expected =
        expectedOutputRates(*df_, deployment, rate);
    double omega_acc = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      const PeId pe(static_cast<PeId::value_type>(p));
      PeIntervalStats& ps = m.pe_stats[p];
      const PeState& st = pe_state_[p];
      const double dt = cfg_.interval_s;
      ps.arrival_rate = static_cast<double>(st.arrivals_in_interval) / dt;
      ps.processed_rate =
          static_cast<double>(st.processed_in_interval) / dt;
      ps.output_rate = static_cast<double>(st.emitted_in_interval) / dt;
      ps.offered_rate =
          ps.arrival_rate + static_cast<double>(st.queue.size()) / dt;
      ps.backlog_msgs = static_cast<double>(st.queue.size());
      ps.allocated_cores = totalCores(*cloud_, pe);
      const auto& alt = df_->pe(pe).alternate(deployment.activeAlternate(pe));
      ps.capacity_rate =
          observedPowerOf(*cloud_, *mon_, pe, clock.midOf(i)) /
          alt.cost_core_sec;
      const double offered_msgs =
          static_cast<double>(st.arrivals_in_interval + st.queue.size());
      ps.relative_throughput =
          offered_msgs > 0.0
              ? static_cast<double>(st.processed_in_interval) / offered_msgs
              : 1.0;
    }
    for (const PeId o : df_->outputs()) {
      const double exp_rate = expected[o.value()];
      const double ratio =
          exp_rate > 0.0 ? m.pe_stats[o.value()].output_rate / exp_rate
                         : 1.0;
      omega_acc += std::clamp(ratio, 0.0, 1.0);
    }
    m.omega = omega_acc / static_cast<double>(df_->outputs().size());
    double gamma_acc = 0.0;
    for (const auto& pe : df_->pes()) {
      gamma_acc += pe.relativeValue(deployment.activeAlternate(pe.id()));
    }
    m.gamma = gamma_acc / static_cast<double>(n);
    m.cost_cumulative = cloud_->accumulatedCost(t1);
    m.active_vms = static_cast<int>(cloud_->activeVms().size());
    m.allocated_cores = totalAllocatedCores(*cloud_);

    omega_sum += m.omega;
    last = m;
    result_.intervals.add(std::move(m));
  }
  return std::move(result_);
}

}  // namespace dds
