// The forecaster registry: names, parsing and construction for every
// concrete model. Adding a ForecastModel is a change to this file (plus
// the enum) — engine, tools and bench code go through the factory.
#include <sstream>

#include "dds/common/error.hpp"
#include "dds/forecast/forecaster.hpp"

namespace dds {

std::string forecastModelName(ForecastModel model) {
  switch (model) {
    case ForecastModel::Off:
      return "off";
    case ForecastModel::Naive:
      return "naive";
    case ForecastModel::Ewma:
      return "ewma";
    case ForecastModel::HoltWinters:
      return "holt-winters";
  }
  return "unknown";
}

const std::vector<ForecastModel>& allForecastModels() {
  static const std::vector<ForecastModel> kModels = {
      ForecastModel::Off, ForecastModel::Naive, ForecastModel::Ewma,
      ForecastModel::HoltWinters};
  return kModels;
}

ForecastModel parseForecastModel(const std::string& name) {
  for (const ForecastModel model : allForecastModels()) {
    if (forecastModelName(model) == name) return model;
  }
  throw PreconditionError("unknown forecast model: '" + name + "'");
}

std::unique_ptr<Forecaster> makeForecaster(ForecastModel model,
                                           const ForecastOptions& options) {
  switch (model) {
    case ForecastModel::Off:
      break;  // fall through to the error below.
    case ForecastModel::Naive:
      return std::make_unique<NaiveForecaster>();
    case ForecastModel::Ewma:
      return std::make_unique<EwmaForecaster>(options.ewma_alpha);
    case ForecastModel::HoltWinters:
      return std::make_unique<HoltWintersForecaster>(
          options.hw_alpha, options.hw_beta, options.hw_gamma,
          options.hw_season_intervals);
  }
  std::ostringstream os;
  os << "makeForecaster: no forecaster for model '"
     << forecastModelName(model) << "'";
  throw PreconditionError(os.str());
}

}  // namespace dds
