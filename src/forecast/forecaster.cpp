#include "dds/forecast/forecaster.hpp"

#include <algorithm>
#include <cmath>

#include "dds/common/error.hpp"

namespace dds {
namespace {

/// Realized rates below this are treated as "zero" for MAPE purposes:
/// a percentage error against a near-zero denominator is noise, not
/// signal, and one such interval would dominate the whole run's score.
constexpr double kMapeRateFloor = 1e-6;

std::vector<double> flat(double value, int horizon) {
  DDS_REQUIRE(horizon >= 1, "forecast horizon must be at least 1");
  return std::vector<double>(static_cast<std::size_t>(horizon),
                             std::max(0.0, value));
}

}  // namespace

void NaiveForecaster::observe(double rate) {
  DDS_REQUIRE(rate >= 0.0, "observed rate must be non-negative");
  last_ = rate;
  ++count_;
}

std::vector<double> NaiveForecaster::forecast(int horizon) const {
  return flat(count_ > 0 ? last_ : 0.0, horizon);
}

EwmaForecaster::EwmaForecaster(double alpha) : alpha_(alpha) {
  DDS_REQUIRE(alpha_ > 0.0 && alpha_ <= 1.0,
              "EWMA alpha must be in (0, 1]");
}

void EwmaForecaster::observe(double rate) {
  DDS_REQUIRE(rate >= 0.0, "observed rate must be non-negative");
  level_ = count_ == 0 ? rate : alpha_ * rate + (1.0 - alpha_) * level_;
  ++count_;
}

std::vector<double> EwmaForecaster::forecast(int horizon) const {
  return flat(count_ > 0 ? level_ : 0.0, horizon);
}

HoltWintersForecaster::HoltWintersForecaster(double alpha, double beta,
                                             double gamma,
                                             int season_intervals)
    : alpha_(alpha),
      beta_(beta),
      gamma_(gamma),
      season_(static_cast<std::size_t>(season_intervals)) {
  DDS_REQUIRE(alpha_ > 0.0 && alpha_ <= 1.0,
              "Holt-Winters alpha must be in (0, 1]");
  DDS_REQUIRE(beta_ >= 0.0 && beta_ <= 1.0,
              "Holt-Winters beta must be in [0, 1]");
  DDS_REQUIRE(gamma_ >= 0.0 && gamma_ <= 1.0,
              "Holt-Winters gamma must be in [0, 1]");
  DDS_REQUIRE(season_intervals >= 2,
              "Holt-Winters season must span at least 2 intervals");
  warmup_.reserve(season_);
}

void HoltWintersForecaster::observe(double rate) {
  DDS_REQUIRE(rate >= 0.0, "observed rate must be non-negative");
  if (!initialized_) {
    warmup_.push_back(rate);
    // EWMA-level fallback so pre-warm-up forecasts are still sensible.
    level_ = count_ == 0 ? rate : alpha_ * rate + (1.0 - alpha_) * level_;
    ++count_;
    if (warmup_.size() == season_) {
      double sum = 0.0;
      for (const double v : warmup_) sum += v;
      level_ = sum / static_cast<double>(season_);
      trend_ = 0.0;
      seasonal_.resize(season_);
      for (std::size_t i = 0; i < season_; ++i) {
        seasonal_[i] = warmup_[i] - level_;
      }
      initialized_ = true;
      warmup_.clear();
      warmup_.shrink_to_fit();
    }
    return;
  }
  const std::size_t idx =
      static_cast<std::size_t>(count_) % season_;
  const double level_prev = level_;
  level_ = alpha_ * (rate - seasonal_[idx]) +
           (1.0 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - level_prev) + (1.0 - beta_) * trend_;
  seasonal_[idx] = gamma_ * (rate - level_) + (1.0 - gamma_) * seasonal_[idx];
  ++count_;
}

std::vector<double> HoltWintersForecaster::forecast(int horizon) const {
  DDS_REQUIRE(horizon >= 1, "forecast horizon must be at least 1");
  if (!initialized_) return flat(count_ > 0 ? level_ : 0.0, horizon);
  std::vector<double> out(static_cast<std::size_t>(horizon));
  for (int h = 1; h <= horizon; ++h) {
    const std::size_t idx =
        (static_cast<std::size_t>(count_) + static_cast<std::size_t>(h) -
         1) %
        season_;
    out[static_cast<std::size_t>(h - 1)] = std::max(
        0.0, level_ + static_cast<double>(h) * trend_ + seasonal_[idx]);
  }
  return out;
}

void ForecastErrorTracker::record(double predicted, double realized) {
  ++count_;
  bias_sum_ += predicted - realized;
  if (realized > kMapeRateFloor) {
    mape_sum_ += std::abs(predicted - realized) / realized;
    ++mape_count_;
  }
}

double ForecastErrorTracker::mape() const {
  return mape_count_ > 0 ? mape_sum_ / static_cast<double>(mape_count_)
                         : 0.0;
}

double ForecastErrorTracker::bias() const {
  return count_ > 0 ? bias_sum_ / static_cast<double>(count_) : 0.0;
}

}  // namespace dds
