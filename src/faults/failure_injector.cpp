#include "dds/faults/failure_injector.hpp"

#include <cmath>
#include <limits>

#include "dds/common/error.hpp"
#include "dds/common/rng.hpp"
#include "dds/sim/deployment.hpp"

namespace dds {

FailureInjector::FailureInjector(FailureInjectorConfig config) : config_(config) {}

SimTime FailureInjector::deathTime(VmId vm, SimTime t_start) const {
  if (!config_.enabled()) {
    return std::numeric_limits<SimTime>::infinity();
  }
  const std::uint64_t h =
      splitmix64(config_.seed ^ (0x51ed2701ull + vm.value()) * 0x2545f491ull);
  const double u = hashToUnitInterval(h);
  const double lifetime_s =
      -std::log(u) * config_.vm_mtbf_hours * kSecondsPerHour;
  return t_start + lifetime_s;
}

std::vector<FailureEvent> FailureInjector::injectUpTo(CloudProvider& cloud,
                                                      SimTime now) const {
  std::vector<FailureEvent> events;
  if (!config_.enabled()) return events;

  for (const VmId id : cloud.activeVms()) {
    VmInstance& vm = cloud.instance(id);
    const SimTime death = deathTime(id, vm.startTime());
    if (death > now) continue;

    FailureEvent ev;
    ev.vm = id;
    ev.time = death;
    // Which PEs lose how much: the share of each PE's total cores that
    // lived on the dead VM approximates its share of queued messages.
    for (int c = 0; c < vm.coreCount(); ++c) {
      const auto owner = vm.coreOwner(c);
      if (!owner.has_value()) continue;
      bool seen = false;
      for (const auto& loss : ev.losses) {
        if (loss.pe == *owner) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      const int on_vm = vm.coresOwnedBy(*owner);
      const int total = totalCores(cloud, *owner);
      DDS_ENSURE(total >= on_vm, "core ledger inconsistent");
      ev.losses.push_back(
          {*owner, static_cast<double>(on_vm) / static_cast<double>(total)});
    }
    // Crash: cores vanish, billing stops at the failure time. The started
    // hour is still paid — a tenant-side fault, not provider-initiated.
    for (const auto& loss : ev.losses) {
      vm.releaseAllCoresOf(loss.pe);
    }
    cloud.terminate(id, std::max(death, vm.startTime()),
                    TerminationReason::Crashed);
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace dds
