#include "dds/faults/fault_plan.hpp"

#include <cmath>
#include <limits>

#include "dds/common/error.hpp"
#include "dds/common/rng.hpp"
#include "dds/sim/deployment.hpp"

namespace dds {
namespace {

// Family tags keep the hash streams of the four event families disjoint
// even for the same seed and entity key.
constexpr std::uint64_t kStragglerTag = 0x5742a6f1ull;
constexpr std::uint64_t kPartitionTag = 0x9e11f0adull;
constexpr std::uint64_t kRejectTag = 0x1c8f3b27ull;
constexpr std::uint64_t kDelayTag = 0x6d5e9c43ull;
constexpr std::uint64_t kPreemptTag = 0x3f84d5b9ull;

// Renewal-process episode bound: at typical MTBFs (fractions of an hour
// and up) and horizons of days this is never reached; it only guards
// against a pathological mtbf/duration combination spinning forever.
constexpr int kMaxEpisodes = 100000;

double expDraw(std::uint64_t seed, std::uint64_t tag, std::uint64_t key,
               std::uint64_t index, double mean) {
  const std::uint64_t h =
      splitmix64(seed ^ tag ^ splitmix64(key * 0x2545f491ull + index));
  return -std::log(hashToUnitInterval(h)) * mean;
}

/// Whether `rel_t` (time since the entity's epoch) falls inside any
/// episode of a renewal process with exponential gaps of mean
/// `mtbf_s` and fixed episode length `duration_s`.
bool inEpisode(std::uint64_t seed, std::uint64_t tag, std::uint64_t key,
               double rel_t, double mtbf_s, double duration_s) {
  if (rel_t < 0.0) return false;
  double cursor = 0.0;
  for (int k = 0; k < kMaxEpisodes; ++k) {
    const double start =
        cursor + expDraw(seed, tag, key, static_cast<std::uint64_t>(k),
                         mtbf_s);
    if (rel_t < start) return false;
    if (rel_t < start + duration_s) return true;
    cursor = start + duration_s;
  }
  return false;
}

/// Order-independent key for an unordered VM pair.
std::uint64_t pairKey(VmId a, VmId b) {
  const std::uint64_t lo = std::min(a.value(), b.value());
  const std::uint64_t hi = std::max(a.value(), b.value());
  return (hi << 32) | lo;
}

}  // namespace

void FaultPlanConfig::validate() const {
  DDS_REQUIRE(vm_mtbf_hours >= 0.0, "crash MTBF must be non-negative");
  DDS_REQUIRE(straggler_mtbf_hours >= 0.0,
              "straggler MTBF must be non-negative");
  DDS_REQUIRE(straggler_factor >= 0.0 && straggler_factor < 1.0,
              "straggler factor must be in [0, 1)");
  DDS_REQUIRE(!stragglersEnabled() || straggler_duration_s > 0.0,
              "straggler duration must be positive when stragglers are on");
  DDS_REQUIRE(
      acquisition_failure_prob >= 0.0 && acquisition_failure_prob < 1.0,
      "acquisition failure probability must be in [0, 1)");
  DDS_REQUIRE(provisioning_delay_s >= 0.0,
              "provisioning delay must be non-negative");
  DDS_REQUIRE(provisioning_delay_per_core_s >= 0.0,
              "per-core provisioning delay must be non-negative");
  DDS_REQUIRE(spot_preemption_mtbf_hours >= 0.0,
              "spot preemption MTBF must be non-negative");
  DDS_REQUIRE(!preemptionsEnabled() || spot_notice_s >= 0.0,
              "spot notice window must be non-negative");
  DDS_REQUIRE(partition_mtbf_hours >= 0.0,
              "partition MTBF must be non-negative");
  DDS_REQUIRE(!partitionsEnabled() || partition_duration_s > 0.0,
              "partition duration must be positive when partitions are on");
}

FaultPlan::FaultPlan(FaultPlanConfig config)
    : config_(config),
      crashes_(FailureInjectorConfig{config.vm_mtbf_hours, config.seed}) {
  config_.validate();
}

bool FaultPlan::isStraggling(VmId vm, SimTime vm_start, SimTime t) const {
  if (!config_.stragglersEnabled()) return false;
  return inEpisode(config_.seed, kStragglerTag, vm.value(), t - vm_start,
                   config_.straggler_mtbf_hours * kSecondsPerHour,
                   config_.straggler_duration_s);
}

double FaultPlan::cpuFactor(VmId vm, SimTime vm_start, SimTime t) const {
  return isStraggling(vm, vm_start, t) ? config_.straggler_factor : 1.0;
}

bool FaultPlan::linkPartitioned(VmId a, VmId b, SimTime t) const {
  if (!config_.partitionsEnabled() || a == b) return false;
  // Partitions live on the absolute simulation timeline: the pair's hash
  // stream does not depend on either VM's start time, so the answer is a
  // pure function of (seed, pair, t).
  return inEpisode(config_.seed, kPartitionTag, pairKey(a, b), t,
                   config_.partition_mtbf_hours * kSecondsPerHour,
                   config_.partition_duration_s);
}

bool FaultPlan::acquisitionRejected(std::uint64_t attempt) const {
  if (config_.acquisition_failure_prob <= 0.0) return false;
  const std::uint64_t h =
      splitmix64(config_.seed ^ kRejectTag ^ splitmix64(attempt));
  return hashToUnitInterval(h) <= config_.acquisition_failure_prob;
}

SimTime FaultPlan::provisioningDelay(VmId vm,
                                     const ResourceClass& cls) const {
  const double mean =
      config_.provisioning_delay_s +
      config_.provisioning_delay_per_core_s * static_cast<double>(cls.cores - 1);
  if (mean <= 0.0) return 0.0;
  // Same tag/key/index as the class-independent model: with a zero
  // per-core term the draw is bit-identical to the pre-class behavior.
  return expDraw(config_.seed, kDelayTag, vm.value(), 0, mean);
}

SimTime FaultPlan::preemptionTime(VmId vm, SimTime vm_start) const {
  if (!config_.preemptionsEnabled()) {
    return std::numeric_limits<SimTime>::infinity();
  }
  return vm_start +
         expDraw(config_.seed, kPreemptTag, vm.value(), 0,
                 config_.spot_preemption_mtbf_hours * kSecondsPerHour);
}

std::vector<FailureEvent> FaultPlan::injectPreemptionsUpTo(
    CloudProvider& cloud, SimTime now) const {
  std::vector<FailureEvent> events;
  if (!config_.preemptionsEnabled()) return events;

  for (const VmId id : cloud.activeVms()) {
    VmInstance& vm = cloud.instance(id);
    if (!vm.spec().preemptible) continue;
    const SimTime at = preemptionTime(id, vm.startTime());
    if (at > now) continue;

    FailureEvent ev;
    ev.vm = id;
    ev.time = at;
    // Undrained backlog on the reclaimed VM is lost exactly like a crash:
    // the share of each PE's cores living there approximates its share of
    // queued messages.
    for (int c = 0; c < vm.coreCount(); ++c) {
      const auto owner = vm.coreOwner(c);
      if (!owner.has_value()) continue;
      bool seen = false;
      for (const auto& loss : ev.losses) {
        if (loss.pe == *owner) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      const int on_vm = vm.coresOwnedBy(*owner);
      const int total = totalCores(cloud, *owner);
      DDS_ENSURE(total >= on_vm, "core ledger inconsistent");
      ev.losses.push_back(
          {*owner, static_cast<double>(on_vm) / static_cast<double>(total)});
    }
    for (const auto& loss : ev.losses) {
      vm.releaseAllCoresOf(loss.pe);
    }
    cloud.preempt(id, std::max(at, vm.startTime()));
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace dds
