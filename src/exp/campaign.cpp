#include "dds/exp/campaign.hpp"

#include <chrono>
#include <fstream>
#include <future>
#include <map>
#include <utility>

#include "dds/common/json.hpp"
#include "dds/common/thread_pool.hpp"
#include "dds/exp/substrate.hpp"
#include "dds/obs/jsonl_sink.hpp"

namespace dds {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

JobOutcome runExperimentJob(const ExperimentJob& job, std::size_t index,
                            Substrate* substrate) {
  JobOutcome out;
  out.index = index;
  out.label = job.label.empty() ? schedulerName(job.kind) : job.label;
  out.tenant = job.tenant;
  out.kind = job.kind;
  out.seed = job.config.seed;
  const auto start = Clock::now();
  try {
    const SimulationEngine engine(
        *job.dataflow, job.config,
        substrate == nullptr
            ? EngineArenas{}
            : substrate->arenasFor(*job.dataflow, job.config));
    if (job.trace_path.empty()) {
      out.result = engine.run(job.kind);
    } else {
      obs::JsonlTraceSink sink(job.trace_path);
      out.result = engine.run(job.kind, &sink);
    }
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.wall_s = secondsSince(start);
  return out;
}

ExperimentJob jobFromSpec(const JobSpec& spec, Substrate& substrate) {
  const CliExperiment ex = experimentFromSpec(spec);
  if (ex.schedulers.size() != 1) {
    throw ConfigError("a job spec must name exactly one scheduler, got '" +
                      spec.scheduler + "'");
  }
  // The substrate cache owns the graph; it outlives any job built here
  // as long as the substrate itself is kept alive by the caller.
  const std::shared_ptr<const Dataflow> df =
      substrate.graphFor(spec.graph, spec.chain_length);
  ExperimentJob job;
  job.dataflow = df.get();
  job.config = ex.config;
  job.kind = ex.schedulers.front();
  job.label = spec.label;
  job.tenant = spec.tenant;
  return job;
}

Campaign::Campaign() : substrate_(std::make_shared<Substrate>()) {}

std::size_t Campaign::add(ExperimentJob job) {
  DDS_REQUIRE(job.dataflow != nullptr, "campaign job needs a dataflow");
  job.config.validate();

  Entry entry;
  entry.dataflow = job.dataflow;
  entry.seed = job.config.seed;
  entry.kind = job.kind;
  entry.label = std::move(job.label);
  entry.trace_path = std::move(job.trace_path);
  entry.tenant = std::move(job.tenant);

  // Intern the config with the seed factored out: a seed sweep collapses
  // to one shared base. Linear scan — distinct configs are few compared
  // to jobs, which is the whole point.
  ExperimentConfig base = std::move(job.config);
  base.seed = 0;
  for (const auto& interned : bases_) {
    if (*interned == base) {
      entry.base = interned;
      break;
    }
  }
  if (entry.base == nullptr) {
    entry.base = std::make_shared<const ExperimentConfig>(std::move(base));
    bases_.push_back(entry.base);
  }
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

std::size_t Campaign::addSpec(const JobSpec& spec) {
  return add(jobFromSpec(spec, *substrate_));
}

void Campaign::addPolicySweep(const Dataflow& dataflow,
                              const ExperimentConfig& base,
                              const std::vector<SchedulerKind>& kinds) {
  for (const SchedulerKind kind : kinds) {
    add({&dataflow, base, kind, "", ""});
  }
}

void Campaign::addSeedSweep(const Dataflow& dataflow,
                            const ExperimentConfig& base, SchedulerKind kind,
                            std::size_t runs) {
  DDS_REQUIRE(runs >= 1, "need at least one run");
  for (std::size_t i = 0; i < runs; ++i) {
    ExperimentConfig cfg = base;
    cfg.seed = base.seed + i;
    add({&dataflow, cfg, kind, "", ""});
  }
}

void Campaign::setTracePaths(const std::string& base) {
  DDS_REQUIRE(!base.empty(), "trace path base must be non-empty");
  if (entries_.size() == 1) {
    entries_.front().trace_path = base;
    return;
  }
  std::map<std::string, int> label_uses;
  for (const Entry& entry : entries_) {
    const std::string label =
        entry.label.empty() ? schedulerName(entry.kind) : entry.label;
    ++label_uses[label];
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    const std::string label =
        entry.label.empty() ? schedulerName(entry.kind) : entry.label;
    entry.trace_path = base + "." + label;
    if (label_uses[label] > 1) {
      entry.trace_path += "." + std::to_string(i);
    }
  }
}

void Campaign::setSubstrate(std::shared_ptr<Substrate> substrate) {
  DDS_REQUIRE(substrate != nullptr, "campaign substrate must be non-null");
  substrate_ = std::move(substrate);
}

ExperimentJob Campaign::job(std::size_t index) const {
  DDS_REQUIRE(index < entries_.size(), "job index out of range");
  const Entry& entry = entries_[index];
  ExperimentJob job;
  job.dataflow = entry.dataflow;
  job.config = *entry.base;
  job.config.seed = entry.seed;
  job.kind = entry.kind;
  job.label = entry.label;
  job.trace_path = entry.trace_path;
  job.tenant = entry.tenant;
  return job;
}

std::vector<ExperimentJob> Campaign::jobs() const {
  std::vector<ExperimentJob> out;
  out.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.push_back(job(i));
  }
  return out;
}

std::size_t CampaignResult::failureCount() const {
  std::size_t n = 0;
  for (const JobOutcome& o : outcomes) {
    if (!o.ok) ++n;
  }
  return n;
}

void CampaignResult::throwIfAnyFailed() const {
  for (const JobOutcome& o : outcomes) {
    if (!o.ok) {
      throw PreconditionError("campaign job '" + o.label +
                              "' failed: " + o.error);
    }
  }
}

CampaignResult runCampaign(const Campaign& campaign,
                           const RunnerOptions& options) {
  const std::size_t workers =
      options.jobs == 0 ? ThreadPool::hardwareConcurrency() : options.jobs;
  Substrate* substrate = campaign.substrate().get();
  CampaignResult result;
  result.jobs_used = workers;
  result.outcomes.reserve(campaign.size());
  const auto start = Clock::now();

  if (workers <= 1 || campaign.size() <= 1) {
    // Serial reference path: no pool, same code path per job.
    for (std::size_t i = 0; i < campaign.size(); ++i) {
      result.outcomes.push_back(runExperimentJob(campaign.job(i), i, substrate));
    }
    result.jobs_used = 1;
    result.wall_s = secondsSince(start);
    return result;
  }

  ThreadPool pool(workers);
  std::vector<std::future<JobOutcome>> futures;
  futures.reserve(campaign.size());
  for (std::size_t i = 0; i < campaign.size(); ++i) {
    // Materialize inside the worker: peak config copies stay O(workers),
    // not O(jobs).
    futures.push_back(pool.submit([&campaign, substrate, i]() {
      return runExperimentJob(campaign.job(i), i, substrate);
    }));
  }
  // Collect in submission order — completion order never leaks into the
  // result, which is what makes parallel output bit-identical to serial.
  for (auto& future : futures) {
    result.outcomes.push_back(future.get());
  }
  result.wall_s = secondsSince(start);
  return result;
}

std::string campaignJson(const CampaignResult& result,
                         const std::string& name,
                         const CampaignJsonOptions& options) {
  JsonWriter w;
  w.beginObject();
  w.key("name").value(name);
  w.key("jobs_used").value(result.jobs_used);
  if (options.include_timing) {
    w.key("wall_s").value(result.wall_s);
  }
  w.key("job_count").value(result.outcomes.size());
  w.key("failures").value(result.failureCount());
  w.key("runs").beginArray();
  for (const JobOutcome& o : result.outcomes) {
    w.beginObject();
    w.key("index").value(o.index);
    w.key("label").value(o.label);
    if (!o.tenant.empty()) {
      w.key("tenant").value(o.tenant);
    }
    w.key("scheduler").value(schedulerName(o.kind));
    w.key("seed").value(o.seed);
    w.key("ok").value(o.ok);
    if (options.include_timing) {
      w.key("wall_s").value(o.wall_s);
    }
    if (o.ok) {
      w.key("omega").value(o.result.average_omega);
      w.key("gamma").value(o.result.average_gamma);
      w.key("cost").value(o.result.total_cost);
      w.key("theta").value(o.result.theta);
      w.key("constraint_met").value(o.result.constraint_met);
      w.key("peak_vms").value(o.result.peak_vms);
      w.key("peak_cores").value(o.result.peak_cores);
      w.key("intervals").value(o.result.run.intervals().size());
      if (!o.result.metrics.empty()) {
        w.key("metrics").beginObject();
        for (const obs::MetricSample& m : o.result.metrics) {
          // *_per_s gauges are wall-clock measurements; a timing-free
          // document must not depend on them.
          if (!options.include_timing &&
              m.kind == obs::MetricSample::Kind::Gauge &&
              m.name.ends_with("_per_s")) {
            continue;
          }
          w.key(m.name).beginObject();
          switch (m.kind) {
            case obs::MetricSample::Kind::Counter:
              w.key("count").value(m.count);
              break;
            case obs::MetricSample::Kind::Gauge:
              w.key("value").value(m.value);
              break;
            case obs::MetricSample::Kind::Histogram:
              w.key("count").value(m.count);
              w.key("mean").value(m.mean);
              w.key("min").value(m.min);
              w.key("max").value(m.max);
              w.key("p50").value(m.p50);
              w.key("p95").value(m.p95);
              w.key("p99").value(m.p99);
              break;
          }
          w.endObject();
        }
        w.endObject();
      }
    } else {
      w.key("error").value(o.error);
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

void saveCampaignJson(const std::string& path, const CampaignResult& result,
                      const std::string& name) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << campaignJson(result, name);
  if (!out) throw IoError("failed writing: " + path);
}

std::string jobRecordJson(const JobOutcome& o, std::size_t index) {
  JsonWriter w(JsonWriter::Options{JsonWriter::Style::Compact,
                                   JsonWriter::NonFinitePolicy::StringSentinel});
  w.beginObject();
  w.key("v").value(JobSpec::kVersion);
  w.key("index").value(static_cast<std::uint64_t>(index));
  w.key("tenant").value(o.tenant);
  w.key("label").value(o.label);
  w.key("scheduler").value(schedulerName(o.kind));
  w.key("seed").value(o.seed);
  w.key("ok").value(o.ok);
  if (o.ok) {
    w.key("omega").value(o.result.average_omega);
    w.key("gamma").value(o.result.average_gamma);
    w.key("cost").value(o.result.total_cost);
    w.key("theta").value(o.result.theta);
    w.key("constraint_met").value(o.result.constraint_met);
    w.key("peak_vms").value(o.result.peak_vms);
    w.key("peak_cores").value(o.result.peak_cores);
    w.key("intervals").value(o.result.run.intervals().size());
  } else {
    w.key("error").value(o.error);
  }
  w.endObject();
  return w.str();
}

std::string campaignJsonl(const CampaignResult& result) {
  std::string out;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    out += jobRecordJson(result.outcomes[i], i);
    out += '\n';
  }
  return out;
}

}  // namespace dds
