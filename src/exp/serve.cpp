#include "dds/exp/serve.hpp"

#include <deque>
#include <future>
#include <istream>
#include <ostream>
#include <utility>

#include "dds/common/json.hpp"
#include "dds/common/thread_pool.hpp"

namespace dds {
namespace {

bool blankLine(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

/// One window slot: either a running job or an already-known rejection.
/// Rejections occupy a slot too, which is what keeps emission in line
/// order without any reordering logic.
struct Pending {
  std::size_t index = 0;
  std::future<JobOutcome> future;
  bool rejected = false;
  std::string error;
};

void emitRecord(std::ostream& out, const std::string& record) {
  out << record << '\n';
  out.flush();
}

}  // namespace

std::string specErrorJson(std::size_t index, const std::string& error) {
  JsonWriter w(JsonWriter::Options{JsonWriter::Style::Compact,
                                   JsonWriter::NonFinitePolicy::Throw});
  w.beginObject();
  w.key("v").value(JobSpec::kVersion);
  w.key("index").value(static_cast<std::uint64_t>(index));
  w.key("ok").value(false);
  w.key("rejected").value(true);
  w.key("error").value(error);
  w.endObject();
  return w.str();
}

ServeStats serveCampaign(std::istream& in, std::ostream& out,
                         const ServeOptions& options) {
  const std::size_t workers =
      options.jobs == 0 ? ThreadPool::hardwareConcurrency() : options.jobs;
  const std::shared_ptr<Substrate> substrate =
      options.substrate != nullptr ? options.substrate
                                   : std::make_shared<Substrate>();
  Substrate* sub = substrate.get();
  ServeStats stats;
  std::string line;
  std::size_t index = 0;

  if (workers <= 1) {
    // Serial reference path: parse, run, emit, one line at a time.
    while (std::getline(in, line)) {
      if (blankLine(line)) continue;
      const std::size_t i = index++;
      ++stats.specs;
      try {
        const ExperimentJob job = jobFromSpec(parseJobSpec(line), *sub);
        const JobOutcome outcome = runExperimentJob(job, i, sub);
        outcome.ok ? ++stats.ok : ++stats.failed;
        emitRecord(out, jobRecordJson(outcome, i));
      } catch (const ConfigError& e) {
        ++stats.rejected;
        emitRecord(out, specErrorJson(i, e.what()));
      }
    }
    return stats;
  }

  ThreadPool pool(workers);
  const std::size_t capacity = options.queue == 0 ? 2 * workers : options.queue;
  std::deque<Pending> window;

  auto drainFront = [&]() {
    Pending front = std::move(window.front());
    window.pop_front();
    if (front.rejected) {
      ++stats.rejected;
      emitRecord(out, specErrorJson(front.index, front.error));
      return;
    }
    const JobOutcome outcome = front.future.get();
    outcome.ok ? ++stats.ok : ++stats.failed;
    emitRecord(out, jobRecordJson(outcome, front.index));
  };

  while (std::getline(in, line)) {
    if (blankLine(line)) continue;
    const std::size_t i = index++;
    ++stats.specs;
    // Bounded admission: a full window blocks the reader on the oldest
    // job — input backpressure, ordered streaming output.
    while (window.size() >= capacity) drainFront();
    Pending pending;
    pending.index = i;
    try {
      ExperimentJob job = jobFromSpec(parseJobSpec(line), *sub);
      pending.future = pool.submit([job = std::move(job), i, sub]() {
        return runExperimentJob(job, i, sub);
      });
    } catch (const ConfigError& e) {
      pending.rejected = true;
      pending.error = e.what();
    }
    window.push_back(std::move(pending));
  }
  while (!window.empty()) drainFront();
  return stats;
}

}  // namespace dds
