#include "dds/exp/job_spec.hpp"

#include <cmath>

#include "dds/common/json.hpp"
#include "dds/common/json_value.hpp"

namespace dds {
namespace {

/// Keys a spec may not smuggle inside "config": the first three are
/// top-level spec fields, the last two are CLI-file-only controls.
bool reservedConfigKey(const std::string& key) {
  return key == "graph" || key == "chain_length" || key == "scheduler" ||
         key == "output_csv" || key == "config_schema";
}

std::string expectString(const JsonValue& v, const std::string& field) {
  const std::string* s = v.asString();
  if (s == nullptr) {
    throw ConfigError("job-spec field '" + field + "' must be a string");
  }
  return *s;
}

std::int64_t expectIntegral(const JsonValue& v, const std::string& field) {
  const double* n = v.asNumber();
  if (n == nullptr || !std::isfinite(*n) || *n != std::floor(*n)) {
    throw ConfigError("job-spec field '" + field +
                      "' must be an integral number");
  }
  return static_cast<std::int64_t>(*n);
}

JobSpec::ConfigValue configValueFrom(const JsonValue& v,
                                     const std::string& key) {
  JobSpec::ConfigValue out;
  if (const bool* b = v.asBool()) {
    out.kind = JobSpec::ConfigValue::Kind::Bool;
    out.boolean = *b;
  } else if (const double* n = v.asNumber()) {
    out.kind = JobSpec::ConfigValue::Kind::Number;
    out.number = *n;
  } else if (const std::string* s = v.asString()) {
    out.kind = JobSpec::ConfigValue::Kind::String;
    out.text = *s;
  } else {
    throw ConfigError("job-spec config key '" + key +
                      "' must be a number, bool or string");
  }
  return out;
}

}  // namespace

std::string JobSpec::ConfigValue::asConfigString() const {
  switch (kind) {
    case Kind::Bool:
      return boolean ? "true" : "false";
    case Kind::Number:
      return jsonNumber(number);
    case Kind::String:
      return text;
  }
  throw PreconditionError("unreachable: bad ConfigValue kind");
}

std::string JobSpec::toJson() const {
  JsonWriter w(JsonWriter::Options{JsonWriter::Style::Compact,
                                   JsonWriter::NonFinitePolicy::Throw});
  w.beginObject();
  w.key("v").value(kVersion);
  if (!tenant.empty()) w.key("tenant").value(tenant);
  if (!label.empty()) w.key("label").value(label);
  w.key("graph").value(graph);
  if (graph == "chain") {
    w.key("chain_length").value(static_cast<std::uint64_t>(chain_length));
  }
  w.key("scheduler").value(scheduler);
  w.key("config").beginObject();
  for (const auto& [key, value] : config) {
    w.key(key);
    switch (value.kind) {
      case ConfigValue::Kind::Bool:
        w.value(value.boolean);
        break;
      case ConfigValue::Kind::Number:
        w.value(value.number);
        break;
      case ConfigValue::Kind::String:
        w.value(value.text);
        break;
    }
  }
  w.endObject();
  w.endObject();
  return w.str();
}

JobSpec parseJobSpec(const std::string& json_line) {
  JsonValue root;
  try {
    root = parseJson(json_line);
  } catch (const IoError& e) {
    throw ConfigError(std::string("job spec is not valid JSON: ") + e.what());
  }
  const JsonObject* obj = root.asObject();
  if (obj == nullptr) {
    throw ConfigError("job spec must be a JSON object");
  }

  JobSpec spec;
  bool saw_version = false;
  for (const auto& [field, value] : *obj) {
    if (field == "v") {
      const std::int64_t v = expectIntegral(value, "v");
      if (v != JobSpec::kVersion) {
        throw ConfigError("unsupported job-spec version " +
                          std::to_string(v) + " (this build speaks v" +
                          std::to_string(JobSpec::kVersion) + ")");
      }
      saw_version = true;
    } else if (field == "tenant") {
      spec.tenant = expectString(value, field);
    } else if (field == "label") {
      spec.label = expectString(value, field);
    } else if (field == "graph") {
      spec.graph = expectString(value, field);
    } else if (field == "chain_length") {
      const std::int64_t n = expectIntegral(value, field);
      if (n < 1) {
        throw ConfigError("job-spec chain_length must be >= 1");
      }
      spec.chain_length = static_cast<std::size_t>(n);
    } else if (field == "scheduler") {
      spec.scheduler = expectString(value, field);
    } else if (field == "config") {
      const JsonObject* cfg = value.asObject();
      if (cfg == nullptr) {
        throw ConfigError("job-spec field 'config' must be an object");
      }
      for (const auto& [key, cv] : *cfg) {
        if (reservedConfigKey(key)) {
          throw ConfigError(
              "job-spec config key '" + key + "' is reserved" +
              (key == "output_csv" || key == "config_schema"
                   ? " (it has no meaning in a job spec)"
                   : " (set it as a top-level spec field)"));
        }
        spec.config.emplace_back(key, configValueFrom(cv, key));
      }
    } else {
      throw ConfigError("unknown job-spec field '" + field +
                        "' (schema v" + std::to_string(JobSpec::kVersion) +
                        ")");
    }
  }
  if (!saw_version) {
    throw ConfigError("job spec is missing required field 'v'");
  }
  return spec;
}

CliExperiment experimentFromSpec(const JobSpec& spec) {
  KeyValueConfig kv;
  // Specs always parse strictly: deprecated flat aliases are rejected
  // with the canonical replacement named, same as a strict config file.
  kv.set("config_schema", "strict");
  kv.set("graph", spec.graph);
  if (spec.graph == "chain") {
    kv.set("chain_length", std::to_string(spec.chain_length));
  }
  kv.set("scheduler", spec.scheduler);
  for (const auto& [key, value] : spec.config) {
    kv.set(key, value.asConfigString());
  }
  return experimentFromConfig(kv);
}

}  // namespace dds
