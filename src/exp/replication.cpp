#include "dds/exp/replication.hpp"

#include "dds/exp/campaign.hpp"

namespace dds {

ReplicatedResult runReplicated(const Dataflow& dataflow,
                               ExperimentConfig base, SchedulerKind kind,
                               std::size_t runs, std::size_t jobs) {
  DDS_REQUIRE(runs >= 1, "need at least one run");
  Campaign campaign;
  campaign.addSeedSweep(dataflow, base, kind, runs);
  RunnerOptions options;
  options.jobs = jobs;
  const CampaignResult outcome = runCampaign(campaign, options);
  outcome.throwIfAnyFailed();

  ReplicatedResult out;
  out.runs = runs;
  // Outcomes arrive in submission (= seed) order; folding them in that
  // order keeps the floating-point aggregates bit-identical to a serial
  // loop.
  for (const JobOutcome& o : outcome.outcomes) {
    const ExperimentResult& r = o.result;
    out.scheduler_name = r.scheduler_name;
    out.omega.add(r.average_omega);
    out.gamma.add(r.average_gamma);
    out.cost.add(r.total_cost);
    out.theta.add(r.theta);
    if (!r.constraint_met) ++out.constraint_violations;
  }
  return out;
}

}  // namespace dds
