#include "dds/exp/substrate.hpp"

#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sched/plan_evaluator.hpp"
#include "dds/sim/fluid_layout.hpp"

namespace dds {

std::shared_ptr<const ResourceCatalog> Substrate::catalogFor(
    const ExperimentConfig& config) {
  const double discount = config.elasticity.spotEnabled()
                              ? config.elasticity.spot_discount
                              : 0.0;
  const std::pair<std::string, double> key{config.catalog, discount};
  std::scoped_lock lock(mutex_);
  auto it = catalogs_.find(key);
  if (it != catalogs_.end()) {
    ++stats_.catalog_hits;
    return it->second;
  }
  ++stats_.catalog_builds;
  // The exact resolution the engine performs standalone.
  auto catalog = std::make_shared<const ResourceCatalog>(
      discount > 0.0 ? withSpotTier(catalogByName(config.catalog), discount)
                     : catalogByName(config.catalog));
  catalogs_.emplace(key, catalog);
  return catalog;
}

std::shared_ptr<const TracePools> Substrate::tracePoolsFor(
    std::uint64_t seed) {
  std::scoped_lock lock(mutex_);
  auto it = pools_.find(seed);
  if (it != pools_.end()) {
    ++stats_.pool_hits;
    return it->second;
  }
  ++stats_.pool_builds;
  auto pools = TraceReplayer::makeFutureGridPools(seed);
  pools_.emplace(seed, pools);
  return pools;
}

std::shared_ptr<const PlanStructure> Substrate::planStructureFor(
    const Dataflow& df, std::shared_ptr<const ResourceCatalog> catalog) {
  DDS_REQUIRE(catalog != nullptr, "plan structure needs a catalog");
  const std::pair<const void*, const void*> key{&df, catalog.get()};
  std::scoped_lock lock(mutex_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++stats_.plan_hits;
    return it->second;
  }
  ++stats_.plan_builds;
  auto plan = PlanStructure::build(df, *catalog);
  plans_.emplace(key, plan);
  return plan;
}

std::shared_ptr<const Dataflow> Substrate::graphFor(
    const std::string& graph, std::size_t chain_length) {
  // Only "chain" reads the length; normalize the key so "paper" jobs with
  // different chain_length defaults share one graph.
  const std::pair<std::string, std::size_t> key{
      graph, graph == "chain" ? chain_length : 0};
  std::scoped_lock lock(mutex_);
  auto it = graphs_.find(key);
  if (it != graphs_.end()) {
    ++stats_.graph_hits;
    return it->second;
  }
  ++stats_.graph_builds;
  std::shared_ptr<const Dataflow> df;
  if (graph == "paper") {
    df = std::make_shared<const Dataflow>(makePaperDataflow());
  } else if (graph == "diamond") {
    df = std::make_shared<const Dataflow>(makeDiamondDataflow());
  } else if (graph == "chain") {
    df = std::make_shared<const Dataflow>(makeChainDataflow(chain_length, 2));
  } else {
    throw PreconditionError("unknown graph: '" + graph + "'");
  }
  graphs_.emplace(key, df);
  return df;
}

std::shared_ptr<const FluidGraphLayout> Substrate::fluidLayoutFor(
    const Dataflow& df) {
  std::scoped_lock lock(mutex_);
  auto it = fluid_layouts_.find(&df);
  if (it != fluid_layouts_.end()) {
    ++stats_.fluid_layout_hits;
    return it->second;
  }
  ++stats_.fluid_layout_builds;
  auto layout = buildFluidLayout(df);
  fluid_layouts_.emplace(&df, layout);
  return layout;
}

EngineArenas Substrate::arenasFor(const Dataflow& df,
                                  const ExperimentConfig& config) {
  EngineArenas arenas;
  arenas.catalog = catalogFor(config);
  if (config.workload.infra_variability) {
    arenas.trace_pools = tracePoolsFor(config.seed);
  }
  arenas.plan_structure = planStructureFor(df, arenas.catalog);
  if (config.backend == SimBackend::Fluid && !config.fluid_reference_engine) {
    arenas.fluid_layout = fluidLayoutFor(df);
  }
  return arenas;
}

Substrate::Stats Substrate::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace dds
