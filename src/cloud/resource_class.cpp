#include "dds/cloud/resource_class.hpp"

namespace dds {

ResourceCatalog::ResourceCatalog(std::vector<ResourceClass> classes)
    : classes_(std::move(classes)) {
  DDS_REQUIRE(!classes_.empty(), "catalog needs at least one class");
  for (const auto& c : classes_) c.validate();
}

ResourceClassId ResourceCatalog::largest() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < classes_.size(); ++i) {
    const double pi = classes_[i].totalPower();
    const double pb = classes_[best].totalPower();
    if (pi > pb ||
        (pi == pb && classes_[i].price_per_hour <
                         classes_[best].price_per_hour)) {
      best = i;
    }
  }
  return ResourceClassId(static_cast<ResourceClassId::value_type>(best));
}

ResourceClassId ResourceCatalog::smallestFitting(double core_power) const {
  DDS_REQUIRE(core_power >= 0.0, "core power must be non-negative");
  bool found = false;
  std::size_t best = 0;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].totalPower() + 1e-12 < core_power) continue;
    if (!found ||
        classes_[i].price_per_hour < classes_[best].price_per_hour ||
        (classes_[i].price_per_hour == classes_[best].price_per_hour &&
         classes_[i].totalPower() < classes_[best].totalPower())) {
      best = i;
      found = true;
    }
  }
  return found ? ResourceClassId(
                     static_cast<ResourceClassId::value_type>(best))
               : largest();
}

ResourceClassId ResourceCatalog::byName(const std::string& name) const {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].name == name) {
      return ResourceClassId(static_cast<ResourceClassId::value_type>(i));
    }
  }
  throw PreconditionError("no such resource class: " + name);
}

namespace {

bool sameHardware(const ResourceClass& a, const ResourceClass& b) {
  return a.cores == b.cores && a.core_speed == b.core_speed &&
         a.bandwidth_mbps == b.bandwidth_mbps;
}

}  // namespace

bool ResourceCatalog::hasPreemptible() const {
  for (const auto& c : classes_) {
    if (c.preemptible) return true;
  }
  return false;
}

ResourceClassId ResourceCatalog::onDemandTwin(ResourceClassId id) const {
  const ResourceClass& spot = at(id);
  if (!spot.preemptible) return id;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (!classes_[i].preemptible && sameHardware(classes_[i], spot)) {
      return ResourceClassId(static_cast<ResourceClassId::value_type>(i));
    }
  }
  throw PreconditionError("spot class has no on-demand twin: " + spot.name);
}

std::optional<ResourceClassId> ResourceCatalog::spotTwin(
    ResourceClassId id) const {
  const ResourceClass& od = at(id);
  if (od.preemptible) return id;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].preemptible && sameHardware(classes_[i], od)) {
      return ResourceClassId(static_cast<ResourceClassId::value_type>(i));
    }
  }
  return std::nullopt;
}

ResourceCatalog withSpotTier(const ResourceCatalog& base, double discount) {
  DDS_REQUIRE(discount > 0.0 && discount < 1.0,
              "spot discount must be in (0, 1)");
  std::vector<ResourceClass> classes = base.classes();
  const std::size_t n = classes.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (classes[i].preemptible) continue;
    ResourceClass spot = classes[i];
    spot.name += "-spot";
    spot.price_per_hour *= 1.0 - discount;
    spot.preemptible = true;
    classes.push_back(std::move(spot));
  }
  return ResourceCatalog(std::move(classes));
}

ResourceCatalog awsCatalog2013() {
  return ResourceCatalog({
      {"m1.small", 1, 1.0, 100.0, 0.06},
      {"m1.medium", 1, 2.0, 100.0, 0.12},
      {"m1.large", 2, 2.0, 100.0, 0.24},
      {"m1.xlarge", 4, 2.0, 100.0, 0.48},
  });
}

ResourceCatalog awsCatalogSecondGen2013() {
  // 13 / 26 ECU over 4 / 8 cores; ~$0.077 per unit of power vs m1's $0.06.
  return ResourceCatalog({
      {"m3.xlarge", 4, 3.25, 100.0, 1.00},
      {"m3.2xlarge", 8, 3.25, 100.0, 2.00},
  });
}

ResourceCatalog awsCatalogMixed2013() {
  return ResourceCatalog({
      {"m1.small", 1, 1.0, 100.0, 0.06},
      {"m1.medium", 1, 2.0, 100.0, 0.12},
      {"m1.large", 2, 2.0, 100.0, 0.24},
      {"m1.xlarge", 4, 2.0, 100.0, 0.48},
      {"m3.xlarge", 4, 3.25, 100.0, 1.00},
      {"m3.2xlarge", 8, 3.25, 100.0, 2.00},
  });
}

ResourceCatalog catalogByName(const std::string& name) {
  if (name == "m1") return awsCatalog2013();
  if (name == "m3") return awsCatalogSecondGen2013();
  if (name == "mixed") return awsCatalogMixed2013();
  throw PreconditionError("unknown catalog: " + name);
}

}  // namespace dds
