#include "dds/cloud/placement_model.hpp"

namespace dds {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PlacementModel::PlacementModel(PlacementConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  config_.validate();
}

int PlacementModel::rackOf(VmId vm) const {
  const std::uint64_t h = splitmix64(seed_ ^ (0x9d2c5680ull + vm.value()));
  return static_cast<int>(h % static_cast<std::uint64_t>(config_.racks));
}

}  // namespace dds
