#include "dds/cloud/cloud_provider.hpp"

#include <algorithm>

namespace dds {

VmId CloudProvider::acquireInternal(ResourceClassId cls, SimTime t) {
  DDS_REQUIRE(t >= 0.0, "acquire time must be non-negative");
  const VmId id(static_cast<VmId::value_type>(instances_.size()));
  instances_.emplace_back(id, cls, catalog_->at(cls), t);
  ++ledger_generation_;
  return id;
}

VmId CloudProvider::acquire(ResourceClassId cls, SimTime t) {
  const VmId id = acquireInternal(cls, t);
  if (tracer_.enabled()) {
    const ResourceClass& spec = catalog_->at(cls);
    tracer_.emit(obs::VmAcquireEvent{.t = t,
                                     .vm = id.value(),
                                     .vm_class = spec.name,
                                     .cores = spec.cores,
                                     .price_per_hour = spec.price_per_hour,
                                     .ready = t});
  }
  return id;
}

AcquisitionResult CloudProvider::tryAcquire(ResourceClassId cls, SimTime t) {
  DDS_REQUIRE(t >= 0.0, "acquire time must be non-negative");
  const std::uint64_t attempt = acquisition_attempts_++;
  if (acq_faults_ != nullptr && acq_faults_->acquisitionRejected(attempt)) {
    ++rejections_;
    if (tracer_.enabled()) {
      tracer_.emit(obs::AcquisitionFailureEvent{
          .t = t, .vm_class = catalog_->at(cls).name});
    }
    return {};
  }
  AcquisitionResult result;
  result.accepted = true;
  result.vm = acquireInternal(cls, t);
  result.ready_time =
      acq_faults_ != nullptr
          ? t + acq_faults_->provisioningDelay(result.vm, catalog_->at(cls))
          : t;
  instances_[result.vm.value()].setReadyTime(result.ready_time);
  if (tracer_.enabled()) {
    const ResourceClass& spec = catalog_->at(cls);
    tracer_.emit(obs::VmAcquireEvent{.t = t,
                                     .vm = result.vm.value(),
                                     .vm_class = spec.name,
                                     .cores = spec.cores,
                                     .price_per_hour = spec.price_per_hour,
                                     .ready = result.ready_time});
  }
  return result;
}

void CloudProvider::release(VmId id, SimTime t) {
  DDS_REQUIRE(instance(id).allocatedCoreCount() == 0,
              "release requires all cores to be freed first");
  terminate(id, t, TerminationReason::Released);
}

void CloudProvider::terminate(VmId id, SimTime t, TerminationReason reason) {
  VmInstance& vm = instance(id);
  vm.shutdown(t, reason);
  if (tracer_.enabled()) {
    tracer_.emit(obs::VmReleaseEvent{.t = t,
                                     .vm = id.value(),
                                     .vm_class = vm.spec().name,
                                     .billed_cost = instanceCost(id, t)});
  }
}

SimTime CloudProvider::preemptionTimeOf(VmId id) const {
  const VmInstance& vm = instance(id);
  if (preemption_model_ == nullptr || !vm.spec().preemptible) {
    return std::numeric_limits<SimTime>::infinity();
  }
  return preemption_model_->preemptionTime(id, vm.startTime());
}

std::vector<VmId> CloudProvider::activeVms() const {
  std::vector<VmId> out;
  for (const auto& vm : instances_) {
    if (vm.isActive()) out.push_back(vm.id());
  }
  return out;
}

int CloudProvider::billedHours(VmId id, SimTime t) const {
  const VmInstance& vm = instance(id);
  const SimTime end = std::min(vm.offTime(), t);
  if (end <= vm.startTime()) return 0;
  const double hours = (end - vm.startTime()) / kSecondsPerHour;
  // Spot convention (2013 AWS): when the *provider* reclaims the instance,
  // the partial started hour is forgiven — only whole elapsed hours bill.
  // Tenant-initiated release and tenant-side crashes keep the round-up rule.
  if (vm.terminationReason() == TerminationReason::Preempted &&
      t >= vm.offTime()) {
    return static_cast<int>(std::floor(hours + 1e-12));
  }
  return static_cast<int>(std::ceil(hours - 1e-12));
}

double CloudProvider::instanceCost(VmId id, SimTime t) const {
  return static_cast<double>(billedHours(id, t)) *
         instance(id).spec().price_per_hour;
}

double CloudProvider::accumulatedCost(SimTime t) const {
  double total = 0.0;
  for (const auto& vm : instances_) total += instanceCost(vm.id(), t);
  return total;
}

SimTime CloudProvider::timeToNextHourBoundary(VmId id, SimTime t) const {
  const VmInstance& vm = instance(id);
  DDS_REQUIRE(t >= vm.startTime(), "time precedes VM start");
  const double elapsed = t - vm.startTime();
  const double into_hour = std::fmod(elapsed, kSecondsPerHour);
  return into_hour == 0.0 ? 0.0 : kSecondsPerHour - into_hour;
}

}  // namespace dds
