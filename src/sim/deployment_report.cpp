#include "dds/sim/deployment_report.hpp"

#include <iomanip>
#include <sstream>

namespace dds {

std::string renderVmLayout(const Dataflow& df, const CloudProvider& cloud) {
  std::ostringstream os;
  for (const VmId id : cloud.activeVms()) {
    const VmInstance& vm = cloud.instance(id);
    os << "vm-" << id.value() << "  " << std::setw(10) << std::left
       << vm.spec().name << "  $" << vm.spec().price_per_hour << "/h  [";
    for (int c = 0; c < vm.coreCount(); ++c) {
      if (c > 0) os << '|';
      const auto owner = vm.coreOwner(c);
      os << (owner.has_value() ? df.pe(*owner).name() : std::string("--"));
    }
    os << "]\n";
  }
  if (cloud.activeVms().empty()) os << "(no active VMs)\n";
  return os.str();
}

std::string renderPeAllocations(const Dataflow& df,
                                const CloudProvider& cloud,
                                const Deployment& deployment) {
  std::ostringstream os;
  for (const auto& pe : df.pes()) {
    const AlternateId active = deployment.activeAlternate(pe.id());
    const auto cores = peCores(cloud, pe.id());
    int total = 0;
    for (const auto& vc : cores) total += vc.cores;
    os << "PE " << pe.name() << " (" << pe.alternate(active).name
       << "): " << total << (total == 1 ? " core" : " cores")
       << ", rated power " << ratedPowerOf(cloud, pe.id()) << ", on "
       << cores.size() << (cores.size() == 1 ? " VM" : " VMs") << '\n';
  }
  return os.str();
}

std::string renderDeployment(const Dataflow& df, const CloudProvider& cloud,
                             const Deployment& deployment, SimTime now) {
  std::ostringstream os;
  os << "=== deployment of '" << df.name() << "' at t=" << now << "s ===\n"
     << renderVmLayout(df, cloud) << renderPeAllocations(df, cloud,
                                                         deployment)
     << "accumulated cost: $" << cloud.accumulatedCost(now) << '\n';
  return os.str();
}

}  // namespace dds
