#include "dds/sim/rate_model.hpp"

namespace dds {

void expectedArrivalRatesInto(const Dataflow& df,
                              const Deployment& deployment,
                              double input_rate,
                              std::vector<double>& arrival) {
  DDS_REQUIRE(input_rate >= 0.0, "input rate must be non-negative");
  DDS_REQUIRE(deployment.peCount() == df.peCount(),
              "deployment does not match dataflow");
  arrival.assign(df.peCount(), 0.0);
  for (const PeId pe : df.topologicalOrder()) {
    if (df.isInput(pe)) {
      arrival[pe.value()] = input_rate;
    } else {
      double sum = 0.0;
      for (const PeId u : df.predecessors(pe)) {
        const auto& alt = df.pe(u).alternate(deployment.activeAlternate(u));
        sum += arrival[u.value()] * alt.selectivity;
      }
      arrival[pe.value()] = sum;
    }
  }
}

std::vector<double> expectedArrivalRates(const Dataflow& df,
                                         const Deployment& deployment,
                                         double input_rate) {
  std::vector<double> arrival;
  expectedArrivalRatesInto(df, deployment, input_rate, arrival);
  return arrival;
}

void expectedOutputRatesInto(const Dataflow& df, const Deployment& deployment,
                             double input_rate, std::vector<double>& rates) {
  expectedArrivalRatesInto(df, deployment, input_rate, rates);
  for (const auto& pe : df.pes()) {
    const auto& alt = pe.alternate(deployment.activeAlternate(pe.id()));
    rates[pe.id().value()] *= alt.selectivity;
  }
}

std::vector<double> expectedOutputRates(const Dataflow& df,
                                        const Deployment& deployment,
                                        double input_rate) {
  std::vector<double> rates;
  expectedOutputRatesInto(df, deployment, input_rate, rates);
  return rates;
}

void requiredCorePowerInto(const Dataflow& df, const Deployment& deployment,
                           double input_rate, std::vector<double>& power) {
  expectedArrivalRatesInto(df, deployment, input_rate, power);
  for (const auto& pe : df.pes()) {
    const auto& alt = pe.alternate(deployment.activeAlternate(pe.id()));
    power[pe.id().value()] *= alt.cost_core_sec;
  }
}

std::vector<double> requiredCorePower(const Dataflow& df,
                                      const Deployment& deployment,
                                      double input_rate) {
  std::vector<double> power;
  requiredCorePowerInto(df, deployment, input_rate, power);
  return power;
}

}  // namespace dds
