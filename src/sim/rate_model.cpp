#include "dds/sim/rate_model.hpp"

namespace dds {

std::vector<double> expectedArrivalRates(const Dataflow& df,
                                         const Deployment& deployment,
                                         double input_rate) {
  DDS_REQUIRE(input_rate >= 0.0, "input rate must be non-negative");
  DDS_REQUIRE(deployment.peCount() == df.peCount(),
              "deployment does not match dataflow");
  std::vector<double> arrival(df.peCount(), 0.0);
  for (const PeId pe : df.topologicalOrder()) {
    if (df.isInput(pe)) {
      arrival[pe.value()] = input_rate;
    } else {
      double sum = 0.0;
      for (const PeId u : df.predecessors(pe)) {
        const auto& alt = df.pe(u).alternate(deployment.activeAlternate(u));
        sum += arrival[u.value()] * alt.selectivity;
      }
      arrival[pe.value()] = sum;
    }
  }
  return arrival;
}

std::vector<double> expectedOutputRates(const Dataflow& df,
                                        const Deployment& deployment,
                                        double input_rate) {
  auto rates = expectedArrivalRates(df, deployment, input_rate);
  for (const auto& pe : df.pes()) {
    const auto& alt = pe.alternate(deployment.activeAlternate(pe.id()));
    rates[pe.id().value()] *= alt.selectivity;
  }
  return rates;
}

std::vector<double> requiredCorePower(const Dataflow& df,
                                      const Deployment& deployment,
                                      double input_rate) {
  auto power = expectedArrivalRates(df, deployment, input_rate);
  for (const auto& pe : df.pes()) {
    const auto& alt = pe.alternate(deployment.activeAlternate(pe.id()));
    power[pe.id().value()] *= alt.cost_core_sec;
  }
  return power;
}

}  // namespace dds
