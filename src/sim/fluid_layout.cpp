#include "dds/sim/fluid_layout.hpp"

namespace dds {

std::shared_ptr<const FluidGraphLayout> buildFluidLayout(const Dataflow& df) {
  auto layout = std::make_shared<FluidGraphLayout>();
  const std::size_t n = df.peCount();
  layout->pe_count = static_cast<std::uint32_t>(n);
  layout->is_input.assign(n, 0);
  layout->topo.reserve(n);
  layout->edge_offset.reserve(n + 1);
  layout->edge_offset.push_back(0);
  layout->edge_u.reserve(df.edgeCount());
  for (const PeId pe : df.topologicalOrder()) {
    layout->topo.push_back(pe.value());
    if (df.isInput(pe)) layout->is_input[pe.value()] = 1;
    for (const PeId u : df.predecessors(pe)) {
      layout->edge_u.push_back(u.value());
    }
    layout->edge_offset.push_back(
        static_cast<std::uint32_t>(layout->edge_u.size()));
  }
  layout->alt_offset.reserve(n + 1);
  layout->alt_offset.push_back(0);
  for (const auto& pe : df.pes()) {
    for (std::size_t a = 0; a < pe.alternateCount(); ++a) {
      const AlternateId alt(static_cast<AlternateId::value_type>(a));
      layout->alt_cost_core_sec.push_back(pe.alternate(alt).cost_core_sec);
      layout->alt_selectivity.push_back(pe.alternate(alt).selectivity);
      layout->alt_relative_value.push_back(pe.relativeValue(alt));
    }
    layout->alt_offset.push_back(
        static_cast<std::uint32_t>(layout->alt_selectivity.size()));
  }
  layout->outputs.reserve(df.outputs().size());
  for (const PeId o : df.outputs()) layout->outputs.push_back(o.value());
  return layout;
}

}  // namespace dds
