#include "dds/sim/fluid_kernel.hpp"

#include <algorithm>
#include <cmath>

namespace dds {
namespace {

constexpr SimTime kNeverValid = -std::numeric_limits<SimTime>::infinity();

std::uint64_t directionalPairKey(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

}  // namespace

FluidKernel::FluidKernel(const Dataflow& df, const CloudProvider& cloud,
                         const MonitoringService& mon, const SimConfig& cfg,
                         std::shared_ptr<const FluidGraphLayout> layout)
    : df_(&df),
      cloud_(&cloud),
      mon_(&mon),
      cfg_(cfg),
      layout_(std::move(layout)) {
  if (layout_ == nullptr) layout_ = buildFluidLayout(df);
  DDS_REQUIRE(layout_->pe_count == df.peCount(),
              "fluid layout does not match dataflow");
  pe_cores_.resize(layout_->pe_count);
}

std::uint32_t FluidKernel::pairSlot(std::uint32_t a, std::uint32_t b) {
  const auto [it, inserted] = pair_slot_of_.try_emplace(
      directionalPairKey(a, b), static_cast<std::uint32_t>(pair_coeff_.size()));
  if (inserted) {
    pair_coeff_.push_back({});
    pair_a_.push_back(a);
    pair_b_.push_back(b);
  }
  return it->second;
}

void FluidKernel::rebuild() {
  built_ = true;
  generation_ = cloud_->ledgerGeneration();
  ++rebuilds_;
  const FluidGraphLayout& L = *layout_;
  const std::size_t n = L.pe_count;

  // Same single ledger pass as the reference kernel's beginInterval():
  // exactly one VmCores entry per (PE, VM) pair, in VM-id order.
  for (auto& cores : pe_cores_) cores.clear();
  for (const VmInstance& vm : cloud_->instances()) {
    if (!vm.isActive()) continue;
    vm_pe_scratch_.clear();
    for (int core = 0; core < vm.coreCount(); ++core) {
      const std::optional<PeId> owner = vm.coreOwner(core);
      if (!owner.has_value()) continue;
      bool found = false;
      for (auto& [pe, count] : vm_pe_scratch_) {
        if (pe == *owner) {
          ++count;
          found = true;
          break;
        }
      }
      if (!found) vm_pe_scratch_.emplace_back(*owner, 1);
    }
    for (const auto& [pe, count] : vm_pe_scratch_) {
      pe_cores_[pe.value()].push_back({vm.id(), count});
    }
  }
  cpu_coeff_.resize(cloud_->instanceCount());

  cap_offset_.assign(n + 1, 0);
  cap_vm_.clear();
  cap_cores_.clear();
  pe_cores_total_.assign(n, 0);
  total_cores_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    int cores = 0;
    for (const VmCores& vc : pe_cores_[i]) {
      cap_vm_.push_back(vc.vm.value());
      cap_cores_.push_back(static_cast<double>(vc.cores));
      cores += vc.cores;
    }
    pe_cores_total_[i] = cores;
    total_cores_ += cores;
    cap_offset_[i + 1] = static_cast<std::uint32_t>(cap_vm_.size());
  }
  pe_power_.assign(n, 0.0);
  pe_power_valid_.assign(n, kNeverValid);

  const std::size_t ecount = L.edgeCount();
  entry_offset_.assign(1, 0);
  entry_vm_.clear();
  entry_cores_.clear();
  entry_colocated_.clear();
  pair_offset_.assign(1, 0);
  pair_slots_.clear();
  edge_runnable_.assign(ecount, 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::uint32_t v = L.topo[pos];
    const auto& v_cores = pe_cores_[v];
    const std::uint32_t e_end = L.edge_offset[pos + 1];
    for (std::uint32_t e = L.edge_offset[pos]; e < e_end; ++e) {
      const std::uint32_t u = L.edge_u[e];
      const auto& u_cores = pe_cores_[u];
      if (!u_cores.empty() && !v_cores.empty()) {
        edge_runnable_[e] = 1;
        for (const VmCores& uc : u_cores) {
          entry_vm_.push_back(uc.vm.value());
          entry_cores_.push_back(static_cast<double>(uc.cores));
          bool colocated = false;
          for (const VmCores& vc : v_cores) {
            if (vc.vm == uc.vm) {
              colocated = true;
              break;
            }
            pair_slots_.push_back(pairSlot(uc.vm.value(), vc.vm.value()));
          }
          entry_colocated_.push_back(colocated ? 1 : 0);
          pair_offset_.push_back(
              static_cast<std::uint32_t>(pair_slots_.size()));
        }
      }
      entry_offset_.push_back(static_cast<std::uint32_t>(entry_vm_.size()));
    }
  }
  edge_coloc_power_.assign(ecount, 0.0);
  edge_remote_cap_.assign(ecount, 0.0);
  edge_valid_.assign(ecount, kNeverValid);
}

void FluidKernel::refreshPair(std::uint32_t slot, SimTime t_mid) {
  const CoeffSample c = mon_->observedBandwidthSample(
      VmId(pair_a_[slot]), VmId(pair_b_[slot]), t_mid);
  pair_coeff_[slot] = {c.value, c.valid_until};
}

void FluidKernel::refreshPePower(std::uint32_t pe, SimTime t_mid) {
  double power = 0.0;
  SimTime valid = std::numeric_limits<SimTime>::infinity();
  const std::uint32_t end = cap_offset_[pe + 1];
  for (std::uint32_t k = cap_offset_[pe]; k < end; ++k) {
    Slot& s = cpu_coeff_[cap_vm_[k]];
    if (!(t_mid < s.valid_until)) {
      const CoeffSample c =
          mon_->observedCorePowerSample(VmId(cap_vm_[k]), t_mid);
      s = {c.value, c.valid_until};
    }
    power += cap_cores_[k] * s.value;
    valid = std::min(valid, s.valid_until);
  }
  pe_power_[pe] = power;
  pe_power_valid_[pe] = valid;
}

void FluidKernel::refreshEdge(std::uint32_t e, std::uint32_t u,
                              SimTime t_mid) {
  // Precondition: u precedes this edge's head in topological order, so
  // u's capacity phase already refreshed every core-power slot below for
  // this t_mid — reading .value without a staleness check is exact, and
  // matches the reference kernel's per-interval memo hit.
  double coloc = 0.0;
  double remote = 0.0;
  SimTime valid = pe_power_valid_[u];
  const std::uint32_t k_end = entry_offset_[e + 1];
  for (std::uint32_t k = entry_offset_[e]; k < k_end; ++k) {
    const std::uint32_t q_end = pair_offset_[k + 1];
    if (entry_colocated_[k]) {
      coloc += entry_cores_[k] * cpu_coeff_[entry_vm_[k]].value;
      // The reference kernel queries the pairs before the colocation
      // break and discards them. A first-ever pair query assigns its
      // trace (RNG draw), so keep stale ones alive at the same walk
      // position — but leave them out of the aggregate's window: their
      // values never enter it.
      for (std::uint32_t q = pair_offset_[k]; q < q_end; ++q) {
        const std::uint32_t slot = pair_slots_[q];
        if (!(t_mid < pair_coeff_[slot].valid_until)) {
          refreshPair(slot, t_mid);
        }
      }
    } else {
      double best_mbps = 0.0;
      for (std::uint32_t q = pair_offset_[k]; q < q_end; ++q) {
        const std::uint32_t slot = pair_slots_[q];
        if (!(t_mid < pair_coeff_[slot].valid_until)) {
          refreshPair(slot, t_mid);
        }
        best_mbps = std::max(best_mbps, pair_coeff_[slot].value);
        valid = std::min(valid, pair_coeff_[slot].valid_until);
      }
      remote += cfg_.linkMsgsPerSec(best_mbps);
    }
  }
  edge_coloc_power_[e] = coloc;
  edge_remote_cap_[e] = remote;
  edge_valid_[e] = valid;
}

void FluidKernel::runInterval(SimTime t_start, SimTime dt, double input_rate,
                              const Deployment& deployment,
                              IntervalMetrics& m, std::vector<double>& backlog,
                              std::vector<double>& in_transit,
                              std::vector<SimTime>& pause_remaining,
                              std::vector<double>& output_rate,
                              std::vector<double>& expected_rate) {
  if (!built_ || cloud_->ledgerGeneration() != generation_) rebuild();
  const FluidGraphLayout& L = *layout_;
  const SimTime t_mid = t_start + 0.5 * dt;
  const std::size_t n = L.pe_count;

  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::uint32_t i = L.topo[pos];
    PeIntervalStats& st = m.pe_stats[i];

    double arrival = 0.0;
    if (L.is_input[i] != 0) {
      arrival = input_rate;
    } else {
      const std::uint32_t e_end = L.edge_offset[pos + 1];
      for (std::uint32_t e = L.edge_offset[pos]; e < e_end; ++e) {
        const std::uint32_t u = L.edge_u[e];
        const double flow = output_rate[u];
        // Same gates, same order as deliverableRate(): no flow or an
        // unplaced endpoint delivers nothing and skips every query.
        if (flow <= 0.0 || edge_runnable_[e] == 0) continue;
        if (!(t_mid < edge_valid_[e])) refreshEdge(e, u, t_mid);
        const double total_power = pe_power_[u];
        if (total_power <= 0.0) {  // degenerate: treat as local
          arrival += flow;
          continue;
        }
        const double local_part =
            flow * (edge_coloc_power_[e] / total_power);
        const double remote_part = flow - local_part;
        arrival += local_part + std::min(remote_part, edge_remote_cap_[e]);
      }
    }
    st.arrival_rate = arrival;

    const double available_msgs = arrival * dt + backlog[i] + in_transit[i];
    in_transit[i] = 0.0;
    st.offered_rate = available_msgs / dt;

    if (!(t_mid < pe_power_valid_[i])) refreshPePower(i, t_mid);
    const std::uint32_t alt =
        L.alt_offset[i] +
        deployment.activeAlternate(PeId(i)).value();
    const double capacity_rate = pe_power_[i] / L.alt_cost_core_sec[alt];
    st.capacity_rate = capacity_rate;
    st.allocated_cores = pe_cores_total_[i];

    SimTime service_dt = dt;
    if (pause_remaining[i] > 0.0) {
      const SimTime pause = std::min(pause_remaining[i], dt);
      pause_remaining[i] -= pause;
      service_dt = dt - pause;
    }
    const double processed_msgs =
        std::min(available_msgs, capacity_rate * service_dt);
    backlog[i] = available_msgs - processed_msgs;
    st.processed_rate = processed_msgs / dt;
    st.backlog_msgs = backlog[i];
    st.relative_throughput =
        available_msgs > 0.0 ? processed_msgs / available_msgs : 1.0;

    output_rate[i] = processed_msgs * L.alt_selectivity[alt] / dt;
    st.output_rate = output_rate[i];
  }

  // Omega(t): flat mirror of expectedOutputRatesInto() — the arrival walk
  // in topological order, then the own-selectivity multiply in pe-id
  // order — with the same operand sequence.
  expected_rate.assign(n, 0.0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::uint32_t v = L.topo[pos];
    if (L.is_input[v] != 0) {
      expected_rate[v] = input_rate;
    } else {
      double sum = 0.0;
      const std::uint32_t e_end = L.edge_offset[pos + 1];
      for (std::uint32_t e = L.edge_offset[pos]; e < e_end; ++e) {
        const std::uint32_t u = L.edge_u[e];
        const std::uint32_t ua =
            L.alt_offset[u] + deployment.activeAlternate(PeId(u)).value();
        sum += expected_rate[u] * L.alt_selectivity[ua];
      }
      expected_rate[v] = sum;
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t a =
        L.alt_offset[i] + deployment.activeAlternate(PeId(i)).value();
    expected_rate[i] *= L.alt_selectivity[a];
  }
  double omega_sum = 0.0;
  for (const std::uint32_t o : L.outputs) {
    const double exp_rate = expected_rate[o];
    const double ratio = exp_rate > 0.0 ? output_rate[o] / exp_rate : 1.0;
    omega_sum += std::clamp(ratio, 0.0, 1.0);
  }
  m.omega = omega_sum / static_cast<double>(L.outputs.size());

  // Gamma(t): precomputed relative values, pe-id order.
  double gamma_sum = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    gamma_sum += L.alt_relative_value[
        L.alt_offset[i] + deployment.activeAlternate(PeId(i)).value()];
  }
  m.gamma = gamma_sum / static_cast<double>(n);

  m.cost_cumulative = cloud_->accumulatedCost(t_start + dt);
  int active = 0;  // same count activeVms() materializes, no allocation
  for (const VmInstance& vm : cloud_->instances()) {
    if (vm.isActive()) ++active;
  }
  m.active_vms = active;
  m.allocated_cores = total_cores_;
}

}  // namespace dds
