#include "dds/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dds/sim/fluid_kernel.hpp"
#include "dds/sim/fluid_layout.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

constexpr double kUnqueried = std::numeric_limits<double>::quiet_NaN();

std::uint64_t directionalPairKey(VmId a, VmId b) {
  return (static_cast<std::uint64_t>(a.value()) << 32) |
         static_cast<std::uint64_t>(b.value());
}

}  // namespace

DataflowSimulator::DataflowSimulator(
    const Dataflow& df, const CloudProvider& cloud,
    const MonitoringService& mon, SimConfig cfg,
    std::shared_ptr<const FluidGraphLayout> layout)
    : df_(&df),
      cloud_(&cloud),
      mon_(&mon),
      cfg_(cfg),
      layout_(std::move(layout)),
      backlog_(df.peCount(), 0.0),
      in_transit_(df.peCount(), 0.0),
      pause_remaining_(df.peCount(), 0.0),
      pe_cores_(df.peCount()),
      output_rate_(df.peCount(), 0.0) {
  DDS_REQUIRE(cfg_.msg_size_bytes > 0.0, "message size must be positive");
  DDS_REQUIRE(cfg_.interval_s > 0.0, "interval length must be positive");
  if (cfg_.engine == SimConfig::Engine::Cached) {
    if (layout_ == nullptr) layout_ = buildFluidLayout(df);
    kernel_ = std::make_unique<FluidKernel>(df, cloud, mon, cfg_, layout_);
  }
}

DataflowSimulator::~DataflowSimulator() = default;

std::uint64_t DataflowSimulator::kernelRebuilds() const {
  return kernel_ != nullptr ? kernel_->rebuilds() : reference_snapshots_;
}

double DataflowSimulator::totalBacklog() const {
  double total = 0.0;
  for (double b : backlog_) total += b;
  return total;
}

void DataflowSimulator::migrateBacklog(PeId pe, double fraction) {
  DDS_REQUIRE(pe.value() < backlog_.size(), "PE id out of range");
  DDS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
              "migration fraction out of range");
  const double moved = backlog_[pe.value()] * fraction;
  backlog_[pe.value()] -= moved;
  in_transit_[pe.value()] += moved;
}

double DataflowSimulator::dropBacklog(PeId pe, double fraction) {
  DDS_REQUIRE(pe.value() < backlog_.size(), "PE id out of range");
  DDS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
              "drop fraction out of range");
  const double dropped = backlog_[pe.value()] * fraction;
  backlog_[pe.value()] -= dropped;
  return dropped;
}

void DataflowSimulator::pauseService(PeId pe, SimTime seconds) {
  DDS_REQUIRE(pe.value() < pause_remaining_.size(), "PE id out of range");
  DDS_REQUIRE(seconds >= 0.0, "pause must be non-negative");
  pause_remaining_[pe.value()] += seconds;
}

void DataflowSimulator::beginInterval(SimTime t_mid) {
  t_mid_ = t_mid;
  ++reference_snapshots_;
  for (auto& cores : pe_cores_) cores.clear();
  // One pass over the ledger replaces the per-edge-endpoint scans of the
  // naive formulation: O(total cores) instead of O(edges x VMs x cores).
  // Each (PE, VM) pair must yield exactly one VmCores entry, in VM-id
  // order, to match peCores() — a fragmented VM split into two entries
  // would double-count the remote bandwidth cap in deliverableRate().
  for (std::size_t i = 0; i < cloud_->instanceCount(); ++i) {
    const VmId id(static_cast<VmId::value_type>(i));
    const VmInstance& vm = cloud_->instance(id);
    if (!vm.isActive()) continue;
    vm_pe_scratch_.clear();
    for (int core = 0; core < vm.coreCount(); ++core) {
      const std::optional<PeId> owner = vm.coreOwner(core);
      if (!owner.has_value()) continue;
      bool found = false;
      for (auto& [pe, count] : vm_pe_scratch_) {
        if (pe == *owner) {
          ++count;
          found = true;
          break;
        }
      }
      if (!found) vm_pe_scratch_.emplace_back(*owner, 1);
    }
    for (const auto& [pe, count] : vm_pe_scratch_) {
      pe_cores_[pe.value()].push_back({id, count});
    }
  }
  cpu_power_memo_.assign(cloud_->instanceCount(), kUnqueried);
  bandwidth_memo_.clear();
}

double DataflowSimulator::corePowerAt(VmId vm) {
  double& memo = cpu_power_memo_[vm.value()];
  if (std::isnan(memo)) memo = mon_->observedCorePower(vm, t_mid_);
  return memo;
}

double DataflowSimulator::bandwidthAt(VmId a, VmId b) {
  const std::uint64_t key = directionalPairKey(a, b);
  const auto it = bandwidth_memo_.find(key);
  if (it != bandwidth_memo_.end()) return it->second;
  const double mbps = mon_->observedBandwidthMbps(a, b, t_mid_);
  bandwidth_memo_.emplace(key, mbps);
  return mbps;
}

/// How much of edge (u -> v)'s flow can actually be delivered per second.
/// The fraction of u's processing power on VMs that also host v moves
/// in-memory (uncapped); the rest crosses the network and is capped by the
/// observed bandwidth from each of u's VMs to the nearest of v's VMs.
double DataflowSimulator::deliverableRate(double flow_rate, PeId u, PeId v) {
  if (flow_rate <= 0.0) return 0.0;
  const auto& u_cores = pe_cores_[u.value()];
  const auto& v_cores = pe_cores_[v.value()];
  if (u_cores.empty() || v_cores.empty()) {
    // An unplaced endpoint cannot move data; deliver nothing.
    return 0.0;
  }

  double total_power = 0.0;
  double colocated_power = 0.0;
  double remote_cap_msgs = 0.0;
  for (const auto& uc : u_cores) {
    const double p = static_cast<double>(uc.cores) * corePowerAt(uc.vm);
    total_power += p;
    bool colocated = false;
    double best_mbps = 0.0;
    for (const auto& vc : v_cores) {
      if (vc.vm == uc.vm) {
        colocated = true;
        break;
      }
      best_mbps = std::max(best_mbps, bandwidthAt(uc.vm, vc.vm));
    }
    if (colocated) {
      colocated_power += p;
    } else {
      remote_cap_msgs += cfg_.linkMsgsPerSec(best_mbps);
    }
  }
  if (total_power <= 0.0) return flow_rate;  // degenerate: treat as local
  const double colocated_fraction = colocated_power / total_power;
  const double local_part = flow_rate * colocated_fraction;
  const double remote_part = flow_rate - local_part;
  return local_part + std::min(remote_part, remote_cap_msgs);
}

IntervalMetrics DataflowSimulator::step(IntervalIndex index,
                                        double input_rate,
                                        const Deployment& deployment) {
  DDS_REQUIRE(input_rate >= 0.0, "input rate must be non-negative");
  DDS_REQUIRE(deployment.peCount() == df_->peCount(),
              "deployment does not match dataflow");
  const SimTime dt = cfg_.interval_s;
  const SimTime t_start = static_cast<SimTime>(index) * dt;
  const std::size_t n = df_->peCount();

  IntervalMetrics m;
  m.index = index;
  m.start = t_start;
  m.input_rate = input_rate;
  m.pe_stats.resize(n);

  if (kernel_ != nullptr) {
    kernel_->runInterval(t_start, dt, input_rate, deployment, m, backlog_,
                         in_transit_, pause_remaining_, output_rate_,
                         expected_rate_);
    emitIntervalEnd(m, t_start, dt, index);
    return m;
  }

  beginInterval(t_start + 0.5 * dt);
  std::fill(output_rate_.begin(), output_rate_.end(), 0.0);
  for (const PeId pe : df_->topologicalOrder()) {
    const std::size_t i = pe.value();
    PeIntervalStats& st = m.pe_stats[i];

    // Arrivals: external feed for inputs, bandwidth-capped upstream flows
    // otherwise (multi-merge interleaves all incoming edges).
    double arrival = 0.0;
    if (df_->isInput(pe)) {
      arrival = input_rate;
    } else {
      for (const PeId u : df_->predecessors(pe)) {
        arrival += deliverableRate(output_rate_[u.value()], u, pe);
      }
    }
    st.arrival_rate = arrival;

    // Queue dynamics: this interval's work is new arrivals plus queued
    // backlog plus any migrated messages that completed their transfer.
    const double available_msgs =
        arrival * dt + backlog_[i] + in_transit_[i];
    in_transit_[i] = 0.0;
    st.offered_rate = available_msgs / dt;

    const auto& alt = df_->pe(pe).alternate(deployment.activeAlternate(pe));
    double power = 0.0;
    int cores = 0;
    for (const auto& vc : pe_cores_[i]) {
      power += static_cast<double>(vc.cores) * corePowerAt(vc.vm);
      cores += vc.cores;
    }
    const double capacity_rate = power / alt.cost_core_sec;
    st.capacity_rate = capacity_rate;
    st.allocated_cores = cores;

    // Migration downtime consumes service time from the front of the
    // interval. The guarded path keeps the no-pause arithmetic (and with
    // it every pre-elasticity trace byte) untouched.
    SimTime service_dt = dt;
    if (pause_remaining_[i] > 0.0) {
      const SimTime pause = std::min(pause_remaining_[i], dt);
      pause_remaining_[i] -= pause;
      service_dt = dt - pause;
    }
    const double processed_msgs =
        std::min(available_msgs, capacity_rate * service_dt);
    backlog_[i] = available_msgs - processed_msgs;
    st.processed_rate = processed_msgs / dt;
    st.backlog_msgs = backlog_[i];
    st.relative_throughput =
        available_msgs > 0.0 ? processed_msgs / available_msgs : 1.0;

    output_rate_[i] = processed_msgs * alt.selectivity / dt;
    st.output_rate = output_rate_[i];
  }

  // Omega(t), Def. 4: mean over output PEs of observed / expected output
  // rate, where "expected" assumes infinite capacity at the current input
  // rate and alternates. Clamped to (0, 1].
  expectedOutputRatesInto(*df_, deployment, input_rate, expected_rate_);
  double omega_sum = 0.0;
  for (const PeId o : df_->outputs()) {
    const double exp_rate = expected_rate_[o.value()];
    const double ratio =
        exp_rate > 0.0 ? output_rate_[o.value()] / exp_rate : 1.0;
    omega_sum += std::clamp(ratio, 0.0, 1.0);
  }
  m.omega = omega_sum / static_cast<double>(df_->outputs().size());

  // Gamma(t), Def. 3: mean relative value of the active alternates.
  double gamma_sum = 0.0;
  for (const auto& pe : df_->pes()) {
    gamma_sum += pe.relativeValue(deployment.activeAlternate(pe.id()));
  }
  m.gamma = gamma_sum / static_cast<double>(n);

  m.cost_cumulative = cloud_->accumulatedCost(t_start + dt);
  m.active_vms = static_cast<int>(cloud_->activeVms().size());
  int total_cores = 0;
  for (const auto& cores : pe_cores_) {
    for (const auto& vc : cores) total_cores += vc.cores;
  }
  m.allocated_cores = total_cores;

  emitIntervalEnd(m, t_start, dt, index);
  return m;
}

void DataflowSimulator::emitIntervalEnd(const IntervalMetrics& m,
                                        SimTime t_start, SimTime dt,
                                        IntervalIndex index) {
  if (!tracer_.enabled()) return;
  traced_omega_sum_ += m.omega;
  ++traced_intervals_;
  double processed = 0.0;
  double capacity = 0.0;
  for (const PeIntervalStats& st : m.pe_stats) {
    processed += st.processed_rate;
    capacity += st.capacity_rate;
  }
  const double rho =
      capacity > 0.0 ? std::clamp(processed / capacity, 0.0, 1.0) : 0.0;
  tracer_.emit(obs::IntervalEndEvent{
      .t = t_start + dt,
      .interval = index,
      .omega = m.omega,
      .omega_bar = traced_omega_sum_ / static_cast<double>(traced_intervals_),
      .gamma = m.gamma,
      .cost = m.cost_cumulative,
      .utilization = rho,
      .backlog_msgs = totalBacklog(),
      .active_vms = m.active_vms,
      .allocated_cores = m.allocated_cores});
}

}  // namespace dds
