#include "dds/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

/// How much of edge (u -> v)'s flow can actually be delivered per second.
/// The fraction of u's processing power on VMs that also host v moves
/// in-memory (uncapped); the rest crosses the network and is capped by the
/// observed bandwidth from each of u's VMs to the nearest of v's VMs.
double deliverableRate(double flow_rate, PeId u, PeId v,
                       const CloudProvider& cloud,
                       const MonitoringService& mon, const SimConfig& cfg,
                       SimTime t) {
  if (flow_rate <= 0.0) return 0.0;
  const auto u_cores = peCores(cloud, u);
  const auto v_cores = peCores(cloud, v);
  if (u_cores.empty() || v_cores.empty()) {
    // An unplaced endpoint cannot move data; deliver nothing.
    return 0.0;
  }

  double total_power = 0.0;
  double colocated_power = 0.0;
  double remote_cap_msgs = 0.0;
  for (const auto& uc : u_cores) {
    const double p = static_cast<double>(uc.cores) *
                     mon.observedCorePower(uc.vm, t);
    total_power += p;
    bool colocated = false;
    double best_mbps = 0.0;
    for (const auto& vc : v_cores) {
      if (vc.vm == uc.vm) {
        colocated = true;
        break;
      }
      best_mbps =
          std::max(best_mbps, mon.observedBandwidthMbps(uc.vm, vc.vm, t));
    }
    if (colocated) {
      colocated_power += p;
    } else {
      remote_cap_msgs += cfg.linkMsgsPerSec(best_mbps);
    }
  }
  if (total_power <= 0.0) return flow_rate;  // degenerate: treat as local
  const double colocated_fraction = colocated_power / total_power;
  const double local_part = flow_rate * colocated_fraction;
  const double remote_part = flow_rate - local_part;
  return local_part + std::min(remote_part, remote_cap_msgs);
}

}  // namespace

DataflowSimulator::DataflowSimulator(const Dataflow& df,
                                     const CloudProvider& cloud,
                                     const MonitoringService& mon,
                                     SimConfig cfg)
    : df_(&df),
      cloud_(&cloud),
      mon_(&mon),
      cfg_(cfg),
      backlog_(df.peCount(), 0.0),
      in_transit_(df.peCount(), 0.0) {
  DDS_REQUIRE(cfg_.msg_size_bytes > 0.0, "message size must be positive");
  DDS_REQUIRE(cfg_.interval_s > 0.0, "interval length must be positive");
}

double DataflowSimulator::totalBacklog() const {
  double total = 0.0;
  for (double b : backlog_) total += b;
  return total;
}

void DataflowSimulator::migrateBacklog(PeId pe, double fraction) {
  DDS_REQUIRE(pe.value() < backlog_.size(), "PE id out of range");
  DDS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
              "migration fraction out of range");
  const double moved = backlog_[pe.value()] * fraction;
  backlog_[pe.value()] -= moved;
  in_transit_[pe.value()] += moved;
}

double DataflowSimulator::dropBacklog(PeId pe, double fraction) {
  DDS_REQUIRE(pe.value() < backlog_.size(), "PE id out of range");
  DDS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
              "drop fraction out of range");
  const double dropped = backlog_[pe.value()] * fraction;
  backlog_[pe.value()] -= dropped;
  return dropped;
}

IntervalMetrics DataflowSimulator::step(IntervalIndex index,
                                        double input_rate,
                                        const Deployment& deployment) {
  DDS_REQUIRE(input_rate >= 0.0, "input rate must be non-negative");
  DDS_REQUIRE(deployment.peCount() == df_->peCount(),
              "deployment does not match dataflow");
  const SimTime dt = cfg_.interval_s;
  const SimTime t_start = static_cast<SimTime>(index) * dt;
  const SimTime t_mid = t_start + 0.5 * dt;
  const std::size_t n = df_->peCount();

  IntervalMetrics m;
  m.index = index;
  m.start = t_start;
  m.input_rate = input_rate;
  m.pe_stats.resize(n);

  std::vector<double> output_rate(n, 0.0);
  for (const PeId pe : df_->topologicalOrder()) {
    const std::size_t i = pe.value();
    PeIntervalStats& st = m.pe_stats[i];

    // Arrivals: external feed for inputs, bandwidth-capped upstream flows
    // otherwise (multi-merge interleaves all incoming edges).
    double arrival = 0.0;
    if (df_->isInput(pe)) {
      arrival = input_rate;
    } else {
      for (const PeId u : df_->predecessors(pe)) {
        arrival += deliverableRate(output_rate[u.value()], u, pe, *cloud_,
                                   *mon_, cfg_, t_mid);
      }
    }
    st.arrival_rate = arrival;

    // Queue dynamics: this interval's work is new arrivals plus queued
    // backlog plus any migrated messages that completed their transfer.
    const double available_msgs =
        arrival * dt + backlog_[i] + in_transit_[i];
    in_transit_[i] = 0.0;
    st.offered_rate = available_msgs / dt;

    const auto& alt = df_->pe(pe).alternate(deployment.activeAlternate(pe));
    const double power = observedPowerOf(*cloud_, *mon_, pe, t_mid);
    const double capacity_rate = power / alt.cost_core_sec;
    st.capacity_rate = capacity_rate;
    st.allocated_cores = totalCores(*cloud_, pe);

    const double processed_msgs =
        std::min(available_msgs, capacity_rate * dt);
    backlog_[i] = available_msgs - processed_msgs;
    st.processed_rate = processed_msgs / dt;
    st.backlog_msgs = backlog_[i];
    st.relative_throughput =
        available_msgs > 0.0 ? processed_msgs / available_msgs : 1.0;

    output_rate[i] = processed_msgs * alt.selectivity / dt;
    st.output_rate = output_rate[i];
  }

  // Omega(t), Def. 4: mean over output PEs of observed / expected output
  // rate, where "expected" assumes infinite capacity at the current input
  // rate and alternates. Clamped to (0, 1].
  const auto expected = expectedOutputRates(*df_, deployment, input_rate);
  double omega_sum = 0.0;
  for (const PeId o : df_->outputs()) {
    const double exp_rate = expected[o.value()];
    const double ratio =
        exp_rate > 0.0 ? output_rate[o.value()] / exp_rate : 1.0;
    omega_sum += std::clamp(ratio, 0.0, 1.0);
  }
  m.omega = omega_sum / static_cast<double>(df_->outputs().size());

  // Gamma(t), Def. 3: mean relative value of the active alternates.
  double gamma_sum = 0.0;
  for (const auto& pe : df_->pes()) {
    gamma_sum += pe.relativeValue(deployment.activeAlternate(pe.id()));
  }
  m.gamma = gamma_sum / static_cast<double>(n);

  m.cost_cumulative = cloud_->accumulatedCost(t_start + dt);
  m.active_vms = static_cast<int>(cloud_->activeVms().size());
  m.allocated_cores = totalAllocatedCores(*cloud_);
  return m;
}

}  // namespace dds
