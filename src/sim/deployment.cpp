#include "dds/sim/deployment.hpp"

namespace dds {

std::vector<VmCores> peCores(const CloudProvider& cloud, PeId pe) {
  std::vector<VmCores> out;
  for (std::size_t i = 0; i < cloud.instanceCount(); ++i) {
    const VmId id(static_cast<VmId::value_type>(i));
    const VmInstance& vm = cloud.instance(id);
    if (!vm.isActive()) continue;
    const int n = vm.coresOwnedBy(pe);
    if (n > 0) out.push_back({id, n});
  }
  return out;
}

int totalCores(const CloudProvider& cloud, PeId pe) {
  int total = 0;
  for (const auto& vc : peCores(cloud, pe)) total += vc.cores;
  return total;
}

double ratedPowerOf(const CloudProvider& cloud, PeId pe) {
  double power = 0.0;
  for (const auto& vc : peCores(cloud, pe)) {
    power += static_cast<double>(vc.cores) *
             cloud.instance(vc.vm).spec().core_speed;
  }
  return power;
}

double observedPowerOf(const CloudProvider& cloud,
                       const MonitoringService& mon, PeId pe, SimTime t) {
  double power = 0.0;
  for (const auto& vc : peCores(cloud, pe)) {
    power += static_cast<double>(vc.cores) * mon.observedCorePower(vc.vm, t);
  }
  return power;
}

bool areColocated(const CloudProvider& cloud, PeId a, PeId b) {
  for (std::size_t i = 0; i < cloud.instanceCount(); ++i) {
    const VmId id(static_cast<VmId::value_type>(i));
    const VmInstance& vm = cloud.instance(id);
    if (!vm.isActive()) continue;
    if (vm.coresOwnedBy(a) > 0 && vm.coresOwnedBy(b) > 0) return true;
  }
  return false;
}

int totalAllocatedCores(const CloudProvider& cloud) {
  int total = 0;
  for (std::size_t i = 0; i < cloud.instanceCount(); ++i) {
    const VmId id(static_cast<VmId::value_type>(i));
    const VmInstance& vm = cloud.instance(id);
    if (vm.isActive()) total += vm.allocatedCoreCount();
  }
  return total;
}

}  // namespace dds
