#include "dds/trace/trace_stats.hpp"

#include <algorithm>
#include <cmath>

#include "dds/common/error.hpp"

namespace dds {

double autocorrelation(const PerfTrace& trace, std::size_t k) {
  const auto& xs = trace.samples();
  DDS_REQUIRE(k < xs.size(), "lag exceeds trace length");
  const double n = static_cast<double>(xs.size());
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= n;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  if (var == 0.0) return k == 0 ? 1.0 : 0.0;  // constant trace
  double cov = 0.0;
  for (std::size_t i = 0; i + k < xs.size(); ++i) {
    cov += (xs[i] - mean) * (xs[i + k] - mean);
  }
  return cov / var;
}

std::size_t decorrelationLag(const PerfTrace& trace, double level) {
  DDS_REQUIRE(level > 0.0 && level < 1.0,
              "decorrelation level must be in (0, 1)");
  for (std::size_t k = 1; k < trace.sampleCount(); ++k) {
    if (autocorrelation(trace, k) < level) return k;
  }
  return trace.sampleCount();
}

std::vector<double> relativeDeviation(const PerfTrace& trace) {
  const double mean = trace.stats().mean();
  DDS_REQUIRE(mean != 0.0, "relative deviation undefined for zero mean");
  std::vector<double> out;
  out.reserve(trace.sampleCount());
  for (const double x : trace.samples()) {
    out.push_back((x - mean) / mean);
  }
  return out;
}

std::vector<double> rollingMean(const PerfTrace& trace, std::size_t window) {
  DDS_REQUIRE(window >= 1, "window must be at least one sample");
  const auto& xs = trace.samples();
  std::vector<double> out(xs.size());
  const std::size_t half = window / 2;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(xs.size(), lo + window);
    double sum = 0.0;
    for (std::size_t j = lo; j < hi; ++j) sum += xs[j];
    out[i] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

std::vector<std::size_t> histogram(const PerfTrace& trace,
                                   std::size_t bins) {
  DDS_REQUIRE(bins >= 1, "need at least one bin");
  const auto s = trace.stats();
  std::vector<std::size_t> counts(bins, 0);
  const double lo = s.min();
  const double width = (s.max() - lo) / static_cast<double>(bins);
  for (const double x : trace.samples()) {
    std::size_t bin =
        width > 0.0 ? static_cast<std::size_t>((x - lo) / width) : 0;
    bin = std::min(bin, bins - 1);  // max value lands in the last bin
    ++counts[bin];
  }
  return counts;
}

double fractionBelow(const PerfTrace& trace, double threshold) {
  std::size_t below = 0;
  for (const double x : trace.samples()) {
    if (x < threshold) ++below;
  }
  return static_cast<double>(below) /
         static_cast<double>(trace.sampleCount());
}

}  // namespace dds
