#include "dds/trace/trace_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dds {

void TraceGenParams::validate() const {
  DDS_REQUIRE(mean > 0.0, "trace mean must be positive");
  DDS_REQUIRE(jitter_sd >= 0.0, "jitter sd must be non-negative");
  DDS_REQUIRE(jitter_ar >= 0.0 && jitter_ar < 1.0,
              "AR coefficient must be in [0, 1)");
  DDS_REQUIRE(diurnal_amplitude >= 0.0, "diurnal amplitude non-negative");
  DDS_REQUIRE(shift_probability >= 0.0 && shift_probability <= 1.0,
              "shift probability out of range");
  DDS_REQUIRE(shift_sd >= 0.0, "shift sd non-negative");
  DDS_REQUIRE(min_value >= 0.0 && min_value < max_value,
              "clamp range invalid");
}

TraceGenParams cpuTraceParams() {
  TraceGenParams p;
  p.mean = 0.97;  // observed speed sits slightly below rated on average
  p.jitter_sd = 0.04;
  p.jitter_ar = 0.9;
  p.diurnal_amplitude = 0.04;
  p.shift_probability = 0.003;
  p.shift_sd = 0.18;  // noisy-neighbour arrivals cause sustained drops
  p.min_value = 0.40;
  p.max_value = 1.10;
  return p;
}

TraceGenParams latencyTraceParams() {
  TraceGenParams p;
  p.mean = 1.0;
  p.jitter_sd = 0.10;
  p.jitter_ar = 0.7;
  p.diurnal_amplitude = 0.05;
  p.shift_probability = 0.004;
  p.shift_sd = 0.5;
  p.min_value = 0.5;
  p.max_value = 6.0;
  return p;
}

TraceGenParams bandwidthTraceParams() {
  TraceGenParams p;
  p.mean = 0.9;  // observed bandwidth sits a little below rated
  p.jitter_sd = 0.06;
  p.jitter_ar = 0.85;
  p.diurnal_amplitude = 0.05;
  p.shift_probability = 0.003;
  p.shift_sd = 0.20;
  p.min_value = 0.25;
  p.max_value = 1.05;
  return p;
}

PerfTrace generateTrace(const TraceGenParams& params, SimTime duration_s,
                        SimTime sample_period_s, Rng& rng) {
  params.validate();
  DDS_REQUIRE(duration_s > 0.0, "trace duration must be positive");
  DDS_REQUIRE(sample_period_s > 0.0, "sample period must be positive");
  const auto n = std::max<std::size_t>(
      1, static_cast<std::size_t>(duration_s / sample_period_s));

  std::vector<double> samples;
  samples.reserve(n);
  double jitter = 0.0;
  double shift = 0.0;
  // Stationary innovation scaling keeps the jitter variance independent of
  // the AR pole, so `jitter_sd` is the marginal std-dev users dial in.
  const double innovation_sd =
      params.jitter_sd * std::sqrt(1.0 - params.jitter_ar * params.jitter_ar);
  for (std::size_t i = 0; i < n; ++i) {
    const SimTime t = static_cast<SimTime>(i) * sample_period_s;
    jitter = params.jitter_ar * jitter + rng.normal(0.0, innovation_sd);
    if (rng.chance(params.shift_probability)) {
      shift = rng.normal(0.0, params.shift_sd);
    }
    const double diurnal =
        params.diurnal_amplitude *
        std::sin(2.0 * std::numbers::pi * t / (24.0 * kSecondsPerHour));
    const double v = params.mean + jitter + shift + diurnal;
    samples.push_back(std::clamp(v, params.min_value, params.max_value));
  }
  return PerfTrace(std::move(samples), sample_period_s);
}

std::vector<PerfTrace> generateTracePool(const TraceGenParams& params,
                                         std::size_t count,
                                         SimTime duration_s,
                                         SimTime sample_period_s, Rng& rng) {
  DDS_REQUIRE(count >= 1, "pool needs at least one trace");
  std::vector<PerfTrace> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pool.push_back(generateTrace(params, duration_s, sample_period_s, rng));
  }
  return pool;
}

}  // namespace dds
