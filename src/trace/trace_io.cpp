#include "dds/trace/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "dds/common/csv.hpp"
#include "dds/common/error.hpp"

namespace dds {

std::string traceToCsv(const PerfTrace& trace) {
  CsvTable table;
  table.header = {"time_s", "coefficient"};
  table.rows.reserve(trace.sampleCount());
  for (std::size_t i = 0; i < trace.sampleCount(); ++i) {
    table.rows.push_back({static_cast<double>(i) * trace.samplePeriod(),
                          trace.samples()[i]});
  }
  return formatCsv(table);
}

PerfTrace traceFromCsv(const std::string& text) {
  const CsvTable table = parseCsv(text);
  const auto times = table.column("time_s");
  const auto values = table.column("coefficient");
  if (times.empty()) throw IoError("trace CSV has no rows");

  SimTime period = 1.0;
  if (times.size() >= 2) {
    period = times[1] - times[0];
    if (period <= 0.0) throw IoError("trace CSV times are not increasing");
    for (std::size_t i = 1; i < times.size(); ++i) {
      const double expected = times[0] + static_cast<double>(i) * period;
      if (std::abs(times[i] - expected) > 1e-6 * period) {
        std::ostringstream os;
        os << "trace CSV is not uniformly sampled at row " << i;
        throw IoError(os.str());
      }
    }
  }
  return PerfTrace(values, period);
}

void saveTrace(const std::string& path, const PerfTrace& trace) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write trace file: " + path);
  out << traceToCsv(trace);
  if (!out) throw IoError("error while writing trace file: " + path);
}

PerfTrace loadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return traceFromCsv(buffer.str());
}

}  // namespace dds
