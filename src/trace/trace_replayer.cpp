#include "dds/trace/trace_replayer.hpp"

#include <algorithm>

namespace dds {

TraceReplayer::TraceReplayer(std::vector<PerfTrace> cpu_pool,
                             std::vector<PerfTrace> latency_pool,
                             std::vector<PerfTrace> bandwidth_pool,
                             std::uint64_t seed)
    : cpu_pool_(std::move(cpu_pool)),
      latency_pool_(std::move(latency_pool)),
      bandwidth_pool_(std::move(bandwidth_pool)),
      rng_(seed) {
  DDS_REQUIRE(!cpu_pool_.empty(), "CPU trace pool is empty");
  DDS_REQUIRE(!latency_pool_.empty(), "latency trace pool is empty");
  DDS_REQUIRE(!bandwidth_pool_.empty(), "bandwidth trace pool is empty");
}

TraceReplayer TraceReplayer::ideal() {
  return TraceReplayer({PerfTrace::constant(1.0)},
                       {PerfTrace::constant(1.0)},
                       {PerfTrace::constant(1.0)}, 0);
}

TraceReplayer TraceReplayer::futureGridLike(std::uint64_t seed,
                                            SimTime duration_s,
                                            SimTime sample_period_s,
                                            std::size_t pool_size) {
  Rng rng(seed);
  auto cpu = generateTracePool(cpuTraceParams(), pool_size, duration_s,
                               sample_period_s, rng);
  auto lat = generateTracePool(latencyTraceParams(), pool_size, duration_s,
                               sample_period_s, rng);
  auto bw = generateTracePool(bandwidthTraceParams(), pool_size, duration_s,
                              sample_period_s, rng);
  return TraceReplayer(std::move(cpu), std::move(lat), std::move(bw),
                       seed ^ 0xabcdef1234567890ull);
}

TraceReplayer::Assignment TraceReplayer::assign(
    const std::vector<PerfTrace>& pool) {
  const auto idx = static_cast<std::size_t>(
      rng_.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
  const SimTime offset = rng_.uniform(0.0, pool[idx].duration());
  return {idx, offset};
}

std::uint64_t TraceReplayer::pairKey(VmId a, VmId b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b).value());
  const auto hi = static_cast<std::uint64_t>(std::max(a, b).value());
  return (hi << 32) | lo;
}

double TraceReplayer::cpuCoeff(VmId vm, SimTime t) {
  auto [it, inserted] = cpu_assignments_.try_emplace(vm);
  if (inserted) it->second = assign(cpu_pool_);
  return cpu_pool_[it->second.trace_index].atOffset(it->second.offset, t);
}

double TraceReplayer::latencyCoeff(VmId a, VmId b, SimTime t) {
  DDS_REQUIRE(a != b, "latency between a VM and itself is zero by model");
  auto [it, inserted] = latency_assignments_.try_emplace(pairKey(a, b));
  if (inserted) it->second = assign(latency_pool_);
  return latency_pool_[it->second.trace_index].atOffset(it->second.offset, t);
}

double TraceReplayer::bandwidthCoeff(VmId a, VmId b, SimTime t) {
  DDS_REQUIRE(a != b, "bandwidth between a VM and itself is infinite");
  auto [it, inserted] = bandwidth_assignments_.try_emplace(pairKey(a, b));
  if (inserted) it->second = assign(bandwidth_pool_);
  return bandwidth_pool_[it->second.trace_index].atOffset(it->second.offset,
                                                          t);
}

namespace {

CoeffSample sampleOf(const PerfTrace& trace,
                     const SimTime offset, const SimTime t) {
  return {trace.atOffset(offset, t), trace.validUntilAtOffset(offset, t)};
}

}  // namespace

CoeffSample TraceReplayer::cpuCoeffSample(VmId vm, SimTime t) {
  auto [it, inserted] = cpu_assignments_.try_emplace(vm);
  if (inserted) it->second = assign(cpu_pool_);
  return sampleOf(cpu_pool_[it->second.trace_index], it->second.offset, t);
}

CoeffSample TraceReplayer::latencyCoeffSample(VmId a, VmId b, SimTime t) {
  DDS_REQUIRE(a != b, "latency between a VM and itself is zero by model");
  auto [it, inserted] = latency_assignments_.try_emplace(pairKey(a, b));
  if (inserted) it->second = assign(latency_pool_);
  return sampleOf(latency_pool_[it->second.trace_index], it->second.offset,
                  t);
}

CoeffSample TraceReplayer::bandwidthCoeffSample(VmId a, VmId b, SimTime t) {
  DDS_REQUIRE(a != b, "bandwidth between a VM and itself is infinite");
  auto [it, inserted] = bandwidth_assignments_.try_emplace(pairKey(a, b));
  if (inserted) it->second = assign(bandwidth_pool_);
  return sampleOf(bandwidth_pool_[it->second.trace_index],
                  it->second.offset, t);
}

}  // namespace dds
