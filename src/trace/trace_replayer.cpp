#include "dds/trace/trace_replayer.hpp"

#include <algorithm>

namespace dds {

TraceReplayer::TraceReplayer(std::vector<PerfTrace> cpu_pool,
                             std::vector<PerfTrace> latency_pool,
                             std::vector<PerfTrace> bandwidth_pool,
                             std::uint64_t seed)
    : TraceReplayer(
          std::make_shared<const TracePools>(TracePools{
              std::move(cpu_pool), std::move(latency_pool),
              std::move(bandwidth_pool)}),
          seed) {}

TraceReplayer::TraceReplayer(std::shared_ptr<const TracePools> pools,
                             std::uint64_t assignment_seed)
    : pools_(std::move(pools)), rng_(assignment_seed) {
  DDS_REQUIRE(pools_ != nullptr, "trace pool arena is null");
  DDS_REQUIRE(!pools_->cpu.empty(), "CPU trace pool is empty");
  DDS_REQUIRE(!pools_->latency.empty(), "latency trace pool is empty");
  DDS_REQUIRE(!pools_->bandwidth.empty(), "bandwidth trace pool is empty");
}

TraceReplayer TraceReplayer::ideal() {
  return TraceReplayer({PerfTrace::constant(1.0)},
                       {PerfTrace::constant(1.0)},
                       {PerfTrace::constant(1.0)}, 0);
}

TraceReplayer TraceReplayer::futureGridLike(std::uint64_t seed,
                                            SimTime duration_s,
                                            SimTime sample_period_s,
                                            std::size_t pool_size) {
  return overPools(
      makeFutureGridPools(seed, duration_s, sample_period_s, pool_size),
      seed);
}

std::shared_ptr<const TracePools> TraceReplayer::makeFutureGridPools(
    std::uint64_t seed, SimTime duration_s, SimTime sample_period_s,
    std::size_t pool_size) {
  Rng rng(seed);
  auto pools = std::make_shared<TracePools>();
  pools->cpu = generateTracePool(cpuTraceParams(), pool_size, duration_s,
                                 sample_period_s, rng);
  pools->latency = generateTracePool(latencyTraceParams(), pool_size,
                                     duration_s, sample_period_s, rng);
  pools->bandwidth = generateTracePool(bandwidthTraceParams(), pool_size,
                                       duration_s, sample_period_s, rng);
  return pools;
}

TraceReplayer TraceReplayer::overPools(
    std::shared_ptr<const TracePools> pools, std::uint64_t run_seed) {
  // Same assignment-stream derivation as futureGridLike historically
  // used, so shared-arena replay stays bit-identical to pool-per-job.
  return TraceReplayer(std::move(pools), run_seed ^ 0xabcdef1234567890ull);
}

TraceReplayer::Assignment TraceReplayer::assign(
    const std::vector<PerfTrace>& pool) {
  const auto idx = static_cast<std::size_t>(
      rng_.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
  const SimTime offset = rng_.uniform(0.0, pool[idx].duration());
  return {idx, offset};
}

std::uint64_t TraceReplayer::pairKey(VmId a, VmId b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b).value());
  const auto hi = static_cast<std::uint64_t>(std::max(a, b).value());
  return (hi << 32) | lo;
}

double TraceReplayer::cpuCoeff(VmId vm, SimTime t) {
  auto [it, inserted] = cpu_assignments_.try_emplace(vm);
  if (inserted) it->second = assign(pools_->cpu);
  return pools_->cpu[it->second.trace_index].atOffset(it->second.offset, t);
}

double TraceReplayer::latencyCoeff(VmId a, VmId b, SimTime t) {
  DDS_REQUIRE(a != b, "latency between a VM and itself is zero by model");
  auto [it, inserted] = latency_assignments_.try_emplace(pairKey(a, b));
  if (inserted) it->second = assign(pools_->latency);
  return pools_->latency[it->second.trace_index].atOffset(it->second.offset, t);
}

double TraceReplayer::bandwidthCoeff(VmId a, VmId b, SimTime t) {
  DDS_REQUIRE(a != b, "bandwidth between a VM and itself is infinite");
  auto [it, inserted] = bandwidth_assignments_.try_emplace(pairKey(a, b));
  if (inserted) it->second = assign(pools_->bandwidth);
  return pools_->bandwidth[it->second.trace_index].atOffset(it->second.offset,
                                                          t);
}

namespace {

CoeffSample sampleOf(const PerfTrace& trace,
                     const SimTime offset, const SimTime t) {
  return {trace.atOffset(offset, t), trace.validUntilAtOffset(offset, t)};
}

}  // namespace

CoeffSample TraceReplayer::cpuCoeffSample(VmId vm, SimTime t) {
  auto [it, inserted] = cpu_assignments_.try_emplace(vm);
  if (inserted) it->second = assign(pools_->cpu);
  return sampleOf(pools_->cpu[it->second.trace_index], it->second.offset, t);
}

CoeffSample TraceReplayer::latencyCoeffSample(VmId a, VmId b, SimTime t) {
  DDS_REQUIRE(a != b, "latency between a VM and itself is zero by model");
  auto [it, inserted] = latency_assignments_.try_emplace(pairKey(a, b));
  if (inserted) it->second = assign(pools_->latency);
  return sampleOf(pools_->latency[it->second.trace_index], it->second.offset,
                  t);
}

CoeffSample TraceReplayer::bandwidthCoeffSample(VmId a, VmId b, SimTime t) {
  DDS_REQUIRE(a != b, "bandwidth between a VM and itself is infinite");
  auto [it, inserted] = bandwidth_assignments_.try_emplace(pairKey(a, b));
  if (inserted) it->second = assign(pools_->bandwidth);
  return sampleOf(pools_->bandwidth[it->second.trace_index],
                  it->second.offset, t);
}

}  // namespace dds
