#include "dds/metrics/run_metrics.hpp"

#include <algorithm>

namespace dds {

double RunResult::averageOmega() const {
  if (intervals_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : intervals_) s += m.omega;
  return s / static_cast<double>(intervals_.size());
}

double RunResult::averageGamma() const {
  if (intervals_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : intervals_) s += m.gamma;
  return s / static_cast<double>(intervals_.size());
}

double RunResult::totalCost() const {
  return intervals_.empty() ? 0.0 : intervals_.back().cost_cumulative;
}

RecoveryStats computeRecoveryStats(const RunResult& result,
                                   double omega_hat, SimTime interval_s) {
  DDS_REQUIRE(omega_hat > 0.0 && omega_hat <= 1.0,
              "omega target out of range");
  DDS_REQUIRE(interval_s > 0.0, "interval length must be positive");
  RecoveryStats stats;
  const auto& intervals = result.intervals();
  if (intervals.empty()) return stats;

  int ok_intervals = 0;
  int episode_len = 0;         // intervals in the currently open episode
  double recovered_total = 0;  // summed lengths of recovered episodes
  int recovered_count = 0;
  int longest = 0;
  std::vector<int> episode_lengths;
  for (const auto& m : intervals) {
    if (m.omega >= omega_hat) {
      ++ok_intervals;
      if (episode_len > 0) {
        ++stats.violation_episodes;
        ++recovered_count;
        recovered_total += episode_len;
        longest = std::max(longest, episode_len);
        episode_lengths.push_back(episode_len);
        episode_len = 0;
      }
    } else {
      ++episode_len;
    }
  }
  if (episode_len > 0) {
    // Still below the constraint at the horizon: counted but unrecovered.
    ++stats.violation_episodes;
    ++stats.unrecovered_episodes;
    longest = std::max(longest, episode_len);
    episode_lengths.push_back(episode_len);
  }
  if (recovered_count > 0) {
    stats.mttr_s = recovered_total /
                   static_cast<double>(recovered_count) * interval_s;
  }
  stats.longest_episode_s = static_cast<double>(longest) * interval_s;
  stats.availability = static_cast<double>(ok_intervals) /
                       static_cast<double>(intervals.size());
  stats.slo_violation_s =
      static_cast<double>(static_cast<int>(intervals.size()) - ok_intervals) *
      interval_s;
  if (!episode_lengths.empty()) {
    std::sort(episode_lengths.begin(), episode_lengths.end());
    const double rank =
        0.95 * static_cast<double>(episode_lengths.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi =
        std::min(lo + 1, episode_lengths.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    const double p95_intervals =
        static_cast<double>(episode_lengths[lo]) +
        (static_cast<double>(episode_lengths[hi]) -
         static_cast<double>(episode_lengths[lo])) *
            frac;
    stats.p95_episode_s = p95_intervals * interval_s;
  }
  return stats;
}

double equivalenceFactor(double max_value, double min_value,
                         double cost_at_max, double cost_at_min) {
  DDS_REQUIRE(max_value > min_value,
              "max application value must exceed min");
  DDS_REQUIRE(cost_at_max > cost_at_min,
              "acceptable cost at max value must exceed cost at min value");
  return (max_value - min_value) / (cost_at_max - cost_at_min);
}

double evaluationAcceptableCost(double data_rate_msgs_per_s,
                                SimTime horizon_s) {
  DDS_REQUIRE(data_rate_msgs_per_s > 0.0, "data rate must be positive");
  DDS_REQUIRE(horizon_s > 0.0, "horizon must be positive");
  // $4/hour at 2 msg/s scaling linearly to $100/hour at 50 msg/s (§8.2).
  const double dollars_per_hour =
      4.0 + (100.0 - 4.0) / (50.0 - 2.0) * (data_rate_msgs_per_s - 2.0);
  return dollars_per_hour * horizon_s / kSecondsPerHour;
}

}  // namespace dds
