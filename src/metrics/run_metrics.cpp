#include "dds/metrics/run_metrics.hpp"

namespace dds {

double RunResult::averageOmega() const {
  if (intervals_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : intervals_) s += m.omega;
  return s / static_cast<double>(intervals_.size());
}

double RunResult::averageGamma() const {
  if (intervals_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : intervals_) s += m.gamma;
  return s / static_cast<double>(intervals_.size());
}

double RunResult::totalCost() const {
  return intervals_.empty() ? 0.0 : intervals_.back().cost_cumulative;
}

double equivalenceFactor(double max_value, double min_value,
                         double cost_at_max, double cost_at_min) {
  DDS_REQUIRE(max_value > min_value,
              "max application value must exceed min");
  DDS_REQUIRE(cost_at_max > cost_at_min,
              "acceptable cost at max value must exceed cost at min value");
  return (max_value - min_value) / (cost_at_max - cost_at_min);
}

double evaluationAcceptableCost(double data_rate_msgs_per_s,
                                SimTime horizon_s) {
  DDS_REQUIRE(data_rate_msgs_per_s > 0.0, "data rate must be positive");
  DDS_REQUIRE(horizon_s > 0.0, "horizon must be positive");
  // $4/hour at 2 msg/s scaling linearly to $100/hour at 50 msg/s (§8.2).
  const double dollars_per_hour =
      4.0 + (100.0 - 4.0) / (50.0 - 2.0) * (data_rate_msgs_per_s - 2.0);
  return dollars_per_hour * horizon_s / kSecondsPerHour;
}

}  // namespace dds
