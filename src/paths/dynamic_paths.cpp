#include "dds/paths/dynamic_paths.hpp"

#include <algorithm>

namespace dds {

void PathVariant::validate() const {
  DDS_REQUIRE(!name.empty(), "path variant needs a name");
  DDS_REQUIRE(!pes.empty(), "path variant needs at least one PE");
  DDS_REQUIRE(!entries.empty(), "path variant needs an entry PE");
  DDS_REQUIRE(!exits.empty(), "path variant needs an exit PE");
  for (const auto& pe : pes) {
    DDS_REQUIRE(!pe.alternates.empty(),
                "fragment PE needs at least one alternate: " + pe.name);
    for (const auto& a : pe.alternates) a.validate();
  }
  for (const auto& [from, to] : internal_edges) {
    DDS_REQUIRE(from < pes.size() && to < pes.size(),
                "internal edge index out of range in variant " + name);
  }
  for (const std::size_t e : entries) {
    DDS_REQUIRE(e < pes.size(), "entry index out of range");
  }
  for (const std::size_t e : exits) {
    DDS_REQUIRE(e < pes.size(), "exit index out of range");
  }
}

DynamicPathApplication::DynamicPathApplication(
    std::string name, std::vector<PathVariant::FragmentPe> head,
    std::vector<PathVariant::FragmentPe> tail,
    std::vector<PathVariant> variants)
    : name_(std::move(name)),
      head_(std::move(head)),
      tail_(std::move(tail)),
      variants_(std::move(variants)) {
  DDS_REQUIRE(!name_.empty(), "application needs a name");
  DDS_REQUIRE(!head_.empty(), "need at least one PE before the path group");
  DDS_REQUIRE(!tail_.empty(), "need at least one PE after the path group");
  DDS_REQUIRE(!variants_.empty(), "need at least one path variant");
  for (const auto& v : variants_) v.validate();
}

const PathVariant& DynamicPathApplication::variant(std::size_t i) const {
  DDS_REQUIRE(i < variants_.size(), "variant index out of range");
  return variants_[i];
}

Dataflow DynamicPathApplication::materialize(std::size_t i) const {
  const PathVariant& v = variant(i);
  DataflowBuilder b(name_ + "+" + v.name);

  std::vector<PeId> head_ids;
  for (const auto& pe : head_) {
    head_ids.push_back(b.addPe(pe.name, pe.alternates));
  }
  for (std::size_t k = 0; k + 1 < head_ids.size(); ++k) {
    b.addEdge(head_ids[k], head_ids[k + 1]);
  }

  std::vector<PeId> frag_ids;
  for (const auto& pe : v.pes) {
    frag_ids.push_back(b.addPe(v.name + "/" + pe.name, pe.alternates));
  }
  for (const auto& [from, to] : v.internal_edges) {
    b.addEdge(frag_ids[from], frag_ids[to]);
  }

  std::vector<PeId> tail_ids;
  for (const auto& pe : tail_) {
    tail_ids.push_back(b.addPe(pe.name, pe.alternates));
  }
  for (std::size_t k = 0; k + 1 < tail_ids.size(); ++k) {
    b.addEdge(tail_ids[k], tail_ids[k + 1]);
  }

  for (const std::size_t e : v.entries) {
    b.addEdge(head_ids.back(), frag_ids[e]);
  }
  for (const std::size_t e : v.exits) {
    b.addEdge(frag_ids[e], tail_ids.front());
  }
  return std::move(b).build();
}

double DynamicPathApplication::variantValue(std::size_t i) const {
  // Raw value of a variant = mean best-alternate value of its PEs; the
  // relative (gamma-like) value normalizes against the best variant.
  auto raw = [this](std::size_t k) {
    const PathVariant& v = variants_[k];
    double sum = 0.0;
    for (const auto& pe : v.pes) {
      double best = 0.0;
      for (const auto& a : pe.alternates) best = std::max(best, a.value);
      sum += best;
    }
    return sum / static_cast<double>(v.pes.size());
  };
  double best_raw = 0.0;
  for (std::size_t k = 0; k < variants_.size(); ++k) {
    best_raw = std::max(best_raw, raw(k));
  }
  return raw(i) / best_raw;
}

double DynamicPathApplication::variantCost(std::size_t i,
                                           Strategy strategy) const {
  // Build the variant's concrete graph and run the same selection +
  // downstream-cost DP the §7.1 heuristics use; the variant's cost is the
  // per-entry-message downstream cost summed over its entry PEs.
  const Dataflow df = materialize(i);
  Deployment choices(df);
  selectInitialAlternates(strategy, df, choices);
  const auto dc = downstreamCosts(df, choices);

  const PathVariant& v = variant(i);
  const std::size_t frag_base = head_.size();
  double cost = 0.0;
  for (const std::size_t e : v.entries) {
    cost += dc[frag_base + e];
  }
  if (strategy == Strategy::Local) {
    // Local has no downstream DP: just sum the fragment PEs' own costs.
    cost = 0.0;
    for (std::size_t k = 0; k < v.pes.size(); ++k) {
      const PeId id(static_cast<PeId::value_type>(frag_base + k));
      cost += df.pe(id)
                  .alternate(choices.activeAlternate(id))
                  .cost_core_sec;
    }
  }
  return cost;
}

std::size_t DynamicPathApplication::selectVariant(Strategy strategy) const {
  std::size_t best = 0;
  double best_ratio = -1.0;
  for (std::size_t i = 0; i < variants_.size(); ++i) {
    const double ratio = variantValue(i) / variantCost(i, strategy);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = i;
    }
  }
  return best;
}

DynamicPathApplication makeCascadePathApplication() {
  std::vector<PathVariant::FragmentPe> head = {
      {"ingest", {{"parse", 1.0, 2.0, 1.0}}},
  };
  std::vector<PathVariant::FragmentPe> tail = {
      {"publish", {{"emit", 1.0, 1.0, 1.0}}},
  };

  PathVariant deep;
  deep.name = "deep-model";
  deep.pes = {{"deep", {{"deep-net", 0.95, 10.0, 1.0}}}};
  deep.entries = {0};
  deep.exits = {0};

  PathVariant cascade;
  cascade.name = "cascade";
  // A cheap filter drops 60% of messages, then a light model handles the
  // rest: lower aggregate value, much lower aggregate cost.
  cascade.pes = {{"filter", {{"gate", 0.9, 1.5, 0.4}}},
                 {"light", {{"light-net", 0.75, 4.0, 1.0}}}};
  cascade.internal_edges = {{0, 1}};
  cascade.entries = {0};
  cascade.exits = {1};

  return DynamicPathApplication("cascade-app", std::move(head),
                                std::move(tail), {deep, cascade});
}

}  // namespace dds
