#include "dds/workload/rate_profile.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "dds/common/error.hpp"

namespace dds {

ConstantRate::ConstantRate(double rate_msgs_per_s) : rate_(rate_msgs_per_s) {
  DDS_REQUIRE(rate_ >= 0.0, "rate must be non-negative");
}

std::string ConstantRate::describe() const {
  std::ostringstream os;
  os << "constant(" << rate_ << " msg/s)";
  return os.str();
}

PeriodicWaveRate::PeriodicWaveRate(double mean_rate, double amplitude,
                                   SimTime period_s, double phase_rad)
    : mean_(mean_rate),
      amplitude_(amplitude),
      period_(period_s),
      phase_(phase_rad) {
  DDS_REQUIRE(mean_ >= 0.0, "mean rate must be non-negative");
  DDS_REQUIRE(amplitude_ >= 0.0, "amplitude must be non-negative");
  DDS_REQUIRE(period_ > 0.0, "period must be positive");
}

double PeriodicWaveRate::rate(SimTime t) const {
  const double wave =
      amplitude_ * std::sin(2.0 * std::numbers::pi * t / period_ + phase_);
  return std::max(0.0, mean_ + wave);
}

std::string PeriodicWaveRate::describe() const {
  std::ostringstream os;
  os << "wave(mean=" << mean_ << ", amp=" << amplitude_
     << ", period=" << period_ << "s)";
  return os.str();
}

RandomWalkRate::RandomWalkRate(double mean_rate, double step_sd,
                               double min_rate, double max_rate,
                               SimTime step_s, SimTime horizon_s,
                               std::uint64_t seed, double reversion)
    : mean_(mean_rate), step_(step_s) {
  DDS_REQUIRE(mean_ >= 0.0, "mean rate must be non-negative");
  DDS_REQUIRE(step_sd >= 0.0, "step sd must be non-negative");
  DDS_REQUIRE(min_rate >= 0.0 && min_rate <= max_rate,
              "rate clamp range invalid");
  DDS_REQUIRE(step_s > 0.0, "step must be positive");
  DDS_REQUIRE(horizon_s > 0.0, "horizon must be positive");
  DDS_REQUIRE(reversion >= 0.0 && reversion <= 1.0,
              "reversion fraction out of range");

  Rng rng(seed);
  const auto n = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(horizon_s / step_s)));
  values_.reserve(n);
  double v = mean_rate;
  for (std::size_t i = 0; i < n; ++i) {
    values_.push_back(std::clamp(v, min_rate, max_rate));
    v += reversion * (mean_rate - v) + rng.normal(0.0, step_sd);
  }
}

double RandomWalkRate::rate(SimTime t) const {
  DDS_REQUIRE(t >= 0.0, "time must be non-negative");
  const auto idx = static_cast<std::size_t>(t / step_) % values_.size();
  return values_[idx];
}

std::string RandomWalkRate::describe() const {
  std::ostringstream os;
  os << "random-walk(mean=" << mean_ << ", steps=" << values_.size() << ")";
  return os.str();
}

SpikeRate::SpikeRate(double base_rate, double spike_rate, SimTime spike_start,
                     SimTime spike_duration)
    : base_(base_rate),
      spike_(spike_rate),
      start_(spike_start),
      duration_(spike_duration) {
  DDS_REQUIRE(base_ >= 0.0, "base rate must be non-negative");
  DDS_REQUIRE(spike_ >= 0.0, "spike rate must be non-negative");
  DDS_REQUIRE(start_ >= 0.0, "spike start must be non-negative");
  DDS_REQUIRE(duration_ >= 0.0, "spike duration must be non-negative");
}

double SpikeRate::rate(SimTime t) const {
  return (t >= start_ && t < start_ + duration_) ? spike_ : base_;
}

std::string SpikeRate::describe() const {
  std::ostringstream os;
  os << "spike(base=" << base_ << ", spike=" << spike_ << " @" << start_
     << "s for " << duration_ << "s)";
  return os.str();
}

CompositeRate::CompositeRate(std::vector<std::unique_ptr<RateProfile>> parts)
    : parts_(std::move(parts)) {
  DDS_REQUIRE(!parts_.empty(), "composite needs at least one part");
  for (const auto& p : parts_) {
    DDS_REQUIRE(p != nullptr, "composite parts must not be null");
  }
}

double CompositeRate::rate(SimTime t) const {
  double sum = 0.0;
  for (const auto& p : parts_) sum += p->rate(t);
  return sum;
}

double CompositeRate::meanRate() const {
  double sum = 0.0;
  for (const auto& p : parts_) sum += p->meanRate();
  return sum;
}

std::string CompositeRate::describe() const {
  std::ostringstream os;
  os << "composite(";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) os << " + ";
    os << parts_[i]->describe();
  }
  os << ")";
  return os.str();
}

std::string profileName(ProfileKind kind) {
  switch (kind) {
    case ProfileKind::Constant:
      return "constant";
    case ProfileKind::PeriodicWave:
      return "wave";
    case ProfileKind::RandomWalk:
      return "random-walk";
    case ProfileKind::Spike:
      return "spike";
  }
  return "unknown";
}

const std::vector<ProfileKind>& allProfileKinds() {
  static const std::vector<ProfileKind> kKinds = {
      ProfileKind::Constant, ProfileKind::PeriodicWave,
      ProfileKind::RandomWalk, ProfileKind::Spike};
  return kKinds;
}

ProfileKind parseProfileKind(const std::string& name) {
  for (const ProfileKind kind : allProfileKinds()) {
    if (profileName(kind) == name) return kind;
  }
  throw PreconditionError("unknown profile name: '" + name + "'");
}

std::string profileSummary(ProfileKind kind) {
  switch (kind) {
    case ProfileKind::Constant:
      return "fixed rate at the mean";
    case ProfileKind::PeriodicWave:
      return "sine wave, amplitude 40% of mean, 30 min period";
    case ProfileKind::RandomWalk:
      return "mean-reverting walk clamped to [0.2x, 2x] mean";
    case ProfileKind::Spike:
      return "3x flash crowd for a tenth of the horizon, 40% in";
  }
  return "unknown";
}

std::unique_ptr<RateProfile> makeProfile(ProfileKind kind, double mean_rate,
                                         SimTime horizon_s,
                                         std::uint64_t seed) {
  switch (kind) {
    case ProfileKind::Constant:
      return std::make_unique<ConstantRate>(mean_rate);
    case ProfileKind::PeriodicWave:
      // Phase -pi/2 starts the wave at its trough: the deployment-time
      // estimate (the rate observed at t0) underestimates the mean, which
      // is exactly how static deployments get caught out in §8.2.
      return std::make_unique<PeriodicWaveRate>(
          mean_rate, 0.4 * mean_rate, 30.0 * kSecondsPerMinute,
          -std::numbers::pi / 2.0);
    case ProfileKind::RandomWalk:
      return std::make_unique<RandomWalkRate>(
          mean_rate, 0.1 * mean_rate, 0.2 * mean_rate, 2.0 * mean_rate,
          kSecondsPerMinute, horizon_s, seed);
    case ProfileKind::Spike:
      // Flash crowd: 3x the base rate for a tenth of the horizon.
      return std::make_unique<SpikeRate>(mean_rate, 3.0 * mean_rate,
                                         0.4 * horizon_s, 0.1 * horizon_s);
  }
  throw PreconditionError("unknown profile kind");
}

}  // namespace dds
