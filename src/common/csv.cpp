#include "dds/common/csv.hpp"

#include <charconv>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "dds/common/error.hpp"

namespace dds {
namespace {

std::vector<std::string> splitLine(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

double parseNumber(const std::string& cell, std::size_t line_no) {
  double value = 0.0;
  const char* first = cell.data();
  const char* last = cell.data() + cell.size();
  while (first != last && (*first == ' ' || *first == '\t')) ++first;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    std::ostringstream os;
    os << "CSV line " << line_no << ": cannot parse number '" << cell << "'";
    throw IoError(os.str());
  }
  return value;
}

}  // namespace

std::size_t CsvTable::columnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw PreconditionError("CSV column not found: " + name);
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const std::size_t idx = columnIndex(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row.at(idx));
  return out;
}

CsvTable parseCsv(const std::string& text) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    if (table.header.empty()) {
      table.header = splitLine(line);
      continue;
    }
    const auto cells = splitLine(line);
    if (cells.size() != table.header.size()) {
      std::ostringstream os;
      os << "CSV line " << line_no << ": expected " << table.header.size()
         << " cells, got " << cells.size();
      throw IoError(os.str());
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& cell : cells) row.push_back(parseNumber(cell, line_no));
    table.rows.push_back(std::move(row));
  }
  if (table.header.empty()) throw IoError("CSV has no header row");
  return table;
}

std::string formatCsv(const CsvTable& table) {
  std::ostringstream os;
  // Shortest representation that round-trips exactly through parseCsv.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) os << ',';
    os << table.header[i];
  }
  os << '\n';
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << row[i];
    }
    os << '\n';
  }
  return os.str();
}

CsvTable loadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseCsv(buffer.str());
}

void saveCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write CSV file: " + path);
  out << formatCsv(table);
  if (!out) throw IoError("error while writing CSV file: " + path);
}

}  // namespace dds
