#include "dds/common/json.hpp"

#include <cmath>
#include <cstdio>

namespace dds {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  DDS_REQUIRE(std::isfinite(v), "jsonNumber requires a finite value");
  // Integral values print as plain integers ("7200", not "7.2e+03").
  if (v == std::floor(v) && std::fabs(v) < 1.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (const int precision : {1, 3, 6, 9, 12, 15}) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ << '{';
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  DDS_REQUIRE(!stack_.empty() && stack_.back() == Frame::Object,
              "endObject without matching beginObject");
  DDS_REQUIRE(!pending_key_, "object key without a value");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items && options_.style == Style::Pretty) {
    out_ << '\n';
    indent();
  }
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ << '[';
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  DDS_REQUIRE(!stack_.empty() && stack_.back() == Frame::Array,
              "endArray without matching beginArray");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items && options_.style == Style::Pretty) {
    out_ << '\n';
    indent();
  }
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  DDS_REQUIRE(!stack_.empty() && stack_.back() == Frame::Object,
              "key outside an object");
  DDS_REQUIRE(!pending_key_, "two keys in a row");
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
  if (options_.style == Style::Pretty) {
    out_ << '\n';
    indent();
    out_ << '"' << jsonEscape(name) << "\": ";
  } else {
    out_ << '"' << jsonEscape(name) << "\":";
  }
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  out_ << '"' << jsonEscape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) {
    switch (options_.non_finite) {
      case NonFinitePolicy::Null:
        return null();
      case NonFinitePolicy::StringSentinel:
        if (std::isnan(v)) return value("NaN");
        return value(v > 0.0 ? "Infinity" : "-Infinity");
      case NonFinitePolicy::Throw:
        DDS_REQUIRE(false, "non-finite value in JSON document");
    }
  }
  beforeValue();
  out_ << jsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  out_ << "null";
  return *this;
}

std::string JsonWriter::str() const {
  DDS_REQUIRE(stack_.empty(), "unterminated JSON container");
  if (options_.style == Style::Compact) return out_.str();
  return out_.str() + "\n";
}

void JsonWriter::beforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    DDS_REQUIRE(stack_.back() == Frame::Array,
                "value inside an object needs a key");
    if (has_items_.back()) out_ << ',';
    has_items_.back() = true;
    if (options_.style == Style::Pretty) {
      out_ << '\n';
      indent();
    }
  }
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

}  // namespace dds
