#include "dds/common/json_value.hpp"

#include <cctype>
#include <cstdlib>

#include "dds/common/error.hpp"

namespace dds {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw IoError("JSON parse error at offset " + std::to_string(pos_) +
                  ": " + what);
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parseValue() {
    skipWs();
    const char c = peek();
    switch (c) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return JsonValue{parseString()};
      case 't':
        parseLiteral("true");
        return JsonValue{true};
      case 'f':
        parseLiteral("false");
        return JsonValue{false};
      case 'n':
        parseLiteral("null");
        return JsonValue{nullptr};
      default:
        return JsonValue{parseNumber()};
    }
  }

  void parseLiteral(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) {
      fail("invalid literal");
    }
    pos_ += lit.size();
  }

  JsonValue parseObject() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      obj->emplace_back(std::move(key), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue parseArray() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    while (true) {
      arr->push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const unsigned long code = std::strtoul(hex.c_str(), nullptr, 16);
          // Documents this repo writes are ASCII; control characters
          // round-trip, anything else is preserved as a raw byte.
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  double parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* jsonFind(const JsonObject& obj, const std::string& key) {
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue parseJson(const std::string& text) { return Parser(text).parse(); }

}  // namespace dds
