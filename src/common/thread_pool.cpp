#include "dds/common/thread_pool.hpp"

namespace dds {
namespace {

/// Which pool (if any) the current thread works for, and its index — lets
/// submit() from inside a task use the worker's own deque.
thread_local const void* t_pool = nullptr;
thread_local std::size_t t_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? hardwareConcurrency() : threads;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i]() { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    shutting_down_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  DDS_REQUIRE(!workers_.empty(), "thread pool has no workers");
  const std::size_t target = (t_pool == this)
                                 ? t_worker_index
                                 : next_queue_.fetch_add(1) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  // The task is visible in its deque BEFORE unclaimed_ rises, so any
  // worker woken by the predicate will find it (or lose the race to a
  // sibling that decrements unclaimed_ on the grab).
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    DDS_REQUIRE(!shutting_down_ || t_pool == this,
                "submit on a shutting-down thread pool");
    ++pending_;
    ++unclaimed_;
  }
  sleep_cv_.notify_one();
}

std::function<void()> ThreadPool::grabTask(std::size_t index) {
  // Own deque first, newest task first (LIFO).
  {
    WorkerQueue& own = *queues_[index];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  // Steal the oldest task from a sibling (FIFO keeps victims' locality).
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(index + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return task;
    }
  }
  return {};
}

void ThreadPool::workerLoop(std::size_t index) {
  t_pool = this;
  t_worker_index = index;
  for (;;) {
    std::function<void()> task = grabTask(index);
    if (task) {
      {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        --unclaimed_;
      }
      task();
      bool drained;
      {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        --pending_;
        drained = shutting_down_ && pending_ == 0;
      }
      // The last task under shutdown wakes the sleepers so they can exit.
      if (drained) sleep_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    // Drain semantics: exit only once shutdown started AND nothing is
    // queued or running anywhere (pending_ covers both).
    if (shutting_down_ && pending_ == 0) return;
    // A transiently stale unclaimed_ (grabbed task, decrement in flight)
    // only causes a spurious wake; the predicate re-checks. Waking here
    // is guaranteed by enqueue(), the drained notify_all above, and the
    // destructor's notify_all.
    if (unclaimed_ == 0) sleep_cv_.wait(lock);
  }
}

}  // namespace dds
