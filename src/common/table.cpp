#include "dds/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "dds/common/error.hpp"

namespace dds {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DDS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::addRow(std::vector<std::string> cells) {
  DDS_REQUIRE(cells.size() == header_.size(),
              "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      os << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emitRow(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emitRow(row);
  return os.str();
}

}  // namespace dds
