#include "dds/config/config_file.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "dds/common/error.hpp"

namespace dds {
namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

KeyValueConfig KeyValueConfig::parse(const std::string& text) {
  KeyValueConfig cfg;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      std::ostringstream os;
      os << "config line " << line_no << ": expected 'key = value'";
      throw IoError(os.str());
    }
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      std::ostringstream os;
      os << "config line " << line_no << ": empty key";
      throw IoError(os.str());
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

KeyValueConfig KeyValueConfig::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool KeyValueConfig::has(const std::string& key) const {
  return values_.contains(key);
}

std::string KeyValueConfig::getString(const std::string& key,
                                      const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double KeyValueConfig::getDouble(const std::string& key,
                                 double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double out = 0.0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ConfigError("config key '" + key + "' is not a number: '" + s +
                      "'");
  }
  return out;
}

std::int64_t KeyValueConfig::getInt(const std::string& key,
                                    std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t out = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ConfigError("config key '" + key + "' is not an integer: '" + s +
                      "'");
  }
  return out;
}

bool KeyValueConfig::getBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  throw ConfigError("config key '" + key + "' is not a boolean: '" +
                    it->second + "'");
}

std::vector<std::string> KeyValueConfig::getList(
    const std::string& key) const {
  std::vector<std::string> out;
  const auto it = values_.find(key);
  if (it == values_.end()) return out;
  std::istringstream in(it->second);
  std::string item;
  while (std::getline(in, item, ',')) {
    const std::string t = trim(item);
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

std::vector<std::string> KeyValueConfig::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

SchedulerKind schedulerKindFromName(const std::string& name) {
  for (const auto kind :
       {SchedulerKind::LocalAdaptive, SchedulerKind::GlobalAdaptive,
        SchedulerKind::LocalStatic, SchedulerKind::GlobalStatic,
        SchedulerKind::LocalAdaptiveNoDyn,
        SchedulerKind::GlobalAdaptiveNoDyn, SchedulerKind::BruteForceStatic,
        SchedulerKind::ReactiveBaseline, SchedulerKind::AnnealingStatic}) {
    if (toString(kind) == name) return kind;
  }
  throw ConfigError("unknown scheduler name: '" + name + "'");
}

CliExperiment experimentFromConfig(const KeyValueConfig& kv) {
  static const std::vector<std::string> kKnownKeys = {
      "graph",        "chain_length",   "scheduler",
      "mean_rate",    "profile",        "horizon_h",
      "interval_s",   "infra_variability", "seed",
      "omega_target", "epsilon",        "msg_size_kb",
      "alternate_period", "resource_period", "sigma",
      "vm_mtbf_h",    "output_csv", "catalog", "placement_racks",
      "power_smoothing_alpha", "backend", "max_queue_delay_s",
      "straggler_mtbf_h", "straggler_factor", "straggler_duration_s",
      "acq_failure_prob", "provisioning_delay_s",
      "partition_mtbf_h", "partition_duration_s",
      "quarantine_threshold", "quarantine_probes",
      "acq_max_retries", "acq_backoff_s", "graceful_degradation"};
  for (const auto& key : kv.keys()) {
    if (std::find(kKnownKeys.begin(), kKnownKeys.end(), key) ==
        kKnownKeys.end()) {
      throw ConfigError("unknown config key: '" + key + "'");
    }
  }

  CliExperiment ex;
  ex.graph = kv.getString("graph", "paper");
  if (ex.graph != "paper" && ex.graph != "chain" && ex.graph != "diamond") {
    throw ConfigError("unknown graph: '" + ex.graph +
                      "' (expected paper, chain or diamond)");
  }

  ExperimentConfig& cfg = ex.config;
  cfg.mean_rate = kv.getDouble("mean_rate", cfg.mean_rate);
  cfg.horizon_s = kv.getDouble("horizon_h", 1.0) * kSecondsPerHour;
  cfg.interval_s = kv.getDouble("interval_s", cfg.interval_s);
  cfg.infra_variability =
      kv.getBool("infra_variability", cfg.infra_variability);
  cfg.seed = static_cast<std::uint64_t>(
      kv.getInt("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.omega_target = kv.getDouble("omega_target", cfg.omega_target);
  cfg.epsilon = kv.getDouble("epsilon", cfg.epsilon);
  cfg.msg_size_bytes =
      kv.getDouble("msg_size_kb", cfg.msg_size_bytes / 1000.0) * 1000.0;
  cfg.alternate_period = kv.getInt("alternate_period", cfg.alternate_period);
  cfg.resource_period = kv.getInt("resource_period", cfg.resource_period);
  cfg.sigma_override = kv.getDouble("sigma", cfg.sigma_override);
  cfg.vm_mtbf_hours = kv.getDouble("vm_mtbf_h", cfg.vm_mtbf_hours);
  cfg.straggler_mtbf_hours =
      kv.getDouble("straggler_mtbf_h", cfg.straggler_mtbf_hours);
  cfg.straggler_factor =
      kv.getDouble("straggler_factor", cfg.straggler_factor);
  cfg.straggler_duration_s =
      kv.getDouble("straggler_duration_s", cfg.straggler_duration_s);
  cfg.acquisition_failure_prob =
      kv.getDouble("acq_failure_prob", cfg.acquisition_failure_prob);
  cfg.provisioning_delay_s =
      kv.getDouble("provisioning_delay_s", cfg.provisioning_delay_s);
  cfg.partition_mtbf_hours =
      kv.getDouble("partition_mtbf_h", cfg.partition_mtbf_hours);
  cfg.partition_duration_s =
      kv.getDouble("partition_duration_s", cfg.partition_duration_s);
  cfg.straggler_quarantine_threshold = kv.getDouble(
      "quarantine_threshold", cfg.straggler_quarantine_threshold);
  cfg.straggler_quarantine_probes = static_cast<int>(
      kv.getInt("quarantine_probes", cfg.straggler_quarantine_probes));
  cfg.acquisition_max_retries = static_cast<int>(
      kv.getInt("acq_max_retries", cfg.acquisition_max_retries));
  cfg.acquisition_backoff_s =
      kv.getDouble("acq_backoff_s", cfg.acquisition_backoff_s);
  cfg.graceful_degradation =
      kv.getBool("graceful_degradation", cfg.graceful_degradation);
  cfg.catalog = kv.getString("catalog", cfg.catalog);
  cfg.placement_racks =
      static_cast<int>(kv.getInt("placement_racks", cfg.placement_racks));
  cfg.power_smoothing_alpha =
      kv.getDouble("power_smoothing_alpha", cfg.power_smoothing_alpha);
  cfg.max_queue_delay_s =
      kv.getDouble("max_queue_delay_s", cfg.max_queue_delay_s);

  const std::string profile = kv.getString("profile", "constant");
  if (profile == "constant") {
    cfg.profile = ProfileKind::Constant;
  } else if (profile == "wave") {
    cfg.profile = ProfileKind::PeriodicWave;
  } else if (profile == "random-walk") {
    cfg.profile = ProfileKind::RandomWalk;
  } else if (profile == "spike") {
    cfg.profile = ProfileKind::Spike;
  } else {
    throw ConfigError("unknown profile: '" + profile +
                      "' (expected constant, wave, random-walk or spike)");
  }

  const std::string backend = kv.getString("backend", "fluid");
  if (backend == "fluid") {
    cfg.backend = SimBackend::Fluid;
  } else if (backend == "event") {
    cfg.backend = SimBackend::Event;
  } else {
    throw ConfigError("unknown backend: '" + backend +
                      "' (expected fluid or event)");
  }

  auto names = kv.getList("scheduler");
  if (names.empty()) names = {"global"};
  for (const auto& name : names) {
    ex.schedulers.push_back(schedulerKindFromName(name));
  }
  ex.output_csv = kv.getString("output_csv", "");
  cfg.validate();
  return ex;
}

}  // namespace dds
