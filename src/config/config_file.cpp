#include "dds/config/config_file.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "dds/common/error.hpp"
#include "dds/forecast/forecaster.hpp"
#include "dds/workload/rate_profile.hpp"

namespace dds {
namespace {

/// Comma-joined registry names, for "expected ..." error suffixes.
template <typename Kinds, typename NameFn>
std::string joinNames(const Kinds& kinds, NameFn name) {
  std::string out;
  for (const auto& kind : kinds) {
    if (!out.empty()) out += ", ";
    out += name(kind);
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

KeyValueConfig KeyValueConfig::parse(const std::string& text) {
  KeyValueConfig cfg;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      std::ostringstream os;
      os << "config line " << line_no << ": expected 'key = value'";
      throw IoError(os.str());
    }
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      std::ostringstream os;
      os << "config line " << line_no << ": empty key";
      throw IoError(os.str());
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

KeyValueConfig KeyValueConfig::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool KeyValueConfig::has(const std::string& key) const {
  return values_.contains(key);
}

void KeyValueConfig::set(const std::string& key, const std::string& value) {
  DDS_REQUIRE(!key.empty(), "config key must be non-empty");
  values_[key] = value;
}

std::string KeyValueConfig::getString(const std::string& key,
                                      const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double KeyValueConfig::getDouble(const std::string& key,
                                 double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double out = 0.0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ConfigError("config key '" + key + "' is not a number: '" + s +
                      "'");
  }
  return out;
}

std::int64_t KeyValueConfig::getInt(const std::string& key,
                                    std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t out = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ConfigError("config key '" + key + "' is not an integer: '" + s +
                      "'");
  }
  return out;
}

bool KeyValueConfig::getBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  throw ConfigError("config key '" + key + "' is not a boolean: '" +
                    it->second + "'");
}

std::vector<std::string> KeyValueConfig::getList(
    const std::string& key) const {
  std::vector<std::string> out;
  const auto it = values_.find(key);
  if (it == values_.end()) return out;
  std::istringstream in(it->second);
  std::string item;
  while (std::getline(in, item, ',')) {
    const std::string t = trim(item);
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

std::vector<std::string> KeyValueConfig::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

SchedulerKind schedulerKindFromName(const std::string& name) {
  try {
    return parseSchedulerKind(name);
  } catch (const PreconditionError& e) {
    throw ConfigError(e.what());
  }
}

namespace {

/// The nested canonical key for every deprecated flat spelling. Both
/// forms parse; the canonical one wins the documentation and the flat one
/// earns a deprecation note.
const std::vector<std::pair<std::string, std::string>>& keyAliases() {
  static const std::vector<std::pair<std::string, std::string>> kAliases = {
      {"workload.mean_rate", "mean_rate"},
      {"workload.profile", "profile"},
      {"workload.msg_size_kb", "msg_size_kb"},
      {"workload.infra_variability", "infra_variability"},
      {"fault.vm_mtbf_h", "vm_mtbf_h"},
      {"fault.straggler_mtbf_h", "straggler_mtbf_h"},
      {"fault.straggler_factor", "straggler_factor"},
      {"fault.straggler_duration_s", "straggler_duration_s"},
      {"fault.acq_failure_prob", "acq_failure_prob"},
      {"fault.provisioning_delay_s", "provisioning_delay_s"},
      {"fault.partition_mtbf_h", "partition_mtbf_h"},
      {"fault.partition_duration_s", "partition_duration_s"},
      {"resilience.quarantine_threshold", "quarantine_threshold"},
      {"resilience.quarantine_probes", "quarantine_probes"},
      {"resilience.acq_max_retries", "acq_max_retries"},
      {"resilience.acq_backoff_s", "acq_backoff_s"},
      {"resilience.graceful_degradation", "graceful_degradation"},
  };
  return kAliases;
}

/// Resolves canonical-vs-deprecated key spellings against one config.
class KeyResolver {
 public:
  KeyResolver(const KeyValueConfig& kv, std::vector<std::string>* notes,
              bool strict)
      : kv_(&kv), notes_(notes), strict_(strict) {}

  /// The spelling of `canonical` present in the config (preferring the
  /// canonical form), or `canonical` when absent. Notes deprecated use
  /// (or rejects it outright under `config_schema = strict`); rejects
  /// configs that set both spellings.
  [[nodiscard]] std::string resolve(const std::string& canonical) const {
    std::string deprecated;
    for (const auto& [canon, flat] : keyAliases()) {
      if (canon == canonical) {
        deprecated = flat;
        break;
      }
    }
    if (deprecated.empty()) return canonical;
    const bool has_canonical = kv_->has(canonical);
    const bool has_deprecated = kv_->has(deprecated);
    if (has_canonical && has_deprecated) {
      throw ConfigError("config keys '" + canonical + "' and '" +
                        deprecated + "' are aliases; set only one");
    }
    if (has_deprecated) {
      if (strict_) {
        throw ConfigError("config key '" + deprecated +
                          "' is deprecated and rejected by config_schema "
                          "= strict; use '" +
                          canonical + "'");
      }
      if (notes_ != nullptr) {
        notes_->push_back("config key '" + deprecated +
                          "' is deprecated; use '" + canonical + "'");
      }
      return deprecated;
    }
    return canonical;
  }

 private:
  const KeyValueConfig* kv_;
  std::vector<std::string>* notes_;
  bool strict_ = false;
};

}  // namespace

std::vector<std::string> canonicalConfigKeys() {
  std::vector<std::string> keys = {
      "graph",        "chain_length",   "scheduler",
      "horizon_h",    "interval_s",     "seed",
      "omega_target", "epsilon",        "alternate_period",
      "resource_period", "sigma",       "output_csv",
      "catalog",      "placement_racks", "power_smoothing_alpha",
      "backend",      "max_queue_delay_s", "config_schema",
      "elasticity.provisioning_delay_s",
      "elasticity.provisioning_delay_per_core_s",
      "elasticity.spot_discount",
      "elasticity.spot_fraction",
      "elasticity.spot_preemption_mtbf_h",
      "elasticity.spot_notice_s",
      "elasticity.pe_state_mb",
      "elasticity.migration_bandwidth_mbps",
      "forecast.model",
      "forecast.horizon_intervals",
      "forecast.ewma_alpha",
      "forecast.hw_alpha",
      "forecast.hw_beta",
      "forecast.hw_gamma",
      "forecast.hw_season_intervals",
      "forecast.preacquire_margin",
      "forecast.lookahead_alternates"};
  for (const auto& [canon, flat] : keyAliases()) keys.push_back(canon);
  std::sort(keys.begin(), keys.end());
  return keys;
}

CliExperiment experimentFromConfig(const KeyValueConfig& kv,
                                   std::vector<std::string>* notes) {
  std::vector<std::string> known_keys = canonicalConfigKeys();
  for (const auto& [canon, flat] : keyAliases()) {
    known_keys.push_back(flat);
  }
  for (const auto& key : kv.keys()) {
    if (std::find(known_keys.begin(), known_keys.end(), key) ==
        known_keys.end()) {
      throw ConfigError("unknown config key: '" + key + "'");
    }
  }
  const std::string schema = kv.getString("config_schema", "warn");
  if (schema != "warn" && schema != "strict") {
    throw ConfigError("unknown config_schema: '" + schema +
                      "' (expected warn or strict)");
  }
  const KeyResolver keys(kv, notes, schema == "strict");

  CliExperiment ex;
  ex.graph = kv.getString("graph", "paper");
  if (ex.graph != "paper" && ex.graph != "chain" && ex.graph != "diamond") {
    throw ConfigError("unknown graph: '" + ex.graph +
                      "' (expected paper, chain or diamond)");
  }

  ExperimentConfig& cfg = ex.config;
  cfg.horizon_s = kv.getDouble("horizon_h", 1.0) * kSecondsPerHour;
  cfg.interval_s = kv.getDouble("interval_s", cfg.interval_s);
  cfg.seed = static_cast<std::uint64_t>(
      kv.getInt("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.omega_target = kv.getDouble("omega_target", cfg.omega_target);
  cfg.epsilon = kv.getDouble("epsilon", cfg.epsilon);
  cfg.alternate_period = kv.getInt("alternate_period", cfg.alternate_period);
  cfg.resource_period = kv.getInt("resource_period", cfg.resource_period);
  cfg.sigma_override = kv.getDouble("sigma", cfg.sigma_override);
  cfg.catalog = kv.getString("catalog", cfg.catalog);
  cfg.placement_racks =
      static_cast<int>(kv.getInt("placement_racks", cfg.placement_racks));
  cfg.power_smoothing_alpha =
      kv.getDouble("power_smoothing_alpha", cfg.power_smoothing_alpha);
  cfg.max_queue_delay_s =
      kv.getDouble("max_queue_delay_s", cfg.max_queue_delay_s);

  WorkloadConfig& wl = cfg.workload;
  wl.mean_rate =
      kv.getDouble(keys.resolve("workload.mean_rate"), wl.mean_rate);
  wl.infra_variability = kv.getBool(
      keys.resolve("workload.infra_variability"), wl.infra_variability);
  wl.msg_size_bytes = kv.getDouble(keys.resolve("workload.msg_size_kb"),
                                   wl.msg_size_bytes / 1000.0) *
                      1000.0;

  FaultConfig& fl = cfg.faults;
  fl.vm_mtbf_hours =
      kv.getDouble(keys.resolve("fault.vm_mtbf_h"), fl.vm_mtbf_hours);
  fl.straggler_mtbf_hours = kv.getDouble(
      keys.resolve("fault.straggler_mtbf_h"), fl.straggler_mtbf_hours);
  fl.straggler_factor = kv.getDouble(keys.resolve("fault.straggler_factor"),
                                     fl.straggler_factor);
  fl.straggler_duration_s = kv.getDouble(
      keys.resolve("fault.straggler_duration_s"), fl.straggler_duration_s);
  fl.acquisition_failure_prob =
      kv.getDouble(keys.resolve("fault.acq_failure_prob"),
                   fl.acquisition_failure_prob);
  fl.provisioning_delay_s = kv.getDouble(
      keys.resolve("fault.provisioning_delay_s"), fl.provisioning_delay_s);
  fl.partition_mtbf_hours = kv.getDouble(
      keys.resolve("fault.partition_mtbf_h"), fl.partition_mtbf_hours);
  fl.partition_duration_s = kv.getDouble(
      keys.resolve("fault.partition_duration_s"), fl.partition_duration_s);

  ElasticityConfig& el = cfg.elasticity;
  el.provisioning_delay_s = kv.getDouble("elasticity.provisioning_delay_s",
                                         el.provisioning_delay_s);
  el.provisioning_delay_per_core_s =
      kv.getDouble("elasticity.provisioning_delay_per_core_s",
                   el.provisioning_delay_per_core_s);
  el.spot_discount =
      kv.getDouble("elasticity.spot_discount", el.spot_discount);
  el.spot_fraction =
      kv.getDouble("elasticity.spot_fraction", el.spot_fraction);
  el.spot_preemption_mtbf_h = kv.getDouble(
      "elasticity.spot_preemption_mtbf_h", el.spot_preemption_mtbf_h);
  el.spot_notice_s = kv.getDouble("elasticity.spot_notice_s",
                                  el.spot_notice_s);
  el.pe_state_mb = kv.getDouble("elasticity.pe_state_mb", el.pe_state_mb);
  el.migration_bandwidth_mbps = kv.getDouble(
      "elasticity.migration_bandwidth_mbps", el.migration_bandwidth_mbps);

  ResilienceConfig& rl = cfg.resilience;
  rl.quarantine_threshold =
      kv.getDouble(keys.resolve("resilience.quarantine_threshold"),
                   rl.quarantine_threshold);
  rl.quarantine_probes = static_cast<int>(kv.getInt(
      keys.resolve("resilience.quarantine_probes"), rl.quarantine_probes));
  rl.acquisition_max_retries = static_cast<int>(
      kv.getInt(keys.resolve("resilience.acq_max_retries"),
                rl.acquisition_max_retries));
  rl.acquisition_backoff_s = kv.getDouble(
      keys.resolve("resilience.acq_backoff_s"), rl.acquisition_backoff_s);
  rl.graceful_degradation =
      kv.getBool(keys.resolve("resilience.graceful_degradation"),
                 rl.graceful_degradation);

  ForecastConfig& fo = cfg.forecast;
  const std::string model =
      kv.getString("forecast.model", forecastModelName(fo.model));
  try {
    fo.model = parseForecastModel(model);
  } catch (const PreconditionError&) {
    throw ConfigError("unknown forecast model: '" + model +
                      "' (expected " +
                      joinNames(allForecastModels(), forecastModelName) +
                      ")");
  }
  fo.horizon_intervals = static_cast<int>(
      kv.getInt("forecast.horizon_intervals", fo.horizon_intervals));
  fo.ewma_alpha = kv.getDouble("forecast.ewma_alpha", fo.ewma_alpha);
  fo.hw_alpha = kv.getDouble("forecast.hw_alpha", fo.hw_alpha);
  fo.hw_beta = kv.getDouble("forecast.hw_beta", fo.hw_beta);
  fo.hw_gamma = kv.getDouble("forecast.hw_gamma", fo.hw_gamma);
  fo.hw_season_intervals = static_cast<int>(
      kv.getInt("forecast.hw_season_intervals", fo.hw_season_intervals));
  fo.preacquire_margin =
      kv.getDouble("forecast.preacquire_margin", fo.preacquire_margin);
  fo.lookahead_alternates =
      kv.getBool("forecast.lookahead_alternates", fo.lookahead_alternates);

  const std::string profile =
      kv.getString(keys.resolve("workload.profile"), "constant");
  try {
    wl.profile = parseProfileKind(profile);
  } catch (const PreconditionError&) {
    throw ConfigError("unknown profile: '" + profile + "' (expected " +
                      joinNames(allProfileKinds(), profileName) + ")");
  }

  const std::string backend = kv.getString("backend", "fluid");
  if (backend == "fluid") {
    cfg.backend = SimBackend::Fluid;
  } else if (backend == "event") {
    cfg.backend = SimBackend::Event;
  } else {
    throw ConfigError("unknown backend: '" + backend +
                      "' (expected fluid or event)");
  }

  auto names = kv.getList("scheduler");
  if (names.empty()) names = {"global"};
  for (const auto& name : names) {
    ex.schedulers.push_back(schedulerKindFromName(name));
  }
  for (const SchedulerKind kind : ex.schedulers) {
    if ((kind == SchedulerKind::LocalPredictive ||
         kind == SchedulerKind::GlobalPredictive) &&
        !cfg.forecast.enabled()) {
      throw ConfigError(
          "scheduler '" + schedulerName(kind) +
          "' needs forecasting on; set forecast.model to one of " +
          joinNames(allForecastModels(), forecastModelName) +
          " (other than off)");
    }
  }
  ex.output_csv = kv.getString("output_csv", "");
  // Report every config mistake at once, as a ConfigError (one clean CLI
  // line rather than a precondition stack).
  const std::vector<std::string> errors = cfg.validationErrors();
  if (!errors.empty()) {
    std::ostringstream os;
    for (std::size_t i = 0; i < errors.size(); ++i) {
      os << (i ? "; " : "") << errors[i];
    }
    throw ConfigError(os.str());
  }
  return ex;
}

}  // namespace dds
