#include "dds/dataflow/standard_graphs.hpp"

#include <string>
#include <vector>

namespace dds {

Dataflow makePaperDataflow() {
  DataflowBuilder b("sc13-fig1");
  // Costs are core-seconds per message on a standard (pi = 1) core. They
  // are calibrated so the 2..50 msg/s sweep needs a handful of cores at
  // the low end and on the order of a hundred cores (tens of VMs) at the
  // high end — the paper's "scaled up to ... 100's of VMs".
  // With the accurate alternates the graph demands ~29 standard core-units
  // per msg/s, i.e. ~180 m1.xlarge VMs at 50 msg/s, and its dollar cost
  // tracks the paper's empirical expectation line ($4/h at 2 msg/s to
  // $100/h at 50 msg/s, §8.2).
  const PeId e1 = b.addPe("E1", {{"ingest", 1.0, 2.0, 1.0}});
  const PeId e2 = b.addPe("E2", {{"e2-accurate", 1.0, 8.0, 1.0},
                                 {"e2-fast", 0.70, 4.0, 0.8}});
  const PeId e3 = b.addPe("E3", {{"e3-accurate", 1.0, 12.0, 1.2},
                                 {"e3-fast", 0.60, 4.8, 1.0}});
  const PeId e4 = b.addPe("E4", {{"sink", 1.0, 3.2, 1.0}});
  b.addEdge(e1, e2);
  b.addEdge(e1, e3);
  b.addEdge(e2, e4);
  b.addEdge(e3, e4);
  return std::move(b).build();
}

Dataflow makeChainDataflow(std::size_t length, std::size_t alternates_per_pe) {
  DDS_REQUIRE(length >= 1, "chain needs at least one PE");
  DDS_REQUIRE(alternates_per_pe >= 1, "need at least one alternate per PE");
  DataflowBuilder b("chain-" + std::to_string(length));
  std::vector<PeId> ids;
  ids.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    std::vector<Alternate> alts;
    for (std::size_t j = 0; j < alternates_per_pe; ++j) {
      const auto dj = static_cast<double>(j);
      alts.push_back({"s" + std::to_string(i) + "a" + std::to_string(j),
                      /*value=*/1.0 / (1.0 + 0.3 * dj),
                      /*cost_core_sec=*/0.2 / (1.0 + dj),
                      /*selectivity=*/1.0});
    }
    ids.push_back(b.addPe("stage" + std::to_string(i), std::move(alts)));
  }
  for (std::size_t i = 0; i + 1 < length; ++i) b.addEdge(ids[i], ids[i + 1]);
  return std::move(b).build();
}

Dataflow makeDiamondDataflow() {
  DataflowBuilder b("diamond");
  const PeId src = b.addPe("src", {{"src", 1.0, 0.05, 1.0}});
  const PeId a = b.addPe("a", {{"a", 1.0, 0.15, 1.0}});
  const PeId c = b.addPe("b", {{"b", 1.0, 0.10, 2.0}});
  const PeId sink = b.addPe("sink", {{"sink", 1.0, 0.05, 1.0}});
  b.addEdge(src, a);
  b.addEdge(src, c);
  b.addEdge(a, sink);
  b.addEdge(c, sink);
  return std::move(b).build();
}

Dataflow makeAggregationTreeDataflow(std::size_t leaves,
                                     std::size_t fan_in) {
  DDS_REQUIRE(leaves >= 1, "tree needs at least one leaf");
  DDS_REQUIRE(fan_in >= 2, "aggregation fan-in must be at least 2");
  DataflowBuilder b("aggtree-" + std::to_string(leaves) + "x" +
                    std::to_string(fan_in));

  // Leaf ingest stage: one PE per sensor feed.
  std::vector<PeId> level;
  for (std::size_t i = 0; i < leaves; ++i) {
    level.push_back(
        b.addPe("leaf" + std::to_string(i), {{"ingest", 1.0, 0.5, 1.0}}));
  }

  // Reduce until one node remains. Each aggregator emits one message per
  // fan_in inputs (selectivity 1/fan_in) and offers a precise and a
  // cheaper sampling implementation.
  const double sel = 1.0 / static_cast<double>(fan_in);
  std::size_t depth = 0;
  while (level.size() > 1) {
    std::vector<PeId> next;
    for (std::size_t i = 0; i < level.size(); i += fan_in) {
      const PeId agg = b.addPe(
          "agg-d" + std::to_string(depth) + "-" + std::to_string(i / fan_in),
          {{"precise", 1.0, 2.0, sel}, {"sampled", 0.8, 0.8, sel}});
      for (std::size_t j = i; j < std::min(i + fan_in, level.size()); ++j) {
        b.addEdge(level[j], agg);
      }
      next.push_back(agg);
    }
    level = std::move(next);
    ++depth;
  }
  // Root dashboard sink.
  if (leaves > 1) {
    const PeId sink = b.addPe("dashboard", {{"render", 1.0, 0.4, 1.0}});
    b.addEdge(level.front(), sink);
  }
  return std::move(b).build();
}

Dataflow makeLayeredDataflow(std::size_t layers, std::size_t width,
                             std::size_t alternates_per_pe, Rng& rng) {
  DDS_REQUIRE(layers >= 2, "layered DAG needs at least two layers");
  DDS_REQUIRE(width >= 1, "layered DAG needs positive width");
  DDS_REQUIRE(alternates_per_pe >= 1, "need at least one alternate per PE");
  DataflowBuilder b("layered-" + std::to_string(layers) + "x" +
                    std::to_string(width));

  std::vector<std::vector<PeId>> layer_ids(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    // Single source and sink layers keep |I| and |O| small, as in Fig. 1.
    const std::size_t w = (l == 0 || l + 1 == layers) ? 1 : width;
    for (std::size_t i = 0; i < w; ++i) {
      std::vector<Alternate> alts;
      for (std::size_t j = 0; j < alternates_per_pe; ++j) {
        alts.push_back({"l" + std::to_string(l) + "p" + std::to_string(i) +
                            "a" + std::to_string(j),
                        rng.uniform(0.4, 1.0), rng.uniform(0.05, 0.4),
                        rng.uniform(0.5, 1.5)});
      }
      layer_ids[l].push_back(b.addPe(
          "pe-l" + std::to_string(l) + "-" + std::to_string(i),
          std::move(alts)));
    }
  }
  for (std::size_t l = 0; l + 1 < layers; ++l) {
    for (const PeId u : layer_ids[l]) {
      // Each PE feeds between one and all PEs of the next layer.
      const auto fanout = static_cast<std::size_t>(rng.uniformInt(
          1, static_cast<std::int64_t>(layer_ids[l + 1].size())));
      for (std::size_t k = 0; k < fanout; ++k) {
        b.addEdge(u, layer_ids[l + 1][k]);
      }
    }
    // Guarantee every next-layer PE has a predecessor (reachability).
    for (std::size_t k = 0; k < layer_ids[l + 1].size(); ++k) {
      if (k >= 1) {
        // addEdge rejects duplicates, so only add when not already present;
        // connecting from the first PE of this layer is always safe to try.
        try {
          b.addEdge(layer_ids[l][0], layer_ids[l + 1][k]);
        } catch (const PreconditionError&) {
          // duplicate edge — the PE is already connected
        }
      }
    }
  }
  return std::move(b).build();
}

}  // namespace dds
