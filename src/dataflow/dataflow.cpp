#include "dds/dataflow/dataflow.hpp"

#include <algorithm>
#include <deque>

namespace dds {
namespace {

/// Kahn's algorithm; returns empty vector when the graph has a cycle.
std::vector<PeId> kahnTopologicalOrder(
    const std::vector<std::vector<PeId>>& successors,
    const std::vector<std::vector<PeId>>& predecessors) {
  const std::size_t n = successors.size();
  std::vector<std::size_t> in_degree(n);
  std::deque<PeId> ready;
  for (std::size_t i = 0; i < n; ++i) {
    in_degree[i] = predecessors[i].size();
    if (in_degree[i] == 0) {
      ready.push_back(PeId(static_cast<PeId::value_type>(i)));
    }
  }
  std::vector<PeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const PeId u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (PeId v : successors[u.value()]) {
      if (--in_degree[v.value()] == 0) ready.push_back(v);
    }
  }
  if (order.size() != n) order.clear();  // cycle detected
  return order;
}

std::vector<PeId> bfsOrder(const std::vector<PeId>& roots,
                           const std::vector<std::vector<PeId>>& adjacency,
                           std::size_t pe_count) {
  std::vector<bool> seen(pe_count, false);
  std::deque<PeId> queue;
  std::vector<PeId> order;
  order.reserve(pe_count);
  for (PeId r : roots) {
    seen[r.value()] = true;
    queue.push_back(r);
  }
  while (!queue.empty()) {
    const PeId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (PeId v : adjacency[u.value()]) {
      if (!seen[v.value()]) {
        seen[v.value()] = true;
        queue.push_back(v);
      }
    }
  }
  return order;
}

}  // namespace

std::vector<PeId> Dataflow::forwardBfsFromInputs() const {
  return bfsOrder(inputs_, successors_, pes_.size());
}

std::vector<PeId> Dataflow::reverseBfsFromOutputs() const {
  return bfsOrder(outputs_, predecessors_, pes_.size());
}

std::size_t Dataflow::totalAlternateCount() const {
  std::size_t n = 0;
  for (const auto& pe : pes_) n += pe.alternateCount();
  return n;
}

DataflowBuilder::DataflowBuilder(std::string name) {
  DDS_REQUIRE(!name.empty(), "dataflow needs a name");
  df_.name_ = std::move(name);
}

PeId DataflowBuilder::addPe(const std::string& name,
                            std::vector<Alternate> alternates) {
  const PeId id(static_cast<PeId::value_type>(df_.pes_.size()));
  df_.pes_.emplace_back(id, name, std::move(alternates));
  df_.successors_.emplace_back();
  df_.predecessors_.emplace_back();
  return id;
}

void DataflowBuilder::addEdge(PeId from, PeId to) {
  DDS_REQUIRE(from.value() < df_.pes_.size(), "edge source does not exist");
  DDS_REQUIRE(to.value() < df_.pes_.size(), "edge sink does not exist");
  DDS_REQUIRE(from != to, "self-loops are not allowed");
  auto& succ = df_.successors_[from.value()];
  DDS_REQUIRE(std::find(succ.begin(), succ.end(), to) == succ.end(),
              "duplicate edge");
  succ.push_back(to);
  df_.predecessors_[to.value()].push_back(from);
  ++df_.edge_count_;
}

Dataflow DataflowBuilder::build() && {
  DDS_REQUIRE(!df_.pes_.empty(), "dataflow has no processing elements");

  df_.topo_order_ = kahnTopologicalOrder(df_.successors_, df_.predecessors_);
  DDS_REQUIRE(!df_.topo_order_.empty(), "dataflow contains a cycle");

  for (std::size_t i = 0; i < df_.pes_.size(); ++i) {
    const PeId id(static_cast<PeId::value_type>(i));
    if (df_.predecessors_[i].empty()) df_.inputs_.push_back(id);
    if (df_.successors_[i].empty()) df_.outputs_.push_back(id);
  }
  // A non-empty DAG always has at least one source and one sink, so the
  // Def. 1 requirements I != {} and O != {} hold by construction here.

  const auto reachable = df_.forwardBfsFromInputs();
  DDS_REQUIRE(reachable.size() == df_.pes_.size(),
              "every PE must be reachable from an input PE");

  return std::move(df_);
}

}  // namespace dds
