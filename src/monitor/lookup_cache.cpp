#include "dds/monitor/lookup_cache.hpp"

namespace dds {

double CorePowerCache::corePower(VmId vm, SimTime t) {
  const auto idx = static_cast<std::size_t>(vm.value());
  if (idx >= entries_.size()) entries_.resize(idx + 1);
  Entry& e = entries_[idx];
  if (!(t < e.valid_until)) {
    const CoeffSample s = monitor_->observedCorePowerSample(vm, t);
    e.value = s.value;
    e.valid_until = s.valid_until;
  }
  return e.value;
}

void CorePowerCache::clear() { entries_.clear(); }

}  // namespace dds
