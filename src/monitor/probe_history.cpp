#include "dds/monitor/probe_history.hpp"

namespace dds {

ProbeHistory::ProbeHistory(const MonitoringService& monitor, double alpha)
    : monitor_(&monitor), alpha_(alpha) {
  DDS_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
}

void ProbeHistory::probe(SimTime t) {
  DDS_REQUIRE(t >= last_probe_, "probe times must be non-decreasing");
  last_probe_ = t;
  ++probes_;
  for (const VmId vm : monitor_->cloud().activeVms()) {
    // A provisioning VM observes zero power by definition, not because it
    // is slow; folding that into the EWMA would poison the estimate the
    // schedulers (and the straggler guard) plan against.
    if (!monitor_->cloud().instance(vm).isReady(t)) continue;
    const double observed = monitor_->observedCorePower(vm, t);
    const auto it = smoothed_.find(vm);
    if (it == smoothed_.end()) {
      smoothed_.emplace(vm, observed);
    } else {
      it->second = alpha_ * observed + (1.0 - alpha_) * it->second;
    }
  }
}

double ProbeHistory::smoothedCorePower(VmId vm) const {
  const auto it = smoothed_.find(vm);
  if (it != smoothed_.end()) return it->second;
  return monitor_->ratedCorePower(vm);
}

}  // namespace dds
