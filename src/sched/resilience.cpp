#include "dds/sched/resilience.hpp"

namespace dds {

StragglerGuard::StragglerGuard(const CloudProvider& cloud,
                               const MonitoringService& monitor,
                               ResilienceOptions options)
    : cloud_(&cloud), monitor_(&monitor), options_(options) {
  options_.validate();
}

std::vector<VmId> StragglerGuard::probe(SimTime t) {
  std::vector<VmId> newly_quarantined;
  if (!options_.quarantineEnabled()) return newly_quarantined;

  for (const VmId vm : cloud_->activeVms()) {
    if (blacklist_.contains(vm)) continue;
    if (!cloud_->instance(vm).isReady(t)) continue;
    const double rated = monitor_->ratedCorePower(vm);
    if (rated <= 0.0) continue;
    const double ratio = monitor_->observedCorePower(vm, t) / rated;

    auto [it, inserted] = tracks_.try_emplace(vm, Track{ratio, 0});
    Track& track = it->second;
    if (!inserted) {
      track.smoothed_ratio = options_.straggler_alpha * ratio +
                             (1.0 - options_.straggler_alpha) *
                                 track.smoothed_ratio;
    }
    if (track.smoothed_ratio < options_.straggler_threshold) {
      ++track.consecutive_low;
    } else {
      if (track.consecutive_low > 0 && tracer_.enabled()) {
        // A suspect recovered before crossing the quarantine bar.
        tracer_.emit(obs::StragglerRecoveryEvent{.t = t, .vm = vm.value()});
      }
      track.consecutive_low = 0;
    }
    if (track.consecutive_low >= options_.straggler_probes) {
      blacklist_.insert(vm);
      newly_quarantined.push_back(vm);
    }
  }
  return newly_quarantined;
}

}  // namespace dds
