#include "dds/sched/feasibility_memo.hpp"

#include <algorithm>
#include <bit>

#include "dds/common/hash.hpp"

namespace dds {

void FeasibilityMemo::init(std::size_t key_words, std::size_t capacity) {
  DDS_REQUIRE(key_words > 0, "memo keys need at least one word");
  key_words_ = key_words;
  if (capacity == 0) {
    capacity_ = 0;
    mask_ = 0;
    hashes_.clear();
    keys_.clear();
    occupancy_.clear();
  } else {
    capacity_ = std::bit_ceil(std::max<std::size_t>(capacity, kProbeWindow));
    mask_ = capacity_ - 1;
    hashes_.assign(capacity_, 0);
    keys_.assign(capacity_ * key_words_, 0);
    occupancy_.assign(capacity_, kEmpty);
  }
  lookups_ = 0;
  hits_ = 0;
}

void FeasibilityMemo::clear() {
  std::fill(occupancy_.begin(), occupancy_.end(), kEmpty);
  lookups_ = 0;
  hits_ = 0;
}

bool FeasibilityMemo::keyEquals(std::size_t slot,
                                const std::uint64_t* key) const {
  const std::uint64_t* stored = keys_.data() + slot * key_words_;
  for (std::size_t w = 0; w < key_words_; ++w) {
    if (stored[w] != key[w]) return false;
  }
  return true;
}

std::optional<bool> FeasibilityMemo::lookup(const std::uint64_t* key) {
  if (capacity_ == 0) return std::nullopt;
  ++lookups_;
  const std::uint64_t hash = fnv1aWords(key, key_words_);
  const std::size_t home = static_cast<std::size_t>(hash) & mask_;
  for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
    const std::size_t slot = (home + probe) & mask_;
    if (occupancy_[slot] == kEmpty) return std::nullopt;
    if (hashes_[slot] == hash && keyEquals(slot, key)) {
      ++hits_;
      return occupancy_[slot] == kFeasible;
    }
  }
  return std::nullopt;
}

void FeasibilityMemo::writeSlot(std::size_t slot, std::uint64_t hash,
                                const std::uint64_t* key, bool feasible) {
  hashes_[slot] = hash;
  std::copy(key, key + key_words_, keys_.data() + slot * key_words_);
  occupancy_[slot] = feasible ? kFeasible : kInfeasible;
}

void FeasibilityMemo::insert(const std::uint64_t* key, bool feasible) {
  if (capacity_ == 0) return;
  const std::uint64_t hash = fnv1aWords(key, key_words_);
  const std::size_t home = static_cast<std::size_t>(hash) & mask_;
  for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
    const std::size_t slot = (home + probe) & mask_;
    if (occupancy_[slot] == kEmpty ||
        (hashes_[slot] == hash && keyEquals(slot, key))) {
      writeSlot(slot, hash, key, feasible);
      return;
    }
  }
  // Probe window exhausted: overwrite the home slot. Deterministic, and
  // the displaced entry was by construction the least recently written of
  // the window's candidates more often than not.
  writeSlot(home, hash, key, feasible);
}

}  // namespace dds
