#include "dds/sched/alternate_selection.hpp"

namespace dds {

std::string toString(Strategy s) {
  return s == Strategy::Local ? "local" : "global";
}

std::vector<double> downstreamCosts(const Dataflow& df,
                                    const Deployment& choices) {
  std::vector<double> dc(df.peCount(), 0.0);
  // Reverse topological order guarantees successors are computed first
  // (reverse BFS from outputs would miss ordering between layers that BFS
  // visits at the same depth; reverse-topo is the safe DP order).
  const auto& topo = df.topologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const PeId pe = *it;
    const auto& alt = df.pe(pe).alternate(choices.activeAlternate(pe));
    double succ_sum = 0.0;
    for (const PeId s : df.successors(pe)) succ_sum += dc[s.value()];
    dc[pe.value()] = alt.cost_core_sec + alt.selectivity * succ_sum;
  }
  return dc;
}

double alternateCost(Strategy strategy, const Dataflow& df, PeId pe,
                     const Alternate& candidate,
                     const std::vector<double>& succ_costs) {
  if (strategy == Strategy::Local) return candidate.cost_core_sec;
  double succ_sum = 0.0;
  for (const PeId s : df.successors(pe)) succ_sum += succ_costs[s.value()];
  return candidate.cost_core_sec + candidate.selectivity * succ_sum;
}

namespace {

AlternateId bestRatioAlternate(Strategy strategy, const Dataflow& df,
                               PeId pe,
                               const std::vector<double>& succ_costs) {
  const ProcessingElement& element = df.pe(pe);
  std::size_t best = 0;
  double best_ratio = -1.0;
  for (std::size_t j = 0; j < element.alternateCount(); ++j) {
    const AlternateId alt_id(static_cast<AlternateId::value_type>(j));
    const double cost = alternateCost(strategy, df, pe,
                                      element.alternate(alt_id), succ_costs);
    const double ratio = element.relativeValue(alt_id) / cost;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = j;
    }
  }
  return AlternateId(static_cast<AlternateId::value_type>(best));
}

}  // namespace

void selectInitialAlternates(Strategy strategy, const Dataflow& df,
                             Deployment& deployment) {
  if (strategy == Strategy::Local) {
    // Local decisions are independent per PE.
    for (const auto& pe : df.pes()) {
      deployment.setActiveAlternate(
          pe.id(), bestRatioAlternate(strategy, df, pe.id(), {}));
    }
    return;
  }
  // Global: choose outputs-first so every PE ranks its alternates against
  // the downstream costs of already-decided successors.
  const auto& topo = df.topologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const auto succ_costs = downstreamCosts(df, deployment);
    deployment.setActiveAlternate(
        *it, bestRatioAlternate(strategy, df, *it, succ_costs));
  }
}

void selectBestValueAlternates(const Dataflow& df, Deployment& deployment) {
  for (const auto& pe : df.pes()) {
    deployment.setActiveAlternate(pe.id(), pe.bestValueAlternate());
  }
}

}  // namespace dds
