#include "dds/sched/reactive_autoscaler.hpp"

#include <limits>

#include "dds/sched/alternate_selection.hpp"

namespace dds {

ReactiveAutoscaler::ReactiveAutoscaler(SchedulerEnv env,
                                       ReactiveOptions options)
    : env_(env),
      options_(options),
      allocator_(*env.dataflow, *env.cloud, env.omega_target),
      idle_streak_(env.dataflow == nullptr ? 0 : env.dataflow->peCount(),
                   0) {
  env_.validate();
  options_.validate();
  allocator_.setObservability(env_.tracer, env_.metrics);
}

Deployment ReactiveAutoscaler::deploy(double estimated_input_rate) {
  DDS_REQUIRE(estimated_input_rate >= 0.0,
              "estimated input rate must be non-negative");
  (void)estimated_input_rate;  // no model: the estimate cannot be used
  Deployment deployment(*env_.dataflow);
  // No notion of alternates as a control: run the best-value code.
  selectBestValueAlternates(*env_.dataflow, deployment);
  // Cold start: one core per PE, growth is purely reactive.
  allocator_.ensureMinimumCores(0.0);
  return deployment;
}

std::vector<MigrationEvent> ReactiveAutoscaler::adapt(
    const ObservedState& state, Deployment& deployment) {
  (void)deployment;  // alternates never change
  if (state.last_interval == nullptr ||
      state.last_interval->pe_stats.size() != idle_streak_.size()) {
    return {};
  }
  const Dataflow& df = *env_.dataflow;
  std::vector<MigrationEvent> migrations;
  int cores_grown = 0;
  int cores_shrunk = 0;

  for (const auto& element : df.pes()) {
    const PeId pe = element.id();
    const auto& st = state.last_interval->pe_stats[pe.value()];
    const int cores = totalCores(*env_.cloud, pe);
    if (cores == 0) continue;
    const double backlog_per_core =
        st.backlog_msgs / static_cast<double>(cores);

    if (backlog_per_core > options_.backlog_hi_per_core) {
      // Pressure: one more core, wherever it fits (acquire when needed).
      idle_streak_[pe.value()] = 0;
      for (const VmId id : env_.cloud->activeVms()) {
        VmInstance& vm = env_.cloud->instance(id);
        if (vm.freeCoreCount() > 0) {
          vm.allocateCore(pe);
          ++cores_grown;
          if (env_.tracer.enabled()) {
            env_.tracer.emit(obs::CoreAllocEvent{
                .t = state.now, .vm = id.value(), .pe = pe.value(),
                .delta = 1});
          }
          goto next_pe;  // grew on an existing VM
        }
      }
      // Naive baseline: one shot, no retry or fallback — a rejected
      // acquisition just leaves the backlog to trigger again next interval.
      if (const auto got = env_.cloud->tryAcquire(
              env_.cloud->catalog().largest(), state.now);
          got.ok()) {
        env_.cloud->instance(got.vm).allocateCore(pe);
        ++cores_grown;
        if (env_.tracer.enabled()) {
          env_.tracer.emit(obs::CoreAllocEvent{
              .t = state.now, .vm = got.vm.value(), .pe = pe.value(),
              .delta = 1});
        }
      }
    } else if (backlog_per_core < options_.backlog_lo_per_core &&
               st.relative_throughput >= 1.0 - 1e-9) {
      if (++idle_streak_[pe.value()] >= options_.cooldown_intervals &&
          cores > 1) {
        // Idle long enough: drop one core from the least-loaded host VM.
        idle_streak_[pe.value()] = 0;
        const auto hosts = peCores(*env_.cloud, pe);
        const VmCores* victim = &hosts.front();
        for (const auto& vc : hosts) {
          if (env_.cloud->instance(vc.vm).allocatedCoreCount() <
              env_.cloud->instance(victim->vm).allocatedCoreCount()) {
            victim = &vc;
          }
        }
        env_.cloud->instance(victim->vm).releaseCoreOf(pe);
        ++cores_shrunk;
        if (env_.tracer.enabled()) {
          env_.tracer.emit(obs::CoreAllocEvent{
              .t = state.now, .vm = victim->vm.value(), .pe = pe.value(),
              .delta = -1});
        }
        if (victim->cores == 1) {
          migrations.push_back(
              {pe, 1.0 / static_cast<double>(cores)});
        }
      }
    } else {
      idle_streak_[pe.value()] = 0;
    }
  next_pe:;
  }

  // No billing awareness: empty VMs go back immediately.
  allocator_.releaseEmptyVms(ResourceAllocator::ReleasePolicy::Immediate,
                             state.now, env_.sim_config.interval_s);
  if (env_.tracer.enabled()) {
    const char* action = "hold";
    if (cores_grown > 0 && cores_shrunk > 0) {
      action = "rebalance";
    } else if (cores_grown > 0) {
      action = "grow";
    } else if (cores_shrunk > 0) {
      action = "shrink";
    }
    const double omega_t = state.last_interval != nullptr
                               ? state.last_interval->omega
                               : 1.0;
    env_.tracer.emit(obs::SchedulerDecisionEvent{
        .t = state.now,
        .interval = state.interval,
        .phase = "resource",
        .action = action,
        .omega = omega_t,
        .omega_bar = state.average_omega,
        .theta = std::numeric_limits<double>::quiet_NaN(),
        .rejected = {}});
  }
  if (env_.metrics != nullptr) {
    if (cores_grown > 0) env_.metrics->counter("sched.scale_outs").inc();
    if (cores_shrunk > 0) env_.metrics->counter("sched.scale_ins").inc();
  }
  return migrations;
}

}  // namespace dds
