#include "dds/sched/brute_force.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <sstream>

#include "dds/sched/plan_evaluator.hpp"
#include "dds/sched/static_planning.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {

namespace {

/// Compact human label of one candidate plan for decision events.
std::string planLabel(const std::vector<std::size_t>& combo,
                      const std::vector<int>& counts) {
  std::ostringstream os;
  os << "alts=[";
  for (std::size_t i = 0; i < combo.size(); ++i) {
    os << (i ? "," : "") << combo[i];
  }
  os << "] vms=[";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    os << (i ? "," : "") << counts[i];
  }
  os << "]";
  return os.str();
}

}  // namespace

BruteForceScheduler::BruteForceScheduler(SchedulerEnv env, double sigma,
                                         SimTime horizon_s,
                                         std::size_t max_combinations)
    : env_(env),
      sigma_(sigma),
      horizon_s_(horizon_s),
      max_combinations_(max_combinations) {
  env_.validate();
  DDS_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  DDS_REQUIRE(horizon_s > 0.0, "horizon must be positive");
  DDS_REQUIRE(max_combinations >= 1, "combination cap must be positive");
}

Deployment BruteForceScheduler::deploy(double estimated_input_rate) {
  DDS_REQUIRE(estimated_input_rate >= 0.0,
              "estimated input rate must be non-negative");
  const Dataflow& df = *env_.dataflow;
  const ResourceCatalog& catalog = env_.cloud->catalog();
  const std::size_t n_pes = df.peCount();
  const std::size_t n_classes = catalog.size();
  const double horizon_hours = std::ceil(horizon_s_ / kSecondsPerHour);
  plans_examined_ = 0;

  // Incremental evaluator: advancing the alternate odometer changes a
  // low-order digit most of the time, so re-propagating only the changed
  // PEs' downstream cones replaces the per-combination full DAG sweep.
  PlanEvaluatorOptions eval_options;
  eval_options.input_rate = estimated_input_rate;
  eval_options.omega_target = env_.omega_target;
  eval_options.sigma = sigma_;
  eval_options.horizon_hours = horizon_hours;
  PlanEvaluator eval(env_.plan_structure != nullptr
                         ? env_.plan_structure
                         : PlanStructure::build(df, catalog),
                     df, catalog, eval_options);

  // Per-class tables hoisted out of the multiset loop; the summations
  // below keep the original accumulation order and multiply association,
  // so every total and cost double is unchanged.
  std::vector<double> class_power(n_classes);
  std::vector<double> class_price(n_classes);
  std::vector<int> class_cores(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    const auto& cls = catalog.at(
        ResourceClassId(static_cast<ResourceClassId::value_type>(c)));
    class_power[c] = cls.totalPower();
    class_price[c] = cls.price_per_hour;
    class_cores[c] = cls.cores;
  }

  struct Best {
    double theta = -std::numeric_limits<double>::infinity();
    Deployment deployment;
    std::vector<int> vm_counts;
    static_planning::Assignment assignment;
  };
  std::optional<Best> best;
  // Superseded feasible optima become the decision event's rejected
  // candidates; collected only when a tracer is attached.
  std::string best_label;
  std::vector<obs::RejectedPlan> superseded;

  // Odometer over alternate combinations.
  Deployment dep(df);
  std::vector<std::size_t> combo(n_pes, 0);
  std::vector<AlternateId> combo_alts(n_pes, AlternateId(0));
  std::vector<int> bounds(n_classes);
  std::vector<int> counts(n_classes);
  bool combos_left = true;
  while (combos_left) {
    for (std::size_t i = 0; i < n_pes; ++i) {
      dep.setActiveAlternate(
          PeId(static_cast<PeId::value_type>(i)),
          AlternateId(static_cast<AlternateId::value_type>(combo[i])));
      combo_alts[i] = AlternateId(static_cast<AlternateId::value_type>(combo[i]));
    }
    // Provision to exactly the throughput constraint: meeting
    // Omega >= Omega-hat at the boundary minimizes cost and thus
    // maximizes Theta under the no-variability assumption.
    eval.setAlternates(combo_alts);
    const std::vector<double>& demand = eval.demand();
    const double total_demand =
        std::accumulate(demand.begin(), demand.end(), 0.0);
    const double gamma = eval.gamma();

    // Per-class count bounds: enough of any single class to host the whole
    // demand (plus one for core-count granularity).
    for (std::size_t c = 0; c < n_classes; ++c) {
      const int by_power =
          static_cast<int>(std::ceil(total_demand / class_power[c]));
      const int by_cores = static_cast<int>(
          (n_pes + static_cast<std::size_t>(class_cores[c]) - 1) /
          static_cast<std::size_t>(class_cores[c]));
      bounds[c] = std::max(by_power, by_cores) + 1;
    }

    // Odometer over VM multisets.
    std::fill(counts.begin(), counts.end(), 0);
    bool multisets_left = true;
    while (multisets_left) {
      if (++plans_examined_ > max_combinations_) {
        throw SearchSpaceTooLarge(
            "brute-force search exceeded its combination cap; this static "
            "optimal is only tractable for small graphs and data rates");
      }
      double total_power = 0.0;
      int total_cores = 0;
      for (std::size_t c = 0; c < n_classes; ++c) {
        total_power += counts[c] * class_power[c];
        total_cores += counts[c] * class_cores[c];
      }
      double cost = 0.0;
      for (std::size_t c = 0; c < n_classes; ++c) {
        cost += counts[c] * class_price[c] * horizon_hours;
      }
      const double theta = gamma - sigma_ * cost;
      const bool worth_checking =
          total_power + 1e-9 >= total_demand &&
          total_cores >= static_cast<int>(n_pes) &&
          (!best.has_value() || theta > best->theta);
      // The verdict-only feasibility test screens the (mostly infeasible)
      // improving candidates without building an Assignment; the full
      // packing runs only for genuine new optima.
      if (worth_checking && eval.feasibleFor(counts)) {
        auto assignment = static_planning::tryAssign(catalog, counts, demand);
        DDS_ENSURE(assignment.has_value(),
                   "feasibility verdict disagrees with packing");
        if (env_.tracer.enabled()) {
          if (best.has_value()) {
            superseded.push_back({best_label, best->theta});
          }
          best_label = planLabel(combo, counts);
        }
        best = Best{theta, dep, counts, std::move(*assignment)};
      }
      // Advance the multiset odometer.
      std::size_t pos = 0;
      while (pos < n_classes) {
        if (++counts[pos] <= bounds[pos]) break;
        counts[pos] = 0;
        ++pos;
      }
      multisets_left = pos < n_classes;
    }

    // Advance the alternate odometer.
    std::size_t pos = 0;
    while (pos < n_pes) {
      if (++combo[pos] <
          df.pe(PeId(static_cast<PeId::value_type>(pos))).alternateCount()) {
        break;
      }
      combo[pos] = 0;
      ++pos;
    }
    combos_left = pos < n_pes;
  }

  DDS_ENSURE(best.has_value(), "brute force found no feasible plan");
  if (env_.tracer.enabled()) {
    // Keep the last few superseded optima (best theta first).
    std::reverse(superseded.begin(), superseded.end());
    if (superseded.size() > 3) superseded.resize(3);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    env_.tracer.emit(
        obs::SchedulerDecisionEvent{.t = 0.0,
                                    .interval = 0,
                                    .phase = "deploy",
                                    .action = "brute_force",
                                    .omega = nan,
                                    .omega_bar = nan,
                                    .theta = best->theta,
                                    .rejected = std::move(superseded)});
  }
  if (env_.metrics != nullptr) {
    env_.metrics->counter("sched.plans_examined")
        .inc(static_cast<std::uint64_t>(plans_examined_));
    env_.metrics->counter("sched.evaluator_memo_lookups")
        .inc(eval.memoLookups());
    env_.metrics->counter("sched.evaluator_memo_hits").inc(eval.memoHits());
  }
  static_planning::materialize(*env_.cloud, best->vm_counts,
                               best->assignment);
  return best->deployment;
}

}  // namespace dds
