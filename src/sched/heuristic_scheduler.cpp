#include "dds/sched/heuristic_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

constexpr double kEps = 1e-9;

/// Heuristic decisions are not plan-scored; their decision events carry
/// Θ = NaN (serialized as the "NaN" sentinel) rather than a fake zero.
const double kNoTheta = std::numeric_limits<double>::quiet_NaN();

/// Free (unallocated) normalized core power across active VMs.
double freeCorePower(const CloudProvider& cloud, const CorePowerFn& power) {
  double total = 0.0;
  for (const VmInstance& vm : cloud.instances()) {
    if (!vm.isActive()) continue;
    total += static_cast<double>(vm.freeCoreCount()) * power(vm.id());
  }
  return total;
}

}  // namespace

HeuristicScheduler::HeuristicScheduler(SchedulerEnv env, Strategy strategy,
                                       HeuristicOptions options)
    : env_(env),
      strategy_(strategy),
      options_(options),
      allocator_(*env.dataflow, *env.cloud, env.omega_target,
                 options.acquisition) {
  env_.validate();
  DDS_REQUIRE(options_.alternate_period >= 1,
              "alternate period must be at least one interval");
  DDS_REQUIRE(options_.resource_period >= 1,
              "resource period must be at least one interval");
  allocator_.setResilience(options_.resilience);
  allocator_.setSpotPreference(options_.spot_fraction, options_.spot_seed);
  allocator_.setObservability(env_.tracer, env_.metrics);
  if (options_.resilience.quarantineEnabled()) {
    guard_ = std::make_unique<StragglerGuard>(*env_.cloud, *env_.monitor,
                                              options_.resilience);
    guard_->setTracer(env_.tracer);
  }
}

std::string HeuristicScheduler::name() const {
  std::string n = toString(strategy_);
  if (!options_.adaptive) n += "-static";
  if (!options_.use_dynamism) n += "-nodyn";
  if (options_.predictive) n += "-predictive";
  return n;
}

Deployment HeuristicScheduler::deploy(double estimated_input_rate) {
  DDS_REQUIRE(estimated_input_rate >= 0.0,
              "estimated input rate must be non-negative");
  const Dataflow& df = *env_.dataflow;
  Deployment deployment(df);

  // Alternate-selection stage (Alg. 1 lines 2-11).
  if (options_.use_dynamism) {
    selectInitialAlternates(strategy_, df, deployment);
  } else {
    selectBestValueAlternates(df, deployment);
  }

  // Resource-allocation stage (Alg. 1 lines 12-27). Deployment plans with
  // rated performance and provisions for the full estimated demand
  // (target 1.0): the input rate is only an estimate, and a static run
  // has no second chance. The runtime phases later shed the surplus down
  // to the Omega-hat constraint.
  const CorePowerFn rated = ratedCorePowerFn(*env_.cloud);
  allocator_.ensureMinimumCores(0.0);
  allocator_.scaleOut(deployment, estimated_input_rate, rated, 0.0,
                      strategy_, /*target=*/1.0);
  if (strategy_ == Strategy::Global && options_.enable_repacking) {
    allocator_.repackPes(deployment, estimated_input_rate, rated, 0.0);
    allocator_.repackFreeVms(rated);
  }
  // VMs emptied by repacking were acquired this instant: releasing at t=0
  // is free under hour-rounded billing for either strategy.
  allocator_.releaseEmptyVms(ResourceAllocator::ReleasePolicy::Immediate,
                             0.0, env_.sim_config.interval_s);
  return deployment;
}

std::vector<MigrationEvent> HeuristicScheduler::adapt(
    const ObservedState& state, Deployment& deployment) {
  if (!options_.adaptive || state.interval == 0) return {};
  const bool alternate_ran =
      options_.use_dynamism &&
      state.interval % options_.alternate_period == 0;
  if (alternate_ran) {
    // Predictive runs score alternates against the whole forecast vector
    // when one is available; without a forecast (or with lookahead
    // disabled) they fall back to the reactive Alg. 2 phase.
    if (options_.predictive && options_.lookahead_alternates &&
        state.forecast != nullptr && !state.forecast->empty()) {
      lookaheadPhase(state, deployment);
    } else {
      alternatePhase(state, deployment);
    }
  }
  // Graceful degradation: the constraint is breached and replacement
  // capacity is still on order (provisioning, or acquisitions backing
  // off). Waiting for the alternate cadence would spend whole intervals
  // below Omega-hat, so run the selection phase off-cadence now — its
  // underprovisioned branch downgrades alternates, restoring throughput
  // with the capacity actually on hand.
  const double omega_t =
      state.last_interval != nullptr ? state.last_interval->omega : 1.0;
  if (!alternate_ran && options_.resilience.graceful_degradation &&
      options_.use_dynamism && omega_t < env_.omega_target &&
      capacityPending(state.now)) {
    alternatePhase(state, deployment);
    ++graceful_degradations_;
    if (env_.tracer.enabled()) {
      env_.tracer.emit(obs::SchedulerDecisionEvent{
          .t = state.now,
          .interval = state.interval,
          .phase = "alternate",
          .action = "graceful_degradation",
          .omega = omega_t,
          .omega_bar = state.average_omega,
          .theta = kNoTheta,
          .rejected = {}});
    }
    if (env_.metrics != nullptr) {
      env_.metrics->counter("sched.graceful_degradations").inc();
    }
  }
  if (state.interval % options_.resource_period == 0) {
    return resourcePhase(state, deployment);
  }
  return {};
}

SchedulerTelemetry HeuristicScheduler::telemetry() const {
  SchedulerTelemetry t;
  t.stragglers_quarantined =
      guard_ != nullptr ? guard_->quarantineCount() : 0;
  t.graceful_degradations = graceful_degradations_;
  t.acquisition_rejections = allocator_.acquisitionRejections();
  t.preemption_drains = preemption_drains_;
  return t;
}

bool HeuristicScheduler::capacityPending(SimTime now) const {
  if (allocator_.acquisitionBackoffActive(now)) return true;
  for (const VmInstance& vm : env_.cloud->instances()) {
    if (vm.isActive() && !vm.isReady(now)) return true;
  }
  return false;
}

CorePowerFn HeuristicScheduler::runtimePowerFn(SimTime now) const {
  CorePowerFn inner;
  if (env_.probes != nullptr && env_.probes->probeCount() > 0) {
    inner = [probes = env_.probes](VmId vm) {
      return probes->smoothedCorePower(vm);
    };
  } else {
    inner = observedCorePowerFn(*env_.monitor, now);
  }
  // A VM still provisioning observes zero power, but it is capacity on
  // order, not dead weight: planning it at zero would make every scale-out
  // buy yet more replacements for VMs that are about to come online. Plan
  // it at rated power until it is ready.
  return [inner = std::move(inner), cloud = env_.cloud, now](VmId vm) {
    const VmInstance& inst = cloud->instance(vm);
    if (!inst.isReady(now)) return inst.spec().core_speed;
    return inner(vm);
  };
}

std::vector<double> HeuristicScheduler::measuredArrivals(
    const ObservedState& state, const Deployment& deployment) const {
  const Dataflow& df = *env_.dataflow;
  const std::size_t n = df.peCount();
  if (state.last_interval == nullptr ||
      state.last_interval->pe_stats.size() != n) {
    return expectedArrivalRates(df, deployment, state.input_rate);
  }
  std::vector<double> arrivals(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Measured *data rates* (§4's monitoring), not queue-drain pressure:
    // provisioning against backlog drain would amplify every transient.
    arrivals[i] = state.last_interval->pe_stats[i].arrival_rate;
  }
  // The sources measure their input streams directly, so a rate change is
  // visible at the input PEs immediately; it reaches the local view of
  // downstream PEs only as it propagates, one interval at a time.
  for (const PeId in : df.inputs()) {
    arrivals[in.value()] = std::max(arrivals[in.value()], state.input_rate);
  }
  return arrivals;
}

void HeuristicScheduler::alternatePhase(const ObservedState& state,
                                        Deployment& deployment) {
  const Dataflow& df = *env_.dataflow;
  const double omega_t =
      state.last_interval != nullptr ? state.last_interval->omega : 1.0;
  const double omega_hat = env_.omega_target;
  const double epsilon = env_.epsilon;
  const bool underprovisioned = omega_t <= omega_hat;
  const bool overprovisioned = omega_t >= omega_hat + epsilon;
  if (!underprovisioned && !overprovisioned) return;  // inside the band

  const CorePowerFn power = runtimePowerFn(state.now);
  // The global strategy predicts each PE's load by propagating the
  // observed input rate through the graph; the local strategy only knows
  // what each PE actually saw last interval.
  const auto arrivals = (strategy_ == Strategy::Local)
                            ? measuredArrivals(state, deployment)
                            : expectedArrivalRates(df, deployment,
                                                   state.input_rate);
  const auto allocated = allocator_.allocatedPower(power);
  double available = freeCorePower(*env_.cloud, power);

  // Feasible-set scratch and the downstream-cost prefix, hoisted out of
  // the per-PE loop. The prefix depends on the active alternates, which
  // this very loop mutates, so it is recomputed lazily after a switch —
  // downstreamCosts() is a pure function of the deployment, so each PE
  // still sees exactly the vector the per-PE recomputation produced.
  struct Ranked {
    AlternateId id;
    double ratio;
    double needed_power;
  };
  std::vector<Ranked> feasible;
  std::vector<double> succ_costs;
  bool succ_costs_valid = strategy_ != Strategy::Global;

  for (const auto& element : df.pes()) {
    const PeId pe = element.id();
    const AlternateId active_id = deployment.activeAlternate(pe);
    const Alternate& active = element.alternate(active_id);

    // Feasible set (Alg. 2 lines 4-15): when behind on throughput only
    // alternates at most as expensive as the active one are candidates
    // (they raise throughput); when comfortably ahead, only alternates at
    // least as expensive (they can raise value).
    feasible.clear();
    if (!succ_costs_valid) {
      succ_costs = downstreamCosts(df, deployment);
      succ_costs_valid = true;
    }
    for (std::size_t j = 0; j < element.alternateCount(); ++j) {
      const AlternateId alt_id(static_cast<AlternateId::value_type>(j));
      if (alt_id == active_id) continue;
      const Alternate& alt = element.alternate(alt_id);
      const bool candidate =
          underprovisioned ? alt.cost_core_sec <= active.cost_core_sec
                           : alt.cost_core_sec >= active.cost_core_sec;
      if (!candidate) continue;
      const double cost =
          alternateCost(strategy_, df, pe, alt, succ_costs);
      feasible.push_back({alt_id, element.relativeValue(alt_id) / cost,
                          arrivals[pe.value()] * alt.cost_core_sec});
    }
    std::sort(feasible.begin(), feasible.end(),
              [](const Ranked& a, const Ranked& b) {
                return a.ratio > b.ratio;
              });

    // Switch to the best-ranked feasible alternate (Alg. 2 lines 16-22).
    // Downgrades (the underprovisioned branch) always go through: a
    // cheaper-per-message alternate raises throughput on the *current*
    // allocation even before the resource phase reacts. Upgrades must fit
    // in what the PE already holds plus the free capacity.
    for (const Ranked& r : feasible) {
      const double extra = r.needed_power - allocated[pe.value()];
      if (underprovisioned || extra <= available + kEps) {
        if (env_.tracer.enabled()) {
          env_.tracer.emit(obs::AlternateSwitchEvent{
              .t = state.now,
              .pe = pe.value(),
              .from = active_id.value(),
              .to = r.id.value(),
              .gamma_from = element.relativeValue(active_id),
              .gamma_to = element.relativeValue(r.id)});
        }
        if (env_.metrics != nullptr) {
          env_.metrics->counter("sched.alternate_switches").inc();
        }
        deployment.setActiveAlternate(pe, r.id);
        if (strategy_ == Strategy::Global) succ_costs_valid = false;
        available -= std::max(std::min(extra, available), 0.0);
        break;
      }
    }
  }
}

void HeuristicScheduler::lookaheadPhase(const ObservedState& state,
                                        Deployment& deployment) {
  if (lookahead_ == nullptr) {
    lookahead_ = std::make_unique<LookaheadPlanner>(
        *env_.dataflow, *env_.cloud, env_.plan_structure, env_.omega_target,
        options_.lookahead_sigma, options_.lookahead_horizon_s);
  }
  const LookaheadPlanner::Result result =
      lookahead_->plan(deployment, *state.forecast);
  for (const auto& element : env_.dataflow->pes()) {
    const PeId pe = element.id();
    const AlternateId from = deployment.activeAlternate(pe);
    const AlternateId to = result.alternates[pe.value()];
    if (to == from) continue;
    if (env_.tracer.enabled()) {
      env_.tracer.emit(obs::AlternateSwitchEvent{
          .t = state.now,
          .pe = pe.value(),
          .from = from.value(),
          .to = to.value(),
          .gamma_from = element.relativeValue(from),
          .gamma_to = element.relativeValue(to)});
    }
    if (env_.metrics != nullptr) {
      env_.metrics->counter("sched.alternate_switches").inc();
    }
    deployment.setActiveAlternate(pe, to);
  }
  if (env_.tracer.enabled()) {
    env_.tracer.emit(obs::SchedulerDecisionEvent{
        .t = state.now,
        .interval = state.interval,
        .phase = "alternate",
        .action = "lookahead",
        .omega = state.last_interval != nullptr ? state.last_interval->omega
                                                : 1.0,
        .omega_bar = state.average_omega,
        .theta = result.mean_theta,
        .rejected = {}});
  }
  if (env_.metrics != nullptr) {
    env_.metrics->counter("sched.lookahead_plans").inc();
  }
}

int HeuristicScheduler::preacquireForForecast(const ObservedState& state,
                                              const Deployment& deployment,
                                              const CorePowerFn& power,
                                              bool& peak_pending) {
  peak_pending = false;
  if (state.forecast == nullptr || state.forecast->empty()) return 0;
  const std::vector<double>& fc = *state.forecast;
  const double interval_s = env_.sim_config.interval_s;
  // Scan as far ahead as a VM ordered *now* needs to come online, plus
  // the cadence gap until the next resource phase gets its own chance.
  const auto lead_intervals = static_cast<std::size_t>(
      interval_s > 0.0 ? std::ceil(options_.preacquire_lead_s / interval_s)
                       : 0.0);
  const std::size_t window = std::min(
      fc.size(),
      lead_intervals + static_cast<std::size_t>(options_.resource_period));
  std::size_t peak_k = 0;
  double peak = fc[0];
  for (std::size_t k = 1; k < window; ++k) {
    if (fc[k] > peak) {
      peak = fc[k];
      peak_k = k;
    }
  }
  if (peak <= state.input_rate * (1.0 + options_.preacquire_margin)) {
    return 0;
  }
  peak_pending = true;

  // Provision for the peak now; the allocator self-guards when current
  // capacity already covers it, so a repeated forecast costs nothing.
  const std::size_t before = env_.cloud->instanceCount();
  allocator_.ensureMinimumCores(state.now);
  allocator_.scaleOut(deployment, peak, power, state.now, strategy_);
  int vms = 0;
  SimTime ready_by = state.now;
  for (const VmInstance& vm : env_.cloud->instances()) {
    if (vm.id().value() < before || !vm.isActive()) continue;
    ++vms;
    ready_by = std::max(ready_by, vm.readyTime());
  }
  if (vms > 0) {
    if (env_.tracer.enabled()) {
      env_.tracer.emit(obs::PreAcquireEvent{
          .t = state.now,
          .interval = state.interval,
          .peak_interval =
              state.interval + static_cast<IntervalIndex>(peak_k),
          .peak_rate = peak,
          .lead_s = static_cast<double>(peak_k) * interval_s,
          .vms = vms,
          .ready_by = ready_by});
    }
    if (env_.metrics != nullptr) {
      env_.metrics->counter("sched.preacquired_vms")
          .inc(static_cast<std::uint64_t>(vms));
    }
  }
  return vms;
}

void HeuristicScheduler::quarantineStragglers(
    const ObservedState& state, const Deployment& deployment,
    std::vector<MigrationEvent>& migrations) {
  if (guard_ == nullptr) return;
  const auto quarantined = guard_->probe(state.now);
  if (quarantined.empty()) return;

  for (const VmId id : quarantined) {
    VmInstance& vm = env_.cloud->instance(id);
    // Evacuate. Unlike a crash, quarantine is graceful: each hosted PE's
    // share of buffered messages migrates over the network rather than
    // being lost.
    std::vector<PeId> owners;
    for (int c = 0; c < vm.coreCount(); ++c) {
      const auto owner = vm.coreOwner(c);
      if (owner.has_value() &&
          std::find(owners.begin(), owners.end(), *owner) == owners.end()) {
        owners.push_back(*owner);
      }
    }
    std::int64_t evacuated = 0;
    for (const PeId pe : owners) {
      const int on_vm = vm.coresOwnedBy(pe);
      const int total = totalCores(*env_.cloud, pe);
      vm.releaseAllCoresOf(pe);
      evacuated += on_vm;
      migrations.push_back(
          {pe, static_cast<double>(on_vm) / static_cast<double>(total)});
    }
    if (env_.tracer.enabled()) {
      env_.tracer.emit(obs::StragglerQuarantineEvent{
          .t = state.now,
          .vm = id.value(),
          .smoothed_ratio = guard_->smoothedRatio(id),
          .evacuated_cores = evacuated});
    }
    if (env_.metrics != nullptr) {
      env_.metrics->counter("sched.stragglers_quarantined").inc();
    }
    env_.cloud->release(id, state.now);
  }

  // Replace the evacuated capacity right away instead of waiting for the
  // omega average to sag: re-place any PE left without a core, then scale
  // back out to the constraint. (VMs the guard blacklisted are gone from
  // the active set, so the allocator cannot land cores back on them.)
  const CorePowerFn power = runtimePowerFn(state.now);
  allocator_.ensureMinimumCores(state.now);
  allocator_.scaleOut(deployment, state.input_rate, power, state.now,
                      strategy_);
}

void HeuristicScheduler::drainPreemptionNotices(
    const ObservedState& state, const Deployment& deployment,
    std::vector<MigrationEvent>& migrations) {
  CloudProvider& cloud = *env_.cloud;
  // Without a preemption model (or a zero warning window) there is
  // nothing actionable: the reclaim lands with no lead time.
  if (cloud.noticeWindow() <= 0.0) return;

  std::vector<VmId> doomed;
  for (const VmInstance& vm : cloud.instances()) {
    if (!vm.isActive() || !vm.spec().preemptible) continue;
    if (cloud.preemptionImminent(vm.id(), state.now)) {
      doomed.push_back(vm.id());
    }
  }
  if (doomed.empty()) return;

  for (const VmId id : doomed) {
    VmInstance& vm = cloud.instance(id);
    // Graceful drain: each hosted PE's share of buffered messages
    // migrates over the network instead of dying with the reclaim. The
    // voluntary release forfeits the partial-hour billing break a
    // provider-initiated preemption would have earned — paying cents to
    // keep the backlog is the whole point of the notice window.
    std::vector<PeId> owners;
    for (int c = 0; c < vm.coreCount(); ++c) {
      const auto owner = vm.coreOwner(c);
      if (owner.has_value() &&
          std::find(owners.begin(), owners.end(), *owner) == owners.end()) {
        owners.push_back(*owner);
      }
    }
    for (const PeId pe : owners) {
      const int on_vm = vm.coresOwnedBy(pe);
      const int total = totalCores(*env_.cloud, pe);
      vm.releaseAllCoresOf(pe);
      migrations.push_back(
          {pe, static_cast<double>(on_vm) / static_cast<double>(total)});
    }
    cloud.release(id, state.now);
    ++preemption_drains_;
    if (env_.tracer.enabled()) {
      env_.tracer.emit(obs::SchedulerDecisionEvent{
          .t = state.now,
          .interval = state.interval,
          .phase = "resource",
          .action = "preemption_drain",
          .omega = state.last_interval != nullptr
                       ? state.last_interval->omega
                       : 1.0,
          .omega_bar = state.average_omega,
          .theta = kNoTheta,
          .rejected = {}});
    }
    if (env_.metrics != nullptr) {
      env_.metrics->counter("sched.preemption_drains").inc();
    }
  }

  // Pre-acquire reliable replacement capacity: the VMs we just walked
  // away from were spot, so steering their replacements back to spot
  // would re-enter the same reclaim lottery mid-incident.
  allocator_.suppressSpot(true);
  const CorePowerFn power = runtimePowerFn(state.now);
  allocator_.ensureMinimumCores(state.now);
  allocator_.scaleOut(deployment, state.input_rate, power, state.now,
                      strategy_);
  allocator_.suppressSpot(false);
}

std::vector<MigrationEvent> HeuristicScheduler::resourcePhase(
    const ObservedState& state, Deployment& deployment) {
  const double omega_hat = env_.omega_target;
  const double epsilon = env_.epsilon;
  const double omega_bar = state.average_omega;
  const double omega_t =
      state.last_interval != nullptr ? state.last_interval->omega : 1.0;
  const CorePowerFn power = runtimePowerFn(state.now);

  std::vector<MigrationEvent> migrations;
  quarantineStragglers(state, deployment, migrations);
  drainPreemptionNotices(state, deployment, migrations);

  // Predictive pre-acquisition: order capacity against forecast peaks
  // inside the provisioning-delay lead window, before Omega sags. A
  // pending peak also vetoes scale-in below — shedding cores that the
  // forecast says will be needed again would pay the delay twice.
  bool forecast_peak_pending = false;
  int preacquired = 0;
  if (options_.predictive) {
    preacquired = preacquireForForecast(state, deployment, power,
                                        forecast_peak_pending);
  }

  // Local decisions are based on per-PE measurements only (one interval
  // stale for anything an upstream change is about to cause).
  std::vector<double> measured;
  const std::vector<double>* measured_ptr = nullptr;
  if (strategy_ == Strategy::Local) {
    measured = measuredArrivals(state, deployment);
    measured_ptr = &measured;
  }

  // Latency SLA (optional): a queue that would take longer than the SLA
  // to drain is a breach even while Omega looks healthy (draining clamps
  // the throughput ratio at 1). Size capacity to drain within the SLA.
  bool latency_breach = false;
  if (options_.max_queue_delay_s > 0.0 && state.last_interval != nullptr &&
      state.last_interval->pe_stats.size() == env_.dataflow->peCount()) {
    bool breach = false;
    std::vector<double> drain_demand(env_.dataflow->peCount(), 0.0);
    for (std::size_t i = 0; i < drain_demand.size(); ++i) {
      const auto& st = state.last_interval->pe_stats[i];
      drain_demand[i] =
          st.arrival_rate + st.backlog_msgs / options_.max_queue_delay_s;
      const double wait = st.capacity_rate > 0.0
                              ? st.backlog_msgs / st.capacity_rate
                              : (st.backlog_msgs > 0.0
                                     ? std::numeric_limits<double>::infinity()
                                     : 0.0);
      if (wait > options_.max_queue_delay_s) breach = true;
    }
    if (breach) {
      latency_breach = true;
      // Per-PE sizing is the right shape for queue draining regardless of
      // strategy — each backlog lives at one PE.
      allocator_.scaleOut(deployment, state.input_rate, power, state.now,
                          Strategy::Local, 1.0, &drain_demand);
    }
  }

  // §7.2: scale out when the average throughput so far trails the
  // constraint. The instantaneous check supplements it so a sudden rate or
  // performance drop is answered this interval, not after the long-run
  // average has decayed below the threshold.
  const char* action = latency_breach   ? "latency_scale_out"
                       : preacquired > 0 ? "preacquire"
                                         : "hold";
  if (omega_bar < omega_hat || omega_t < omega_hat - epsilon) {
    allocator_.scaleOut(deployment, state.input_rate, power, state.now,
                        strategy_, -1.0, measured_ptr);
    action = "scale_out";
    if (env_.metrics != nullptr) env_.metrics->counter("sched.scale_outs").inc();
  } else if (!latency_breach && omega_bar > omega_hat + epsilon &&
             omega_t > omega_hat + epsilon) {
    // (scale-in yields to an active latency breach: stripping the cores
    // that were just added to drain a queue would ping-pong forever)
    if (forecast_peak_pending) {
      // A forecast peak is due inside the lead window: hold the surplus
      // rather than shedding capacity the spike is about to need.
      action = "hold_forecast";
      if (env_.metrics != nullptr) {
        env_.metrics->counter("sched.forecast_holds").inc();
      }
    } else {
      // Over-provisioned: shed cores while the projection stays safely
      // above the constraint (half the tolerance kept as hysteresis).
      auto shed = allocator_.scaleIn(deployment, state.input_rate, power,
                                     strategy_, omega_hat + 0.5 * epsilon,
                                     measured_ptr, state.now);
      migrations.insert(migrations.end(), shed.begin(), shed.end());
      action = "scale_in";
      if (env_.metrics != nullptr) env_.metrics->counter("sched.scale_ins").inc();
    }
  }
  if (env_.tracer.enabled()) {
    env_.tracer.emit(obs::SchedulerDecisionEvent{.t = state.now,
                                                 .interval = state.interval,
                                                 .phase = "resource",
                                                 .action = action,
                                                 .omega = omega_t,
                                                 .omega_bar = omega_bar,
                                                 .theta = kNoTheta,
                                                 .rejected = {}});
  }

  // The local strategy acts on local knowledge and releases an empty VM as
  // soon as it sees one; the global strategy knows the hour is already
  // paid for and keeps the VM around for reuse until the hour lapses.
  const auto policy = options_.release_policy_override.value_or(
      strategy_ == Strategy::Local
          ? ResourceAllocator::ReleasePolicy::Immediate
          : ResourceAllocator::ReleasePolicy::AtHourBoundary);
  allocator_.releaseEmptyVms(policy, state.now, env_.sim_config.interval_s);
  return migrations;
}

}  // namespace dds
