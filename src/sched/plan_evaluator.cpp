#include "dds/sched/plan_evaluator.hpp"

#include <cmath>
#include <limits>

#include "dds/common/hash.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {

std::shared_ptr<const PlanStructure> PlanStructure::build(
    const Dataflow& df, const ResourceCatalog& catalog) {
  auto s = std::make_shared<PlanStructure>();
  s->n_pes = df.peCount();
  s->n_classes = catalog.size();
  const std::size_t n_pes = s->n_pes;
  const std::size_t n_classes = s->n_classes;

  // Flatten the per-(pe, alternate) model tables. The relative-value and
  // cost doubles are the exact ones the reference path reads through
  // ProcessingElement, so re-summing from these tables reproduces its
  // results bit for bit.
  s->alt_offset.resize(n_pes + 1, 0);
  s->alt_count.resize(n_pes, 0);
  for (std::size_t i = 0; i < n_pes; ++i) {
    const auto& pe = df.pe(PeId(static_cast<PeId::value_type>(i)));
    s->alt_count[i] = pe.alternateCount();
    s->alt_offset[i + 1] = s->alt_offset[i] + pe.alternateCount();
  }
  const std::size_t total_alts = s->alt_offset[n_pes];
  s->alt_selectivity.resize(total_alts);
  s->alt_cost_sec.resize(total_alts);
  s->alt_rel_value.resize(total_alts);
  for (std::size_t i = 0; i < n_pes; ++i) {
    const auto& pe = df.pe(PeId(static_cast<PeId::value_type>(i)));
    for (std::size_t j = 0; j < pe.alternateCount(); ++j) {
      const AlternateId a(static_cast<AlternateId::value_type>(j));
      s->alt_selectivity[s->alt_offset[i] + j] = pe.alternate(a).selectivity;
      s->alt_cost_sec[s->alt_offset[i] + j] = pe.alternate(a).cost_core_sec;
      s->alt_rel_value[s->alt_offset[i] + j] = pe.relativeValue(a);
    }
  }

  // Graph structure: topological order plus CSR predecessor/successor
  // lists in the Dataflow's own edge order (the arrival sum iterates
  // predecessors in exactly that order).
  s->topo.reserve(n_pes);
  s->topo_pos.resize(n_pes, 0);
  for (const PeId pe : df.topologicalOrder()) {
    s->topo_pos[pe.value()] = s->topo.size();
    s->topo.push_back(pe.value());
  }
  s->pred_offset.resize(n_pes + 1, 0);
  s->succ_offset.resize(n_pes + 1, 0);
  s->is_input.resize(n_pes, false);
  for (std::size_t i = 0; i < n_pes; ++i) {
    const PeId pe(static_cast<PeId::value_type>(i));
    s->pred_offset[i + 1] = s->pred_offset[i] + df.predecessors(pe).size();
    s->succ_offset[i + 1] = s->succ_offset[i] + df.successors(pe).size();
    s->is_input[i] = df.isInput(pe);
  }
  s->preds.resize(s->pred_offset[n_pes]);
  s->succs.resize(s->succ_offset[n_pes]);
  for (std::size_t i = 0; i < n_pes; ++i) {
    const PeId pe(static_cast<PeId::value_type>(i));
    std::size_t k = s->pred_offset[i];
    for (const PeId u : df.predecessors(pe)) s->preds[k++] = u.value();
    k = s->succ_offset[i];
    for (const PeId v : df.successors(pe)) s->succs[k++] = v.value();
  }

  s->class_cores.resize(n_classes);
  s->class_price.resize(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    const auto& cls = catalog.at(
        ResourceClassId(static_cast<ResourceClassId::value_type>(c)));
    s->class_cores[c] = cls.cores;
    s->class_price[c] = cls.price_per_hour;
  }
  return s;
}

PlanEvaluator::PlanEvaluator(const Dataflow& df,
                             const ResourceCatalog& catalog,
                             const PlanEvaluatorOptions& options)
    : PlanEvaluator(PlanStructure::build(df, catalog), df, catalog,
                    options) {}

PlanEvaluator::PlanEvaluator(std::shared_ptr<const PlanStructure> structure,
                             const Dataflow& df,
                             const ResourceCatalog& catalog,
                             const PlanEvaluatorOptions& options)
    : df_(&df),
      catalog_(&catalog),
      options_(options),
      n_pes_(df.peCount()),
      n_classes_(catalog.size()),
      s_(std::move(structure)),
      pack_scratch_(catalog) {
  DDS_REQUIRE(options.input_rate >= 0.0,
              "input rate must be non-negative");
  DDS_REQUIRE(options.omega_target > 0.0 && options.omega_target <= 1.0,
              "omega target out of range");
  DDS_REQUIRE(options.sigma >= 0.0, "sigma must be non-negative");
  DDS_REQUIRE(options.horizon_hours > 0.0, "horizon must be positive");
  DDS_REQUIRE(s_ != nullptr, "plan structure is null");
  DDS_REQUIRE(s_->n_pes == n_pes_ && s_->n_classes == n_classes_,
              "plan structure does not match dataflow/catalog");

  alternates_.assign(n_pes_, AlternateId(0));
  vm_counts_.assign(n_classes_, 0);
  arrival_.resize(n_pes_, 0.0);
  demand_.resize(n_pes_, 0.0);
  arrival_dirty_.assign(n_pes_, 0);
  alt_changed_.assign(n_pes_, 0);
  memo_.init(n_classes_ + n_pes_, options_.memo_capacity);
  key_.resize(n_classes_ + n_pes_, 0);

  reset(alternates_, vm_counts_);
}

void PlanEvaluator::recomputeArrival(std::size_t pe) {
  // Same expression and predecessor iteration order as
  // expectedArrivalRatesInto(): sum of arrival[u] * selectivity(u).
  double sum = 0.0;
  for (std::size_t k = s_->pred_offset[pe]; k < s_->pred_offset[pe + 1]; ++k) {
    const std::size_t u = s_->preds[k];
    sum += arrival_[u] * altSelectivity(u);
  }
  arrival_[pe] = sum;
}

void PlanEvaluator::recomputeDemand(std::size_t pe) {
  // Two-step multiply, matching requiredCorePower() followed by the
  // planners' in-place `d *= omega_target` scaling.
  demand_[pe] = arrival_[pe] * altCostSec(pe);
  demand_[pe] *= options_.omega_target;
}

void PlanEvaluator::markSuccessorsDirty(std::size_t pe) {
  for (std::size_t k = s_->succ_offset[pe]; k < s_->succ_offset[pe + 1]; ++k) {
    arrival_dirty_[s_->succs[k]] = epoch_;
  }
}

void PlanEvaluator::propagate(std::size_t start_pos) {
  // Only nodes downstream of a change are recomputed; they are visited in
  // topological order, so each recomputation sees final predecessor
  // values — exactly the full recompute restricted to the dirty cone.
  for (std::size_t pos = start_pos; pos < n_pes_; ++pos) {
    const std::size_t v = s_->topo[pos];
    const bool arrival_dirty = arrival_dirty_[v] == epoch_;
    if (arrival_dirty) {
      recomputeArrival(v);
      markSuccessorsDirty(v);
    }
    if (arrival_dirty || alt_changed_[v] == epoch_) {
      recomputeDemand(v);
    }
  }
}

void PlanEvaluator::reset(const std::vector<AlternateId>& alternates,
                          const std::vector<int>& vm_counts) {
  DDS_REQUIRE(alternates.size() == n_pes_,
              "alternate vector does not match dataflow");
  DDS_REQUIRE(vm_counts.size() == n_classes_,
              "vm_counts does not match catalog");
  if (&alternates != &alternates_) alternates_ = alternates;
  if (&vm_counts != &vm_counts_) vm_counts_ = vm_counts;
  for (std::size_t i = 0; i < n_pes_; ++i) {
    DDS_REQUIRE(alternates_[i].value() < s_->alt_count[i],
                "alternate id out of range for PE");
  }
  total_cores_ = 0;
  for (std::size_t c = 0; c < n_classes_; ++c) {
    DDS_REQUIRE(vm_counts_[c] >= 0, "VM counts must be non-negative");
    total_cores_ += vm_counts_[c] * s_->class_cores[c];
  }
  for (const std::size_t v : s_->topo) {
    if (s_->is_input[v]) {
      arrival_[v] = options_.input_rate;
    } else {
      recomputeArrival(v);
    }
  }
  for (std::size_t i = 0; i < n_pes_; ++i) recomputeDemand(i);
}

void PlanEvaluator::setAlternate(std::size_t pe, AlternateId alt) {
  DDS_REQUIRE(pe < n_pes_, "PE index out of range");
  DDS_REQUIRE(alt.value() < s_->alt_count[pe],
              "alternate id out of range for PE");
  if (alternates_[pe] == alt) return;
  alternates_[pe] = alt;
  recomputeDemand(pe);  // own arrival is unaffected by own alternate
  ++epoch_;
  markSuccessorsDirty(pe);
  propagate(s_->topo_pos[pe] + 1);
}

void PlanEvaluator::setAlternates(const std::vector<AlternateId>& alternates) {
  DDS_REQUIRE(alternates.size() == n_pes_,
              "alternate vector does not match dataflow");
  ++epoch_;
  std::size_t first_pos = n_pes_;
  for (std::size_t i = 0; i < n_pes_; ++i) {
    if (alternates_[i] == alternates[i]) continue;
    DDS_REQUIRE(alternates[i].value() < s_->alt_count[i],
                "alternate id out of range for PE");
    alternates_[i] = alternates[i];
    alt_changed_[i] = epoch_;
    markSuccessorsDirty(i);
    first_pos = std::min(first_pos, s_->topo_pos[i]);
  }
  if (first_pos == n_pes_) return;  // nothing changed
  propagate(first_pos);
}

void PlanEvaluator::setVmCount(std::size_t cls, int count) {
  DDS_REQUIRE(cls < n_classes_, "resource class out of range");
  DDS_REQUIRE(count >= 0, "VM counts must be non-negative");
  total_cores_ += (count - vm_counts_[cls]) * s_->class_cores[cls];
  vm_counts_[cls] = count;
}

double PlanEvaluator::gamma() const {
  // Canonical order: PEs by index, exactly as deploymentGamma().
  double gamma = 0.0;
  for (std::size_t i = 0; i < n_pes_; ++i) {
    gamma += s_->alt_rel_value[s_->alt_offset[i] + alternates_[i].value()];
  }
  return gamma / static_cast<double>(n_pes_);
}

double PlanEvaluator::planCost() const {
  // Canonical order and multiply association of multisetCost():
  // (count * price) * horizon, classes by index.
  double cost = 0.0;
  for (std::size_t c = 0; c < n_classes_; ++c) {
    cost += vm_counts_[c] * s_->class_price[c] * options_.horizon_hours;
  }
  return cost;
}

bool PlanEvaluator::packWithMemo(const std::vector<int>& vm_counts) {
  for (std::size_t c = 0; c < n_classes_; ++c) {
    key_[c] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(vm_counts[c]));
  }
  for (std::size_t i = 0; i < n_pes_; ++i) {
    key_[n_classes_ + i] = canonicalBits(demand_[i]);
  }
  if (const auto cached = memo_.lookup(key_.data())) return *cached;
  const bool ok =
      static_planning::packingFeasible(*catalog_, vm_counts, demand_,
                                       pack_scratch_);
  memo_.insert(key_.data(), ok);
  return ok;
}

bool PlanEvaluator::feasible() {
  if (!enoughCores(total_cores_)) return false;
  return packWithMemo(vm_counts_);
}

bool PlanEvaluator::feasibleFor(const std::vector<int>& vm_counts) {
  DDS_REQUIRE(vm_counts.size() == n_classes_,
              "vm_counts does not match catalog");
  int total_cores = 0;
  for (std::size_t c = 0; c < n_classes_; ++c) {
    total_cores += vm_counts[c] * s_->class_cores[c];
  }
  if (!enoughCores(total_cores)) return false;
  return packWithMemo(vm_counts);
}

double PlanEvaluator::theta() {
  if (!feasible()) return -std::numeric_limits<double>::infinity();
  return gamma() - options_.sigma * planCost();
}

double referencePlanTheta(const Dataflow& df, const ResourceCatalog& catalog,
                          const std::vector<AlternateId>& alternates,
                          const std::vector<int>& vm_counts,
                          double input_rate, double omega_target,
                          double sigma, double horizon_hours,
                          Deployment& dep_out,
                          static_planning::Assignment* assignment_out) {
  const std::size_t n_pes = df.peCount();
  DDS_REQUIRE(alternates.size() == n_pes,
              "alternate vector does not match dataflow");
  for (std::size_t i = 0; i < n_pes; ++i) {
    dep_out.setActiveAlternate(PeId(static_cast<PeId::value_type>(i)),
                               alternates[i]);
  }
  auto demand = requiredCorePower(df, dep_out, input_rate);
  for (double& d : demand) d *= omega_target;
  auto assignment = static_planning::tryAssign(catalog, vm_counts, demand);
  if (!assignment.has_value()) {
    return -std::numeric_limits<double>::infinity();
  }
  if (assignment_out != nullptr) *assignment_out = std::move(*assignment);
  const double cost =
      static_planning::multisetCost(catalog, vm_counts, horizon_hours);
  return static_planning::deploymentGamma(df, dep_out) - sigma * cost;
}

}  // namespace dds
