#include "dds/sched/annealing_planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "dds/common/rng.hpp"
#include "dds/sched/static_planning.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

/// One candidate plan: alternates plus VM multiset.
struct Plan {
  std::vector<AlternateId> alternates;
  std::vector<int> vm_counts;
};

/// Compact human label of one candidate plan for decision events.
std::string planLabel(const Plan& plan) {
  std::ostringstream os;
  os << "alts=[";
  for (std::size_t i = 0; i < plan.alternates.size(); ++i) {
    os << (i ? "," : "") << plan.alternates[i].value();
  }
  os << "] vms=[";
  for (std::size_t i = 0; i < plan.vm_counts.size(); ++i) {
    os << (i ? "," : "") << plan.vm_counts[i];
  }
  os << "]";
  return os.str();
}

}  // namespace

AnnealingScheduler::AnnealingScheduler(SchedulerEnv env, double sigma,
                                       SimTime horizon_s,
                                       AnnealingOptions options)
    : env_(env), sigma_(sigma), horizon_s_(horizon_s), options_(options) {
  env_.validate();
  DDS_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  DDS_REQUIRE(horizon_s > 0.0, "horizon must be positive");
  options_.validate();
}

Deployment AnnealingScheduler::deploy(double estimated_input_rate) {
  DDS_REQUIRE(estimated_input_rate >= 0.0,
              "estimated input rate must be non-negative");
  const Dataflow& df = *env_.dataflow;
  const ResourceCatalog& catalog = env_.cloud->catalog();
  const std::size_t n_pes = df.peCount();
  const std::size_t n_classes = catalog.size();
  const double horizon_hours = std::ceil(horizon_s_ / kSecondsPerHour);
  Rng rng(options_.seed);

  // Demand (constraint-scaled) and greedy feasibility for a plan; returns
  // Theta, or -inf when the multiset cannot host the demand.
  auto evaluate = [&](const Plan& plan, Deployment& dep_out,
                      static_planning::Assignment* assignment_out) {
    for (std::size_t i = 0; i < n_pes; ++i) {
      dep_out.setActiveAlternate(PeId(static_cast<PeId::value_type>(i)),
                                 plan.alternates[i]);
    }
    auto demand = requiredCorePower(df, dep_out, estimated_input_rate);
    for (double& d : demand) d *= env_.omega_target;
    auto assignment =
        static_planning::tryAssign(catalog, plan.vm_counts, demand);
    if (!assignment.has_value()) {
      return -std::numeric_limits<double>::infinity();
    }
    if (assignment_out != nullptr) *assignment_out = std::move(*assignment);
    const double cost = static_planning::multisetCost(
        catalog, plan.vm_counts, horizon_hours);
    return static_planning::deploymentGamma(df, dep_out) - sigma_ * cost;
  };

  // Seed plan: cheapest-per-value alternates are unknown yet, so start
  // from alternate 0 everywhere and enough largest-class VMs to host the
  // whole demand (always feasible).
  Plan current;
  current.alternates.assign(n_pes, AlternateId(0));
  current.vm_counts.assign(n_classes, 0);
  {
    Deployment probe(df);
    auto demand = requiredCorePower(df, probe, estimated_input_rate);
    double total = 0.0;
    for (double& d : demand) {
      d *= env_.omega_target;
      total += d;
    }
    const ResourceClassId largest = catalog.largest();
    const auto need = static_cast<int>(
        std::ceil(total / catalog.at(largest).totalPower()));
    current.vm_counts[largest.value()] =
        std::max(need, static_cast<int>((n_pes + 3) / 4)) + 1;
  }

  Deployment scratch(df);
  double current_theta = evaluate(current, scratch, nullptr);
  DDS_ENSURE(std::isfinite(current_theta),
             "annealing seed plan must be feasible");

  Plan best = current;
  double best_theta = current_theta;
  double temperature = options_.initial_temperature;
  // Superseded incumbents become the decision event's rejected
  // candidates; collected only when a tracer is attached.
  std::vector<obs::RejectedPlan> superseded;

  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    Plan candidate = current;
    // Move: 50% flip an alternate (if any PE has >1), 50% nudge a VM count.
    const bool flip_alternate = rng.chance(0.5);
    if (flip_alternate) {
      const auto pe = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(n_pes) - 1));
      const auto n_alts = df.pe(PeId(static_cast<PeId::value_type>(pe)))
                              .alternateCount();
      if (n_alts > 1) {
        auto next = candidate.alternates[pe].value();
        next = (next + 1 +
                static_cast<AlternateId::value_type>(rng.uniformInt(
                    0, static_cast<std::int64_t>(n_alts) - 2))) %
               static_cast<AlternateId::value_type>(n_alts);
        candidate.alternates[pe] = AlternateId(next);
      }
    } else {
      const auto cls = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(n_classes) - 1));
      const int delta = rng.chance(0.5) ? 1 : -1;
      candidate.vm_counts[cls] =
          std::max(0, candidate.vm_counts[cls] + delta);
    }

    const double candidate_theta = evaluate(candidate, scratch, nullptr);
    const double delta_theta = candidate_theta - current_theta;
    const bool accept =
        std::isfinite(candidate_theta) &&
        (delta_theta >= 0.0 ||
         rng.uniform(0.0, 1.0) < std::exp(delta_theta / temperature));
    if (accept) {
      current = std::move(candidate);
      current_theta = candidate_theta;
      if (current_theta > best_theta) {
        if (env_.tracer.enabled()) {
          superseded.push_back({planLabel(best), best_theta});
        }
        best = current;
        best_theta = current_theta;
      }
    }
    temperature *= options_.cooling;
  }

  Deployment deployment(df);
  static_planning::Assignment assignment;
  best_theta_ = evaluate(best, deployment, &assignment);
  DDS_ENSURE(std::isfinite(best_theta_), "best plan must stay feasible");
  if (env_.tracer.enabled()) {
    // Keep the last few superseded incumbents (best theta first).
    std::reverse(superseded.begin(), superseded.end());
    if (superseded.size() > 3) superseded.resize(3);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    env_.tracer.emit(
        obs::SchedulerDecisionEvent{.t = 0.0,
                                    .interval = 0,
                                    .phase = "deploy",
                                    .action = "annealing",
                                    .omega = nan,
                                    .omega_bar = nan,
                                    .theta = best_theta_,
                                    .rejected = std::move(superseded)});
  }
  if (env_.metrics != nullptr) {
    env_.metrics->counter("sched.plans_examined")
        .inc(static_cast<std::uint64_t>(options_.iterations));
  }
  static_planning::materialize(*env_.cloud, best.vm_counts, assignment);
  return deployment;
}

}  // namespace dds
