#include "dds/sched/annealing_planner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "dds/common/rng.hpp"
#include "dds/sched/plan_evaluator.hpp"
#include "dds/sched/static_planning.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

/// One candidate plan: alternates plus VM multiset.
struct Plan {
  std::vector<AlternateId> alternates;
  std::vector<int> vm_counts;
};

/// Compact human label of one candidate plan for decision events.
std::string planLabel(const Plan& plan) {
  std::ostringstream os;
  os << "alts=[";
  for (std::size_t i = 0; i < plan.alternates.size(); ++i) {
    os << (i ? "," : "") << plan.alternates[i].value();
  }
  os << "] vms=[";
  for (std::size_t i = 0; i < plan.vm_counts.size(); ++i) {
    os << (i ? "," : "") << plan.vm_counts[i];
  }
  os << "]";
  return os.str();
}

}  // namespace

AnnealingScheduler::AnnealingScheduler(SchedulerEnv env, double sigma,
                                       SimTime horizon_s,
                                       AnnealingOptions options)
    : env_(env), sigma_(sigma), horizon_s_(horizon_s), options_(options) {
  env_.validate();
  DDS_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  DDS_REQUIRE(horizon_s > 0.0, "horizon must be positive");
  options_.validate();
}

Deployment AnnealingScheduler::deploy(double estimated_input_rate) {
  DDS_REQUIRE(estimated_input_rate >= 0.0,
              "estimated input rate must be non-negative");
  const Dataflow& df = *env_.dataflow;
  const ResourceCatalog& catalog = env_.cloud->catalog();
  const std::size_t n_pes = df.peCount();
  const std::size_t n_classes = catalog.size();
  const double horizon_hours = std::ceil(horizon_s_ / kSecondsPerHour);
  Rng rng(options_.seed);

  const bool incremental = options_.incremental_evaluation;
  PlanEvaluatorOptions eval_options;
  eval_options.input_rate = estimated_input_rate;
  eval_options.omega_target = env_.omega_target;
  eval_options.sigma = sigma_;
  eval_options.horizon_hours = horizon_hours;
  eval_options.memo_capacity = incremental ? options_.memo_capacity : 0;
  PlanEvaluator eval(env_.plan_structure != nullptr
                         ? env_.plan_structure
                         : PlanStructure::build(df, catalog),
                     df, catalog, eval_options);

  // Reference path (incremental_evaluation == false): the from-scratch
  // evaluation this planner ran before the evaluator existed. Both paths
  // score every candidate identically, bit for bit.
  Deployment scratch(df);
  auto evaluateFull = [&](const Plan& plan) {
    return referencePlanTheta(df, catalog, plan.alternates, plan.vm_counts,
                              estimated_input_rate, env_.omega_target,
                              sigma_, horizon_hours, scratch, nullptr);
  };

  // Seed plan: cheapest-per-value alternates are unknown yet, so start
  // from alternate 0 everywhere and enough largest-class VMs to host the
  // whole demand (always feasible).
  Plan current;
  current.alternates.assign(n_pes, AlternateId(0));
  current.vm_counts.assign(n_classes, 0);
  const ResourceClassId largest = catalog.largest();
  {
    Deployment probe(df);
    auto demand = requiredCorePower(df, probe, estimated_input_rate);
    double total = 0.0;
    for (double& d : demand) {
      d *= env_.omega_target;
      total += d;
    }
    const auto need = static_cast<int>(
        std::ceil(total / catalog.at(largest).totalPower()));
    current.vm_counts[largest.value()] =
        std::max(need, static_cast<int>((n_pes + 3) / 4)) + 1;
  }

  const auto search_start = std::chrono::steady_clock::now();
  if (incremental) eval.reset(current.alternates, current.vm_counts);
  double current_theta =
      incremental ? eval.theta() : evaluateFull(current);
  // The aggregate-power sizing above ignores core granularity: greedy
  // packing strands up to one core-equivalent per PE, which on wide
  // graphs leaves the seed short. Top up until it packs.
  for (std::size_t extra = 0;
       !std::isfinite(current_theta) && extra < n_pes; ++extra) {
    ++current.vm_counts[largest.value()];
    if (incremental) {
      eval.setVmCount(largest.value(), current.vm_counts[largest.value()]);
      current_theta = eval.theta();
    } else {
      current_theta = evaluateFull(current);
    }
  }
  DDS_ENSURE(std::isfinite(current_theta),
             "annealing seed plan must be feasible");

  Plan best = current;
  double best_theta = current_theta;
  double temperature = options_.initial_temperature;
  // Superseded incumbents become the decision event's rejected
  // candidates; collected only when a tracer is attached.
  std::vector<obs::RejectedPlan> superseded;
  // Reference-path candidate buffers; assignments below never reallocate
  // (the sizes are fixed), keeping the loop allocation-free in both modes.
  Plan candidate = current;

  enum class MoveKind { None, Alternate, VmCount };

  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    // Move: 50% flip an alternate (if any PE has >1), 50% nudge a VM
    // count. The move is described first and applied second so the
    // incremental path can undo a rejection in place; the RNG is consumed
    // in exactly the pre-evaluator order.
    MoveKind kind = MoveKind::None;
    std::size_t move_pe = 0;
    AlternateId alt_old(0);
    AlternateId alt_new(0);
    std::size_t move_cls = 0;
    int count_old = 0;
    int count_new = 0;

    const bool flip_alternate = rng.chance(0.5);
    if (flip_alternate) {
      const auto pe = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(n_pes) - 1));
      const auto n_alts = df.pe(PeId(static_cast<PeId::value_type>(pe)))
                              .alternateCount();
      if (n_alts > 1) {
        auto next = current.alternates[pe].value();
        next = (next + 1 +
                static_cast<AlternateId::value_type>(rng.uniformInt(
                    0, static_cast<std::int64_t>(n_alts) - 2))) %
               static_cast<AlternateId::value_type>(n_alts);
        kind = MoveKind::Alternate;
        move_pe = pe;
        alt_old = current.alternates[pe];
        alt_new = AlternateId(next);
      }
    } else {
      const auto cls = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(n_classes) - 1));
      const int delta = rng.chance(0.5) ? 1 : -1;
      kind = MoveKind::VmCount;
      move_cls = cls;
      count_old = current.vm_counts[cls];
      count_new = std::max(0, count_old + delta);
    }

    double candidate_theta;
    if (incremental) {
      if (kind == MoveKind::Alternate) {
        eval.setAlternate(move_pe, alt_new);
      } else if (kind == MoveKind::VmCount) {
        eval.setVmCount(move_cls, count_new);
      }
      candidate_theta = eval.theta();
    } else {
      candidate.alternates = current.alternates;
      candidate.vm_counts = current.vm_counts;
      if (kind == MoveKind::Alternate) {
        candidate.alternates[move_pe] = alt_new;
      } else if (kind == MoveKind::VmCount) {
        candidate.vm_counts[move_cls] = count_new;
      }
      candidate_theta = evaluateFull(candidate);
    }

    const double delta_theta = candidate_theta - current_theta;
    const bool accept =
        std::isfinite(candidate_theta) &&
        (delta_theta >= 0.0 ||
         rng.uniform(0.0, 1.0) < std::exp(delta_theta / temperature));
    if (accept) {
      if (kind == MoveKind::Alternate) {
        current.alternates[move_pe] = alt_new;
      } else if (kind == MoveKind::VmCount) {
        current.vm_counts[move_cls] = count_new;
      }
      current_theta = candidate_theta;
      if (current_theta > best_theta) {
        if (env_.tracer.enabled()) {
          superseded.push_back({planLabel(best), best_theta});
        }
        best.alternates = current.alternates;
        best.vm_counts = current.vm_counts;
        best_theta = current_theta;
      }
    } else if (incremental) {
      // Rejected: restore the evaluator. The undo re-propagates the same
      // downstream cone from unchanged inputs, which restores every
      // arrival and demand double exactly.
      if (kind == MoveKind::Alternate) {
        eval.setAlternate(move_pe, alt_old);
      } else if (kind == MoveKind::VmCount) {
        eval.setVmCount(move_cls, count_old);
      }
    }
    temperature *= options_.cooling;
  }
  const std::chrono::duration<double> search_elapsed =
      std::chrono::steady_clock::now() - search_start;

  // Final scoring always goes through the reference path: it doubles as
  // an exact cross-check of the incremental evaluator (the ENSURE below)
  // and produces the greedy assignment to materialize.
  Deployment deployment(df);
  static_planning::Assignment assignment;
  best_theta_ = referencePlanTheta(df, catalog, best.alternates,
                                   best.vm_counts, estimated_input_rate,
                                   env_.omega_target, sigma_, horizon_hours,
                                   deployment, &assignment);
  DDS_ENSURE(std::isfinite(best_theta_), "best plan must stay feasible");
  if (env_.tracer.enabled()) {
    // Keep the last few superseded incumbents (best theta first).
    std::reverse(superseded.begin(), superseded.end());
    if (superseded.size() > 3) superseded.resize(3);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    env_.tracer.emit(
        obs::SchedulerDecisionEvent{.t = 0.0,
                                    .interval = 0,
                                    .phase = "deploy",
                                    .action = "annealing",
                                    .omega = nan,
                                    .omega_bar = nan,
                                    .theta = best_theta_,
                                    .rejected = std::move(superseded)});
  }
  if (env_.metrics != nullptr) {
    env_.metrics->counter("sched.plans_examined")
        .inc(static_cast<std::uint64_t>(options_.iterations));
    env_.metrics->counter("sched.evaluator_memo_lookups")
        .inc(eval.memoLookups());
    env_.metrics->counter("sched.evaluator_memo_hits").inc(eval.memoHits());
    if (search_elapsed.count() > 0.0) {
      env_.metrics->gauge("sched.deploy_decisions_per_s")
          .set(static_cast<double>(options_.iterations) /
               search_elapsed.count());
    }
  }
  static_planning::materialize(*env_.cloud, best.vm_counts, assignment);
  return deployment;
}

}  // namespace dds
