#include "dds/sched/lookahead_planner.hpp"

#include <cmath>

#include "dds/common/time.hpp"

namespace dds {
namespace {

/// Score of an infeasible forecast step. Large against Theta's O(1)
/// magnitudes, so feasibility at more steps always dominates value/cost
/// trades, yet finite, so partially-feasible combinations still order.
constexpr double kInfeasiblePenalty = -1.0e3;

/// Moves must clear this margin to count as an improvement; ties keep
/// the incumbent (the lower alternate index, since moves scan in index
/// order from the current choice).
constexpr double kImprovementEps = 1e-12;

constexpr int kMaxPasses = 3;

}  // namespace

LookaheadPlanner::LookaheadPlanner(
    const Dataflow& df, const CloudProvider& cloud,
    std::shared_ptr<const PlanStructure> structure, double omega_target,
    double sigma, SimTime horizon_s)
    : df_(&df),
      cloud_(&cloud),
      structure_(structure != nullptr
                     ? std::move(structure)
                     : PlanStructure::build(df, cloud.catalog())),
      omega_target_(omega_target),
      sigma_(sigma),
      // Billing rounds up to whole hours (same expression as the
      // annealing planner's evaluator setup).
      horizon_hours_(std::ceil(horizon_s / kSecondsPerHour)) {}

double LookaheadPlanner::score(std::size_t steps) {
  double sum = 0.0;
  for (std::size_t k = 0; k < steps; ++k) {
    const double theta = evals_[k]->theta();
    sum += std::isfinite(theta) ? theta : kInfeasiblePenalty;
  }
  return sum / static_cast<double>(steps);
}

LookaheadPlanner::Result LookaheadPlanner::plan(
    const Deployment& deployment, const std::vector<double>& forecast) {
  DDS_REQUIRE(!forecast.empty(), "lookahead needs a non-empty forecast");
  const std::size_t n_pes = df_->peCount();
  const std::size_t steps = forecast.size();

  // The VM multiset on hand: every active instance counts, including
  // ones still provisioning — over the forecast horizon they are online.
  vm_counts_.assign(cloud_->catalog().classes().size(), 0);
  for (const VmInstance& vm : cloud_->instances()) {
    if (vm.isActive()) ++vm_counts_[vm.classId().value()];
  }

  current_.resize(n_pes);
  for (std::size_t pe = 0; pe < n_pes; ++pe) {
    current_[pe] = deployment.activeAlternate(
        PeId(static_cast<PeId::value_type>(pe)));
  }

  while (evals_.size() < steps) {
    PlanEvaluatorOptions opts;
    opts.omega_target = omega_target_;
    opts.sigma = sigma_;
    opts.horizon_hours = horizon_hours_;
    // Lookahead probes a handful of moves per call, not a 20k-iteration
    // anneal; a small memo keeps construction and reset cheap.
    opts.memo_capacity = 512;
    evals_.push_back(std::make_unique<PlanEvaluator>(structure_, *df_,
                                                     cloud_->catalog(),
                                                     opts));
  }
  for (std::size_t k = 0; k < steps; ++k) {
    evals_[k]->setInputRate(forecast[k]);
    evals_[k]->reset(current_, vm_counts_);
  }

  Result result;
  double best = score(steps);
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool improved = false;
    for (std::size_t pe = 0; pe < n_pes; ++pe) {
      const auto& element =
          df_->pe(PeId(static_cast<PeId::value_type>(pe)));
      for (std::size_t j = 0; j < element.alternateCount(); ++j) {
        const AlternateId alt(static_cast<AlternateId::value_type>(j));
        if (alt == current_[pe]) continue;
        for (std::size_t k = 0; k < steps; ++k) {
          evals_[k]->setAlternate(pe, alt);
        }
        const double candidate = score(steps);
        if (candidate > best + kImprovementEps) {
          best = candidate;
          current_[pe] = alt;
          improved = true;
        } else {
          for (std::size_t k = 0; k < steps; ++k) {
            evals_[k]->setAlternate(pe, current_[pe]);
          }
        }
      }
    }
    if (!improved) break;
  }

  result.alternates = current_;
  result.mean_theta = best;
  for (std::size_t pe = 0; pe < n_pes; ++pe) {
    if (current_[pe] !=
        deployment.activeAlternate(PeId(static_cast<PeId::value_type>(pe)))) {
      ++result.switches;
    }
  }
  return result;
}

}  // namespace dds
