// The scheduler registry: names, parsing and construction for every
// concrete policy. Adding a SchedulerKind is a change to this file (plus
// the enum) — engine, tools and bench code go through the factory.
#include <sstream>

#include "dds/sched/annealing_planner.hpp"
#include "dds/sched/brute_force.hpp"
#include "dds/sched/heuristic_scheduler.hpp"
#include "dds/sched/reactive_autoscaler.hpp"
#include "dds/sched/scheduler.hpp"

namespace dds {

std::string schedulerName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::LocalAdaptive:
      return "local";
    case SchedulerKind::GlobalAdaptive:
      return "global";
    case SchedulerKind::LocalStatic:
      return "local-static";
    case SchedulerKind::GlobalStatic:
      return "global-static";
    case SchedulerKind::LocalAdaptiveNoDyn:
      return "local-nodyn";
    case SchedulerKind::GlobalAdaptiveNoDyn:
      return "global-nodyn";
    case SchedulerKind::BruteForceStatic:
      return "brute-force-static";
    case SchedulerKind::ReactiveBaseline:
      return "reactive-autoscaler";
    case SchedulerKind::AnnealingStatic:
      return "annealing-static";
    case SchedulerKind::LocalPredictive:
      return "local-predictive";
    case SchedulerKind::GlobalPredictive:
      return "global-predictive";
  }
  return "unknown";
}

const std::vector<SchedulerKind>& allSchedulerKinds() {
  static const std::vector<SchedulerKind> kKinds = {
      SchedulerKind::LocalAdaptive,      SchedulerKind::GlobalAdaptive,
      SchedulerKind::LocalStatic,        SchedulerKind::GlobalStatic,
      SchedulerKind::LocalAdaptiveNoDyn, SchedulerKind::GlobalAdaptiveNoDyn,
      SchedulerKind::BruteForceStatic,   SchedulerKind::ReactiveBaseline,
      SchedulerKind::AnnealingStatic,    SchedulerKind::LocalPredictive,
      SchedulerKind::GlobalPredictive};
  return kKinds;
}

SchedulerKind parseSchedulerKind(const std::string& name) {
  for (const SchedulerKind kind : allSchedulerKinds()) {
    if (schedulerName(kind) == name) return kind;
  }
  throw PreconditionError("unknown scheduler name: '" + name + "'");
}

namespace {

HeuristicOptions heuristicOptionsOf(const SchedulerTuning& tuning) {
  HeuristicOptions opts;
  opts.alternate_period = tuning.alternate_period;
  opts.resource_period = tuning.resource_period;
  if (tuning.cheapest_class_acquisition) {
    opts.acquisition = ResourceAllocator::AcquisitionPolicy::CheapestPower;
  }
  opts.max_queue_delay_s = tuning.max_queue_delay_s;
  opts.resilience = tuning.resilience;
  opts.spot_fraction = tuning.spot_fraction;
  opts.spot_seed = tuning.seed;
  opts.predictive = tuning.predictive;
  opts.preacquire_margin = tuning.preacquire_margin;
  opts.preacquire_lead_s = tuning.preacquire_lead_s;
  opts.lookahead_alternates = tuning.lookahead_alternates;
  opts.lookahead_sigma = tuning.sigma;
  opts.lookahead_horizon_s = tuning.horizon_s;
  return opts;
}

}  // namespace

std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind,
                                         const SchedulerEnv& env,
                                         const SchedulerTuning& tuning) {
  HeuristicOptions opts = heuristicOptionsOf(tuning);
  switch (kind) {
    case SchedulerKind::LocalAdaptive:
      return std::make_unique<HeuristicScheduler>(env, Strategy::Local, opts);
    case SchedulerKind::GlobalAdaptive:
      return std::make_unique<HeuristicScheduler>(env, Strategy::Global,
                                                  opts);
    case SchedulerKind::LocalStatic:
      opts.adaptive = false;
      return std::make_unique<HeuristicScheduler>(env, Strategy::Local, opts);
    case SchedulerKind::GlobalStatic:
      opts.adaptive = false;
      return std::make_unique<HeuristicScheduler>(env, Strategy::Global,
                                                  opts);
    case SchedulerKind::LocalAdaptiveNoDyn:
      opts.use_dynamism = false;
      return std::make_unique<HeuristicScheduler>(env, Strategy::Local, opts);
    case SchedulerKind::GlobalAdaptiveNoDyn:
      opts.use_dynamism = false;
      return std::make_unique<HeuristicScheduler>(env, Strategy::Global,
                                                  opts);
    case SchedulerKind::BruteForceStatic:
      return std::make_unique<BruteForceScheduler>(env, tuning.sigma,
                                                   tuning.horizon_s);
    case SchedulerKind::ReactiveBaseline:
      return std::make_unique<ReactiveAutoscaler>(env);
    case SchedulerKind::AnnealingStatic: {
      AnnealingOptions ann;
      ann.seed = tuning.seed;
      return std::make_unique<AnnealingScheduler>(env, tuning.sigma,
                                                  tuning.horizon_s, ann);
    }
    case SchedulerKind::LocalPredictive:
      opts.predictive = true;
      return std::make_unique<HeuristicScheduler>(env, Strategy::Local, opts);
    case SchedulerKind::GlobalPredictive:
      opts.predictive = true;
      return std::make_unique<HeuristicScheduler>(env, Strategy::Global,
                                                  opts);
  }
  std::ostringstream os;
  os << "makeScheduler: unhandled SchedulerKind " << static_cast<int>(kind);
  throw PreconditionError(os.str());
}

}  // namespace dds
