#include "dds/sched/static_planning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace dds::static_planning {
namespace {
constexpr double kEps = 1e-9;
}

std::optional<Assignment> tryAssign(const ResourceCatalog& catalog,
                                    const std::vector<int>& vm_counts,
                                    const std::vector<double>& demand) {
  const std::size_t n_classes = catalog.size();
  DDS_REQUIRE(vm_counts.size() == n_classes,
              "vm_counts does not match catalog");
  std::vector<int> free_cores(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    free_cores[c] =
        vm_counts[c] *
        catalog.at(ResourceClassId(static_cast<ResourceClassId::value_type>(c)))
            .cores;
  }
  // Class order: fastest cores first.
  std::vector<std::size_t> class_order(n_classes);
  std::iota(class_order.begin(), class_order.end(), 0u);
  std::sort(class_order.begin(), class_order.end(),
            [&catalog](std::size_t a, std::size_t b) {
              return catalog
                         .at(ResourceClassId(
                             static_cast<ResourceClassId::value_type>(a)))
                         .core_speed >
                     catalog
                         .at(ResourceClassId(
                             static_cast<ResourceClassId::value_type>(b)))
                         .core_speed;
            });

  std::vector<std::size_t> pe_order(demand.size());
  std::iota(pe_order.begin(), pe_order.end(), 0u);
  std::sort(pe_order.begin(), pe_order.end(),
            [&demand](std::size_t a, std::size_t b) {
              return demand[a] > demand[b];
            });

  Assignment assignment(demand.size(), std::vector<int>(n_classes, 0));
  for (const std::size_t pe : pe_order) {
    double covered = 0.0;
    int cores_taken = 0;
    for (const std::size_t c : class_order) {
      const double speed =
          catalog
              .at(ResourceClassId(static_cast<ResourceClassId::value_type>(c)))
              .core_speed;
      while (free_cores[c] > 0 &&
             (covered + kEps < demand[pe] || cores_taken == 0)) {
        --free_cores[c];
        ++assignment[pe][c];
        ++cores_taken;
        covered += speed;
      }
      if (covered + kEps >= demand[pe] && cores_taken > 0) break;
    }
    if (covered + kEps < demand[pe] || cores_taken == 0) {
      return std::nullopt;
    }
  }
  return assignment;
}

PackScratch::PackScratch(const ResourceCatalog& catalog) {
  const std::size_t n_classes = catalog.size();
  class_order.resize(n_classes);
  std::iota(class_order.begin(), class_order.end(), 0u);
  // Same comparator as tryAssign(): fastest cores first. std::sort is
  // deterministic for a fixed input and comparator, so hoisting the sort
  // out of the per-candidate path cannot change any packing verdict.
  std::sort(class_order.begin(), class_order.end(),
            [&catalog](std::size_t a, std::size_t b) {
              return catalog
                         .at(ResourceClassId(
                             static_cast<ResourceClassId::value_type>(a)))
                         .core_speed >
                     catalog
                         .at(ResourceClassId(
                             static_cast<ResourceClassId::value_type>(b)))
                         .core_speed;
            });
  class_speed.resize(n_classes);
  class_cores.resize(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    const auto& cls = catalog.at(
        ResourceClassId(static_cast<ResourceClassId::value_type>(c)));
    class_speed[c] = cls.core_speed;
    class_cores[c] = cls.cores;
  }
  free_cores.resize(n_classes);
  // Power-of-two speeds accumulate exactly under repeated addition (every
  // partial sum is a multiple of the smallest speed), which is what lets
  // packingFeasible() collapse whole per-class takes into closed form.
  bulk_exact = n_classes > 0;
  for (std::size_t c = 0; c < n_classes; ++c) {
    int exp = 0;
    if (!(class_speed[c] > 0.0) ||
        std::frexp(class_speed[c], &exp) != 0.5) {
      bulk_exact = false;
    }
  }
}

bool packingFeasible(const ResourceCatalog& catalog,
                     const std::vector<int>& vm_counts,
                     const std::vector<double>& demand,
                     PackScratch& scratch) {
  const std::size_t n_classes = catalog.size();
  DDS_REQUIRE(vm_counts.size() == n_classes,
              "vm_counts does not match catalog");
  DDS_REQUIRE(scratch.class_order.size() == n_classes,
              "scratch built for a different catalog");
  for (std::size_t c = 0; c < n_classes; ++c) {
    scratch.free_cores[c] = vm_counts[c] * scratch.class_cores[c];
  }
  // The PE ordering must be rebuilt per call (the demand vector changes),
  // with tryAssign()'s exact comparator so verdicts stay identical.
  scratch.pe_order.resize(demand.size());
  std::iota(scratch.pe_order.begin(), scratch.pe_order.end(), 0u);
  std::sort(scratch.pe_order.begin(), scratch.pe_order.end(),
            [&demand](std::size_t a, std::size_t b) {
              return demand[a] > demand[b];
            });

  // Bulk-take guard: beyond power-of-two speeds (checked once in the
  // scratch ctor), every partial `covered` sum must stay an exact multiple
  // of the smallest speed below 2^53 such multiples, or repeated addition
  // and the closed form could round differently.
  bool bulk = scratch.bulk_exact;
  if (bulk) {
    long long total_cores = 0;
    double min_speed = std::numeric_limits<double>::infinity();
    double max_speed = 0.0;
    for (std::size_t c = 0; c < n_classes; ++c) {
      total_cores += scratch.free_cores[c];
      min_speed = std::min(min_speed, scratch.class_speed[c]);
      max_speed = std::max(max_speed, scratch.class_speed[c]);
    }
    bulk = static_cast<double>(total_cores) * max_speed < 9.0e15 * min_speed;
  }

  // Mirror of tryAssign()'s greedy loop minus the Assignment writes; the
  // writes never feed back into control flow, so the verdict matches.
  for (const std::size_t pe : scratch.pe_order) {
    double covered = 0.0;
    int cores_taken = 0;
    for (const std::size_t c : scratch.class_order) {
      const double speed = scratch.class_speed[c];
      int& avail = scratch.free_cores[c];
      if (bulk) {
        if (avail > 0 && (covered + kEps < demand[pe] || cores_taken == 0)) {
          // Closed form of the scalar take-one-core loop: find the first
          // core count k at which its stop test passes, or drain the
          // class. The estimate is one division; the fixups run O(1)
          // steps and evaluate the exact stop predicate on the exact
          // partial sums, so k and `covered` match the loop bitwise.
          const double need = demand[pe] - covered;
          long long k = 1;
          if (need > 0.0) {
            const double est = std::ceil(need / speed);
            if (est >= static_cast<double>(avail)) {
              k = avail;
            } else if (est > 1.0) {
              k = static_cast<long long>(est);
            }
          }
          while (k > 1 && covered + static_cast<double>(k - 1) * speed +
                                  kEps >=
                              demand[pe]) {
            --k;
          }
          while (k < avail &&
                 covered + static_cast<double>(k) * speed + kEps <
                     demand[pe]) {
            ++k;
          }
          avail -= static_cast<int>(k);
          cores_taken += static_cast<int>(k);
          covered += static_cast<double>(k) * speed;
        }
      } else {
        while (avail > 0 &&
               (covered + kEps < demand[pe] || cores_taken == 0)) {
          --avail;
          ++cores_taken;
          covered += speed;
        }
      }
      if (covered + kEps >= demand[pe] && cores_taken > 0) break;
    }
    if (covered + kEps < demand[pe] || cores_taken == 0) {
      return false;
    }
  }
  return true;
}

double multisetCost(const ResourceCatalog& catalog,
                    const std::vector<int>& vm_counts,
                    double horizon_hours) {
  double cost = 0.0;
  for (std::size_t c = 0; c < vm_counts.size(); ++c) {
    cost +=
        vm_counts[c] *
        catalog.at(ResourceClassId(static_cast<ResourceClassId::value_type>(c)))
            .price_per_hour *
        horizon_hours;
  }
  return cost;
}

double deploymentGamma(const Dataflow& df, const Deployment& deployment) {
  double gamma = 0.0;
  for (const auto& pe : df.pes()) {
    gamma += pe.relativeValue(deployment.activeAlternate(pe.id()));
  }
  return gamma / static_cast<double>(df.peCount());
}

void materialize(CloudProvider& cloud, const std::vector<int>& vm_counts,
                 const Assignment& assignment) {
  const std::size_t n_classes = vm_counts.size();
  std::vector<std::vector<VmId>> vms_by_class(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    for (int k = 0; k < vm_counts[c]; ++k) {
      vms_by_class[c].push_back(cloud.acquire(
          ResourceClassId(static_cast<ResourceClassId::value_type>(c)), 0.0));
    }
  }
  for (std::size_t pe = 0; pe < assignment.size(); ++pe) {
    for (std::size_t c = 0; c < n_classes; ++c) {
      int remaining = assignment[pe][c];
      for (const VmId vm_id : vms_by_class[c]) {
        VmInstance& vm = cloud.instance(vm_id);
        while (remaining > 0 && vm.freeCoreCount() > 0) {
          vm.allocateCore(PeId(static_cast<PeId::value_type>(pe)));
          --remaining;
        }
        if (remaining == 0) break;
      }
      DDS_ENSURE(remaining == 0, "materialization ran out of cores");
    }
  }
}

}  // namespace dds::static_planning
