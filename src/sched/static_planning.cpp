#include "dds/sched/static_planning.hpp"

#include <algorithm>
#include <numeric>

namespace dds::static_planning {
namespace {
constexpr double kEps = 1e-9;
}

std::optional<Assignment> tryAssign(const ResourceCatalog& catalog,
                                    const std::vector<int>& vm_counts,
                                    const std::vector<double>& demand) {
  const std::size_t n_classes = catalog.size();
  DDS_REQUIRE(vm_counts.size() == n_classes,
              "vm_counts does not match catalog");
  std::vector<int> free_cores(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    free_cores[c] =
        vm_counts[c] *
        catalog.at(ResourceClassId(static_cast<ResourceClassId::value_type>(c)))
            .cores;
  }
  // Class order: fastest cores first.
  std::vector<std::size_t> class_order(n_classes);
  std::iota(class_order.begin(), class_order.end(), 0u);
  std::sort(class_order.begin(), class_order.end(),
            [&catalog](std::size_t a, std::size_t b) {
              return catalog
                         .at(ResourceClassId(
                             static_cast<ResourceClassId::value_type>(a)))
                         .core_speed >
                     catalog
                         .at(ResourceClassId(
                             static_cast<ResourceClassId::value_type>(b)))
                         .core_speed;
            });

  std::vector<std::size_t> pe_order(demand.size());
  std::iota(pe_order.begin(), pe_order.end(), 0u);
  std::sort(pe_order.begin(), pe_order.end(),
            [&demand](std::size_t a, std::size_t b) {
              return demand[a] > demand[b];
            });

  Assignment assignment(demand.size(), std::vector<int>(n_classes, 0));
  for (const std::size_t pe : pe_order) {
    double covered = 0.0;
    int cores_taken = 0;
    for (const std::size_t c : class_order) {
      const double speed =
          catalog
              .at(ResourceClassId(static_cast<ResourceClassId::value_type>(c)))
              .core_speed;
      while (free_cores[c] > 0 &&
             (covered + kEps < demand[pe] || cores_taken == 0)) {
        --free_cores[c];
        ++assignment[pe][c];
        ++cores_taken;
        covered += speed;
      }
      if (covered + kEps >= demand[pe] && cores_taken > 0) break;
    }
    if (covered + kEps < demand[pe] || cores_taken == 0) {
      return std::nullopt;
    }
  }
  return assignment;
}

double multisetCost(const ResourceCatalog& catalog,
                    const std::vector<int>& vm_counts,
                    double horizon_hours) {
  double cost = 0.0;
  for (std::size_t c = 0; c < vm_counts.size(); ++c) {
    cost +=
        vm_counts[c] *
        catalog.at(ResourceClassId(static_cast<ResourceClassId::value_type>(c)))
            .price_per_hour *
        horizon_hours;
  }
  return cost;
}

double deploymentGamma(const Dataflow& df, const Deployment& deployment) {
  double gamma = 0.0;
  for (const auto& pe : df.pes()) {
    gamma += pe.relativeValue(deployment.activeAlternate(pe.id()));
  }
  return gamma / static_cast<double>(df.peCount());
}

void materialize(CloudProvider& cloud, const std::vector<int>& vm_counts,
                 const Assignment& assignment) {
  const std::size_t n_classes = vm_counts.size();
  std::vector<std::vector<VmId>> vms_by_class(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    for (int k = 0; k < vm_counts[c]; ++k) {
      vms_by_class[c].push_back(cloud.acquire(
          ResourceClassId(static_cast<ResourceClassId::value_type>(c)), 0.0));
    }
  }
  for (std::size_t pe = 0; pe < assignment.size(); ++pe) {
    for (std::size_t c = 0; c < n_classes; ++c) {
      int remaining = assignment[pe][c];
      for (const VmId vm_id : vms_by_class[c]) {
        VmInstance& vm = cloud.instance(vm_id);
        while (remaining > 0 && vm.freeCoreCount() > 0) {
          vm.allocateCore(PeId(static_cast<PeId::value_type>(pe)));
          --remaining;
        }
        if (remaining == 0) break;
      }
      DDS_ENSURE(remaining == 0, "materialization ran out of cores");
    }
  }
}

}  // namespace dds::static_planning
