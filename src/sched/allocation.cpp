#include "dds/sched/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "dds/common/rng.hpp"
#include "dds/sim/rate_model.hpp"

namespace dds {
namespace {

constexpr double kEps = 1e-9;

/// Hash-family tag for the per-acquisition spot/on-demand choice.
constexpr std::uint64_t kSpotChoiceTag = 0x7a3d91c5ull;

/// Active VM ids, cheapest-to-query helper.
std::vector<VmId> activeVmIds(const CloudProvider& cloud) {
  return cloud.activeVms();
}

bool hostsPe(const VmInstance& vm, PeId pe) {
  return vm.coresOwnedBy(pe) > 0;
}

bool hostsNeighbor(const Dataflow& df, const VmInstance& vm, PeId pe) {
  for (const PeId u : df.predecessors(pe)) {
    if (hostsPe(vm, u)) return true;
  }
  for (const PeId v : df.successors(pe)) {
    if (hostsPe(vm, v)) return true;
  }
  return false;
}

}  // namespace

CorePowerFn ratedCorePowerFn(const CloudProvider& cloud) {
  return [&cloud](VmId vm) {
    return cloud.instance(vm).spec().core_speed;
  };
}

CorePowerFn observedCorePowerFn(const MonitoringService& mon, SimTime t) {
  return [&mon, t](VmId vm) { return mon.observedCorePower(vm, t); };
}

void ThroughputProjector::bind(const Dataflow& df,
                               const Deployment& deployment,
                               double input_rate) {
  df_ = &df;
  input_rate_ = input_rate;
  requiredCorePowerInto(df, deployment, input_rate, proj_.required_power);
  expectedOutputRatesInto(df, deployment, input_rate, expected_);
  const std::size_t n = df.peCount();
  alt_cost_.resize(n);
  alt_sel_.resize(n);
  for (const auto& pe : df.pes()) {
    const auto& alt = pe.alternate(deployment.activeAlternate(pe.id()));
    alt_cost_[pe.id().value()] = alt.cost_core_sec;
    alt_sel_[pe.id().value()] = alt.selectivity;
  }
}

const ThroughputProjection& ThroughputProjector::project(
    const std::vector<double>& pe_power) {
  DDS_REQUIRE(df_ != nullptr, "projector used before bind()");
  const Dataflow& df = *df_;
  DDS_REQUIRE(pe_power.size() == df.peCount(),
              "power vector does not match dataflow");
  proj_.pe_omega.assign(df.peCount(), 1.0);

  // Finite-capacity steady-state propagation (planning ignores network
  // caps; the simulator applies them when the plan actually runs).
  out_.assign(df.peCount(), 0.0);
  for (const PeId pe : df.topologicalOrder()) {
    const std::size_t i = pe.value();
    double arrival = 0.0;
    if (df.isInput(pe)) {
      arrival = input_rate_;
    } else {
      for (const PeId u : df.predecessors(pe)) arrival += out_[u.value()];
    }
    const double cap = pe_power[i] / alt_cost_[i];
    out_[i] = std::min(arrival, cap) * alt_sel_[i];
    proj_.pe_omega[i] = proj_.required_power[i] > kEps
                            ? std::min(1.0, pe_power[i] /
                                                proj_.required_power[i])
                            : 1.0;
  }

  double omega_sum = 0.0;
  for (const PeId o : df.outputs()) {
    const double exp_rate = expected_[o.value()];
    const double ratio = exp_rate > kEps ? out_[o.value()] / exp_rate : 1.0;
    omega_sum += std::clamp(ratio, 0.0, 1.0);
  }
  proj_.omega = omega_sum / static_cast<double>(df.outputs().size());
  return proj_;
}

ThroughputProjection projectThroughput(const Dataflow& df,
                                       const Deployment& deployment,
                                       double input_rate,
                                       const std::vector<double>& pe_power) {
  ThroughputProjector projector;
  projector.bind(df, deployment, input_rate);
  return projector.project(pe_power);
}

void ResourceAllocator::traceCoreAlloc(VmId vm, PeId pe, std::int64_t delta,
                                       SimTime now) {
  if (tracer_.enabled()) {
    tracer_.emit(obs::CoreAllocEvent{
        .t = now, .vm = vm.value(), .pe = pe.value(), .delta = delta});
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter(delta > 0 ? "alloc.cores_allocated"
                            : "alloc.cores_released")
        .inc();
  }
}

ResourceAllocator::ResourceAllocator(const Dataflow& df, CloudProvider& cloud,
                                     double omega_target,
                                     AcquisitionPolicy acquisition)
    : df_(&df),
      cloud_(&cloud),
      omega_target_(omega_target),
      acquisition_(acquisition) {
  DDS_REQUIRE(omega_target > 0.0 && omega_target <= 1.0,
              "omega target out of range");
}

void ResourceAllocator::allocatedPowerInto(const CorePowerFn& power,
                                           std::vector<double>& pw) const {
  pw.assign(df_->peCount(), 0.0);
  for (const VmInstance& vm : cloud_->instances()) {
    if (!vm.isActive()) continue;
    const double per_core = power(vm.id());
    for (int c = 0; c < vm.coreCount(); ++c) {
      if (const auto owner = vm.coreOwner(c)) {
        pw[owner->value()] += per_core;
      }
    }
  }
}

std::vector<double> ResourceAllocator::allocatedPower(
    const CorePowerFn& power) const {
  std::vector<double> pw;
  allocatedPowerInto(power, pw);
  return pw;
}

ResourceClassId ResourceAllocator::preferredClass() const {
  // The preference is computed over the on-demand classes only: the spot
  // tier mirrors their hardware at a discount, so ranking would otherwise
  // always land on a spot twin. Whether to *take* the spot twin is a
  // separate per-acquisition decision in acquireNew(). Catalogs with no
  // spot tier walk exactly the pre-spot candidate set.
  const ResourceCatalog& catalog = cloud_->catalog();
  std::optional<std::size_t> best;
  for (std::size_t c = 0; c < catalog.size(); ++c) {
    const auto& cand = catalog.at(
        ResourceClassId(static_cast<ResourceClassId::value_type>(c)));
    if (cand.preemptible) continue;
    if (!best.has_value()) {
      best = c;
      continue;
    }
    const auto& cur = catalog.at(
        ResourceClassId(static_cast<ResourceClassId::value_type>(*best)));
    bool better;
    if (acquisition_ == AcquisitionPolicy::LargestFirst) {
      // Alg. 1's "VMClasses.First": most aggregate power, ties cheaper.
      better = cand.totalPower() > cur.totalPower() ||
               (cand.totalPower() == cur.totalPower() &&
                cand.price_per_hour < cur.price_per_hour);
    } else {
      // CheapestPower: best dollars per unit of rated power; ties go to
      // the larger class (fewer VMs, better colocation).
      const double cand_rate = cand.price_per_hour / cand.totalPower();
      const double cur_rate = cur.price_per_hour / cur.totalPower();
      better = cand_rate < cur_rate - kEps ||
               (std::abs(cand_rate - cur_rate) <= kEps &&
                cand.totalPower() > cur.totalPower());
    }
    if (better) best = c;
  }
  DDS_ENSURE(best.has_value(), "catalog has no on-demand class");
  return ResourceClassId(static_cast<ResourceClassId::value_type>(*best));
}

std::optional<VmId> ResourceAllocator::acquireNew(SimTime now) {
  if (acquisitionBackoffActive(now)) return std::nullopt;
  const ResourceCatalog& catalog = cloud_->catalog();

  // Candidate order: the policy-preferred class first, then the cheaper
  // fallback classes by descending price — when the provider cannot
  // deliver the preferred class, any cheaper capacity is better than none
  // (the incremental loop tops up with further VMs as needed). When a
  // spot tier exists and the per-acquisition hash lands inside the spot
  // fraction, the preferred class's spot twin is tried before it; the
  // fallback chain stays on-demand either way, so a rejected spot bid
  // degrades to reliable capacity, never to more spot.
  const ResourceClassId preferred = preferredClass();
  std::vector<ResourceClassId> candidates;
  if (spot_fraction_ > 0.0 && !spot_suppressed_ &&
      catalog.hasPreemptible()) {
    const std::uint64_t h = splitmix64(spot_seed_ ^ kSpotChoiceTag ^
                                       splitmix64(spot_ordinal_));
    ++spot_ordinal_;
    if (hashToUnitInterval(h) <= spot_fraction_) {
      if (const auto spot = catalog.spotTwin(preferred)) {
        candidates.push_back(*spot);
      }
    }
  }
  candidates.push_back(preferred);
  std::vector<ResourceClassId> fallbacks;
  for (std::size_t c = 0; c < catalog.size(); ++c) {
    const ResourceClassId id(static_cast<ResourceClassId::value_type>(c));
    if (id != preferred && !catalog.at(id).preemptible &&
        catalog.at(id).price_per_hour <
            catalog.at(preferred).price_per_hour + kEps) {
      fallbacks.push_back(id);
    }
  }
  std::sort(fallbacks.begin(), fallbacks.end(),
            [&](ResourceClassId a, ResourceClassId b) {
              return catalog.at(a).price_per_hour >
                     catalog.at(b).price_per_hour;
            });
  candidates.insert(candidates.end(), fallbacks.begin(), fallbacks.end());

  const int budget = resilience_.acquisition_max_retries;
  for (int attempt = 0;
       attempt < budget && attempt < static_cast<int>(candidates.size());
       ++attempt) {
    const auto result = cloud_->tryAcquire(
        candidates[static_cast<std::size_t>(attempt)], now);
    if (result.ok()) {
      consecutive_unmet_ = 0;
      return result.vm;
    }
    ++rejections_;
  }

  // Every attempt rejected: arm exponential backoff so the scheduler does
  // not hammer a failing control plane every interval. Graceful
  // degradation (alternate downgrades) covers the gap meanwhile.
  ++consecutive_unmet_;
  if (resilience_.acquisition_backoff_s > 0.0) {
    const double factor =
        static_cast<double>(1 << std::min(consecutive_unmet_ - 1, 3));
    acquisition_retry_after_ =
        now + resilience_.acquisition_backoff_s * factor;
  }
  return std::nullopt;
}

bool ResourceAllocator::allocateCoreForPe(PeId pe, SimTime now,
                                          bool allow_acquire) {
  // Rank free-core VMs: colocate with itself, then with graph neighbours,
  // then anywhere; prefer faster cores, then tighter packing.
  std::optional<VmId> best;
  int best_rank = -1;
  double best_speed = -1.0;
  int best_free = std::numeric_limits<int>::max();
  for (const VmInstance& vm : cloud_->instances()) {
    if (!vm.isActive() || vm.freeCoreCount() == 0) continue;
    int rank = 0;
    if (hostsPe(vm, pe)) {
      rank = 2;
    } else if (hostsNeighbor(*df_, vm, pe)) {
      rank = 1;
    }
    const double speed = vm.spec().core_speed;
    const int free = vm.freeCoreCount();
    const bool better =
        rank > best_rank ||
        (rank == best_rank &&
         (speed > best_speed || (speed == best_speed && free < best_free)));
    if (better) {
      best = vm.id();
      best_rank = rank;
      best_speed = speed;
      best_free = free;
    }
  }
  if (!best.has_value()) {
    if (!allow_acquire) return false;
    best = acquireNew(now);
    if (!best.has_value()) return false;  // rejected or backing off
  }
  cloud_->instance(*best).allocateCore(pe);
  traceCoreAlloc(*best, pe, +1, now);
  return true;
}

void ResourceAllocator::ensureMinimumCores(SimTime now) {
  // Alg. 1 lines 13-20: walk PEs in forward BFS order, filling the most
  // recently touched VM first so dataflow neighbours land together.
  std::optional<VmId> last_vm;
  for (const PeId pe : df_->forwardBfsFromInputs()) {
    if (totalCores(*cloud_, pe) > 0) continue;
    if (!last_vm.has_value() ||
        cloud_->instance(*last_vm).freeCoreCount() == 0) {
      // Reuse any active VM with spare cores before acquiring a new one.
      last_vm.reset();
      for (const VmInstance& vm : cloud_->instances()) {
        if (vm.isActive() && vm.freeCoreCount() > 0) {
          last_vm = vm.id();
          break;
        }
      }
      if (!last_vm.has_value()) last_vm = acquireNew(now);
      // Provider rejected even the fallback classes: leave the remaining
      // PEs unplaced for now; the next adaptation retries after backoff.
      if (!last_vm.has_value()) return;
    }
    cloud_->instance(*last_vm).allocateCore(pe);
    traceCoreAlloc(*last_vm, pe, +1, now);
  }
}

namespace {

/// Per-PE demand (normalized core power): measured arrivals when given,
/// graph-propagated expected arrivals otherwise.
std::vector<double> demandVector(const Dataflow& df,
                                 const Deployment& deployment,
                                 double input_rate,
                                 const std::vector<double>* measured) {
  if (measured == nullptr) {
    return requiredCorePower(df, deployment, input_rate);
  }
  DDS_REQUIRE(measured->size() == df.peCount(),
              "measured arrival vector does not match dataflow");
  std::vector<double> required(*measured);
  for (const auto& pe : df.pes()) {
    required[pe.id().value()] *=
        pe.alternate(deployment.activeAlternate(pe.id())).cost_core_sec;
  }
  return required;
}

}  // namespace

void ResourceAllocator::scaleOut(const Deployment& deployment,
                                 double input_rate, const CorePowerFn& power,
                                 SimTime now, Strategy scope, double target,
                                 const std::vector<double>* measured_arrivals) {
  if (target < 0.0) target = omega_target_;
  DDS_REQUIRE(target <= 1.0, "scale-out target cannot exceed 1");
  const auto required =
      demandVector(*df_, deployment, input_rate, measured_arrivals);

  // Convergence bound: the demand is finite, every added core contributes
  // at least the slowest catalog core's power.
  double min_speed = std::numeric_limits<double>::infinity();
  for (const auto& cls : cloud_->catalog().classes()) {
    min_speed = std::min(min_speed, cls.core_speed);
  }
  double total_required = 0.0;
  for (double r : required) total_required += r;
  if (measured_arrivals != nullptr) {
    // Measured and expected demand can differ; bound on their sum.
    for (double r : requiredCorePower(*df_, deployment, input_rate)) {
      total_required += r;
    }
  }
  // The observed per-core power can sit well below rated (trace floor is
  // ~0.4x), so allow proportionally more iterations than the rated bound.
  const auto max_iters =
      4 * static_cast<std::size_t>(total_required / min_speed) +
      4 * df_->peCount() + 64;

  // The alternates are fixed for the whole call, so the projection's
  // graph-propagated tables are bound once and every iteration only
  // re-projects the updated power vector.
  if (scope == Strategy::Global) {
    projector_.bind(*df_, deployment, input_rate);
  }
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    allocatedPowerInto(power, pw_scratch_);
    // Deficit of each PE against its target; the most negative deficit is
    // the bottleneck. A PE at its saturation point (pe_omega == 1) cannot
    // be improved and never counts as a deficit.
    std::vector<double>& deficit = deficit_scratch_;
    deficit.assign(df_->peCount(), 0.0);
    bool satisfied = true;
    if (scope == Strategy::Global) {
      // Graph-wide projection at predicted rates: allocate only while the
      // *application* omega trails the target.
      const ThroughputProjection& proj = projector_.project(pw_scratch_);
      satisfied = proj.omega >= target - kEps;
      for (std::size_t i = 0; i < deficit.size(); ++i) {
        deficit[i] = proj.pe_omega[i] - 1.0;
      }
    } else {
      // Local view: each PE against its own (possibly stale) measured
      // demand. Only the input PEs throttle to the constraint; every
      // downstream PE is sized to serve what actually arrives — otherwise
      // per-stage throttling would compound (0.7^depth at the sink).
      for (std::size_t i = 0; i < deficit.size(); ++i) {
        const PeId pe(static_cast<PeId::value_type>(i));
        double pe_omega = 1.0;
        if (required[i] > kEps) {
          pe_omega = std::min(1.0, pw_scratch_[i] / required[i]);
        }
        const double pe_target = df_->isInput(pe) ? target : 1.0;
        deficit[i] = pe_omega - pe_target;
        if (deficit[i] < -kEps) satisfied = false;
      }
    }
    if (satisfied) return;

    const auto bottleneck_it =
        std::min_element(deficit.begin(), deficit.end());
    if (*bottleneck_it >= -kEps) return;  // nothing left to improve
    const PeId bottleneck(static_cast<PeId::value_type>(
        std::distance(deficit.begin(), bottleneck_it)));
    if (!allocateCoreForPe(bottleneck, now, /*allow_acquire=*/true)) return;
  }
  throw InvariantError(
      "incremental allocation failed to converge within its bound");
}

std::vector<MigrationEvent> ResourceAllocator::scaleIn(
    const Deployment& deployment, double input_rate,
    const CorePowerFn& power, Strategy scope, double floor_omega,
    const std::vector<double>* measured_arrivals, SimTime now) {
  std::vector<MigrationEvent> migrations;
  const auto required =
      demandVector(*df_, deployment, input_rate, measured_arrivals);
  const int initial_cores = totalAllocatedCores(*cloud_);
  // Alternates are fixed for the whole call: bind the projection once and
  // re-project candidate power vectors in place (mutate one entry, test,
  // restore) instead of copying the vector per candidate.
  if (scope == Strategy::Global) {
    projector_.bind(*df_, deployment, input_rate);
  }
  for (int iter = 0; iter < initial_cores; ++iter) {
    std::vector<double>& pw = pw_scratch_;
    allocatedPowerInto(power, pw);

    // Candidate = the PE with the largest surplus whose core removal keeps
    // the (scope-dependent) projection at or above the floor. The core we
    // give up is the one on the PE's least-loaded VM, so removals
    // concentrate and eventually empty whole VMs.
    struct Candidate {
      PeId pe{0};
      VmId vm{0};
      double surplus = 0.0;
    };
    std::optional<Candidate> best;
    for (const auto& element : df_->pes()) {
      const PeId pe = element.id();
      // One pass over the instances replaces the peCores() snapshot: core
      // count plus least-loaded hosting VM, visited in the same order.
      int count = 0;
      std::optional<VmId> victim;
      int victim_load = std::numeric_limits<int>::max();
      for (const VmInstance& vm : cloud_->instances()) {
        if (!vm.isActive()) continue;
        const int on_vm = vm.coresOwnedBy(pe);
        if (on_vm == 0) continue;
        count += on_vm;
        const int load = vm.allocatedCoreCount();
        if (load < victim_load) {
          victim_load = load;
          victim = vm.id();
        }
      }
      if (count <= 1) continue;  // every PE keeps at least one core

      const double saved = pw[pe.value()];
      const double reduced = saved - power(*victim);
      bool ok;
      if (scope == Strategy::Global) {
        pw[pe.value()] = reduced;
        ok = projector_.project(pw).omega >= floor_omega - kEps;
        pw[pe.value()] = saved;
      } else {
        const double req = required[pe.value()];
        const double pe_floor = df_->isInput(pe) ? floor_omega : 1.0;
        ok = req <= kEps || reduced / req >= pe_floor - kEps;
      }
      if (!ok) continue;
      const double surplus =
          pw[pe.value()] / std::max(required[pe.value()], kEps);
      if (!best.has_value() || surplus > best->surplus) {
        best = Candidate{pe, *victim, surplus};
      }
    }
    if (!best.has_value()) break;

    VmInstance& vm = cloud_->instance(best->vm);
    const int before_on_vm = vm.coresOwnedBy(best->pe);
    const int before_total = totalCores(*cloud_, best->pe);
    vm.releaseCoreOf(best->pe);
    traceCoreAlloc(best->vm, best->pe, -1, now);
    if (before_on_vm == 1 && before_total > 1) {
      // The PE lost its last core on this VM: its share of buffered
      // messages moves to its remaining hosts over the network.
      migrations.push_back(
          {best->pe, 1.0 / static_cast<double>(before_total)});
    }
  }
  return migrations;
}

void ResourceAllocator::repackPes(const Deployment& deployment,
                                  double input_rate, const CorePowerFn& power,
                                  SimTime now) {
  const auto required = requiredCorePower(*df_, deployment, input_rate);
  for (const auto& element : df_->pes()) {
    const PeId pe = element.id();
    const auto cores = peCores(*cloud_, pe);
    for (const auto& vc : cores) {
      VmInstance& vm = cloud_->instance(vc.vm);
      if (vm.allocatedCoreCount() != vc.cores) continue;  // not sole tenant

      double other_power = 0.0;
      for (const auto& other : cores) {
        if (other.vm != vc.vm) {
          other_power +=
              static_cast<double>(other.cores) * power(other.vm);
        }
      }
      const bool needs_core_elsewhere = (cores.size() == 1);
      const double residual =
          std::max(required[pe.value()] - other_power, 0.0);
      if (residual <= kEps && !needs_core_elsewhere) {
        // Fully covered elsewhere: just vacate this VM.
        vm.releaseAllCoresOf(pe);
        continue;
      }
      // Repacking is a cost move, not a reliability bet: a spot twin is
      // always the cheapest fitting class, so map back to its on-demand
      // hardware (identity when the catalog has no spot tier).
      const ResourceClassId target_cls = cloud_->catalog().onDemandTwin(
          cloud_->catalog().smallestFitting(std::max(residual, kEps)));
      const ResourceClass& target_spec = cloud_->catalog().at(target_cls);
      if (target_spec.price_per_hour >= vm.spec().price_per_hour) continue;

      const int needed_cores = std::max(
          1, static_cast<int>(
                 std::ceil(residual / target_spec.core_speed - kEps)));
      DDS_ENSURE(needed_cores <= target_spec.cores,
                 "smallestFitting returned an undersized class");
      // Repacking is an optimization: if the provider rejects the smaller
      // VM, keep the current (pricier but working) layout.
      const AcquisitionResult fresh = cloud_->tryAcquire(target_cls, now);
      if (!fresh.ok()) continue;
      for (int c = 0; c < needed_cores; ++c) {
        cloud_->instance(fresh.vm).allocateCore(pe);
      }
      cloud_->instance(vc.vm).releaseAllCoresOf(pe);
      break;  // this PE's layout changed; re-visit others first
    }
  }
}

void ResourceAllocator::repackFreeVms(const CorePowerFn& power) {
  (void)power;  // relocation feasibility is decided on rated core speeds
  bool moved = true;
  while (moved) {
    moved = false;
    // Lightest-loaded active VM first.
    auto ids = activeVmIds(*cloud_);
    std::sort(ids.begin(), ids.end(), [this](VmId a, VmId b) {
      return cloud_->instance(a).allocatedCoreCount() <
             cloud_->instance(b).allocatedCoreCount();
    });
    for (const VmId source_id : ids) {
      VmInstance& source = cloud_->instance(source_id);
      const int used = source.allocatedCoreCount();
      if (used == 0) continue;

      // Feasibility: every used core needs a free slot of >= speed on some
      // other active VM. Slots are interchangeable within a VM.
      struct Slot {
        VmId vm;
        double speed;
        int free;
      };
      std::vector<Slot> slots;
      for (const VmId other_id : ids) {
        if (other_id == source_id) continue;
        const VmInstance& other = cloud_->instance(other_id);
        // Only already-used VMs may receive cores: each move then strictly
        // reduces the number of non-empty VMs, which guarantees this loop
        // terminates (no ping-ponging cores between two VMs).
        if (other.allocatedCoreCount() == 0) continue;
        if (other.freeCoreCount() > 0) {
          slots.push_back(
              {other_id, other.spec().core_speed, other.freeCoreCount()});
        }
      }
      // Fill from the slowest adequate slots so fast cores stay available.
      std::sort(slots.begin(), slots.end(),
                [](const Slot& a, const Slot& b) { return a.speed < b.speed; });
      const double need_speed = source.spec().core_speed;
      std::vector<std::pair<VmId, int>> plan;  // target VM, cores to take
      int remaining = used;
      for (auto& slot : slots) {
        if (slot.speed + kEps < need_speed) continue;
        const int take = std::min(remaining, slot.free);
        if (take > 0) {
          plan.emplace_back(slot.vm, take);
          remaining -= take;
        }
        if (remaining == 0) break;
      }
      if (remaining > 0) continue;  // cannot empty this VM

      // Execute: move owners core by core.
      std::vector<PeId> owners;
      for (int c = 0; c < source.coreCount(); ++c) {
        if (const auto owner = source.coreOwner(c)) owners.push_back(*owner);
      }
      auto plan_it = plan.begin();
      int taken_here = 0;
      for (const PeId owner : owners) {
        source.releaseCoreOf(owner);
        cloud_->instance(plan_it->first).allocateCore(owner);
        if (++taken_here == plan_it->second) {
          ++plan_it;
          taken_here = 0;
        }
      }
      moved = true;
      break;  // layout changed; recompute ordering
    }
  }
}

int ResourceAllocator::releaseEmptyVms(ReleasePolicy policy, SimTime now,
                                       SimTime interval_s) {
  int released = 0;
  for (const VmId id : activeVmIds(*cloud_)) {
    const VmInstance& vm = cloud_->instance(id);
    if (vm.allocatedCoreCount() > 0) continue;
    if (policy == ReleasePolicy::AtHourBoundary) {
      // Keep the VM while its current (already paid) hour still has time
      // left — it can absorb a future scale-out for free. Release it just
      // before the next hour starts getting billed.
      if (cloud_->timeToNextHourBoundary(id, now) > interval_s) continue;
    }
    cloud_->release(id, now);
    ++released;
  }
  return released;
}

}  // namespace dds
