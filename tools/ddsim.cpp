// ddsim — run dynamic-dataflow experiments from a config file.
//
//   ddsim experiment.conf
//
// The config format is documented in dds/config/config_file.hpp; see
// tools/example.conf for a ready-made experiment. Prints a summary row
// per scheduler and, when `output_csv` is set, writes the per-interval
// series of each run as `<output_csv>.<scheduler>.csv`.
#include <iostream>

#include "dds/config/config_file.hpp"
#include "dds/core/report.hpp"
#include "dds/dds.hpp"

namespace {

using namespace dds;

Dataflow buildGraph(const CliExperiment& ex, const KeyValueConfig& kv) {
  if (ex.graph == "paper") return makePaperDataflow();
  if (ex.graph == "diamond") return makeDiamondDataflow();
  const auto length =
      static_cast<std::size_t>(kv.getInt("chain_length", 4));
  return makeChainDataflow(length, 2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: ddsim <config-file>\n"
                 "see tools/example.conf for the format\n";
    return 2;
  }
  try {
    const auto kv = dds::KeyValueConfig::load(argv[1]);
    const auto ex = dds::experimentFromConfig(kv);
    const dds::Dataflow df = buildGraph(ex, kv);
    const dds::SimulationEngine engine(df, ex.config);

    std::cout << "dataflow '" << df.name() << "': " << df.peCount()
              << " PEs, " << df.totalAlternateCount() << " alternates; "
              << "rate " << ex.config.mean_rate << " msg/s ("
              << dds::toString(ex.config.profile) << "), horizon "
              << ex.config.horizon_s / dds::kSecondsPerHour << " h, sigma "
              << engine.sigma() << "\n\n";

    std::vector<dds::ExperimentResult> results;
    for (const auto kind : ex.schedulers) {
      results.push_back(engine.run(kind));
      if (!ex.output_csv.empty()) {
        const std::string path =
            ex.output_csv + "." + results.back().scheduler_name + ".csv";
        dds::saveCsv(path, dds::intervalSeriesCsv(results.back().run));
        std::cout << "wrote " << path << '\n';
      }
    }
    std::cout << dds::summaryTable(results).render();
    return 0;
  } catch (const dds::ConfigError& e) {
    // A user mistake in the config file: one clean line, no source noise.
    std::cerr << "ddsim: config error: " << e.what() << '\n';
    return 1;
  } catch (const dds::IoError& e) {
    std::cerr << "ddsim: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "ddsim: error: " << e.what() << '\n';
    return 1;
  } catch (...) {
    std::cerr << "ddsim: unknown error\n";
    return 1;
  }
}
