// ddsim — run dynamic-dataflow experiments from a config file, a batch
// of JSON job specs, or a streaming spec service.
//
//   ddsim [options] experiment.conf      # config mode
//   ddsim --specs FILE [--jsonl OUT]     # batch spec mode
//   ddsim --serve [--queue N]            # service mode (specs on stdin)
//
// Options:
//   --jobs N      run on N worker threads (default: all hardware
//                 threads; 1 = serial). Results are identical at any
//                 job count — only the wall clock changes.
//   --json FILE   write the campaign results as a JSON document.
//   --jsonl FILE  write one compact JSON record per job (the serve-mode
//                 record format; timing-free, byte-stable).
//   --trace FILE  stream each run's event trace as JSONL (one file per
//                 scheduler when the config runs several); inspect the
//                 files with the ddtrace tool.
//   --specs FILE  read v1 JSON job specs, one per line; with --serve
//                 they stream, without it they run as one campaign.
//   --serve       read specs from stdin (or --specs FILE) and stream a
//                 result record per spec to stdout as each finishes.
//   --queue N     serve-mode backpressure: at most N jobs in flight
//                 (default 2x workers).
//   --help        print usage and exit.
//
// Serve/batch records are byte-identical for the same specs at any
// --jobs, which is what the CI smoke job diffs.
//
// The config format is documented in dds/config/config_file.hpp; see
// tools/example.conf for a ready-made experiment. Prints a summary row
// per scheduler and, when `output_csv` is set, writes the per-interval
// series of each run as `<output_csv>.<scheduler>.csv`.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dds/exp/serve.hpp"

#include "dds/config/config_file.hpp"
#include "dds/core/report.hpp"
#include "dds/dds.hpp"

namespace {

using namespace dds;

struct CliOptions {
  std::string config_path;
  std::string json_path;
  std::string jsonl_path;
  std::string trace_path;
  std::string specs_path;
  std::size_t jobs = 0;   ///< 0 = hardware concurrency.
  std::size_t queue = 0;  ///< 0 = serve default (2x workers).
  bool serve = false;
  bool help = false;
};

void printUsage(std::ostream& out) {
  out << "usage: ddsim [options] <config-file>\n"
         "       ddsim --specs FILE [--jsonl OUT]   batch job specs\n"
         "       ddsim --serve [--queue N]          spec service on stdin\n"
         "  --jobs N      worker threads for the scheduler runs\n"
         "                (default: all hardware threads; 1 = serial)\n"
         "  --json FILE   write campaign results as JSON\n"
         "  --jsonl FILE  write one compact record per job (timing-free)\n"
         "  --trace FILE  stream each run's event trace as JSONL\n"
         "                (per-scheduler files FILE.<label> when the\n"
         "                config runs several; inspect with ddtrace)\n"
         "  --specs FILE  v1 JSON job specs, one per line\n"
         "  --serve       stream one result record per spec, in order\n"
         "  --queue N     serve backpressure window (default 2x workers)\n"
         "  --help        show this message\n"
         "schedulers (config `scheduler = ...`):";
  // The list is generated from the registry so --help can never drift
  // from the policies the binary actually knows.
  for (const SchedulerKind kind : allSchedulerKinds()) {
    out << ' ' << schedulerName(kind);
  }
  out << "\nrate profiles (config `workload.profile = ...`):";
  for (const ProfileKind kind : allProfileKinds()) {
    out << ' ' << profileName(kind);
  }
  out << "\nforecast models (config `forecast.model = ...`):";
  for (const ForecastModel model : allForecastModels()) {
    out << ' ' << forecastModelName(model);
  }
  out << "\nconfig families: workload.* fault.* elasticity.* resilience.*\n"
         "forecast.* (canonical nested keys; `config_schema = strict`\n"
         "rejects the deprecated flat spellings, job specs always parse\n"
         "strictly)\n"
         "see tools/example.conf for the config format\n";
}

/// Parses argv; throws ConfigError on malformed flags.
CliOptions parseArgs(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) throw ConfigError("--jobs requires a count");
      const std::string v = argv[++i];
      try {
        const long n = std::stol(v);
        if (n < 1) throw ConfigError("--jobs must be >= 1, got '" + v + "'");
        opts.jobs = static_cast<std::size_t>(n);
      } catch (const std::logic_error&) {
        throw ConfigError("--jobs is not a number: '" + v + "'");
      }
    } else if (arg == "--json") {
      if (i + 1 >= argc) throw ConfigError("--json requires a file path");
      opts.json_path = argv[++i];
    } else if (arg == "--jsonl") {
      if (i + 1 >= argc) throw ConfigError("--jsonl requires a file path");
      opts.jsonl_path = argv[++i];
    } else if (arg == "--specs") {
      if (i + 1 >= argc) throw ConfigError("--specs requires a file path");
      opts.specs_path = argv[++i];
    } else if (arg == "--serve") {
      opts.serve = true;
    } else if (arg == "--queue") {
      if (i + 1 >= argc) throw ConfigError("--queue requires a count");
      const std::string v = argv[++i];
      try {
        const long n = std::stol(v);
        if (n < 1) throw ConfigError("--queue must be >= 1, got '" + v + "'");
        opts.queue = static_cast<std::size_t>(n);
      } catch (const std::logic_error&) {
        throw ConfigError("--queue is not a number: '" + v + "'");
      }
    } else if (arg == "--trace") {
      if (i + 1 >= argc) throw ConfigError("--trace requires a file path");
      opts.trace_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      throw ConfigError("unknown option: '" + arg + "'");
    } else if (opts.config_path.empty()) {
      opts.config_path = arg;
    } else {
      throw ConfigError("more than one config file given");
    }
  }
  return opts;
}

bool blankLine(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

/// Serve mode: stream records as jobs finish, bounded in-flight window.
int runServe(const CliOptions& opts) {
  std::ifstream file_in;
  std::istream* in = &std::cin;
  if (!opts.specs_path.empty()) {
    file_in.open(opts.specs_path);
    if (!file_in) throw IoError("cannot open spec file: " + opts.specs_path);
    in = &file_in;
  }
  std::ofstream file_out;
  std::ostream* out = &std::cout;
  if (!opts.jsonl_path.empty()) {
    file_out.open(opts.jsonl_path);
    if (!file_out) {
      throw IoError("cannot open for writing: " + opts.jsonl_path);
    }
    out = &file_out;
  }
  ServeOptions serve;
  serve.jobs = opts.jobs;
  serve.queue = opts.queue;
  const ServeStats stats = serveCampaign(*in, *out, serve);
  std::cerr << "ddsim: served " << stats.specs << " specs (" << stats.ok
            << " ok, " << stats.failed << " failed, " << stats.rejected
            << " rejected)\n";
  return 0;
}

/// Batch spec mode: same records as serve, produced via Campaign +
/// runCampaign — the reference the serve path is diffed against.
int runSpecBatch(const CliOptions& opts) {
  std::ifstream in(opts.specs_path);
  if (!in) throw IoError("cannot open spec file: " + opts.specs_path);

  Campaign campaign;
  // Per non-blank line: the campaign job index, or -1 with the rejection
  // message (a bad line still gets its record, like in serve mode).
  std::vector<long> line_job;
  std::vector<std::string> line_error;
  std::string line;
  while (std::getline(in, line)) {
    if (blankLine(line)) continue;
    try {
      const std::size_t job = campaign.addSpec(parseJobSpec(line));
      line_job.push_back(static_cast<long>(job));
      line_error.emplace_back();
    } catch (const ConfigError& e) {
      line_job.push_back(-1);
      line_error.emplace_back(e.what());
    }
  }

  RunnerOptions runner;
  runner.jobs = opts.jobs;
  const CampaignResult res = runCampaign(campaign, runner);

  std::ofstream file_out;
  std::ostream* out = &std::cout;
  if (!opts.jsonl_path.empty()) {
    file_out.open(opts.jsonl_path);
    if (!file_out) {
      throw IoError("cannot open for writing: " + opts.jsonl_path);
    }
    out = &file_out;
  }
  for (std::size_t i = 0; i < line_job.size(); ++i) {
    if (line_job[i] < 0) {
      *out << specErrorJson(i, line_error[i]) << '\n';
    } else {
      *out << jobRecordJson(
                  res.outcomes[static_cast<std::size_t>(line_job[i])], i)
           << '\n';
    }
  }
  if (!opts.json_path.empty()) {
    saveCampaignJson(opts.json_path, res, "specs");
  }
  std::cerr << "ddsim: ran " << res.outcomes.size() << " spec jobs ("
            << res.failureCount() << " failed, "
            << (line_job.size() - res.outcomes.size()) << " rejected) on "
            << res.jobs_used << (res.jobs_used == 1 ? " thread" : " threads")
            << ", " << campaign.distinctConfigCount()
            << " distinct configs\n";
  return 0;
}

Dataflow buildGraph(const CliExperiment& ex, const KeyValueConfig& kv) {
  if (ex.graph == "paper") return makePaperDataflow();
  if (ex.graph == "diamond") return makeDiamondDataflow();
  const auto length =
      static_cast<std::size_t>(kv.getInt("chain_length", 4));
  return makeChainDataflow(length, 2);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions opts = parseArgs(argc, argv);
    if (opts.help) {
      printUsage(std::cout);
      return 0;
    }
    if (opts.serve || !opts.specs_path.empty()) {
      if (!opts.config_path.empty()) {
        // A mode conflict is a usage error, not a config error.
        std::cerr << "ddsim: spec modes (--serve/--specs) do not take a "
                     "config file\n";
        return 2;
      }
      return opts.serve ? runServe(opts) : runSpecBatch(opts);
    }
    if (opts.config_path.empty()) {
      printUsage(std::cerr);
      return 2;
    }

    const auto kv = dds::KeyValueConfig::load(opts.config_path);
    std::vector<std::string> notes;
    const auto ex = dds::experimentFromConfig(kv, &notes);
    for (const auto& note : notes) std::cerr << "ddsim: " << note << '\n';
    const dds::Dataflow df = buildGraph(ex, kv);

    std::cout << "dataflow '" << df.name() << "': " << df.peCount()
              << " PEs, " << df.totalAlternateCount() << " alternates; "
              << "rate " << ex.config.workload.mean_rate << " msg/s ("
              << dds::toString(ex.config.workload.profile) << "), horizon "
              << ex.config.horizon_s / dds::kSecondsPerHour << " h, sigma "
              << dds::SimulationEngine(df, ex.config).sigma() << "\n\n";

    dds::Campaign campaign;
    campaign.addPolicySweep(df, ex.config, ex.schedulers);
    if (!opts.trace_path.empty()) {
      campaign.setTracePaths(opts.trace_path);
    }
    dds::RunnerOptions runner;
    runner.jobs = opts.jobs;
    const dds::CampaignResult res = dds::runCampaign(campaign, runner);
    res.throwIfAnyFailed();

    std::vector<dds::ExperimentResult> results;
    results.reserve(res.outcomes.size());
    for (const auto& outcome : res.outcomes) {
      results.push_back(outcome.result);
      if (!ex.output_csv.empty()) {
        const std::string path =
            ex.output_csv + "." + outcome.result.scheduler_name + ".csv";
        dds::saveCsv(path, dds::intervalSeriesCsv(outcome.result.run));
        std::cout << "wrote " << path << '\n';
      }
    }
    std::cout << dds::summaryTable(results).render();
    std::cout << "\n(" << res.outcomes.size() << " runs on "
              << res.jobs_used << (res.jobs_used == 1 ? " thread, " : " threads, ")
              << res.wall_s << " s)\n";

    if (!opts.json_path.empty()) {
      dds::saveCampaignJson(opts.json_path, res, df.name());
      std::cout << "wrote " << opts.json_path << '\n';
    }
    if (!opts.jsonl_path.empty()) {
      std::ofstream jsonl(opts.jsonl_path);
      if (!jsonl) throw dds::IoError("cannot open for writing: " + opts.jsonl_path);
      jsonl << dds::campaignJsonl(res);
      std::cout << "wrote " << opts.jsonl_path << '\n';
    }
    if (!opts.trace_path.empty()) {
      for (const auto& job : campaign.jobs()) {
        std::cout << "wrote " << job.trace_path << '\n';
      }
    }
    return 0;
  } catch (const dds::ConfigError& e) {
    // A user mistake in the config file: one clean line, no source noise.
    std::cerr << "ddsim: config error: " << e.what() << '\n';
    return 1;
  } catch (const dds::IoError& e) {
    std::cerr << "ddsim: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "ddsim: error: " << e.what() << '\n';
    return 1;
  } catch (...) {
    std::cerr << "ddsim: unknown error\n";
    return 1;
  }
}
