// ddsim — run dynamic-dataflow experiments from a config file.
//
//   ddsim [options] experiment.conf
//
// Options:
//   --jobs N      run the schedulers on N worker threads (default: all
//                 hardware threads; 1 = serial). Results are identical
//                 at any job count — only the wall clock changes.
//   --json FILE   write the campaign results as a JSON document.
//   --trace FILE  stream each run's event trace as JSONL (one file per
//                 scheduler when the config runs several); inspect the
//                 files with the ddtrace tool.
//   --help        print usage and exit.
//
// The config format is documented in dds/config/config_file.hpp; see
// tools/example.conf for a ready-made experiment. Prints a summary row
// per scheduler and, when `output_csv` is set, writes the per-interval
// series of each run as `<output_csv>.<scheduler>.csv`.
#include <iostream>
#include <string>
#include <vector>

#include "dds/config/config_file.hpp"
#include "dds/core/report.hpp"
#include "dds/dds.hpp"

namespace {

using namespace dds;

struct CliOptions {
  std::string config_path;
  std::string json_path;
  std::string trace_path;
  std::size_t jobs = 0;  ///< 0 = hardware concurrency.
  bool help = false;
};

void printUsage(std::ostream& out) {
  out << "usage: ddsim [options] <config-file>\n"
         "  --jobs N      worker threads for the scheduler runs\n"
         "                (default: all hardware threads; 1 = serial)\n"
         "  --json FILE   write campaign results as JSON\n"
         "  --trace FILE  stream each run's event trace as JSONL\n"
         "                (per-scheduler files FILE.<label> when the\n"
         "                config runs several; inspect with ddtrace)\n"
         "  --help        show this message\n"
         "schedulers (config `scheduler = ...`):";
  // The list is generated from the registry so --help can never drift
  // from the policies the binary actually knows.
  for (const SchedulerKind kind : allSchedulerKinds()) {
    out << ' ' << schedulerName(kind);
  }
  out << "\nconfig families: workload.* fault.* elasticity.* resilience.*\n"
         "see tools/example.conf for the config format\n";
}

/// Parses argv; throws ConfigError on malformed flags.
CliOptions parseArgs(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) throw ConfigError("--jobs requires a count");
      const std::string v = argv[++i];
      try {
        const long n = std::stol(v);
        if (n < 1) throw ConfigError("--jobs must be >= 1, got '" + v + "'");
        opts.jobs = static_cast<std::size_t>(n);
      } catch (const std::logic_error&) {
        throw ConfigError("--jobs is not a number: '" + v + "'");
      }
    } else if (arg == "--json") {
      if (i + 1 >= argc) throw ConfigError("--json requires a file path");
      opts.json_path = argv[++i];
    } else if (arg == "--trace") {
      if (i + 1 >= argc) throw ConfigError("--trace requires a file path");
      opts.trace_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      throw ConfigError("unknown option: '" + arg + "'");
    } else if (opts.config_path.empty()) {
      opts.config_path = arg;
    } else {
      throw ConfigError("more than one config file given");
    }
  }
  return opts;
}

Dataflow buildGraph(const CliExperiment& ex, const KeyValueConfig& kv) {
  if (ex.graph == "paper") return makePaperDataflow();
  if (ex.graph == "diamond") return makeDiamondDataflow();
  const auto length =
      static_cast<std::size_t>(kv.getInt("chain_length", 4));
  return makeChainDataflow(length, 2);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions opts = parseArgs(argc, argv);
    if (opts.help) {
      printUsage(std::cout);
      return 0;
    }
    if (opts.config_path.empty()) {
      printUsage(std::cerr);
      return 2;
    }

    const auto kv = dds::KeyValueConfig::load(opts.config_path);
    std::vector<std::string> notes;
    const auto ex = dds::experimentFromConfig(kv, &notes);
    for (const auto& note : notes) std::cerr << "ddsim: " << note << '\n';
    const dds::Dataflow df = buildGraph(ex, kv);

    std::cout << "dataflow '" << df.name() << "': " << df.peCount()
              << " PEs, " << df.totalAlternateCount() << " alternates; "
              << "rate " << ex.config.workload.mean_rate << " msg/s ("
              << dds::toString(ex.config.workload.profile) << "), horizon "
              << ex.config.horizon_s / dds::kSecondsPerHour << " h, sigma "
              << dds::SimulationEngine(df, ex.config).sigma() << "\n\n";

    dds::Campaign campaign;
    campaign.addPolicySweep(df, ex.config, ex.schedulers);
    if (!opts.trace_path.empty()) {
      campaign.setTracePaths(opts.trace_path);
    }
    dds::RunnerOptions runner;
    runner.jobs = opts.jobs;
    const dds::CampaignResult res = dds::runCampaign(campaign, runner);
    res.throwIfAnyFailed();

    std::vector<dds::ExperimentResult> results;
    results.reserve(res.outcomes.size());
    for (const auto& outcome : res.outcomes) {
      results.push_back(outcome.result);
      if (!ex.output_csv.empty()) {
        const std::string path =
            ex.output_csv + "." + outcome.result.scheduler_name + ".csv";
        dds::saveCsv(path, dds::intervalSeriesCsv(outcome.result.run));
        std::cout << "wrote " << path << '\n';
      }
    }
    std::cout << dds::summaryTable(results).render();
    std::cout << "\n(" << res.outcomes.size() << " runs on "
              << res.jobs_used << (res.jobs_used == 1 ? " thread, " : " threads, ")
              << res.wall_s << " s)\n";

    if (!opts.json_path.empty()) {
      dds::saveCampaignJson(opts.json_path, res, df.name());
      std::cout << "wrote " << opts.json_path << '\n';
    }
    if (!opts.trace_path.empty()) {
      for (const auto& job : campaign.jobs()) {
        std::cout << "wrote " << job.trace_path << '\n';
      }
    }
    return 0;
  } catch (const dds::ConfigError& e) {
    // A user mistake in the config file: one clean line, no source noise.
    std::cerr << "ddsim: config error: " << e.what() << '\n';
    return 1;
  } catch (const dds::IoError& e) {
    std::cerr << "ddsim: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "ddsim: error: " << e.what() << '\n';
    return 1;
  } catch (...) {
    std::cerr << "ddsim: unknown error\n";
    return 1;
  }
}
