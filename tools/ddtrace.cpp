// ddtrace — analyze a JSONL event trace written by `ddsim --trace` (or
// any JsonlTraceSink).
//
//   ddtrace [options] trace.jsonl
//
// Options:
//   --check    instead of analyzing, re-serialize every line and verify
//              byte identity (proves the reader/writer round-trip and
//              that the file is a faithful dds trace). Exit 1 on the
//              first mismatching line.
//   --metrics  treat the input as campaign JSON (saveCampaignJson /
//              BENCH_*.json) instead of a trace and print the per-run
//              fluid-kernel table: interval throughput, kernel rebuilds,
//              and rebuilds amortized per interval.
//   --help     print usage and exit.
//
// Default output: the run header, a per-interval timeline table
// (rate, Omega, Omega-bar, Gamma, rho utilization, mu, active VMs/cores,
// and discrete-event counts per interval), an event-count summary, and
// a profit breakdown recomputing Theta = Gamma-bar - sigma * mu from
// the trace alone.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dds/common/error.hpp"
#include "dds/common/json_value.hpp"
#include "dds/common/table.hpp"
#include "dds/obs/jsonl_sink.hpp"
#include "dds/obs/timeline.hpp"
#include "dds/obs/trace_reader.hpp"

namespace {

using namespace dds;

struct CliOptions {
  std::string trace_path;
  bool check = false;
  bool metrics = false;
  bool help = false;
};

void printUsage(std::ostream& out) {
  out << "usage: ddtrace [options] <trace.jsonl | campaign.json>\n"
         "  --check    verify every line re-serializes byte-identically\n"
         "  --metrics  input is campaign JSON; print the per-run\n"
         "             fluid-kernel table (throughput, rebuilds)\n"
         "  --help     show this message\n"
         "traces come from `ddsim --trace FILE <config>`; campaign JSON\n"
         "from saveCampaignJson (the BENCH_*.json files)\n";
}

CliOptions parseArgs(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--check") {
      opts.check = true;
    } else if (arg == "--metrics") {
      opts.metrics = true;
    } else if (!arg.empty() && arg[0] == '-') {
      throw PreconditionError("unknown option: '" + arg + "'");
    } else if (opts.trace_path.empty()) {
      opts.trace_path = arg;
    } else {
      throw PreconditionError("more than one trace file given");
    }
  }
  return opts;
}

/// Round-trip every line through parse + re-serialize; returns the count
/// of verified lines, throws IoError on the first divergence.
std::size_t checkRoundTrip(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  std::size_t checked = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const obs::TraceEvent event = obs::parseTraceEventJson(line);
    const std::string again = obs::traceEventJson(event);
    if (again != line) {
      throw IoError("line " + std::to_string(line_no) +
                    " does not round-trip:\n  file:   " + line +
                    "\n  rewrite: " + again);
    }
    ++checked;
  }
  return checked;
}

/// `obj[key]` as a double, or `fallback` when absent / not a number.
double numberOr(const JsonObject& obj, const std::string& key,
                double fallback) {
  const JsonValue* v = jsonFind(obj, key);
  if (v == nullptr) return fallback;
  const double* n = v->asNumber();
  return n == nullptr ? fallback : *n;
}

/// Campaign-JSON mode: one row per run with the fluid-kernel counters.
/// Runs without fluid metrics (event-backend jobs, timing-stripped
/// documents) render as "-" rather than being dropped.
void printCampaignMetrics(const std::string& text) {
  const JsonValue root = parseJson(text);
  const JsonObject* top = root.asObject();
  if (top == nullptr) throw IoError("campaign JSON: top level not an object");
  if (const JsonValue* name = jsonFind(*top, "name")) {
    if (const std::string* s = name->asString()) {
      std::cout << "campaign: " << *s << '\n';
    }
  }
  const JsonValue* runs = jsonFind(*top, "runs");
  const JsonArray* arr = runs == nullptr ? nullptr : runs->asArray();
  if (arr == nullptr) throw IoError("campaign JSON: no 'runs' array");

  TextTable table({"label", "scheduler", "seed", "ok", "intervals", "omega",
                   "ivals/s", "rebuilds", "reb/ival"});
  for (const JsonValue& run : *arr) {
    const JsonObject* r = run.asObject();
    if (r == nullptr) continue;
    std::string label = "?";
    std::string scheduler = "?";
    if (const JsonValue* v = jsonFind(*r, "label")) {
      if (const std::string* s = v->asString()) label = *s;
    }
    if (const JsonValue* v = jsonFind(*r, "scheduler")) {
      if (const std::string* s = v->asString()) scheduler = *s;
    }
    const double seed = numberOr(*r, "seed", 0.0);
    const JsonValue* okv = jsonFind(*r, "ok");
    const bool ok = okv != nullptr && okv->asBool() != nullptr &&
                    *okv->asBool();
    const double intervals = numberOr(*r, "intervals", 0.0);
    const double omega = numberOr(*r, "omega", 0.0);

    double per_s = -1.0;
    double rebuilds = -1.0;
    if (const JsonValue* mv = jsonFind(*r, "metrics")) {
      if (const JsonObject* metrics = mv->asObject()) {
        if (const JsonValue* g = jsonFind(*metrics, "fluid.intervals_per_s")) {
          if (const JsonObject* go = g->asObject()) {
            per_s = numberOr(*go, "value", -1.0);
          }
        }
        if (const JsonValue* c = jsonFind(*metrics, "fluid.kernel_rebuilds")) {
          if (const JsonObject* co = c->asObject()) {
            rebuilds = numberOr(*co, "count", -1.0);
          }
        }
      }
    }
    table.addRow(
        {label, scheduler, TextTable::num(seed, 0), ok ? "yes" : "no",
         TextTable::num(intervals, 0),
         ok ? TextTable::num(omega, 3) : "-",
         per_s >= 0.0 ? TextTable::num(per_s, 0) : "-",
         rebuilds >= 0.0 ? TextTable::num(rebuilds, 0) : "-",
         rebuilds >= 0.0 && intervals > 0.0
             ? TextTable::num(rebuilds / intervals, 3)
             : "-"});
  }
  std::cout << table.render();
}

void printAnalysis(const obs::TraceAnalysis& a) {
  if (a.has_header) {
    std::cout << "run: scheduler " << a.header.scheduler << ", seed "
              << a.header.seed << ", backend " << a.header.backend
              << ", horizon " << a.header.horizon_s << " s @ "
              << a.header.interval_s << " s intervals\n"
              << "     sigma " << a.header.sigma << ", omega target "
              << a.header.omega_target << " (epsilon "
              << a.header.epsilon << ")\n\n";
  } else {
    std::cout << "run: (no header event in trace)\n\n";
  }

  TextTable timeline({"int", "t_s", "rate", "omega", "omega_bar", "gamma",
                      "rho", "mu", "vms", "cores", "viol", "alt", "vm+",
                      "vm-", "rej", "fault", "quar", "dec", "prov", "noti",
                      "pre", "mig"});
  for (const obs::TimelineRow& r : a.rows) {
    timeline.addRow({std::to_string(r.interval), TextTable::num(r.t, 0),
                     TextTable::num(r.input_rate, 2),
                     TextTable::num(r.omega, 3),
                     TextTable::num(r.omega_bar, 3),
                     TextTable::num(r.gamma, 3),
                     TextTable::num(r.utilization, 3),
                     TextTable::num(r.cost, 2),
                     std::to_string(r.active_vms),
                     std::to_string(r.allocated_cores),
                     r.violated ? "*" : "",
                     std::to_string(r.alternate_switches),
                     std::to_string(r.vm_acquires),
                     std::to_string(r.vm_releases),
                     std::to_string(r.acquisition_failures),
                     std::to_string(r.faults),
                     std::to_string(r.quarantines),
                     std::to_string(r.decisions),
                     std::to_string(r.provisioning_completions),
                     std::to_string(r.preemption_notices),
                     std::to_string(r.preemptions),
                     std::to_string(r.migrations)});
  }
  std::cout << timeline.render() << '\n';

  TextTable events({"event", "count"});
  for (const auto& [name, count] : a.event_counts) {
    events.addRow({name, std::to_string(count)});
  }
  std::cout << events.render() << '\n';

  // Profit breakdown: Theta recomputed from the trace alone.
  const double sigma = a.has_header ? a.header.sigma : 0.0;
  TextTable profit({"quantity", "value"});
  profit.addRow({"Gamma_bar (avg value)", TextTable::num(a.average_gamma, 4)});
  profit.addRow({"Omega_bar (avg throughput)",
                 TextTable::num(a.average_omega, 4)});
  profit.addRow({"mu (total cost, $)", TextTable::num(a.final_cost, 4)});
  profit.addRow({"sigma", TextTable::num(sigma, 6)});
  profit.addRow({"sigma * mu", TextTable::num(sigma * a.final_cost, 4)});
  profit.addRow({"Theta = Gamma_bar - sigma*mu", TextTable::num(a.theta, 4)});
  profit.addRow({"omega violations",
                 std::to_string(a.violations)});
  profit.addRow({"peak VMs", TextTable::num(a.peak_vms, 0)});
  profit.addRow({"peak cores", TextTable::num(a.peak_cores, 0)});
  std::cout << profit.render() << '\n';

  // Elasticity summary: how fast the run recovered each time Omega
  // dropped below the target, and how long it spent in violation total.
  TextTable elasticity({"elasticity", "value"});
  elasticity.addRow(
      {"recovery episodes", std::to_string(a.recovery_episodes)});
  elasticity.addRow(
      {"mean time-to-recover (s)", TextTable::num(a.mean_recovery_s, 1)});
  elasticity.addRow(
      {"95p time-to-recover (s)", TextTable::num(a.p95_recovery_s, 1)});
  elasticity.addRow(
      {"SLO-violation seconds", TextTable::num(a.slo_violation_s, 1)});
  std::cout << elasticity.render();

  // Forecast tables (only for runs that had forecasting on): one-step
  // predicted vs realized rate per interval, accuracy summary, and
  // whether each pre-acquisition's VMs were ready before their peak.
  if (a.forecast_samples > 0) {
    TextTable fc({"int", "predicted", "realized", "err%"});
    for (const obs::TimelineRow& r : a.rows) {
      if (!r.has_prediction) continue;
      const double err =
          r.input_rate > 1e-6
              ? 100.0 * (r.predicted_rate - r.input_rate) / r.input_rate
              : 0.0;
      fc.addRow({std::to_string(r.interval),
                 TextTable::num(r.predicted_rate, 2),
                 TextTable::num(r.input_rate, 2), TextTable::num(err, 1)});
    }
    std::cout << '\n' << fc.render() << '\n';

    TextTable summary({"forecast", "value"});
    summary.addRow({"model", a.forecast_model});
    summary.addRow({"samples", std::to_string(a.forecast_samples)});
    summary.addRow({"MAPE (%)", TextTable::num(100.0 * a.forecast_mape, 1)});
    summary.addRow({"bias (msgs/s)", TextTable::num(a.forecast_bias, 3)});
    summary.addRow({"pre-acquisitions",
                    std::to_string(a.preacquires_beat +
                                   a.preacquires_missed)});
    summary.addRow(
        {"  beat their peak", std::to_string(a.preacquires_beat)});
    summary.addRow(
        {"  missed (peak landed first)",
         std::to_string(a.preacquires_missed)});
    std::cout << summary.render();

    if (!a.preacquires.empty()) {
      TextTable pa({"int", "peak_int", "peak_rate", "lead_s", "vms",
                    "ready_by", "beat"});
      for (const obs::PreAcquireRecord& p : a.preacquires) {
        pa.addRow({std::to_string(p.interval),
                   std::to_string(p.peak_interval),
                   TextTable::num(p.peak_rate, 2),
                   TextTable::num(p.lead_s, 0), std::to_string(p.vms),
                   TextTable::num(p.ready_by, 0), p.beat_peak ? "*" : ""});
      }
      std::cout << '\n' << pa.render();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions opts = parseArgs(argc, argv);
    if (opts.help) {
      printUsage(std::cout);
      return 0;
    }
    if (opts.trace_path.empty()) {
      printUsage(std::cerr);
      return 2;
    }
    std::ifstream in(opts.trace_path, std::ios::binary);
    if (!in) throw IoError("cannot open trace file: " + opts.trace_path);

    if (opts.check) {
      const std::size_t n = checkRoundTrip(in);
      std::cout << "ok: " << n << " events round-trip byte-identically\n";
      return 0;
    }

    if (opts.metrics) {
      std::ostringstream buf;
      buf << in.rdbuf();
      printCampaignMetrics(buf.str());
      return 0;
    }

    const std::vector<obs::TraceEvent> events = obs::readTraceJsonl(in);
    std::cout << opts.trace_path << ": " << events.size() << " events\n";
    printAnalysis(obs::analyzeTrace(events));
    return 0;
  } catch (const dds::IoError& e) {
    std::cerr << "ddtrace: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "ddtrace: error: " << e.what() << '\n';
    return 1;
  } catch (...) {
    std::cerr << "ddtrace: unknown error\n";
    return 1;
  }
}
