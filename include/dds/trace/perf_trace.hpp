// Performance trace time series (paper §4, §8.1, Figs. 2-3).
//
// A PerfTrace is a uniformly sampled series of performance coefficients
// (dimensionless multipliers around 1.0) such as the observed-to-rated CPU
// speed ratio of a VM, or the observed-to-rated bandwidth ratio between a
// VM pair. Traces are replayed cyclically: queries beyond the trace length
// wrap around, matching the paper's replay of a 4-day window.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "dds/common/error.hpp"
#include "dds/common/stats.hpp"
#include "dds/common/time.hpp"

namespace dds {

/// A uniformly sampled, cyclically replayed coefficient series.
class PerfTrace {
 public:
  PerfTrace(std::vector<double> samples, SimTime sample_period_s)
      : samples_(std::move(samples)), period_(sample_period_s) {
    DDS_REQUIRE(!samples_.empty(), "trace needs at least one sample");
    DDS_REQUIRE(period_ > 0.0, "sample period must be positive");
    for (double v : samples_) {
      DDS_REQUIRE(v >= 0.0, "trace samples must be non-negative");
    }
  }

  /// A flat trace with a single value (the no-variability scenario).
  static PerfTrace constant(double value) { return PerfTrace({value}, 1.0); }

  [[nodiscard]] std::size_t sampleCount() const { return samples_.size(); }
  [[nodiscard]] SimTime samplePeriod() const { return period_; }
  [[nodiscard]] SimTime duration() const {
    return static_cast<SimTime>(samples_.size()) * period_;
  }

  [[nodiscard]] const std::vector<double>& samples() const {
    return samples_;
  }

  /// Value at absolute time `t` (>= 0), wrapping past the trace end.
  /// Nearest-sample (zero-order hold) semantics.
  [[nodiscard]] double at(SimTime t) const {
    DDS_REQUIRE(t >= 0.0, "trace time must be non-negative");
    const auto idx =
        static_cast<std::size_t>(t / period_) % samples_.size();
    return samples_[idx];
  }

  /// Value at time `offset + t`, wrapping. Used by the replayer, which
  /// assigns each VM a random window into a shared trace (§8.1).
  [[nodiscard]] double atOffset(SimTime offset, SimTime t) const {
    return at(offset + t);
  }

  /// Largest time `u` such that every query atOffset(offset, t') with
  /// t <= t' < u lands on the same sample as atOffset(offset, t);
  /// infinity for a single-sample (constant) trace. Lets callers cache a
  /// coefficient and recompute only at zero-order-hold boundaries.
  [[nodiscard]] SimTime validUntilAtOffset(SimTime offset, SimTime t) const {
    if (samples_.size() == 1) {
      return std::numeric_limits<SimTime>::infinity();
    }
    const double k = std::floor((offset + t) / period_);
    SimTime until = (k + 1.0) * period_ - offset;
    // Floating-point guard: (offset + until) / period_ may round across
    // the bin edge either way, and the rounded sum offset + x advances in
    // steps of ulp(offset + x) — far coarser than ulp(x) when the replay
    // offset is large. Retreat a few of those coarse steps so everything
    // below `until` still maps to bin k (conservative but exact; a query
    // landing in the shaved sliver just recomputes), then verify once and
    // only walk in the rare case the band was not enough.
    const double boundary_sum = offset + until;
    const double sum_step =
        std::nextafter(boundary_sum,
                       std::numeric_limits<double>::infinity()) -
        boundary_sum;
    until -= 4.0 * sum_step;
    while (until > t &&
           std::floor((offset + std::nextafter(until, t)) / period_) > k) {
      until = std::nextafter(until, t);
    }
    // Degenerate rounding (until collapsed onto t): never cache.
    return until > t ? until : t;
  }

  /// Descriptive statistics over all samples (Figs. 2-3 summaries).
  [[nodiscard]] RunningStats stats() const {
    RunningStats s;
    for (double v : samples_) s.add(v);
    return s;
  }

 private:
  std::vector<double> samples_;
  SimTime period_;
};

}  // namespace dds
