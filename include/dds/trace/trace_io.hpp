// CSV persistence for performance traces.
//
// Lets users replay real traces gathered from their own cloud (the paper's
// FutureGrid setup) instead of the synthetic generator: gather coefficient
// samples, store them as `time_s,coefficient` CSV, and load them here.
#pragma once

#include <string>

#include "dds/trace/perf_trace.hpp"

namespace dds {

/// Serialize a trace as CSV with columns `time_s,coefficient`.
[[nodiscard]] std::string traceToCsv(const PerfTrace& trace);

/// Parse a trace from CSV produced by traceToCsv (or hand-gathered data
/// with the same columns). Sample period is inferred from the first two
/// rows; rows must be uniformly spaced. Throws IoError on malformed input.
[[nodiscard]] PerfTrace traceFromCsv(const std::string& text);

/// Convenience file wrappers.
void saveTrace(const std::string& path, const PerfTrace& trace);
[[nodiscard]] PerfTrace loadTrace(const std::string& path);

}  // namespace dds
