// Synthetic cloud-performance trace generation.
//
// SUBSTITUTION (see DESIGN.md): the paper replays 4-day CPU and network
// traces gathered on the FutureGrid private cloud (Figs. 2-3). Those traces
// are not public, so we synthesize traces with the characteristics the
// paper describes: fluctuation around the rated mean from multi-tenant
// interference (AR(1) jitter), slow diurnal drift, and abrupt level shifts
// when a noisy neighbour arrives or leaves. The heuristics only observe
// traces through the monitoring interface, so matching these statistical
// features preserves the experimental behaviour.
#pragma once

#include <vector>

#include "dds/common/rng.hpp"
#include "dds/common/time.hpp"
#include "dds/trace/perf_trace.hpp"

namespace dds {

/// Knobs for one synthetic coefficient trace.
struct TraceGenParams {
  double mean = 1.0;          ///< long-run mean coefficient.
  double jitter_sd = 0.04;    ///< innovation std-dev of the AR(1) jitter.
  double jitter_ar = 0.9;     ///< AR(1) pole in [0, 1).
  double diurnal_amplitude = 0.05;  ///< amplitude of the 24 h sinusoid.
  double shift_probability = 0.002;  ///< per-sample chance of a level shift.
  double shift_sd = 0.12;    ///< magnitude std-dev of a level shift.
  double min_value = 0.4;    ///< clamp floor (coefficients stay positive).
  double max_value = 1.3;    ///< clamp ceiling.

  void validate() const;
};

/// Parameters matching the paper's CPU-performance observations (Fig. 2):
/// coefficients near 1.0 with ~5-15% relative deviation and occasional
/// sustained degradations.
[[nodiscard]] TraceGenParams cpuTraceParams();

/// Parameters for inter-VM latency coefficients (Fig. 3, left): spikier
/// than CPU, with heavier shifts.
[[nodiscard]] TraceGenParams latencyTraceParams();

/// Parameters for inter-VM bandwidth coefficients (Fig. 3, right): dips
/// below rated bandwidth under contention, never above ~rated.
[[nodiscard]] TraceGenParams bandwidthTraceParams();

/// Generate one trace of `duration_s / sample_period_s` samples.
[[nodiscard]] PerfTrace generateTrace(const TraceGenParams& params,
                                      SimTime duration_s,
                                      SimTime sample_period_s, Rng& rng);

/// Generate a pool of independent traces (one per physical placement).
[[nodiscard]] std::vector<PerfTrace> generateTracePool(
    const TraceGenParams& params, std::size_t count, SimTime duration_s,
    SimTime sample_period_s, Rng& rng);

}  // namespace dds
