// Statistical characterization of performance traces.
//
// The Fig. 2-3 reproduction benches — and anyone replaying their own cloud
// measurements — need more than mean/stddev to judge whether a trace shows
// the paper's "performance variability over time and space":
//  * autocorrelation tells whether deviations are sustained (noisy
//    neighbours parking on a host) or white noise;
//  * rolling relative deviation reproduces the paper's Fig. 2 lower panel
//    ("relative deviation of CPU performance from its mean");
//  * histograms summarize the marginal distribution for quick comparison
//    between synthetic and real traces.
#pragma once

#include <cstddef>
#include <vector>

#include "dds/trace/perf_trace.hpp"

namespace dds {

/// Sample autocorrelation of the trace at integer lag `k` (in samples);
/// 1.0 at lag 0 by definition. Requires k < sampleCount().
[[nodiscard]] double autocorrelation(const PerfTrace& trace, std::size_t k);

/// Smallest lag (in samples) at which autocorrelation falls below `level`;
/// returns sampleCount() when it never does. A large decorrelation lag
/// means degradations are *sustained* — the regime that matters for
/// adaptation (white noise averages out within an interval).
[[nodiscard]] std::size_t decorrelationLag(const PerfTrace& trace,
                                           double level = 0.5);

/// Per-sample relative deviation from the trace mean, (x - mean) / mean.
[[nodiscard]] std::vector<double> relativeDeviation(const PerfTrace& trace);

/// Rolling mean over a centred window of `window` samples (clamped at the
/// edges). window must be >= 1.
[[nodiscard]] std::vector<double> rollingMean(const PerfTrace& trace,
                                              std::size_t window);

/// Equal-width histogram of the samples over [min, max] with `bins` bins;
/// returns per-bin counts. bins must be >= 1.
[[nodiscard]] std::vector<std::size_t> histogram(const PerfTrace& trace,
                                                 std::size_t bins);

/// Fraction of samples below `threshold` — e.g. the fraction of probe
/// intervals in which a VM ran below 80 % of rated speed.
[[nodiscard]] double fractionBelow(const PerfTrace& trace, double threshold);

}  // namespace dds
