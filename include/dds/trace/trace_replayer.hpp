// Trace replay over live VM instances (paper §8.1).
//
// "For individual experimental runs, we assign a random time period from
// the traces for each active VM to replay. We then multiply that
// coefficient with the rated performance of the active VM to obtain its
// instantaneous runtime performance."
//
// The replayer owns pools of CPU / latency / bandwidth coefficient traces
// and deterministically assigns each VM (or VM pair) a trace plus a random
// replay offset the first time it is queried. Multiplying by rated specs
// is the MonitoringService's job.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dds/common/ids.hpp"
#include "dds/common/rng.hpp"
#include "dds/common/time.hpp"
#include "dds/trace/perf_trace.hpp"
#include "dds/trace/trace_gen.hpp"

namespace dds {

/// A coefficient plus the time at which it must be re-queried: the value
/// is exact (zero-order hold) for every query in [query time, valid_until).
struct CoeffSample {
  double value = 1.0;
  SimTime valid_until = 0.0;
};

/// Deterministic per-VM and per-VM-pair coefficient source.
class TraceReplayer {
 public:
  TraceReplayer(std::vector<PerfTrace> cpu_pool,
                std::vector<PerfTrace> latency_pool,
                std::vector<PerfTrace> bandwidth_pool, std::uint64_t seed);

  /// A replayer whose every coefficient is exactly 1.0 (no variability).
  static TraceReplayer ideal();

  /// Pools generated with the FutureGrid-like parameters from trace_gen.
  /// `duration_s` should cover the longest experiment (traces wrap).
  static TraceReplayer futureGridLike(std::uint64_t seed,
                                      SimTime duration_s = 4.0 * 24.0 *
                                                           kSecondsPerHour,
                                      SimTime sample_period_s = 300.0,
                                      std::size_t pool_size = 8);

  /// Observed-to-rated CPU speed coefficient for one VM at time `t`.
  [[nodiscard]] double cpuCoeff(VmId vm, SimTime t);

  /// Observed-to-nominal latency coefficient between two distinct VMs.
  [[nodiscard]] double latencyCoeff(VmId a, VmId b, SimTime t);

  /// Observed-to-rated bandwidth coefficient between two distinct VMs.
  [[nodiscard]] double bandwidthCoeff(VmId a, VmId b, SimTime t);

  /// Sample variants: same value and same (lazy, RNG-consuming) trace
  /// assignment as the plain queries, plus the zero-order-hold validity
  /// window — callers may cache the value for any t' in [t, valid_until)
  /// without drifting from a per-query replay.
  [[nodiscard]] CoeffSample cpuCoeffSample(VmId vm, SimTime t);
  [[nodiscard]] CoeffSample latencyCoeffSample(VmId a, VmId b, SimTime t);
  [[nodiscard]] CoeffSample bandwidthCoeffSample(VmId a, VmId b, SimTime t);

 private:
  struct Assignment {
    std::size_t trace_index;
    SimTime offset;
  };

  Assignment assign(const std::vector<PerfTrace>& pool);
  static std::uint64_t pairKey(VmId a, VmId b);

  std::vector<PerfTrace> cpu_pool_;
  std::vector<PerfTrace> latency_pool_;
  std::vector<PerfTrace> bandwidth_pool_;
  Rng rng_;
  std::unordered_map<VmId, Assignment> cpu_assignments_;
  std::unordered_map<std::uint64_t, Assignment> latency_assignments_;
  std::unordered_map<std::uint64_t, Assignment> bandwidth_assignments_;
};

}  // namespace dds
