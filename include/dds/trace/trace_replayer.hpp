// Trace replay over live VM instances (paper §8.1).
//
// "For individual experimental runs, we assign a random time period from
// the traces for each active VM to replay. We then multiply that
// coefficient with the rated performance of the active VM to obtain its
// instantaneous runtime performance."
//
// The replayer owns pools of CPU / latency / bandwidth coefficient traces
// and deterministically assigns each VM (or VM pair) a trace plus a random
// replay offset the first time it is queried. Multiplying by rated specs
// is the MonitoringService's job.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dds/common/ids.hpp"
#include "dds/common/rng.hpp"
#include "dds/common/time.hpp"
#include "dds/trace/perf_trace.hpp"
#include "dds/trace/trace_gen.hpp"

namespace dds {

/// A coefficient plus the time at which it must be re-queried: the value
/// is exact (zero-order hold) for every query in [query time, valid_until).
struct CoeffSample {
  double value = 1.0;
  SimTime valid_until = 0.0;
};

/// The immutable trace arena a replayer reads from. Generating these
/// pools dominates replayer construction cost, so a campaign substrate
/// builds one arena per generation seed and shares it read-only across
/// every job with that seed; per-job mutability (the assignment RNG and
/// cursor maps) lives in TraceReplayer itself.
struct TracePools {
  std::vector<PerfTrace> cpu;
  std::vector<PerfTrace> latency;
  std::vector<PerfTrace> bandwidth;
};

/// Deterministic per-VM and per-VM-pair coefficient source.
class TraceReplayer {
 public:
  TraceReplayer(std::vector<PerfTrace> cpu_pool,
                std::vector<PerfTrace> latency_pool,
                std::vector<PerfTrace> bandwidth_pool, std::uint64_t seed);

  /// A replayer whose every coefficient is exactly 1.0 (no variability).
  static TraceReplayer ideal();

  /// Pools generated with the FutureGrid-like parameters from trace_gen.
  /// `duration_s` should cover the longest experiment (traces wrap).
  static TraceReplayer futureGridLike(std::uint64_t seed,
                                      SimTime duration_s = 4.0 * 24.0 *
                                                           kSecondsPerHour,
                                      SimTime sample_period_s = 300.0,
                                      std::size_t pool_size = 8);

  /// The pool set futureGridLike(seed, ...) would generate, as a shared
  /// immutable arena. overPools(makeFutureGridPools(seed), seed) is
  /// bit-identical to futureGridLike(seed) — same traces, same assignment
  /// RNG stream — without regenerating the pools per job.
  static std::shared_ptr<const TracePools> makeFutureGridPools(
      std::uint64_t seed,
      SimTime duration_s = 4.0 * 24.0 * kSecondsPerHour,
      SimTime sample_period_s = 300.0, std::size_t pool_size = 8);

  /// A replayer reading a shared arena with fresh per-job cursor state.
  /// `run_seed` is the experiment seed; the assignment-stream derivation
  /// matches futureGridLike so replay is bit-identical either way.
  static TraceReplayer overPools(std::shared_ptr<const TracePools> pools,
                                 std::uint64_t run_seed);

  /// Observed-to-rated CPU speed coefficient for one VM at time `t`.
  [[nodiscard]] double cpuCoeff(VmId vm, SimTime t);

  /// Observed-to-nominal latency coefficient between two distinct VMs.
  [[nodiscard]] double latencyCoeff(VmId a, VmId b, SimTime t);

  /// Observed-to-rated bandwidth coefficient between two distinct VMs.
  [[nodiscard]] double bandwidthCoeff(VmId a, VmId b, SimTime t);

  /// Sample variants: same value and same (lazy, RNG-consuming) trace
  /// assignment as the plain queries, plus the zero-order-hold validity
  /// window — callers may cache the value for any t' in [t, valid_until)
  /// without drifting from a per-query replay.
  [[nodiscard]] CoeffSample cpuCoeffSample(VmId vm, SimTime t);
  [[nodiscard]] CoeffSample latencyCoeffSample(VmId a, VmId b, SimTime t);
  [[nodiscard]] CoeffSample bandwidthCoeffSample(VmId a, VmId b, SimTime t);

 private:
  struct Assignment {
    std::size_t trace_index;
    SimTime offset;
  };

  TraceReplayer(std::shared_ptr<const TracePools> pools,
                std::uint64_t assignment_seed);

  Assignment assign(const std::vector<PerfTrace>& pool);
  static std::uint64_t pairKey(VmId a, VmId b);

  // Shared immutable arena; may be referenced by sibling jobs. All
  // mutable state below is per-instance.
  std::shared_ptr<const TracePools> pools_;
  Rng rng_;
  std::unordered_map<VmId, Assignment> cpu_assignments_;
  std::unordered_map<std::uint64_t, Assignment> latency_assignments_;
  std::unordered_map<std::uint64_t, Assignment> bandwidth_assignments_;
};

}  // namespace dds
