// Library version.
#pragma once

namespace dds {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

/// "major.minor.patch" of this build of the library.
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace dds
