// Data-center placement model (paper §4).
//
// "Different VM instances of the same resource class show different
// performance due to placement ... There is no control over or knowledge
// of the actual VM placement within the data center and, consequently,
// the network connection behavior between the VMs."
//
// PlacementModel assigns every VM a rack deterministically (the tenant
// cannot choose or observe it directly — only its network effects).
// VM pairs in the same rack enjoy higher bandwidth and lower latency than
// cross-rack pairs; the MonitoringService composes these factors with the
// temporal trace coefficients, giving the full "over time and space"
// variability the paper describes.
#pragma once

#include <cstdint>

#include "dds/common/error.hpp"
#include "dds/common/ids.hpp"

namespace dds {

/// Rack-level network locality factors.
struct PlacementConfig {
  int racks = 4;                    ///< racks in the (virtual) data center.
  double same_rack_bandwidth = 2.0; ///< bandwidth factor within a rack.
  double same_rack_latency = 0.5;   ///< latency factor within a rack.
  double cross_rack_bandwidth = 1.0;
  double cross_rack_latency = 1.0;

  void validate() const {
    DDS_REQUIRE(racks >= 1, "need at least one rack");
    DDS_REQUIRE(same_rack_bandwidth > 0.0 && cross_rack_bandwidth > 0.0,
                "bandwidth factors must be positive");
    DDS_REQUIRE(same_rack_latency > 0.0 && cross_rack_latency > 0.0,
                "latency factors must be positive");
  }
};

/// Deterministic rack assignment plus pairwise network factors.
class PlacementModel {
 public:
  PlacementModel(PlacementConfig config, std::uint64_t seed);

  /// Rack of `vm`, in [0, racks). Pure function of (seed, vm id) — stable
  /// across queries and runs.
  [[nodiscard]] int rackOf(VmId vm) const;

  [[nodiscard]] bool sameRack(VmId a, VmId b) const {
    return rackOf(a) == rackOf(b);
  }

  /// Multiplier applied to the observed bandwidth between two VMs.
  [[nodiscard]] double bandwidthFactor(VmId a, VmId b) const {
    return sameRack(a, b) ? config_.same_rack_bandwidth
                          : config_.cross_rack_bandwidth;
  }

  /// Multiplier applied to the observed latency between two VMs.
  [[nodiscard]] double latencyFactor(VmId a, VmId b) const {
    return sameRack(a, b) ? config_.same_rack_latency
                          : config_.cross_rack_latency;
  }

  [[nodiscard]] const PlacementConfig& config() const { return config_; }

 private:
  PlacementConfig config_;
  std::uint64_t seed_;
};

}  // namespace dds
