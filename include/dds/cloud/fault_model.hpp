// Cloud-turbulence interfaces (paper §9 future work, and the regime of
// "Toward Reliable and Rapid Elasticity for Streaming Dataflows on
// Clouds", Shukla & Simmhan).
//
// The fault machinery itself lives in src/faults/ (FaultPlan); these
// abstract interfaces sit in the cloud layer so that CloudProvider and
// MonitoringService can consult an installed fault model without the
// cloud library depending on the faults library. Schedulers never see the
// fault plan directly: turbulence surfaces only through
//  * the monitoring interface — degraded observed core power (stragglers,
//    provisioning lag) and partitioned links (beta -> 0, lambda -> inf);
//  * AcquisitionResult — CloudProvider::tryAcquire can reject a request
//    or deliver capacity that only comes online after a provisioning lag.
#pragma once

#include <cstdint>

#include "dds/common/ids.hpp"
#include "dds/common/time.hpp"

namespace dds {

struct ResourceClass;

/// Outcome of an elastic acquisition request. Rejections model IaaS
/// capacity errors / API failures; `ready_time` models startup delay:
/// the VM is billed from `t` but its cores deliver no observed power
/// until `ready_time` (the instance is still provisioning).
struct AcquisitionResult {
  bool accepted = false;
  VmId vm{0};               ///< valid only when `accepted`.
  SimTime ready_time = 0.0; ///< when the VM's capacity comes online.

  [[nodiscard]] bool ok() const { return accepted; }
};

/// Decides the fate of acquisition attempts. Implementations must be
/// deterministic: the n-th attempt of a run always resolves the same way
/// for a fixed seed, and the provisioning delay is a pure function of
/// (seed, vm id).
class AcquisitionFaultModel {
 public:
  virtual ~AcquisitionFaultModel() = default;

  /// Whether the `attempt`-th acquisition request of this run (0-based,
  /// counted across all classes) is rejected by the provider.
  [[nodiscard]] virtual bool acquisitionRejected(
      std::uint64_t attempt) const = 0;

  /// Startup lag of a freshly accepted VM, seconds (0 = instant). The
  /// resource class is passed so providers can model class-dependent
  /// startup: bigger instances take longer to materialize.
  [[nodiscard]] virtual SimTime provisioningDelay(
      VmId vm, const ResourceClass& cls) const = 0;
};

/// Schedules provider-initiated terminations of spot/preemptible VMs.
/// Implementations must be deterministic: the preemption time is a pure
/// function of (seed, vm id, vm start time), independent of query order.
class PreemptionFaultModel {
 public:
  virtual ~PreemptionFaultModel() = default;

  /// Absolute time at which the provider reclaims `vm` (started at
  /// `vm_start`); infinity when it survives the run.
  [[nodiscard]] virtual SimTime preemptionTime(VmId vm,
                                               SimTime vm_start) const = 0;

  /// Warning-notice lead time, seconds: the provider announces an
  /// impending preemption this long before it happens (AWS-style
  /// two-minute warning).
  [[nodiscard]] virtual SimTime noticeWindow() const = 0;
};

/// Perturbs the performance the monitoring framework observes.
/// Implementations must be deterministic and query-order independent:
/// pure functions of (seed, vm id, vm start time, t) and of
/// (seed, unordered VM pair, t) respectively.
class PerfFaultModel {
 public:
  virtual ~PerfFaultModel() = default;

  /// Multiplier on the observed core power of `vm` at time `t` (1 =
  /// healthy; a straggler episode returns its degradation fraction).
  [[nodiscard]] virtual double cpuFactor(VmId vm, SimTime vm_start,
                                         SimTime t) const = 0;

  /// Whether the link between two distinct VMs is partitioned at `t`
  /// (observed bandwidth -> 0, latency -> MonitoringService's partition
  /// ceiling). Must be symmetric in (a, b).
  [[nodiscard]] virtual bool linkPartitioned(VmId a, VmId b,
                                             SimTime t) const = 0;
};

}  // namespace dds
