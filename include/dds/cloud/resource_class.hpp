// VM resource classes (paper §4).
//
// A resource class C_i is characterized by its core count N, the rated
// normalized speed pi of each core (relative to a "standard" core, pi = 1,
// akin to one Amazon ECU), a rated network bandwidth beta, and a fixed
// hourly price xi. The default catalog mirrors the 2013-era AWS first
// generation (m1.*) on-demand classes the paper evaluates with.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dds/common/error.hpp"
#include "dds/common/ids.hpp"

namespace dds {

/// One IaaS VM class.
struct ResourceClass {
  std::string name;
  int cores = 1;                  ///< N: dedicated CPU cores.
  double core_speed = 1.0;        ///< pi: rated speed per core, standard = 1.
  double bandwidth_mbps = 100.0;  ///< beta: rated NIC bandwidth, Mbps.
  double price_per_hour = 0.0;    ///< xi: on-demand $ per (started) hour.
  /// Spot/preemptible market tier: discounted xi, but the provider may
  /// terminate the instance at any time (after a warning notice).
  bool preemptible = false;

  void validate() const {
    DDS_REQUIRE(!name.empty(), "resource class needs a name");
    DDS_REQUIRE(cores >= 1, "resource class needs at least one core");
    DDS_REQUIRE(core_speed > 0.0, "core speed must be positive");
    DDS_REQUIRE(bandwidth_mbps > 0.0, "bandwidth must be positive");
    DDS_REQUIRE(price_per_hour >= 0.0, "price must be non-negative");
  }

  /// Rated aggregate processing power of the whole VM (cores * pi).
  [[nodiscard]] double totalPower() const {
    return static_cast<double>(cores) * core_speed;
  }
};

/// An ordered set of resource classes offered by a provider.
class ResourceCatalog {
 public:
  explicit ResourceCatalog(std::vector<ResourceClass> classes);

  [[nodiscard]] std::size_t size() const { return classes_.size(); }

  [[nodiscard]] const ResourceClass& at(ResourceClassId id) const {
    DDS_REQUIRE(id.value() < classes_.size(), "resource class out of range");
    return classes_[id.value()];
  }

  [[nodiscard]] const std::vector<ResourceClass>& classes() const {
    return classes_;
  }

  /// Class with the most aggregate rated power (ties: cheaper wins).
  [[nodiscard]] ResourceClassId largest() const;

  /// Cheapest class whose aggregate rated power covers `core_power`
  /// normalized core-units; falls back to largest() when none fits.
  [[nodiscard]] ResourceClassId smallestFitting(double core_power) const;

  /// Find by name; throws PreconditionError when absent.
  [[nodiscard]] ResourceClassId byName(const std::string& name) const;

  /// Whether any class is a spot/preemptible tier.
  [[nodiscard]] bool hasPreemptible() const;

  /// The on-demand (non-preemptible) class with the same hardware specs
  /// as `id`; `id` itself when it is already on-demand. Throws
  /// PreconditionError when a spot class has no on-demand twin.
  [[nodiscard]] ResourceClassId onDemandTwin(ResourceClassId id) const;

  /// The spot twin (same cores/speed/bandwidth, preemptible) of an
  /// on-demand class, when the catalog offers one.
  [[nodiscard]] std::optional<ResourceClassId> spotTwin(
      ResourceClassId id) const;

 private:
  std::vector<ResourceClass> classes_;
};

/// Extend a catalog with a spot/preemptible tier: every on-demand class
/// gains a "<name>-spot" twin with identical hardware at
/// `price * (1 - discount)`. `discount` must be in (0, 1).
[[nodiscard]] ResourceCatalog withSpotTier(const ResourceCatalog& base,
                                           double discount);

/// The 2013-era AWS first-generation on-demand catalog used in §8.1:
/// m1.small (1 core @ 1 ECU, $0.06/h), m1.medium (1 @ 2, $0.12/h),
/// m1.large (2 @ 2, $0.24/h), m1.xlarge (4 @ 2, $0.48/h); all rated at
/// 100 Mbps inter-VM bandwidth as the paper assumes at deployment time.
[[nodiscard]] ResourceCatalog awsCatalog2013();

/// The 2013 second-generation (m3.*) classes: faster cores (3.25 ECU) at a
/// slightly higher price per unit of power and only large sizes. Used by
/// the catalog-granularity study — a coarse catalog wastes money on small
/// deployments.
[[nodiscard]] ResourceCatalog awsCatalogSecondGen2013();

/// First and second generation combined: fine granularity at the low end,
/// fast dense cores at the high end.
[[nodiscard]] ResourceCatalog awsCatalogMixed2013();

/// Look up one of the named catalogs: "m1", "m3", "mixed".
/// Throws PreconditionError for unknown names.
[[nodiscard]] ResourceCatalog catalogByName(const std::string& name);

}  // namespace dds
