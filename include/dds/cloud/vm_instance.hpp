// A VM instance and its per-core allocation ledger (paper §4-5).
//
// The paper isolates PE instances on dedicated cores: a PE (alternate) is
// granted whole CPU cores, possibly spanning VMs, and incoming messages are
// load-balanced across those cores. Each VmInstance therefore tracks which
// PE owns each of its cores.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "dds/common/error.hpp"
#include "dds/common/ids.hpp"
#include "dds/common/time.hpp"
#include "dds/cloud/resource_class.hpp"

namespace dds {

/// Why a VM stopped. Billing depends on who initiated the termination:
/// tenant-initiated shutdown (Released) and tenant-side crashes bill every
/// started hour, while provider-initiated spot preemption (Preempted)
/// forgives the partial final hour per the 2013 spot-market convention.
enum class TerminationReason { None, Released, Crashed, Preempted };

/// One acquired VM: identity, class, lifetime and core ownership.
class VmInstance {
 public:
  VmInstance(VmId id, ResourceClassId cls, const ResourceClass& spec,
             SimTime t_start)
      : id_(id),
        class_id_(cls),
        spec_(spec),
        t_start_(t_start),
        t_ready_(t_start),
        cores_(static_cast<std::size_t>(spec.cores), std::nullopt) {}

  [[nodiscard]] VmId id() const { return id_; }
  [[nodiscard]] ResourceClassId classId() const { return class_id_; }
  [[nodiscard]] const ResourceClass& spec() const { return spec_; }
  [[nodiscard]] SimTime startTime() const { return t_start_; }

  /// When the VM's capacity comes online. Equal to startTime() for an
  /// instant acquisition; later when the provider imposed a provisioning
  /// lag (billing starts at startTime() regardless — a started hour is a
  /// started hour).
  [[nodiscard]] SimTime readyTime() const { return t_ready_; }
  [[nodiscard]] bool isReady(SimTime t) const { return t >= t_ready_; }

  /// Shutdown time; infinity while the VM is active.
  [[nodiscard]] SimTime offTime() const { return t_off_; }
  [[nodiscard]] bool isActive() const {
    return t_off_ == std::numeric_limits<SimTime>::infinity();
  }

  /// How the VM stopped; None while it is still active.
  [[nodiscard]] TerminationReason terminationReason() const { return reason_; }

  [[nodiscard]] int coreCount() const { return spec_.cores; }

  [[nodiscard]] int freeCoreCount() const {
    int n = 0;
    for (const auto& c : cores_) n += c.has_value() ? 0 : 1;
    return n;
  }

  [[nodiscard]] int allocatedCoreCount() const {
    return coreCount() - freeCoreCount();
  }

  /// Owner of core `index`, or nullopt when the core is free.
  [[nodiscard]] std::optional<PeId> coreOwner(int index) const {
    DDS_REQUIRE(index >= 0 && index < coreCount(), "core index out of range");
    return cores_[static_cast<std::size_t>(index)];
  }

  /// Number of cores currently owned by `pe`.
  [[nodiscard]] int coresOwnedBy(PeId pe) const {
    int n = 0;
    for (const auto& c : cores_) n += (c.has_value() && *c == pe) ? 1 : 0;
    return n;
  }

  /// Claim one free core for `pe`; returns the core index.
  /// Throws PreconditionError when the VM is full or inactive.
  int allocateCore(PeId pe) {
    DDS_REQUIRE(isActive(), "cannot allocate a core on a stopped VM");
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (!cores_[i].has_value()) {
        cores_[i] = pe;
        return static_cast<int>(i);
      }
    }
    throw PreconditionError("VM has no free core");
  }

  /// Release one core owned by `pe`; returns the freed core index.
  int releaseCoreOf(PeId pe) {
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (cores_[i].has_value() && *cores_[i] == pe) {
        cores_[i] = std::nullopt;
        return static_cast<int>(i);
      }
    }
    throw PreconditionError("PE owns no core on this VM");
  }

  /// Release every core owned by `pe`; returns how many were freed.
  int releaseAllCoresOf(PeId pe) {
    int n = 0;
    for (auto& c : cores_) {
      if (c.has_value() && *c == pe) {
        c = std::nullopt;
        ++n;
      }
    }
    return n;
  }

 private:
  friend class CloudProvider;

  void shutdown(SimTime t, TerminationReason reason) {
    DDS_REQUIRE(isActive(), "VM already stopped");
    DDS_REQUIRE(t >= t_start_, "shutdown before start");
    DDS_REQUIRE(reason != TerminationReason::None,
                "shutdown needs a termination reason");
    t_off_ = t;
    reason_ = reason;
  }

  void setReadyTime(SimTime t) {
    DDS_REQUIRE(t >= t_start_, "ready time precedes VM start");
    t_ready_ = t;
  }

  VmId id_;
  ResourceClassId class_id_;
  ResourceClass spec_;
  SimTime t_start_;
  SimTime t_ready_ = 0.0;  ///< set to t_start_ by the constructor.
  SimTime t_off_ = std::numeric_limits<SimTime>::infinity();
  TerminationReason reason_ = TerminationReason::None;
  std::vector<std::optional<PeId>> cores_;
};

}  // namespace dds
