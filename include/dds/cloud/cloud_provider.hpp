// The elastic IaaS provider (paper §4).
//
// Tracks every VM instance ever acquired (R(t)), supports elastic
// acquire/release, and accrues cost with the commercial-cloud billing rule:
// usage is rounded up to the next hour boundary, and a started hour is
// charged in full even if the VM is released earlier.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "dds/cloud/fault_model.hpp"
#include "dds/cloud/resource_class.hpp"
#include "dds/cloud/vm_instance.hpp"
#include "dds/common/ids.hpp"
#include "dds/common/time.hpp"
#include "dds/obs/trace_sink.hpp"

namespace dds {

/// Owns the resource catalog and the full VM instance history of one run.
class CloudProvider {
 public:
  explicit CloudProvider(ResourceCatalog catalog)
      : catalog_(std::make_shared<const ResourceCatalog>(
            std::move(catalog))) {}

  /// Share an immutable catalog across providers (one per concurrent job
  /// in a campaign) instead of copying it into each.
  explicit CloudProvider(std::shared_ptr<const ResourceCatalog> catalog)
      : catalog_(std::move(catalog)) {
    DDS_REQUIRE(catalog_ != nullptr, "catalog must not be null");
  }

  [[nodiscard]] const ResourceCatalog& catalog() const { return *catalog_; }

  /// The shared handle (for callers wiring sibling components to the
  /// same arena).
  [[nodiscard]] const std::shared_ptr<const ResourceCatalog>& catalogPtr()
      const {
    return catalog_;
  }

  /// Install a fault model consulted by tryAcquire(); nullptr (the
  /// default) restores the ideal provider whose requests never fail.
  void setAcquisitionFaults(const AcquisitionFaultModel* faults) {
    acq_faults_ = faults;
  }

  /// Install the spot-market preemption schedule; nullptr (the default)
  /// means spot instances are never reclaimed.
  void setPreemptionModel(const PreemptionFaultModel* model) {
    preemption_model_ = model;
  }

  /// Attach the run's tracer; VM lifecycle events (acquire, release,
  /// rejected acquisition) are emitted through it.
  void setTracer(obs::Tracer tracer) { tracer_ = tracer; }

  /// Start a new VM of the given class at time `t`; returns its id.
  /// The ideal acquisition path: never fails, capacity instantly online.
  VmId acquire(ResourceClassId cls, SimTime t);

  /// Elastic acquisition under cloud turbulence: the installed fault
  /// model may reject the request outright or impose a provisioning lag
  /// (the VM bills from `t` but delivers no observed power until
  /// `ready_time`). Without a fault model this is exactly acquire().
  [[nodiscard]] AcquisitionResult tryAcquire(ResourceClassId cls, SimTime t);

  /// Acquisition attempts rejected by the fault model so far.
  [[nodiscard]] int rejectedAcquisitions() const { return rejections_; }

  /// Stop a VM at time `t`. All of its cores must have been released first
  /// (the scheduler migrates PEs away before shutdown).
  void release(VmId id, SimTime t);

  /// Stop a VM at time `t` with an explicit termination reason. Crash and
  /// preemption terminations do not require the cores to be freed first —
  /// the instance dies under its tenants. Preempted VMs follow the spot
  /// convention: the provider forgives the partial final hour.
  void terminate(VmId id, SimTime t, TerminationReason reason);

  /// Provider-initiated reclamation of a spot VM (terminate + Preempted).
  void preempt(VmId id, SimTime t) {
    terminate(id, t, TerminationReason::Preempted);
  }

  /// When the installed preemption model reclaims `vm`; infinity when the
  /// VM is not preemptible or no model is installed. Pure in (seed, vm),
  /// so schedulers may query it freely — this models the provider's
  /// warning-notice API, not an oracle leak.
  [[nodiscard]] SimTime preemptionTimeOf(VmId id) const;

  /// Warning-notice lead time of the installed preemption model (0
  /// without one).
  [[nodiscard]] SimTime noticeWindow() const {
    return preemption_model_ != nullptr ? preemption_model_->noticeWindow()
                                        : 0.0;
  }

  /// Whether `vm`'s preemption notice has been served by time `t`: the
  /// provider has announced that the instance will be reclaimed within
  /// the notice window.
  [[nodiscard]] bool preemptionImminent(VmId id, SimTime t) const {
    const SimTime at = preemptionTimeOf(id);
    return at != std::numeric_limits<SimTime>::infinity() &&
           t >= at - noticeWindow();
  }

  [[nodiscard]] const VmInstance& instance(VmId id) const {
    DDS_REQUIRE(id.value() < instances_.size(), "unknown VM id");
    return instances_[id.value()];
  }

  /// Mutable instance access. Callers use this to edit the per-core
  /// allocation ledger (allocateCore / releaseCoreOf), so every grant is
  /// treated as a potential ledger change and bumps ledgerGeneration() —
  /// pessimistic, but exact: the generation never stays put across a
  /// mutation.
  [[nodiscard]] VmInstance& instance(VmId id) {
    DDS_REQUIRE(id.value() < instances_.size(), "unknown VM id");
    ++ledger_generation_;
    return instances_[id.value()];
  }

  /// Monotonic counter that advances whenever the core-allocation ledger
  /// *may* have changed: VM acquisition, release, or any mutable
  /// instance() access. Simulator hot paths snapshot per-PE core indexes
  /// and rebuild them only when this moves (paper §5's allocation state
  /// changes at adaptation granularity, so rebuilds are rare).
  [[nodiscard]] std::uint64_t ledgerGeneration() const {
    return ledger_generation_;
  }

  /// Total VMs ever acquired (|R(t)| including stopped ones).
  [[nodiscard]] std::size_t instanceCount() const {
    return instances_.size();
  }

  /// Ids of VMs still running.
  [[nodiscard]] std::vector<VmId> activeVms() const;

  /// Every instance ever acquired, in VmId order (active and stopped).
  /// Hot paths iterate this directly and skip stopped VMs instead of
  /// materializing an activeVms() snapshot per call; the filtered visit
  /// order is identical. Callers that mutate the active set while
  /// iterating must keep using the activeVms() snapshot.
  [[nodiscard]] const std::vector<VmInstance>& instances() const {
    return instances_;
  }

  /// Billed cost of one instance up to time `t` (mu_i[t], §4): the number
  /// of started hours between t_start and min(t_off, t), times the class
  /// hourly price. Zero before the VM starts.
  [[nodiscard]] double instanceCost(VmId id, SimTime t) const;

  /// Total accumulated cost across all instances up to time `t`.
  [[nodiscard]] double accumulatedCost(SimTime t) const;

  /// Seconds until `vm`'s next paid hour boundary at time `t`. Releasing a
  /// VM just before a boundary wastes the least of what is already paid;
  /// the runtime heuristics use this to time scale-in decisions.
  [[nodiscard]] SimTime timeToNextHourBoundary(VmId id, SimTime t) const;

  /// Number of whole started hours billed for `vm` up to `t`.
  [[nodiscard]] int billedHours(VmId id, SimTime t) const;

 private:
  VmId acquireInternal(ResourceClassId cls, SimTime t);

  std::shared_ptr<const ResourceCatalog> catalog_;
  std::vector<VmInstance> instances_;
  obs::Tracer tracer_;
  const AcquisitionFaultModel* acq_faults_ = nullptr;
  const PreemptionFaultModel* preemption_model_ = nullptr;
  std::uint64_t acquisition_attempts_ = 0;
  std::uint64_t ledger_generation_ = 0;
  int rejections_ = 0;
};

}  // namespace dds
