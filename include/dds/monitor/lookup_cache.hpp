// Validity-window cache over MonitoringService lookups.
//
// The observed* queries are piecewise constant in time: trace coefficients
// follow zero-order-hold sampling, and a provisioning VM's power is pinned
// at zero until its ready time. The *Sample variants expose the exact
// boundary of each constant stretch, so a cache that re-queries only when
// a window expires returns bit-identical values to querying every time —
// it is a memoization, not an approximation.
//
// Queries must arrive with non-decreasing `t` per key (the event
// simulator drains a time-ordered heap, so this holds naturally); a
// cached window [t0, valid_until) then covers every later query below
// the boundary.
#pragma once

#include <vector>

#include "dds/common/ids.hpp"
#include "dds/common/time.hpp"
#include "dds/monitor/monitoring.hpp"

namespace dds {

/// Memoized per-VM observed core power with exact invalidation.
class CorePowerCache {
 public:
  explicit CorePowerCache(const MonitoringService& monitor)
      : monitor_(&monitor) {}

  /// Observed core power of `vm` at `t`; bit-identical to
  /// monitor.observedCorePower(vm, t) for non-decreasing `t` per VM.
  [[nodiscard]] double corePower(VmId vm, SimTime t);

  /// Drop every cached window (e.g. when the caller cannot prove query
  /// times stayed monotone across an epoch).
  void clear();

 private:
  struct Entry {
    double value = 0.0;
    SimTime valid_until = -1.0;  // below any query time => always refresh
  };

  const MonitoringService* monitor_;
  std::vector<Entry> entries_;
};

}  // namespace dds
