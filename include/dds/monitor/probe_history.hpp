// Probe history with exponential smoothing.
//
// The §4 monitoring framework probes "periodically and noninvasively".
// Reacting to each raw probe makes the scheduler chase trace noise —
// acquiring an hour-billed VM because one probe dipped. ProbeHistory
// accumulates the periodic probes and exposes an EWMA estimate of each
// VM's core power:
//
//   smoothed(t_k) = alpha * observed(t_k) + (1 - alpha) * smoothed(t_{k-1})
//
// alpha = 1 reproduces the raw instantaneous behaviour; smaller alphas
// trade reactivity for stability (see bench_ablation_design_choices).
// The engine calls probe() once per adaptation interval; schedulers opt in
// via HeuristicOptions::power_smoothing_alpha.
#pragma once

#include <unordered_map>

#include "dds/monitor/monitoring.hpp"

namespace dds {

/// Sequential probe accumulator over one run.
class ProbeHistory {
 public:
  /// @param alpha EWMA weight of the newest probe, in (0, 1].
  ProbeHistory(const MonitoringService& monitor, double alpha);

  /// Record one probe round over all active VMs at time `t`. Times must be
  /// non-decreasing across calls. A VM first seen at this probe starts its
  /// EWMA from the raw observation.
  void probe(SimTime t);

  /// Smoothed core power of `vm`; a VM never probed falls back to the
  /// rated spec (the deployment-time assumption).
  [[nodiscard]] double smoothedCorePower(VmId vm) const;

  /// Number of probe rounds so far.
  [[nodiscard]] std::size_t probeCount() const { return probes_; }

  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  const MonitoringService* monitor_;
  double alpha_;
  SimTime last_probe_ = -1.0;
  std::size_t probes_ = 0;
  std::unordered_map<VmId, double> smoothed_;
};

}  // namespace dds
