// The monitoring framework (paper §4).
//
// "To gauge the current behavior of the virtualized cloud resource, we
// presume a monitoring framework that periodically and noninvasively
// probes the performance of the cloud VMs and their network connectivity."
//
// MonitoringService answers two families of questions:
//  * rated*     — the deployment-time assumption: every VM performs at its
//                 class's rated spec and inter-VM bandwidth is the rated
//                 100 Mbps (paper §8.1).
//  * observed*  — the runtime truth: rated spec multiplied by the replayed
//                 trace coefficient for that VM (pair) at that time.
// Colocation (same VM) is modelled as in-memory transfer: zero latency,
// infinite bandwidth (§4).
#pragma once

#include <limits>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/cloud/fault_model.hpp"
#include "dds/cloud/placement_model.hpp"
#include "dds/common/ids.hpp"
#include "dds/common/time.hpp"
#include "dds/trace/trace_replayer.hpp"

namespace dds {

/// Read-only performance oracle over the cloud, backed by trace replay.
class MonitoringService {
 public:
  /// Nominal one-way latency between distinct VMs before the coefficient
  /// is applied.
  static constexpr double kBaseLatencyMs = 1.0;

  /// Latency reported for a partitioned link: effectively infinite, but
  /// finite so downstream arithmetic (differences, sums) stays NaN-free.
  static constexpr double kPartitionLatencyMs = 1.0e9;

  MonitoringService(const CloudProvider& cloud, TraceReplayer& replayer,
                    const PlacementModel* placement = nullptr,
                    const PerfFaultModel* faults = nullptr)
      : cloud_(&cloud),
        replayer_(&replayer),
        placement_(placement),
        faults_(faults) {}

  /// Rated normalized power (pi) of one core of `vm`'s class.
  [[nodiscard]] double ratedCorePower(VmId vm) const {
    return cloud_->instance(vm).spec().core_speed;
  }

  /// Observed normalized power of `vm`'s cores at time `t`. Zero while
  /// the VM is still provisioning (startup delay); during a straggler
  /// episode the installed fault model degrades it below the trace value.
  [[nodiscard]] double observedCorePower(VmId vm, SimTime t) const {
    const VmInstance& inst = cloud_->instance(vm);
    if (!inst.isReady(t)) return 0.0;
    const double fault = faults_ != nullptr
                             ? faults_->cpuFactor(vm, inst.startTime(), t)
                             : 1.0;
    return ratedCorePower(vm) * replayer_->cpuCoeff(vm, t) * fault;
  }

  /// Whether the link between `a` and `b` is currently partitioned
  /// (observed bandwidth 0, latency at the partition ceiling). Colocated
  /// traffic never partitions — it does not cross the network.
  [[nodiscard]] bool linkPartitioned(VmId a, VmId b, SimTime t) const {
    return a != b && faults_ != nullptr && faults_->linkPartitioned(a, b, t);
  }

  /// Rated bandwidth between two VMs: min of the two NICs' rated Mbps;
  /// infinite when `a == b` (in-memory).
  [[nodiscard]] double ratedBandwidthMbps(VmId a, VmId b) const {
    if (a == b) return std::numeric_limits<double>::infinity();
    return std::min(cloud_->instance(a).spec().bandwidth_mbps,
                    cloud_->instance(b).spec().bandwidth_mbps);
  }

  /// Observed bandwidth between two VMs at time `t` (beta_ij(t)):
  /// rated spec x temporal trace coefficient x spatial placement factor.
  [[nodiscard]] double observedBandwidthMbps(VmId a, VmId b,
                                             SimTime t) const {
    if (a == b) return std::numeric_limits<double>::infinity();
    if (linkPartitioned(a, b, t)) return 0.0;
    const double spatial =
        placement_ != nullptr ? placement_->bandwidthFactor(a, b) : 1.0;
    return ratedBandwidthMbps(a, b) * replayer_->bandwidthCoeff(a, b, t) *
           spatial;
  }

  /// Observed one-way latency in milliseconds (lambda_ij(t)); zero when
  /// colocated, the partition ceiling while the link is partitioned.
  [[nodiscard]] double observedLatencyMs(VmId a, VmId b, SimTime t) const {
    if (a == b) return 0.0;
    if (linkPartitioned(a, b, t)) return kPartitionLatencyMs;
    const double spatial =
        placement_ != nullptr ? placement_->latencyFactor(a, b) : 1.0;
    return kBaseLatencyMs * replayer_->latencyCoeff(a, b, t) * spatial;
  }

  /// Sample variants of the observed* queries: same value (and same lazy
  /// trace-assignment RNG consumption) plus the time until which the
  /// value is guaranteed not to change — callers may cache it for any
  /// t' in [t, valid_until) and stay bit-identical to per-query replay.
  /// With a fault model installed the windows collapse to the query time
  /// (valid_until == t): fault episodes have no boundary query, so the
  /// only exact window is the empty one and callers recompute per query.
  [[nodiscard]] CoeffSample observedCorePowerSample(VmId vm,
                                                    SimTime t) const {
    const VmInstance& inst = cloud_->instance(vm);
    if (!inst.isReady(t)) return {0.0, inst.readyTime()};
    if (faults_ != nullptr) return {observedCorePower(vm, t), t};
    const CoeffSample c = replayer_->cpuCoeffSample(vm, t);
    return {ratedCorePower(vm) * c.value, c.valid_until};
  }

  [[nodiscard]] CoeffSample observedBandwidthSample(VmId a, VmId b,
                                                    SimTime t) const {
    DDS_REQUIRE(a != b, "bandwidth between a VM and itself is infinite");
    if (faults_ != nullptr) return {observedBandwidthMbps(a, b, t), t};
    const CoeffSample c = replayer_->bandwidthCoeffSample(a, b, t);
    const double spatial =
        placement_ != nullptr ? placement_->bandwidthFactor(a, b) : 1.0;
    return {ratedBandwidthMbps(a, b) * c.value * spatial, c.valid_until};
  }

  [[nodiscard]] CoeffSample observedLatencySample(VmId a, VmId b,
                                                  SimTime t) const {
    DDS_REQUIRE(a != b, "latency between a VM and itself is zero by model");
    if (faults_ != nullptr) return {observedLatencyMs(a, b, t), t};
    const CoeffSample c = replayer_->latencyCoeffSample(a, b, t);
    const double spatial =
        placement_ != nullptr ? placement_->latencyFactor(a, b) : 1.0;
    return {kBaseLatencyMs * c.value * spatial, c.valid_until};
  }

  [[nodiscard]] const CloudProvider& cloud() const { return *cloud_; }

  [[nodiscard]] const PlacementModel* placement() const {
    return placement_;
  }

 private:
  const CloudProvider* cloud_;
  TraceReplayer* replayer_;
  const PlacementModel* placement_ = nullptr;
  const PerfFaultModel* faults_ = nullptr;
};

}  // namespace dds
