// Scheduler interface (paper §5-7).
//
// A Scheduler makes the two families of decisions the optimization problem
// (§6) exposes as control parameters:
//  * deploy()  — before t0: pick the initial alternate A_i^j for every PE,
//                acquire VMs, and allocate cores, based on the *estimated*
//                input rate and rated VM performance;
//  * adapt()   — at the start of each interval: react to the observed input
//                rates and observed VM performance by switching alternates,
//                scaling cores in/out, acquiring/releasing VMs.
// Schedulers mutate the CloudProvider (the core-allocation ledger) and the
// Deployment (active alternates) directly; queue state belongs to the
// simulator, so VM releases that strand buffered messages are reported as
// MigrationEvents for the engine to apply.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/common/time.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/metrics/run_metrics.hpp"
#include "dds/monitor/monitoring.hpp"
#include "dds/monitor/probe_history.hpp"
#include "dds/obs/metrics_registry.hpp"
#include "dds/obs/trace_sink.hpp"
#include "dds/sched/resilience.hpp"
#include "dds/sim/deployment.hpp"
#include "dds/sim/simulator.hpp"

namespace dds {

struct PlanStructure;

/// Which §8 policy an experiment runs. The scheduler registry at the
/// bottom of this header is the single place that maps kinds to names and
/// instances — adding a policy means extending the enum, schedulerName()
/// and makeScheduler(), all in the sched layer.
enum class SchedulerKind {
  LocalAdaptive,        ///< local heuristic with continuous re-deployment.
  GlobalAdaptive,       ///< global heuristic with continuous re-deployment.
  LocalStatic,          ///< local heuristic, deploy once.
  GlobalStatic,         ///< global heuristic, deploy once.
  LocalAdaptiveNoDyn,   ///< local, adaptive, alternates fixed (no dynamism).
  GlobalAdaptiveNoDyn,  ///< global, adaptive, alternates fixed.
  BruteForceStatic,     ///< exhaustive static optimal (small graphs only).
  ReactiveBaseline,     ///< queue-threshold autoscaler (related work).
  AnnealingStatic,      ///< simulated-annealing static planner.
  LocalPredictive,      ///< local adaptive + forecast-driven pre-acquisition.
  GlobalPredictive,     ///< global adaptive + forecast-driven pre-acquisition.
};

/// Everything a scheduler needs to see and touch, wired once per run.
struct SchedulerEnv {
  const Dataflow* dataflow = nullptr;
  CloudProvider* cloud = nullptr;
  const MonitoringService* monitor = nullptr;
  /// Optional EWMA probe history; when set, runtime phases plan against
  /// smoothed core-power estimates instead of raw instantaneous probes.
  const ProbeHistory* probes = nullptr;
  SimConfig sim_config;
  double omega_target = 0.7;  ///< Omega-hat, the §8.2 default.
  double epsilon = 0.05;      ///< throughput tolerance (§8.2).
  /// Run tracer (null by default); schedulers emit decision, alternate-
  /// switch and straggler events through it.
  obs::Tracer tracer;
  /// Optional run metrics; schedulers bump named counters when set.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional prebuilt planner closure for this exact (dataflow, catalog)
  /// pair; search planners reuse it per deploy instead of re-extracting
  /// the tables. Immutable, safely shared across concurrent jobs.
  std::shared_ptr<const PlanStructure> plan_structure;

  void validate() const {
    DDS_REQUIRE(dataflow != nullptr, "scheduler env needs a dataflow");
    DDS_REQUIRE(cloud != nullptr, "scheduler env needs a cloud provider");
    DDS_REQUIRE(monitor != nullptr, "scheduler env needs monitoring");
    DDS_REQUIRE(omega_target > 0.0 && omega_target <= 1.0,
                "omega target out of range");
    DDS_REQUIRE(epsilon >= 0.0 && epsilon < 1.0, "epsilon out of range");
  }
};

/// What the monitoring framework reported for the last interval.
struct ObservedState {
  IntervalIndex interval = 0;   ///< the interval about to start.
  SimTime now = 0.0;            ///< its start time.
  double input_rate = 0.0;      ///< observed external rate, msgs/s.
  double average_omega = 1.0;   ///< Omega-bar so far (constraint tracker).
  const IntervalMetrics* last_interval = nullptr;  ///< may be null at t0.
  /// Predicted external rates for intervals [interval, interval + H)
  /// when the engine runs a forecaster; null otherwise (the default — so
  /// reactive runs stay bit-identical to the pre-forecast behaviour).
  const std::vector<double>* forecast = nullptr;
};

/// Buffered messages stranded on a released VM; the engine forwards this
/// to DataflowSimulator::migrateBacklog.
struct MigrationEvent {
  PeId pe;
  double backlog_fraction = 0.0;
};

/// Resilience counters a scheduler exposes for the run result (all zero
/// for policies without a resilience layer).
struct SchedulerTelemetry {
  int stragglers_quarantined = 0;   ///< VMs blacklisted and evacuated.
  int graceful_degradations = 0;    ///< off-cadence alternate downgrades.
  int acquisition_rejections = 0;   ///< acquisition attempts the provider
                                    ///< rejected against this scheduler.
  int preemption_drains = 0;        ///< spot VMs evacuated on notice.
};

/// Abstract deployment + runtime-adaptation policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Initial deployment before t0 (paper Alg. 1). Returns the alternate
  /// assignment; VM/core state is left in the CloudProvider.
  [[nodiscard]] virtual Deployment deploy(double estimated_input_rate) = 0;

  /// Runtime adaptation at the start of an interval (paper Alg. 2).
  /// Static policies keep the default no-op.
  virtual std::vector<MigrationEvent> adapt(const ObservedState& state,
                                            Deployment& deployment) {
    (void)state;
    (void)deployment;
    return {};
  }

  /// Resilience counters accumulated so far (default: none).
  [[nodiscard]] virtual SchedulerTelemetry telemetry() const { return {}; }
};

// ---------------------------------------------------------------------------
// Scheduler registry: the one place that knows every concrete policy.
// ---------------------------------------------------------------------------

/// Canonical CLI/config name of a policy ("global", "local-static", ...).
[[nodiscard]] std::string schedulerName(SchedulerKind kind);

/// Inverse of schedulerName(); throws PreconditionError on unknown names.
[[nodiscard]] SchedulerKind parseSchedulerKind(const std::string& name);

/// Every SchedulerKind, in enum order — for sweeps and round-trip tests.
[[nodiscard]] const std::vector<SchedulerKind>& allSchedulerKinds();

/// Compat alias; prefer schedulerName().
[[nodiscard]] inline std::string toString(SchedulerKind kind) {
  return schedulerName(kind);
}

/// Policy-independent tuning a caller hands the factory. Deliberately
/// plain-field (no HeuristicOptions) so this header stays below the
/// concrete schedulers in the include graph.
struct SchedulerTuning {
  double sigma = 0.0;        ///< equivalence factor for the planners.
  SimTime horizon_s = 3600;  ///< optimization period (planners need T).
  std::uint64_t seed = 42;   ///< randomized planners (annealing).
  IntervalIndex alternate_period = 2;  ///< n_a for Alg. 2.
  IntervalIndex resource_period = 1;   ///< n_r for Alg. 2.
  /// Buy cheapest-per-power instead of Alg. 1's largest-first.
  bool cheapest_class_acquisition = false;
  double max_queue_delay_s = 0.0;  ///< queue-delay SLA; 0 disables.
  /// Fraction of fresh acquisitions steered to the catalog's spot tier
  /// when one exists (seed-deterministic per acquisition); 0 disables.
  double spot_fraction = 0.0;
  ResilienceOptions resilience;
  /// Predictive scheduling (the *Predictive kinds): act on the forecast
  /// vector in ObservedState instead of reacting to the last interval
  /// only. All off by default — reactive runs stay bit-identical.
  bool predictive = false;
  /// A predicted peak must exceed the current rate by this fraction to
  /// trigger pre-acquisition (and to hold off scale-in).
  double preacquire_margin = 0.1;
  /// How far ahead pre-acquisition looks, seconds — the engine sets it to
  /// the worst-case mean provisioning delay so VMs ordered at the edge of
  /// the window are ready when their forecast peak lands.
  double preacquire_lead_s = 0.0;
  /// Score alternate choices against the whole forecast vector (mean
  /// Theta over the horizon via PlanEvaluator) on the alternate cadence.
  bool lookahead_alternates = true;
};

/// Build a scheduler for `kind` against `env`. The factory owns the
/// kind-specific wiring (strategy, adaptive/no-dynamism flags, planner
/// parameters) so engine/tools/bench code never switches on the enum.
[[nodiscard]] std::unique_ptr<Scheduler> makeScheduler(
    SchedulerKind kind, const SchedulerEnv& env,
    const SchedulerTuning& tuning = {});

}  // namespace dds
