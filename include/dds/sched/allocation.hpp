// Core/VM allocation machinery shared by the deployment and runtime
// heuristics (paper §7, Alg. 1 resource-allocation stage, Table 1).
//
// The allocation problem is a variable-sized bin-packing: PEs demand
// normalized core power (rate * cost per message), VMs of different
// classes supply cores of different speeds at different prices. The
// toolkit provides:
//  * throughput projection — the steady-state Omega a candidate allocation
//    would deliver (used both as the stopping rule for incremental
//    allocation and as the safety check for scale-in);
//  * INCREMENTAL_ALLOCATION — one core per PE in forward-BFS order for
//    colocation, then cores to the worst bottleneck until the constraint
//    holds;
//  * scale-in, RepackPE and iterative free-VM repacking for the global
//    strategy;
//  * empty-VM release policies (immediate vs at the paid hour boundary).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/monitor/monitoring.hpp"
#include "dds/sched/alternate_selection.hpp"
#include "dds/sched/resilience.hpp"
#include "dds/sched/scheduler.hpp"
#include "dds/sim/deployment.hpp"

namespace dds {

/// Per-core normalized power of a VM, either rated (deployment time) or
/// observed via monitoring (runtime).
using CorePowerFn = std::function<double(VmId)>;

[[nodiscard]] CorePowerFn ratedCorePowerFn(const CloudProvider& cloud);
[[nodiscard]] CorePowerFn observedCorePowerFn(const MonitoringService& mon,
                                              SimTime t);

/// Steady-state throughput a given power allocation would achieve.
struct ThroughputProjection {
  double omega = 1.0;                  ///< projected application Omega.
  std::vector<double> pe_omega;        ///< per-PE power / required-power.
  std::vector<double> required_power;  ///< demand vector, by PeId.
};

/// Project Omega for `pe_power` (normalized power per PE, by PeId) at the
/// given input rate and alternate choices. Pure function of its inputs.
[[nodiscard]] ThroughputProjection projectThroughput(
    const Dataflow& df, const Deployment& deployment, double input_rate,
    const std::vector<double>& pe_power);

/// Reusable projection engine behind projectThroughput(): bind() hoists
/// everything that depends only on (dataflow, alternates, input rate) —
/// the demand vector, the expected output rates and the active
/// alternates' cost/selectivity — so the scale-out/scale-in inner loops
/// can re-project candidate power vectors without redoing the graph
/// propagation or allocating. project() produces the same ThroughputProjection,
/// bit for bit, as the free function.
class ThroughputProjector {
 public:
  /// Capture the current alternate choices and input rate. Must be called
  /// again after any setActiveAlternate() before the next project().
  void bind(const Dataflow& df, const Deployment& deployment,
            double input_rate);

  /// Project Omega for `pe_power`. The returned reference is owned by the
  /// projector and overwritten by the next project() call.
  const ThroughputProjection& project(const std::vector<double>& pe_power);

 private:
  const Dataflow* df_ = nullptr;
  double input_rate_ = 0.0;
  std::vector<double> alt_cost_;  ///< active alternate cost, by PeId.
  std::vector<double> alt_sel_;   ///< active alternate selectivity.
  std::vector<double> expected_;  ///< expected output rates, by PeId.
  std::vector<double> out_;       ///< scratch: capacity-limited outputs.
  ThroughputProjection proj_;
};

/// Mutating allocation operations over one cloud provider.
class ResourceAllocator {
 public:
  /// When may an empty VM be shut down (§7.2)?
  enum class ReleasePolicy {
    Immediate,       ///< as soon as it empties (the local strategy).
    AtHourBoundary,  ///< only when its paid hour is about to lapse (global).
  };

  /// Which class a fresh VM acquisition picks.
  enum class AcquisitionPolicy {
    LargestFirst,   ///< Alg. 1's "VMClasses.First" — the biggest class.
    CheapestPower,  ///< best $/power-unit (ties: larger) — an improvement
                    ///< over the paper for menus mixing generations.
  };

  ResourceAllocator(const Dataflow& df, CloudProvider& cloud,
                    double omega_target,
                    AcquisitionPolicy acquisition =
                        AcquisitionPolicy::LargestFirst);

  /// Install the resilience knobs governing acquisition retry, class
  /// fallback and backoff (defaults: 3 attempts, 60 s base backoff).
  void setResilience(const ResilienceOptions& options) {
    options.validate();
    resilience_ = options;
  }

  /// Steer `fraction` of fresh acquisitions to the catalog's spot tier
  /// (when one exists): each acquisition decision hashes (seed, ordinal)
  /// so the spot/on-demand choice is pure in the run seed and the
  /// acquisition order. fraction == 0 keeps the allocator bit-identical
  /// to a spot-unaware one.
  void setSpotPreference(double fraction, std::uint64_t seed) {
    DDS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                "spot fraction out of range");
    spot_fraction_ = fraction;
    spot_seed_ = seed;
  }

  /// Temporarily veto the spot tier (e.g. while replacing capacity lost
  /// to a preemption — the replacement must be reliable).
  void suppressSpot(bool suppressed) { spot_suppressed_ = suppressed; }

  /// Attach the run's tracer and metrics; the allocator then emits a
  /// CoreAllocEvent per core it (de)allocates on the scale-out/in paths
  /// and bumps alloc.cores_allocated / alloc.cores_released. Repacking
  /// moves are net-zero and are not traced.
  void setObservability(obs::Tracer tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Whether a recent unmet acquisition need put the allocator in backoff
  /// at `now` (no fresh VM will be requested until the window lapses).
  [[nodiscard]] bool acquisitionBackoffActive(SimTime now) const {
    return now < acquisition_retry_after_;
  }

  /// Acquisition attempts this allocator saw rejected.
  [[nodiscard]] int acquisitionRejections() const { return rejections_; }

  /// Normalized power currently allocated to each PE, by PeId.
  [[nodiscard]] std::vector<double> allocatedPower(
      const CorePowerFn& power) const;

  /// Buffer-reusing variant for the scale-out/scale-in inner loops.
  void allocatedPowerInto(const CorePowerFn& power,
                          std::vector<double>& pw) const;

  /// Give every PE at least one core, walking PEs in forward BFS order and
  /// filling the most recent VM first so dataflow neighbours colocate
  /// (Alg. 1 lines 13-20). Acquires largest-class VMs on demand.
  void ensureMinimumCores(SimTime now);

  /// Incrementally add cores to the current bottleneck until the
  /// projection meets the target (Alg. 1 lines 21-25). Local scope demands
  /// every PE's own relative throughput reach the target; Global scope
  /// stops as soon as the *application* Omega does — fewer cores, but it
  /// requires graph-wide information. `target` defaults to the
  /// constructor's omega target; initial deployment passes 1.0 (provision
  /// for the full estimated demand, since the estimate is all it has).
  /// `measured_arrivals`, when given, replaces the graph-propagated
  /// expected arrival rates as the per-PE demand basis (msgs/s, by PeId).
  /// The *local* strategy passes the last interval's measurements — it
  /// only has local information, so upstream changes reach its view of
  /// downstream PEs one interval late (the paper's cascade penalty). The
  /// global strategy predicts arrivals through the graph instead.
  void scaleOut(const Deployment& deployment, double input_rate,
                const CorePowerFn& power, SimTime now, Strategy scope,
                double target = -1.0,
                const std::vector<double>* measured_arrivals = nullptr);

  /// Remove surplus cores while the projection stays at or above
  /// `floor_omega`; never leaves a PE without a core. Returns migration
  /// events for PEs that lost their last core on some VM (their buffered
  /// messages move over the network, §5).
  /// `now` only timestamps trace events (the release itself is billed by
  /// releaseEmptyVms); callers without a tracer may omit it.
  [[nodiscard]] std::vector<MigrationEvent> scaleIn(
      const Deployment& deployment, double input_rate,
      const CorePowerFn& power, Strategy scope, double floor_omega,
      const std::vector<double>* measured_arrivals = nullptr,
      SimTime now = 0.0);

  /// RepackPE (Table 1): move each sole-tenant PE from an oversized VM to
  /// the cheapest class that still covers its demand.
  void repackPes(const Deployment& deployment, double input_rate,
                 const CorePowerFn& power, SimTime now);

  /// Iterative repacking (Table 1): repeatedly try to empty the least
  /// loaded VM by relocating its cores onto free cores of equal or faster
  /// speed elsewhere; stop when no VM can be emptied.
  void repackFreeVms(const CorePowerFn& power);

  /// Shut down VMs with no allocated cores according to `policy`; returns
  /// how many were released. `interval_s` is the adaptation interval (the
  /// boundary-release lookahead window).
  int releaseEmptyVms(ReleasePolicy policy, SimTime now, SimTime interval_s);

 private:
  /// The class the acquisition policy prefers for a fresh VM.
  [[nodiscard]] ResourceClassId preferredClass() const;

  /// Acquire a fresh VM: try the policy-preferred class, then fall back
  /// through cheaper classes, up to the resilience retry budget. Returns
  /// nullopt when every attempt is rejected (or the allocator is backing
  /// off after a recent unmet need), arming exponential backoff.
  std::optional<VmId> acquireNew(SimTime now);

  /// One more core for `pe`: prefer VMs already hosting it, then VMs
  /// hosting a graph neighbour, then any free core, then a fresh
  /// largest-class VM (when `allow_acquire`). Returns success.
  bool allocateCoreForPe(PeId pe, SimTime now, bool allow_acquire);

  /// Trace one core (de)allocation and bump the matching counter.
  void traceCoreAlloc(VmId vm, PeId pe, std::int64_t delta, SimTime now);

  const Dataflow* df_;
  CloudProvider* cloud_;
  double omega_target_;
  AcquisitionPolicy acquisition_;
  ResilienceOptions resilience_;
  double spot_fraction_ = 0.0;
  std::uint64_t spot_seed_ = 0;
  std::uint64_t spot_ordinal_ = 0;  ///< acquisitions decided so far.
  bool spot_suppressed_ = false;
  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;
  SimTime acquisition_retry_after_ = 0.0;
  int consecutive_unmet_ = 0;
  int rejections_ = 0;
  // Scale-loop scratch, reused across iterations (and adaptation
  // intervals) so the steady-state hot paths stay allocation-free.
  ThroughputProjector projector_;
  std::vector<double> pw_scratch_;
  std::vector<double> deficit_scratch_;
};

}  // namespace dds
