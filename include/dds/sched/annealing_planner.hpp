// Simulated-annealing static planner.
//
// The paper dismisses exact solvers ("such tractability does not
// adequately translate to low latency solutions") and its brute-force
// optimal becomes intractable beyond small rates (Fig. 5). This planner
// fills the gap between the two baselines: a local-search static optimizer
// over the same plan space — (alternate combination, VM multiset) — that
// reaches near-optimal Theta in bounded time at any rate. It is a
// *static* policy like the brute force: deploy once, never adapt.
//
// Moves: flip one PE's alternate, or add/remove one VM of a random class.
// Energy: −Theta for feasible plans (greedy core assignment must cover
// the constraint-scaled demand), with infeasible plans rejected outright.
// Standard exponential cooling; fully deterministic for a given seed.
#pragma once

#include "dds/sched/scheduler.hpp"

namespace dds {

/// Annealing knobs.
struct AnnealingOptions {
  std::size_t iterations = 20'000;
  double initial_temperature = 0.05;  ///< in Theta units.
  double cooling = 0.9995;            ///< per-iteration multiplier.
  std::uint64_t seed = 1;
  /// Score candidates through the incremental PlanEvaluator (delta
  /// demand propagation + feasibility memo). The reference full
  /// re-evaluation path is kept selectable for tests and benchmarks;
  /// both paths produce bit-identical plans, Theta values and RNG
  /// consumption — the evaluator is a pure cache.
  bool incremental_evaluation = true;
  /// Feasibility-memo slots (rounded up to a power of two); 0 disables
  /// memoization while keeping incremental demand maintenance.
  std::size_t memo_capacity = 8192;

  void validate() const {
    DDS_REQUIRE(iterations >= 1, "need at least one iteration");
    DDS_REQUIRE(initial_temperature > 0.0, "temperature must be positive");
    DDS_REQUIRE(cooling > 0.0 && cooling < 1.0,
                "cooling must be in (0, 1)");
  }
};

/// Near-optimal static planner via simulated annealing.
class AnnealingScheduler final : public Scheduler {
 public:
  AnnealingScheduler(SchedulerEnv env, double sigma, SimTime horizon_s,
                     AnnealingOptions options = {});

  [[nodiscard]] std::string name() const override {
    return "annealing-static";
  }

  [[nodiscard]] Deployment deploy(double estimated_input_rate) override;

  /// Theta of the plan the last deploy() settled on.
  [[nodiscard]] double bestTheta() const { return best_theta_; }

 private:
  SchedulerEnv env_;
  double sigma_;
  SimTime horizon_s_;
  AnnealingOptions options_;
  double best_theta_ = 0.0;
};

}  // namespace dds
