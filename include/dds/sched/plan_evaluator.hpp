// Incremental plan evaluation for the search-based static planners.
//
// A candidate plan is (alternate combination, VM multiset) and its score
// is Theta = Gamma - sigma * cost, subject to greedy-packing feasibility
// (paper §6). The annealing and brute-force planners explore this space
// through single-coordinate moves, yet the naive evaluator recomputes the
// whole world per candidate: a full DAG selectivity propagation for the
// demand vector, a full bin-packing run, and fresh heap allocations for
// every intermediate. PlanEvaluator keeps the evaluation state resident
// and updates it per move:
//
//  * demand rows — arrival rates propagate only through PEs downstream of
//    a flipped alternate, walked in the same topological order with the
//    same per-node expression as the full recompute, which makes the
//    incremental values *bit-identical* to recomputing from scratch (the
//    inputs of every recomputed node are unchanged or themselves
//    recomputed; untouched nodes keep their exact values);
//  * Gamma and multiset cost — re-accumulated in canonical (index) order
//    from precomputed per-(pe, alternate) value and per-class price
//    tables. Deliberately *not* maintained as running sums: floating-point
//    addition does not commute bitwise, and an O(n_pes) re-sum at fixed
//    order is noise next to packing while guaranteeing the exact doubles
//    the from-scratch evaluator produces;
//  * packing feasibility — memoized in a FeasibilityMemo keyed by the
//    exact (vm_counts, demand-bit-pattern) words; misses fall back to the
//    verdict-only greedy packing (static_planning::packingFeasible).
//
// Everything after construction/reset is allocation-free. The class is a
// pure cache over referencePlanTheta(): for any reachable state, theta()
// returns the bit-identical double of the from-scratch evaluation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dds/cloud/resource_class.hpp"
#include "dds/common/ids.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/sched/feasibility_memo.hpp"
#include "dds/sched/static_planning.hpp"
#include "dds/sim/deployment.hpp"

namespace dds {

/// The immutable per-(dataflow, catalog) closure a PlanEvaluator reads:
/// flattened alternate model tables, the DAG in CSR form with its
/// topological order, and per-class core/price columns. Building this is
/// the allocation-heavy part of evaluator construction, and the tables
/// never change across a run — so a campaign substrate precomputes one
/// structure per (dataflow, catalog) and shares it read-only across every
/// planner deploy of every job.
struct PlanStructure {
  std::size_t n_pes = 0;
  std::size_t n_classes = 0;

  // Flattened per-(pe, alternate) tables; index alt_offset[pe] + alt.
  std::vector<std::size_t> alt_offset;
  std::vector<double> alt_selectivity;
  std::vector<double> alt_cost_sec;
  std::vector<double> alt_rel_value;
  std::vector<std::size_t> alt_count;

  // Graph structure in flat CSR form (PeId indices).
  std::vector<std::size_t> topo;      ///< topological order.
  std::vector<std::size_t> topo_pos;  ///< position of each PE in topo.
  std::vector<std::size_t> pred_offset, preds;
  std::vector<std::size_t> succ_offset, succs;
  std::vector<bool> is_input;

  // Per-class tables.
  std::vector<int> class_cores;
  std::vector<double> class_price;

  /// Extract the closure; the doubles are the exact ones the reference
  /// path reads through ProcessingElement / ResourceClass, so evaluation
  /// over these tables reproduces it bit for bit.
  [[nodiscard]] static std::shared_ptr<const PlanStructure> build(
      const Dataflow& df, const ResourceCatalog& catalog);
};

/// Fixed-per-deploy evaluation parameters.
struct PlanEvaluatorOptions {
  double input_rate = 0.0;    ///< estimated external input rate (msgs/s).
  double omega_target = 1.0;  ///< constraint scaling applied to demand.
  double sigma = 0.0;         ///< cost weight in Theta.
  double horizon_hours = 1.0; ///< billing horizon (whole hours).
  std::size_t memo_capacity = 8192;  ///< 0 disables feasibility memoization.
};

/// Incremental Theta evaluator over (alternates, vm_counts) plan states.
class PlanEvaluator {
 public:
  PlanEvaluator(const Dataflow& df, const ResourceCatalog& catalog,
                const PlanEvaluatorOptions& options);

  /// Evaluate over a prebuilt shared structure (must have been built from
  /// this exact dataflow/catalog pair); skips the table extraction.
  PlanEvaluator(std::shared_ptr<const PlanStructure> structure,
                const Dataflow& df, const ResourceCatalog& catalog,
                const PlanEvaluatorOptions& options);

  /// Load a plan state wholesale (full recompute of arrivals and demand).
  void reset(const std::vector<AlternateId>& alternates,
             const std::vector<int>& vm_counts);

  /// Re-bind the external input rate (the predictive lookahead reuses one
  /// evaluator per forecast step across calls). Takes effect at the next
  /// reset(), which recomputes arrivals and demand from scratch.
  void setInputRate(double rate) {
    DDS_REQUIRE(rate >= 0.0, "input rate must be non-negative");
    options_.input_rate = rate;
  }

  /// Switch one PE's active alternate; recomputes the PE's demand row and
  /// re-propagates arrivals through its downstream cone only.
  void setAlternate(std::size_t pe, AlternateId alt);

  /// Switch any number of alternates at once (one downstream sweep for
  /// the union of changed PEs; bit-identical to applying them one by one).
  void setAlternates(const std::vector<AlternateId>& alternates);

  /// Set one class's VM count (O(1): demand does not depend on counts).
  void setVmCount(std::size_t cls, int count);

  /// Theta of the current state; -inf when the multiset cannot host the
  /// demand. Bit-identical to referencePlanTheta() on the same state.
  [[nodiscard]] double theta();

  /// Greedy-packing feasibility of the current state (memoized).
  [[nodiscard]] bool feasible();

  /// Feasibility of hosting the *current demand* on an arbitrary multiset
  /// (memoized); used by the brute-force multiset odometer.
  [[nodiscard]] bool feasibleFor(const std::vector<int>& vm_counts);

  /// Mean relative alternate value of the current state.
  [[nodiscard]] double gamma() const;

  /// Dollar cost of the current multiset over the horizon.
  [[nodiscard]] double planCost() const;

  [[nodiscard]] const std::vector<double>& demand() const { return demand_; }
  [[nodiscard]] const std::vector<AlternateId>& alternates() const {
    return alternates_;
  }
  [[nodiscard]] const std::vector<int>& vmCounts() const {
    return vm_counts_;
  }

  [[nodiscard]] std::uint64_t memoLookups() const { return memo_.lookups(); }
  [[nodiscard]] std::uint64_t memoHits() const { return memo_.hits(); }

 private:
  [[nodiscard]] double altSelectivity(std::size_t pe) const {
    return s_->alt_selectivity[s_->alt_offset[pe] + alternates_[pe].value()];
  }
  [[nodiscard]] double altCostSec(std::size_t pe) const {
    return s_->alt_cost_sec[s_->alt_offset[pe] + alternates_[pe].value()];
  }

  /// arrival[pe] from its predecessors (same expression and predecessor
  /// order as expectedArrivalRatesInto); pe must not be an input.
  void recomputeArrival(std::size_t pe);

  /// demand[pe] from arrival[pe] (same two-step multiply as the full
  /// evaluator: arrival * cost_core_sec, then * omega_target).
  void recomputeDemand(std::size_t pe);

  /// Mark every successor of `pe` arrival-dirty under the current epoch.
  void markSuccessorsDirty(std::size_t pe);

  /// Walk the topological order from `start_pos`, recomputing dirty rows.
  void propagate(std::size_t start_pos);

  /// Exact integer prescreen: every PE needs at least one core, so fewer
  /// total cores than PEs can never pack (mirrors tryAssign exactly).
  [[nodiscard]] bool enoughCores(int total_cores) const {
    return total_cores >= static_cast<int>(n_pes_);
  }

  [[nodiscard]] bool packWithMemo(const std::vector<int>& vm_counts);

  const Dataflow* df_;
  const ResourceCatalog* catalog_;
  PlanEvaluatorOptions options_;
  std::size_t n_pes_ = 0;
  std::size_t n_classes_ = 0;

  // Immutable shared closure (tables + CSR graph); per-instance mutable
  // state lives below it.
  std::shared_ptr<const PlanStructure> s_;

  // Current plan state.
  std::vector<AlternateId> alternates_;
  std::vector<int> vm_counts_;
  int total_cores_ = 0;

  // Evaluation state.
  std::vector<double> arrival_;
  std::vector<double> demand_;

  // Epoch-stamped dirty marks (no clearing between moves).
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> arrival_dirty_;
  std::vector<std::uint64_t> alt_changed_;

  // Feasibility machinery.
  static_planning::PackScratch pack_scratch_;
  FeasibilityMemo memo_;
  std::vector<std::uint64_t> key_;  ///< n_classes + n_pes words.
};

/// From-scratch reference evaluation — the exact computation the planners
/// performed before PlanEvaluator existed, kept as the ground truth the
/// incremental path is tested (and benchmarked) against. Applies the
/// alternates to `dep_out`, returns Theta or -inf when infeasible, and
/// fills `assignment_out` (when non-null) with the greedy core assignment
/// of a feasible plan.
[[nodiscard]] double referencePlanTheta(
    const Dataflow& df, const ResourceCatalog& catalog,
    const std::vector<AlternateId>& alternates,
    const std::vector<int>& vm_counts, double input_rate,
    double omega_target, double sigma, double horizon_hours,
    Deployment& dep_out, static_planning::Assignment* assignment_out);

}  // namespace dds
