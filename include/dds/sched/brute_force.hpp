// Brute-force static deployment (§8.1's "static brute-force optimal").
//
// Exhaustively enumerates every alternate combination and, for each, every
// VM multiset up to the demand bound, assuming rated (no-variability)
// performance and a constant input rate. It maximizes the §6 objective
// Theta = Gamma − sigma * cost over the whole horizon, subject to the
// planned throughput meeting the constraint. Deployment only — it never
// adapts, and like the paper's version it becomes prohibitively expensive
// beyond small graphs/rates (the combination cap throws when exceeded).
#pragma once

#include <cstddef>

#include "dds/sched/scheduler.hpp"

namespace dds {

/// Thrown when the search space exceeds the configured cap (the paper's
/// "takes prohibitively long to find a solution for higher data rates").
class SearchSpaceTooLarge : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exhaustive static optimizer for small dynamic dataflows.
class BruteForceScheduler final : public Scheduler {
 public:
  /// @param sigma     the user's value/cost equivalence factor (§6)
  /// @param horizon_s the optimization period the static plan is billed for
  BruteForceScheduler(SchedulerEnv env, double sigma, SimTime horizon_s,
                      std::size_t max_combinations = 60'000'000);

  [[nodiscard]] std::string name() const override {
    return "brute-force-static";
  }

  [[nodiscard]] Deployment deploy(double estimated_input_rate) override;

  /// Number of (alternate-combination x VM-multiset) plans examined by the
  /// last deploy() call; exposed for the scalability discussion.
  [[nodiscard]] std::size_t plansExamined() const { return plans_examined_; }

 private:
  SchedulerEnv env_;
  double sigma_;
  SimTime horizon_s_;
  std::size_t max_combinations_;
  std::size_t plans_examined_ = 0;
};

}  // namespace dds
