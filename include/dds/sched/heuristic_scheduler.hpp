// The paper's deployment and runtime-adaptation heuristics (§7, Alg. 1-2).
//
// One class covers the whole §8 evaluation matrix:
//  * Strategy::Local / Strategy::Global — the Table 1 function variants;
//  * adaptive on/off — continuous re-deployment vs the static baselines;
//  * use_dynamism on/off — whether alternate selection participates as an
//    optimization decision (§8.2's "without application dynamism" runs the
//    best-value alternate, fixed).
#pragma once

#include <memory>
#include <optional>

#include "dds/sched/allocation.hpp"
#include "dds/sched/alternate_selection.hpp"
#include "dds/sched/lookahead_planner.hpp"
#include "dds/sched/scheduler.hpp"

namespace dds {

/// Tuning knobs for HeuristicScheduler.
struct HeuristicOptions {
  bool adaptive = true;      ///< run Alg. 2 at runtime (vs static deploy).
  bool use_dynamism = true;  ///< alternate selection as a control knob.
  /// Alternate-selection stage period, in intervals (§7.2 runs the two
  /// stages at different cadences to balance value against cost).
  IntervalIndex alternate_period = 2;
  /// Resource-allocation stage period, in intervals.
  IntervalIndex resource_period = 1;
  /// Ablation: disable the global strategy's deployment-time repacking
  /// (RepackPE + iterative repacking, Table 1).
  bool enable_repacking = true;
  /// Ablation: force a VM release policy instead of the strategy default
  /// (local = immediate, global = at the paid hour boundary).
  std::optional<ResourceAllocator::ReleasePolicy> release_policy_override;
  /// Acquisition policy for fresh VMs; the paper's Alg. 1 always buys the
  /// largest class, which backfires on menus mixing price-per-power tiers.
  ResourceAllocator::AcquisitionPolicy acquisition =
      ResourceAllocator::AcquisitionPolicy::LargestFirst;
  /// Latency SLA: when > 0, any PE whose queued backlog would take longer
  /// than this to drain triggers a scale-out sized to drain it within the
  /// SLA — the processing-latency QoS dimension of the paper's intro.
  /// 0 disables the check (throughput-only adaptation, the paper's Alg. 2).
  double max_queue_delay_s = 0.0;
  /// Resilience knobs: acquisition retry/backoff, straggler quarantine,
  /// graceful degradation (see dds/sched/resilience.hpp).
  ResilienceOptions resilience;
  /// Fraction of fresh acquisitions steered to the catalog's spot tier
  /// when one exists; the choice hashes (spot_seed, acquisition ordinal)
  /// so it is pure in the run seed. 0 keeps acquisitions on-demand.
  double spot_fraction = 0.0;
  std::uint64_t spot_seed = 42;
  /// Predictive scheduling: act on ObservedState::forecast. Off (the
  /// default) keeps every adaptation path bit-identical to reactive.
  bool predictive = false;
  /// A predicted peak must exceed the current rate by this fraction to
  /// trigger pre-acquisition (and to hold off scale-in meanwhile).
  double preacquire_margin = 0.1;
  /// Pre-acquisition lead, seconds: how far ahead the resource phase
  /// scans the forecast for peaks, normally the worst-case mean
  /// provisioning delay so VMs ordered now are ready when the peak lands.
  double preacquire_lead_s = 0.0;
  /// Score alternates against the whole forecast vector via the
  /// incremental PlanEvaluator (mean Theta over the horizon) instead of
  /// the last interval only.
  bool lookahead_alternates = true;
  /// Theta parameters for the lookahead scoring (the factory copies the
  /// run's sigma and billing horizon here).
  double lookahead_sigma = 0.0;
  SimTime lookahead_horizon_s = 3600.0;
};

/// Local/global deployment + adaptation heuristic (Alg. 1 + Alg. 2).
class HeuristicScheduler final : public Scheduler {
 public:
  HeuristicScheduler(SchedulerEnv env, Strategy strategy,
                     HeuristicOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Deployment deploy(double estimated_input_rate) override;

  std::vector<MigrationEvent> adapt(const ObservedState& state,
                                    Deployment& deployment) override;

  [[nodiscard]] SchedulerTelemetry telemetry() const override;

 private:
  /// Predictive alternate selection: greedy lookahead over the forecast
  /// vector (mean Theta across the horizon, via LookaheadPlanner);
  /// applies the winning switches and emits one decision event carrying
  /// the achieved score.
  void lookaheadPhase(const ObservedState& state, Deployment& deployment);

  /// Predictive pre-acquisition: scan the forecast up to the lead window
  /// for a peak exceeding the current rate by the margin; when found,
  /// scale out against the peak now so provisioning-delayed VMs are
  /// ready when it lands. Returns how many VMs were acquired (and
  /// whether a peak is pending, via the out-parameter, so the caller can
  /// hold off scale-in).
  int preacquireForForecast(const ObservedState& state,
                            const Deployment& deployment,
                            const CorePowerFn& power, bool& peak_pending);

  /// Alg. 2 alternate-selection phase. Builds the feasible set from the
  /// observed instantaneous throughput (underprovisioned -> alternates
  /// needing at most the active one's cost; overprovisioned -> at least),
  /// ranks by value/cost under the strategy, switches to the best that
  /// fits in the currently free resources.
  void alternatePhase(const ObservedState& state, Deployment& deployment);

  /// Alg. 2 resource re-deployment phase: incremental scale-out when the
  /// throughput constraint is in danger, scale-in plus (policy-dependent)
  /// empty-VM release when comfortably over-provisioned.
  std::vector<MigrationEvent> resourcePhase(const ObservedState& state,
                                            Deployment& deployment);

  /// Core-power estimator for the runtime phases: the EWMA probe history
  /// when the environment provides one, raw observed power otherwise.
  [[nodiscard]] CorePowerFn runtimePowerFn(SimTime now) const;

  /// Per-PE arrival rates as the *local* strategy sees them: last
  /// interval's measured per-PE arrival rates.
  /// Before any measurement exists it falls back to the graph prediction.
  [[nodiscard]] std::vector<double> measuredArrivals(
      const ObservedState& state, const Deployment& deployment) const;

  /// Probe the straggler guard; evacuate and release any VM that crossed
  /// the quarantine bar, then force a scale-out to replace its capacity.
  /// Appends the evacuation backlog moves to `migrations`.
  void quarantineStragglers(const ObservedState& state,
                            const Deployment& deployment,
                            std::vector<MigrationEvent>& migrations);

  /// Drain-and-migrate on preemption notice: release every spot VM the
  /// provider flagged as imminent (migrating its buffered share instead
  /// of losing it to the reclaim), then pre-acquire reliable replacement
  /// capacity with the spot tier suppressed.
  void drainPreemptionNotices(const ObservedState& state,
                              const Deployment& deployment,
                              std::vector<MigrationEvent>& migrations);

  /// Whether replacement capacity is still on order: any active VM not yet
  /// ready, or the allocator backing off after rejected acquisitions.
  [[nodiscard]] bool capacityPending(SimTime now) const;

  SchedulerEnv env_;
  Strategy strategy_;
  HeuristicOptions options_;
  ResourceAllocator allocator_;
  std::unique_ptr<StragglerGuard> guard_;
  std::unique_ptr<LookaheadPlanner> lookahead_;  ///< built on first use.
  int graceful_degradations_ = 0;
  int preemption_drains_ = 0;
};

}  // namespace dds
