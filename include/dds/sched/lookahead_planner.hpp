// Multi-step alternate lookahead for the predictive schedulers.
//
// Reactive alternate selection (Alg. 2) optimizes against the last
// observed interval only; with a forecast vector in hand the choice can
// instead maximize the *mean* Theta over the predicted horizon, so an
// alternate that will be wrong in three intervals is never picked now.
// The incremental PlanEvaluator makes this affordable: one evaluator per
// forecast step, all sharing one PlanStructure closure, and greedy
// coordinate ascent over per-PE alternates where each candidate move is
// an O(downstream cone) delta instead of a full re-evaluation.
#pragma once

#include <memory>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/sched/plan_evaluator.hpp"
#include "dds/sim/deployment.hpp"

namespace dds {

/// Picks the alternate combination maximizing mean Theta across a
/// predicted rate vector, holding the current VM multiset fixed.
class LookaheadPlanner {
 public:
  /// `structure` may be null — the planner then builds its own closure
  /// from (dataflow, catalog) once. `horizon_s` is the billing horizon
  /// the evaluators charge plan cost over.
  LookaheadPlanner(const Dataflow& df, const CloudProvider& cloud,
                   std::shared_ptr<const PlanStructure> structure,
                   double omega_target, double sigma, SimTime horizon_s);

  struct Result {
    std::vector<AlternateId> alternates;  ///< chosen alternate, by PeId.
    double mean_theta = 0.0;  ///< score of the chosen combination.
    int switches = 0;         ///< PEs whose choice differs from the start.
  };

  /// Greedy coordinate ascent from the deployment's active alternates.
  /// Infeasible (rate, alternates) steps score a fixed large penalty
  /// instead of -inf, so combinations feasible at more forecast steps
  /// always dominate. Pure in its inputs (seed-deterministic).
  [[nodiscard]] Result plan(const Deployment& deployment,
                            const std::vector<double>& forecast);

 private:
  /// Mean per-step score of the evaluators' current state.
  [[nodiscard]] double score(std::size_t steps);

  const Dataflow* df_;
  const CloudProvider* cloud_;
  std::shared_ptr<const PlanStructure> structure_;
  double omega_target_;
  double sigma_;
  double horizon_hours_;
  /// One evaluator per forecast step, grown lazily and reused across
  /// calls (setInputRate + reset re-bind them to the new vector).
  std::vector<std::unique_ptr<PlanEvaluator>> evals_;
  std::vector<AlternateId> current_;
  std::vector<int> vm_counts_;
};

}  // namespace dds
