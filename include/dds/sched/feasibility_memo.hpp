// Open-addressing cache of bin-packing feasibility verdicts.
//
// The annealing planner revisits recently seen (VM multiset, demand)
// combinations constantly — a rejected add/remove move restores the
// previous multiset, and alternate flips leave the multiset untouched.
// Greedy packing (static_planning::tryAssign) is the single most
// expensive step of a candidate evaluation, so caching its yes/no verdict
// pays for itself after one revisit.
//
// Correctness contract: the memo is a *pure cache*. Keys are exact — the
// full key (vm counts plus the canonical IEEE-754 bit patterns of the
// demand vector) is stored next to each verdict and compared word for
// word on lookup, so a hash collision can never surface a wrong verdict;
// it only costs a probe. A miss falls back to the exact packing run.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dds/common/error.hpp"

namespace dds {

/// Fixed-capacity open-addressing table: linear probing over a bounded
/// window, deterministic overwrite of the home slot when the window is
/// full (an LRU would need per-hit bookkeeping; the search loop's reuse
/// pattern is so heavily biased to recent keys that plain overwrite wins).
class FeasibilityMemo {
 public:
  FeasibilityMemo() = default;

  /// Size the table for keys of `key_words` 64-bit words and (at least)
  /// `capacity` entries (rounded up to a power of two). `capacity == 0`
  /// disables the memo: lookups miss, inserts drop.
  void init(std::size_t key_words, std::size_t capacity);

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Cached verdict for `key` (exactly `keyWords()` words), or nullopt.
  [[nodiscard]] std::optional<bool> lookup(const std::uint64_t* key);

  /// Record the verdict for `key`, evicting deterministically if needed.
  void insert(const std::uint64_t* key, bool feasible);

  [[nodiscard]] std::size_t keyWords() const { return key_words_; }
  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }

  /// Drop every entry (stats included); keeps the allocated capacity.
  void clear();

 private:
  static constexpr std::size_t kProbeWindow = 8;

  // Slot states for occupancy_: empty vs verdict.
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kInfeasible = 1;
  static constexpr std::uint8_t kFeasible = 2;

  [[nodiscard]] bool keyEquals(std::size_t slot,
                               const std::uint64_t* key) const;
  void writeSlot(std::size_t slot, std::uint64_t hash,
                 const std::uint64_t* key, bool feasible);

  std::size_t key_words_ = 0;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::vector<std::uint64_t> hashes_;    ///< per slot, valid when occupied.
  std::vector<std::uint64_t> keys_;      ///< capacity_ * key_words_ arena.
  std::vector<std::uint8_t> occupancy_;  ///< kEmpty / kInfeasible / kFeasible.
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace dds
