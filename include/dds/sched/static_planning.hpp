// Shared machinery for static planners (brute force, annealing): given an
// alternate combination and a VM multiset, decide feasibility, assign
// cores greedily, price the plan and materialize it onto the cloud.
#pragma once

#include <optional>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/common/time.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/sim/deployment.hpp"

namespace dds::static_planning {

/// Cores one PE takes from each resource class: [pe][class] -> cores.
using Assignment = std::vector<std::vector<int>>;

/// Greedy packing: PEs in decreasing demand order take cores from the
/// fastest class with remaining cores until covered (at least one core
/// each). Returns nullopt when the pool runs dry.
[[nodiscard]] std::optional<Assignment> tryAssign(
    const ResourceCatalog& catalog, const std::vector<int>& vm_counts,
    const std::vector<double>& demand);

/// Reusable buffers for packingFeasible(): the class ordering and speeds
/// depend only on the catalog and are computed once; the per-call arrays
/// are resized on first use and reused allocation-free afterwards.
struct PackScratch {
  explicit PackScratch(const ResourceCatalog& catalog);

  std::vector<std::size_t> class_order;  ///< fastest cores first.
  std::vector<double> class_speed;       ///< core_speed by class index.
  std::vector<int> class_cores;          ///< cores per VM by class index.
  std::vector<int> free_cores;           ///< scratch, by class index.
  std::vector<std::size_t> pe_order;     ///< scratch, by demand rank.
  /// All class speeds are powers of two, so n sequential additions of a
  /// speed equal n * speed exactly and the greedy take-one-core-at-a-time
  /// loop has a closed form with bitwise-identical `covered` values.
  bool bulk_exact = false;
};

/// Verdict-only twin of tryAssign(): runs the identical greedy packing
/// (same orderings, same epsilon, same stopping rules) without building
/// the Assignment, so search loops can test feasibility allocation-free.
/// Returns exactly tryAssign(...).has_value() for the same inputs.
[[nodiscard]] bool packingFeasible(const ResourceCatalog& catalog,
                                   const std::vector<int>& vm_counts,
                                   const std::vector<double>& demand,
                                   PackScratch& scratch);

/// Dollar price of running `vm_counts` for `horizon_hours` whole hours.
[[nodiscard]] double multisetCost(const ResourceCatalog& catalog,
                                  const std::vector<int>& vm_counts,
                                  double horizon_hours);

/// Mean relative value of a deployment's active alternates (Gamma).
[[nodiscard]] double deploymentGamma(const Dataflow& df,
                                     const Deployment& deployment);

/// Acquire the multiset at t=0 and hand each PE its assigned cores.
void materialize(CloudProvider& cloud, const std::vector<int>& vm_counts,
                 const Assignment& assignment);

}  // namespace dds::static_planning
