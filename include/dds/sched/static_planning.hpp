// Shared machinery for static planners (brute force, annealing): given an
// alternate combination and a VM multiset, decide feasibility, assign
// cores greedily, price the plan and materialize it onto the cloud.
#pragma once

#include <optional>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/common/time.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/sim/deployment.hpp"

namespace dds::static_planning {

/// Cores one PE takes from each resource class: [pe][class] -> cores.
using Assignment = std::vector<std::vector<int>>;

/// Greedy packing: PEs in decreasing demand order take cores from the
/// fastest class with remaining cores until covered (at least one core
/// each). Returns nullopt when the pool runs dry.
[[nodiscard]] std::optional<Assignment> tryAssign(
    const ResourceCatalog& catalog, const std::vector<int>& vm_counts,
    const std::vector<double>& demand);

/// Dollar price of running `vm_counts` for `horizon_hours` whole hours.
[[nodiscard]] double multisetCost(const ResourceCatalog& catalog,
                                  const std::vector<int>& vm_counts,
                                  double horizon_hours);

/// Mean relative value of a deployment's active alternates (Gamma).
[[nodiscard]] double deploymentGamma(const Dataflow& df,
                                     const Deployment& deployment);

/// Acquire the multiset at t=0 and hand each PE its assigned cores.
void materialize(CloudProvider& cloud, const std::vector<int>& vm_counts,
                 const Assignment& assignment);

}  // namespace dds::static_planning
