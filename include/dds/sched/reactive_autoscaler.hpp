// Reactive queue-threshold autoscaler — a related-work baseline.
//
// Systems the paper compares against conceptually (Esc, StreamCloud-style
// operator scaling) auto-scale from *local queue pressure* alone: no
// dataflow model, no alternates, no cost/value objective, no awareness of
// cloud performance variability. This baseline reproduces that behaviour:
//  * deploy: best-value alternates, one core per PE (cold start);
//  * every interval: a PE whose backlog-per-core exceeds a high watermark
//    gets one more core; a PE that has been idle-ish (tiny backlog, full
//    relative throughput) for `cooldown` consecutive intervals loses one;
//  * empty VMs are released immediately (no billing-boundary awareness).
// Benches use it to quantify what the paper's model-driven heuristics add.
#pragma once

#include "dds/sched/allocation.hpp"
#include "dds/sched/scheduler.hpp"

namespace dds {

/// Thresholds for the reactive baseline.
struct ReactiveOptions {
  double backlog_hi_per_core = 60.0;  ///< msgs/core that triggers growth.
  double backlog_lo_per_core = 5.0;   ///< msgs/core considered idle.
  int cooldown_intervals = 3;         ///< idle intervals before shrinking.

  void validate() const {
    DDS_REQUIRE(backlog_hi_per_core > backlog_lo_per_core,
                "watermarks out of order");
    DDS_REQUIRE(backlog_lo_per_core >= 0.0, "low watermark negative");
    DDS_REQUIRE(cooldown_intervals >= 1, "cooldown must be positive");
  }
};

/// Model-free reactive scaling baseline.
class ReactiveAutoscaler final : public Scheduler {
 public:
  ReactiveAutoscaler(SchedulerEnv env, ReactiveOptions options = {});

  [[nodiscard]] std::string name() const override {
    return "reactive-autoscaler";
  }

  [[nodiscard]] Deployment deploy(double estimated_input_rate) override;

  std::vector<MigrationEvent> adapt(const ObservedState& state,
                                    Deployment& deployment) override;

 private:
  SchedulerEnv env_;
  ReactiveOptions options_;
  ResourceAllocator allocator_;
  std::vector<int> idle_streak_;  ///< consecutive idle intervals per PE.
};

}  // namespace dds
