// Alternate selection and cost functions (paper §7, Table 1).
//
// Both heuristics rank a PE's alternates by value-to-cost ratio; they
// differ in GetCostOfAlternate:
//  * Local  — the alternate's own processing cost c (core-sec/msg).
//  * Global — c plus the load it induces downstream: an upstream alternate
//    with higher selectivity multiplies the input rate of every successor,
//    so its effective cost is c + s * sum of successors' downstream costs,
//    computed by dynamic programming over the graph in reverse BFS order
//    rooted at the output PEs.
#pragma once

#include <string>
#include <vector>

#include "dds/dataflow/dataflow.hpp"
#include "dds/sim/deployment.hpp"

namespace dds {

/// Which §7 strategy variant a heuristic runs.
enum class Strategy { Local, Global };

[[nodiscard]] std::string toString(Strategy s);

/// Downstream cost of every PE given the currently chosen alternates:
/// dc(P) = c(P) + s(P) * sum over successors of dc(succ). Indexed by PeId.
[[nodiscard]] std::vector<double> downstreamCosts(const Dataflow& df,
                                                  const Deployment& choices);

/// GetCostOfAlternate (Table 1) for one candidate alternate of `pe`,
/// given `succ_costs` = downstreamCosts(...) under the current choices.
[[nodiscard]] double alternateCost(Strategy strategy, const Dataflow& df,
                                   PeId pe, const Alternate& candidate,
                                   const std::vector<double>& succ_costs);

/// The alternate-selection stage of initial deployment (Alg. 1 lines 2-11):
/// pick, for every PE, the alternate with the highest relative-value to
/// cost ratio. The global strategy walks the graph in reverse BFS order so
/// each PE sees its successors' already-chosen downstream costs.
void selectInitialAlternates(Strategy strategy, const Dataflow& df,
                             Deployment& deployment);

/// The no-dynamism baseline (§8.1): fix every PE to its best-value
/// alternate; alternate selection is removed as an optimization decision.
void selectBestValueAlternates(const Dataflow& df, Deployment& deployment);

}  // namespace dds
