// Scheduler resilience layer against cloud turbulence (paper §9 future
// work; see dds/faults/fault_plan.hpp for the fault model it answers).
//
// Three mechanisms, all policy-level — they consume only the monitoring
// interface and AcquisitionResult, never the fault plan itself:
//  * bounded retry with class fallback + exponential backoff on failed
//    acquisitions (ResourceAllocator consumes these knobs);
//  * straggler detection and quarantine: StragglerGuard blacklists VMs
//    whose smoothed observed/rated power ratio stays below a threshold
//    for k consecutive probes, so the scheduler can evacuate and replace
//    them instead of planning against capacity that never materializes;
//  * graceful degradation: while replacement capacity is provisioning
//    (or acquisitions are backing off), the heuristic scheduler downgrades
//    alternates off-cadence to restore Omega >= Omega-hat with the
//    capacity it actually has (HeuristicScheduler consumes this flag).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/common/ids.hpp"
#include "dds/common/time.hpp"
#include "dds/monitor/monitoring.hpp"
#include "dds/obs/trace_sink.hpp"

namespace dds {

/// Resilience knobs shared by the heuristic scheduler and its allocator.
struct ResilienceOptions {
  /// Acquisition attempts per need (the first on the policy-preferred
  /// class, the rest falling back through cheaper classes).
  int acquisition_max_retries = 3;
  /// Base backoff after an acquisition need goes unmet; doubles per
  /// consecutive unmet need, capped at 8x. 0 disables backing off.
  double acquisition_backoff_s = 60.0;
  /// Quarantine a VM when its smoothed observed/rated power ratio stays
  /// below this for `straggler_probes` consecutive probes; 0 disables.
  double straggler_threshold = 0.0;
  int straggler_probes = 3;
  /// EWMA weight of the newest probe in the guard's ratio estimate.
  double straggler_alpha = 0.5;
  /// Downgrade alternates off-cadence while capacity is pending.
  bool graceful_degradation = false;

  [[nodiscard]] bool quarantineEnabled() const {
    return straggler_threshold > 0.0;
  }

  void validate() const {
    DDS_REQUIRE(acquisition_max_retries >= 1,
                "acquisition retries must be at least 1");
    DDS_REQUIRE(acquisition_backoff_s >= 0.0,
                "acquisition backoff must be non-negative");
    DDS_REQUIRE(straggler_threshold >= 0.0 && straggler_threshold < 1.0,
                "straggler threshold must be in [0, 1)");
    DDS_REQUIRE(straggler_probes >= 1,
                "straggler probe count must be at least 1");
    DDS_REQUIRE(straggler_alpha > 0.0 && straggler_alpha <= 1.0,
                "straggler alpha must be in (0, 1]");
  }
};

/// Detects persistent stragglers from periodic monitoring probes.
///
/// Per active, ready VM the guard tracks an EWMA of the observed/rated
/// core-power ratio; a VM whose smoothed ratio sits below the threshold
/// for k consecutive probes joins the blacklist. Provisioning VMs are
/// skipped (zero observed power means "not online yet", not "slow"), as
/// are already blacklisted ones.
class StragglerGuard {
 public:
  StragglerGuard(const CloudProvider& cloud, const MonitoringService& monitor,
                 ResilienceOptions options);

  /// Attach the run's tracer; probe() then emits StragglerRecovery when a
  /// suspected VM's smoothed ratio climbs back above the threshold before
  /// it crossed the quarantine bar. (Quarantine itself is emitted by the
  /// scheduler, which knows how many cores the evacuation moved.)
  void setTracer(obs::Tracer tracer) { tracer_ = tracer; }

  /// One probe round over all active VMs at time `t`; returns the VMs
  /// that crossed the quarantine bar this round (already blacklisted VMs
  /// are never reported again).
  std::vector<VmId> probe(SimTime t);

  /// Current smoothed observed/rated power ratio of `vm`; 1 when the
  /// guard has not probed it yet.
  [[nodiscard]] double smoothedRatio(VmId vm) const {
    const auto it = tracks_.find(vm);
    return it != tracks_.end() ? it->second.smoothed_ratio : 1.0;
  }

  [[nodiscard]] bool isQuarantined(VmId vm) const {
    return blacklist_.contains(vm);
  }

  [[nodiscard]] const std::unordered_set<VmId>& blacklist() const {
    return blacklist_;
  }

  /// Total VMs ever quarantined by this guard.
  [[nodiscard]] int quarantineCount() const {
    return static_cast<int>(blacklist_.size());
  }

 private:
  struct Track {
    double smoothed_ratio = 1.0;
    int consecutive_low = 0;
  };

  const CloudProvider* cloud_;
  const MonitoringService* monitor_;
  ResilienceOptions options_;
  obs::Tracer tracer_;
  std::unordered_map<VmId, Track> tracks_;
  std::unordered_set<VmId> blacklist_;
};

}  // namespace dds
