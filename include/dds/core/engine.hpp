// SimulationEngine: wires a dynamic dataflow, the cloud model, trace
// replay, a workload profile and a scheduler into one experiment run.
//
//   Dataflow df = makePaperDataflow();
//   ExperimentConfig cfg;
//   cfg.mean_rate = 10.0;
//   cfg.profile = ProfileKind::PeriodicWave;
//   cfg.infra_variability = true;
//   SimulationEngine engine(df, cfg);
//   ExperimentResult r = engine.run(SchedulerKind::GlobalAdaptive);
//
// Every run() constructs a fresh cloud, replayer and simulator, so runs of
// different schedulers under the same config are independent and see
// identical workloads and (for a fixed seed) identical trace assignments.
#pragma once

#include <memory>

#include "dds/core/experiment.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/obs/trace_sink.hpp"
#include "dds/sched/scheduler.hpp"

namespace dds {

struct TracePools;
struct FluidGraphLayout;

/// Immutable shared arenas an engine may consume instead of constructing
/// its own copies per run: the resolved resource catalog (spot tier
/// already applied when enabled), the generated trace pools for this
/// config's seed, and the planner closure for this (dataflow, catalog)
/// pair. Every field is optional — a null entry falls back to per-run
/// construction, and a populated one is bit-identical to it by contract
/// (the exp-layer Substrate builds them through the exact same code
/// paths). All pointees are const and safely shared across threads.
struct EngineArenas {
  std::shared_ptr<const ResourceCatalog> catalog;
  std::shared_ptr<const TracePools> trace_pools;
  std::shared_ptr<const PlanStructure> plan_structure;
  std::shared_ptr<const FluidGraphLayout> fluid_layout;
};

/// Orchestrates one experiment configuration over any scheduler kind.
class SimulationEngine {
 public:
  SimulationEngine(const Dataflow& dataflow, ExperimentConfig config);

  /// Same, reading shared substrate arenas instead of rebuilding the
  /// catalog / trace pools / planner tables inside every run().
  SimulationEngine(const Dataflow& dataflow, ExperimentConfig config,
                   EngineArenas arenas);

  /// Run the full optimization period under the given policy.
  [[nodiscard]] ExperimentResult run(SchedulerKind kind) const {
    return run(kind, nullptr);
  }

  /// Same, streaming every trace event of the run into `sink` (may be
  /// null for no tracing). Event order is deterministic for a fixed seed
  /// and config: two runs write byte-identical JSONL traces.
  [[nodiscard]] ExperimentResult run(SchedulerKind kind,
                                     obs::TraceSink* sink) const;

  /// The sigma this config resolves to (override or §8.2 derivation).
  [[nodiscard]] double sigma() const { return sigma_; }

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }

 private:
  const Dataflow* dataflow_;
  ExperimentConfig config_;
  EngineArenas arenas_;
  double sigma_;
};

/// Derive the §6/§8.2 equivalence factor for a dataflow at a mean rate:
/// Gamma_max uses every PE's best-value alternate (== 1 by normalization),
/// Gamma_min the worst; acceptable cost at max value follows the linear
/// $4/h @ 2 msg/s .. $100/h @ 50 msg/s expectation, and the acceptable
/// cost at min value scales proportionally (C_min = Gamma_min * C_max),
/// which reduces sigma to 1 / C_max.
[[nodiscard]] double deriveSigma(const Dataflow& df, double mean_rate,
                                 SimTime horizon_s);

}  // namespace dds
