// Result reporting: turn run results into CSV tables and console
// summaries. Shared by the ddsim CLI, the benches and user code so every
// surface prints the same columns.
#pragma once

#include <span>

#include "dds/common/csv.hpp"
#include "dds/common/table.hpp"
#include "dds/core/experiment.hpp"

namespace dds {

/// Per-interval series of one run:
/// interval, start_s, input_rate, omega, gamma, cost_usd, vms, cores.
[[nodiscard]] CsvTable intervalSeriesCsv(const RunResult& run);

/// One row per experiment: policy is encoded by row order (CSV cells are
/// numeric); pair with summaryTable for the labelled view.
[[nodiscard]] CsvTable summaryCsv(std::span<const ExperimentResult> results);

/// Human-readable summary of several runs, §8.2-style: constraint mark
/// first, then the Theta comparison.
[[nodiscard]] TextTable summaryTable(
    std::span<const ExperimentResult> results);

}  // namespace dds
