// Compatibility shim: runReplicated moved to the exp layer (it is built
// on the parallel campaign runner). Include dds/exp/replication.hpp.
#pragma once

#include "dds/exp/replication.hpp"  // IWYU pragma: export
