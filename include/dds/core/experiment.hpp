// Experiment configuration and results — the public surface the examples
// and the benchmark harness drive.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dds/common/time.hpp"
#include "dds/forecast/forecaster.hpp"
#include "dds/metrics/run_metrics.hpp"
#include "dds/obs/metrics_registry.hpp"
#include "dds/sched/scheduler.hpp"
#include "dds/sim/simulator.hpp"
#include "dds/workload/rate_profile.hpp"

namespace dds {

/// Which simulator executes the run.
enum class SimBackend {
  Fluid,  ///< steady-state per-interval rates (fast; the §8 default).
  Event,  ///< message-level discrete events (adds latency percentiles).
};

[[nodiscard]] std::string toString(SimBackend backend);

/// What the dataflow ingests: rate profile shape and message geometry
/// (§8.1-8.2), plus whether the cloud replays FutureGrid-like traces.
struct WorkloadConfig {
  double mean_rate = 5.0;  ///< msgs/s (2..50 in §8).
  ProfileKind profile = ProfileKind::Constant;
  double msg_size_bytes = 100.0e3;
  bool infra_variability = false;  ///< replay FutureGrid-like traces?

  /// Append one message per invalid field to `errors` (never throws).
  void appendErrors(std::vector<std::string>& errors) const;

  bool operator==(const WorkloadConfig&) const = default;
};

/// Injected cloud turbulence (all families default off; fluid-only).
struct FaultConfig {
  /// Mean time between failures per VM, hours; 0 disables fault injection
  /// (§9 future work: fault tolerance via re-allocation and alternates).
  double vm_mtbf_hours = 0.0;
  /// Degraded-VM (straggler) episodes: mean time between episodes per VM,
  /// hours; 0 disables. During an episode the VM's observed core power
  /// drops to `straggler_factor` of its trace-modulated value for
  /// `straggler_duration_s` seconds.
  double straggler_mtbf_hours = 0.0;
  double straggler_factor = 0.3;
  double straggler_duration_s = 600.0;
  /// Probability the provider rejects one acquisition attempt; 0 disables.
  double acquisition_failure_prob = 0.0;
  /// Mean provisioning lag between acquire and the VM coming online,
  /// seconds (exponential per VM); 0 = instant delivery. Billing starts at
  /// acquisition either way — provisioning time is paid for.
  double provisioning_delay_s = 0.0;
  /// Transient network partitions: mean time between partition episodes
  /// per VM pair, hours; 0 disables. A partitioned pair sees zero
  /// bandwidth and effectively infinite latency for
  /// `partition_duration_s` seconds.
  double partition_mtbf_hours = 0.0;
  double partition_duration_s = 120.0;

  /// Whether any fault family is switched on.
  [[nodiscard]] bool anyEnabled() const;

  void appendErrors(std::vector<std::string>& errors) const;

  bool operator==(const FaultConfig&) const = default;
};

/// Rapid-elasticity realism knobs (all default off; delays and spot are
/// fluid-only like the fault families, migration downtime works on both
/// backends). Disabled, runs are bit-identical to the ideal cloud.
struct ElasticityConfig {
  /// Mean exponential provisioning lag between acquire and the VM coming
  /// online, seconds; the per-core term adds class dependence
  /// (mean = base + per_core * (cores - 1)). 0/0 = instant delivery.
  double provisioning_delay_s = 0.0;
  double provisioning_delay_per_core_s = 0.0;
  /// Spot market: discount in (0, 1) on the on-demand price (0 disables
  /// the spot tier entirely), mean time between provider reclamations
  /// per spot VM in hours, and the warning-notice lead time in seconds.
  double spot_discount = 0.0;
  double spot_preemption_mtbf_h = 0.0;
  double spot_notice_s = 120.0;
  /// Fraction of the heuristic allocator's acquisitions steered to the
  /// spot tier when one exists (seed-deterministic per acquisition).
  double spot_fraction = 1.0;
  /// Per-PE buffered state, MB; on migration (scale-in, quarantine,
  /// preemption drain) the moved share pauses service while it transfers
  /// at `migration_bandwidth_mbps`. 0 = instant migration.
  double pe_state_mb = 0.0;
  double migration_bandwidth_mbps = 100.0;

  [[nodiscard]] bool delaysEnabled() const {
    return provisioning_delay_s > 0.0 || provisioning_delay_per_core_s > 0.0;
  }
  [[nodiscard]] bool spotEnabled() const { return spot_discount > 0.0; }
  [[nodiscard]] bool migrationEnabled() const { return pe_state_mb > 0.0; }
  [[nodiscard]] bool anyEnabled() const {
    return delaysEnabled() || spotEnabled() || migrationEnabled();
  }

  void appendErrors(std::vector<std::string>& errors) const;

  bool operator==(const ElasticityConfig&) const = default;
};

/// Scheduler-side responses to cloud turbulence (see
/// dds/sched/resilience.hpp). Quarantine threshold 0 disables the
/// straggler guard.
struct ResilienceConfig {
  double quarantine_threshold = 0.0;
  int quarantine_probes = 3;
  int acquisition_max_retries = 3;
  double acquisition_backoff_s = 60.0;
  bool graceful_degradation = false;

  void appendErrors(std::vector<std::string>& errors) const;

  bool operator==(const ResilienceConfig&) const = default;
};

/// Rate forecasting + predictive scheduling (default off; fluid-only
/// like the fault families). Off, runs are bit-identical to reactive:
/// no forecaster is built, schedulers see a null forecast pointer.
struct ForecastConfig {
  /// Which model predicts future input rates (see dds/forecast):
  /// Off disables the subsystem entirely.
  ForecastModel model = ForecastModel::Off;
  /// How many intervals ahead each forecast covers. The predictive
  /// schedulers score alternates over this whole vector and scan it
  /// (bounded by the pre-acquisition lead) for peaks.
  int horizon_intervals = 5;
  /// Model parameters (see ForecastOptions for semantics).
  double ewma_alpha = 0.3;
  double hw_alpha = 0.3;
  double hw_beta = 0.05;
  double hw_gamma = 0.3;
  int hw_season_intervals = 30;
  /// A predicted peak must exceed the current rate by this fraction
  /// before the scheduler pre-acquires (and holds off scale-in).
  double preacquire_margin = 0.1;
  /// Score alternate switches against the whole forecast vector (mean
  /// Theta) instead of the last observed interval only.
  bool lookahead_alternates = true;

  [[nodiscard]] bool enabled() const { return model != ForecastModel::Off; }

  void appendErrors(std::vector<std::string>& errors) const;

  bool operator==(const ForecastConfig&) const = default;
};

/// One experiment run's knobs (§8.1-8.2 defaults). Workload, fault and
/// resilience knobs live in nested sub-structs; the remaining fields are
/// the engine-level controls.
struct ExperimentConfig {
  SimTime horizon_s = 1.0 * kSecondsPerHour;  ///< optimization period T.
  SimTime interval_s = 60.0;                  ///< adaptation interval.
  std::uint64_t seed = 42;
  double omega_target = 0.7;  ///< Omega-hat (§8.2).
  double epsilon = 0.05;      ///< tolerance (§8.2).
  IntervalIndex alternate_period = 2;  ///< n_a for Alg. 2.
  IntervalIndex resource_period = 1;   ///< n_r for Alg. 2.
  /// Negative means "derive sigma from the §8.2 pricing expectation".
  double sigma_override = -1.0;
  /// EWMA weight for the monitoring probes the schedulers plan against;
  /// 1.0 = react to raw instantaneous probes (the default behaviour).
  double power_smoothing_alpha = 1.0;
  /// Racks in the simulated data center; 0 disables spatial placement
  /// effects (every VM pair sees the same rated network).
  int placement_racks = 0;
  /// Resource-class catalog: "m1" (the §8.1 default), "m3", or "mixed".
  std::string catalog = "m1";
  /// Buy the cheapest-per-power class instead of Alg. 1's largest-first
  /// (an improvement that matters on mixed-generation catalogs).
  bool cheapest_class_acquisition = false;
  /// Simulator backend. The event backend additionally reports end-to-end
  /// latency percentiles; fault injection is fluid-only for now.
  SimBackend backend = SimBackend::Fluid;
  /// Run the event backend on its reference (scan-everything) engine
  /// instead of the cached one. Both are bit-identical; this exists for
  /// cross-checks and golden-trace tests.
  bool event_reference_engine = false;
  /// Run the fluid backend on its reference (per-object, per-interval
  /// re-snapshot) kernel instead of the cached SoA kernel. Both are
  /// bit-identical; this exists for cross-checks and golden-trace tests.
  bool fluid_reference_engine = false;
  /// Queue-delay SLA for the heuristic schedulers (seconds; 0 disables):
  /// any PE whose backlog would take longer than this to drain triggers a
  /// scale-out sized to drain it — bounds latency, costs capacity.
  double max_queue_delay_s = 0.0;

  WorkloadConfig workload;
  FaultConfig faults;
  ElasticityConfig elasticity;
  ResilienceConfig resilience;
  ForecastConfig forecast;

  /// Every validation error in the config, one message per field; empty
  /// when the config is valid. Unlike a fail-fast check this reports ALL
  /// problems at once, so a user fixes a config file in one round trip.
  [[nodiscard]] std::vector<std::string> validationErrors() const;

  /// Throws PreconditionError listing every invalid field; no-op when
  /// valid.
  void validate() const;

  /// Memberwise equality — what campaign config interning dedupes on.
  bool operator==(const ExperimentConfig&) const = default;
};

/// Summary of a run, plus the full interval series.
struct ExperimentResult {
  std::string scheduler_name;
  RunResult run;
  double sigma = 0.0;
  double average_omega = 0.0;
  double average_gamma = 0.0;
  double total_cost = 0.0;
  double theta = 0.0;
  bool constraint_met = false;
  int peak_vms = 0;
  int peak_cores = 0;
  int vm_failures = 0;          ///< crashes injected during the run.
  int preemptions = 0;          ///< spot VMs reclaimed by the provider.
  double messages_lost = 0.0;   ///< queued messages lost to crashes.
  /// Fault-recovery metrics against Omega-hat (meaningful when any fault
  /// family is enabled; availability is 1.0 on a clean run).
  RecoveryStats recovery;
  /// Resilience counters from the scheduler (zero for policies without a
  /// resilience layer) and the provider's global rejection count.
  SchedulerTelemetry resilience;
  int acquisition_rejections = 0;  ///< provider-wide rejected attempts.
  /// Filled by the event backend only (zero under the fluid backend):
  std::size_t messages_delivered = 0;
  double latency_mean_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  /// Observability counters/gauges/histograms the run accumulated
  /// (see dds/obs/metrics_registry.hpp); name-sorted.
  obs::MetricsSnapshot metrics;
};

}  // namespace dds
