// Dynamic paths (paper §9 future work): alternates at subgraph granularity.
//
// "As future work, we propose to extend the concept of dynamic tasks to
// dynamic paths. This will further allow for alternate implementations at
// coarser granularities, such as a subset of the application graph."
//
// A DynamicPathApplication is a dataflow with one *path group*: a region
// between a split PE and a merge PE that can be realized by any of several
// subgraph variants (e.g. "single deep model" vs "filter + light model
// cascade"). Each variant materializes into an ordinary Dataflow, so the
// whole §7 machinery applies unchanged; selection among variants reuses
// the alternate-selection idea at path granularity — rank by aggregate
// value against aggregate (selectivity-weighted) cost.
//
// Selection here is a deployment-time decision, mirroring how §7.1 treats
// the initial alternate choice; switching whole paths live would need
// subgraph state migration, which stays future work (as in the paper).
#pragma once

#include <string>
#include <vector>

#include "dds/dataflow/dataflow.hpp"
#include "dds/sched/alternate_selection.hpp"

namespace dds {

/// One subgraph variant of a path group.
struct PathVariant {
  struct FragmentPe {
    std::string name;
    std::vector<Alternate> alternates;
  };

  std::string name;
  std::vector<FragmentPe> pes;
  /// Directed edges between fragment PEs, as indices into `pes`.
  std::vector<std::pair<std::size_t, std::size_t>> internal_edges;
  /// Fragment PEs that receive the split PE's output.
  std::vector<std::size_t> entries;
  /// Fragment PEs that feed the merge PE.
  std::vector<std::size_t> exits;

  void validate() const;
};

/// A dataflow with a replaceable region between two boundary PEs.
class DynamicPathApplication {
 public:
  /// @param head  PEs upstream of the group, in pipeline order (>= 1);
  ///              the last one is the split point.
  /// @param tail  PEs downstream of the group, in pipeline order (>= 1);
  ///              the first one is the merge point.
  DynamicPathApplication(std::string name,
                         std::vector<PathVariant::FragmentPe> head,
                         std::vector<PathVariant::FragmentPe> tail,
                         std::vector<PathVariant> variants);

  [[nodiscard]] std::size_t variantCount() const { return variants_.size(); }
  [[nodiscard]] const PathVariant& variant(std::size_t i) const;

  /// Build the concrete dataflow for variant `i`. PE ids are assigned
  /// head-first, then fragment, then tail.
  [[nodiscard]] Dataflow materialize(std::size_t i) const;

  /// Aggregate relative value of a variant: the mean over its fragment
  /// PEs of their best alternate's relative value (== 1 each), weighted
  /// against the *best variant's* mean raw value — mirrors gamma.
  [[nodiscard]] double variantValue(std::size_t i) const;

  /// Aggregate cost of a variant: the selectivity-weighted sum of its
  /// fragment PEs' chosen-alternate costs (the same downstream-cost DP
  /// the global strategy uses, §7.1), per message entering the group.
  [[nodiscard]] double variantCost(std::size_t i, Strategy strategy) const;

  /// Rank variants by value/cost ratio (Alg. 1's rule lifted to paths)
  /// and return the winner's index.
  [[nodiscard]] std::size_t selectVariant(Strategy strategy) const;

 private:
  std::string name_;
  std::vector<PathVariant::FragmentPe> head_;
  std::vector<PathVariant::FragmentPe> tail_;
  std::vector<PathVariant> variants_;
};

/// A ready-made example: a two-stage analytics region that can run as a
/// single heavyweight model or as a filter + lightweight model cascade.
[[nodiscard]] DynamicPathApplication makeCascadePathApplication();

}  // namespace dds
