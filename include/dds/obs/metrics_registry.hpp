// Named run metrics: counters, gauges, histograms.
//
// A MetricsRegistry belongs to one engine run (never shared across
// threads); instruments are created on first use and held by pointer,
// so the per-interval update path is an increment, not a map lookup.
// snapshot() flattens everything into name-sorted MetricSamples that
// travel inside ExperimentResult and the campaign JSON export —
// deterministic ordering keeps exports diffable across runs.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "dds/common/stats.hpp"

namespace dds::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Sample distribution: streaming moments (RunningStats) plus retained
/// samples for exact linear-interpolation percentiles matching
/// dds::percentile. Simulation runs observe one value per interval, so
/// retention is bounded by the horizon.
class Histogram {
 public:
  void observe(double v) {
    stats_.add(v);
    samples_.push_back(v);
  }

  [[nodiscard]] const RunningStats& stats() const { return stats_; }
  [[nodiscard]] std::span<const double> samples() const { return samples_; }

  /// p in [0, 100]; zero for an empty histogram.
  [[nodiscard]] double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    return dds::percentile(samples_, p);
  }

 private:
  RunningStats stats_;
  std::vector<double> samples_;
};

/// One exported metric; `kind` selects which fields are meaningful.
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };

  std::string name;
  Kind kind = Kind::Counter;
  double value = 0.0;  // counter total or gauge value
  // Histogram fields:
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

using MetricsSnapshot = std::vector<MetricSample>;

class MetricsRegistry {
 public:
  /// Instrument accessors create on first use and return stable
  /// references (std::map nodes never move).
  [[nodiscard]] Counter& counter(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) {
    return gauges_[name];
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  /// All instruments, name-sorted (counters, gauges and histograms
  /// share one namespace; duplicate names across kinds are a bug).
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dds::obs
