// Streaming JSONL trace sink.
//
// One compact JSON object per line, written as events arrive so a
// multi-hour run never buffers its trace. Doubles use the shortest
// round-tripping representation (common/json), and non-finite values
// serialize as "NaN"/"Infinity"/"-Infinity" string sentinels that
// TraceReader maps back exactly — parse -> re-serialize is therefore
// byte-identical, which `ddtrace --check` verifies.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "dds/obs/trace_sink.hpp"

namespace dds::obs {

/// One JSONL line (no trailing newline) for a single event.
[[nodiscard]] std::string traceEventJson(const TraceEvent& event);

/// Writes each event as one JSONL line to a stream or file.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Stream ctor: the sink does not own `out` (tests pass an
  /// ostringstream; campaign jobs use the path ctor).
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}

  /// File ctor: opens (truncates) `path`; throws IoError on failure.
  explicit JsonlTraceSink(const std::string& path);

  void emit(const TraceEvent& event) override;

  /// Events written so far.
  [[nodiscard]] std::uint64_t eventCount() const { return count_; }

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::uint64_t count_ = 0;
};

}  // namespace dds::obs
