// Trace collection: the sink interface and the near-zero-cost Tracer
// handle threaded through every instrumented layer.
//
// Design rule: tracing must stay off the hot path the simulator
// optimizations protect. Instrumented code holds a `Tracer` (one
// pointer) and guards every emission site with `if (tracer.enabled())`
// so the disabled path is a single predictable branch and never
// constructs an event. Sinks are single-threaded by contract: one sink
// belongs to one engine run, and parallel campaign jobs each own their
// own sink, which keeps traces deterministic at any --jobs count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dds/obs/trace_event.hpp"

namespace dds::obs {

/// Receives every event of one run, in emission order.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
};

/// Discards everything. Exists so tests can assert the guarded-call
/// contract; production code models "no tracing" as a null Tracer
/// instead, which skips event construction entirely.
class NullTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent&) override {}
};

/// Keeps the most recent `capacity` events in memory; older events are
/// overwritten. Useful for always-on flight-recorder tracing where only
/// the window before a failure matters.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity) : capacity_(capacity) {
    buffer_.reserve(capacity_);
  }

  void emit(const TraceEvent& event) override {
    if (capacity_ == 0) {
      ++dropped_;
      return;
    }
    if (buffer_.size() < capacity_) {
      buffer_.push_back(event);
    } else {
      buffer_[next_] = event;
      ++dropped_;
    }
    next_ = (next_ + 1) % capacity_;
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(buffer_.size());
    if (buffer_.size() < capacity_) {
      out = buffer_;
    } else {
      for (std::size_t i = 0; i < buffer_.size(); ++i) {
        out.push_back(buffer_[(next_ + i) % capacity_]);
      }
    }
    return out;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  /// Events overwritten (or discarded by a zero-capacity ring).
  [[nodiscard]] std::uint64_t droppedCount() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> buffer_;
};

/// Copyable handle instrumented code emits through. Null by default;
/// `enabled()` is the branch every emission site must test before
/// building an event.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }

  void emit(const TraceEvent& event) const {
    if (sink_ != nullptr) sink_->emit(event);
  }

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace dds::obs
