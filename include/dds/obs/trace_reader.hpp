// JSONL trace ingestion for ddtrace and the round-trip tests.
//
// Strict by design: an unknown "ev" discriminator, a missing field, or
// malformed JSON throws IoError with the offending line number —
// a trace that cannot be fully interpreted should fail loudly, not
// produce a silently incomplete timeline.
#pragma once

#include <istream>
#include <vector>

#include "dds/obs/trace_event.hpp"

namespace dds::obs {

/// Parse one JSONL line (as produced by traceEventJson) back into a
/// typed event. "NaN"/"Infinity"/"-Infinity" string sentinels in
/// numeric fields map back to the exact non-finite value.
[[nodiscard]] TraceEvent parseTraceEventJson(const std::string& line);

/// Read a whole JSONL stream; blank lines are ignored.
[[nodiscard]] std::vector<TraceEvent> readTraceJsonl(std::istream& in);

}  // namespace dds::obs
