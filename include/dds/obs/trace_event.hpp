// Typed, seed-deterministic simulation trace events.
//
// Every adaptation-relevant state change in a run — interval boundaries,
// VM lifecycle, core allocation, alternate switches, straggler
// quarantine, fault injection, Ω̂ violations, scheduler decisions — is
// one `TraceEvent` variant. Payloads carry plain integers and doubles
// only (ids are unwrapped at this serialization boundary), and nothing
// derives from wall-clock or allocation order, so two runs with the
// same seed and config emit byte-identical traces.
//
// Events are consumed through the `TraceSink` interface (trace_sink.hpp)
// and serialized one-per-line as JSONL (jsonl_sink.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dds/common/time.hpp"

namespace dds::obs {

/// First record of every trace: identifies the run so an analyzer can
/// interpret interval indices and the profit objective without the
/// original config file.
struct RunHeaderEvent {
  std::string scheduler;
  std::uint64_t seed = 0;
  double sigma = 0.0;
  double omega_target = 0.0;
  double epsilon = 0.0;
  double horizon_s = 0.0;
  double interval_s = 0.0;
  std::string backend;  // "fluid" or "event"
};

/// Interval `interval` starts at simulation time `t` with the workload
/// offering `input_rate` msg/s.
struct IntervalBeginEvent {
  SimTime t = 0.0;
  std::int64_t interval = 0;
  double input_rate = 0.0;
};

/// Interval summary: Ω for the interval, running Γ̄/Ω̄, cumulative cost
/// μ, resource footprint, utilization ρ = processed/capacity in [0,1]
/// and total queued backlog across PEs.
struct IntervalEndEvent {
  SimTime t = 0.0;
  std::int64_t interval = 0;
  double omega = 0.0;
  double omega_bar = 0.0;
  double gamma = 0.0;
  double cost = 0.0;
  double utilization = 0.0;
  double backlog_msgs = 0.0;
  std::int64_t active_vms = 0;
  std::int64_t allocated_cores = 0;
};

/// A VM of resource class `vm_class` was acquired at `t` and becomes
/// usable at `ready` (provisioning delays push `ready` past `t`).
struct VmAcquireEvent {
  SimTime t = 0.0;
  std::uint32_t vm = 0;
  std::string vm_class;
  std::int64_t cores = 0;
  double price_per_hour = 0.0;
  SimTime ready = 0.0;
};

/// A VM was released; `billed_cost` is its final hour-quantized bill.
struct VmReleaseEvent {
  SimTime t = 0.0;
  std::uint32_t vm = 0;
  std::string vm_class;
  double billed_cost = 0.0;
};

/// The provider rejected an acquisition request (injected acquisition
/// fault); the scheduler's retry/fallback layer sees this as pressure.
struct AcquisitionFailureEvent {
  SimTime t = 0.0;
  std::string vm_class;
};

/// `delta` cores of `vm` were (de)allocated to `pe` (+1 on allocate,
/// -1 on release).
struct CoreAllocEvent {
  SimTime t = 0.0;
  std::uint32_t vm = 0;
  std::uint32_t pe = 0;
  std::int64_t delta = 0;
};

/// PE `pe` switched its active alternate `from` -> `to` (gamma values
/// are the alternates' normalized-value contributions).
struct AlternateSwitchEvent {
  SimTime t = 0.0;
  std::uint32_t pe = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double gamma_from = 0.0;
  double gamma_to = 0.0;
};

/// StragglerGuard quarantined `vm` (smoothed throughput ratio below
/// threshold); `evacuated_cores` PE-cores were moved off it.
struct StragglerQuarantineEvent {
  SimTime t = 0.0;
  std::uint32_t vm = 0;
  double smoothed_ratio = 0.0;
  std::int64_t evacuated_cores = 0;
};

/// A quarantined VM recovered and re-entered the placement pool.
struct StragglerRecoveryEvent {
  SimTime t = 0.0;
  std::uint32_t vm = 0;
};

/// The fault plan fired: `family` names the fault class ("crash",
/// "straggler", ...), `messages_lost` the inflight loss charged.
struct FaultInjectionEvent {
  SimTime t = 0.0;
  std::uint32_t vm = 0;
  std::string family;
  double messages_lost = 0.0;
};

/// A provisioning VM's capacity came online: `vm` was acquired earlier
/// and its cores start delivering observed power at `t` (= ready time).
struct ProvisioningCompleteEvent {
  SimTime t = 0.0;
  std::uint32_t vm = 0;
};

/// The provider announced it will reclaim spot VM `vm` at `preempt_at`
/// (the warning notice; `preempt_at - t` is the notice window remaining).
struct PreemptionNoticeEvent {
  SimTime t = 0.0;
  std::uint32_t vm = 0;
  SimTime preempt_at = 0.0;
};

/// The provider reclaimed spot VM `vm`; `messages_lost` is the undrained
/// backlog charged against the hosted PEs.
struct PreemptionEvent {
  SimTime t = 0.0;
  std::uint32_t vm = 0;
  double messages_lost = 0.0;
};

/// PE `pe` began migrating `backlog_fraction` of its buffered state;
/// service on the moved share pauses for `downtime_s` seconds while the
/// buffers transfer.
struct MigrationBeginEvent {
  SimTime t = 0.0;
  std::uint32_t pe = 0;
  double backlog_fraction = 0.0;
  double downtime_s = 0.0;
};

/// PE `pe` finished its buffer migration and resumed full service.
struct MigrationEndEvent {
  SimTime t = 0.0;
  std::uint32_t pe = 0;
};

/// The interval's Ω dropped below the target Ω̂ (paper constraint
/// Ω̄ ≥ Ω̂; per-interval dips show *where* the average was lost).
struct OmegaViolationEvent {
  SimTime t = 0.0;
  std::int64_t interval = 0;
  double omega = 0.0;
  double omega_target = 0.0;
};

/// A candidate plan the scheduler evaluated and did not pick, with the
/// profit Θ = Γ̄ − σ·μ it would have scored.
struct RejectedPlan {
  std::string plan;
  double theta = 0.0;
};

/// One scheduler decision: which phase ran ("deploy", "alternate",
/// "resource", "quarantine", ...), what action it took, the observed
/// Ω/Ω̄ that triggered it, the chosen plan's Θ (NaN when the policy
/// does not score plans), and optionally the best rejected candidates.
struct SchedulerDecisionEvent {
  SimTime t = 0.0;
  std::int64_t interval = 0;
  std::string phase;
  std::string action;
  double omega = 0.0;
  double omega_bar = 0.0;
  double theta = 0.0;
  std::vector<RejectedPlan> rejected;
};

/// The forecaster's predicted rate vector: rates[k] predicts interval
/// + k (the model has observed rates up to interval − 1, so rates[0]
/// is the one-step prediction of the current interval). Emitted once
/// per interval while forecasting is enabled.
struct ForecastEvent {
  SimTime t = 0.0;
  std::int64_t interval = 0;
  std::string model;
  std::vector<double> rates;
};

/// The predictive scheduler bought `vms` VMs ahead of a forecast peak:
/// `peak_rate` predicted at `peak_interval`, `lead_s` seconds ahead of
/// now; the last of the new VMs finishes provisioning at `ready_by`.
struct PreAcquireEvent {
  SimTime t = 0.0;
  std::int64_t interval = 0;
  std::int64_t peak_interval = 0;
  double peak_rate = 0.0;
  double lead_s = 0.0;
  std::int64_t vms = 0;
  SimTime ready_by = 0.0;
};

using TraceEvent =
    std::variant<RunHeaderEvent, IntervalBeginEvent, IntervalEndEvent,
                 VmAcquireEvent, VmReleaseEvent, AcquisitionFailureEvent,
                 CoreAllocEvent, AlternateSwitchEvent,
                 StragglerQuarantineEvent, StragglerRecoveryEvent,
                 FaultInjectionEvent, ProvisioningCompleteEvent,
                 PreemptionNoticeEvent, PreemptionEvent,
                 MigrationBeginEvent, MigrationEndEvent,
                 OmegaViolationEvent, SchedulerDecisionEvent,
                 ForecastEvent, PreAcquireEvent>;

/// Stable wire name of the event's type ("interval_end", "vm_acquire",
/// ...); used as the "ev" discriminator in JSONL records.
[[nodiscard]] std::string_view traceEventName(const TraceEvent& e);

/// Simulation time the event occurred at (the run header reports 0).
[[nodiscard]] SimTime traceEventTime(const TraceEvent& e);

}  // namespace dds::obs
