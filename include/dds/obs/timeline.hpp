// Trace analysis: fold a run's event stream into a per-interval
// timeline plus run-level aggregates — the data behind ddtrace's
// tables, factored out so tests can assert on it directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dds/obs/trace_event.hpp"

namespace dds::obs {

/// One interval of the run, with the paper's per-interval quantities
/// and counts of the discrete events that landed inside it.
struct TimelineRow {
  std::int64_t interval = 0;
  SimTime t = 0.0;
  double input_rate = 0.0;
  double omega = 0.0;
  double omega_bar = 0.0;
  double gamma = 0.0;
  double cost = 0.0;
  double utilization = 0.0;
  double backlog_msgs = 0.0;
  std::int64_t active_vms = 0;
  std::int64_t allocated_cores = 0;
  bool violated = false;
  std::int64_t alternate_switches = 0;
  std::int64_t vm_acquires = 0;
  std::int64_t vm_releases = 0;
  std::int64_t acquisition_failures = 0;
  std::int64_t faults = 0;
  std::int64_t quarantines = 0;
  std::int64_t decisions = 0;
  std::int64_t provisioning_completions = 0;
  std::int64_t preemption_notices = 0;
  std::int64_t preemptions = 0;
  std::int64_t migrations = 0;  ///< migration_begin events in the interval.
  /// One-step forecast of this interval's rate (forecast event's
  /// rates[0]); valid only when has_prediction is set.
  double predicted_rate = 0.0;
  bool has_prediction = false;
  std::int64_t preacquires = 0;  ///< preacquire events in the interval.
};

/// One forecast-driven pre-acquisition, with whether the new VMs were
/// ready by the start of the predicted peak interval.
struct PreAcquireRecord {
  std::int64_t interval = 0;
  std::int64_t peak_interval = 0;
  double peak_rate = 0.0;
  double lead_s = 0.0;
  std::int64_t vms = 0;
  SimTime ready_by = 0.0;
  bool beat_peak = false;
};

/// Run-level fold of a trace.
struct TraceAnalysis {
  RunHeaderEvent header;
  bool has_header = false;
  std::vector<TimelineRow> rows;
  /// Event-type name -> occurrences across the whole trace.
  std::map<std::string, std::int64_t> event_counts;
  double average_omega = 0.0;  // Ω̄ over all intervals
  double average_gamma = 0.0;  // Γ̄ over all intervals
  double final_cost = 0.0;     // μ at the horizon
  double theta = 0.0;          // Γ̄ − σ·μ (σ from the header)
  std::int64_t violations = 0;
  double peak_vms = 0.0;
  double peak_cores = 0.0;
  /// Elasticity summary derived from the violated-interval runs: one
  /// "episode" is a maximal run of consecutive Ω̂-violating intervals;
  /// its length is the time-to-recover. slo_violation_s totals the time
  /// spent below the target across the run (open episodes included).
  std::int64_t recovery_episodes = 0;
  double mean_recovery_s = 0.0;
  double p95_recovery_s = 0.0;
  double slo_violation_s = 0.0;
  /// Forecast summary (empty model / zero samples when the run had
  /// forecasting off). Accuracy is one-step: each interval's predicted
  /// rate against the realized input rate; MAPE skips near-zero
  /// realized rates, bias is the signed mean error.
  std::string forecast_model;
  std::int64_t forecast_samples = 0;
  double forecast_mape = 0.0;
  double forecast_bias = 0.0;
  std::vector<PreAcquireRecord> preacquires;
  std::int64_t preacquires_beat = 0;    ///< VMs ready before their peak.
  std::int64_t preacquires_missed = 0;  ///< peak landed first.
};

/// Fold events (in emission order) into a timeline. Discrete events
/// are attributed to intervals by time using the header's interval_s;
/// a trace without interval_end events yields an empty timeline.
[[nodiscard]] TraceAnalysis analyzeTrace(
    const std::vector<TraceEvent>& events);

}  // namespace dds::obs
