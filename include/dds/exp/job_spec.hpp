// Versioned JSON job specs — the wire format of the campaign service.
//
// One spec describes one experiment job a tenant submits: which standard
// graph to run, which scheduler policy, and a set of config deltas in
// the canonical (nested) key vocabulary. Specs arrive as single JSON
// lines (`ddsim --serve` reads one per stdin line) and parse strictly:
// unknown top-level fields, unknown or deprecated config keys, and any
// version other than v1 are hard ConfigErrors — a service cannot
// silently ignore a typo the way an interactive CLI can warn about one.
//
// Schema v1 (all fields optional except "v"):
//
//   {"v": 1,                       // required; only 1 is spoken
//    "tenant": "team-a",           // display/billing tag, default ""
//    "label": "baseline",          // display label, default scheduler name
//    "graph": "paper",             // paper | diamond | chain
//    "chain_length": 4,            // chain only; integral >= 1
//    "scheduler": "global",        // one policy name (see schedulers.hpp)
//    "config": {"seed": 7, ...}}   // canonical config keys only
//
// Config values may be JSON numbers, bools, or strings; they funnel
// through KeyValueConfig::set into experimentFromConfig with
// `config_schema = strict`, so a spec and a strict config file accept
// exactly the same vocabulary. Numbers are rendered with jsonNumber()
// (shortest round-trip form), so doubles survive spec -> config exactly.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "dds/config/config_file.hpp"

namespace dds {

/// One parsed job spec (schema v1).
struct JobSpec {
  /// The only schema version this build speaks.
  static constexpr std::int64_t kVersion = 1;

  std::string tenant;
  std::string label;
  std::string graph = "paper";
  std::size_t chain_length = 4;
  std::string scheduler = "global";

  /// One config delta, preserving the JSON value type so serialization
  /// round-trips (numbers stay numbers, bools stay bools).
  struct ConfigValue {
    enum class Kind { Bool, Number, String };
    Kind kind = Kind::String;
    bool boolean = false;
    double number = 0.0;
    std::string text;

    /// The config-file string form KeyValueConfig::set receives.
    [[nodiscard]] std::string asConfigString() const;
  };

  /// Config deltas in spec order (serialization preserves it).
  std::vector<std::pair<std::string, ConfigValue>> config;

  /// Compact single-line JSON (schema v1). parseJobSpec(toJson()) is the
  /// identity on every field.
  [[nodiscard]] std::string toJson() const;
};

/// Parse one JSON line into a spec. Throws ConfigError on malformed
/// JSON, an unknown top-level field, a missing or unsupported "v", a
/// wrongly-typed field, or a reserved key inside "config" (graph /
/// chain_length / scheduler belong at the top level; output_csv and
/// config_schema have no meaning in a spec).
[[nodiscard]] JobSpec parseJobSpec(const std::string& json_line);

/// Resolve the spec's scheduler + config deltas into a validated
/// experiment through the same strict pipeline a `config_schema =
/// strict` file takes. Unknown or deprecated config keys and invalid
/// values throw ConfigError. The returned CliExperiment carries exactly
/// one scheduler (the spec's).
[[nodiscard]] CliExperiment experimentFromSpec(const JobSpec& spec);

}  // namespace dds
