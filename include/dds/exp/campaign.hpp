// Parallel experiment campaigns (the §8 evaluation grid as a first-class
// object) and the job API of the multi-tenant campaign service.
//
// The paper's evaluation is a grid of (policy x rate x variability x seed)
// runs, each an independent SimulationEngine::run — embarrassingly
// parallel. A Campaign collects the grid cells; runCampaign() fans them
// across a work-stealing ThreadPool and returns outcomes in SUBMISSION
// ORDER, so parallel output is bit-identical to a serial run (every run
// owns its mutable simulator state; immutable substrate arenas are shared
// read-only, and result aggregation order never depends on completion
// order).
//
// Storage is copy-on-write: a campaign interns each distinct
// ExperimentConfig once (seed factored out as a per-job delta), so a
// 10k-job seed sweep stores ONE config plus 10k {seed, policy, label}
// deltas instead of 10k config copies. jobs()/job() materialize full
// ExperimentJob values on demand; distinctConfigCount() exposes how many
// interned bases back the grid.
//
//   Campaign c;
//   for (double rate : rates)
//     for (SchedulerKind kind : kinds)
//       c.add({&df, configAt(rate), kind});
//   CampaignResult r = runCampaign(c, {.jobs = 8});
//   saveCampaignJson("BENCH_campaign.json", r);
//
// Jobs can also arrive as versioned JSON specs (see job_spec.hpp):
// addSpec() resolves a spec against the campaign's Substrate — the
// shared immutable arenas (catalogs, trace pools, planner closures,
// standard graphs) every job in the campaign reuses.
//
// A job that throws (e.g. BruteForceStatic on an intractable graph) is
// captured per-outcome (ok = false, error = message) instead of tearing
// down the whole campaign.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dds/core/engine.hpp"
#include "dds/exp/job_spec.hpp"

namespace dds {

class Substrate;

/// One (dataflow, config, policy) cell of a campaign grid.
struct ExperimentJob {
  const Dataflow* dataflow = nullptr;
  ExperimentConfig config;
  SchedulerKind kind = SchedulerKind::GlobalAdaptive;
  /// Display label; empty means schedulerName(kind).
  std::string label;
  /// When non-empty, the job streams its trace as JSONL to this path
  /// (one sink per job, so traces stay deterministic at any --jobs).
  std::string trace_path;
  /// Submitting tenant (multi-tenant service tag); purely descriptive.
  std::string tenant;
};

/// What one job produced. `result` is meaningful only when `ok`.
struct JobOutcome {
  std::size_t index = 0;  ///< submission index within the campaign.
  std::string label;
  std::string tenant;
  SchedulerKind kind = SchedulerKind::GlobalAdaptive;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;  ///< exception message when !ok.
  double wall_s = 0.0;  ///< this job's wall-clock seconds.
  ExperimentResult result;
};

/// An ordered list of experiment jobs; jobs are validated on add().
class Campaign {
 public:
  Campaign();

  /// Append one job; returns its submission index. The config is
  /// interned: jobs differing only by seed share one stored base.
  std::size_t add(ExperimentJob job);

  /// Append one job described by a v1 JSON job spec, resolved through
  /// the campaign's substrate (graph shared, config parsed strictly).
  /// Returns the submission index; throws ConfigError on a bad spec.
  std::size_t addSpec(const JobSpec& spec);

  /// One job per scheduler kind under a fixed (dataflow, config).
  void addPolicySweep(const Dataflow& dataflow, const ExperimentConfig& base,
                      const std::vector<SchedulerKind>& kinds);

  /// `runs` replicates of one (config, policy) pair with per-job derived
  /// seeds base.seed, base.seed + 1, ... (the runReplicated convention).
  void addSeedSweep(const Dataflow& dataflow, const ExperimentConfig& base,
                    SchedulerKind kind, std::size_t runs);

  /// Give every job a distinct trace path derived from `base`: the only
  /// job gets `base` itself; with several jobs each gets `base.<label>`,
  /// and duplicate labels are further suffixed `.<submission index>`.
  void setTracePaths(const std::string& base);

  /// The shared immutable arenas this campaign's jobs run against.
  /// Every campaign owns one by default; point several campaigns at one
  /// substrate to share arenas across batches (the service case).
  [[nodiscard]] const std::shared_ptr<Substrate>& substrate() const {
    return substrate_;
  }
  void setSubstrate(std::shared_ptr<Substrate> substrate);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Materialize job `index` (base config + per-job deltas applied).
  [[nodiscard]] ExperimentJob job(std::size_t index) const;

  /// Materialized view of every job, in submission order. Built on
  /// demand — storage stays deduplicated.
  [[nodiscard]] std::vector<ExperimentJob> jobs() const;

  /// How many distinct configs back the grid (<= size()).
  [[nodiscard]] std::size_t distinctConfigCount() const {
    return bases_.size();
  }

 private:
  /// Per-job state: everything that may differ between jobs, plus a
  /// shared pointer to the interned seed-agnostic config base.
  struct Entry {
    const Dataflow* dataflow = nullptr;
    std::shared_ptr<const ExperimentConfig> base;
    std::uint64_t seed = 0;
    SchedulerKind kind = SchedulerKind::GlobalAdaptive;
    std::string label;
    std::string trace_path;
    std::string tenant;
  };

  std::vector<Entry> entries_;
  std::vector<std::shared_ptr<const ExperimentConfig>> bases_;
  std::shared_ptr<Substrate> substrate_;
};

/// Knobs for runCampaign.
struct RunnerOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial in the calling
  /// thread (no pool).
  std::size_t jobs = 0;
};

/// Every outcome of one campaign run, in submission order.
struct CampaignResult {
  std::vector<JobOutcome> outcomes;
  double wall_s = 0.0;        ///< whole-campaign wall clock.
  std::size_t jobs_used = 1;  ///< worker threads actually used.

  /// Number of failed jobs.
  [[nodiscard]] std::size_t failureCount() const;

  /// Rethrow the first failure as PreconditionError; no-op when clean.
  void throwIfAnyFailed() const;
};

/// Execute one job — the routine every runCampaign worker (and the
/// serve loop) runs. When `substrate` is non-null the engine consumes
/// its shared arenas; results are bit-identical either way.
[[nodiscard]] JobOutcome runExperimentJob(const ExperimentJob& job,
                                          std::size_t index,
                                          Substrate* substrate);

/// Resolve a v1 job spec into a runnable job against `substrate` (which
/// owns the returned job's dataflow). Throws ConfigError on a bad spec.
[[nodiscard]] ExperimentJob jobFromSpec(const JobSpec& spec,
                                        Substrate& substrate);

/// Run every job; outcomes land in submission order regardless of the
/// number of workers, so results are reproducible under any parallelism.
[[nodiscard]] CampaignResult runCampaign(const Campaign& campaign,
                                         const RunnerOptions& options = {});

/// campaignJson knobs.
struct CampaignJsonOptions {
  /// Emit wall-clock fields (campaign and per-run). Off, the document
  /// depends only on the simulation outcomes — byte-identical across
  /// runs, worker counts, and machines; throughput gauges whose name
  /// ends in "_per_s" (eventsim.events_per_s, fluid.intervals_per_s, …)
  /// are wall-clock-derived and are stripped along with the wall fields.
  bool include_timing = true;
};

/// BENCH_*.json-style export: campaign metadata plus one record per job
/// with the headline metrics. Deterministic field order, diff-friendly.
[[nodiscard]] std::string campaignJson(const CampaignResult& result,
                                       const std::string& name,
                                       const CampaignJsonOptions& options = {});

/// Write campaignJson() to `path` (IoError on failure).
void saveCampaignJson(const std::string& path, const CampaignResult& result,
                      const std::string& name);

/// One compact JSONL record for a single outcome. Carries no timing and
/// no volatile fields, so a record is byte-identical across runs, worker
/// counts, and serve-vs-batch execution. `index` is the caller's record
/// index (the serve loop numbers records by input line).
[[nodiscard]] std::string jobRecordJson(const JobOutcome& outcome,
                                        std::size_t index);

/// One jobRecordJson per outcome (indexed by position), newline after
/// each — the batch twin of the serve loop's streamed output.
[[nodiscard]] std::string campaignJsonl(const CampaignResult& result);

}  // namespace dds
