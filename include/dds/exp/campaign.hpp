// Parallel experiment campaigns (the §8 evaluation grid as a first-class
// object).
//
// The paper's evaluation is a grid of (policy x rate x variability x seed)
// runs, each an independent SimulationEngine::run — embarrassingly
// parallel. A Campaign collects the grid cells; runCampaign() fans them
// across a work-stealing ThreadPool and returns outcomes in SUBMISSION
// ORDER, so parallel output is bit-identical to a serial run (every run
// owns its cloud/replayer/simulator state; nothing is shared, and result
// aggregation order never depends on completion order).
//
//   Campaign c;
//   for (double rate : rates)
//     for (SchedulerKind kind : kinds)
//       c.add({&df, configAt(rate), kind});
//   CampaignResult r = runCampaign(c, {.jobs = 8});
//   saveCampaignJson("BENCH_campaign.json", r);
//
// A job that throws (e.g. BruteForceStatic on an intractable graph) is
// captured per-outcome (ok = false, error = message) instead of tearing
// down the whole campaign.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dds/core/engine.hpp"

namespace dds {

/// One (dataflow, config, policy) cell of a campaign grid.
struct ExperimentJob {
  const Dataflow* dataflow = nullptr;
  ExperimentConfig config;
  SchedulerKind kind = SchedulerKind::GlobalAdaptive;
  /// Display label; empty means schedulerName(kind).
  std::string label;
  /// When non-empty, the job streams its trace as JSONL to this path
  /// (one sink per job, so traces stay deterministic at any --jobs).
  std::string trace_path;
};

/// What one job produced. `result` is meaningful only when `ok`.
struct JobOutcome {
  std::size_t index = 0;  ///< submission index within the campaign.
  std::string label;
  SchedulerKind kind = SchedulerKind::GlobalAdaptive;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;  ///< exception message when !ok.
  double wall_s = 0.0;  ///< this job's wall-clock seconds.
  ExperimentResult result;
};

/// An ordered list of experiment jobs; jobs are validated on add().
class Campaign {
 public:
  /// Append one job; returns its submission index.
  std::size_t add(ExperimentJob job);

  /// One job per scheduler kind under a fixed (dataflow, config).
  void addPolicySweep(const Dataflow& dataflow, const ExperimentConfig& base,
                      const std::vector<SchedulerKind>& kinds);

  /// `runs` replicates of one (config, policy) pair with per-job derived
  /// seeds base.seed, base.seed + 1, ... (the runReplicated convention).
  void addSeedSweep(const Dataflow& dataflow, const ExperimentConfig& base,
                    SchedulerKind kind, std::size_t runs);

  /// Give every job a distinct trace path derived from `base`: the only
  /// job gets `base` itself; with several jobs each gets `base.<label>`,
  /// and duplicate labels are further suffixed `.<submission index>`.
  void setTracePaths(const std::string& base);

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] const std::vector<ExperimentJob>& jobs() const {
    return jobs_;
  }

 private:
  std::vector<ExperimentJob> jobs_;
};

/// Knobs for runCampaign.
struct RunnerOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial in the calling
  /// thread (no pool).
  std::size_t jobs = 0;
};

/// Every outcome of one campaign run, in submission order.
struct CampaignResult {
  std::vector<JobOutcome> outcomes;
  double wall_s = 0.0;        ///< whole-campaign wall clock.
  std::size_t jobs_used = 1;  ///< worker threads actually used.

  /// Number of failed jobs.
  [[nodiscard]] std::size_t failureCount() const;

  /// Rethrow the first failure as PreconditionError; no-op when clean.
  void throwIfAnyFailed() const;
};

/// Run every job; outcomes land in submission order regardless of the
/// number of workers, so results are reproducible under any parallelism.
[[nodiscard]] CampaignResult runCampaign(const Campaign& campaign,
                                         const RunnerOptions& options = {});

/// BENCH_*.json-style export: campaign metadata plus one record per job
/// with the headline metrics. Deterministic field order, diff-friendly.
[[nodiscard]] std::string campaignJson(const CampaignResult& result,
                                       const std::string& name);

/// Write campaignJson() to `path` (IoError on failure).
void saveCampaignJson(const std::string& path, const CampaignResult& result,
                      const std::string& name);

}  // namespace dds
