// The campaign substrate: process-wide immutable arenas shared across
// jobs (the "build once, serve many" half of the multi-tenant service).
//
// Every SimulationEngine::run historically rebuilt the same heavyweight
// state per job: the resource catalog (plus its spot-tier twin), the
// FutureGrid-like trace pools for the job's seed, and the planners'
// flattened (dataflow, catalog) closure. None of that state depends on
// anything but a handful of config keys, so a 10k-job grid paid the
// substrate cost 10k times. A Substrate memoizes each arena behind a
// mutex and hands out shared_ptr<const T> views; jobs keep only their
// copy-on-write state (config deltas, RNG cursors, results).
//
// Bit-identity contract: every arena is built through the exact code
// path the engine would run standalone (catalogByName / withSpotTier,
// TraceReplayer::makeFutureGridPools, PlanStructure::build), so an
// engine consuming substrate arenas produces byte-identical traces and
// results to one constructing its own.
//
// Thread safety: all lookups are serialized on an internal mutex; the
// returned arenas are immutable and freely usable from any thread.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "dds/core/engine.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/trace/trace_replayer.hpp"

namespace dds {

/// Shared-arena cache; one per process (or per Campaign batch).
class Substrate {
 public:
  Substrate() = default;
  Substrate(const Substrate&) = delete;
  Substrate& operator=(const Substrate&) = delete;

  /// The catalog `config.catalog` resolves to, spot tier applied when the
  /// config enables it. Cached by (name, effective discount).
  [[nodiscard]] std::shared_ptr<const ResourceCatalog> catalogFor(
      const ExperimentConfig& config);

  /// The FutureGrid-like trace pools for `seed` (default generation
  /// parameters, which is what the engine uses). Cached by seed.
  [[nodiscard]] std::shared_ptr<const TracePools> tracePoolsFor(
      std::uint64_t seed);

  /// The planner closure for this (dataflow, catalog) pair. Cached by
  /// address pair, so `df` and `catalog` must outlive the substrate —
  /// which holds by construction when both come from substrate arenas or
  /// from the Campaign that owns this substrate.
  [[nodiscard]] std::shared_ptr<const PlanStructure> planStructureFor(
      const Dataflow& df, std::shared_ptr<const ResourceCatalog> catalog);

  /// A named standard dataflow ("paper", "diamond", or "chain" with the
  /// given length), shared across every job spec that names it.
  [[nodiscard]] std::shared_ptr<const Dataflow> graphFor(
      const std::string& graph, std::size_t chain_length);

  /// The cached fluid kernel's immutable SoA graph image for `df`.
  /// Cached by dataflow address (same lifetime contract as
  /// planStructureFor); jobs COW only the kernel's dynamic arrays.
  [[nodiscard]] std::shared_ptr<const FluidGraphLayout> fluidLayoutFor(
      const Dataflow& df);

  /// The full per-job arena view for one (dataflow, config) cell; one
  /// call builds (or reuses) all applicable arenas. Trace pools are only
  /// attached when the config replays infrastructure variability.
  [[nodiscard]] EngineArenas arenasFor(const Dataflow& df,
                                       const ExperimentConfig& config);

  /// Build-vs-reuse counters (how much work sharing saved).
  struct Stats {
    std::uint64_t catalog_builds = 0;
    std::uint64_t catalog_hits = 0;
    std::uint64_t pool_builds = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t plan_builds = 0;
    std::uint64_t plan_hits = 0;
    std::uint64_t graph_builds = 0;
    std::uint64_t graph_hits = 0;
    std::uint64_t fluid_layout_builds = 0;
    std::uint64_t fluid_layout_hits = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  mutable std::mutex mutex_;
  Stats stats_;
  std::map<std::pair<std::string, double>,
           std::shared_ptr<const ResourceCatalog>>
      catalogs_;
  std::map<std::uint64_t, std::shared_ptr<const TracePools>> pools_;
  std::map<std::pair<const void*, const void*>,
           std::shared_ptr<const PlanStructure>>
      plans_;
  std::map<std::pair<std::string, std::size_t>,
           std::shared_ptr<const Dataflow>>
      graphs_;
  std::map<const void*, std::shared_ptr<const FluidGraphLayout>>
      fluid_layouts_;
};

}  // namespace dds
