// Streaming service mode: read v1 job specs as JSON lines, run them on a
// shared substrate, emit one JSONL result record per spec — in input
// order, with bounded in-flight work (`ddsim --serve`).
//
// Protocol: one spec per input line (see job_spec.hpp); blank lines are
// ignored. Every non-blank line produces exactly one output record, in
// line order:
//
//   - a jobRecordJson() when the spec parsed and ran (ok true/false
//     distinguishes a clean run from a failed one), or
//   - a specErrorJson() when the line never became a job (malformed
//     JSON, unknown field, bad config value).
//
// Records carry no timing fields, so serve output is byte-identical to
// the batch path (parse all lines -> Campaign -> runCampaign ->
// campaignJsonl) at any worker count — the same oracle contract the
// campaign runner upholds.
//
// Backpressure: at most `queue` jobs are in flight; when the window is
// full the reader blocks on the OLDEST job and emits its record before
// admitting the next spec. Output therefore streams while input is
// still arriving, and memory stays O(queue), not O(stream length).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

#include "dds/exp/campaign.hpp"
#include "dds/exp/substrate.hpp"

namespace dds {

/// Knobs for serveCampaign.
struct ServeOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial in the calling
  /// thread (no pool).
  std::size_t jobs = 0;
  /// In-flight window (backpressure bound); 0 = 2x workers.
  std::size_t queue = 0;
  /// Arenas to run against; null = one fresh substrate for this stream.
  /// Pass a shared one to amortize across streams (the service case).
  std::shared_ptr<Substrate> substrate;
};

/// What one serve stream processed.
struct ServeStats {
  std::size_t specs = 0;     ///< non-blank input lines seen.
  std::size_t ok = 0;        ///< jobs that ran cleanly.
  std::size_t failed = 0;    ///< jobs that ran but threw.
  std::size_t rejected = 0;  ///< lines that never became jobs.
};

/// The record emitted for a line that never became a job.
[[nodiscard]] std::string specErrorJson(std::size_t index,
                                        const std::string& error);

/// Run the serve loop over `in`, writing records to `out` (flushed per
/// record, so downstream pipes see results as they land).
ServeStats serveCampaign(std::istream& in, std::ostream& out,
                         const ServeOptions& options = {});

}  // namespace dds
