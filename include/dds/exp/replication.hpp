// Replicated experiment runs for statistical confidence.
//
// The §8 results are single trajectories of a stochastic system (traces,
// random-walk rates, replay-window draws all depend on the seed). This
// harness re-runs one configuration across seeds and reports mean/stddev
// of every headline metric plus how often the throughput constraint was
// violated — the error bars the paper's figures do not show.
//
// Runs fan out across a work-stealing thread pool (see campaign.hpp);
// aggregation happens in seed order, so the statistics are bit-identical
// for any worker count.
#pragma once

#include <cstddef>

#include "dds/common/stats.hpp"
#include "dds/core/engine.hpp"

namespace dds {

/// Aggregates of `runs` independent seeds of one (config, policy) pair.
struct ReplicatedResult {
  std::string scheduler_name;
  std::size_t runs = 0;
  RunningStats omega;
  RunningStats gamma;
  RunningStats cost;
  RunningStats theta;
  std::size_t constraint_violations = 0;

  /// Fraction of seeds that met the Omega constraint.
  [[nodiscard]] double successRate() const {
    return runs == 0 ? 0.0
                     : 1.0 - static_cast<double>(constraint_violations) /
                                 static_cast<double>(runs);
  }
};

/// Run `kind` under `base` once per seed in [base.seed, base.seed + runs),
/// across `jobs` worker threads (0 = hardware concurrency, 1 = serial).
/// The aggregates are identical for every `jobs` value.
[[nodiscard]] ReplicatedResult runReplicated(const Dataflow& dataflow,
                                             ExperimentConfig base,
                                             SchedulerKind kind,
                                             std::size_t runs,
                                             std::size_t jobs = 0);

}  // namespace dds
