// QoS metrics and the optimization objective (paper §3, §6).
//
// Per interval t the system observes:
//  * Omega(t) — relative application throughput (Def. 4), in (0, 1];
//  * Gamma(t) — normalized application value (Def. 3), in (0, 1];
//  * mu(t)    — cumulative dollar cost of all VM instances so far (§4).
// Over the optimization period: Omega-bar and Gamma-bar are interval means,
// mu is the final cumulative cost, and the profit objective is
// Theta = Gamma-bar − sigma · mu, maximized subject to Omega-bar >= Omega-hat.
#pragma once

#include <vector>

#include "dds/common/error.hpp"
#include "dds/common/time.hpp"

namespace dds {

/// Per-PE observations for one interval; consumed by the runtime
/// adaptation heuristics (bottleneck detection) and by tests.
struct PeIntervalStats {
  double arrival_rate = 0.0;    ///< msgs/s arriving on input ports.
  double offered_rate = 0.0;    ///< arrival plus backlog pressure, msgs/s.
  double processed_rate = 0.0;  ///< msgs/s actually processed.
  double output_rate = 0.0;     ///< msgs/s emitted downstream.
  double capacity_rate = 0.0;   ///< msgs/s the allocated cores could do.
  double relative_throughput = 1.0;  ///< Omega_i = processed / offered.
  double backlog_msgs = 0.0;    ///< queued messages at interval end.
  int allocated_cores = 0;
};

/// Everything measured during one adaptation interval.
struct IntervalMetrics {
  IntervalIndex index = 0;
  SimTime start = 0.0;
  double input_rate = 0.0;       ///< external msgs/s during the interval.
  double omega = 1.0;            ///< Def. 4.
  double gamma = 1.0;            ///< Def. 3.
  double cost_cumulative = 0.0;  ///< mu at interval end, dollars.
  int active_vms = 0;
  int allocated_cores = 0;
  std::vector<PeIntervalStats> pe_stats;  ///< indexed by PeId.
};

/// The full time series of one experiment run plus derived aggregates.
class RunResult {
 public:
  void add(IntervalMetrics m) { intervals_.push_back(std::move(m)); }

  [[nodiscard]] const std::vector<IntervalMetrics>& intervals() const {
    return intervals_;
  }
  [[nodiscard]] bool empty() const { return intervals_.empty(); }

  /// Omega-bar: mean relative throughput over the period.
  [[nodiscard]] double averageOmega() const;

  /// Gamma-bar: mean normalized value over the period.
  [[nodiscard]] double averageGamma() const;

  /// mu: total dollar cost at the end of the period.
  [[nodiscard]] double totalCost() const;

  /// Theta = Gamma-bar − sigma · mu.
  [[nodiscard]] double theta(double sigma) const {
    return averageGamma() - sigma * totalCost();
  }

  /// Whether Omega-bar >= omega_hat − epsilon (§8.2's necessary check).
  [[nodiscard]] bool meetsThroughputConstraint(double omega_hat,
                                               double epsilon) const {
    return averageOmega() >= omega_hat - epsilon;
  }

 private:
  std::vector<IntervalMetrics> intervals_;
};

/// Fault-recovery statistics over one run, derived from the Omega(t)
/// series. A *violation episode* is a maximal run of consecutive intervals
/// with Omega(t) < Omega-hat. An episode that ends before the horizon does
/// is *recovered*; one still open at the last interval is not.
struct RecoveryStats {
  int violation_episodes = 0;     ///< total episodes (incl. unrecovered).
  int unrecovered_episodes = 0;   ///< episodes still open at the horizon.
  /// Mean recovered-episode length in seconds (the per-episode time to
  /// repair); 0 when no episode recovered.
  double mttr_s = 0.0;
  /// Longest episode in seconds, recovered or not.
  double longest_episode_s = 0.0;
  /// Fraction of intervals with Omega(t) >= Omega-hat, in [0, 1].
  double availability = 1.0;
  /// Total time spent below Omega-hat across the run, seconds
  /// (violating intervals x interval length, open episodes included).
  double slo_violation_s = 0.0;
  /// 95th-percentile episode length in seconds (linear interpolation
  /// over all episodes, recovered or not); 0 without episodes.
  double p95_episode_s = 0.0;
};

/// Compute recovery statistics from a finished run against `omega_hat`.
/// Pure function of the interval series; interval length is taken from
/// consecutive interval start times (the engine's fixed cadence).
[[nodiscard]] RecoveryStats computeRecoveryStats(const RunResult& result,
                                                 double omega_hat,
                                                 SimTime interval_s);

/// The user's value-vs-cost equivalence factor (§6):
///   sigma = (MaxAppValue − MinAppValue) /
///           (AcceptableCost@MaxVal − AcceptableCost@MinVal).
[[nodiscard]] double equivalenceFactor(double max_value, double min_value,
                                       double cost_at_max,
                                       double cost_at_min);

/// The §8.2 pricing expectation for the Fig. 1 dataflow: acceptable cost at
/// maximum value is $4/hour at 2 msg/s, scaling linearly to $100/hour at
/// 50 msg/s, accrued over the horizon. Returns that dollar amount.
[[nodiscard]] double evaluationAcceptableCost(double data_rate_msgs_per_s,
                                              SimTime horizon_s);

}  // namespace dds
