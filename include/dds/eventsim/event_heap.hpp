// Indexed 4-ary min-heap over pooled event records.
//
// The event simulator's hot loop pops the earliest of three event streams
// (external arrivals, network deliveries, core completions) millions of
// times per run. Two std::priority_queues plus a hand-merged arrival
// stream cost one allocation per push and three comparisons per merge
// step; this heap replaces them with a single arena:
//  * records live in a pool and are recycled through a free list, so the
//    steady state performs zero allocations;
//  * the heap is 4-ary — shallower than binary, and the four-child scan
//    is friendly to both branch prediction and cache lines;
//  * every record tracks its heap position, so an arbitrary record (e.g.
//    the pending arrival discarded at an interval boundary) is removable
//    in O(log n) without a full scan.
//
// Ordering is (time, kind, seq): earliest first; at equal times arrivals
// precede deliveries precede completions — exactly the reference drain
// loop's tie rules (`arrival <= completion && arrival <= delivery` picks
// the arrival, then `delivery <= completion` picks the delivery) — and
// records of the same kind pop FIFO by insertion sequence.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dds/common/error.hpp"
#include "dds/common/ids.hpp"
#include "dds/common/time.hpp"

namespace dds {

/// Event category; numeric order encodes equal-time priority.
enum class EventKind : std::uint8_t {
  Arrival = 0,     ///< external message enters every input PE.
  Delivery = 1,    ///< in-flight message lands at a PE's queue.
  Completion = 2,  ///< a busy (vm, core) finishes its message.
};

/// One pooled event record. Field use by kind: Arrival uses only `time`;
/// Delivery uses `pe` plus the message timestamps; Completion uses all.
struct PooledEvent {
  SimTime time = 0.0;
  std::uint64_t seq = 0;  ///< global insertion order, breaks exact ties.
  EventKind kind = EventKind::Arrival;
  PeId pe{0};
  VmId vm{0};
  std::int32_t core = 0;
  SimTime msg_created = 0.0;   ///< end-to-end latency anchor.
  SimTime msg_enqueued = 0.0;  ///< when it entered the current queue.
  std::int32_t heap_pos = -1;  ///< index into the heap array; -1 = free.
};

/// Allocation-free indexed priority queue of simulator events.
class EventHeap {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kInvalidSlot = static_cast<Slot>(-1);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// Pooled records ever allocated — stays flat once the steady-state
  /// event population is reached (the free list recycles records).
  [[nodiscard]] std::size_t poolCapacity() const { return pool_.size(); }

  void reserve(std::size_t n) {
    pool_.reserve(n);
    heap_.reserve(n);
    free_.reserve(n);
  }

  /// Drop every queued event but keep the arena capacity (and keep
  /// advancing `seq`, which only ever needs to be unique).
  void clear() {
    for (const Slot s : heap_) pool_[s].heap_pos = -1;
    free_.clear();
    for (Slot s = 0; s < pool_.size(); ++s) free_.push_back(s);
    heap_.clear();
  }

  /// Insert an event; returns its slot (stable until popped/removed).
  Slot push(SimTime time, EventKind kind, PeId pe, VmId vm,
            std::int32_t core, SimTime msg_created, SimTime msg_enqueued) {
    Slot s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
    } else {
      s = static_cast<Slot>(pool_.size());
      pool_.emplace_back();
    }
    PooledEvent& e = pool_[s];
    e.time = time;
    e.seq = next_seq_++;
    e.kind = kind;
    e.pe = pe;
    e.vm = vm;
    e.core = core;
    e.msg_created = msg_created;
    e.msg_enqueued = msg_enqueued;
    e.heap_pos = static_cast<std::int32_t>(heap_.size());
    heap_.push_back(s);
    siftUp(heap_.size() - 1);
    return s;
  }

  [[nodiscard]] const PooledEvent& top() const {
    DDS_REQUIRE(!heap_.empty(), "top() on empty event heap");
    return pool_[heap_.front()];
  }

  [[nodiscard]] const PooledEvent& at(Slot s) const { return pool_[s]; }

  /// Pop the earliest event, returning a copy; its slot is recycled.
  PooledEvent popTop() {
    DDS_REQUIRE(!heap_.empty(), "popTop() on empty event heap");
    const Slot s = heap_.front();
    const PooledEvent out = pool_[s];
    removeAt(0);
    return out;
  }

  /// Remove an arbitrary live event by slot (O(log n)).
  void remove(Slot s) {
    DDS_REQUIRE(s < pool_.size() && pool_[s].heap_pos >= 0,
                "remove() of a slot that is not queued");
    removeAt(static_cast<std::size_t>(pool_[s].heap_pos));
  }

 private:
  static constexpr std::size_t kArity = 4;

  [[nodiscard]] bool before(Slot a, Slot b) const {
    const PooledEvent& x = pool_[a];
    const PooledEvent& y = pool_[b];
    if (x.time != y.time) return x.time < y.time;
    if (x.kind != y.kind) return x.kind < y.kind;
    return x.seq < y.seq;
  }

  void place(std::size_t pos, Slot s) {
    heap_[pos] = s;
    pool_[s].heap_pos = static_cast<std::int32_t>(pos);
  }

  void siftUp(std::size_t pos) {
    const Slot s = heap_[pos];
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / kArity;
      if (!before(s, heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, s);
  }

  void siftDown(std::size_t pos) {
    const Slot s = heap_[pos];
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first = pos * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], s)) break;
      place(pos, heap_[best]);
      pos = best;
    }
    place(pos, s);
  }

  void removeAt(std::size_t pos) {
    const Slot victim = heap_[pos];
    pool_[victim].heap_pos = -1;
    free_.push_back(victim);
    const Slot moved = heap_.back();
    heap_.pop_back();
    if (pos < heap_.size()) {
      place(pos, moved);
      siftDown(pos);
      siftUp(pos);
    }
  }

  std::vector<PooledEvent> pool_;
  std::vector<Slot> heap_;   ///< heap array of pool slots.
  std::vector<Slot> free_;   ///< recycled pool slots.
  std::uint64_t next_seq_ = 0;
};

}  // namespace dds
