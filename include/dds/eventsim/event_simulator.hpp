// Discrete-event, message-level simulator.
//
// The fluid simulator (dds/sim) models each adaptation interval in steady
// state — ideal for long sweeps. This module simulates *individual
// messages*: Poisson arrivals modulated by the rate profile, one-at-a-time
// service on each allocated core (service time = c / observed core power),
// per-PE FIFO queues, and network transfer delays (latency + size over
// observed bandwidth) between VMs. It produces the same per-interval
// IntervalMetrics series as the fluid simulator *plus* end-to-end message
// latency statistics — the processing-latency QoS dimension the paper's
// introduction motivates ("penalty of high processing latencies during
// the high data rate period").
//
// Two engines share one model. The *cached* engine (default) keeps the
// per-event hot paths allocation-free and O(1) amortized: a per-PE
// free-core index rebuilt only when the cloud's allocation ledger
// generation moves, a (producer VM, successor PE) routing table whose
// entries carry exact zero-order-hold validity windows, a memoized
// core-power lookup, and a single indexed 4-ary heap of pooled event
// records. The *reference* engine is the straightforward scan-everything
// implementation. Both produce bit-identical results — same RNG
// consumption, latency samples, interval metrics and trace bytes — which
// fingerprint() checks byte-for-byte (the throughput benchmark asserts it
// on every row).
//
// The two simulators cross-validate each other: under identical
// deployments their throughput agrees (see tests/eventsim).
#pragma once

#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/common/rng.hpp"
#include "dds/common/stats.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/eventsim/event_heap.hpp"
#include "dds/metrics/run_metrics.hpp"
#include "dds/monitor/lookup_cache.hpp"
#include "dds/monitor/monitoring.hpp"
#include "dds/sched/scheduler.hpp"
#include "dds/sim/deployment.hpp"
#include "dds/workload/rate_profile.hpp"

namespace dds {

/// Event-simulation knobs.
struct EventSimConfig {
  /// Which hot-path implementation to run. Both are bit-identical;
  /// Reference exists as the cross-check oracle and perf baseline.
  enum class Engine { Cached, Reference };

  double msg_size_bytes = 100.0e3;  ///< ~100 KB/msg (§8.1).
  SimTime interval_s = 60.0;        ///< adaptation/metrics interval.
  SimTime horizon_s = 600.0;        ///< total simulated time.
  std::uint64_t seed = 42;          ///< arrival-process seed.
  bool poisson_arrivals = true;     ///< false = deterministic spacing.
  /// Cap on stored end-to-end latency samples; past the cap the sample
  /// set is maintained as a uniform reservoir (Algorithm R) drawn from a
  /// dedicated RNG stream, so capped runs estimate the same percentiles
  /// as uncapped ones without perturbing the arrival process.
  std::size_t max_latency_samples = 200'000;
  Engine engine = Engine::Cached;
  /// Per-PE buffered state, MB; a migration pauses the PE's dispatch for
  /// the time the moved share takes to transfer at
  /// `migration_bandwidth_mbps` (in-flight service still completes).
  /// 0 = instant migration, bit-identical to the pre-elasticity model.
  double pe_state_mb = 0.0;
  double migration_bandwidth_mbps = 100.0;

  void validate() const;
};

/// Event-loop work counters. The first four are model-determined and part
/// of the bit-identity fingerprint; the cache counters and wall clock
/// describe the engine's work and are excluded from it.
struct EventSimCounters {
  std::uint64_t arrivals = 0;     ///< external arrival events drained.
  std::uint64_t deliveries = 0;   ///< network delivery events drained.
  std::uint64_t completions = 0;  ///< core completion events drained.
  std::uint64_t dispatches = 0;   ///< messages started on a core.
  std::uint64_t route_refreshes = 0;      ///< routing-table recomputes.
  std::uint64_t core_index_rebuilds = 0;  ///< free-core index rebuilds.

  /// Total events drained — the numerator of events/second.
  [[nodiscard]] std::uint64_t drained() const {
    return arrivals + deliveries + completions;
  }
};

/// End-to-end latency summary plus the per-interval metric series.
struct EventSimResult {
  RunResult intervals;              ///< same shape as the fluid simulator.
  std::size_t messages_injected = 0;
  std::size_t messages_delivered = 0;  ///< completions at output PEs.
  RunningStats latency;             ///< end-to-end seconds, all deliveries.
  std::vector<double> latency_samples;  ///< capped reservoir (percentiles).
  /// Queue-wait seconds per PE (enqueue -> service start), by PeId:
  /// the per-stage latency breakdown that identifies the bottleneck.
  std::vector<RunningStats> pe_queue_wait;
  EventSimCounters counters;
  double wall_seconds = 0.0;  ///< engine wall-clock time for run().

  [[nodiscard]] double latencyPercentile(double p) const;

  /// PE with the largest mean queue wait among PEs that actually queued
  /// at least one message; PeId(0) when nothing queued anywhere.
  [[nodiscard]] PeId worstQueueingPe() const;
};

/// Canonical byte string over every model-determined field of a result
/// (hexfloat, so equal strings mean bit-equal doubles). Two runs are
/// bit-identical iff their fingerprints compare equal; cache-work counters
/// and wall_seconds are deliberately excluded.
[[nodiscard]] std::string fingerprint(const EventSimResult& r);

/// Runs one full experiment at message granularity. The scheduler (and its
/// adapt() hook) is driven exactly as the SimulationEngine drives it.
class EventSimulator {
 public:
  EventSimulator(const Dataflow& df, CloudProvider& cloud,
                 const MonitoringService& mon, EventSimConfig cfg);

  /// Simulate the whole horizon. `scheduler` may be null for a fixed
  /// deployment (no runtime adaptation).
  [[nodiscard]] EventSimResult run(const RateProfile& profile,
                                   Deployment deployment,
                                   Scheduler* scheduler);

 private:
  struct Message {
    SimTime created;
    SimTime enqueued = 0.0;  ///< when it entered the current PE's queue.
  };

  /// One PE's runtime state: FIFO queue plus selectivity credit.
  struct PeState {
    std::deque<Message> queue;
    double selectivity_credit = 0.0;
    std::size_t arrivals_in_interval = 0;
    std::size_t processed_in_interval = 0;
    std::size_t emitted_in_interval = 0;
  };

  /// A message in flight over the network toward `pe` (reference engine).
  /// `seq` makes the ordering total: equal-time events pop FIFO instead
  /// of in std::priority_queue's unspecified structural order, so results
  /// are well-defined, portable across standard libraries, and match the
  /// cached engine's pooled heap exactly.
  struct Delivery {
    SimTime time;
    std::uint64_t seq = 0;
    PeId pe;
    Message msg;
    bool operator>(const Delivery& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  /// A busy core finishes a message at `time` (reference engine).
  struct Completion {
    SimTime time;
    std::uint64_t seq = 0;
    PeId pe;
    VmId vm;
    int core = 0;  ///< which physical core frees up.
    Message msg;
    bool operator>(const Completion& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  /// One dispatchable (vm, core) pair owned by a PE; the per-PE slot
  /// lists mirror the reference peCores() scan order (VM id ascending,
  /// core index ascending) and are rebuilt only on ledger changes.
  struct CoreSlot {
    VmId vm;
    std::int32_t core = 0;
  };

  /// Cached network delay from a producer VM to a successor PE. Valid
  /// while the allocation ledger generation matches (core placement
  /// decides colocation and the candidate VM set) and `now` is inside
  /// the folded zero-order-hold window of every coefficient consulted.
  struct RouteEntry {
    double delay = 0.0;
    SimTime valid_until = -1.0;
    std::uint64_t ledger_gen = ~std::uint64_t{0};
  };

  /// Memoized observedBandwidthSample for one (producer VM, candidate VM)
  /// pair. Route refreshes fold hundreds of pair coefficients; caching
  /// each pair inside its own zero-order-hold window turns those folds
  /// into array reads. A pair's first-ever touch is always a miss, so the
  /// replayer sees first queries in the reference engine's exact order.
  struct PairSample {
    double value = 0.0;
    SimTime valid_until = -1.0;
  };

  /// Where a (vm, core) currently sits in the free-core index: which PE
  /// owns it and at which position in that PE's slot list.
  struct SlotRef {
    PeId owner{0};
    std::uint32_t idx = kNoSlot;
  };
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  // -- shared model logic (identical in both engines) -------------------
  void dispatchIdleCores(PeId pe, SimTime now, const Deployment& dep);
  void deliverDownstream(PeId from, VmId from_vm, const Message& msg,
                         SimTime now, const Deployment& dep);
  void enqueueAt(PeId pe, Message msg, SimTime now, const Deployment& dep);
  void handleCompletion(SimTime time, PeId pe, VmId vm, int core,
                        const Message& msg, const Deployment& dep);
  void recordDeliveredLatency(double latency);

  // -- reference engine -------------------------------------------------
  void dispatchIdleCoresReference(PeId pe, SimTime now,
                                  const Deployment& dep);
  [[nodiscard]] double referenceRouteDelay(VmId from_vm, PeId succ,
                                           SimTime now) const;
  void drainReference(SimTime t0, SimTime t1, double rate,
                      const Deployment& dep);

  // -- cached engine ----------------------------------------------------
  void refreshLedgerViews();
  void dispatchIdleCoresCached(PeId pe, SimTime now, const Deployment& dep);
  [[nodiscard]] double cachedRouteDelay(VmId from_vm, PeId succ,
                                        SimTime now);
  void drainCached(SimTime t0, SimTime t1, double rate,
                   const Deployment& dep);

  const Dataflow* df_;
  CloudProvider* cloud_;
  const MonitoringService* mon_;
  EventSimConfig cfg_;
  bool cached_ = true;

  std::vector<PeState> pe_state_;
  /// Migration downtime: no new dispatch at a PE before this time. Lives
  /// in the shared model logic so both engines stay bit-identical.
  std::vector<SimTime> pe_pause_until_;
  /// Busy flag per (vm, core) — indexed by VM id then core index.
  std::vector<std::vector<bool>> core_busy_;

  // Reference-engine event queues.
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;
  std::priority_queue<Delivery, std::vector<Delivery>,
                      std::greater<Delivery>>
      deliveries_;
  std::uint64_t ref_seq_ = 0;  ///< tie-break stamp for the queues above.

  // Cached-engine state.
  EventHeap heap_;
  EventHeap::Slot pending_arrival_ = EventHeap::kInvalidSlot;
  std::vector<std::vector<CoreSlot>> pe_slots_;  ///< by PeId.
  std::vector<std::vector<VmId>> pe_vms_;  ///< VMs holding the PE's cores.
  /// Free-slot bitmap per PE over pe_slots_ indices (bit set = idle);
  /// find-first-set claims the lowest index, i.e. the reference engine's
  /// (vm ascending, core ascending) dispatch order.
  std::vector<std::vector<std::uint64_t>> pe_free_;
  std::vector<std::vector<SlotRef>> slot_ref_;  ///< [VmId][core].
  std::uint64_t slots_gen_ = 0;
  bool slots_valid_ = false;
  std::vector<std::vector<RouteEntry>> routes_;  ///< [successor PE][VM].
  std::vector<std::vector<PairSample>> bw_pairs_;  ///< [from VM][to VM].
  CorePowerCache power_;

  EventSimResult result_;
  Rng rng_{0};
  Rng reservoir_rng_{0};  ///< latency-sample reservoir stream only.
};

}  // namespace dds
