// Discrete-event, message-level simulator.
//
// The fluid simulator (dds/sim) models each adaptation interval in steady
// state — ideal for long sweeps. This module simulates *individual
// messages*: Poisson arrivals modulated by the rate profile, one-at-a-time
// service on each allocated core (service time = c / observed core power),
// per-PE FIFO queues, and network transfer delays (latency + size over
// observed bandwidth) between VMs. It produces the same per-interval
// IntervalMetrics series as the fluid simulator *plus* end-to-end message
// latency statistics — the processing-latency QoS dimension the paper's
// introduction motivates ("penalty of high processing latencies during
// the high data rate period").
//
// The two simulators cross-validate each other: under identical
// deployments their throughput agrees (see tests/eventsim).
#pragma once

#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/common/rng.hpp"
#include "dds/common/stats.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/metrics/run_metrics.hpp"
#include "dds/monitor/monitoring.hpp"
#include "dds/sched/scheduler.hpp"
#include "dds/sim/deployment.hpp"
#include "dds/workload/rate_profile.hpp"

namespace dds {

/// Event-simulation knobs.
struct EventSimConfig {
  double msg_size_bytes = 100.0e3;  ///< ~100 KB/msg (§8.1).
  SimTime interval_s = 60.0;        ///< adaptation/metrics interval.
  SimTime horizon_s = 600.0;        ///< total simulated time.
  std::uint64_t seed = 42;          ///< arrival-process seed.
  bool poisson_arrivals = true;     ///< false = deterministic spacing.
  /// Cap on stored end-to-end latency samples (reservoir past this).
  std::size_t max_latency_samples = 200'000;

  void validate() const;
};

/// End-to-end latency summary plus the per-interval metric series.
struct EventSimResult {
  RunResult intervals;              ///< same shape as the fluid simulator.
  std::size_t messages_injected = 0;
  std::size_t messages_delivered = 0;  ///< completions at output PEs.
  RunningStats latency;             ///< end-to-end seconds, all deliveries.
  std::vector<double> latency_samples;  ///< capped sample for percentiles.
  /// Queue-wait seconds per PE (enqueue -> service start), by PeId:
  /// the per-stage latency breakdown that identifies the bottleneck.
  std::vector<RunningStats> pe_queue_wait;

  [[nodiscard]] double latencyPercentile(double p) const;

  /// PE with the largest mean queue wait; PeId(0) when nothing queued.
  [[nodiscard]] PeId worstQueueingPe() const;
};

/// Runs one full experiment at message granularity. The scheduler (and its
/// adapt() hook) is driven exactly as the SimulationEngine drives it.
class EventSimulator {
 public:
  EventSimulator(const Dataflow& df, CloudProvider& cloud,
                 const MonitoringService& mon, EventSimConfig cfg);

  /// Simulate the whole horizon. `scheduler` may be null for a fixed
  /// deployment (no runtime adaptation).
  [[nodiscard]] EventSimResult run(const RateProfile& profile,
                                   Deployment deployment,
                                   Scheduler* scheduler);

 private:
  struct Message {
    SimTime created;
    SimTime enqueued = 0.0;  ///< when it entered the current PE's queue.
  };

  /// One PE's runtime state: FIFO queue plus selectivity credit.
  struct PeState {
    std::deque<Message> queue;
    double selectivity_credit = 0.0;
    std::size_t arrivals_in_interval = 0;
    std::size_t processed_in_interval = 0;
    std::size_t emitted_in_interval = 0;
  };

  /// A message in flight over the network toward `pe`.
  struct Delivery {
    SimTime time;
    PeId pe;
    Message msg;
    bool operator>(const Delivery& o) const { return time > o.time; }
  };

  /// A busy core finishes a message at `time`.
  struct Completion {
    SimTime time;
    PeId pe;
    VmId vm;
    int core = 0;  ///< which physical core frees up.
    Message msg;
    bool operator>(const Completion& o) const { return time > o.time; }
  };

  void dispatchIdleCores(PeId pe, SimTime now, const Deployment& dep);

  /// Fan a finished message out to the successors: colocated flows land
  /// immediately, remote ones arrive after latency + size/bandwidth from
  /// the producing VM to the successor's best-connected VM.
  void deliverDownstream(PeId from, VmId from_vm, const Message& msg,
                         SimTime now, const Deployment& dep);

  /// Land a delivered message in `pe`'s queue and try to dispatch it.
  void enqueueAt(PeId pe, Message msg, SimTime now, const Deployment& dep);

  const Dataflow* df_;
  CloudProvider* cloud_;
  const MonitoringService* mon_;
  EventSimConfig cfg_;

  std::vector<PeState> pe_state_;
  /// Busy flag per (vm, core) — indexed by VM id then core index.
  std::vector<std::vector<bool>> core_busy_;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;
  std::priority_queue<Delivery, std::vector<Delivery>,
                      std::greater<Delivery>>
      deliveries_;
  EventSimResult result_;
  Rng rng_{0};
};

}  // namespace dds
