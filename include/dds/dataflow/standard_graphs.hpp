// Ready-made dataflow graphs used by the evaluation, examples and tests.
#pragma once

#include <cstddef>

#include "dds/common/rng.hpp"
#include "dds/dataflow/dataflow.hpp"

namespace dds {

/// The paper's Fig. 1 abstract dataflow: E1 -> {E2, E3} -> E4 where E1/E4
/// have a single alternate and E2/E3 have two alternates each with
/// different value/cost/selectivity trade-offs. This is the graph the
/// entire SC'13 evaluation (§8) runs on.
[[nodiscard]] Dataflow makePaperDataflow();

/// A linear pipeline of `length` PEs, each with `alternates_per_pe`
/// alternates whose cost decreases and value decreases with the index.
[[nodiscard]] Dataflow makeChainDataflow(std::size_t length,
                                         std::size_t alternates_per_pe);

/// A diamond: src -> {a, b} -> sink, all single-alternate. Exercises
/// and-split / multi-merge rate propagation with no dynamism.
[[nodiscard]] Dataflow makeDiamondDataflow();

/// A layered random DAG for scalability benchmarks: `layers` layers of
/// `width` PEs, each PE connected to 1..width PEs of the next layer, each
/// with `alternates_per_pe` alternates with randomized metrics.
[[nodiscard]] Dataflow makeLayeredDataflow(std::size_t layers,
                                           std::size_t width,
                                           std::size_t alternates_per_pe,
                                           Rng& rng);

/// An aggregation tree: `leaves` input PEs reduce through fan_in-ary
/// aggregation stages (selectivity 1/fan_in per stage) down to a single
/// output root — the many-sensors-one-dashboard topology. Each aggregator
/// has a precise and a sampling alternate.
[[nodiscard]] Dataflow makeAggregationTreeDataflow(std::size_t leaves,
                                                   std::size_t fan_in);

}  // namespace dds
