// The dynamic dataflow DAG (paper §3, Defs. 1-2).
//
// A Dataflow is an immutable directed acyclic graph of processing elements.
// Edges use and-split semantics on output ports (each successor receives a
// copy of every output message) and multi-merge on input ports (messages
// from all predecessors interleave) — the paper's simplifying assumption.
// Input PEs are exactly those with no predecessors; output PEs those with
// no successors.
//
// Construct via DataflowBuilder, which validates the graph on build().
#pragma once

#include <string>
#include <vector>

#include "dds/common/ids.hpp"
#include "dds/dataflow/processing_element.hpp"

namespace dds {

class DataflowBuilder;

/// An immutable, validated dynamic dataflow graph.
class Dataflow {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t peCount() const { return pes_.size(); }

  [[nodiscard]] const ProcessingElement& pe(PeId id) const {
    DDS_REQUIRE(id.value() < pes_.size(), "PE id out of range");
    return pes_[id.value()];
  }

  [[nodiscard]] const std::vector<ProcessingElement>& pes() const {
    return pes_;
  }

  [[nodiscard]] const std::vector<PeId>& successors(PeId id) const {
    DDS_REQUIRE(id.value() < pes_.size(), "PE id out of range");
    return successors_[id.value()];
  }

  [[nodiscard]] const std::vector<PeId>& predecessors(PeId id) const {
    DDS_REQUIRE(id.value() < pes_.size(), "PE id out of range");
    return predecessors_[id.value()];
  }

  /// Input PEs (no predecessors); never empty.
  [[nodiscard]] const std::vector<PeId>& inputs() const { return inputs_; }

  /// Output PEs (no successors); never empty.
  [[nodiscard]] const std::vector<PeId>& outputs() const { return outputs_; }

  [[nodiscard]] bool isInput(PeId id) const {
    return predecessors(id).empty();
  }
  [[nodiscard]] bool isOutput(PeId id) const { return successors(id).empty(); }

  /// Total number of directed edges.
  [[nodiscard]] std::size_t edgeCount() const { return edge_count_; }

  /// PEs in a topological order (inputs first). Stable across calls.
  [[nodiscard]] const std::vector<PeId>& topologicalOrder() const {
    return topo_order_;
  }

  /// PEs in forward BFS order from the input PEs (paper's GetNextPE seed).
  [[nodiscard]] std::vector<PeId> forwardBfsFromInputs() const;

  /// PEs in reverse BFS order from the output PEs (global-cost DP order).
  [[nodiscard]] std::vector<PeId> reverseBfsFromOutputs() const;

  /// Total number of alternates across all PEs.
  [[nodiscard]] std::size_t totalAlternateCount() const;

 private:
  friend class DataflowBuilder;
  Dataflow() = default;

  std::string name_;
  std::vector<ProcessingElement> pes_;
  std::vector<std::vector<PeId>> successors_;
  std::vector<std::vector<PeId>> predecessors_;
  std::vector<PeId> inputs_;
  std::vector<PeId> outputs_;
  std::vector<PeId> topo_order_;
  std::size_t edge_count_ = 0;
};

/// Incrementally assembles and validates a Dataflow.
///
///   DataflowBuilder b("example");
///   PeId src = b.addPe("source", {{"ingest", 1.0, 0.1, 1.0}});
///   PeId snk = b.addPe("sink", {{"emit", 1.0, 0.05, 1.0}});
///   b.addEdge(src, snk);
///   Dataflow df = std::move(b).build();
class DataflowBuilder {
 public:
  explicit DataflowBuilder(std::string name);

  /// Add a PE with its alternates; returns its id (dense, in add order).
  PeId addPe(const std::string& name, std::vector<Alternate> alternates);

  /// Add a directed edge. Both endpoints must already exist; self-loops and
  /// duplicate edges are rejected immediately.
  void addEdge(PeId from, PeId to);

  /// Validate and produce the immutable graph. Throws PreconditionError on:
  /// empty graph, cycles, or PEs unreachable from the input set.
  [[nodiscard]] Dataflow build() &&;

 private:
  Dataflow df_;
};

}  // namespace dds
