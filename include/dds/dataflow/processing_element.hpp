// Processing elements (paper §3, Def. 1-2).
//
// A PE is a long-running task in the continuous dataflow. In a *dynamic*
// dataflow every PE owns one or more alternates; exactly one alternate is
// active during any adaptation interval (the activation schedule lives in
// the Deployment, not here — the model types are immutable).
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "dds/common/error.hpp"
#include "dds/common/ids.hpp"
#include "dds/dataflow/alternate.hpp"

namespace dds {

/// An immutable PE definition: a name plus its set of alternates.
class ProcessingElement {
 public:
  ProcessingElement(PeId id, std::string name, std::vector<Alternate> alts)
      : id_(id), name_(std::move(name)), alternates_(std::move(alts)) {
    DDS_REQUIRE(!name_.empty(), "PE needs a name");
    DDS_REQUIRE(!alternates_.empty(), "PE needs at least one alternate: " + name_);
    max_value_ = 0.0;
    for (const auto& a : alternates_) {
      a.validate();
      max_value_ = std::max(max_value_, a.value);
    }
  }

  [[nodiscard]] PeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] std::size_t alternateCount() const {
    return alternates_.size();
  }

  [[nodiscard]] const Alternate& alternate(AlternateId a) const {
    DDS_REQUIRE(a.value() < alternates_.size(),
                "alternate index out of range for PE " + name_);
    return alternates_[a.value()];
  }

  [[nodiscard]] const std::vector<Alternate>& alternates() const {
    return alternates_;
  }

  /// Relative value gamma = f(p^j) / max_j f(p^j), in (0, 1].
  [[nodiscard]] double relativeValue(AlternateId a) const {
    return alternate(a).value / max_value_;
  }

  /// The alternate with the highest value (ties: lowest index).
  [[nodiscard]] AlternateId bestValueAlternate() const {
    std::size_t best = 0;
    for (std::size_t j = 1; j < alternates_.size(); ++j) {
      if (alternates_[j].value > alternates_[best].value) best = j;
    }
    return AlternateId(static_cast<AlternateId::value_type>(best));
  }

  /// The alternate with the lowest value (used for MinApplicationValue).
  [[nodiscard]] AlternateId worstValueAlternate() const {
    std::size_t worst = 0;
    for (std::size_t j = 1; j < alternates_.size(); ++j) {
      if (alternates_[j].value < alternates_[worst].value) worst = j;
    }
    return AlternateId(static_cast<AlternateId::value_type>(worst));
  }

 private:
  PeId id_;
  std::string name_;
  std::vector<Alternate> alternates_;
  double max_value_ = 1.0;
};

}  // namespace dds
