// Alternate implementations of a processing element (paper §3, Def. 2).
//
// Each alternate p_i^j carries three metrics:
//  * value      — f(p_i^j), the user-defined value function (e.g. the F1
//                 score of a classifier implementation). The *relative*
//                 value gamma = f / max_j f is computed by the owning PE.
//  * cost       — c_i^j, core-seconds needed to process one message on a
//                 "standard" CPU core (pi = 1).
//  * selectivity— s_i^j, output messages produced per input message.
#pragma once

#include <string>

#include "dds/common/error.hpp"

namespace dds {

/// One alternate implementation of a processing element.
struct Alternate {
  std::string name;
  double value = 1.0;          ///< f(p): user-defined value, > 0.
  double cost_core_sec = 1.0;  ///< c: core-seconds per message, > 0.
  double selectivity = 1.0;    ///< s: output msgs per input msg, > 0.

  /// Throws PreconditionError unless all metrics are positive and finite.
  void validate() const {
    DDS_REQUIRE(!name.empty(), "alternate needs a name");
    DDS_REQUIRE(value > 0.0, "alternate value must be positive: " + name);
    DDS_REQUIRE(cost_core_sec > 0.0,
                "alternate cost must be positive: " + name);
    DDS_REQUIRE(selectivity > 0.0,
                "alternate selectivity must be positive: " + name);
  }
};

}  // namespace dds
