// VM failure injection (paper §9 future work: "we also plan to
// investigate the application of dynamic tasks to support enhanced fault
// tolerance and recovery mechanisms in continuous dataflow").
//
// Each VM instance gets an exponentially distributed lifetime drawn
// deterministically from (seed, vm id) — independent of query order, so
// whole runs stay reproducible. When a VM dies:
//  * its cores vanish (the scheduler's next adaptation sees the capacity
//    loss and re-allocates — the recovery mechanism);
//  * the share of each hosted PE's buffered messages proportional to its
//    cores on the dead VM is lost (stateless PEs lose only queued input);
//  * billing stops at the crash (providers do not charge dead instances
//    past the failure; the started hour is still paid).
#pragma once

#include <cstdint>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/common/ids.hpp"
#include "dds/common/time.hpp"

namespace dds {

/// Failure-model knobs.
struct FailureInjectorConfig {
  /// Mean time between failures per VM, hours; <= 0 disables failures.
  double vm_mtbf_hours = 0.0;
  std::uint64_t seed = 42;

  [[nodiscard]] bool enabled() const { return vm_mtbf_hours > 0.0; }
};

/// One queued-message loss caused by a crash.
struct BacklogLoss {
  PeId pe;
  double fraction = 0.0;  ///< share of the PE's backlog that is gone.
};

/// What one crash did.
struct FailureEvent {
  VmId vm;
  SimTime time;
  std::vector<BacklogLoss> losses;
};

/// Deterministic per-VM lifetime oracle plus the crash procedure.
class FailureInjector {
 public:
  explicit FailureInjector(FailureInjectorConfig config);

  /// The absolute simulation time at which `vm` (started at `t_start`)
  /// will fail. Pure function of (seed, vm id, t_start).
  [[nodiscard]] SimTime deathTime(VmId vm, SimTime t_start) const;

  /// Crash every active VM whose death time falls at or before `now`:
  /// frees their cores, releases them, and reports per-PE backlog-loss
  /// fractions for the caller to apply to its simulator.
  [[nodiscard]] std::vector<FailureEvent> injectUpTo(CloudProvider& cloud,
                                                     SimTime now) const;

  [[nodiscard]] const FailureInjectorConfig& config() const { return config_; }

 private:
  FailureInjectorConfig config_;
};

}  // namespace dds
