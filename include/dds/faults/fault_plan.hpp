// Deterministic cloud-turbulence plan (paper §9 future work; the fault
// regime of "Toward Reliable and Rapid Elasticity for Streaming Dataflows
// on Clouds", Shukla & Simmhan — see PAPERS.md).
//
// FaultPlan generalizes FailureInjector into four event families:
//  * VM crash            — the existing exponential-lifetime model;
//  * degraded VM         — straggler episodes: observed π drops to a
//                          fraction of rated for a fixed duration,
//                          recurring with exponential gaps per VM;
//  * acquisition faults  — tryAcquire() can reject a request outright or
//                          deliver a VM whose capacity only comes online
//                          after an exponential provisioning lag;
//  * network partition   — β→0 / λ→ceiling between a VM pair for a
//                          window, recurring with exponential gaps per
//                          unordered pair.
//
// Determinism contract: every draw is a pure function of (seed, entity
// key, episode index) via stateless splitmix64 hashing — independent of
// query order, so repeated runs of the same seeded experiment produce
// identical fault timelines. Schedulers never consult this class; faults
// reach them only through MonitoringService (observed π, β, λ) and
// CloudProvider::tryAcquire's AcquisitionResult.
#pragma once

#include <cstdint>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/cloud/fault_model.hpp"
#include "dds/common/ids.hpp"
#include "dds/common/time.hpp"
#include "dds/faults/failure_injector.hpp"

namespace dds {

/// Knobs of all four fault families. A zero rate (or probability)
/// disables a family; everything disabled reproduces the ideal cloud.
struct FaultPlanConfig {
  std::uint64_t seed = 42;

  /// Crash family: mean time between failures per VM, hours; <= 0 off.
  double vm_mtbf_hours = 0.0;

  /// Straggler family: mean gap between degradation episodes per VM,
  /// hours (<= 0 off); during an episode the VM's observed core power is
  /// `straggler_factor` of its healthy value for `straggler_duration_s`.
  double straggler_mtbf_hours = 0.0;
  double straggler_factor = 0.3;
  double straggler_duration_s = 600.0;

  /// Acquisition family: probability each acquisition attempt is
  /// rejected, and the mean exponential startup lag of accepted VMs
  /// (0 = instant). The per-core term makes the lag class-dependent:
  /// mean = provisioning_delay_s + per_core * (cores - 1), so larger
  /// instances take longer to materialize.
  double acquisition_failure_prob = 0.0;
  double provisioning_delay_s = 0.0;
  double provisioning_delay_per_core_s = 0.0;

  /// Spot-preemption family: mean time between provider reclamations per
  /// preemptible VM, hours (<= 0 off), announced `spot_notice_s` seconds
  /// in advance (the AWS-style warning notice). Only VMs of a
  /// preemptible resource class are ever reclaimed.
  double spot_preemption_mtbf_hours = 0.0;
  double spot_notice_s = 120.0;

  /// Partition family: mean gap between transient partitions per
  /// unordered VM pair, hours (<= 0 off), each lasting
  /// `partition_duration_s`.
  double partition_mtbf_hours = 0.0;
  double partition_duration_s = 120.0;

  [[nodiscard]] bool crashesEnabled() const { return vm_mtbf_hours > 0.0; }
  [[nodiscard]] bool stragglersEnabled() const {
    return straggler_mtbf_hours > 0.0;
  }
  [[nodiscard]] bool acquisitionFaultsEnabled() const {
    return acquisition_failure_prob > 0.0 || provisioning_delay_s > 0.0 ||
           provisioning_delay_per_core_s > 0.0;
  }
  [[nodiscard]] bool partitionsEnabled() const {
    return partition_mtbf_hours > 0.0;
  }
  [[nodiscard]] bool preemptionsEnabled() const {
    return spot_preemption_mtbf_hours > 0.0;
  }
  [[nodiscard]] bool anyEnabled() const {
    return crashesEnabled() || stragglersEnabled() ||
           acquisitionFaultsEnabled() || partitionsEnabled() ||
           preemptionsEnabled();
  }

  void validate() const;
};

/// Seed-reproducible oracle for all fault families.
class FaultPlan final : public PerfFaultModel,
                        public AcquisitionFaultModel,
                        public PreemptionFaultModel {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  [[nodiscard]] const FaultPlanConfig& config() const { return config_; }

  // -- crash family (delegates to the generalized FailureInjector) --

  /// Absolute time at which `vm` (started at `t_start`) crashes. Pure
  /// function of (seed, vm, t_start).
  [[nodiscard]] SimTime deathTime(VmId vm, SimTime t_start) const {
    return crashes_.deathTime(vm, t_start);
  }

  /// Crash every active VM whose death time is at or before `now`.
  /// Idempotent: crashed VMs are inactive, so a repeated call at the same
  /// time reports nothing new.
  [[nodiscard]] std::vector<FailureEvent> injectUpTo(CloudProvider& cloud,
                                                     SimTime now) const {
    return crashes_.injectUpTo(cloud, now);
  }

  // -- straggler family --

  /// Whether `vm` is inside a straggler episode at `t`.
  [[nodiscard]] bool isStraggling(VmId vm, SimTime vm_start, SimTime t) const;

  /// PerfFaultModel: straggler_factor during an episode, 1 otherwise.
  [[nodiscard]] double cpuFactor(VmId vm, SimTime vm_start,
                                 SimTime t) const override;

  // -- partition family --

  /// PerfFaultModel: symmetric in (a, b); pure in (seed, pair, t).
  [[nodiscard]] bool linkPartitioned(VmId a, VmId b,
                                     SimTime t) const override;

  // -- acquisition family --

  /// AcquisitionFaultModel: the n-th attempt's fate, pure in (seed, n).
  [[nodiscard]] bool acquisitionRejected(std::uint64_t attempt) const override;

  /// AcquisitionFaultModel: startup lag, pure in (seed, vm) with a
  /// class-dependent mean. With provisioning_delay_per_core_s = 0 the
  /// draw is bit-identical to the class-independent model.
  [[nodiscard]] SimTime provisioningDelay(
      VmId vm, const ResourceClass& cls) const override;

  // -- spot-preemption family --

  /// PreemptionFaultModel: when the provider reclaims a preemptible VM
  /// started at `vm_start`; infinity when the family is off. Pure in
  /// (seed, vm, vm_start).
  [[nodiscard]] SimTime preemptionTime(VmId vm,
                                       SimTime vm_start) const override;

  /// PreemptionFaultModel: warning-notice lead time, seconds.
  [[nodiscard]] SimTime noticeWindow() const override {
    return config_.spot_notice_s;
  }

  /// Preempt every active preemptible VM whose preemption time is at or
  /// before `now`: frees its cores, terminates it with the Preempted
  /// billing rule, and reports per-PE backlog-loss fractions (undrained
  /// buffers on the reclaimed VM are lost, exactly like a crash).
  /// Idempotent across repeated calls at the same time.
  [[nodiscard]] std::vector<FailureEvent> injectPreemptionsUpTo(
      CloudProvider& cloud, SimTime now) const;

  /// Whether this plan perturbs what monitoring observes (stragglers or
  /// partitions) — callers skip installing the hook otherwise.
  [[nodiscard]] bool perturbsPerformance() const {
    return config_.stragglersEnabled() || config_.partitionsEnabled();
  }

  /// Whether this plan perturbs acquisitions.
  [[nodiscard]] bool perturbsAcquisition() const {
    return config_.acquisitionFaultsEnabled();
  }

  /// Whether this plan schedules spot preemptions.
  [[nodiscard]] bool perturbsSpot() const {
    return config_.preemptionsEnabled();
  }

 private:
  FaultPlanConfig config_;
  FailureInjector crashes_;
};

}  // namespace dds
