// Input data-rate profiles (paper §8.1).
//
// "To simulate typical streaming data characteristics in continuous
// dataflows, we use three profiles, viz., constant data rate, periodic
// waves, and random walk around a mean", at mean rates from 2 to 50 msg/s
// with ~100 KB messages. A RateProfile gives the external message rate at
// each input PE as a function of simulation time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dds/common/rng.hpp"
#include "dds/common/time.hpp"

namespace dds {

/// Message rate (msg/s) over time for one experiment's input streams.
class RateProfile {
 public:
  virtual ~RateProfile() = default;

  /// Instantaneous rate at time `t`; always >= 0.
  [[nodiscard]] virtual double rate(SimTime t) const = 0;

  /// Long-run mean rate the profile was configured with.
  [[nodiscard]] virtual double meanRate() const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Fixed rate at all times.
class ConstantRate final : public RateProfile {
 public:
  explicit ConstantRate(double rate_msgs_per_s);
  [[nodiscard]] double rate(SimTime) const override { return rate_; }
  [[nodiscard]] double meanRate() const override { return rate_; }
  [[nodiscard]] std::string describe() const override;

 private:
  double rate_;
};

/// Sinusoidal wave around a mean, clamped at zero.
class PeriodicWaveRate final : public RateProfile {
 public:
  PeriodicWaveRate(double mean_rate, double amplitude, SimTime period_s,
                   double phase_rad = 0.0);
  [[nodiscard]] double rate(SimTime t) const override;
  [[nodiscard]] double meanRate() const override { return mean_; }
  [[nodiscard]] std::string describe() const override;

 private:
  double mean_;
  double amplitude_;
  SimTime period_;
  double phase_;
};

/// A mean-reverting random walk: per-step Gaussian increments pulled back
/// toward the mean, pre-computed over a horizon so queries are pure and
/// deterministic for a given seed.
class RandomWalkRate final : public RateProfile {
 public:
  /// @param step_s     time between walk steps (e.g. the adaptation interval)
  /// @param horizon_s  queries beyond the horizon wrap around
  /// @param reversion  fraction of the gap to the mean recovered per step
  RandomWalkRate(double mean_rate, double step_sd, double min_rate,
                 double max_rate, SimTime step_s, SimTime horizon_s,
                 std::uint64_t seed, double reversion = 0.1);
  [[nodiscard]] double rate(SimTime t) const override;
  [[nodiscard]] double meanRate() const override { return mean_; }
  [[nodiscard]] std::string describe() const override;

 private:
  double mean_;
  SimTime step_;
  std::vector<double> values_;
};

/// A constant base rate with one rectangular burst.
class SpikeRate final : public RateProfile {
 public:
  SpikeRate(double base_rate, double spike_rate, SimTime spike_start,
            SimTime spike_duration);
  [[nodiscard]] double rate(SimTime t) const override;
  [[nodiscard]] double meanRate() const override { return base_; }
  [[nodiscard]] std::string describe() const override;

 private:
  double base_;
  double spike_;
  SimTime start_;
  SimTime duration_;
};

/// The sum of several profiles — e.g. a diurnal wave with bursts on top.
class CompositeRate final : public RateProfile {
 public:
  explicit CompositeRate(std::vector<std::unique_ptr<RateProfile>> parts);
  [[nodiscard]] double rate(SimTime t) const override;
  [[nodiscard]] double meanRate() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<std::unique_ptr<RateProfile>> parts_;
};

/// The three §8.1 profile shapes plus a flash-crowd burst, parameterized
/// only by mean rate.
enum class ProfileKind { Constant, PeriodicWave, RandomWalk, Spike };

// ---------------------------------------------------------------------------
// Profile registry: the one place that knows every profile shape. Config
// parsing, ddsim --help and the bench sweeps all go through it, so adding
// a shape means extending the enum, profileName(), profileSummary() and
// makeProfile() — all in the workload layer.
// ---------------------------------------------------------------------------

/// Canonical CLI/config name of a shape ("constant", "wave", ...).
[[nodiscard]] std::string profileName(ProfileKind kind);

/// Inverse of profileName(); throws PreconditionError on unknown names.
[[nodiscard]] ProfileKind parseProfileKind(const std::string& name);

/// Every ProfileKind, in enum order — for sweeps, help text and
/// round-trip tests.
[[nodiscard]] const std::vector<ProfileKind>& allProfileKinds();

/// One-line description of the shape's default parameters, for help and
/// config documentation.
[[nodiscard]] std::string profileSummary(ProfileKind kind);

/// Compat alias; prefer profileName().
[[nodiscard]] inline std::string toString(ProfileKind kind) {
  return profileName(kind);
}

/// Build a profile of the given kind around `mean_rate`, with the
/// evaluation's default shape parameters (wave amplitude 40% of mean with
/// a 30 min period, starting at the trough; random-walk step sd 10% of
/// mean clamped to [0.2x, 2x] mean; spike = a 3x flash crowd for a tenth
/// of the horizon, starting at 40% in).
[[nodiscard]] std::unique_ptr<RateProfile> makeProfile(
    ProfileKind kind, double mean_rate, SimTime horizon_s,
    std::uint64_t seed);

}  // namespace dds
