// Fluid (rate-based) execution simulator for a deployed dynamic dataflow.
//
// SUBSTITUTION (see DESIGN.md): the paper evaluates its heuristics on an
// in-house IaaS simulator replaying real performance traces, not on a real
// deployment. We implement the equivalent: each adaptation interval is
// simulated in steady state —
//  * each PE processes up to capacity = sum over allocated cores of the
//    observed core power, divided by the active alternate's cost;
//  * unprocessed messages accumulate in a backlog queue and drain later
//    (local queue buffering, §5);
//  * inter-VM edges are capped by observed network bandwidth given the
//    ~100 KB message size (§8.1); colocated flows are in-memory and free;
//  * releasing a VM migrates its share of pending messages, which arrive
//    one interval later (network cost of migration, §5).
// The step() result carries Omega(t) (Def. 4), Gamma(t) (Def. 3) and the
// cumulative dollar cost, plus per-PE stats for the adaptation heuristics.
//
// Hot-path note: step() is the inner loop of every campaign run. Two
// interval kernels implement the identical arithmetic (SimConfig::Engine,
// mirroring the event simulator's dual-engine design):
//  * Cached (default) — the structure-of-arrays FluidKernel: the ledger
//    image, per-edge bandwidth-cap entries and coefficient caches live in
//    flat arrays rebuilt only when the cloud's allocation-ledger
//    generation changes, and monitoring queries are skipped whenever a
//    cached sample's validity window still covers the interval midpoint.
//  * Reference — the original per-object walk below: the ledger is
//    snapshotted every interval and pi/beta lookups are memoized per
//    interval. It is the bit-identity oracle for the cached kernel
//    (golden fixtures + fuzzing gate the pair).
// Both kernels accumulate every reduction in the same canonical sequence
// and issue first-ever monitoring queries in the same global order — the
// trace replayer draws per-VM trace assignments on first query, so query
// order is part of the observable result.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/common/time.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/metrics/run_metrics.hpp"
#include "dds/monitor/monitoring.hpp"
#include "dds/obs/trace_sink.hpp"
#include "dds/sim/deployment.hpp"

namespace dds {

struct FluidGraphLayout;
class FluidKernel;

/// Simulation constants for one run.
struct SimConfig {
  /// Which interval kernel to run (see the header comment). Cached is the
  /// SoA kernel; Reference is the retained per-object oracle.
  enum class Engine { Cached, Reference };

  double msg_size_bytes = 100.0e3;  ///< ~100 KB/msg (§8.1).
  SimTime interval_s = 60.0;        ///< adaptation interval length.
  Engine engine = Engine::Cached;

  /// Messages/s a link of `mbps` megabits/s can carry at this msg size.
  [[nodiscard]] double linkMsgsPerSec(double mbps) const {
    return mbps * 1.0e6 / (msg_size_bytes * 8.0);
  }
};

/// Stateful per-run simulator; owns the backlog queues.
class DataflowSimulator {
 public:
  /// `layout` optionally shares a prebuilt immutable SoA graph image
  /// (Substrate hands the same one to every job on the same dataflow);
  /// when null the cached engine builds its own.
  DataflowSimulator(const Dataflow& df, const CloudProvider& cloud,
                    const MonitoringService& mon, SimConfig cfg,
                    std::shared_ptr<const FluidGraphLayout> layout = nullptr);
  ~DataflowSimulator();

  /// Attach the run's tracer; step() then closes each interval with an
  /// IntervalEnd event (Ω, Γ, μ, ρ utilization, backlog, footprint).
  /// The null-tracer path adds one predicted branch per interval.
  void setTracer(obs::Tracer tracer) { tracer_ = tracer; }

  /// Simulate interval `index` with the given external input rate applied
  /// to every input PE, under the given deployment. Advances queue state.
  [[nodiscard]] IntervalMetrics step(IntervalIndex index, double input_rate,
                                     const Deployment& deployment);

  /// Messages queued at `pe` right now.
  [[nodiscard]] double backlog(PeId pe) const {
    DDS_REQUIRE(pe.value() < backlog_.size(), "PE id out of range");
    return backlog_[pe.value()];
  }

  /// Sum of all queued messages.
  [[nodiscard]] double totalBacklog() const;

  /// Move `fraction` of `pe`'s backlog into transit: those messages are
  /// unavailable this interval and arrive at the start of the next one.
  /// Called when the scheduler releases a VM hosting `pe` (§5).
  void migrateBacklog(PeId pe, double fraction);

  /// Permanently drop `fraction` of `pe`'s backlog (a VM crash took the
  /// buffered messages with it). Returns the number of messages lost.
  double dropBacklog(PeId pe, double fraction);

  /// Pause `pe`'s service for `seconds` (state migration downtime): the
  /// pause is consumed from the start of subsequent intervals, shrinking
  /// the capacity-seconds available to process messages. Pauses stack.
  void pauseService(PeId pe, SimTime seconds);

  /// Remaining unconsumed service pause of `pe`, seconds.
  [[nodiscard]] SimTime pauseRemaining(PeId pe) const {
    DDS_REQUIRE(pe.value() < pause_remaining_.size(), "PE id out of range");
    return pause_remaining_[pe.value()];
  }

  /// How many times the interval kernel rebuilt its ledger image: the
  /// cached engine rebuilds only on allocation-ledger generation changes,
  /// the reference engine snapshots once per interval. Feeds the
  /// `fluid.kernel_rebuilds` metric.
  [[nodiscard]] std::uint64_t kernelRebuilds() const;

 private:
  /// Refresh the per-PE core lists from the cloud ledger (one pass) and
  /// invalidate the per-interval monitoring memos.
  void beginInterval(SimTime t_mid);

  /// Memoized MonitoringService::observedCorePower at the interval
  /// midpoint.
  [[nodiscard]] double corePowerAt(VmId vm);

  /// Memoized MonitoringService::observedBandwidthMbps at the interval
  /// midpoint (directional key, matching the unmemoized call pattern).
  [[nodiscard]] double bandwidthAt(VmId a, VmId b);

  /// Deliverable msgs/s on edge (u -> v) given this interval's snapshot.
  [[nodiscard]] double deliverableRate(double flow_rate, PeId u, PeId v);

  /// Close the interval with an IntervalEnd trace event (both kernels).
  void emitIntervalEnd(const IntervalMetrics& m, SimTime t_start, SimTime dt,
                       IntervalIndex index);

  const Dataflow* df_;
  const CloudProvider* cloud_;
  const MonitoringService* mon_;
  SimConfig cfg_;
  std::shared_ptr<const FluidGraphLayout> layout_;
  std::unique_ptr<FluidKernel> kernel_;  ///< null on the reference engine.
  std::uint64_t reference_snapshots_ = 0;
  obs::Tracer tracer_;
  double traced_omega_sum_ = 0.0;  ///< running Ω̄ for IntervalEnd events.
  std::uint64_t traced_intervals_ = 0;
  std::vector<double> backlog_;     ///< msgs queued per PE.
  std::vector<double> in_transit_;  ///< msgs arriving next interval per PE.
  std::vector<SimTime> pause_remaining_;  ///< migration downtime per PE.

  // Per-interval working state, reused across step() calls.
  SimTime t_mid_ = 0.0;
  std::vector<std::vector<VmCores>> pe_cores_;  ///< ledger snapshot per PE.
  std::vector<double> cpu_power_memo_;  ///< per-VM pi; NaN = not queried.
  std::unordered_map<std::uint64_t, double> bandwidth_memo_;
  std::vector<double> output_rate_;
  std::vector<double> expected_rate_;
  std::vector<std::pair<PeId, int>> vm_pe_scratch_;  ///< per-VM PE counts.
};

}  // namespace dds
