// Steady-state rate propagation through the dataflow graph.
//
// With and-split / multi-merge edge semantics (§3), under *infinite*
// processing capacity, every PE's arrival rate is fully determined by the
// external input rate and the active alternates' selectivities:
//   arrival(input PE) = external rate
//   output(P)         = arrival(P) * selectivity(active alternate of P)
//   arrival(P)        = sum over predecessors u of output(u)
// These expected rates drive both the schedulers' capacity planning and
// the denominator of the relative-throughput metric (Def. 4).
#pragma once

#include <vector>

#include "dds/dataflow/dataflow.hpp"
#include "dds/sim/deployment.hpp"

namespace dds {

/// Expected arrival rate (msgs/s) at each PE, indexed by PeId, assuming
/// infinite capacity everywhere.
[[nodiscard]] std::vector<double> expectedArrivalRates(
    const Dataflow& df, const Deployment& deployment, double input_rate);

/// Buffer-reusing variant for per-interval hot paths (resizes `arrival`).
void expectedArrivalRatesInto(const Dataflow& df,
                              const Deployment& deployment,
                              double input_rate,
                              std::vector<double>& arrival);

/// Expected output rate (msgs/s) of each PE = arrival * selectivity.
[[nodiscard]] std::vector<double> expectedOutputRates(
    const Dataflow& df, const Deployment& deployment, double input_rate);

/// Buffer-reusing variant for per-interval hot paths (resizes `rates`).
void expectedOutputRatesInto(const Dataflow& df, const Deployment& deployment,
                             double input_rate, std::vector<double>& rates);

/// Required normalized core power per PE to keep up with the expected
/// arrival rates: power_i = arrival_i * cost(active alternate of P_i).
/// This is the demand vector the bin-packing heuristics pack into VMs.
[[nodiscard]] std::vector<double> requiredCorePower(
    const Dataflow& df, const Deployment& deployment, double input_rate);

/// Buffer-reusing variant for per-interval hot paths (resizes `power`).
void requiredCorePowerInto(const Dataflow& df, const Deployment& deployment,
                           double input_rate, std::vector<double>& power);

}  // namespace dds
