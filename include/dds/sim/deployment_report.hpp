// Human-readable deployment inspection.
//
// Renders the current VM/core layout and per-PE allocation so examples,
// the CLI and debugging sessions can see *where* everything runs:
//
//   vm-0  m1.xlarge  $0.48/h  [E1|E2|E2|E3]
//   vm-1  m1.small   $0.06/h  [E4]
//   PE E2 (e2-fast): 2 cores, rated power 4.0, on 1 VM
#pragma once

#include <string>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/sim/deployment.hpp"

namespace dds {

/// One line per active VM showing which PE owns each core slot.
[[nodiscard]] std::string renderVmLayout(const Dataflow& df,
                                         const CloudProvider& cloud);

/// One line per PE: active alternate, core count, rated power, VM spread.
[[nodiscard]] std::string renderPeAllocations(const Dataflow& df,
                                              const CloudProvider& cloud,
                                              const Deployment& deployment);

/// Both sections plus a cost line — the full snapshot.
[[nodiscard]] std::string renderDeployment(const Dataflow& df,
                                           const CloudProvider& cloud,
                                           const Deployment& deployment,
                                           SimTime now);

}  // namespace dds
