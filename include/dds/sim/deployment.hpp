// Deployment state: which alternate is active per PE, plus views over the
// cloud's core-allocation ledger (paper §5).
//
// The authoritative record of *which cores belong to which PE* lives in the
// VmInstance ledgers inside CloudProvider — there is exactly one owner per
// core, so keeping it in one place avoids divergence. Deployment adds the
// remaining control variable: the active alternate A_i^j(t) for every PE.
#pragma once

#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/common/ids.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/monitor/monitoring.hpp"

namespace dds {

/// The per-PE active-alternate assignment (sum_j A_i^j(t) = 1, §3).
class Deployment {
 public:
  explicit Deployment(const Dataflow& df) {
    alternate_counts_.reserve(df.peCount());
    for (const auto& pe : df.pes()) {
      alternate_counts_.push_back(pe.alternateCount());
    }
    active_.assign(df.peCount(), AlternateId(0));
  }

  [[nodiscard]] std::size_t peCount() const { return active_.size(); }

  [[nodiscard]] AlternateId activeAlternate(PeId pe) const {
    DDS_REQUIRE(pe.value() < active_.size(), "PE id out of range");
    return active_[pe.value()];
  }

  void setActiveAlternate(PeId pe, AlternateId alt) {
    DDS_REQUIRE(pe.value() < active_.size(), "PE id out of range");
    DDS_REQUIRE(alt.value() < alternate_counts_[pe.value()],
                "alternate id out of range for PE");
    active_[pe.value()] = alt;
  }

 private:
  std::vector<AlternateId> active_;
  std::vector<std::size_t> alternate_counts_;
};

/// Cores a PE holds on one VM.
struct VmCores {
  VmId vm;
  int cores = 0;
};

/// All (VM, core-count) pairs for `pe`, over active VMs only.
[[nodiscard]] std::vector<VmCores> peCores(const CloudProvider& cloud,
                                           PeId pe);

/// Total cores allocated to `pe` across active VMs.
[[nodiscard]] int totalCores(const CloudProvider& cloud, PeId pe);

/// Sum of rated core power (pi per core) allocated to `pe`.
[[nodiscard]] double ratedPowerOf(const CloudProvider& cloud, PeId pe);

/// Sum of observed core power allocated to `pe` at time `t`.
[[nodiscard]] double observedPowerOf(const CloudProvider& cloud,
                                     const MonitoringService& mon, PeId pe,
                                     SimTime t);

/// Whether the two PEs share at least one VM (in-memory edge, §4).
[[nodiscard]] bool areColocated(const CloudProvider& cloud, PeId a, PeId b);

/// Total cores allocated to any PE across active VMs.
[[nodiscard]] int totalAllocatedCores(const CloudProvider& cloud);

}  // namespace dds
