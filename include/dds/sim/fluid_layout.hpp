// Immutable structure-of-arrays image of a dataflow for the cached fluid
// kernel (ROADMAP [speed], mirroring the event simulator's dual-engine
// refactor).
//
// Everything here is a pure function of the Dataflow: topological order,
// the in-edge CSR in the exact order the reference kernel walks
// predecessors, the active-alternate coefficient tables (cost, selectivity,
// relative value) flattened per PE, and the output list. Because it never
// changes, `Substrate` shares one instance across every campaign job that
// runs the same graph — per-job mutable state (backlogs, coefficient
// caches, the ledger image) stays in the kernel and the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dds/dataflow/dataflow.hpp"

namespace dds {

struct FluidGraphLayout {
  std::uint32_t pe_count = 0;
  std::vector<std::uint32_t> topo;     ///< pe ids in topological order.
  std::vector<std::uint8_t> is_input;  ///< by pe id.
  /// In-edges of the PE at topo position p: global edge indices
  /// edge_offset[p] .. edge_offset[p+1], upstream pe id in edge_u. Edge
  /// order equals the reference kernel's predecessor walk order, which
  /// fixes the canonical arrival-sum sequence.
  std::vector<std::uint32_t> edge_offset;
  std::vector<std::uint32_t> edge_u;
  /// Alternate tables, CSR by pe id: slot alt_offset[pe] + alternate id.
  std::vector<std::uint32_t> alt_offset;
  std::vector<double> alt_cost_core_sec;
  std::vector<double> alt_selectivity;
  std::vector<double> alt_relative_value;
  std::vector<std::uint32_t> outputs;  ///< pe ids, df.outputs() order.

  [[nodiscard]] std::size_t edgeCount() const { return edge_u.size(); }
};

/// Build the flat layout for `df`. Pure: same graph, same layout.
[[nodiscard]] std::shared_ptr<const FluidGraphLayout> buildFluidLayout(
    const Dataflow& df);

}  // namespace dds
