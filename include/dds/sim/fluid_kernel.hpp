// The cached structure-of-arrays fluid interval kernel (default engine of
// DataflowSimulator; see simulator.hpp for the dual-engine contract).
//
// Layout: the graph image (topology, edge CSR, alternate tables) is the
// shared immutable FluidGraphLayout; the ledger image (per-PE capacity
// entries, per-edge bandwidth-cap entries) lives in flat CSR arrays
// rebuilt only when CloudProvider::ledgerGeneration() changes; the
// monitoring coefficient caches (per-VM core power, per-directional-pair
// bandwidth) persist across rebuilds, each value tagged with the validity
// window its Sample query reported.
//
// Bit-identity with the reference kernel rests on two invariants:
//  1. Window exactness — a cached sample equals a fresh query for any
//     time inside its validity window (MonitoringService contract), so
//     skipping the re-query cannot change a value.
//  2. First-touch order — the trace replayer draws a VM's (pair's) trace
//     assignment on its first-ever query, so the kernel must issue
//     first-ever queries in exactly the reference walk order. It does:
//     stale slots are refreshed at the same walk positions the reference
//     kernel queries them (capacity phase for core power, the
//     flow-gated edge walk for bandwidth — including the prefix pairs
//     the reference queries and then discards on colocation), and a
//     cached aggregate is only ever skipped after a previous full walk
//     already touched every constituent slot, making later re-queries
//     pure. Every reduction accumulates in the reference kernel's
//     canonical sequence, so sums are bit-identical, not just close.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dds/cloud/cloud_provider.hpp"
#include "dds/common/time.hpp"
#include "dds/dataflow/dataflow.hpp"
#include "dds/metrics/run_metrics.hpp"
#include "dds/monitor/monitoring.hpp"
#include "dds/sim/deployment.hpp"
#include "dds/sim/fluid_layout.hpp"
#include "dds/sim/simulator.hpp"

namespace dds {

class FluidKernel {
 public:
  FluidKernel(const Dataflow& df, const CloudProvider& cloud,
              const MonitoringService& mon, const SimConfig& cfg,
              std::shared_ptr<const FluidGraphLayout> layout);

  /// Run one adaptation interval: fills `m` completely (per-PE stats,
  /// Omega, Gamma, cost, VM/core footprint) and advances the caller-owned
  /// queue state, matching the reference kernel byte for byte.
  void runInterval(SimTime t_start, SimTime dt, double input_rate,
                   const Deployment& deployment, IntervalMetrics& m,
                   std::vector<double>& backlog,
                   std::vector<double>& in_transit,
                   std::vector<SimTime>& pause_remaining,
                   std::vector<double>& output_rate,
                   std::vector<double>& expected_rate);

  /// Ledger-image rebuilds so far (== distinct ledger generations seen).
  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  /// One cached monitoring sample; the sentinel window makes the first
  /// touch always stale.
  struct Slot {
    double value = 0.0;
    SimTime valid_until = -std::numeric_limits<SimTime>::infinity();
  };

  void rebuild();
  [[nodiscard]] std::uint32_t pairSlot(std::uint32_t a, std::uint32_t b);
  void refreshPair(std::uint32_t slot, SimTime t_mid);
  void refreshPePower(std::uint32_t pe, SimTime t_mid);
  void refreshEdge(std::uint32_t e, std::uint32_t u, SimTime t_mid);

  const Dataflow* df_;
  const CloudProvider* cloud_;
  const MonitoringService* mon_;
  SimConfig cfg_;
  std::shared_ptr<const FluidGraphLayout> layout_;
  bool built_ = false;
  std::uint64_t generation_ = 0;
  std::uint64_t rebuilds_ = 0;

  // Coefficient caches: facts about the replayed traces, so they survive
  // ledger rebuilds. Pair slots are append-only across the run.
  std::vector<Slot> cpu_coeff_;  ///< by VM id.
  std::vector<Slot> pair_coeff_;
  std::vector<std::uint32_t> pair_a_;  ///< slot -> directional VM pair.
  std::vector<std::uint32_t> pair_b_;
  std::unordered_map<std::uint64_t, std::uint32_t> pair_slot_of_;

  // Ledger image (valid for one generation).
  std::vector<std::pair<PeId, int>> vm_pe_scratch_;
  std::vector<std::vector<VmCores>> pe_cores_;
  std::vector<std::uint32_t> cap_offset_;  ///< by pe id, size n+1.
  std::vector<std::uint32_t> cap_vm_;
  std::vector<double> cap_cores_;
  std::vector<int> pe_cores_total_;
  int total_cores_ = 0;

  // Per-edge bandwidth-cap entries (one per u-side VmCores of a runnable
  // edge), in the exact reference walk order. An entry's pair range holds
  // the v-side pairs the reference kernel queries for it: every v VM for
  // a remote entry, the prefix before the colocation break otherwise.
  std::vector<std::uint32_t> entry_offset_;  ///< edge -> entries, E+1.
  std::vector<std::uint32_t> entry_vm_;
  std::vector<double> entry_cores_;
  std::vector<std::uint8_t> entry_colocated_;
  std::vector<std::uint32_t> pair_offset_;  ///< entry -> pair slots.
  std::vector<std::uint32_t> pair_slots_;
  std::vector<std::uint8_t> edge_runnable_;  ///< both endpoints placed.

  // Aggregates, each tagged with the min validity window of the slots it
  // was reduced from (colocated-prefix pairs excluded: their values are
  // discarded, they only pin RNG order).
  std::vector<double> pe_power_;
  std::vector<SimTime> pe_power_valid_;
  std::vector<double> edge_coloc_power_;
  std::vector<double> edge_remote_cap_;
  std::vector<SimTime> edge_valid_;
};

}  // namespace dds
