// A small work-stealing thread pool for embarrassingly parallel campaign
// work (one experiment run per task).
//
// Design: each worker owns a deque guarded by its own mutex. submit()
// from an external thread round-robins tasks across the deques; submit()
// from inside a worker pushes to that worker's own deque (LIFO, keeps
// recursive fan-out cache-warm). An idle worker pops its own deque from
// the back, then steals from the other deques' front, then sleeps on a
// shared condition variable. Destruction drains: every task submitted
// before ~ThreadPool() runs to completion before the workers join.
//
// Exceptions thrown by a task are captured in the std::future returned by
// submit() and rethrown at .get(), never swallowed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "dds/common/error.hpp"

namespace dds {

class ThreadPool {
 public:
  /// Spin up `threads` workers; 0 means hardwareConcurrency().
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static std::size_t hardwareConcurrency() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
  }

  /// Schedule `fn` for execution; the returned future carries its result
  /// or its exception.
  template <typename Fn>
  [[nodiscard]] std::future<std::invoke_result_t<Fn>> submit(Fn&& fn) {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

 private:
  /// One worker's task deque; a lock per deque keeps submit and steal
  /// contention off the hot path.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  void workerLoop(std::size_t index);

  /// Pop from own deque (back) or steal from another (front); empty
  /// function when no work exists anywhere.
  [[nodiscard]] std::function<void()> grabTask(std::size_t index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> next_queue_{0};  ///< round-robin cursor.
  std::size_t pending_ = 0;    ///< submitted-but-unfinished (sleep_mutex_).
  std::size_t unclaimed_ = 0;  ///< queued-but-ungrabbed (sleep_mutex_).
  bool shutting_down_ = false;  ///< set by the destructor.
};

}  // namespace dds
