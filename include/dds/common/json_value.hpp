// Minimal JSON parsing — the read-side companion of JsonWriter.
//
// A JsonValue is a small recursive variant: null, bool, double, string,
// array, object. Objects preserve key order (they are pair vectors, not
// maps) so parse -> re-serialize round-trips stay deterministic, and the
// parser is strict: trailing characters, malformed escapes or numbers
// throw IoError with the byte offset of the offence.
//
// This powers the JSONL trace reader (obs/trace_reader) and the campaign
// job-spec API (exp/job_spec). It is deliberately not a DOM library —
// just enough structure to interpret documents this repo itself writes,
// plus the strict validation a service endpoint needs.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace dds {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// One parsed JSON value. Arrays and objects are shared_ptrs so the
/// variant stays complete (and values stay cheap to copy).
struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] bool isNull() const {
    return std::holds_alternative<std::nullptr_t>(v);
  }
  [[nodiscard]] const bool* asBool() const { return std::get_if<bool>(&v); }
  [[nodiscard]] const double* asNumber() const {
    return std::get_if<double>(&v);
  }
  [[nodiscard]] const std::string* asString() const {
    return std::get_if<std::string>(&v);
  }
  [[nodiscard]] const JsonArray* asArray() const {
    const auto* p = std::get_if<std::shared_ptr<JsonArray>>(&v);
    return p == nullptr ? nullptr : p->get();
  }
  [[nodiscard]] const JsonObject* asObject() const {
    const auto* p = std::get_if<std::shared_ptr<JsonObject>>(&v);
    return p == nullptr ? nullptr : p->get();
  }
};

/// First value of `key` in an object, or nullptr when absent.
[[nodiscard]] const JsonValue* jsonFind(const JsonObject& obj,
                                        const std::string& key);

/// Parse one complete JSON document; throws IoError on any syntax error
/// or trailing input.
[[nodiscard]] JsonValue parseJson(const std::string& text);

}  // namespace dds
