// Minimal CSV reading and writing.
//
// Performance traces (Figs. 2-3) and experiment result series are persisted
// as plain CSV so they can be inspected and re-plotted outside the library.
// The dialect is deliberately simple: comma separator, no quoting, '#'
// comment lines, one header row.
#pragma once

#include <string>
#include <vector>

namespace dds {

/// An in-memory CSV table: one header row plus numeric data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  /// Index of a header column; throws PreconditionError if absent.
  [[nodiscard]] std::size_t columnIndex(const std::string& name) const;

  /// All values of one column, by name.
  [[nodiscard]] std::vector<double> column(const std::string& name) const;
};

/// Parse CSV text (see dialect above). Throws IoError on malformed input.
[[nodiscard]] CsvTable parseCsv(const std::string& text);

/// Serialize a table back to CSV text.
[[nodiscard]] std::string formatCsv(const CsvTable& table);

/// Load a CSV file from disk. Throws IoError if unreadable.
[[nodiscard]] CsvTable loadCsv(const std::string& path);

/// Write a CSV file to disk. Throws IoError on failure.
void saveCsv(const std::string& path, const CsvTable& table);

}  // namespace dds
