// Minimal JSON emission for benchmark/campaign result export.
//
// Not a parser and not a DOM — a forward-only writer that produces
// deterministic output (insertion order preserved) so BENCH_*.json
// baselines can live in git. Numbers are written with the shortest
// representation that round-trips doubles, which also makes
// parse -> re-serialize idempotent for trace files.
//
// Two layout styles: Pretty (2-space indent, human-diffable, the
// default) and Compact (no whitespace — one JSONL record per str()).
//
// JSON has no NaN/Inf, so non-finite doubles need an explicit policy:
//   Null           — emit null (legacy default; lossy for readers that
//                    distinguish "absent" from "not a number")
//   StringSentinel — emit "NaN" / "Infinity" / "-Infinity" strings,
//                    which TraceReader maps back to the exact value
//   Throw          — PreconditionError; for documents where a
//                    non-finite value can only mean a bug upstream
//
//   JsonWriter w;
//   w.beginObject();
//   w.key("name").value("campaign");
//   w.key("runs").beginArray();
//   w.value(1.5);
//   w.endArray();
//   w.endObject();
//   std::string text = w.str();
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "dds/common/error.hpp"

namespace dds {

/// Escape a string for embedding in a JSON document (no quotes added).
[[nodiscard]] std::string jsonEscape(const std::string& s);

/// Streaming JSON writer with indentation and container bookkeeping.
class JsonWriter {
 public:
  enum class Style { Pretty, Compact };
  enum class NonFinitePolicy { Null, StringSentinel, Throw };

  struct Options {
    Style style = Style::Pretty;
    NonFinitePolicy non_finite = NonFinitePolicy::Null;
  };

  JsonWriter() = default;
  explicit JsonWriter(Options options) : options_(options) {}

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Write an object key; the next value/begin* call is its value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The document so far; call after the outermost container is closed.
  /// Pretty documents end with '\n'; Compact ones do not (the caller
  /// owns record separators in JSONL streams).
  [[nodiscard]] std::string str() const;

 private:
  enum class Frame { Object, Array };

  void beforeValue();
  void indent();

  Options options_;
  std::ostringstream out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

/// Shortest decimal representation of a finite double that scans back
/// to the same value (integral values print without an exponent).
[[nodiscard]] std::string jsonNumber(double v);

}  // namespace dds
