// Minimal JSON emission for benchmark/campaign result export.
//
// Not a parser and not a DOM — a forward-only writer that produces
// deterministic, human-diffable output (2-space indent, insertion order
// preserved) so BENCH_*.json baselines can live in git. Numbers are
// written with enough digits to round-trip doubles; non-finite values
// become null (JSON has no NaN/Inf).
//
//   JsonWriter w;
//   w.beginObject();
//   w.key("name").value("campaign");
//   w.key("runs").beginArray();
//   w.value(1.5);
//   w.endArray();
//   w.endObject();
//   std::string text = w.str();
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "dds/common/error.hpp"

namespace dds {

/// Escape a string for embedding in a JSON document (no quotes added).
[[nodiscard]] std::string jsonEscape(const std::string& s);

/// Streaming JSON writer with indentation and container bookkeeping.
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Write an object key; the next value/begin* call is its value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The document so far; call after the outermost container is closed.
  [[nodiscard]] std::string str() const;

 private:
  enum class Frame { Object, Array };

  void beforeValue();
  void indent();

  std::ostringstream out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace dds
