// Fixed-width console table rendering for the benchmark harness.
//
// Every figure-reproduction bench prints its series as an aligned text
// table (plus CSV lines) so the output can be read in a terminal and also
// scraped by plotting scripts.
#pragma once

#include <string>
#include <vector>

namespace dds {

/// Accumulates rows of string cells and renders an aligned table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void addRow(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 3);

  /// Render with column padding and a rule under the header.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dds
