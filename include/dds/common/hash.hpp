// Small non-cryptographic hashing helpers.
//
// FNV-1a (64-bit, octet-at-a-time) over little-endian machine words: fast,
// dependency-free and fully deterministic across platforms with the same
// endianness — good enough to key an in-process cache, nothing more. The
// planner's feasibility memo hashes (vm_counts, demand-bit) key vectors
// with it; canonicalBits() folds -0.0 into +0.0 so the two zero encodings
// cannot split otherwise-identical keys across slots.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

namespace dds {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/// Fold one octet into a running FNV-1a state.
[[nodiscard]] constexpr std::uint64_t fnv1aByte(std::uint64_t h,
                                                std::uint8_t byte) {
  return (h ^ byte) * kFnv1aPrime;
}

/// Fold one 64-bit word into a running FNV-1a state, octet by octet
/// (low byte first, independent of host endianness).
[[nodiscard]] constexpr std::uint64_t fnv1aWord(std::uint64_t h,
                                                std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h = fnv1aByte(h, static_cast<std::uint8_t>(word >> (8 * i)));
  }
  return h;
}

/// FNV-1a over a word sequence, starting from the standard offset basis.
[[nodiscard]] constexpr std::uint64_t fnv1aWords(const std::uint64_t* words,
                                                 std::size_t count) {
  std::uint64_t h = kFnv1aOffsetBasis;
  for (std::size_t i = 0; i < count; ++i) h = fnv1aWord(h, words[i]);
  return h;
}

/// IEEE-754 bit pattern of `d` with the sign of zero normalized away, so
/// -0.0 and +0.0 (numerically equal, hence interchangeable inputs to any
/// downstream arithmetic) map to the same key word.
[[nodiscard]] inline std::uint64_t canonicalBits(double d) {
  if (d == 0.0) return 0;  // +0.0 and -0.0 alike
  return std::bit_cast<std::uint64_t>(d);
}

}  // namespace dds
