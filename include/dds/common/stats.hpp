// Streaming and batch descriptive statistics.
//
// Used by the monitoring framework (per-VM performance summaries), the
// metrics module (averaging Omega/Gamma over the optimization period) and
// the benchmark harness (reporting trace variability as in Figs. 2-3).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "dds/common/error.hpp"

namespace dds {

/// Single-pass running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Population variance; zero for fewer than two samples.
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Coefficient of variation (stddev / |mean|); zero when mean is zero.
  [[nodiscard]] double cv() const {
    return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
  }

  /// Merge another accumulator into this one (parallel reduction friendly).
  void merge(const RunningStats& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(count_ + o.count_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(count_) *
                       static_cast<double>(o.count_) / total;
    mean_ += delta * static_cast<double>(o.count_) / total;
    count_ += o.count_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a sample; zero for an empty span.
[[nodiscard]] inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Linear-interpolation percentile, p in [0, 100]. Copies and sorts.
[[nodiscard]] inline double percentile(std::span<const double> xs, double p) {
  DDS_REQUIRE(!xs.empty(), "percentile of empty sample");
  DDS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace dds
