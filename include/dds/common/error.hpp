// Error-handling helpers shared by all dds modules.
//
// The library reports contract violations (bad arguments, broken invariants)
// by throwing exceptions derived from std::logic_error / std::runtime_error.
// Simulation code never aborts the process; callers decide how to recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dds {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is found broken (a library bug or a
/// corrupted state handed back to the library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an external resource (trace file, CSV) cannot be used.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void throwPrecondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throwInvariant(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace dds

/// Validate a documented precondition; throws dds::PreconditionError.
#define DDS_REQUIRE(expr, msg)                                          \
  do {                                                                  \
    if (!(expr))                                                        \
      ::dds::detail::throwPrecondition(#expr, __FILE__, __LINE__, msg); \
  } while (false)

/// Validate an internal invariant; throws dds::InvariantError.
#define DDS_ENSURE(expr, msg)                                        \
  do {                                                               \
    if (!(expr))                                                     \
      ::dds::detail::throwInvariant(#expr, __FILE__, __LINE__, msg); \
  } while (false)
