// Strongly-typed integer identifiers.
//
// Processing elements, alternates and VM instances are all referred to by
// dense indices; wrapping them in distinct types prevents the classic
// "passed a VM id where a PE id was expected" bug at compile time.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace dds {

/// A strongly-typed wrapper around a dense 32-bit index.
/// `Tag` is an empty struct that distinguishes id families.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }

  constexpr auto operator<=>(const StrongId&) const = default;

 private:
  value_type value_ = 0;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, StrongId<Tag> id) {
  return os << id.value();
}

struct PeIdTag {};
struct AlternateIdTag {};
struct VmIdTag {};
struct ResourceClassIdTag {};

/// Identifies a processing element within one dataflow.
using PeId = StrongId<PeIdTag>;
/// Identifies an alternate implementation within one processing element.
using AlternateId = StrongId<AlternateIdTag>;
/// Identifies a VM instance within one CloudProvider (never reused).
using VmId = StrongId<VmIdTag>;
/// Identifies a resource class within one catalog.
using ResourceClassId = StrongId<ResourceClassIdTag>;

}  // namespace dds

namespace std {
template <typename Tag>
struct hash<dds::StrongId<Tag>> {
  size_t operator()(dds::StrongId<Tag> id) const noexcept {
    return std::hash<typename dds::StrongId<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
