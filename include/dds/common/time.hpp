// Simulation time model.
//
// The paper (§6) divides an optimization period T into equal-length
// intervals {t0, t1, ...}: deployment decisions are made before t0 and
// runtime decisions at the beginning of each interval. We keep wall-clock
// simulation time in seconds (double) and index intervals with a plain
// integer; IntervalClock converts between the two.
#pragma once

#include <cstdint>

#include "dds/common/error.hpp"

namespace dds {

/// Simulation time in seconds since the start of the run.
using SimTime = double;

/// Zero-based index of an adaptation interval within the optimization period.
using IntervalIndex = std::int64_t;

constexpr SimTime kSecondsPerHour = 3600.0;
constexpr SimTime kSecondsPerMinute = 60.0;

/// Maps between interval indices and simulation seconds for one run.
class IntervalClock {
 public:
  /// @param interval_length_s length of each adaptation interval (> 0)
  /// @param horizon_s total length of the optimization period (> 0)
  IntervalClock(SimTime interval_length_s, SimTime horizon_s)
      : interval_length_s_(interval_length_s), horizon_s_(horizon_s) {
    DDS_REQUIRE(interval_length_s > 0.0, "interval length must be positive");
    DDS_REQUIRE(horizon_s > 0.0, "horizon must be positive");
  }

  [[nodiscard]] SimTime intervalLength() const { return interval_length_s_; }
  [[nodiscard]] SimTime horizon() const { return horizon_s_; }

  /// Number of whole intervals in the optimization period (at least 1).
  [[nodiscard]] IntervalIndex intervalCount() const {
    auto n = static_cast<IntervalIndex>(horizon_s_ / interval_length_s_);
    return n > 0 ? n : 1;
  }

  /// Simulation time at which interval `i` begins.
  [[nodiscard]] SimTime startOf(IntervalIndex i) const {
    DDS_REQUIRE(i >= 0, "interval index must be non-negative");
    return static_cast<SimTime>(i) * interval_length_s_;
  }

  /// Simulation time at which interval `i` ends.
  [[nodiscard]] SimTime endOf(IntervalIndex i) const {
    return startOf(i) + interval_length_s_;
  }

  /// Midpoint of interval `i`; used when sampling traces for the interval.
  [[nodiscard]] SimTime midOf(IntervalIndex i) const {
    return startOf(i) + 0.5 * interval_length_s_;
  }

 private:
  SimTime interval_length_s_;
  SimTime horizon_s_;
};

}  // namespace dds
