// Deterministic random number generation.
//
// Every stochastic component (trace generator, random-walk rate profile,
// replay-window assignment) draws from an Rng seeded from the experiment
// config, so whole simulation runs are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

#include "dds/common/error.hpp"

namespace dds {

/// A seedable PRNG with convenience distributions.
/// Thin wrapper over std::mt19937_64; copyable so components can fork
/// independent deterministic streams via `fork()`.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    DDS_REQUIRE(lo <= hi, "uniform bounds out of order");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    DDS_REQUIRE(lo <= hi, "uniformInt bounds out of order");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation (sd >= 0).
  [[nodiscard]] double normal(double mean, double sd) {
    DDS_REQUIRE(sd >= 0.0, "standard deviation must be non-negative");
    if (sd == 0.0) return mean;
    return std::normal_distribution<double>(mean, sd)(engine_);
  }

  /// Bernoulli trial with probability p in [0, 1].
  [[nodiscard]] bool chance(double p) {
    DDS_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with the given rate (> 0); mean is 1/rate.
  [[nodiscard]] double exponential(double rate) {
    DDS_REQUIRE(rate > 0.0, "rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Derive an independent child stream. Advances this stream.
  [[nodiscard]] Rng fork() { return Rng(engine_() ^ 0xd1b54a32d192ed03ull); }

  /// Raw 64-bit draw (exposed for hashing/shuffling helpers).
  [[nodiscard]] std::uint64_t next() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer — a well-mixed stateless hash. Fault models use it
/// to derive independent uniform draws from (seed, entity, index) keys so
/// results are pure functions of their inputs, independent of query order.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Map a hash to a uniform double in (0, 1] — never exactly zero, so
/// log(u) stays finite for exponential draws.
[[nodiscard]] constexpr double hashToUnitInterval(std::uint64_t h) {
  return (static_cast<double>(h >> 11) + 1.0) / 9007199254740993.0;
}

}  // namespace dds
