// Key-value experiment configuration files for the ddsim CLI.
//
// Format: one `key = value` pair per line, `#` comments, blank lines
// ignored. Keys are free-form strings; typed getters convert on access.
//
//   # experiment.conf
//   graph        = paper           # paper | chain | diamond
//   scheduler    = global,local    # any comma list of policy names
//   mean_rate    = 10
//   profile      = wave            # constant | wave | random-walk
//   horizon_h    = 2
//   infra_variability = true
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dds/core/experiment.hpp"

namespace dds {

/// A user-facing configuration mistake: unknown key, malformed value,
/// unknown enum name. Derives from PreconditionError (it is one), but
/// carries a clean one-line message suitable for CLI stderr — no
/// source-location noise.
class ConfigError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

/// A parsed key-value configuration.
class KeyValueConfig {
 public:
  /// Parse from text; throws IoError on malformed lines.
  static KeyValueConfig parse(const std::string& text);

  /// Load from a file; throws IoError when unreadable.
  static KeyValueConfig load(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Set or overwrite one key programmatically. This is how structured
  /// front-ends (the JSON job-spec API) funnel values into the same
  /// validation pipeline the file parser feeds.
  void set(const std::string& key, const std::string& value);

  /// Typed getters with defaults; throw PreconditionError when the value
  /// exists but cannot be converted.
  [[nodiscard]] std::string getString(const std::string& key,
                                      const std::string& fallback) const;
  [[nodiscard]] double getDouble(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::int64_t getInt(const std::string& key,
                                    std::int64_t fallback) const;
  [[nodiscard]] bool getBool(const std::string& key, bool fallback) const;

  /// Comma-separated list (whitespace trimmed); empty when absent.
  [[nodiscard]] std::vector<std::string> getList(
      const std::string& key) const;

  /// Keys present in the file (sorted) — used to reject typos.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

/// The experiment an ddsim config describes.
struct CliExperiment {
  ExperimentConfig config;
  std::string graph = "paper";  ///< paper | chain | diamond
  std::vector<SchedulerKind> schedulers;
  std::string output_csv;  ///< empty = no CSV dump
};

/// Translate a parsed config into an experiment. Unknown keys, graphs,
/// profiles or scheduler names throw ConfigError with the offender named.
///
/// Keys come in a nested canonical form ("workload.mean_rate",
/// "fault.vm_mtbf_h", "resilience.quarantine_threshold") mirroring the
/// ExperimentConfig sub-structs; the historical flat spellings
/// ("mean_rate", "vm_mtbf_h", "quarantine_threshold") keep working as
/// deprecated aliases. When `notes` is non-null, one deprecation note per
/// alias used is appended (the CLI prints them to stderr). Giving both
/// spellings of one knob is an error.
///
/// `config_schema = strict` promotes every deprecated alias to a hard
/// ConfigError naming the canonical replacement; the default (`warn`)
/// keeps the note-and-accept behavior. Structured front-ends (the JSON
/// job-spec API) always parse strictly.
[[nodiscard]] CliExperiment experimentFromConfig(
    const KeyValueConfig& kv, std::vector<std::string>* notes = nullptr);

/// The canonical (non-deprecated, non-alias) config keys, sorted — the
/// vocabulary `config_schema = strict` and the job-spec API accept.
[[nodiscard]] std::vector<std::string> canonicalConfigKeys();

/// Parse one scheduler name ("global", "local-static", ...). Wraps the
/// sched-layer parseSchedulerKind, rethrowing as ConfigError.
[[nodiscard]] SchedulerKind schedulerKindFromName(const std::string& name);

}  // namespace dds
