// Input-rate forecasting for predictive scheduling.
//
// The paper's adaptive schedulers react to the *last* observed interval,
// so every flash crowd pays a full reaction lag — made worse once
// provisioning delays charge real boot time before new VMs deliver power.
// A Forecaster closes that gap: it observes the per-interval external
// input rate the monitoring layer measured and emits a predicted rate
// vector over a configurable horizon, which the predictive scheduler
// variants score plans against (multi-step lookahead via PlanEvaluator)
// and use to pre-acquire VMs ahead of forecast peaks.
//
// This library is a leaf: models depend only on dds_common. The engine
// owns the Forecaster instance; schedulers only ever see the predicted
// rate vector (ObservedState::forecast), never the model itself.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dds {

/// Which forecasting model a run uses. Off (the default) keeps every
/// code path bit-identical to the pre-forecast behaviour. The registry
/// at the bottom of this header is the single place mapping models to
/// names and instances, mirroring the scheduler registry.
enum class ForecastModel {
  Off,          ///< forecasting disabled (reactive scheduling only).
  Naive,        ///< last observed value, held flat over the horizon.
  Ewma,         ///< exponentially weighted moving average level.
  HoltWinters,  ///< additive Holt-Winters: level + trend + seasonality.
};

/// Model parameters (defaults tuned for the §8.1 workload shapes: 60 s
/// intervals, 30 min wave period -> 30-interval season).
struct ForecastOptions {
  double ewma_alpha = 0.3;      ///< EWMA level weight on the newest rate.
  double hw_alpha = 0.3;        ///< Holt-Winters level smoothing.
  double hw_beta = 0.05;        ///< Holt-Winters trend smoothing.
  double hw_gamma = 0.3;        ///< Holt-Winters seasonal smoothing.
  int hw_season_intervals = 30; ///< season length, in intervals.
};

/// Online rate predictor: observe one measured rate per interval, then
/// ask for the next `horizon` intervals. forecast(h)[k] predicts the
/// rate of the (k+1)-th not-yet-observed interval; predictions are
/// clamped at zero (rates cannot go negative).
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Registry name of the model ("naive", "ewma", "holt-winters").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Feed the rate measured over the interval that just ended.
  virtual void observe(double rate) = 0;

  /// Predicted rates for the next `horizon` intervals. Before the first
  /// observation every model predicts zero (there is nothing to go on).
  [[nodiscard]] virtual std::vector<double> forecast(int horizon) const = 0;

  /// How many rates this forecaster has observed.
  [[nodiscard]] virtual std::int64_t observationCount() const = 0;
};

/// Last observed value, held flat.
class NaiveForecaster final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "naive"; }
  void observe(double rate) override;
  [[nodiscard]] std::vector<double> forecast(int horizon) const override;
  [[nodiscard]] std::int64_t observationCount() const override {
    return count_;
  }

 private:
  double last_ = 0.0;
  std::int64_t count_ = 0;
};

/// Exponentially weighted moving average: level' = a*r + (1-a)*level,
/// held flat over the horizon.
class EwmaForecaster final : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha);
  [[nodiscard]] std::string name() const override { return "ewma"; }
  void observe(double rate) override;
  [[nodiscard]] std::vector<double> forecast(int horizon) const override;
  [[nodiscard]] std::int64_t observationCount() const override {
    return count_;
  }

 private:
  double alpha_;
  double level_ = 0.0;
  std::int64_t count_ = 0;
};

/// Additive Holt-Winters (level + trend + seasonal component of length
/// m). Until m observations arrive it falls back to an EWMA level (with
/// the same alpha); the m-th observation initializes level to the first
/// season's mean, trend to zero and the seasonal terms to the deviations
/// from that mean. Periodic profiles (the §8.1 wave) converge to near-
/// zero forecast error after one further season of warm-up.
class HoltWintersForecaster final : public Forecaster {
 public:
  HoltWintersForecaster(double alpha, double beta, double gamma,
                        int season_intervals);
  [[nodiscard]] std::string name() const override { return "holt-winters"; }
  void observe(double rate) override;
  [[nodiscard]] std::vector<double> forecast(int horizon) const override;
  [[nodiscard]] std::int64_t observationCount() const override {
    return count_;
  }

  /// Whether the seasonal state is initialized (>= one full season seen).
  [[nodiscard]] bool seasonal() const { return initialized_; }

 private:
  double alpha_;
  double beta_;
  double gamma_;
  std::size_t season_;
  bool initialized_ = false;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;  ///< by (observation index mod season).
  std::vector<double> warmup_;    ///< first season's raw observations.
  std::int64_t count_ = 0;
};

/// Tracks one-step forecast error across a run: MAPE (mean absolute
/// percentage error over intervals with a non-negligible realized rate)
/// and bias (mean of predicted - realized; positive = over-forecasting).
class ForecastErrorTracker {
 public:
  void record(double predicted, double realized);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mape() const;
  [[nodiscard]] double bias() const;

 private:
  std::int64_t count_ = 0;
  std::int64_t mape_count_ = 0;
  double mape_sum_ = 0.0;
  double bias_sum_ = 0.0;
};

// ---------------------------------------------------------------------------
// Forecaster registry: the one place that knows every concrete model.
// ---------------------------------------------------------------------------

/// Canonical CLI/config name of a model ("off", "naive", "ewma",
/// "holt-winters").
[[nodiscard]] std::string forecastModelName(ForecastModel model);

/// Inverse of forecastModelName(); throws PreconditionError on unknown
/// names.
[[nodiscard]] ForecastModel parseForecastModel(const std::string& name);

/// Every ForecastModel, in enum order — for sweeps, help text and
/// round-trip tests.
[[nodiscard]] const std::vector<ForecastModel>& allForecastModels();

/// Compat alias; prefer forecastModelName().
[[nodiscard]] inline std::string toString(ForecastModel model) {
  return forecastModelName(model);
}

/// Build a forecaster for `model`; throws PreconditionError for Off
/// (callers gate on the model before constructing).
[[nodiscard]] std::unique_ptr<Forecaster> makeForecaster(
    ForecastModel model, const ForecastOptions& options = {});

}  // namespace dds
