// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) a human-readable aligned table and (b) the same
// rows as `CSV:`-prefixed lines so plotting scripts can scrape the output.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dds/dds.hpp"

namespace dds::bench {

inline void printHeader(const std::string& figure,
                        const std::string& caption) {
  std::cout << "==================================================\n"
            << figure << ": " << caption << '\n'
            << "==================================================\n";
}

inline void printTableAndCsv(const TextTable& table,
                             const std::vector<std::string>& csv_header,
                             const std::vector<std::vector<double>>& rows) {
  std::cout << table.render() << '\n';
  std::ostringstream os;
  os << "CSV:";
  for (std::size_t i = 0; i < csv_header.size(); ++i) {
    os << (i ? "," : "") << csv_header[i];
  }
  std::cout << os.str() << '\n';
  for (const auto& row : rows) {
    std::ostringstream line;
    line << "CSV:";
    for (std::size_t i = 0; i < row.size(); ++i) {
      line << (i ? "," : "") << row[i];
    }
    std::cout << line.str() << '\n';
  }
  std::cout << '\n';
}

/// The §8 data-rate sweep (2..50 msg/s).
inline std::vector<double> paperRates() {
  return {2.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0};
}

/// A short marker so shape claims can be eyeballed in the text output.
inline std::string constraintMark(const ExperimentResult& r) {
  return r.constraint_met ? "yes" : "NO";
}

}  // namespace dds::bench
