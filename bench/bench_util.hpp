// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) a human-readable aligned table and (b) the same
// rows as `CSV:`-prefixed lines so plotting scripts can scrape the output.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dds/dds.hpp"

namespace dds::bench {

inline void printHeader(const std::string& figure,
                        const std::string& caption) {
  std::cout << "==================================================\n"
            << figure << ": " << caption << '\n'
            << "==================================================\n";
}

inline void printTableAndCsv(const TextTable& table,
                             const std::vector<std::string>& csv_header,
                             const std::vector<std::vector<double>>& rows) {
  std::cout << table.render() << '\n';
  std::ostringstream os;
  os << "CSV:";
  for (std::size_t i = 0; i < csv_header.size(); ++i) {
    os << (i ? "," : "") << csv_header[i];
  }
  std::cout << os.str() << '\n';
  for (const auto& row : rows) {
    std::ostringstream line;
    line << "CSV:";
    for (std::size_t i = 0; i < row.size(); ++i) {
      line << (i ? "," : "") << row[i];
    }
    std::cout << line.str() << '\n';
  }
  std::cout << '\n';
}

/// The §8 data-rate sweep (2..50 msg/s).
inline std::vector<double> paperRates() {
  return {2.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0};
}

/// Run one experiment per (row config, policy) pair as a single parallel
/// campaign. Outcomes come back row-major — outcome index =
/// row * kinds.size() + kind — and are identical at any worker count, so
/// the tables the benches print do not depend on the host's core count.
inline std::vector<JobOutcome> runGrid(
    const Dataflow& df, const std::vector<ExperimentConfig>& rows,
    const std::vector<SchedulerKind>& kinds) {
  Campaign campaign;
  for (const auto& cfg : rows) {
    for (const auto kind : kinds) {
      campaign.add({&df, cfg, kind, schedulerName(kind), ""});
    }
  }
  CampaignResult res = runCampaign(campaign);
  return std::move(res.outcomes);
}

/// A short marker so shape claims can be eyeballed in the text output.
inline std::string constraintMark(const ExperimentResult& r) {
  return r.constraint_met ? "yes" : "NO";
}

/// The figs. 6-8 body: local vs global adaptive across the rate sweep
/// under the given variability mix, run as one parallel campaign.
inline void runLocalVsGlobalSweep(const Dataflow& df, ProfileKind profile,
                                  bool infra_variability) {
  const std::vector<double> rates = paperRates();
  std::vector<ExperimentConfig> rows;
  for (const double rate : rates) {
    ExperimentConfig cfg;
    cfg.horizon_s = 4.0 * kSecondsPerHour;
    cfg.workload.mean_rate = rate;
    cfg.workload.profile = profile;
    cfg.workload.infra_variability = infra_variability;
    cfg.seed = 2013;
    rows.push_back(cfg);
  }
  const std::vector<SchedulerKind> kinds = {SchedulerKind::LocalAdaptive,
                                            SchedulerKind::GlobalAdaptive};
  const auto outcomes = runGrid(df, rows, kinds);

  TextTable table({"rate", "policy", "omega", "met", "gamma", "cost$",
                   "theta"});
  std::vector<std::vector<double>> csv;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto& r = outcomes[i * kinds.size() + k].result;
      table.addRow({TextTable::num(rates[i], 0), r.scheduler_name,
                    TextTable::num(r.average_omega), constraintMark(r),
                    TextTable::num(r.average_gamma),
                    TextTable::num(r.total_cost, 2),
                    TextTable::num(r.theta)});
      csv.push_back({rates[i], static_cast<double>(k), r.average_omega,
                     r.constraint_met ? 1.0 : 0.0, r.average_gamma,
                     r.total_cost, r.theta});
    }
  }
  printTableAndCsv(
      table, {"rate", "policy", "omega", "met", "gamma", "cost", "theta"},
      csv);
}

}  // namespace dds::bench
