// Fig. 8 reproduction: local vs global adaptive heuristics when *both*
// the input data rate and the cloud infrastructure vary — the public-cloud
// scenario the paper targets.
//
// Paper claim: the qualitative ordering of Fig. 7 carries over — both
// heuristics keep the throughput constraint; global leads on Theta at
// high rates where wrong local actions (e.g., a needlessly acquired VM
// billed for a full hour) are the most expensive.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 8",
              "local vs global adaptive, data + infrastructure variability");

  const Dataflow df = makePaperDataflow();
  TextTable table({"rate", "policy", "omega", "met", "gamma", "cost$",
                   "theta"});
  std::vector<std::vector<double>> csv;
  for (const double rate : paperRates()) {
    for (const auto kind :
         {SchedulerKind::LocalAdaptive, SchedulerKind::GlobalAdaptive}) {
      ExperimentConfig cfg;
      cfg.horizon_s = 4.0 * kSecondsPerHour;
      cfg.mean_rate = rate;
      cfg.profile = ProfileKind::RandomWalk;
      cfg.infra_variability = true;
      cfg.seed = 2013;
      const auto r = SimulationEngine(df, cfg).run(kind);
      table.addRow({TextTable::num(rate, 0), r.scheduler_name,
                    TextTable::num(r.average_omega), constraintMark(r),
                    TextTable::num(r.average_gamma),
                    TextTable::num(r.total_cost, 2),
                    TextTable::num(r.theta)});
      csv.push_back({rate,
                     kind == SchedulerKind::LocalAdaptive ? 0.0 : 1.0,
                     r.average_omega, r.constraint_met ? 1.0 : 0.0,
                     r.average_gamma, r.total_cost, r.theta});
    }
  }
  printTableAndCsv(
      table, {"rate", "policy", "omega", "met", "gamma", "cost", "theta"},
      csv);

  std::cout << "Paper claim: with both variability sources active, the "
               "continuous heuristics\nstill satisfy the constraint; "
               "global's informed (downstream-aware) decisions\navoid "
               "reversal penalties and win on Theta at higher rates.\n";
  return 0;
}
