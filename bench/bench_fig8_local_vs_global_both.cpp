// Fig. 8 reproduction: local vs global adaptive heuristics when *both*
// the input data rate and the cloud infrastructure vary — the public-cloud
// scenario the paper targets.
//
// Paper claim: the qualitative ordering of Fig. 7 carries over — both
// heuristics keep the throughput constraint; global leads on Theta at
// high rates where wrong local actions (e.g., a needlessly acquired VM
// billed for a full hour) are the most expensive.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 8",
              "local vs global adaptive, data + infrastructure variability");

  runLocalVsGlobalSweep(makePaperDataflow(), ProfileKind::RandomWalk,
                        /*infra_variability=*/true);

  std::cout << "Paper claim: with both variability sources active, the "
               "continuous heuristics\nstill satisfy the constraint; "
               "global's informed (downstream-aware) decisions\navoid "
               "reversal penalties and win on Theta at higher rates.\n";
  return 0;
}
