// Fig. 2 reproduction: "Variations in VM CPU performance in a private IaaS
// cloud" — the observed-to-rated CPU coefficient of several VMs over a
// four-day window, plus each VM's relative deviation from its mean.
//
// The paper plots FutureGrid measurements; we print the synthetic
// FutureGrid-like traces the evaluation replays (see DESIGN.md for the
// substitution rationale). Output: per-VM summary statistics and an
// hourly-downsampled series.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 2", "VM CPU performance variability over 4 days");

  constexpr int kVms = 3;
  constexpr SimTime kDuration = 4.0 * 24.0 * kSecondsPerHour;
  constexpr SimTime kProbe = 300.0;  // 5-minute monitoring probes

  Rng rng(2013);
  const auto pool = generateTracePool(cpuTraceParams(), kVms, kDuration,
                                      kProbe, rng);

  TextTable summary({"vm", "mean", "stddev", "cv%", "min", "max",
                     "max-rel-dev%"});
  std::vector<std::vector<double>> csv_rows;
  for (int v = 0; v < kVms; ++v) {
    const auto s = pool[static_cast<std::size_t>(v)].stats();
    const double max_rel_dev =
        std::max(s.max() - s.mean(), s.mean() - s.min()) / s.mean() * 100.0;
    summary.addRow({"vm-" + std::to_string(v), TextTable::num(s.mean()),
                    TextTable::num(s.stddev()),
                    TextTable::num(s.cv() * 100.0, 1),
                    TextTable::num(s.min()), TextTable::num(s.max()),
                    TextTable::num(max_rel_dev, 1)});
    csv_rows.push_back({static_cast<double>(v), s.mean(), s.stddev(),
                        s.cv() * 100.0, s.min(), s.max(), max_rel_dev});
  }
  printTableAndCsv(summary,
                   {"vm", "mean", "stddev", "cv_pct", "min", "max",
                    "max_rel_dev_pct"},
                   csv_rows);

  // Hourly series for plotting (one row per hour, one column per VM).
  std::cout << "Hourly CPU coefficient series (4 days):\n";
  std::cout << "CSV2:hour,vm0,vm1,vm2\n";
  for (int h = 0; h < 4 * 24; ++h) {
    const SimTime t = h * kSecondsPerHour;
    std::cout << "CSV2:" << h;
    for (int v = 0; v < kVms; ++v) {
      std::cout << ',' << pool[static_cast<std::size_t>(v)].at(t);
    }
    std::cout << '\n';
  }

  // Temporal structure: the degradations are *sustained*, not white noise
  // — the property that makes runtime adaptation worthwhile.
  std::cout << "\nTemporal structure (per VM):\n";
  TextTable structure({"vm", "lag-1 autocorr", "decorrelation(min)",
                       "frac < 0.9", "frac < 0.7"});
  for (int v = 0; v < kVms; ++v) {
    const auto& t = pool[static_cast<std::size_t>(v)];
    structure.addRow(
        {"vm-" + std::to_string(v),
         TextTable::num(autocorrelation(t, 1)),
         TextTable::num(static_cast<double>(decorrelationLag(t)) * kProbe /
                            60.0,
                        0),
         TextTable::num(fractionBelow(t, 0.9)),
         TextTable::num(fractionBelow(t, 0.7))});
  }
  std::cout << structure.render();

  std::cout << "\nPaper claim: VM CPU performance fluctuates around the "
               "rated mean with high\nvariations (multi-tenancy, placement, "
               "commodity hardware). The synthetic\ntraces show the same "
               "character: several-percent CV with >10% worst-case\n"
               "relative deviations.\n";
  return 0;
}
