// Fig. 3 reproduction: "Variations in network performance between a pair
// of VMs in a private IaaS cloud" — inter-VM latency and available
// bandwidth over the same four-day window.
//
// We report the replayed latency (ms, base 1 ms x coefficient) and
// bandwidth (Mbps, rated 100 Mbps x coefficient) between one VM pair.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 3",
              "network latency & bandwidth variability between a VM pair");

  constexpr SimTime kDuration = 4.0 * 24.0 * kSecondsPerHour;
  constexpr SimTime kProbe = 300.0;

  Rng rng(1312);
  const auto lat =
      generateTrace(latencyTraceParams(), kDuration, kProbe, rng);
  const auto bw =
      generateTrace(bandwidthTraceParams(), kDuration, kProbe, rng);

  const auto ls = lat.stats();
  const auto bs = bw.stats();
  TextTable summary({"metric", "mean", "stddev", "cv%", "min", "max"});
  summary.addRow({"latency (ms)",
                  TextTable::num(ls.mean() * MonitoringService::kBaseLatencyMs),
                  TextTable::num(ls.stddev()),
                  TextTable::num(ls.cv() * 100.0, 1),
                  TextTable::num(ls.min()), TextTable::num(ls.max())});
  summary.addRow({"bandwidth (Mbps)", TextTable::num(bs.mean() * 100.0, 1),
                  TextTable::num(bs.stddev() * 100.0, 1),
                  TextTable::num(bs.cv() * 100.0, 1),
                  TextTable::num(bs.min() * 100.0, 1),
                  TextTable::num(bs.max() * 100.0, 1)});
  printTableAndCsv(
      summary, {"metric", "mean", "stddev", "cv_pct", "min", "max"},
      {{0.0, ls.mean(), ls.stddev(), ls.cv() * 100.0, ls.min(), ls.max()},
       {1.0, bs.mean() * 100.0, bs.stddev() * 100.0, bs.cv() * 100.0,
        bs.min() * 100.0, bs.max() * 100.0}});

  std::cout << "Hourly series (latency_ms, bandwidth_mbps):\n";
  std::cout << "CSV2:hour,latency_ms,bandwidth_mbps\n";
  for (int h = 0; h < 4 * 24; ++h) {
    const SimTime t = h * kSecondsPerHour;
    std::cout << "CSV2:" << h << ','
              << lat.at(t) * MonitoringService::kBaseLatencyMs << ','
              << bw.at(t) * 100.0 << '\n';
  }

  std::cout << "\nPaper claim: networking between VM pairs shows latency "
               "spikes and bandwidth\ndips over time (data-center traffic, "
               "collocation). The replayed traces show\nlatency excursions "
               "of several x the base and bandwidth dipping well below\n"
               "the rated 100 Mbps.\n";
  return 0;
}
