// Fig. 4 reproduction: "Effect of infrastructure and/or data rate
// variability on relative throughput, for static deployments".
//
// Scenario axis: {no variability, data-rate variability only,
// infrastructure variability only, both}; policy axis: {static brute-force
// optimal, local static, global static}; fixed 5 msg/s mean rate,
// Omega-hat = 0.7. The paper's claim: with no variability all statics meet
// the constraint (brute-force best); any variability drags all of them
// below it.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 4",
              "effect of variability on Omega for static deployments "
              "(5 msg/s)");

  const Dataflow df = makePaperDataflow();
  struct Scenario {
    std::string name;
    bool data_var;
    bool infra_var;
  };
  const std::vector<Scenario> scenarios = {
      {"none", false, false},
      {"data-only", true, false},
      {"infra-only", false, true},
      {"both", true, true},
  };
  const std::vector<SchedulerKind> kinds = {
      SchedulerKind::BruteForceStatic,
      SchedulerKind::LocalStatic,
      SchedulerKind::GlobalStatic,
  };

  TextTable table({"scenario", "policy", "omega", "met(0.7)", "theta"});
  std::vector<std::vector<double>> csv;
  for (const auto& sc : scenarios) {
    for (const auto kind : kinds) {
      ExperimentConfig cfg;
      cfg.horizon_s = 2.0 * kSecondsPerHour;
      cfg.workload.mean_rate = 5.0;
      cfg.workload.profile =
          sc.data_var ? ProfileKind::PeriodicWave : ProfileKind::Constant;
      cfg.workload.infra_variability = sc.infra_var;
      cfg.seed = 2013;
      const auto r = SimulationEngine(df, cfg).run(kind);
      table.addRow({sc.name, r.scheduler_name,
                    TextTable::num(r.average_omega),
                    constraintMark(r), TextTable::num(r.theta)});
      csv.push_back({static_cast<double>(&sc - scenarios.data()),
                     static_cast<double>(static_cast<int>(kind)),
                     r.average_omega, r.constraint_met ? 1.0 : 0.0,
                     r.theta});
    }
  }
  printTableAndCsv(table,
                   {"scenario", "policy", "omega", "met", "theta"}, csv);

  std::cout << "Paper claim: with no variability every static policy "
               "satisfies Omega >= 0.7\n(brute-force best); introducing "
               "data and/or infrastructure variability drops\nstatic "
               "deployments' Omega, often below the constraint — proving "
               "the need for\ncontinuous re-deployment.\n";
  return 0;
}
