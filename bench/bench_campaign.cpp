// Campaign-runner perf baseline: serial vs parallel wall-clock for the
// headline evaluation grid, plus the fluid simulator's per-interval cost
// (the quantity the interval-cache optimization targets).
//
//   bench_campaign [output.json] [trace-overhead.json] [tenants] [jobs]
//   (defaults: BENCH_campaign.json, BENCH_trace_overhead.json, 10, 10)
//
// The grid is 4 policies x 4 seeds at 10 msg/s wave + infra variability
// over 2 h — 16 independent engine runs. Speedup scales with physical
// cores; on a single-core host serial and parallel wall-clocks coincide
// (the JSON records the host's concurrency so baselines are comparable).
//
// A second section times the same headline run untraced (null sink —
// the hot path the observability layer must not touch), with a ring
// buffer, and streaming JSONL, and records the overhead of each in
// BENCH_trace_overhead.json (the null-sink overhead is the acceptance
// budget: < 2%).
//
// A third section measures the campaign-service substrate: a tenants x
// jobs spec grid (default 10 x 10; pass e.g. 100 100 for the full
// sweep) where every job needs a catalog, FutureGrid trace pools and a
// planner closure. Per-job cold arena builds are timed against shared
// substrate lookups, and the whole grid is run twice on one substrate
// (cold, then warm) — the amortization the multi-tenant redesign buys.
//
// A fourth section is the 10k-job scaling demo: a 1k/4k/10k seed-sweep
// ladder of short fluid jobs on one substrate (every job sharing the
// immutable SoA fluid layout), asserting the layout is built exactly
// once and recording how flat per-job cost stays as the grid grows.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "dds/common/json.hpp"
#include "dds/common/thread_pool.hpp"
#include "dds/exp/substrate.hpp"
#include "dds/obs/jsonl_sink.hpp"

int main(int argc, char** argv) {
  using namespace dds;
  using namespace dds::bench;
  using clock = std::chrono::steady_clock;

  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_campaign.json");
  const std::string overhead_path =
      argc > 2 ? argv[2] : std::string("BENCH_trace_overhead.json");
  const std::size_t sweep_tenants =
      argc > 3 ? static_cast<std::size_t>(std::stoul(argv[3])) : 10;
  const std::size_t sweep_jobs =
      argc > 4 ? static_cast<std::size_t>(std::stoul(argv[4])) : 10;

  printHeader("Campaign",
              "parallel campaign runner: serial vs all-cores wall-clock");

  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 2.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.seed = 2013;

  Campaign campaign;
  const std::vector<SchedulerKind> kinds = {
      SchedulerKind::GlobalAdaptive, SchedulerKind::LocalAdaptive,
      SchedulerKind::GlobalAdaptiveNoDyn, SchedulerKind::GlobalStatic};
  for (const auto kind : kinds) {
    campaign.addSeedSweep(df, cfg, kind, 4);
  }

  const CampaignResult serial = runCampaign(campaign, {.jobs = 1});
  const CampaignResult parallel = runCampaign(campaign, {.jobs = 0});
  serial.throwIfAnyFailed();
  parallel.throwIfAnyFailed();

  // Results must agree bit-for-bit; abort the baseline if they ever don't.
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    DDS_REQUIRE(serial.outcomes[i].result.average_omega ==
                    parallel.outcomes[i].result.average_omega,
                "parallel campaign diverged from serial");
  }

  // Per-interval simulator cost: one timed engine run over the headline
  // config, divided by its interval count.
  const auto t0 = clock::now();
  const auto one = SimulationEngine(df, cfg).run(kinds[0]);
  const double one_run_s =
      std::chrono::duration<double>(clock::now() - t0).count();
  const auto intervals = one.run.intervals().size();
  const double per_interval_us =
      intervals == 0 ? 0.0 : one_run_s * 1.0e6 /
                                 static_cast<double>(intervals);

  const double speedup =
      parallel.wall_s > 0.0 ? serial.wall_s / parallel.wall_s : 1.0;
  TextTable table({"metric", "value"});
  table.addRow({"jobs (serial)", "1"});
  table.addRow({"jobs (parallel)", std::to_string(parallel.jobs_used)});
  table.addRow({"grid size", std::to_string(campaign.size())});
  table.addRow({"serial wall (s)", TextTable::num(serial.wall_s, 3)});
  table.addRow({"parallel wall (s)", TextTable::num(parallel.wall_s, 3)});
  table.addRow({"speedup", TextTable::num(speedup, 2)});
  table.addRow({"sim cost / interval (us)",
                TextTable::num(per_interval_us, 1)});
  std::cout << table.render() << '\n';

  JsonWriter w;
  w.beginObject();
  w.key("name").value("campaign-runner-baseline");
  w.key("grid").beginObject();
  w.key("policies").value(kinds.size());
  w.key("seeds_per_policy").value(std::size_t{4});
  w.key("jobs_total").value(campaign.size());
  w.key("horizon_s").value(cfg.horizon_s);
  w.key("mean_rate").value(cfg.workload.mean_rate);
  w.endObject();
  w.key("host_hardware_concurrency")
      .value(ThreadPool::hardwareConcurrency());
  w.key("serial_wall_s").value(serial.wall_s);
  w.key("parallel_wall_s").value(parallel.wall_s);
  w.key("parallel_jobs_used").value(parallel.jobs_used);
  w.key("speedup").value(speedup);
  w.key("intervals_per_run").value(intervals);
  w.key("sim_cost_per_interval_us").value(per_interval_us);
  w.key("results_bit_identical").value(true);
  w.endObject();
  {
    // Scoped: the file is re-written (with the tenant sweep appended)
    // below, and a still-open handle would flush stale bytes over it.
    std::ofstream out(out_path);
    DDS_REQUIRE(out.good(), "cannot open bench output file");
    out << w.str();
  }
  std::cout << "wrote " << out_path << '\n';

  // --- Trace overhead: untraced vs ring buffer vs streaming JSONL. ---
  printHeader("Trace overhead",
              "null sink vs ring buffer vs streaming JSONL, same run");

  const SimulationEngine engine(df, cfg);
  const int reps = 5;
  // Best-of-reps: robust against scheduler noise, and the right statistic
  // for "how cheap can this path be".
  const auto bestOf = [&](auto&& body) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto start = clock::now();
      body();
      best = std::min(
          best, std::chrono::duration<double>(clock::now() - start).count());
    }
    return best;
  };

  std::uint64_t jsonl_events = 0;
  std::size_t jsonl_bytes = 0;
  const double untraced_s = bestOf([&] { (void)engine.run(kinds[0]); });
  const double ring_s = bestOf([&] {
    obs::RingBufferSink ring(4096);
    (void)engine.run(kinds[0], &ring);
  });
  const double jsonl_s = bestOf([&] {
    std::ostringstream sink_out;
    obs::JsonlTraceSink sink(sink_out);
    (void)engine.run(kinds[0], &sink);
    jsonl_events = sink.eventCount();
    jsonl_bytes = sink_out.str().size();
  });

  const auto pct = [&](double traced) {
    return untraced_s > 0.0 ? (traced - untraced_s) / untraced_s * 100.0
                            : 0.0;
  };
  TextTable overhead({"sink", "best wall (s)", "overhead (%)"});
  overhead.addRow({"none (null tracer)", TextTable::num(untraced_s, 4), "-"});
  overhead.addRow({"ring buffer (4096)", TextTable::num(ring_s, 4),
                   TextTable::num(pct(ring_s), 1)});
  overhead.addRow({"jsonl stream", TextTable::num(jsonl_s, 4),
                   TextTable::num(pct(jsonl_s), 1)});
  std::cout << overhead.render() << '\n'
            << "trace: " << jsonl_events << " events, " << jsonl_bytes
            << " bytes JSONL\n";

  JsonWriter ow;
  ow.beginObject();
  ow.key("name").value("trace-overhead-baseline");
  ow.key("reps_best_of").value(std::int64_t{reps});
  ow.key("horizon_s").value(cfg.horizon_s);
  ow.key("intervals_per_run").value(intervals);
  ow.key("untraced_wall_s").value(untraced_s);
  ow.key("ring_wall_s").value(ring_s);
  ow.key("ring_overhead_pct").value(pct(ring_s));
  ow.key("jsonl_wall_s").value(jsonl_s);
  ow.key("jsonl_overhead_pct").value(pct(jsonl_s));
  ow.key("jsonl_events").value(jsonl_events);
  ow.key("jsonl_bytes").value(jsonl_bytes);
  ow.endObject();
  std::ofstream oout(overhead_path);
  DDS_REQUIRE(oout.good(), "cannot open trace-overhead output file");
  oout << ow.str();
  std::cout << "wrote " << overhead_path << '\n';

  // --- Substrate amortization: tenants x jobs on shared arenas. ---
  printHeader("Campaign service",
              "tenants x jobs spec grid on a shared substrate");

  // Rates vary by tenant (modulo 8, so large sweeps also exercise
  // cross-tenant config interning), one seed per job — the substrate
  // should intern one catalog, one planner closure, and one trace pool
  // set per seed.
  Campaign grid;
  for (std::size_t t = 0; t < sweep_tenants; ++t) {
    for (std::size_t j = 0; j < sweep_jobs; ++j) {
      const std::string spec_line =
          "{\"v\": 1, \"tenant\": \"tenant-" + std::to_string(t) +
          "\", \"scheduler\": \"global\", \"config\": {\"seed\": " +
          std::to_string(j) + ", \"horizon_h\": 0.1, " +
          "\"workload.mean_rate\": " + std::to_string(4 + t % 8) +
          ", \"workload.profile\": \"wave\", " +
          "\"workload.infra_variability\": true}}";
      grid.addSpec(parseJobSpec(spec_line));
    }
  }
  const std::size_t grid_jobs = grid.size();

  // Per-job setup, cold: every job builds its own arenas from scratch
  // (what the engine did per run before the substrate existed).
  const auto cold0 = clock::now();
  for (std::size_t i = 0; i < grid_jobs; ++i) {
    Substrate fresh;
    const ExperimentJob job = grid.job(i);
    (void)fresh.arenasFor(*job.dataflow, job.config);
  }
  const double cold_s =
      std::chrono::duration<double>(clock::now() - cold0).count();

  // Per-job setup, shared: the same lookups against one substrate.
  Substrate shared;
  const auto warm0 = clock::now();
  for (std::size_t i = 0; i < grid_jobs; ++i) {
    const ExperimentJob job = grid.job(i);
    (void)shared.arenasFor(*job.dataflow, job.config);
  }
  const double shared_s =
      std::chrono::duration<double>(clock::now() - warm0).count();
  const Substrate::Stats sstats = shared.stats();

  // The full grid, twice on one substrate: the second pass runs with
  // every arena warm (steady-state service behaviour).
  const auto run0 = clock::now();
  const CampaignResult grid_cold = runCampaign(grid, {.jobs = 0});
  const double grid_cold_s =
      std::chrono::duration<double>(clock::now() - run0).count();
  grid_cold.throwIfAnyFailed();
  const auto run1 = clock::now();
  const CampaignResult grid_warm = runCampaign(grid, {.jobs = 0});
  const double grid_warm_s =
      std::chrono::duration<double>(clock::now() - run1).count();
  grid_warm.throwIfAnyFailed();
  DDS_REQUIRE(campaignJsonl(grid_cold) == campaignJsonl(grid_warm),
              "warm substrate changed campaign results");

  const double per_job_cold_ms = cold_s * 1.0e3 / grid_jobs;
  const double per_job_shared_us = shared_s * 1.0e6 / grid_jobs;
  TextTable sweep({"metric", "value"});
  sweep.addRow({"tenants", std::to_string(sweep_tenants)});
  sweep.addRow({"jobs/tenant", std::to_string(sweep_jobs)});
  sweep.addRow({"grid jobs", std::to_string(grid_jobs)});
  sweep.addRow({"distinct configs",
                std::to_string(grid.distinctConfigCount())});
  sweep.addRow({"arena setup, cold (ms/job)",
                TextTable::num(per_job_cold_ms, 3)});
  sweep.addRow({"arena setup, shared (us/job)",
                TextTable::num(per_job_shared_us, 3)});
  sweep.addRow({"setup amortization",
                TextTable::num(shared_s > 0.0 ? cold_s / shared_s : 0.0, 1) +
                    "x"});
  sweep.addRow({"pool builds (shared)", std::to_string(sstats.pool_builds)});
  sweep.addRow({"pool hits (shared)", std::to_string(sstats.pool_hits)});
  sweep.addRow({"grid wall, cold substrate (s)",
                TextTable::num(grid_cold_s, 3)});
  sweep.addRow({"grid wall, warm substrate (s)",
                TextTable::num(grid_warm_s, 3)});
  std::cout << sweep.render() << '\n';

  // --- Scale ladder: the 10k-job campaign demo. ---
  printHeader("Campaign scale",
              "10k-job seed sweep on one substrate: per-job cost must "
              "stay flat as the grid grows");

  // Short-horizon fluid jobs sharing every immutable arena, including
  // the SoA fluid layout (one build for the whole ladder). Ideal infra:
  // no per-seed trace pools, so the ladder isolates runner + substrate
  // + kernel scaling rather than pool generation.
  ExperimentConfig scale_cfg;
  scale_cfg.horizon_s = 0.1 * kSecondsPerHour;
  scale_cfg.workload.mean_rate = 10.0;
  scale_cfg.workload.profile = ProfileKind::PeriodicWave;
  scale_cfg.seed = 1;

  struct ScaleRung {
    std::size_t jobs = 0;
    double wall_s = 0.0;
    double per_job_ms = 0.0;
    std::size_t distinct_configs = 0;
  };
  std::vector<ScaleRung> ladder;
  auto scale_substrate = std::make_shared<Substrate>();
  for (const std::size_t n : {std::size_t{1000}, std::size_t{4000},
                              std::size_t{10000}}) {
    Campaign scale;
    scale.setSubstrate(scale_substrate);
    scale.addSeedSweep(df, scale_cfg, SchedulerKind::GlobalAdaptive, n);
    const auto s0 = clock::now();
    const CampaignResult res = runCampaign(scale, {.jobs = 0});
    const double wall =
        std::chrono::duration<double>(clock::now() - s0).count();
    res.throwIfAnyFailed();
    ladder.push_back({n, wall, wall * 1.0e3 / static_cast<double>(n),
                      scale.distinctConfigCount()});
  }
  const Substrate::Stats scale_stats = scale_substrate->stats();
  DDS_REQUIRE(scale_stats.fluid_layout_builds == 1,
              "scale ladder rebuilt the shared fluid layout");
  // Near-linear scaling: per-job cost at 10k within 25% of the 1k rung
  // (substrate setup amortized, no superlinear term in the runner).
  const double scale_ratio =
      ladder.front().per_job_ms > 0.0
          ? ladder.back().per_job_ms / ladder.front().per_job_ms
          : 0.0;

  TextTable scale_table({"jobs", "wall (s)", "ms/job", "configs"});
  for (const ScaleRung& r : ladder) {
    scale_table.addRow({std::to_string(r.jobs), TextTable::num(r.wall_s, 3),
                        TextTable::num(r.per_job_ms, 3),
                        std::to_string(r.distinct_configs)});
  }
  std::cout << scale_table.render() << '\n'
            << "per-job cost ratio (10k vs 1k rung): "
            << TextTable::num(scale_ratio, 3) << " (1.0 = perfectly flat)\n"
            << "shared fluid layout builds: "
            << scale_stats.fluid_layout_builds << ", hits: "
            << scale_stats.fluid_layout_hits << '\n';

  // Re-write the campaign baseline with the sweep section appended.
  JsonWriter sw;
  sw.beginObject();
  sw.key("name").value("campaign-runner-baseline");
  sw.key("grid").beginObject();
  sw.key("policies").value(kinds.size());
  sw.key("seeds_per_policy").value(std::size_t{4});
  sw.key("jobs_total").value(campaign.size());
  sw.key("horizon_s").value(cfg.horizon_s);
  sw.key("mean_rate").value(cfg.workload.mean_rate);
  sw.endObject();
  sw.key("host_hardware_concurrency")
      .value(ThreadPool::hardwareConcurrency());
  sw.key("serial_wall_s").value(serial.wall_s);
  sw.key("parallel_wall_s").value(parallel.wall_s);
  sw.key("parallel_jobs_used").value(parallel.jobs_used);
  sw.key("speedup").value(speedup);
  sw.key("intervals_per_run").value(intervals);
  sw.key("sim_cost_per_interval_us").value(per_interval_us);
  sw.key("results_bit_identical").value(true);
  sw.key("tenant_sweep").beginObject();
  sw.key("tenants").value(sweep_tenants);
  sw.key("jobs_per_tenant").value(sweep_jobs);
  sw.key("grid_jobs").value(grid_jobs);
  sw.key("distinct_configs").value(grid.distinctConfigCount());
  sw.key("arena_setup_cold_ms_per_job").value(per_job_cold_ms);
  sw.key("arena_setup_shared_us_per_job").value(per_job_shared_us);
  sw.key("setup_amortization_x")
      .value(shared_s > 0.0 ? cold_s / shared_s : 0.0);
  sw.key("catalog_builds").value(sstats.catalog_builds);
  sw.key("plan_builds").value(sstats.plan_builds);
  sw.key("pool_builds").value(sstats.pool_builds);
  sw.key("pool_hits").value(sstats.pool_hits);
  sw.key("grid_wall_cold_s").value(grid_cold_s);
  sw.key("grid_wall_warm_s").value(grid_warm_s);
  sw.key("warm_results_bit_identical").value(true);
  sw.endObject();
  sw.key("scale_ladder").beginObject();
  sw.key("scheduler").value("global-adaptive");
  sw.key("horizon_s").value(scale_cfg.horizon_s);
  sw.key("infra_variability").value(false);
  sw.key("rungs").beginArray();
  for (const ScaleRung& r : ladder) {
    sw.beginObject();
    sw.key("jobs").value(r.jobs);
    sw.key("wall_s").value(r.wall_s);
    sw.key("ms_per_job").value(r.per_job_ms);
    sw.key("distinct_configs").value(r.distinct_configs);
    sw.endObject();
  }
  sw.endArray();
  sw.key("per_job_ratio_10k_vs_1k").value(scale_ratio);
  sw.key("fluid_layout_builds").value(scale_stats.fluid_layout_builds);
  sw.key("fluid_layout_hits").value(scale_stats.fluid_layout_hits);
  sw.endObject();
  sw.endObject();
  std::ofstream sout(out_path);
  DDS_REQUIRE(sout.good(), "cannot re-open bench output file");
  sout << sw.str();
  std::cout << "wrote " << out_path << " (with tenant sweep)" << '\n';
  return 0;
}
