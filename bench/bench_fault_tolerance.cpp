// Fault-tolerance extension bench (paper §9 future work): Omega, cost and
// lost messages versus VM mean-time-between-failures, comparing the
// adaptive global heuristic (which re-allocates around crashes) against
// the static deployment (which bleeds capacity it never replaces).
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Faults",
              "recovery under VM crashes: adaptive vs static (10 msg/s, "
              "4 h)");

  const Dataflow df = makePaperDataflow();
  TextTable table({"MTBF(h)", "policy", "failures", "omega", "met",
                   "lost-msgs", "cost$"});
  std::vector<std::vector<double>> csv;
  for (const double mtbf : {0.0, 8.0, 4.0, 2.0, 1.0}) {
    for (const auto kind :
         {SchedulerKind::GlobalAdaptive, SchedulerKind::GlobalStatic}) {
      ExperimentConfig cfg;
      cfg.horizon_s = 4.0 * kSecondsPerHour;
      cfg.mean_rate = 10.0;
      cfg.vm_mtbf_hours = mtbf;
      cfg.seed = 2013;
      const auto r = SimulationEngine(df, cfg).run(kind);
      table.addRow({mtbf == 0.0 ? "none" : TextTable::num(mtbf, 0),
                    r.scheduler_name, std::to_string(r.vm_failures),
                    TextTable::num(r.average_omega), constraintMark(r),
                    TextTable::num(r.messages_lost, 0),
                    TextTable::num(r.total_cost, 2)});
      csv.push_back({mtbf,
                     kind == SchedulerKind::GlobalAdaptive ? 1.0 : 0.0,
                     static_cast<double>(r.vm_failures), r.average_omega,
                     r.constraint_met ? 1.0 : 0.0, r.messages_lost,
                     r.total_cost});
    }
  }
  printTableAndCsv(table,
                   {"mtbf_h", "adaptive", "failures", "omega", "met",
                    "lost", "cost"},
                   csv);

  std::cout << "Reading: as crashes become frequent the static deployment's "
               "throughput\ncollapses (dead capacity is never replaced), "
               "while the adaptive heuristic\nre-allocates within an "
               "interval and holds the constraint until failures\noutpace "
               "recovery.\n";
  return 0;
}
