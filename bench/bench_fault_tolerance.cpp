// Fault-tolerance extension bench (paper §9 future work).
//
// Part 1 — the original crash sweep: Omega, cost and lost messages versus
// VM mean-time-between-failures, comparing the adaptive global heuristic
// (which re-allocates around crashes) against the static deployment
// (which bleeds capacity it never replaces).
//
// Part 2 — a combined fault-intensity sweep over the full fault plan
// (crashes + stragglers + acquisition failures + provisioning delays +
// network partitions), with the resilience layer enabled (straggler
// quarantine, acquisition retry/backoff, graceful degradation).  Reports
// the recovery metrics: MTTR, availability, violation episodes,
// quarantined stragglers and rejected acquisitions per policy.
#include "bench_util.hpp"

namespace {

using namespace dds;

/// One knob in [0, 1]: 0 = fault-free, 1 = the harshest mix we model.
ExperimentConfig faultMixConfig(double intensity) {
  ExperimentConfig cfg;
  cfg.horizon_s = 4.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.seed = 2013;
  if (intensity > 0.0) {
    cfg.faults.vm_mtbf_hours = 8.0 / intensity;
    cfg.faults.straggler_mtbf_hours = 4.0 / intensity;
    cfg.faults.straggler_factor = 0.3;
    cfg.faults.straggler_duration_s = 600.0;
    cfg.faults.acquisition_failure_prob = 0.3 * intensity;
    cfg.faults.provisioning_delay_s = 120.0 * intensity;
    cfg.faults.partition_mtbf_hours = 8.0 / intensity;
    cfg.faults.partition_duration_s = 120.0;
  }
  // Resilience layer on for every policy that adapts.
  cfg.resilience.quarantine_threshold = 0.5;
  cfg.resilience.quarantine_probes = 3;
  cfg.resilience.acquisition_max_retries = 3;
  cfg.resilience.acquisition_backoff_s = 60.0;
  cfg.resilience.graceful_degradation = true;
  return cfg;
}

}  // namespace

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Faults",
              "recovery under VM crashes: adaptive vs static (10 msg/s, "
              "4 h)");

  const Dataflow df = makePaperDataflow();
  const std::vector<double> mtbfs = {0.0, 8.0, 4.0, 2.0, 1.0};
  const std::vector<SchedulerKind> crash_kinds = {
      SchedulerKind::GlobalAdaptive, SchedulerKind::GlobalStatic};
  std::vector<ExperimentConfig> crash_rows;
  for (const double mtbf : mtbfs) {
    ExperimentConfig cfg;
    cfg.horizon_s = 4.0 * kSecondsPerHour;
    cfg.workload.mean_rate = 10.0;
    cfg.faults.vm_mtbf_hours = mtbf;
    cfg.seed = 2013;
    crash_rows.push_back(cfg);
  }
  const auto crash_outcomes = runGrid(df, crash_rows, crash_kinds);

  TextTable table({"MTBF(h)", "policy", "failures", "omega", "met",
                   "lost-msgs", "cost$"});
  std::vector<std::vector<double>> csv;
  for (std::size_t i = 0; i < mtbfs.size(); ++i) {
    const double mtbf = mtbfs[i];
    for (std::size_t k = 0; k < crash_kinds.size(); ++k) {
      const auto& r = crash_outcomes[i * crash_kinds.size() + k].result;
      table.addRow({mtbf == 0.0 ? "none" : TextTable::num(mtbf, 0),
                    r.scheduler_name, std::to_string(r.vm_failures),
                    TextTable::num(r.average_omega), constraintMark(r),
                    TextTable::num(r.messages_lost, 0),
                    TextTable::num(r.total_cost, 2)});
      csv.push_back({mtbf, k == 0 ? 1.0 : 0.0,
                     static_cast<double>(r.vm_failures), r.average_omega,
                     r.constraint_met ? 1.0 : 0.0, r.messages_lost,
                     r.total_cost});
    }
  }
  printTableAndCsv(table,
                   {"mtbf_h", "adaptive", "failures", "omega", "met",
                    "lost", "cost"},
                   csv);

  std::cout << "Reading: as crashes become frequent the static deployment's "
               "throughput\ncollapses (dead capacity is never replaced), "
               "while the adaptive heuristic\nre-allocates within an "
               "interval and holds the constraint until failures\noutpace "
               "recovery.\n\n";

  printHeader("Faults-2",
              "full fault plan sweep: crashes + stragglers + acquisition "
              "failures + partitions, resilience layer on");

  const std::vector<double> intensities = {0.0, 0.25, 0.5, 1.0};
  const std::vector<SchedulerKind> mix_kinds = {
      SchedulerKind::GlobalAdaptive, SchedulerKind::LocalAdaptive,
      SchedulerKind::GlobalStatic};
  std::vector<ExperimentConfig> mix_rows;
  for (const double intensity : intensities) {
    mix_rows.push_back(faultMixConfig(intensity));
  }
  const auto mix_outcomes = runGrid(df, mix_rows, mix_kinds);

  TextTable table2({"intensity", "policy", "omega", "avail", "episodes",
                    "mttr(s)", "quarant", "rejects", "degr", "cost$"});
  std::vector<std::vector<double>> csv2;
  for (std::size_t i = 0; i < intensities.size(); ++i) {
    const double intensity = intensities[i];
    for (std::size_t k = 0; k < mix_kinds.size(); ++k) {
      const auto kind = mix_kinds[k];
      const auto& r = mix_outcomes[i * mix_kinds.size() + k].result;
      table2.addRow(
          {TextTable::num(intensity, 2), r.scheduler_name,
           TextTable::num(r.average_omega),
           TextTable::num(r.recovery.availability),
           std::to_string(r.recovery.violation_episodes),
           TextTable::num(r.recovery.mttr_s, 0),
           std::to_string(r.resilience.stragglers_quarantined),
           std::to_string(r.acquisition_rejections),
           std::to_string(r.resilience.graceful_degradations),
           TextTable::num(r.total_cost, 2)});
      csv2.push_back(
          {intensity,
           kind == SchedulerKind::GlobalStatic
               ? 0.0
               : (kind == SchedulerKind::GlobalAdaptive ? 1.0 : 2.0),
           r.average_omega, r.recovery.availability,
           static_cast<double>(r.recovery.violation_episodes),
           r.recovery.mttr_s,
           static_cast<double>(r.resilience.stragglers_quarantined),
           static_cast<double>(r.acquisition_rejections),
           static_cast<double>(r.resilience.graceful_degradations),
           r.total_cost});
    }
  }
  printTableAndCsv(table2,
                   {"intensity", "policy", "omega", "availability",
                    "episodes", "mttr_s", "quarantined", "rejections",
                    "degradations", "cost"},
                   csv2);

  std::cout << "Reading: with the whole fault plan active the adaptive "
               "policies keep\navailability high by quarantining "
               "stragglers, retrying rejected\nacquisitions against "
               "cheaper classes and degrading gracefully while\ncapacity "
               "is on order; the static deployment accumulates "
               "unrecovered\nviolation episodes instead.\n";
  return 0;
}
