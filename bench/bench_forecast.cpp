// Predictive-scheduling sweep: reactive vs forecast-driven policies
// under real provisioning delays.
//
//   bench_forecast [output.json]   (default: BENCH_forecast.json)
//
// A reactive policy only buys capacity after the rate has already risen,
// so with a 120 s (+15 s/core) provisioning delay every wave crest is
// served late. This sweep crosses the workload {wave, spike} with the
// forecast model {naive, ewma, holt-winters} and the lookahead horizon
// {3, 5, 10} intervals, and runs the reactive global policy against its
// predictive variant on each cell, reporting
// Theta, peak VMs, SLO-violation seconds and cost, plus the model's
// one-step MAPE. The JSON lands in BENCH_forecast.json as the committed
// baseline.
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "dds/common/json.hpp"

namespace {

using namespace dds;

ExperimentConfig forecastConfig(ProfileKind profile, ForecastModel model,
                                int horizon_intervals) {
  ExperimentConfig cfg;
  cfg.horizon_s = 1.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = profile;
  cfg.seed = 2013;
  cfg.elasticity.provisioning_delay_s = 120.0;
  cfg.elasticity.provisioning_delay_per_core_s = 15.0;
  cfg.forecast.model = model;
  cfg.forecast.horizon_intervals = horizon_intervals;
  cfg.forecast.hw_season_intervals = 30;  // the wave period, in intervals
  return cfg;
}

struct Knob {
  ProfileKind profile;
  ForecastModel model;
  int horizon;
};

double metricValue(const ExperimentResult& r, const std::string& name) {
  for (const auto& m : r.metrics) {
    if (m.name == name) return m.value;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  using namespace dds::bench;

  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_forecast.json");

  printHeader("Forecast",
              "reactive vs predictive under a 120 s (+15 s/core) "
              "provisioning delay (10 msg/s, 1 h)");

  const Dataflow df = makePaperDataflow();
  const std::vector<ProfileKind> profiles = {ProfileKind::PeriodicWave,
                                             ProfileKind::Spike};
  const std::vector<ForecastModel> models = {ForecastModel::Naive,
                                             ForecastModel::Ewma,
                                             ForecastModel::HoltWinters};
  const std::vector<int> horizons = {3, 5, 10};
  const std::vector<SchedulerKind> kinds = {SchedulerKind::GlobalAdaptive,
                                            SchedulerKind::GlobalPredictive};

  std::vector<ExperimentConfig> rows;
  std::vector<Knob> knobs;
  for (const ProfileKind profile : profiles) {
    for (const ForecastModel model : models) {
      for (const int horizon : horizons) {
        rows.push_back(forecastConfig(profile, model, horizon));
        knobs.push_back({profile, model, horizon});
      }
    }
  }
  const auto outcomes = runGrid(df, rows, kinds);

  TextTable table({"profile", "model", "H", "policy", "omega", "met",
                   "theta", "peakVM", "preacq", "mape", "slo-viol(s)",
                   "cost$"});
  JsonWriter w;
  w.beginObject();
  w.key("name").value("forecast-predictive-sweep");
  w.key("horizon_s").value(rows.front().horizon_s);
  w.key("mean_rate").value(rows.front().workload.mean_rate);
  w.key("provisioning_delay_s")
      .value(rows.front().elasticity.provisioning_delay_s);
  w.key("provisioning_delay_per_core_s")
      .value(rows.front().elasticity.provisioning_delay_per_core_s);
  w.key("rows").beginArray();
  for (std::size_t i = 0; i < knobs.size(); ++i) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto& o = outcomes[i * kinds.size() + k];
      const auto& r = o.result;
      const auto [profile, model, horizon] = knobs[i];
      const double mape = metricValue(r, "forecast.mape");
      const double preacquired = metricValue(r, "sched.preacquired_vms");
      table.addRow({std::string(profileName(profile)),
                    std::string(forecastModelName(model)),
                    std::to_string(horizon), r.scheduler_name,
                    TextTable::num(r.average_omega), constraintMark(r),
                    TextTable::num(r.theta), std::to_string(r.peak_vms),
                    TextTable::num(preacquired, 0), TextTable::num(mape),
                    TextTable::num(r.recovery.slo_violation_s, 0),
                    TextTable::num(r.total_cost, 2)});
      w.beginObject();
      w.key("profile").value(std::string(profileName(profile)));
      w.key("forecast_model").value(std::string(forecastModelName(model)));
      w.key("horizon_intervals").value(horizon);
      w.key("scheduler").value(r.scheduler_name);
      w.key("average_omega").value(r.average_omega);
      w.key("constraint_met").value(r.constraint_met);
      w.key("theta").value(r.theta);
      w.key("peak_vms").value(r.peak_vms);
      w.key("preacquired_vms").value(preacquired);
      w.key("forecast_mape").value(mape);
      w.key("slo_violation_s").value(r.recovery.slo_violation_s);
      w.key("total_cost").value(r.total_cost);
      w.endObject();
    }
  }
  w.endArray();
  w.endObject();
  std::cout << table.render() << '\n';

  std::ofstream out(out_path);
  DDS_REQUIRE(out.good(), "cannot open bench output file");
  out << w.str();
  std::cout << "wrote " << out_path << '\n';

  std::cout << "Reading: on the learnable wave the seasonal model's "
               "pre-acquisition has\ncapacity online before each crest, "
               "cutting SLO-violation seconds versus\nthe reactive policy "
               "at the price of a larger peak fleet. The one-off\nspike is "
               "unforecastable from history: the predictive policy still "
               "lifts\nOmega through lookahead planning, but its extra "
               "capacity arrives for a\npeak that never repeats, so it "
               "pays more without cutting violations —\nforecasting only "
               "helps when the workload has structure to learn.\n";
  return 0;
}
