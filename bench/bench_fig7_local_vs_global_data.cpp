// Fig. 7 reproduction: local vs global adaptive heuristics under
// *data-rate variability* with stable infrastructure ("a local cluster or
// an exclusive private cloud where the prospect of multi-tenancy is
// limited") — Theta and Omega across the rate sweep.
//
// Paper claim: both heuristics meet the Omega constraint within
// eps <= 0.05; the global heuristic's Theta is better above ~10 msg/s,
// the local one does better at the low end (global over-estimates the
// downstream effect of small rate changes and under-reacts).
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 7",
              "local vs global adaptive, data-rate variability only");

  runLocalVsGlobalSweep(makePaperDataflow(), ProfileKind::PeriodicWave,
                        /*infra_variability=*/false);

  std::cout << "Paper claim: under fluctuating input rates both adaptive "
               "heuristics satisfy\nOmega >= 0.7 - 0.05; global yields "
               "higher Theta for rates above ~10 msg/s,\nlocal is "
               "competitive or better below that.\n";
  return 0;
}
