// Fig. 7 reproduction: local vs global adaptive heuristics under
// *data-rate variability* with stable infrastructure ("a local cluster or
// an exclusive private cloud where the prospect of multi-tenancy is
// limited") — Theta and Omega across the rate sweep.
//
// Paper claim: both heuristics meet the Omega constraint within
// eps <= 0.05; the global heuristic's Theta is better above ~10 msg/s,
// the local one does better at the low end (global over-estimates the
// downstream effect of small rate changes and under-reacts).
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 7",
              "local vs global adaptive, data-rate variability only");

  const Dataflow df = makePaperDataflow();
  TextTable table({"rate", "policy", "omega", "met", "gamma", "cost$",
                   "theta"});
  std::vector<std::vector<double>> csv;
  for (const double rate : paperRates()) {
    for (const auto kind :
         {SchedulerKind::LocalAdaptive, SchedulerKind::GlobalAdaptive}) {
      ExperimentConfig cfg;
      cfg.horizon_s = 4.0 * kSecondsPerHour;
      cfg.mean_rate = rate;
      cfg.profile = ProfileKind::PeriodicWave;
      cfg.infra_variability = false;
      cfg.seed = 2013;
      const auto r = SimulationEngine(df, cfg).run(kind);
      table.addRow({TextTable::num(rate, 0), r.scheduler_name,
                    TextTable::num(r.average_omega), constraintMark(r),
                    TextTable::num(r.average_gamma),
                    TextTable::num(r.total_cost, 2),
                    TextTable::num(r.theta)});
      csv.push_back({rate,
                     kind == SchedulerKind::LocalAdaptive ? 0.0 : 1.0,
                     r.average_omega, r.constraint_met ? 1.0 : 0.0,
                     r.average_gamma, r.total_cost, r.theta});
    }
  }
  printTableAndCsv(
      table, {"rate", "policy", "omega", "met", "gamma", "cost", "theta"},
      csv);

  std::cout << "Paper claim: under fluctuating input rates both adaptive "
               "heuristics satisfy\nOmega >= 0.7 - 0.05; global yields "
               "higher Theta for rates above ~10 msg/s,\nlocal is "
               "competitive or better below that.\n";
  return 0;
}
