// Elasticity-response sweep: provisioning delays x spot market, every
// registered policy, under a latency SLO.
//
//   bench_elasticity [output.json]   (default: BENCH_elasticity.json)
//
// Rapid elasticity is never free: a fresh VM takes minutes to come
// online, the cheap spot tier can be reclaimed by the provider, and
// moving a PE's buffered state pauses its service. This sweep crosses
// mean provisioning delay {0, 60, 300} s with the spot mix {off, half,
// all} at a 70% discount / 2 h reclaim MTBF / 120 s notice, over every
// registered scheduler, and reports the recovery posture per run:
// mean/95p time-to-recover against Omega-hat, total SLO-violation
// seconds, preemptions suffered and notice-driven drains executed. The
// JSON lands in BENCH_elasticity.json as the committed baseline.
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "dds/common/json.hpp"

namespace {

using namespace dds;

ExperimentConfig elasticityConfig(double delay_s, double spot_fraction) {
  ExperimentConfig cfg;
  cfg.horizon_s = 1.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 5.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.seed = 2013;
  cfg.max_queue_delay_s = 30.0;  // the latency SLO the intro motivates
  cfg.elasticity.provisioning_delay_s = delay_s;
  cfg.elasticity.provisioning_delay_per_core_s = delay_s > 0.0 ? 15.0 : 0.0;
  if (spot_fraction > 0.0) {
    cfg.elasticity.spot_discount = 0.7;
    cfg.elasticity.spot_fraction = spot_fraction;
    cfg.elasticity.spot_preemption_mtbf_h = 2.0;
    cfg.elasticity.spot_notice_s = 120.0;
  }
  cfg.elasticity.pe_state_mb = 50.0;
  cfg.elasticity.migration_bandwidth_mbps = 100.0;
  cfg.resilience.graceful_degradation = true;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  using namespace dds::bench;

  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_elasticity.json");

  printHeader("Elasticity",
              "provisioning delays x spot market, every policy, 30 s "
              "latency SLO (5 msg/s wave, 1 h)");

  const Dataflow df = makePaperDataflow();
  const std::vector<double> delays = {0.0, 60.0, 300.0};
  const std::vector<double> spot_fractions = {0.0, 0.5, 1.0};
  const std::vector<SchedulerKind>& kinds = allSchedulerKinds();

  std::vector<ExperimentConfig> rows;
  std::vector<std::pair<double, double>> knobs;  // (delay, spot fraction)
  for (const double delay : delays) {
    for (const double spot : spot_fractions) {
      rows.push_back(elasticityConfig(delay, spot));
      knobs.emplace_back(delay, spot);
    }
  }
  const auto outcomes = runGrid(df, rows, kinds);

  TextTable table({"delay(s)", "spot", "policy", "omega", "met", "preempt",
                   "drains", "mttr(s)", "p95rec(s)", "slo-viol(s)",
                   "cost$"});
  JsonWriter w;
  w.beginObject();
  w.key("name").value("elasticity-response-sweep");
  w.key("horizon_s").value(rows.front().horizon_s);
  w.key("mean_rate").value(rows.front().workload.mean_rate);
  w.key("latency_slo_s").value(rows.front().max_queue_delay_s);
  w.key("spot_discount").value(0.7);
  w.key("spot_preemption_mtbf_h").value(2.0);
  w.key("spot_notice_s").value(120.0);
  w.key("pe_state_mb").value(rows.front().elasticity.pe_state_mb);
  w.key("rows").beginArray();
  for (std::size_t i = 0; i < knobs.size(); ++i) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto& o = outcomes[i * kinds.size() + k];
      const auto& r = o.result;
      const auto [delay, spot] = knobs[i];
      if (!o.ok) {
        // The exhaustive static planner legitimately exceeds its
        // combination cap on some grid cells; record the failure instead
        // of a row of zeros.
        table.addRow({TextTable::num(delay, 0), TextTable::num(spot, 1),
                      o.label, "(intractable)", "-", "-", "-", "-", "-", "-",
                      "-"});
        w.beginObject();
        w.key("provisioning_delay_s").value(delay);
        w.key("spot_fraction").value(spot);
        w.key("scheduler").value(o.label);
        w.key("error").value(o.error);
        w.endObject();
        continue;
      }
      table.addRow({TextTable::num(delay, 0), TextTable::num(spot, 1),
                    r.scheduler_name, TextTable::num(r.average_omega),
                    constraintMark(r), std::to_string(r.preemptions),
                    std::to_string(r.resilience.preemption_drains),
                    TextTable::num(r.recovery.mttr_s, 0),
                    TextTable::num(r.recovery.p95_episode_s, 0),
                    TextTable::num(r.recovery.slo_violation_s, 0),
                    TextTable::num(r.total_cost, 2)});
      w.beginObject();
      w.key("provisioning_delay_s").value(delay);
      w.key("spot_fraction").value(spot);
      w.key("scheduler").value(r.scheduler_name);
      w.key("average_omega").value(r.average_omega);
      w.key("constraint_met").value(r.constraint_met);
      w.key("preemptions").value(r.preemptions);
      w.key("preemption_drains").value(r.resilience.preemption_drains);
      w.key("time_to_recover_mean_s").value(r.recovery.mttr_s);
      w.key("time_to_recover_p95_s").value(r.recovery.p95_episode_s);
      w.key("slo_violation_s").value(r.recovery.slo_violation_s);
      w.key("availability").value(r.recovery.availability);
      w.key("messages_lost").value(r.messages_lost);
      w.key("total_cost").value(r.total_cost);
      w.endObject();
    }
  }
  w.endArray();
  w.endObject();
  std::cout << table.render() << '\n';

  std::ofstream out(out_path);
  DDS_REQUIRE(out.good(), "cannot open bench output file");
  out << w.str();
  std::cout << "wrote " << out_path << '\n';

  std::cout << "Reading: provisioning delays alone stretch recovery (fresh "
               "capacity is\nin the ledger but idle); adding spot cuts the "
               "bill but injects\npreemptions, which the drain-on-notice "
               "policies convert from message\nloss into short migration "
               "pauses backed by on-demand replacements.\n";
  return 0;
}
