// Interval-throughput bench for the fluid simulator's two kernels: the
// cached SoA kernel (default) against the reference per-interval-snapshot
// kernel, over a graph-size x rate-profile sweep.
//
// Each row times ONLY the step() loop (deployment held static, so the
// cached kernel amortizes its one rebuild across the whole run) and
// asserts that the two kernels produce bit-identical interval metrics —
// the cached kernel is a memoization, not an approximation, and a
// mismatch fails the bench (exit 1, which is how bench-smoke enforces
// identity in CI).
//
// `--json=PATH` writes the sweep as JSON (committed as
// BENCH_fluid_kernel.json at the repo root).
#include <chrono>
#include <fstream>
#include <iomanip>

#include "bench_util.hpp"

namespace {

using namespace dds;

constexpr IntervalIndex kIntervals = 1200;
constexpr double kIntervalS = 60.0;
constexpr int kReps = 3;

struct SweepCase {
  std::string graph;
  std::string profile;
  double rate = 0.0;
  /// futureGridLike replay (300 s coefficient windows) when true; ideal
  /// infrastructure (infinite windows) when false. Bounds the cached
  /// kernel's win: with finite windows the query savings cap at
  /// window / interval, with ideal infra only the rebuild cost remains.
  bool variability = true;
};

Dataflow graphByName(const std::string& name) {
  if (name == "paper") return makePaperDataflow();
  if (name == "chain8") return makeChainDataflow(8, 2);
  Rng rng(99);  // layered6x4
  return makeLayeredDataflow(6, 4, 2, rng);
}

std::unique_ptr<RateProfile> profileByName(const std::string& name,
                                           double rate) {
  const SimTime horizon = kIntervals * kIntervalS;
  if (name == "constant") return std::make_unique<ConstantRate>(rate);
  if (name == "wave") {
    return makeProfile(ProfileKind::PeriodicWave, rate, horizon, 7);
  }
  return makeProfile(ProfileKind::Spike, rate, horizon, 7);
}

/// Everything one run produces that the other kernel must reproduce
/// exactly. Compared with operator== on the raw doubles: any FP
/// divergence (reassociated sum, skipped query) shows up here.
struct RunOutput {
  std::vector<double> omegas;
  std::vector<double> costs;
  double final_backlog = 0.0;
  double wall_s = 0.0;
  std::uint64_t rebuilds = 0;

  [[nodiscard]] bool identicalTo(const RunOutput& o) const {
    return omegas == o.omegas && costs == o.costs &&
           final_backlog == o.final_backlog;
  }
};

/// One full step-loop run on a fresh environment; both kernels get the
/// same seeds and a static deployment, so any output difference is a
/// kernel bug. Only the step() loop is timed.
RunOutput runKernel(const SweepCase& c, SimConfig::Engine engine) {
  const Dataflow df = graphByName(c.graph);
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = c.variability ? TraceReplayer::futureGridLike(2013)
                                         : TraceReplayer::ideal();
  MonitoringService mon(cloud, replayer);
  SchedulerEnv env;
  env.dataflow = &df;
  env.cloud = &cloud;
  env.monitor = &mon;
  HeuristicScheduler sched(env, Strategy::Global, {});
  const Deployment dep = sched.deploy(c.rate);

  const std::unique_ptr<RateProfile> profile =
      profileByName(c.profile, c.rate);
  SimConfig cfg;
  cfg.interval_s = kIntervalS;
  cfg.engine = engine;
  DataflowSimulator sim(df, cloud, mon, cfg);

  RunOutput out;
  out.omegas.reserve(kIntervals);
  out.costs.reserve(kIntervals);
  const auto begin = std::chrono::steady_clock::now();
  for (IntervalIndex i = 0; i < kIntervals; ++i) {
    const IntervalMetrics m =
        sim.step(i, profile->rate(i * kIntervalS), dep);
    out.omegas.push_back(m.omega);
    out.costs.push_back(m.cost_cumulative);
  }
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - begin)
                   .count();
  out.final_backlog = sim.totalBacklog();
  out.rebuilds = sim.kernelRebuilds();
  return out;
}

struct SweepRow {
  SweepCase c;
  double reference_s = 0.0;
  double cached_s = 0.0;
  std::uint64_t rebuilds = 0;
  bool identical = false;
};

SweepRow runCase(const SweepCase& c) {
  SweepRow row;
  row.c = c;
  std::cerr << c.graph << " / " << c.profile << " @ " << c.rate
            << " msg/s" << (c.variability ? "" : " (ideal infra)") << ":"
            << std::flush;
  // Best-of-reps per kernel; every rep rebuilds the whole environment so
  // the replayer draws the same sequence each time.
  RunOutput ref;
  RunOutput cached;
  for (int rep = 0; rep < kReps; ++rep) {
    const RunOutput r = runKernel(c, SimConfig::Engine::Reference);
    const RunOutput k = runKernel(c, SimConfig::Engine::Cached);
    if (rep == 0 || r.wall_s < ref.wall_s) ref = r;
    if (rep == 0 || k.wall_s < cached.wall_s) cached = k;
  }
  row.reference_s = ref.wall_s;
  row.cached_s = cached.wall_s;
  row.rebuilds = cached.rebuilds;
  row.identical = ref.identicalTo(cached);
  std::cerr << " ref " << ref.wall_s << " s, cached " << cached.wall_s
            << " s" << (row.identical ? "" : "  RESULT MISMATCH") << '\n';
  return row;
}

std::vector<SweepRow> runSweep() {
  const std::vector<SweepCase> cases{
      // Variable infrastructure (the paper's FutureGrid-like replay).
      {"paper", "constant", 10.0, true},
      {"paper", "wave", 10.0, true},
      {"paper", "spike", 10.0, true},
      {"chain8", "wave", 10.0, true},
      {"layered6x4", "constant", 10.0, true},
      {"layered6x4", "wave", 10.0, true},
      {"layered6x4", "spike", 10.0, true},
      // Ideal infrastructure (no variability -- half the paper's
      // figures): coefficient windows never expire, so the cached
      // kernel's only recurring cost is the interval arithmetic.
      {"paper", "wave", 10.0, false},
      {"chain8", "wave", 10.0, false},
      {"layered6x4", "wave", 10.0, false},
  };
  std::vector<SweepRow> rows;
  rows.reserve(cases.size());
  for (const SweepCase& c : cases) rows.push_back(runCase(c));
  return rows;
}

void printTable(const std::vector<SweepRow>& rows) {
  TextTable table({"graph", "profile", "rate", "infra", "ref-ival/s",
                   "cached-ival/s", "speedup", "rebuilds", "identical"});
  for (const SweepRow& r : rows) {
    table.addRow(
        {r.c.graph, r.c.profile, TextTable::num(r.c.rate),
         r.c.variability ? "futuregrid" : "ideal",
         TextTable::num(kIntervals / r.reference_s),
         TextTable::num(kIntervals / r.cached_s),
         TextTable::num(r.cached_s > 0.0 ? r.reference_s / r.cached_s : 0.0,
                        2),
         std::to_string(r.rebuilds), r.identical ? "yes" : "NO"});
  }
  std::cout << table.render() << '\n';
}

bool writeJson(const std::vector<SweepRow>& rows, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  out << std::setprecision(17);
  out << "{\n"
      << "  \"benchmark\": \"fluid_cached_vs_reference\",\n"
      << "  \"intervals\": " << kIntervals << ",\n"
      << "  \"interval_s\": " << kIntervalS << ",\n"
      << "  \"reps\": " << kReps << ",\n"
      << "  \"catalog\": \"awsCatalog2013\",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    out << "    {\"graph\": \"" << r.c.graph << "\", \"profile\": \""
        << r.c.profile << "\", \"rate\": " << r.c.rate
        << ", \"variability\": " << (r.c.variability ? "true" : "false")
        << ",\n     \"reference_s\": " << r.reference_s
        << ", \"cached_s\": " << r.cached_s
        << ", \"speedup\": " << r.reference_s / r.cached_s
        << ",\n     \"reference_intervals_per_s\": "
        << kIntervals / r.reference_s
        << ", \"cached_intervals_per_s\": " << kIntervals / r.cached_s
        << ",\n     \"kernel_rebuilds\": " << r.rebuilds
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dds::bench;

  std::string json_path;
  const std::string kJsonFlag = "--json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(kJsonFlag, 0) == 0) json_path = arg.substr(kJsonFlag.size());
  }

  printHeader("Fluid kernel",
              "interval throughput, cached SoA kernel vs reference "
              "snapshot kernel (static deployment, 1200 intervals)");
  const std::vector<SweepRow> rows = runSweep();
  printTable(rows);

  bool ok = true;
  for (const SweepRow& r : rows) ok = ok && r.identical;
  if (!json_path.empty() && !writeJson(rows, json_path)) ok = false;
  if (!ok) {
    std::cerr << "fluid kernel bench FAILED (mismatch or write error)\n";
    return 1;
  }
  return 0;
}
