// Message-latency bench on the discrete-event simulator: the processing-
// latency QoS dimension the paper's introduction motivates ("the penalty
// of high processing latencies during the high data rate period").
// Compares end-to-end latency percentiles of the local and global
// adaptive heuristics, plus a fixed over/under-provisioned deployment,
// under a wave workload on the Fig. 1 dataflow.
//
// A second section measures raw event throughput (events drained per
// second of wall clock) of the cached engine against the reference
// engine over a rate x graph-size sweep. Every row asserts that the two
// engines' results are bit-identical via fingerprint().
// `--throughput-json=PATH` writes that sweep as JSON (committed as
// BENCH_eventsim_throughput.json at the repo root).
#include <fstream>
#include <iomanip>

#include "bench_util.hpp"

namespace {

using namespace dds;

struct LatencyRow {
  std::string label;
  EventSimResult result;
};

EventSimResult runPolicy(const Dataflow& df, Strategy strategy,
                         bool adaptive, double rate,
                         double queue_sla_s = 0.0) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::futureGridLike(2013);
  MonitoringService mon(cloud, replayer);
  SchedulerEnv env;
  env.dataflow = &df;
  env.cloud = &cloud;
  env.monitor = &mon;
  HeuristicOptions opts;
  opts.adaptive = adaptive;
  opts.max_queue_delay_s = queue_sla_s;
  HeuristicScheduler sched(env, strategy, opts);

  EventSimConfig cfg;
  cfg.horizon_s = 30.0 * kSecondsPerMinute;
  cfg.seed = 7;
  EventSimulator sim(df, cloud, mon, cfg);
  PeriodicWaveRate profile(rate, 0.4 * rate, 30.0 * kSecondsPerMinute,
                           -3.14159265358979 / 2.0);
  Deployment dep = sched.deploy(profile.rate(0.0));
  return sim.run(profile, std::move(dep), adaptive ? &sched : nullptr);
}

// --- cached-vs-reference throughput sweep ------------------------------

struct ThroughputCase {
  std::string graph;
  double rate = 0.0;
  bool adaptive = false;
};

struct ThroughputRow {
  ThroughputCase c;
  std::uint64_t events = 0;
  double reference_s = 0.0;
  double cached_s = 0.0;
  std::uint64_t route_refreshes = 0;
  std::uint64_t core_index_rebuilds = 0;
  bool identical = false;
};

Dataflow graphByName(const std::string& name) {
  if (name == "paper") return makePaperDataflow();
  if (name == "chain8") return makeChainDataflow(8, 2);
  Rng rng(99);  // layered6x4
  return makeLayeredDataflow(6, 4, 2, rng);
}

/// One full event-sim run on a fresh environment; both engines get the
/// same seeds, so any result difference is an engine bug.
EventSimResult runThroughput(const ThroughputCase& c,
                             EventSimConfig::Engine engine) {
  const Dataflow df = graphByName(c.graph);
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::futureGridLike(2013);
  MonitoringService mon(cloud, replayer);
  SchedulerEnv env;
  env.dataflow = &df;
  env.cloud = &cloud;
  env.monitor = &mon;
  HeuristicOptions opts;
  opts.adaptive = c.adaptive;
  HeuristicScheduler sched(env, Strategy::Global, opts);

  EventSimConfig cfg;  // stock 600 s horizon, 60 s intervals
  cfg.seed = 7;
  cfg.engine = engine;
  EventSimulator sim(df, cloud, mon, cfg);
  ConstantRate profile(c.rate);
  Deployment dep = sched.deploy(c.rate);
  return sim.run(profile, std::move(dep), c.adaptive ? &sched : nullptr);
}

std::vector<ThroughputRow> runThroughputSweep() {
  // Rates are capped per graph so the *reference* engine finishes each
  // row in under a minute — layered6x4 deploys ~200 VMs at 50 msg/s and
  // the reference path is O(VMs) per event.
  const std::vector<ThroughputCase> cases{
      {"paper", 20.0, false},    {"paper", 100.0, false},
      {"paper", 400.0, false},   {"chain8", 100.0, false},
      {"chain8", 400.0, false},  {"layered6x4", 20.0, false},
      {"layered6x4", 50.0, false}, {"paper", 100.0, true},
  };
  std::vector<ThroughputRow> rows;
  for (const ThroughputCase& c : cases) {
    std::cerr << "throughput " << c.graph << " @ " << c.rate << " msg/s"
              << (c.adaptive ? " adaptive" : "") << ": reference..."
              << std::flush;
    const EventSimResult ref =
        runThroughput(c, EventSimConfig::Engine::Reference);
    std::cerr << " " << ref.wall_seconds << " s, cached..." << std::flush;
    const EventSimResult cach =
        runThroughput(c, EventSimConfig::Engine::Cached);
    std::cerr << " " << cach.wall_seconds << " s\n";

    ThroughputRow row;
    row.c = c;
    row.events = cach.counters.drained();
    row.reference_s = ref.wall_seconds;
    row.cached_s = cach.wall_seconds;
    row.route_refreshes = cach.counters.route_refreshes;
    row.core_index_rebuilds = cach.counters.core_index_rebuilds;
    // The cached engine is a memoization, not an approximation: every
    // sample, counter and interval metric must match bit-for-bit.
    row.identical = fingerprint(ref) == fingerprint(cach);
    if (!row.identical) {
      std::cerr << "RESULT MISMATCH at " << c.graph << " @ " << c.rate
                << " msg/s\n";
    }
    rows.push_back(row);
  }
  return rows;
}

void printThroughputTable(const std::vector<ThroughputRow>& rows) {
  TextTable table({"graph", "rate", "adaptive", "events", "ref-ev/s",
                   "cached-ev/s", "speedup", "identical"});
  for (const auto& r : rows) {
    const double ref_eps =
        r.reference_s > 0.0 ? static_cast<double>(r.events) / r.reference_s
                            : 0.0;
    const double cached_eps =
        r.cached_s > 0.0 ? static_cast<double>(r.events) / r.cached_s : 0.0;
    table.addRow({r.c.graph, TextTable::num(r.c.rate),
                  r.c.adaptive ? "yes" : "no", std::to_string(r.events),
                  TextTable::num(ref_eps), TextTable::num(cached_eps),
                  TextTable::num(r.cached_s > 0.0
                                     ? r.reference_s / r.cached_s
                                     : 0.0),
                  r.identical ? "yes" : "NO"});
  }
  std::cout << table.render() << '\n';
}

int throughputSweepJson(const std::string& path) {
  const std::vector<ThroughputRow> rows = runThroughputSweep();
  printThroughputTable(rows);

  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  out << std::setprecision(17);
  out << "{\n"
      << "  \"benchmark\": \"eventsim_cached_vs_reference\",\n"
      << "  \"horizon_s\": " << EventSimConfig{}.horizon_s << ",\n"
      << "  \"interval_s\": " << EventSimConfig{}.interval_s << ",\n"
      << "  \"seed\": 7,\n"
      << "  \"catalog\": \"awsCatalog2013\",\n"
      << "  \"rows\": [\n";
  bool mismatch = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    if (!r.identical) mismatch = true;
    out << "    {\"graph\": \"" << r.c.graph << "\", \"rate\": " << r.c.rate
        << ", \"adaptive\": " << (r.c.adaptive ? "true" : "false")
        << ", \"events\": " << r.events
        << ",\n     \"reference_s\": " << r.reference_s
        << ", \"cached_s\": " << r.cached_s
        << ", \"speedup\": " << r.reference_s / r.cached_s
        << ",\n     \"reference_events_per_s\": "
        << static_cast<double>(r.events) / r.reference_s
        << ", \"cached_events_per_s\": "
        << static_cast<double>(r.events) / r.cached_s
        << ",\n     \"route_refreshes\": " << r.route_refreshes
        << ", \"core_index_rebuilds\": " << r.core_index_rebuilds
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return mismatch ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  using namespace dds::bench;

  const std::string kSweepFlag = "--throughput-json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(kSweepFlag, 0) == 0) {
      return throughputSweepJson(arg.substr(kSweepFlag.size()));
    }
  }

  printHeader("Latency",
              "end-to-end message latency (event-level simulation, "
              "10 msg/s wave, 30 min)");

  const Dataflow df = makePaperDataflow();
  const double rate = 10.0;
  std::vector<LatencyRow> rows;
  rows.push_back({"global adaptive",
                  runPolicy(df, Strategy::Global, true, rate)});
  rows.push_back({"local adaptive",
                  runPolicy(df, Strategy::Local, true, rate)});
  rows.push_back({"global static",
                  runPolicy(df, Strategy::Global, false, rate)});
  rows.push_back({"global + 60s SLA",
                  runPolicy(df, Strategy::Global, true, rate, 60.0)});

  TextTable table({"policy", "delivered", "omega", "lat-mean(s)",
                   "lat-p50(s)", "lat-p95(s)", "lat-p99(s)"});
  for (const auto& row : rows) {
    const auto& r = row.result;
    table.addRow(
        {row.label, std::to_string(r.messages_delivered),
         TextTable::num(r.intervals.averageOmega()),
         TextTable::num(r.latency.mean()),
         r.latency_samples.empty() ? "-"
                                   : TextTable::num(r.latencyPercentile(50)),
         r.latency_samples.empty() ? "-"
                                   : TextTable::num(r.latencyPercentile(95)),
         r.latency_samples.empty()
             ? "-"
             : TextTable::num(r.latencyPercentile(99))});
  }
  std::cout << table.render() << '\n';

  std::cout << "Reading: the adaptive policies keep the latency tail "
               "bounded through the wave\npeak by scaling ahead of the "
               "backlog; an under-provisioned static run shows\nthe "
               "queueing blow-up the paper's introduction warns about.\n\n";

  printHeader("Throughput",
              "event-loop throughput, cached engine vs reference "
              "(600 s horizon, constant rate)");
  printThroughputTable(runThroughputSweep());
  std::cout << "Reading: the cached engine drains the same event stream "
               "bit-identically\n(identical = yes on every row) while "
               "avoiding per-event ledger scans and\nmonitor queries; "
               "speedup grows with graph size and message rate.\n";
  return 0;
}
