// Message-latency bench on the discrete-event simulator: the processing-
// latency QoS dimension the paper's introduction motivates ("the penalty
// of high processing latencies during the high data rate period").
// Compares end-to-end latency percentiles of the local and global
// adaptive heuristics, plus a fixed over/under-provisioned deployment,
// under a wave workload on the Fig. 1 dataflow.
#include "bench_util.hpp"

namespace {

using namespace dds;

struct LatencyRow {
  std::string label;
  EventSimResult result;
};

EventSimResult runPolicy(const Dataflow& df, Strategy strategy,
                         bool adaptive, double rate,
                         double queue_sla_s = 0.0) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::futureGridLike(2013);
  MonitoringService mon(cloud, replayer);
  SchedulerEnv env;
  env.dataflow = &df;
  env.cloud = &cloud;
  env.monitor = &mon;
  HeuristicOptions opts;
  opts.adaptive = adaptive;
  opts.max_queue_delay_s = queue_sla_s;
  HeuristicScheduler sched(env, strategy, opts);

  EventSimConfig cfg;
  cfg.horizon_s = 30.0 * kSecondsPerMinute;
  cfg.seed = 7;
  EventSimulator sim(df, cloud, mon, cfg);
  PeriodicWaveRate profile(rate, 0.4 * rate, 30.0 * kSecondsPerMinute,
                           -3.14159265358979 / 2.0);
  Deployment dep = sched.deploy(profile.rate(0.0));
  return sim.run(profile, std::move(dep), adaptive ? &sched : nullptr);
}

}  // namespace

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Latency",
              "end-to-end message latency (event-level simulation, "
              "10 msg/s wave, 30 min)");

  const Dataflow df = makePaperDataflow();
  const double rate = 10.0;
  std::vector<LatencyRow> rows;
  rows.push_back({"global adaptive",
                  runPolicy(df, Strategy::Global, true, rate)});
  rows.push_back({"local adaptive",
                  runPolicy(df, Strategy::Local, true, rate)});
  rows.push_back({"global static",
                  runPolicy(df, Strategy::Global, false, rate)});
  rows.push_back({"global + 60s SLA",
                  runPolicy(df, Strategy::Global, true, rate, 60.0)});

  TextTable table({"policy", "delivered", "omega", "lat-mean(s)",
                   "lat-p50(s)", "lat-p95(s)", "lat-p99(s)"});
  for (const auto& row : rows) {
    const auto& r = row.result;
    table.addRow(
        {row.label, std::to_string(r.messages_delivered),
         TextTable::num(r.intervals.averageOmega()),
         TextTable::num(r.latency.mean()),
         r.latency_samples.empty() ? "-"
                                   : TextTable::num(r.latencyPercentile(50)),
         r.latency_samples.empty() ? "-"
                                   : TextTable::num(r.latencyPercentile(95)),
         r.latency_samples.empty()
             ? "-"
             : TextTable::num(r.latencyPercentile(99))});
  }
  std::cout << table.render() << '\n';

  std::cout << "Reading: the adaptive policies keep the latency tail "
               "bounded through the wave\npeak by scaling ahead of the "
               "backlog; an under-provisioned static run shows\nthe "
               "queueing blow-up the paper's introduction warns about.\n";
  return 0;
}
