// Catalog-granularity study: how the resource-class menu shapes cost.
//
// The §6 problem packs PE demands into VMs of different classes; how well
// the packing fits depends on what the provider sells. This bench runs the
// global adaptive heuristic over the rate sweep with three catalogs:
//   m1    — the paper's fine-grained first generation (1..8 power units);
//   m3    — second generation only: big, fast, coarse (13..26 units);
//   mixed — both menus.
// Claim to check: coarse classes waste money at low rates (the smallest
// purchasable step exceeds the demand), while at high rates the cheaper
// per-unit m1 pricing keeps winning — the menu matters most at the edges.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Catalog",
              "resource-class granularity vs cost (global adaptive, "
              "2 h wave + infra var)");

  const Dataflow df = makePaperDataflow();
  TextTable table({"rate", "m1$", "m3$", "mixed$", "mixed+cheap$",
                   "m1-omega", "mixed+cheap-omega"});
  std::vector<std::vector<double>> csv;
  for (const double rate : paperRates()) {
    std::vector<double> costs, omegas;
    for (int variant = 0; variant < 4; ++variant) {
      ExperimentConfig cfg;
      cfg.horizon_s = 2.0 * kSecondsPerHour;
      cfg.workload.mean_rate = rate;
      cfg.workload.profile = ProfileKind::PeriodicWave;
      cfg.workload.infra_variability = true;
      cfg.seed = 2013;
      cfg.catalog = variant == 0 ? "m1" : variant == 1 ? "m3" : "mixed";
      cfg.cheapest_class_acquisition = (variant == 3);
      const auto r =
          SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
      costs.push_back(r.total_cost);
      omegas.push_back(r.average_omega);
    }
    table.addRow({TextTable::num(rate, 0), TextTable::num(costs[0], 2),
                  TextTable::num(costs[1], 2), TextTable::num(costs[2], 2),
                  TextTable::num(costs[3], 2), TextTable::num(omegas[0]),
                  TextTable::num(omegas[3])});
    csv.push_back({rate, costs[0], costs[1], costs[2], costs[3], omegas[0],
                   omegas[3]});
  }
  printTableAndCsv(table,
                   {"rate", "m1_cost", "m3_cost", "mixed_cost",
                    "mixed_cheap_cost", "m1_omega", "mixed_cheap_omega"},
                   csv);

  std::cout << "Reading: with only coarse m3 classes every run pays the "
               "higher per-unit price.\nThe plain mixed menu exposes a "
               "weakness of Alg. 1's largest-class-first rule —\nit keeps "
               "buying the biggest (here: priciest per unit) class. The "
               "cheapest-power\nacquisition policy (our extension, "
               "`cheapest_class_acquisition`) recovers the\nm1 price line "
               "exactly while keeping the same throughput.\n";
  return 0;
}
