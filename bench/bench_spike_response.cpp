// Flash-crowd response bench: a 3x rate spike hits at 40% of the horizon
// (the "velocity" scenario of the paper's introduction). Measures, per
// policy, the depth of the Omega dip, the time to recover the constraint,
// and the money spent — the elasticity reaction time story.
#include "bench_util.hpp"

namespace {

using namespace dds;

struct Response {
  ExperimentResult result;
  double min_omega = 1.0;
  double recovery_minutes = -1.0;  ///< spike start -> omega back over 0.65.
};

Response measure(const Dataflow& df, SchedulerKind kind) {
  ExperimentConfig cfg;
  cfg.horizon_s = 2.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::Spike;  // 3x burst at 40% for 10% of horizon
  cfg.seed = 2013;
  Response resp;
  resp.result = SimulationEngine(df, cfg).run(kind);

  const SimTime spike_start = 0.4 * cfg.horizon_s;
  bool recovered = false;
  for (const auto& m : resp.result.run.intervals()) {
    if (m.start < spike_start) continue;
    resp.min_omega = std::min(resp.min_omega, m.omega);
    if (!recovered && m.omega >= 0.65) {
      resp.recovery_minutes = (m.start - spike_start) / 60.0;
      recovered = true;
    }
  }
  return resp;
}

}  // namespace

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Spike",
              "flash-crowd response: 3x burst at 10 msg/s base (2 h)");

  const Dataflow df = makePaperDataflow();
  TextTable table({"policy", "omega", "min-omega", "recovery(min)",
                   "cost$", "theta"});
  for (const auto kind :
       {SchedulerKind::GlobalAdaptive, SchedulerKind::LocalAdaptive,
        SchedulerKind::ReactiveBaseline, SchedulerKind::GlobalStatic}) {
    const auto resp = measure(df, kind);
    table.addRow({resp.result.scheduler_name,
                  TextTable::num(resp.result.average_omega),
                  TextTable::num(resp.min_omega),
                  resp.recovery_minutes < 0.0
                      ? "never"
                      : TextTable::num(resp.recovery_minutes, 0),
                  TextTable::num(resp.result.total_cost, 2),
                  TextTable::num(resp.result.theta)});
  }
  std::cout << table.render() << '\n';

  std::cout << "Reading: the model-driven heuristics answer the burst "
               "within an interval or\ntwo (global fastest); the reactive "
               "baseline waits for queues to build before\neach "
               "single-core step, so it only recovers when the burst ends; "
               "the static\ndeployment never reacts — its 'recovery' at "
               "~12 min is just the spike ending,\nand its Omega floor of "
               "~1/3 is exactly base-capacity over 3x load.\n";
  return 0;
}
