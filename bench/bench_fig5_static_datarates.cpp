// Fig. 5 reproduction: "Effect of data rates on relative throughput, for
// static deployments" — Omega vs mean data rate (2..50 msg/s) for the
// local-static and global-static policies with no variability, plus the
// brute-force optimal where tractable.
//
// Paper claim: even with no variability, static heuristic deployments'
// throughput degrades as the data rate grows, while the brute-force search
// becomes prohibitively expensive — motivating continuous monitoring and
// re-deployment.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 5",
              "Omega vs data rate for static deployments (no variability)");

  const Dataflow df = makePaperDataflow();
  TextTable table({"rate", "local-static", "global-static", "brute-force",
                   "annealing"});
  std::vector<std::vector<double>> csv;
  for (const double rate : paperRates()) {
    ExperimentConfig cfg;
    cfg.horizon_s = 2.0 * kSecondsPerHour;
    cfg.mean_rate = rate;
    cfg.seed = 2013;
    const auto local = SimulationEngine(df, cfg).run(
        SchedulerKind::LocalStatic);
    const auto global = SimulationEngine(df, cfg).run(
        SchedulerKind::GlobalStatic);
    std::string brute_cell = "(intractable)";
    double brute_omega = -1.0;
    try {
      const auto brute = SimulationEngine(df, cfg).run(
          SchedulerKind::BruteForceStatic);
      brute_omega = brute.average_omega;
      brute_cell = TextTable::num(brute_omega);
    } catch (const SearchSpaceTooLarge&) {
      // mirrors the paper: brute force is skipped at high rates
    }
    const auto annealing = SimulationEngine(df, cfg).run(
        SchedulerKind::AnnealingStatic);
    table.addRow({TextTable::num(rate, 0),
                  TextTable::num(local.average_omega),
                  TextTable::num(global.average_omega), brute_cell,
                  TextTable::num(annealing.average_omega)});
    csv.push_back({rate, local.average_omega, global.average_omega,
                   brute_omega, annealing.average_omega});
  }
  printTableAndCsv(table, {"rate", "local", "global", "brute", "annealing"},
                   csv);

  std::cout << "Paper claim: static deployments sized for the estimated "
               "rate still hold the\nplanned throughput when nothing "
               "varies, but they cannot react to anything;\nper Fig. 4, "
               "any variability breaks them, and brute-force becomes "
               "intractable\nas rate (and thus search space) grows.\n";
  return 0;
}
