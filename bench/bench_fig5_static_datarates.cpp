// Fig. 5 reproduction: "Effect of data rates on relative throughput, for
// static deployments" — Omega vs mean data rate (2..50 msg/s) for the
// local-static and global-static policies with no variability, plus the
// brute-force optimal where tractable.
//
// Paper claim: even with no variability, static heuristic deployments'
// throughput degrades as the data rate grows, while the brute-force search
// becomes prohibitively expensive — motivating continuous monitoring and
// re-deployment.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 5",
              "Omega vs data rate for static deployments (no variability)");

  const Dataflow df = makePaperDataflow();
  const std::vector<double> rates = paperRates();
  std::vector<ExperimentConfig> rows;
  for (const double rate : rates) {
    ExperimentConfig cfg;
    cfg.horizon_s = 2.0 * kSecondsPerHour;
    cfg.workload.mean_rate = rate;
    cfg.seed = 2013;
    rows.push_back(cfg);
  }
  const std::vector<SchedulerKind> kinds = {
      SchedulerKind::LocalStatic, SchedulerKind::GlobalStatic,
      SchedulerKind::BruteForceStatic, SchedulerKind::AnnealingStatic};
  const auto outcomes = runGrid(df, rows, kinds);

  TextTable table({"rate", "local-static", "global-static", "brute-force",
                   "annealing"});
  std::vector<std::vector<double>> csv;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& local = outcomes[i * kinds.size() + 0].result;
    const auto& global = outcomes[i * kinds.size() + 1].result;
    // Brute force throws SearchSpaceTooLarge at high rates; the campaign
    // captures that per-outcome (mirrors the paper: the search is skipped).
    const auto& brute = outcomes[i * kinds.size() + 2];
    const auto& annealing = outcomes[i * kinds.size() + 3].result;
    const std::string brute_cell =
        brute.ok ? TextTable::num(brute.result.average_omega)
                 : "(intractable)";
    const double brute_omega = brute.ok ? brute.result.average_omega : -1.0;
    table.addRow({TextTable::num(rates[i], 0),
                  TextTable::num(local.average_omega),
                  TextTable::num(global.average_omega), brute_cell,
                  TextTable::num(annealing.average_omega)});
    csv.push_back({rates[i], local.average_omega, global.average_omega,
                   brute_omega, annealing.average_omega});
  }
  printTableAndCsv(table, {"rate", "local", "global", "brute", "annealing"},
                   csv);

  std::cout << "Paper claim: static deployments sized for the estimated "
               "rate still hold the\nplanned throughput when nothing "
               "varies, but they cannot react to anything;\nper Fig. 4, "
               "any variability breaks them, and brute-force becomes "
               "intractable\nas rate (and thus search space) grows.\n";
  return 0;
}
