// Fig. 9 reproduction (and the paper's 10-hour dollar-cost comparison):
// "Dollar cost benefit of application dynamism with continuous
// re-deployment" — total spend over a 10-hour run for the global and local
// heuristics with and without application dynamism (alternate selection),
// across the rate sweep.
//
// Paper claims: global-with-dynamism is cheapest at high rates; disabling
// dynamism costs the global heuristic ~15% more on average; global saves
// up to ~70% vs local-without-dynamism.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 9",
              "dollar cost of application dynamism over a 10-hour run");

  const Dataflow df = makePaperDataflow();
  const std::vector<SchedulerKind> kinds = {
      SchedulerKind::GlobalAdaptive,
      SchedulerKind::GlobalAdaptiveNoDyn,
      SchedulerKind::LocalAdaptive,
      SchedulerKind::LocalAdaptiveNoDyn,
  };

  const std::vector<double> rates = paperRates();
  std::vector<ExperimentConfig> rows;
  for (const double rate : rates) {
    ExperimentConfig cfg;
    cfg.horizon_s = 10.0 * kSecondsPerHour;
    cfg.workload.mean_rate = rate;
    cfg.workload.profile = ProfileKind::PeriodicWave;
    cfg.workload.infra_variability = true;
    cfg.seed = 2013;
    rows.push_back(cfg);
  }
  const auto outcomes = runGrid(df, rows, kinds);

  TextTable table({"rate", "global$", "global-nodyn$", "local$",
                   "local-nodyn$", "dyn-saving%", "global-vs-localnodyn%"});
  std::vector<std::vector<double>> csv;
  double saving_sum = 0.0;
  double best_vs_localnodyn = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double rate = rates[i];
    std::vector<double> costs;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      costs.push_back(outcomes[i * kinds.size() + k].result.total_cost);
    }
    const double dyn_saving =
        (costs[1] - costs[0]) / costs[1] * 100.0;  // global vs global-nodyn
    const double vs_localnodyn =
        (costs[3] - costs[0]) / costs[3] * 100.0;  // global vs local-nodyn
    saving_sum += dyn_saving;
    best_vs_localnodyn = std::max(best_vs_localnodyn, vs_localnodyn);
    table.addRow({TextTable::num(rate, 0), TextTable::num(costs[0], 2),
                  TextTable::num(costs[1], 2), TextTable::num(costs[2], 2),
                  TextTable::num(costs[3], 2),
                  TextTable::num(dyn_saving, 1),
                  TextTable::num(vs_localnodyn, 1)});
    csv.push_back({rate, costs[0], costs[1], costs[2], costs[3],
                   dyn_saving, vs_localnodyn});
  }
  printTableAndCsv(table,
                   {"rate", "global", "global_nodyn", "local",
                    "local_nodyn", "dyn_saving_pct", "vs_localnodyn_pct"},
                   csv);

  std::cout << "Measured: application dynamism saves the global heuristic "
            << TextTable::num(saving_sum /
                                  static_cast<double>(paperRates().size()),
                              1)
            << "% on average (paper: ~15%);\nglobal-with-dynamism beats "
               "local-without-dynamism by up to "
            << TextTable::num(best_vs_localnodyn, 1)
            << "% (paper: up to ~70%).\n";
  return 0;
}
