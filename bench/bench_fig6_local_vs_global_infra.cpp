// Fig. 6 reproduction: local vs global adaptive heuristics under
// *infrastructure variability only* (constant input rate) — Theta, Omega
// and dollar cost across the 2..50 msg/s sweep.
//
// Paper claim: both adaptive heuristics keep Omega >= Omega-hat - eps;
// the global heuristic achieves better Theta at higher data rates (its
// downstream-aware decisions avoid action reversals), while local can edge
// it out at low rates.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 6",
              "local vs global adaptive, infrastructure variability only");

  runLocalVsGlobalSweep(makePaperDataflow(), ProfileKind::Constant,
                        /*infra_variability=*/true);

  std::cout << "Paper claim: with only the cloud misbehaving, continuous "
               "monitoring lets both\nheuristics hold the throughput "
               "constraint; global's downstream-aware costing\nwins on "
               "Theta as rates (and the price of wrong moves) grow.\n";
  return 0;
}
