// Fig. 6 reproduction: local vs global adaptive heuristics under
// *infrastructure variability only* (constant input rate) — Theta, Omega
// and dollar cost across the 2..50 msg/s sweep.
//
// Paper claim: both adaptive heuristics keep Omega >= Omega-hat - eps;
// the global heuristic achieves better Theta at higher data rates (its
// downstream-aware decisions avoid action reversals), while local can edge
// it out at low rates.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Fig. 6",
              "local vs global adaptive, infrastructure variability only");

  const Dataflow df = makePaperDataflow();
  TextTable table({"rate", "policy", "omega", "met", "gamma", "cost$",
                   "theta"});
  std::vector<std::vector<double>> csv;
  for (const double rate : paperRates()) {
    for (const auto kind :
         {SchedulerKind::LocalAdaptive, SchedulerKind::GlobalAdaptive}) {
      ExperimentConfig cfg;
      cfg.horizon_s = 4.0 * kSecondsPerHour;
      cfg.mean_rate = rate;
      cfg.profile = ProfileKind::Constant;
      cfg.infra_variability = true;
      cfg.seed = 2013;
      const auto r = SimulationEngine(df, cfg).run(kind);
      table.addRow({TextTable::num(rate, 0), r.scheduler_name,
                    TextTable::num(r.average_omega), constraintMark(r),
                    TextTable::num(r.average_gamma),
                    TextTable::num(r.total_cost, 2),
                    TextTable::num(r.theta)});
      csv.push_back({rate,
                     kind == SchedulerKind::LocalAdaptive ? 0.0 : 1.0,
                     r.average_omega, r.constraint_met ? 1.0 : 0.0,
                     r.average_gamma, r.total_cost, r.theta});
    }
  }
  printTableAndCsv(
      table, {"rate", "policy", "omega", "met", "gamma", "cost", "theta"},
      csv);

  std::cout << "Paper claim: with only the cloud misbehaving, continuous "
               "monitoring lets both\nheuristics hold the throughput "
               "constraint; global's downstream-aware costing\nwins on "
               "Theta as rates (and the price of wrong moves) grow.\n";
  return 0;
}
