// Heuristic decision-latency micro-benchmark (google-benchmark).
//
// The paper argues (§7) that "fast heuristics are better suited than slow
// optimal solutions" for continuous adaptation, and scales its graph "to
// 10's of alternates and 100's of VMs". This bench measures the wall time
// of the two decision procedures — initial deployment (Alg. 1) and one
// runtime adaptation step (Alg. 2) — as the dataflow grows, plus the
// brute-force search on the small graph for contrast.
// Invoking the binary with --planner-latency-json=PATH skips the
// google-benchmark harness and instead runs the full incremental-vs-full
// annealing sweep (default 20k iterations, graph sizes up to 10 layers x
// 8 width), cross-checks that both evaluator paths produce bit-identical
// plans, and writes the results as JSON (committed as
// BENCH_planner_latency.json at the repo root).
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "dds/dds.hpp"

namespace {

using namespace dds;

struct Env {
  explicit Env(Dataflow graph)
      : df(std::move(graph)), cloud(awsCatalog2013()),
        replayer(TraceReplayer::ideal()), mon(cloud, replayer) {}
  Dataflow df;
  CloudProvider cloud;
  TraceReplayer replayer;
  MonitoringService mon;

  SchedulerEnv schedEnv() {
    SchedulerEnv e;
    e.dataflow = &df;
    e.cloud = &cloud;
    e.monitor = &mon;
    e.omega_target = 0.7;
    e.epsilon = 0.05;
    return e;
  }
};

Dataflow graphOfSize(int layers, int width) {
  Rng rng(99);
  return makeLayeredDataflow(static_cast<std::size_t>(layers),
                             static_cast<std::size_t>(width), 3, rng);
}

void BM_InitialDeployment(benchmark::State& state) {
  const auto layers = static_cast<int>(state.range(0));
  const auto width = static_cast<int>(state.range(1));
  const Dataflow df = graphOfSize(layers, width);
  for (auto _ : state) {
    Env env{graphOfSize(layers, width)};
    HeuristicScheduler sched(env.schedEnv(), Strategy::Global);
    benchmark::DoNotOptimize(sched.deploy(10.0));
  }
  state.SetLabel(std::to_string(df.peCount()) + " PEs, " +
                 std::to_string(df.totalAlternateCount()) + " alternates");
}
BENCHMARK(BM_InitialDeployment)
    ->Args({3, 2})
    ->Args({4, 4})
    ->Args({6, 6})
    ->Args({8, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_AdaptationStep(benchmark::State& state) {
  const auto layers = static_cast<int>(state.range(0));
  const auto width = static_cast<int>(state.range(1));
  Env env{graphOfSize(layers, width)};
  HeuristicScheduler sched(env.schedEnv(), Strategy::Global);
  Deployment dep = sched.deploy(10.0);
  DataflowSimulator sim(env.df, env.cloud, env.mon, {});
  IntervalMetrics last = sim.step(0, 10.0, dep);
  ObservedState st;
  st.interval = 2;
  st.now = 120.0;
  st.input_rate = 14.0;  // mild surge to trigger real work
  st.average_omega = 0.6;
  st.last_interval = &last;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.adapt(st, dep));
  }
  state.SetLabel(std::to_string(env.df.peCount()) + " PEs");
}
BENCHMARK(BM_AdaptationStep)
    ->Args({3, 2})
    ->Args({4, 4})
    ->Args({6, 6})
    ->Args({8, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_AnnealingDeploy(benchmark::State& state) {
  const auto layers = static_cast<int>(state.range(0));
  const auto width = static_cast<int>(state.range(1));
  const bool incremental = state.range(2) != 0;
  const Dataflow df = graphOfSize(layers, width);
  for (auto _ : state) {
    Env env{graphOfSize(layers, width)};
    AnnealingOptions opts;
    opts.iterations = 2'000;  // fast smoke-sized search; the full 20k
                              // sweep runs under --planner-latency-json
    opts.incremental_evaluation = incremental;
    AnnealingScheduler sched(env.schedEnv(), 0.01, kSecondsPerHour, opts);
    benchmark::DoNotOptimize(sched.deploy(10.0));
  }
  state.SetLabel(std::string(incremental ? "incremental" : "full") + ", " +
                 std::to_string(df.peCount()) + " PEs, " +
                 std::to_string(df.totalAlternateCount()) + " alternates");
}
BENCHMARK(BM_AnnealingDeploy)
    ->Args({4, 4, 1})
    ->Args({6, 4, 1})
    ->Args({8, 6, 1})
    ->Args({10, 8, 1})
    ->Args({4, 4, 0})
    ->Args({6, 4, 0})  // full evaluation only at small sizes: at 10x8 a
                       // single from-scratch deploy() takes ~25 s
    ->Unit(benchmark::kMillisecond);

void BM_BruteForceSmallGraph(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0));
  for (auto _ : state) {
    Env env{makePaperDataflow()};
    BruteForceScheduler sched(env.schedEnv(), 0.01, kSecondsPerHour);
    benchmark::DoNotOptimize(sched.deploy(rate));
  }
}
BENCHMARK(BM_BruteForceSmallGraph)
    ->Arg(2)
    ->Arg(3)
    ->Arg(5)  // higher rates exceed the search-space cap (paper: "takes
              // prohibitively long"), so the sweep stops here
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorStep(benchmark::State& state) {
  const auto layers = static_cast<int>(state.range(0));
  Env env{graphOfSize(layers, layers)};
  HeuristicScheduler sched(env.schedEnv(), Strategy::Global);
  Deployment dep = sched.deploy(10.0);
  DataflowSimulator sim(env.df, env.cloud, env.mon, {});
  IntervalIndex i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(i++, 10.0, dep));
  }
  state.SetLabel(std::to_string(env.df.peCount()) + " PEs");
}
BENCHMARK(BM_SimulatorStep)->Arg(3)->Arg(5)->Arg(8)->Unit(
    benchmark::kMicrosecond);

// --- incremental-vs-full planner-latency sweep (writes JSON) -----------

/// Everything one annealing deploy() produces that must match between
/// the two evaluator paths, plus its performance counters.
struct SweepRun {
  double theta = 0.0;
  std::vector<unsigned> alternates;
  std::map<std::string, int> vms;
  int cores = 0;
  double wall_ms = 0.0;
  double decisions_per_s = 0.0;
  std::uint64_t memo_lookups = 0;
  std::uint64_t memo_hits = 0;
};

SweepRun runAnnealingDeploy(int layers, int width, bool incremental) {
  Env env{graphOfSize(layers, width)};
  obs::MetricsRegistry metrics;
  SchedulerEnv se = env.schedEnv();
  se.metrics = &metrics;
  AnnealingOptions opts;  // stock 20k iterations, stock seed
  opts.incremental_evaluation = incremental;
  AnnealingScheduler sched(se, 0.01, kSecondsPerHour, opts);

  const auto t0 = std::chrono::steady_clock::now();
  const Deployment dep = sched.deploy(10.0);
  const auto t1 = std::chrono::steady_clock::now();

  SweepRun run;
  run.theta = sched.bestTheta();
  for (std::size_t i = 0; i < env.df.peCount(); ++i) {
    run.alternates.push_back(
        dep.activeAlternate(PeId(static_cast<PeId::value_type>(i)))
            .value());
  }
  for (const VmId id : env.cloud.activeVms()) {
    ++run.vms[env.cloud.instance(id).spec().name];
    run.cores += env.cloud.instance(id).allocatedCoreCount();
  }
  run.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  run.decisions_per_s = metrics.gauge("sched.deploy_decisions_per_s").value();
  run.memo_lookups = metrics.counter("sched.evaluator_memo_lookups").value();
  run.memo_hits = metrics.counter("sched.evaluator_memo_hits").value();
  return run;
}

int plannerLatencySweep(const std::string& path) {
  struct Size {
    int layers;
    int width;
  };
  const std::vector<Size> sizes{{4, 4}, {6, 4}, {8, 6}, {10, 8}};

  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  out << std::setprecision(17);
  out << "{\n"
      << "  \"benchmark\": \"annealing_deploy_incremental_vs_full\",\n"
      << "  \"iterations\": " << AnnealingOptions{}.iterations << ",\n"
      << "  \"input_rate\": 10.0,\n"
      << "  \"sigma\": 0.01,\n"
      << "  \"catalog\": \"awsCatalog2013\",\n"
      << "  \"rows\": [\n";

  bool mismatch = false;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto [layers, width] = sizes[i];
    const Dataflow df = graphOfSize(layers, width);
    std::cerr << "sweep " << layers << "x" << width << " ("
              << df.peCount() << " PEs): full evaluation..." << std::flush;
    const SweepRun full = runAnnealingDeploy(layers, width, false);
    std::cerr << " " << full.wall_ms << " ms, incremental..."
              << std::flush;
    const SweepRun inc = runAnnealingDeploy(layers, width, true);
    std::cerr << " " << inc.wall_ms << " ms\n";

    // The evaluator is a pure cache: any divergence is a bug, and a
    // benchmark of two paths that disagree would be meaningless.
    const bool identical = full.theta == inc.theta &&  // bitwise
                           full.alternates == inc.alternates &&
                           full.vms == inc.vms && full.cores == inc.cores;
    if (!identical) {
      std::cerr << "PLAN MISMATCH at " << layers << "x" << width << "\n";
      mismatch = true;
    }

    const double hit_rate =
        inc.memo_lookups == 0
            ? 0.0
            : static_cast<double>(inc.memo_hits) /
                  static_cast<double>(inc.memo_lookups);
    out << "    {\"layers\": " << layers << ", \"width\": " << width
        << ", \"pes\": " << df.peCount()
        << ", \"alternates\": " << df.totalAlternateCount()
        << ",\n     \"full_ms\": " << full.wall_ms
        << ", \"incremental_ms\": " << inc.wall_ms
        << ", \"speedup\": " << full.wall_ms / inc.wall_ms
        << ",\n     \"decisions_per_s\": " << inc.decisions_per_s
        << ", \"memo_hit_rate\": " << hit_rate
        << ", \"plans_identical\": " << (identical ? "true" : "false")
        << "}" << (i + 1 < sizes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return mismatch ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kSweepFlag = "--planner-latency-json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(kSweepFlag, 0) == 0) {
      return plannerLatencySweep(arg.substr(kSweepFlag.size()));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
