// Heuristic decision-latency micro-benchmark (google-benchmark).
//
// The paper argues (§7) that "fast heuristics are better suited than slow
// optimal solutions" for continuous adaptation, and scales its graph "to
// 10's of alternates and 100's of VMs". This bench measures the wall time
// of the two decision procedures — initial deployment (Alg. 1) and one
// runtime adaptation step (Alg. 2) — as the dataflow grows, plus the
// brute-force search on the small graph for contrast.
#include <benchmark/benchmark.h>

#include "dds/dds.hpp"

namespace {

using namespace dds;

struct Env {
  explicit Env(Dataflow graph)
      : df(std::move(graph)), cloud(awsCatalog2013()),
        replayer(TraceReplayer::ideal()), mon(cloud, replayer) {}
  Dataflow df;
  CloudProvider cloud;
  TraceReplayer replayer;
  MonitoringService mon;

  SchedulerEnv schedEnv() {
    SchedulerEnv e;
    e.dataflow = &df;
    e.cloud = &cloud;
    e.monitor = &mon;
    e.omega_target = 0.7;
    e.epsilon = 0.05;
    return e;
  }
};

Dataflow graphOfSize(int layers, int width) {
  Rng rng(99);
  return makeLayeredDataflow(static_cast<std::size_t>(layers),
                             static_cast<std::size_t>(width), 3, rng);
}

void BM_InitialDeployment(benchmark::State& state) {
  const auto layers = static_cast<int>(state.range(0));
  const auto width = static_cast<int>(state.range(1));
  const Dataflow df = graphOfSize(layers, width);
  for (auto _ : state) {
    Env env{graphOfSize(layers, width)};
    HeuristicScheduler sched(env.schedEnv(), Strategy::Global);
    benchmark::DoNotOptimize(sched.deploy(10.0));
  }
  state.SetLabel(std::to_string(df.peCount()) + " PEs, " +
                 std::to_string(df.totalAlternateCount()) + " alternates");
}
BENCHMARK(BM_InitialDeployment)
    ->Args({3, 2})
    ->Args({4, 4})
    ->Args({6, 6})
    ->Args({8, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_AdaptationStep(benchmark::State& state) {
  const auto layers = static_cast<int>(state.range(0));
  const auto width = static_cast<int>(state.range(1));
  Env env{graphOfSize(layers, width)};
  HeuristicScheduler sched(env.schedEnv(), Strategy::Global);
  Deployment dep = sched.deploy(10.0);
  DataflowSimulator sim(env.df, env.cloud, env.mon, {});
  IntervalMetrics last = sim.step(0, 10.0, dep);
  ObservedState st;
  st.interval = 2;
  st.now = 120.0;
  st.input_rate = 14.0;  // mild surge to trigger real work
  st.average_omega = 0.6;
  st.last_interval = &last;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.adapt(st, dep));
  }
  state.SetLabel(std::to_string(env.df.peCount()) + " PEs");
}
BENCHMARK(BM_AdaptationStep)
    ->Args({3, 2})
    ->Args({4, 4})
    ->Args({6, 6})
    ->Args({8, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_BruteForceSmallGraph(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0));
  for (auto _ : state) {
    Env env{makePaperDataflow()};
    BruteForceScheduler sched(env.schedEnv(), 0.01, kSecondsPerHour);
    benchmark::DoNotOptimize(sched.deploy(rate));
  }
}
BENCHMARK(BM_BruteForceSmallGraph)
    ->Arg(2)
    ->Arg(3)
    ->Arg(5)  // higher rates exceed the search-space cap (paper: "takes
              // prohibitively long"), so the sweep stops here
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorStep(benchmark::State& state) {
  const auto layers = static_cast<int>(state.range(0));
  Env env{graphOfSize(layers, layers)};
  HeuristicScheduler sched(env.schedEnv(), Strategy::Global);
  Deployment dep = sched.deploy(10.0);
  DataflowSimulator sim(env.df, env.cloud, env.mon, {});
  IntervalIndex i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(i++, 10.0, dep));
  }
  state.SetLabel(std::to_string(env.df.peCount()) + " PEs");
}
BENCHMARK(BM_SimulatorStep)->Arg(3)->Arg(5)->Arg(8)->Unit(
    benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
