// Seed-sensitivity bench: the error bars the paper's single-trajectory
// figures do not show. Re-runs the headline comparison (local vs global vs
// no-dynamism, 10 msg/s, wave + infra variability, 2 h) across 10 seeds
// and reports mean ± stddev for Omega / cost / Theta plus the fraction of
// seeds that met the constraint.
#include "bench_util.hpp"

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Seeds",
              "seed sensitivity of the headline comparison "
              "(10 msg/s wave + infra var, 2 h, 10 seeds)");

  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 2.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.seed = 1000;

  TextTable table({"policy", "omega", "±", "cost$", "±", "theta", "±",
                   "met%"});
  std::vector<std::vector<double>> csv;
  for (const auto kind :
       {SchedulerKind::GlobalAdaptive, SchedulerKind::LocalAdaptive,
        SchedulerKind::GlobalAdaptiveNoDyn, SchedulerKind::GlobalStatic}) {
    const auto r = runReplicated(df, cfg, kind, 10);
    table.addRow({r.scheduler_name, TextTable::num(r.omega.mean()),
                  TextTable::num(r.omega.stddev()),
                  TextTable::num(r.cost.mean(), 2),
                  TextTable::num(r.cost.stddev(), 2),
                  TextTable::num(r.theta.mean()),
                  TextTable::num(r.theta.stddev()),
                  TextTable::num(r.successRate() * 100.0, 0)});
    csv.push_back({static_cast<double>(static_cast<int>(kind)),
                   r.omega.mean(), r.omega.stddev(), r.cost.mean(),
                   r.cost.stddev(), r.theta.mean(), r.theta.stddev(),
                   r.successRate()});
  }
  printTableAndCsv(table,
                   {"policy", "omega_mean", "omega_sd", "cost_mean",
                    "cost_sd", "theta_mean", "theta_sd", "success"},
                   csv);

  std::cout << "Reading: the adaptive policies' constraint satisfaction is "
               "robust across\nseeds (met% at or near 100), and the "
               "global-beats-local Theta ordering holds\nbeyond one "
               "trajectory's noise.\n";
  return 0;
}
