// Ablation bench for the design choices DESIGN.md calls out:
//  (a) global deployment-time repacking (Table 1's RepackPE + iterative
//      repacking) on vs off;
//  (b) empty-VM release policy: immediate vs at the paid hour boundary;
//  (c) the Alg. 2 stage cadences n_a (alternate period) and n_r (resource
//      period);
//  (d) the throughput tolerance epsilon.
// Each section runs the global heuristic on the Fig. 1 dataflow under
// data + infrastructure variability and reports Omega / cost / Theta.
#include "bench_util.hpp"

namespace {

using namespace dds;
using namespace dds::bench;

struct Row {
  std::string label;
  ExperimentResult result;
};

ExperimentResult runWith(const Dataflow& df, HeuristicOptions opts,
                         double rate, IntervalIndex alternate_period = 2,
                         IntervalIndex resource_period = 1,
                         double smoothing_alpha = 1.0) {
  // Mirrors SimulationEngine::run for GlobalAdaptive but with custom
  // HeuristicOptions, which the engine does not expose.
  ExperimentConfig cfg;
  cfg.horizon_s = 4.0 * kSecondsPerHour;
  cfg.workload.mean_rate = rate;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.seed = 2013;
  cfg.alternate_period = alternate_period;
  cfg.resource_period = resource_period;
  cfg.validate();

  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::futureGridLike(cfg.seed);
  MonitoringService monitor(cloud, replayer);
  ProbeHistory probes(monitor, smoothing_alpha);
  SimConfig sim_cfg;
  sim_cfg.interval_s = cfg.interval_s;

  SchedulerEnv env;
  env.dataflow = &df;
  env.cloud = &cloud;
  env.monitor = &monitor;
  if (smoothing_alpha < 1.0) env.probes = &probes;
  env.sim_config = sim_cfg;
  env.omega_target = cfg.omega_target;
  env.epsilon = cfg.epsilon;

  opts.alternate_period = alternate_period;
  opts.resource_period = resource_period;
  HeuristicScheduler scheduler(env, Strategy::Global, opts);

  const auto profile =
      makeProfile(cfg.workload.profile, cfg.workload.mean_rate, cfg.horizon_s,
                  cfg.seed ^ 0x5bd1e995u);
  const IntervalClock clock(cfg.interval_s, cfg.horizon_s);
  Deployment deployment = scheduler.deploy(profile->rate(0.0));
  DataflowSimulator simulator(df, cloud, monitor, sim_cfg);

  ExperimentResult result;
  result.scheduler_name = scheduler.name();
  result.sigma = deriveSigma(df, cfg.workload.mean_rate, cfg.horizon_s);
  double omega_sum = 0.0;
  IntervalMetrics last{};
  for (IntervalIndex i = 0; i < clock.intervalCount(); ++i) {
    const SimTime now = clock.startOf(i);
    if (env.probes != nullptr) probes.probe(now);
    if (i > 0) {
      ObservedState state;
      state.interval = i;
      state.now = now;
      state.input_rate = profile->rate(clock.startOf(i - 1));
      state.average_omega = omega_sum / static_cast<double>(i);
      state.last_interval = &last;
      for (const MigrationEvent& ev : scheduler.adapt(state, deployment)) {
        simulator.migrateBacklog(ev.pe, ev.backlog_fraction);
      }
    }
    last = simulator.step(i, profile->rate(now), deployment);
    omega_sum += last.omega;
    result.run.add(last);
  }
  result.average_omega = result.run.averageOmega();
  result.average_gamma = result.run.averageGamma();
  result.total_cost = cloud.accumulatedCost(cfg.horizon_s);
  result.theta = result.average_gamma - result.sigma * result.total_cost;
  result.constraint_met =
      result.run.meetsThroughputConstraint(cfg.omega_target, cfg.epsilon);
  return result;
}

void printRows(const std::string& caption, const std::vector<Row>& rows) {
  std::cout << caption << '\n';
  TextTable table({"variant", "omega", "met", "cost$", "theta"});
  for (const auto& row : rows) {
    table.addRow({row.label, TextTable::num(row.result.average_omega),
                  constraintMark(row.result),
                  TextTable::num(row.result.total_cost, 2),
                  TextTable::num(row.result.theta)});
  }
  std::cout << table.render() << '\n';
}

}  // namespace

int main() {
  using namespace dds;
  using namespace dds::bench;

  printHeader("Ablations",
              "design-choice ablations for the global heuristic "
              "(20 msg/s wave + infra variability, 4 h)");
  const Dataflow df = makePaperDataflow();
  const double rate = 20.0;

  {
    // Repacking matters most when deployments are small and fragmented,
    // so this ablation runs at both ends of the rate sweep.
    std::vector<Row> rows;
    for (const double r : {2.0, rate}) {
      HeuristicOptions on;
      rows.push_back({"repacking on,  " + TextTable::num(r, 0) + " msg/s",
                      runWith(df, on, r)});
      HeuristicOptions off;
      off.enable_repacking = false;
      rows.push_back({"repacking off, " + TextTable::num(r, 0) + " msg/s",
                      runWith(df, off, r)});
    }
    printRows("(a) deployment-time repacking:", rows);
  }
  {
    std::vector<Row> rows;
    HeuristicOptions boundary;
    boundary.release_policy_override =
        ResourceAllocator::ReleasePolicy::AtHourBoundary;
    rows.push_back({"release at hour boundary", runWith(df, boundary, rate)});
    HeuristicOptions immediate;
    immediate.release_policy_override =
        ResourceAllocator::ReleasePolicy::Immediate;
    rows.push_back({"release immediately", runWith(df, immediate, rate)});
    printRows("(b) empty-VM release policy:", rows);
  }
  {
    std::vector<Row> rows;
    for (const IntervalIndex na : {1, 2, 5, 10}) {
      rows.push_back({"n_a = " + std::to_string(na),
                      runWith(df, {}, rate, na, 1)});
    }
    printRows("(c) alternate-selection cadence n_a (n_r = 1):", rows);
  }
  {
    std::vector<Row> rows;
    for (const IntervalIndex nr : {1, 2, 5, 10}) {
      rows.push_back({"n_r = " + std::to_string(nr),
                      runWith(df, {}, rate, 2, nr)});
    }
    printRows("(d) resource-allocation cadence n_r (n_a = 2):", rows);
  }
  {
    std::vector<Row> rows;
    for (const double alpha : {1.0, 0.5, 0.25, 0.1}) {
      rows.push_back({"alpha = " + TextTable::num(alpha, 2),
                      runWith(df, {}, rate, 2, 1, alpha)});
    }
    printRows("(e) probe smoothing (EWMA alpha; 1.0 = raw probes):", rows);
  }

  std::cout << "Reading: boundary-timed releases shave real dollars at no "
               "QoS cost, and\nrepacking helps when deployments are small "
               "and fragmented. The alternate stage\nmust stay fast "
               "(slowing n_a forfeits the cheap-alternate savings); the\n"
               "resource stage tolerates a slower cadence on slow-moving "
               "workloads, where\nless churn even saves hourly-billed "
               "acquisitions.\n";
  return 0;
}
