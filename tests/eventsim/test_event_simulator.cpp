#include "dds/eventsim/event_simulator.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/standard_graphs.hpp"
#include "dds/sched/heuristic_scheduler.hpp"
#include "dds/sim/simulator.hpp"

namespace dds {
namespace {

/// src (cost 0.1, sel 1) -> sink (cost 0.1, sel 1).
Dataflow makePipeline() {
  DataflowBuilder b("pipe");
  const PeId a = b.addPe("src", {{"src", 1.0, 0.1, 1.0}});
  const PeId c = b.addPe("sink", {{"sink", 1.0, 0.1, 1.0}});
  b.addEdge(a, c);
  return std::move(b).build();
}

struct Fixture {
  explicit Fixture(Dataflow graph) : df(std::move(graph)) {}
  Dataflow df;
  CloudProvider cloud{awsCatalog2013()};
  TraceReplayer replayer = TraceReplayer::ideal();
  MonitoringService mon{cloud, replayer};

  void giveSmallCores(PeId pe, int n) {
    for (int i = 0; i < n; ++i) {
      const VmId vm = cloud.acquire(ResourceClassId(0), 0.0);
      cloud.instance(vm).allocateCore(pe);
    }
  }

  EventSimConfig cfg(SimTime horizon = 600.0) {
    EventSimConfig c;
    c.horizon_s = horizon;
    return c;
  }
};

TEST(EventSim, ConfigValidation) {
  EventSimConfig c;
  c.msg_size_bytes = 0.0;
  EXPECT_THROW(c.validate(), PreconditionError);
  c = {};
  c.horizon_s = 10.0;
  c.interval_s = 60.0;
  EXPECT_THROW(c.validate(), PreconditionError);
  c = {};
  c.max_latency_samples = 0;
  EXPECT_THROW(c.validate(), PreconditionError);
}

TEST(EventSim, DeliversEveryMessageWhenUnderloaded) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);  // 10 msg/s capacity each
  f.giveSmallCores(PeId(1), 1);
  EventSimulator sim(f.df, f.cloud, f.mon, f.cfg());
  ConstantRate profile(2.0);  // well under capacity
  Deployment dep(f.df);
  const auto r = sim.run(profile, dep, nullptr);
  EXPECT_GT(r.messages_injected, 1000u);  // ~1200 over 600 s
  // Everything injected early enough gets delivered (tail may be in
  // flight at the horizon).
  EXPECT_GE(r.messages_delivered,
            static_cast<std::size_t>(0.98 *
                                     static_cast<double>(
                                         r.messages_injected)));
  EXPECT_GE(r.intervals.averageOmega(), 0.9);
}

TEST(EventSim, LatencyNearServiceTimeWhenIdle) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 2);
  f.giveSmallCores(PeId(1), 2);
  EventSimConfig cfg = f.cfg();
  cfg.poisson_arrivals = false;  // deterministic, no queueing noise
  EventSimulator sim(f.df, f.cloud, f.mon, cfg);
  ConstantRate profile(1.0);
  Deployment dep(f.df);
  const auto r = sim.run(profile, dep, nullptr);
  ASSERT_GT(r.messages_delivered, 0u);
  // Two stages of 0.1 s service on speed-1 cores: ~0.2 s end to end.
  EXPECT_NEAR(r.latency.mean(), 0.2, 0.05);
  EXPECT_NEAR(r.latencyPercentile(50.0), 0.2, 0.05);
}

TEST(EventSim, OverloadQueuesAndLowersOmega) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);  // capacity 10 msg/s
  f.giveSmallCores(PeId(1), 1);
  EventSimulator sim(f.df, f.cloud, f.mon, f.cfg());
  ConstantRate profile(20.0);  // 2x overload
  Deployment dep(f.df);
  const auto r = sim.run(profile, dep, nullptr);
  EXPECT_NEAR(r.intervals.averageOmega(), 0.5, 0.1);
  // The source's queue holds roughly the excess.
  const auto& final_stats = r.intervals.intervals().back().pe_stats[0];
  EXPECT_GT(final_stats.backlog_msgs, 100.0);
}

TEST(EventSim, LatencyGrowsUnderLoad) {
  Fixture light(makePipeline());
  light.giveSmallCores(PeId(0), 2);
  light.giveSmallCores(PeId(1), 2);
  EventSimulator sim_light(light.df, light.cloud, light.mon, light.cfg());
  Deployment dep_light(light.df);
  const auto idle =
      sim_light.run(ConstantRate(2.0), dep_light, nullptr);

  Fixture heavy(makePipeline());
  heavy.giveSmallCores(PeId(0), 2);
  heavy.giveSmallCores(PeId(1), 2);
  EventSimulator sim_heavy(heavy.df, heavy.cloud, heavy.mon, heavy.cfg());
  Deployment dep_heavy(heavy.df);
  // 95% utilization: queueing delay dominates.
  const auto busy =
      sim_heavy.run(ConstantRate(19.0), dep_heavy, nullptr);

  EXPECT_GT(busy.latency.mean(), 2.0 * idle.latency.mean());
}

TEST(EventSim, SelectivityAmplifiesDownstreamArrivals) {
  Fixture f(makeDiamondDataflow());  // branch "b" has selectivity 2
  for (std::uint32_t i = 0; i < 4; ++i) f.giveSmallCores(PeId(i), 4);
  EventSimConfig cfg = f.cfg();
  cfg.poisson_arrivals = false;
  EventSimulator sim(f.df, f.cloud, f.mon, cfg);
  Deployment dep(f.df);
  const auto r = sim.run(ConstantRate(4.0), dep, nullptr);
  // Sink sees src copies via a (4/s) and doubled via b (8/s) = 12/s.
  const auto& last = r.intervals.intervals().back();
  EXPECT_NEAR(last.pe_stats[3].arrival_rate, 12.0, 1.0);
}

TEST(EventSim, FractionalSelectivityAveragesOut) {
  DataflowBuilder b("half");
  const PeId a = b.addPe("a", {{"a", 1.0, 0.05, 0.5}});
  const PeId c = b.addPe("b", {{"b", 1.0, 0.05, 1.0}});
  b.addEdge(a, c);
  Fixture f(std::move(b).build());
  f.giveSmallCores(PeId(0), 1);
  f.giveSmallCores(PeId(1), 1);
  EventSimConfig cfg = f.cfg();
  cfg.poisson_arrivals = false;
  EventSimulator sim(f.df, f.cloud, f.mon, cfg);
  Deployment dep(f.df);
  const auto r = sim.run(ConstantRate(8.0), dep, nullptr);
  const auto& last = r.intervals.intervals().back();
  EXPECT_NEAR(last.pe_stats[1].arrival_rate, 4.0, 0.5);
}

TEST(EventSim, DeterministicForSeed) {
  Fixture f1(makePipeline());
  f1.giveSmallCores(PeId(0), 1);
  f1.giveSmallCores(PeId(1), 1);
  Fixture f2(makePipeline());
  f2.giveSmallCores(PeId(0), 1);
  f2.giveSmallCores(PeId(1), 1);
  EventSimulator a(f1.df, f1.cloud, f1.mon, f1.cfg());
  EventSimulator b(f2.df, f2.cloud, f2.mon, f2.cfg());
  Deployment d1(f1.df), d2(f2.df);
  const auto ra = a.run(ConstantRate(5.0), d1, nullptr);
  const auto rb = b.run(ConstantRate(5.0), d2, nullptr);
  EXPECT_EQ(ra.messages_injected, rb.messages_injected);
  EXPECT_EQ(ra.messages_delivered, rb.messages_delivered);
  EXPECT_DOUBLE_EQ(ra.latency.mean(), rb.latency.mean());
}

TEST(EventSim, NoCoresMeansNothingDelivered) {
  Fixture f(makePipeline());
  EventSimulator sim(f.df, f.cloud, f.mon, f.cfg());
  Deployment dep(f.df);
  const auto r = sim.run(ConstantRate(5.0), dep, nullptr);
  EXPECT_EQ(r.messages_delivered, 0u);
  EXPECT_GT(r.messages_injected, 0u);
  EXPECT_NEAR(r.intervals.averageOmega(), 0.0, 1e-9);
}

TEST(EventSim, CrossValidatesWithFluidSimulator) {
  // Same deployment, same constant rate: the fluid and event simulators
  // must agree on average throughput within a few percent.
  for (const double rate : {4.0, 10.0, 16.0}) {
    Fixture fe(makePipeline());
    fe.giveSmallCores(PeId(0), 1);
    fe.giveSmallCores(PeId(1), 1);
    EventSimConfig cfg = fe.cfg(1200.0);
    cfg.poisson_arrivals = false;
    EventSimulator esim(fe.df, fe.cloud, fe.mon, cfg);
    Deployment edep(fe.df);
    const auto er = esim.run(ConstantRate(rate), edep, nullptr);

    Fixture ff(makePipeline());
    ff.giveSmallCores(PeId(0), 1);
    ff.giveSmallCores(PeId(1), 1);
    DataflowSimulator fsim(ff.df, ff.cloud, ff.mon, {});
    Deployment fdep(ff.df);
    double omega_sum = 0.0;
    for (IntervalIndex i = 0; i < 20; ++i) {
      omega_sum += fsim.step(i, rate, fdep).omega;
    }
    const double fluid_omega = omega_sum / 20.0;
    EXPECT_NEAR(er.intervals.averageOmega(), fluid_omega, 0.08)
        << "rate " << rate;
  }
}

TEST(EventSim, AdaptiveSchedulerScalesOutUnderSurge) {
  Fixture f(makePaperDataflow());
  SchedulerEnv env;
  env.dataflow = &f.df;
  env.cloud = &f.cloud;
  env.monitor = &f.mon;
  HeuristicScheduler sched(env, Strategy::Global);
  Deployment dep = sched.deploy(2.0);
  const int cores_at_deploy = totalAllocatedCores(f.cloud);

  EventSimConfig cfg = f.cfg(1200.0);
  EventSimulator sim(f.df, f.cloud, f.mon, cfg);
  // 4x the estimated rate: adaptation must add cores.
  const auto r = sim.run(ConstantRate(8.0), std::move(dep), &sched);
  EXPECT_GT(totalAllocatedCores(f.cloud), cores_at_deploy);
  EXPECT_GT(r.intervals.intervals().back().omega, 0.6);
}

TEST(EventSim, LatencyPercentileRequiresSamples) {
  EventSimResult r;
  EXPECT_THROW((void)r.latencyPercentile(50.0), PreconditionError);
}

TEST(EventSim, RemoteEdgesAddTransferDelay) {
  // Same pipeline, same cores: colocated vs split across two VMs. The
  // split deployment pays latency + serialization per hop.
  const Dataflow df = makePipeline();
  auto meanLatency = [&df](bool colocate) {
    CloudProvider cloud(awsCatalog2013());
    TraceReplayer replayer = TraceReplayer::ideal();
    MonitoringService mon(cloud, replayer);
    if (colocate) {
      const VmId vm = cloud.acquire(ResourceClassId(3), 0.0);
      cloud.instance(vm).allocateCore(PeId(0));
      cloud.instance(vm).allocateCore(PeId(1));
    } else {
      const VmId a = cloud.acquire(ResourceClassId(1), 0.0);
      const VmId b = cloud.acquire(ResourceClassId(1), 0.0);
      cloud.instance(a).allocateCore(PeId(0));
      cloud.instance(b).allocateCore(PeId(1));
    }
    EventSimConfig cfg;
    cfg.horizon_s = 600.0;
    cfg.poisson_arrivals = false;
    EventSimulator sim(df, cloud, mon, cfg);
    Deployment dep(df);
    return sim.run(ConstantRate(2.0), dep, nullptr).latency.mean();
  };
  const double colocated = meanLatency(true);
  const double split = meanLatency(false);
  // 100 KB over 100 Mbps = 8 ms plus 1 ms latency per remote hop.
  EXPECT_GT(split, colocated + 0.005);
  EXPECT_LT(split, colocated + 0.05);
}

TEST(EventSim, QueueWaitBreakdownFindsBottleneck) {
  const Dataflow df = makePipeline();
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 4);  // ample
  f.giveSmallCores(PeId(1), 1);  // the bottleneck: 10 msg/s capacity
  EventSimulator sim(f.df, f.cloud, f.mon, f.cfg());
  Deployment dep(f.df);
  const auto r = sim.run(ConstantRate(15.0), dep, nullptr);
  ASSERT_EQ(r.pe_queue_wait.size(), 2u);
  EXPECT_EQ(r.worstQueueingPe(), PeId(1));
  EXPECT_GT(r.pe_queue_wait[1].mean(), r.pe_queue_wait[0].mean());
}

TEST(EventSim, QueueWaitNearZeroWhenIdle) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 2);
  f.giveSmallCores(PeId(1), 2);
  EventSimConfig cfg = f.cfg();
  cfg.poisson_arrivals = false;
  EventSimulator sim(f.df, f.cloud, f.mon, cfg);
  Deployment dep(f.df);
  const auto r = sim.run(ConstantRate(1.0), dep, nullptr);
  EXPECT_LT(r.pe_queue_wait[0].mean(), 0.01);
}

class EventSimRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(EventSimRateSweep, OmegaMatchesCapacityRatio) {
  Fixture f(makePipeline());
  f.giveSmallCores(PeId(0), 1);  // 10 msg/s
  f.giveSmallCores(PeId(1), 1);
  EventSimConfig cfg = f.cfg(1200.0);
  cfg.poisson_arrivals = false;
  EventSimulator sim(f.df, f.cloud, f.mon, cfg);
  Deployment dep(f.df);
  const double rate = GetParam();
  const auto r = sim.run(ConstantRate(rate), dep, nullptr);
  const double expected_omega = std::min(1.0, 10.0 / rate);
  EXPECT_NEAR(r.intervals.averageOmega(), expected_omega, 0.08)
      << "rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, EventSimRateSweep,
                         ::testing::Values(2.0, 5.0, 9.0, 12.0, 20.0,
                                           40.0));

}  // namespace
}  // namespace dds
