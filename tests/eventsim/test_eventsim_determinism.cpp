// Bit-identity, determinism, and golden-trace coverage for the event
// simulator's cached engine, plus unit tests for the indexed event heap
// and the latency-sample reservoir. The cached engine is a memoization
// of the reference engine, not an approximation: every latency sample,
// counter, interval metric — and the trace bytes of an engine run —
// must match byte-for-byte.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/eventsim/event_heap.hpp"
#include "dds/eventsim/event_simulator.hpp"
#include "dds/obs/jsonl_sink.hpp"
#include "dds/sched/heuristic_scheduler.hpp"

namespace dds {
namespace {

// --- EventHeap -------------------------------------------------------------

TEST(EventHeap, PopsInTimeOrder) {
  EventHeap h;
  h.push(3.0, EventKind::Arrival, PeId(0), VmId(0), 0, 0.0, 0.0);
  h.push(1.0, EventKind::Arrival, PeId(1), VmId(0), 0, 0.0, 0.0);
  h.push(2.0, EventKind::Arrival, PeId(2), VmId(0), 0, 0.0, 0.0);
  EXPECT_EQ(h.popTop().pe, PeId(1));
  EXPECT_EQ(h.popTop().pe, PeId(2));
  EXPECT_EQ(h.popTop().pe, PeId(0));
  EXPECT_TRUE(h.empty());
}

TEST(EventHeap, EqualTimesPopKindThenFifo) {
  EventHeap h;
  // Same timestamp: kind priority (Arrival < Delivery < Completion),
  // then insertion order within a kind.
  h.push(5.0, EventKind::Completion, PeId(10), VmId(0), 0, 0.0, 0.0);
  h.push(5.0, EventKind::Delivery, PeId(11), VmId(0), 0, 0.0, 0.0);
  h.push(5.0, EventKind::Arrival, PeId(12), VmId(0), 0, 0.0, 0.0);
  h.push(5.0, EventKind::Delivery, PeId(13), VmId(0), 0, 0.0, 0.0);
  EXPECT_EQ(h.popTop().pe, PeId(12));
  EXPECT_EQ(h.popTop().pe, PeId(11));
  EXPECT_EQ(h.popTop().pe, PeId(13));
  EXPECT_EQ(h.popTop().pe, PeId(10));
}

TEST(EventHeap, RemoveDiscardsArbitrarySlot) {
  EventHeap h;
  (void)h.push(1.0, EventKind::Arrival, PeId(1), VmId(0), 0, 0.0, 0.0);
  const EventHeap::Slot middle =
      h.push(2.0, EventKind::Arrival, PeId(2), VmId(0), 0, 0.0, 0.0);
  (void)h.push(3.0, EventKind::Arrival, PeId(3), VmId(0), 0, 0.0, 0.0);
  h.remove(middle);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.popTop().pe, PeId(1));
  EXPECT_EQ(h.popTop().pe, PeId(3));
}

TEST(EventHeap, RecyclesPooledRecords) {
  EventHeap h;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      h.push(static_cast<double>(100 - i), EventKind::Completion, PeId(0),
             VmId(0), i, 0.0, 0.0);
    }
    double prev = 0.0;
    while (!h.empty()) {
      const PooledEvent ev = h.popTop();
      EXPECT_GE(ev.time, prev);
      prev = ev.time;
    }
  }
  // Three rounds of 100 events reuse the same 100 pooled records.
  EXPECT_LE(h.poolCapacity(), 100u);
}

// --- cached engine == reference engine -------------------------------------

EventSimResult runEngine(const Dataflow& df, double rate, bool adaptive,
                         EventSimConfig::Engine engine) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer replayer = TraceReplayer::futureGridLike(2013);
  MonitoringService mon(cloud, replayer);
  SchedulerEnv env;
  env.dataflow = &df;
  env.cloud = &cloud;
  env.monitor = &mon;
  HeuristicOptions opts;
  opts.adaptive = adaptive;
  HeuristicScheduler sched(env, Strategy::Global, opts);

  EventSimConfig cfg;
  cfg.horizon_s = 300.0;
  cfg.seed = 7;
  cfg.engine = engine;
  EventSimulator sim(df, cloud, mon, cfg);
  PeriodicWaveRate profile(rate, 0.4 * rate, 300.0, 0.0);
  Deployment dep = sched.deploy(profile.rate(0.0));
  return sim.run(profile, std::move(dep), adaptive ? &sched : nullptr);
}

TEST(EventSimIdentity, CachedMatchesReferenceStatic) {
  const Dataflow df = makePaperDataflow();
  const EventSimResult ref =
      runEngine(df, 20.0, false, EventSimConfig::Engine::Reference);
  const EventSimResult cached =
      runEngine(df, 20.0, false, EventSimConfig::Engine::Cached);
  EXPECT_EQ(fingerprint(ref), fingerprint(cached));
  EXPECT_GT(cached.counters.drained(), 0u);
}

TEST(EventSimIdentity, CachedMatchesReferenceAdaptive) {
  // Adaptation reallocates cores mid-run: the ledger generation moves and
  // every cache layer must invalidate at exactly the right events.
  const Dataflow df = makePaperDataflow();
  const EventSimResult ref =
      runEngine(df, 25.0, true, EventSimConfig::Engine::Reference);
  const EventSimResult cached =
      runEngine(df, 25.0, true, EventSimConfig::Engine::Cached);
  EXPECT_EQ(fingerprint(ref), fingerprint(cached));
  EXPECT_GT(cached.counters.core_index_rebuilds, 1u);
}

TEST(EventSimIdentity, SameSeedSameEngineIsDeterministic) {
  const Dataflow df = makeChainDataflow(4, 2);
  const EventSimResult a =
      runEngine(df, 15.0, true, EventSimConfig::Engine::Cached);
  const EventSimResult b =
      runEngine(df, 15.0, true, EventSimConfig::Engine::Cached);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

// --- golden engine trace ---------------------------------------------------

std::string readFixture(const std::string& name) {
  const std::string path = std::string(DDS_EVENTSIM_TESTDATA) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string runTracedEventBackend(bool reference_engine) {
  ExperimentConfig cfg;
  cfg.horizon_s = 10.0 * kSecondsPerMinute;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.seed = 77;
  cfg.backend = SimBackend::Event;
  cfg.event_reference_engine = reference_engine;
  const Dataflow df = makePaperDataflow();
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  (void)SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive, &sink);
  return out.str();
}

TEST(EventSimGolden, CachedEngineTraceByteIdentical) {
  EXPECT_EQ(runTracedEventBackend(false),
            readFixture("golden_eventsim_trace.jsonl"));
}

TEST(EventSimGolden, ReferenceEngineTraceByteIdentical) {
  // Same fixture on purpose: the two engines must emit the same bytes.
  EXPECT_EQ(runTracedEventBackend(true),
            readFixture("golden_eventsim_trace.jsonl"));
}

// --- latency-sample reservoir ----------------------------------------------

TEST(EventSimReservoir, CappedRunKeepsPercentilesAndArrivals) {
  const Dataflow df = makePaperDataflow();
  auto run = [&](std::size_t cap) {
    CloudProvider cloud(awsCatalog2013());
    TraceReplayer replayer = TraceReplayer::futureGridLike(2013);
    MonitoringService mon(cloud, replayer);
    SchedulerEnv env;
    env.dataflow = &df;
    env.cloud = &cloud;
    env.monitor = &mon;
    HeuristicScheduler sched(env, Strategy::Global, HeuristicOptions{});
    EventSimConfig cfg;
    cfg.horizon_s = 300.0;
    cfg.seed = 11;
    cfg.max_latency_samples = cap;
    EventSimulator sim(df, cloud, mon, cfg);
    ConstantRate profile(20.0);
    Deployment dep = sched.deploy(20.0);
    return sim.run(profile, std::move(dep), nullptr);
  };
  const EventSimResult uncapped = run(1u << 30);
  const EventSimResult capped = run(500);

  ASSERT_GT(uncapped.latency_samples.size(), 2000u);
  ASSERT_EQ(capped.latency_samples.size(), 500u);
  // The reservoir draws from a dedicated RNG stream: arrivals (and the
  // full-population latency moments) must be unaffected by the cap.
  EXPECT_EQ(capped.messages_injected, uncapped.messages_injected);
  EXPECT_EQ(capped.latency.count(), uncapped.latency.count());
  EXPECT_DOUBLE_EQ(capped.latency.mean(), uncapped.latency.mean());
  // A uniform 500-sample reservoir estimates the population percentiles;
  // tolerance scales with the spread of the distribution.
  const double spread =
      uncapped.latencyPercentile(95) - uncapped.latencyPercentile(5);
  for (const double p : {50.0, 90.0, 95.0}) {
    EXPECT_NEAR(capped.latencyPercentile(p), uncapped.latencyPercentile(p),
                0.25 * spread)
        << "p" << p;
  }
}

// --- worstQueueingPe -------------------------------------------------------

TEST(EventSimWorstQueue, AllIdleReturnsPeZero) {
  EventSimResult r;
  r.pe_queue_wait.assign(4, RunningStats{});
  EXPECT_EQ(r.worstQueueingPe(), PeId(0));
}

TEST(EventSimWorstQueue, SkipsIdlePesWithEmptyStats) {
  // PE 2 is the only one that ever queued; an empty RunningStats mean()
  // must not decide the winner.
  EventSimResult r;
  r.pe_queue_wait.assign(4, RunningStats{});
  r.pe_queue_wait[2].add(0.25);
  EXPECT_EQ(r.worstQueueingPe(), PeId(2));

  // A busier PE with a larger mean wait takes over.
  r.pe_queue_wait[1].add(3.0);
  EXPECT_EQ(r.worstQueueingPe(), PeId(1));
}

}  // namespace
}  // namespace dds
