#include "dds/dataflow/dataflow.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dds/common/error.hpp"

namespace dds {
namespace {

std::vector<Alternate> oneAlt(const std::string& name) {
  return {{name, 1.0, 0.1, 1.0}};
}

TEST(DataflowBuilder, BuildsLinearPipeline) {
  DataflowBuilder b("pipe");
  const PeId a = b.addPe("a", oneAlt("a0"));
  const PeId c = b.addPe("b", oneAlt("b0"));
  b.addEdge(a, c);
  const Dataflow df = std::move(b).build();
  EXPECT_EQ(df.name(), "pipe");
  EXPECT_EQ(df.peCount(), 2u);
  EXPECT_EQ(df.edgeCount(), 1u);
  ASSERT_EQ(df.inputs().size(), 1u);
  ASSERT_EQ(df.outputs().size(), 1u);
  EXPECT_EQ(df.inputs()[0], a);
  EXPECT_EQ(df.outputs()[0], c);
  EXPECT_TRUE(df.isInput(a));
  EXPECT_FALSE(df.isInput(c));
  EXPECT_TRUE(df.isOutput(c));
}

TEST(DataflowBuilder, AdjacencyIsConsistent) {
  DataflowBuilder b("fan");
  const PeId src = b.addPe("src", oneAlt("s"));
  const PeId l = b.addPe("l", oneAlt("l"));
  const PeId r = b.addPe("r", oneAlt("r"));
  b.addEdge(src, l);
  b.addEdge(src, r);
  const Dataflow df = std::move(b).build();
  EXPECT_EQ(df.successors(src).size(), 2u);
  EXPECT_EQ(df.predecessors(l).size(), 1u);
  EXPECT_EQ(df.predecessors(l)[0], src);
  EXPECT_EQ(df.predecessors(r)[0], src);
}

TEST(DataflowBuilder, RejectsEmptyGraph) {
  DataflowBuilder b("empty");
  EXPECT_THROW((void)std::move(b).build(), PreconditionError);
}

TEST(DataflowBuilder, RejectsSelfLoop) {
  DataflowBuilder b("loop");
  const PeId a = b.addPe("a", oneAlt("a"));
  EXPECT_THROW(b.addEdge(a, a), PreconditionError);
}

TEST(DataflowBuilder, RejectsDuplicateEdge) {
  DataflowBuilder b("dup");
  const PeId a = b.addPe("a", oneAlt("a"));
  const PeId c = b.addPe("b", oneAlt("b"));
  b.addEdge(a, c);
  EXPECT_THROW(b.addEdge(a, c), PreconditionError);
}

TEST(DataflowBuilder, RejectsUnknownEndpoints) {
  DataflowBuilder b("bad");
  const PeId a = b.addPe("a", oneAlt("a"));
  EXPECT_THROW(b.addEdge(a, PeId(9)), PreconditionError);
  EXPECT_THROW(b.addEdge(PeId(9), a), PreconditionError);
}

TEST(DataflowBuilder, RejectsCycle) {
  DataflowBuilder b("cycle");
  const PeId a = b.addPe("a", oneAlt("a"));
  const PeId c = b.addPe("b", oneAlt("b"));
  const PeId d = b.addPe("c", oneAlt("c"));
  b.addEdge(a, c);
  b.addEdge(c, d);
  b.addEdge(d, a);
  EXPECT_THROW((void)std::move(b).build(), PreconditionError);
}

TEST(DataflowBuilder, RejectsPeWithoutAlternates) {
  DataflowBuilder b("noalt");
  EXPECT_THROW(b.addPe("a", {}), PreconditionError);
}

TEST(DataflowBuilder, RejectsUnnamedDataflow) {
  EXPECT_THROW(DataflowBuilder(""), PreconditionError);
}

TEST(DataflowBuilder, DisconnectedComponentIsItsOwnSourceSoItBuilds) {
  // Two independent pipelines: both sources are input PEs, so every PE is
  // reachable from the input set and the build succeeds.
  DataflowBuilder b("two-islands");
  const PeId a = b.addPe("a", oneAlt("a"));
  const PeId c = b.addPe("b", oneAlt("b"));
  const PeId d = b.addPe("c", oneAlt("c"));
  const PeId e = b.addPe("d", oneAlt("d"));
  b.addEdge(a, c);
  b.addEdge(d, e);
  const Dataflow df = std::move(b).build();
  EXPECT_EQ(df.inputs().size(), 2u);
  EXPECT_EQ(df.outputs().size(), 2u);
}

TEST(Dataflow, TopologicalOrderRespectsEdges) {
  DataflowBuilder b("diamond");
  const PeId s = b.addPe("s", oneAlt("s"));
  const PeId l = b.addPe("l", oneAlt("l"));
  const PeId r = b.addPe("r", oneAlt("r"));
  const PeId t = b.addPe("t", oneAlt("t"));
  b.addEdge(s, l);
  b.addEdge(s, r);
  b.addEdge(l, t);
  b.addEdge(r, t);
  const Dataflow df = std::move(b).build();
  const auto& order = df.topologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&order](PeId id) {
    return std::distance(order.begin(),
                         std::find(order.begin(), order.end(), id));
  };
  EXPECT_LT(pos(s), pos(l));
  EXPECT_LT(pos(s), pos(r));
  EXPECT_LT(pos(l), pos(t));
  EXPECT_LT(pos(r), pos(t));
}

TEST(Dataflow, ForwardBfsStartsAtInputs) {
  DataflowBuilder b("bfs");
  const PeId s = b.addPe("s", oneAlt("s"));
  const PeId m = b.addPe("m", oneAlt("m"));
  const PeId t = b.addPe("t", oneAlt("t"));
  b.addEdge(s, m);
  b.addEdge(m, t);
  const Dataflow df = std::move(b).build();
  const auto order = df.forwardBfsFromInputs();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], s);
  EXPECT_EQ(order[1], m);
  EXPECT_EQ(order[2], t);
}

TEST(Dataflow, ReverseBfsStartsAtOutputs) {
  DataflowBuilder b("rbfs");
  const PeId s = b.addPe("s", oneAlt("s"));
  const PeId m = b.addPe("m", oneAlt("m"));
  const PeId t = b.addPe("t", oneAlt("t"));
  b.addEdge(s, m);
  b.addEdge(m, t);
  const Dataflow df = std::move(b).build();
  const auto order = df.reverseBfsFromOutputs();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], t);
  EXPECT_EQ(order[1], m);
  EXPECT_EQ(order[2], s);
}

TEST(Dataflow, TotalAlternateCountSums) {
  DataflowBuilder b("alts");
  b.addPe("a", {{"a1", 1.0, 0.1, 1.0}, {"a2", 0.5, 0.05, 1.0}});
  b.addPe("b", oneAlt("b1"));
  const Dataflow df = std::move(b).build();
  EXPECT_EQ(df.totalAlternateCount(), 3u);
}

TEST(Dataflow, PeAccessOutOfRangeThrows) {
  DataflowBuilder b("one");
  b.addPe("a", oneAlt("a"));
  const Dataflow df = std::move(b).build();
  EXPECT_THROW((void)df.pe(PeId(5)), PreconditionError);
  EXPECT_THROW((void)df.successors(PeId(5)), PreconditionError);
  EXPECT_THROW((void)df.predecessors(PeId(5)), PreconditionError);
}

}  // namespace
}  // namespace dds
