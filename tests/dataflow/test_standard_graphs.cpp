#include "dds/dataflow/standard_graphs.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

TEST(PaperDataflow, MatchesFig1Shape) {
  const Dataflow df = makePaperDataflow();
  EXPECT_EQ(df.peCount(), 4u);
  EXPECT_EQ(df.edgeCount(), 4u);
  ASSERT_EQ(df.inputs().size(), 1u);
  ASSERT_EQ(df.outputs().size(), 1u);
  // E1 fans out to both E2 and E3 (and-split), E4 merges them.
  const PeId e1 = df.inputs()[0];
  const PeId e4 = df.outputs()[0];
  EXPECT_EQ(df.successors(e1).size(), 2u);
  EXPECT_EQ(df.predecessors(e4).size(), 2u);
}

TEST(PaperDataflow, MiddlePesHaveTwoAlternates) {
  const Dataflow df = makePaperDataflow();
  EXPECT_EQ(df.pe(PeId(0)).alternateCount(), 1u);  // E1
  EXPECT_EQ(df.pe(PeId(1)).alternateCount(), 2u);  // E2
  EXPECT_EQ(df.pe(PeId(2)).alternateCount(), 2u);  // E3
  EXPECT_EQ(df.pe(PeId(3)).alternateCount(), 1u);  // E4
  EXPECT_EQ(df.totalAlternateCount(), 6u);
}

TEST(PaperDataflow, FastAlternatesAreCheaperAndLowerValue) {
  const Dataflow df = makePaperDataflow();
  for (const PeId id : {PeId(1), PeId(2)}) {
    const auto& accurate = df.pe(id).alternate(AlternateId(0));
    const auto& fast = df.pe(id).alternate(AlternateId(1));
    EXPECT_LT(fast.cost_core_sec, accurate.cost_core_sec);
    EXPECT_LT(fast.value, accurate.value);
  }
}

TEST(ChainDataflow, HasRequestedLength) {
  const Dataflow df = makeChainDataflow(5, 2);
  EXPECT_EQ(df.peCount(), 5u);
  EXPECT_EQ(df.edgeCount(), 4u);
  EXPECT_EQ(df.inputs().size(), 1u);
  EXPECT_EQ(df.outputs().size(), 1u);
  for (const auto& pe : df.pes()) EXPECT_EQ(pe.alternateCount(), 2u);
}

TEST(ChainDataflow, SinglePeChainIsBothInputAndOutput) {
  const Dataflow df = makeChainDataflow(1, 1);
  EXPECT_EQ(df.peCount(), 1u);
  EXPECT_TRUE(df.isInput(PeId(0)));
  EXPECT_TRUE(df.isOutput(PeId(0)));
}

TEST(ChainDataflow, RejectsZeroLengthOrZeroAlternates) {
  EXPECT_THROW((void)makeChainDataflow(0, 1), PreconditionError);
  EXPECT_THROW((void)makeChainDataflow(3, 0), PreconditionError);
}

TEST(DiamondDataflow, ShapeAndSelectivity) {
  const Dataflow df = makeDiamondDataflow();
  EXPECT_EQ(df.peCount(), 4u);
  // Branch "b" doubles the rate (selectivity 2).
  EXPECT_DOUBLE_EQ(df.pe(PeId(2)).alternate(AlternateId(0)).selectivity,
                   2.0);
}

class LayeredDataflowTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(LayeredDataflowTest, ValidDagOfExpectedSize) {
  const auto [layers, width, alts] = GetParam();
  Rng rng(7);
  const Dataflow df = makeLayeredDataflow(layers, width, alts, rng);
  // Source and sink layers are single PEs; middle layers have `width`.
  const std::size_t expected =
      2 + (layers - 2) * width;
  EXPECT_EQ(df.peCount(), expected);
  EXPECT_EQ(df.inputs().size(), 1u);
  EXPECT_EQ(df.outputs().size(), 1u);
  EXPECT_EQ(df.topologicalOrder().size(), df.peCount());
  for (const auto& pe : df.pes()) EXPECT_EQ(pe.alternateCount(), alts);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LayeredDataflowTest,
    ::testing::Values(std::tuple{2, 1, 1}, std::tuple{3, 2, 2},
                      std::tuple{4, 3, 3}, std::tuple{6, 5, 2},
                      std::tuple{10, 8, 4}));

TEST(LayeredDataflow, DeterministicForSameRngSeed) {
  Rng a(11), b(11);
  const Dataflow x = makeLayeredDataflow(4, 3, 2, a);
  const Dataflow y = makeLayeredDataflow(4, 3, 2, b);
  EXPECT_EQ(x.peCount(), y.peCount());
  EXPECT_EQ(x.edgeCount(), y.edgeCount());
  for (std::size_t i = 0; i < x.peCount(); ++i) {
    const PeId id(static_cast<PeId::value_type>(i));
    ASSERT_EQ(x.successors(id).size(), y.successors(id).size());
    EXPECT_DOUBLE_EQ(x.pe(id).alternate(AlternateId(0)).cost_core_sec,
                     y.pe(id).alternate(AlternateId(0)).cost_core_sec);
  }
}

TEST(LayeredDataflow, RejectsDegenerateShapes) {
  Rng rng(1);
  EXPECT_THROW((void)makeLayeredDataflow(1, 3, 1, rng), PreconditionError);
  EXPECT_THROW((void)makeLayeredDataflow(3, 0, 1, rng), PreconditionError);
  EXPECT_THROW((void)makeLayeredDataflow(3, 3, 0, rng), PreconditionError);
}

TEST(AggregationTree, BinaryTreeShape) {
  const Dataflow df = makeAggregationTreeDataflow(4, 2);
  // 4 leaves + 2 + 1 aggregators + dashboard = 8 PEs.
  EXPECT_EQ(df.peCount(), 8u);
  EXPECT_EQ(df.inputs().size(), 4u);
  EXPECT_EQ(df.outputs().size(), 1u);
}

TEST(AggregationTree, SelectivityReducesRate) {
  const Dataflow df = makeAggregationTreeDataflow(4, 2);
  // Every aggregator halves the rate.
  for (const auto& pe : df.pes()) {
    if (pe.name().rfind("agg-", 0) == 0) {
      EXPECT_DOUBLE_EQ(pe.alternate(AlternateId(0)).selectivity, 0.5);
      EXPECT_EQ(pe.alternateCount(), 2u);
    }
  }
}

TEST(AggregationTree, UnevenLeafCountStillReduces) {
  const Dataflow df = makeAggregationTreeDataflow(5, 3);
  EXPECT_EQ(df.inputs().size(), 5u);
  EXPECT_EQ(df.outputs().size(), 1u);
  EXPECT_EQ(df.topologicalOrder().size(), df.peCount());
}

TEST(AggregationTree, SingleLeafIsDegenerate) {
  const Dataflow df = makeAggregationTreeDataflow(1, 2);
  EXPECT_EQ(df.peCount(), 1u);
}

TEST(AggregationTree, RejectsBadShape) {
  EXPECT_THROW((void)makeAggregationTreeDataflow(0, 2), PreconditionError);
  EXPECT_THROW((void)makeAggregationTreeDataflow(4, 1), PreconditionError);
}

}  // namespace
}  // namespace dds
