#include "dds/dataflow/processing_element.hpp"

#include <gtest/gtest.h>

#include "dds/dataflow/alternate.hpp"

namespace dds {
namespace {

ProcessingElement makePe() {
  return ProcessingElement(PeId(0), "classify",
                           {{"accurate", 0.9, 0.3, 1.0},
                            {"fast", 0.6, 0.1, 0.8},
                            {"mid", 0.75, 0.2, 0.9}});
}

TEST(Alternate, ValidateAcceptsPositiveMetrics) {
  const Alternate a{"ok", 0.5, 0.1, 1.2};
  EXPECT_NO_THROW(a.validate());
}

TEST(Alternate, ValidateRejectsBadMetrics) {
  EXPECT_THROW((Alternate{"", 1.0, 0.1, 1.0}.validate()), PreconditionError);
  EXPECT_THROW((Alternate{"v", 0.0, 0.1, 1.0}.validate()), PreconditionError);
  EXPECT_THROW((Alternate{"c", 1.0, 0.0, 1.0}.validate()), PreconditionError);
  EXPECT_THROW((Alternate{"s", 1.0, 0.1, 0.0}.validate()), PreconditionError);
  EXPECT_THROW((Alternate{"n", -1.0, 0.1, 1.0}.validate()),
               PreconditionError);
}

TEST(ProcessingElement, ExposesAlternates) {
  const auto pe = makePe();
  EXPECT_EQ(pe.name(), "classify");
  EXPECT_EQ(pe.alternateCount(), 3u);
  EXPECT_EQ(pe.alternate(AlternateId(1)).name, "fast");
}

TEST(ProcessingElement, RelativeValueNormalizesToBest) {
  const auto pe = makePe();
  // gamma = f / max f; max f is 0.9 here.
  EXPECT_DOUBLE_EQ(pe.relativeValue(AlternateId(0)), 1.0);
  EXPECT_NEAR(pe.relativeValue(AlternateId(1)), 0.6 / 0.9, 1e-12);
  EXPECT_NEAR(pe.relativeValue(AlternateId(2)), 0.75 / 0.9, 1e-12);
}

TEST(ProcessingElement, RelativeValueInUnitInterval) {
  const auto pe = makePe();
  for (std::size_t j = 0; j < pe.alternateCount(); ++j) {
    const double g =
        pe.relativeValue(AlternateId(static_cast<std::uint32_t>(j)));
    EXPECT_GT(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
}

TEST(ProcessingElement, BestAndWorstValueAlternates) {
  const auto pe = makePe();
  EXPECT_EQ(pe.bestValueAlternate(), AlternateId(0));
  EXPECT_EQ(pe.worstValueAlternate(), AlternateId(1));
}

TEST(ProcessingElement, BestValueTieBreaksToLowestIndex) {
  const ProcessingElement pe(PeId(0), "tie",
                             {{"a", 1.0, 0.1, 1.0}, {"b", 1.0, 0.2, 1.0}});
  EXPECT_EQ(pe.bestValueAlternate(), AlternateId(0));
  EXPECT_EQ(pe.worstValueAlternate(), AlternateId(0));
}

TEST(ProcessingElement, SingleAlternateHasUnitValue) {
  const ProcessingElement pe(PeId(0), "solo", {{"only", 0.3, 0.1, 1.0}});
  EXPECT_DOUBLE_EQ(pe.relativeValue(AlternateId(0)), 1.0);
}

TEST(ProcessingElement, RejectsEmptyAlternates) {
  EXPECT_THROW(ProcessingElement(PeId(0), "none", {}), PreconditionError);
}

TEST(ProcessingElement, RejectsInvalidAlternate) {
  EXPECT_THROW(
      ProcessingElement(PeId(0), "bad", {{"neg", -1.0, 0.1, 1.0}}),
      PreconditionError);
}

TEST(ProcessingElement, AlternateIndexOutOfRangeThrows) {
  const auto pe = makePe();
  EXPECT_THROW((void)pe.alternate(AlternateId(3)), PreconditionError);
  EXPECT_THROW((void)pe.relativeValue(AlternateId(7)), PreconditionError);
}

}  // namespace
}  // namespace dds
