#include "dds/trace/trace_gen.hpp"

#include <gtest/gtest.h>

#include "dds/common/stats.hpp"

namespace dds {
namespace {

TEST(TraceGen, ProducesRequestedSampleCount) {
  Rng rng(1);
  const auto t = generateTrace(cpuTraceParams(), 3600.0, 60.0, rng);
  EXPECT_EQ(t.sampleCount(), 60u);
  EXPECT_DOUBLE_EQ(t.samplePeriod(), 60.0);
}

TEST(TraceGen, DeterministicForSameSeed) {
  Rng a(5), b(5);
  const auto x = generateTrace(cpuTraceParams(), 3600.0, 60.0, a);
  const auto y = generateTrace(cpuTraceParams(), 3600.0, 60.0, b);
  ASSERT_EQ(x.sampleCount(), y.sampleCount());
  for (std::size_t i = 0; i < x.sampleCount(); ++i) {
    EXPECT_DOUBLE_EQ(x.samples()[i], y.samples()[i]);
  }
}

TEST(TraceGen, SamplesStayWithinClamp) {
  Rng rng(9);
  const auto p = cpuTraceParams();
  const auto t = generateTrace(p, 4 * 24 * 3600.0, 300.0, rng);
  for (const double v : t.samples()) {
    EXPECT_GE(v, p.min_value);
    EXPECT_LE(v, p.max_value);
  }
}

TEST(TraceGen, CpuTraceHasPaperLikeVariability) {
  // Fig. 2's narrative: CPU coefficients fluctuate around the rated mean
  // with noticeable (several percent) relative deviation.
  Rng rng(42);
  const auto t =
      generateTrace(cpuTraceParams(), 4 * 24 * 3600.0, 300.0, rng);
  const auto s = t.stats();
  EXPECT_NEAR(s.mean(), 1.0, 0.1);
  EXPECT_GT(s.cv(), 0.02);   // visible variability...
  EXPECT_LT(s.cv(), 0.25);   // ...but not noise.
  EXPECT_LT(s.min(), 0.95);  // real degradations occur.
}

TEST(TraceGen, BandwidthTraceSitsBelowRated) {
  Rng rng(42);
  const auto t =
      generateTrace(bandwidthTraceParams(), 24 * 3600.0, 300.0, rng);
  const auto s = t.stats();
  EXPECT_LT(s.mean(), 1.0);
  EXPECT_LE(s.max(), bandwidthTraceParams().max_value);
}

TEST(TraceGen, LatencyTraceHasSpikes) {
  Rng rng(42);
  const auto t =
      generateTrace(latencyTraceParams(), 4 * 24 * 3600.0, 300.0, rng);
  // Latency is the spikiest series in Fig. 3: expect excursions well above
  // the mean at some point over four days.
  EXPECT_GT(t.stats().max(), 1.3);
}

TEST(TraceGen, ZeroNoiseParamsGiveFlatTrace) {
  TraceGenParams p;
  p.jitter_sd = 0.0;
  p.diurnal_amplitude = 0.0;
  p.shift_probability = 0.0;
  Rng rng(1);
  const auto t = generateTrace(p, 600.0, 60.0, rng);
  for (const double v : t.samples()) EXPECT_DOUBLE_EQ(v, p.mean);
}

TEST(TraceGen, DiurnalOnlyTraceOscillatesWith24hPeriod) {
  TraceGenParams p;
  p.jitter_sd = 0.0;
  p.shift_probability = 0.0;
  p.diurnal_amplitude = 0.1;
  Rng rng(1);
  const auto t = generateTrace(p, 48 * 3600.0, 3600.0, rng);
  // Peak near hour 6 (quarter period), trough near hour 18.
  EXPECT_NEAR(t.samples()[6], 1.1, 0.01);
  EXPECT_NEAR(t.samples()[18], 0.9, 0.01);
  // 24 hours apart the value repeats.
  EXPECT_NEAR(t.samples()[6], t.samples()[30], 1e-9);
}

TEST(TraceGen, PoolGeneratesDistinctTraces) {
  Rng rng(3);
  const auto pool =
      generateTracePool(cpuTraceParams(), 4, 3600.0, 60.0, rng);
  ASSERT_EQ(pool.size(), 4u);
  // Different draws should not be byte-identical.
  bool all_same = true;
  for (std::size_t i = 0; i < pool[0].sampleCount(); ++i) {
    if (pool[0].samples()[i] != pool[1].samples()[i]) {
      all_same = false;
      break;
    }
  }
  EXPECT_FALSE(all_same);
}

TEST(TraceGen, ParamValidation) {
  TraceGenParams p;
  p.mean = 0.0;
  EXPECT_THROW(p.validate(), PreconditionError);
  p = {};
  p.jitter_ar = 1.0;
  EXPECT_THROW(p.validate(), PreconditionError);
  p = {};
  p.shift_probability = 1.5;
  EXPECT_THROW(p.validate(), PreconditionError);
  p = {};
  p.min_value = 2.0;
  p.max_value = 1.0;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(TraceGen, RejectsBadDurations) {
  Rng rng(1);
  EXPECT_THROW((void)generateTrace(cpuTraceParams(), 0.0, 60.0, rng),
               PreconditionError);
  EXPECT_THROW((void)generateTrace(cpuTraceParams(), 60.0, 0.0, rng),
               PreconditionError);
  EXPECT_THROW(
      (void)generateTracePool(cpuTraceParams(), 0, 60.0, 60.0, rng),
      PreconditionError);
}

class TraceGenSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceGenSeedTest, MeanStaysCalibratedAcrossSeeds) {
  Rng rng(GetParam());
  const auto t =
      generateTrace(cpuTraceParams(), 4 * 24 * 3600.0, 300.0, rng);
  EXPECT_NEAR(t.stats().mean(), 1.0, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceGenSeedTest,
                         ::testing::Values(1u, 7u, 13u, 99u, 12345u));

}  // namespace
}  // namespace dds
