#include "dds/trace/trace_replayer.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

TEST(TraceReplayer, IdealReturnsUnityEverywhere) {
  auto r = TraceReplayer::ideal();
  EXPECT_DOUBLE_EQ(r.cpuCoeff(VmId(0), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.cpuCoeff(VmId(17), 12345.0), 1.0);
  EXPECT_DOUBLE_EQ(r.latencyCoeff(VmId(0), VmId(1), 99.0), 1.0);
  EXPECT_DOUBLE_EQ(r.bandwidthCoeff(VmId(0), VmId(1), 99.0), 1.0);
}

TEST(TraceReplayer, AssignmentIsStablePerVm) {
  auto r = TraceReplayer::futureGridLike(7);
  const double a = r.cpuCoeff(VmId(0), 1000.0);
  const double b = r.cpuCoeff(VmId(0), 1000.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(TraceReplayer, DeterministicAcrossInstancesWithSameSeed) {
  auto r1 = TraceReplayer::futureGridLike(21);
  auto r2 = TraceReplayer::futureGridLike(21);
  for (std::uint32_t v = 0; v < 5; ++v) {
    for (double t : {0.0, 600.0, 7200.0}) {
      EXPECT_DOUBLE_EQ(r1.cpuCoeff(VmId(v), t), r2.cpuCoeff(VmId(v), t));
    }
  }
  EXPECT_DOUBLE_EQ(r1.bandwidthCoeff(VmId(0), VmId(1), 60.0),
                   r2.bandwidthCoeff(VmId(0), VmId(1), 60.0));
}

TEST(TraceReplayer, DifferentVmsUsuallyDiffer) {
  auto r = TraceReplayer::futureGridLike(3);
  int distinct = 0;
  for (std::uint32_t v = 1; v <= 8; ++v) {
    if (r.cpuCoeff(VmId(v), 1000.0) != r.cpuCoeff(VmId(0), 1000.0)) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 6);  // random windows rarely collide
}

TEST(TraceReplayer, PairCoefficientsAreSymmetric) {
  auto r = TraceReplayer::futureGridLike(11);
  EXPECT_DOUBLE_EQ(r.latencyCoeff(VmId(2), VmId(5), 300.0),
                   r.latencyCoeff(VmId(5), VmId(2), 300.0));
  EXPECT_DOUBLE_EQ(r.bandwidthCoeff(VmId(2), VmId(5), 300.0),
                   r.bandwidthCoeff(VmId(5), VmId(2), 300.0));
}

TEST(TraceReplayer, SelfPairQueriesAreRejected) {
  auto r = TraceReplayer::futureGridLike(1);
  EXPECT_THROW((void)r.latencyCoeff(VmId(3), VmId(3), 0.0),
               PreconditionError);
  EXPECT_THROW((void)r.bandwidthCoeff(VmId(3), VmId(3), 0.0),
               PreconditionError);
}

TEST(TraceReplayer, CoefficientsVaryOverTime) {
  auto r = TraceReplayer::futureGridLike(5);
  bool varied = false;
  const double first = r.cpuCoeff(VmId(0), 0.0);
  for (double t = 300.0; t < 24 * 3600.0; t += 300.0) {
    if (r.cpuCoeff(VmId(0), t) != first) {
      varied = true;
      break;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(TraceReplayer, RejectsEmptyPools) {
  EXPECT_THROW(TraceReplayer({}, {PerfTrace::constant(1.0)},
                             {PerfTrace::constant(1.0)}, 0),
               PreconditionError);
  EXPECT_THROW(TraceReplayer({PerfTrace::constant(1.0)}, {},
                             {PerfTrace::constant(1.0)}, 0),
               PreconditionError);
  EXPECT_THROW(TraceReplayer({PerfTrace::constant(1.0)},
                             {PerfTrace::constant(1.0)}, {}, 0),
               PreconditionError);
}

TEST(TraceReplayer, CpuCoefficientsStayPositive) {
  auto r = TraceReplayer::futureGridLike(13);
  for (std::uint32_t v = 0; v < 4; ++v) {
    for (double t = 0.0; t < 12 * 3600.0; t += 600.0) {
      EXPECT_GT(r.cpuCoeff(VmId(v), t), 0.0);
    }
  }
}

}  // namespace
}  // namespace dds
