#include "dds/trace/perf_trace.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

TEST(PerfTrace, BasicAccessors) {
  const PerfTrace t({1.0, 0.8, 1.2}, 10.0);
  EXPECT_EQ(t.sampleCount(), 3u);
  EXPECT_DOUBLE_EQ(t.samplePeriod(), 10.0);
  EXPECT_DOUBLE_EQ(t.duration(), 30.0);
}

TEST(PerfTrace, AtUsesZeroOrderHold) {
  const PerfTrace t({1.0, 2.0, 3.0}, 10.0);
  EXPECT_DOUBLE_EQ(t.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(9.9), 1.0);
  EXPECT_DOUBLE_EQ(t.at(10.0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(25.0), 3.0);
}

TEST(PerfTrace, AtWrapsPastDuration) {
  const PerfTrace t({1.0, 2.0}, 5.0);
  EXPECT_DOUBLE_EQ(t.at(10.0), 1.0);   // exactly one full cycle
  EXPECT_DOUBLE_EQ(t.at(16.0), 2.0);   // 16 mod 10 = 6 -> second sample
  EXPECT_DOUBLE_EQ(t.at(1000.0), 1.0);
}

TEST(PerfTrace, AtOffsetShiftsOrigin) {
  const PerfTrace t({1.0, 2.0, 3.0}, 10.0);
  EXPECT_DOUBLE_EQ(t.atOffset(10.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(t.atOffset(10.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(t.atOffset(25.0, 10.0), 1.0);  // 35 mod 30 = 5 -> idx 0
}

TEST(PerfTrace, ConstantFactory) {
  const auto t = PerfTrace::constant(0.75);
  EXPECT_DOUBLE_EQ(t.at(0.0), 0.75);
  EXPECT_DOUBLE_EQ(t.at(1e7), 0.75);
}

TEST(PerfTrace, StatsSummarizeSamples) {
  const PerfTrace t({1.0, 2.0, 3.0}, 1.0);
  const auto s = t.stats();
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(PerfTrace, RejectsInvalidConstruction) {
  EXPECT_THROW(PerfTrace({}, 1.0), PreconditionError);
  EXPECT_THROW(PerfTrace({1.0}, 0.0), PreconditionError);
  EXPECT_THROW(PerfTrace({-0.5}, 1.0), PreconditionError);
}

TEST(PerfTrace, RejectsNegativeQueryTime) {
  const PerfTrace t({1.0}, 1.0);
  EXPECT_THROW((void)t.at(-1.0), PreconditionError);
}

}  // namespace
}  // namespace dds
