#include "dds/trace/trace_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dds/common/rng.hpp"
#include "dds/trace/trace_gen.hpp"

namespace dds {
namespace {

TEST(Autocorrelation, UnityAtLagZero) {
  const PerfTrace t({1.0, 2.0, 3.0, 2.0, 1.0}, 1.0);
  EXPECT_NEAR(autocorrelation(t, 0), 1.0, 1e-12);
}

TEST(Autocorrelation, ConstantTraceIsDefinedAsZero) {
  const PerfTrace t({2.0, 2.0, 2.0, 2.0}, 1.0);
  EXPECT_DOUBLE_EQ(autocorrelation(t, 0), 1.0);
  EXPECT_DOUBLE_EQ(autocorrelation(t, 1), 0.0);
}

TEST(Autocorrelation, AlternatingSeriesIsAntiCorrelatedAtLagOne) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  const PerfTrace t(
      [&xs] {  // shift positive; PerfTrace requires non-negative samples
        std::vector<double> shifted;
        for (double x : xs) shifted.push_back(x + 2.0);
        return shifted;
      }(),
      1.0);
  EXPECT_LT(autocorrelation(t, 1), -0.9);
}

TEST(Autocorrelation, WhiteNoiseDecorrelatesImmediately) {
  Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.uniform(0.5, 1.5));
  const PerfTrace t(std::move(xs), 1.0);
  EXPECT_NEAR(autocorrelation(t, 1), 0.0, 0.05);
  EXPECT_EQ(decorrelationLag(t), 1u);
}

TEST(Autocorrelation, ArProcessDecorrelatesSlowly) {
  // The CPU generator uses AR(1) with pole 0.9: correlation should stay
  // high for several lags.
  Rng rng(11);
  TraceGenParams p = cpuTraceParams();
  p.diurnal_amplitude = 0.0;  // isolate the AR component
  p.shift_probability = 0.0;
  const auto t = generateTrace(p, 4 * 24 * 3600.0, 300.0, rng);
  EXPECT_GT(autocorrelation(t, 1), 0.6);
  EXPECT_GT(decorrelationLag(t), 2u);
}

TEST(Autocorrelation, RejectsExcessiveLag) {
  const PerfTrace t({1.0, 2.0}, 1.0);
  EXPECT_THROW((void)autocorrelation(t, 2), PreconditionError);
}

TEST(RelativeDeviation, CentersOnMean) {
  const PerfTrace t({0.5, 1.0, 1.5}, 1.0);  // mean 1.0
  const auto dev = relativeDeviation(t);
  ASSERT_EQ(dev.size(), 3u);
  EXPECT_NEAR(dev[0], -0.5, 1e-12);
  EXPECT_NEAR(dev[1], 0.0, 1e-12);
  EXPECT_NEAR(dev[2], 0.5, 1e-12);
}

TEST(RollingMean, WindowOneIsIdentity) {
  const PerfTrace t({1.0, 3.0, 2.0}, 1.0);
  const auto rm = rollingMean(t, 1);
  EXPECT_EQ(rm, t.samples());
}

TEST(RollingMean, SmoothsSpikes) {
  const PerfTrace t({1.0, 1.0, 10.0, 1.0, 1.0}, 1.0);
  const auto rm = rollingMean(t, 3);
  // The spike spreads into its neighbours and shrinks at its peak.
  EXPECT_LT(rm[2], 10.0);
  EXPECT_GT(rm[1], 1.0);
  EXPECT_GT(rm[3], 1.0);
}

TEST(RollingMean, RejectsZeroWindow) {
  const PerfTrace t({1.0}, 1.0);
  EXPECT_THROW((void)rollingMean(t, 0), PreconditionError);
}

TEST(Histogram, CountsSumToSampleCount) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(0.0, 1.0));
  const PerfTrace t(std::move(xs), 1.0);
  const auto h = histogram(t, 10);
  std::size_t total = 0;
  for (const auto c : h) total += c;
  EXPECT_EQ(total, 1000u);
  // Uniform data: every bin sees roughly a tenth.
  for (const auto c : h) {
    EXPECT_GT(c, 50u);
    EXPECT_LT(c, 200u);
  }
}

TEST(Histogram, MaxValueLandsInLastBin) {
  const PerfTrace t({0.0, 1.0}, 1.0);
  const auto h = histogram(t, 4);
  EXPECT_EQ(h.front(), 1u);
  EXPECT_EQ(h.back(), 1u);
}

TEST(Histogram, SingleBinTakesEverything) {
  const PerfTrace t({1.0, 2.0, 3.0}, 1.0);
  const auto h = histogram(t, 1);
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0], 3u);
}

TEST(FractionBelow, BasicCounting) {
  const PerfTrace t({0.5, 0.7, 0.9, 1.1}, 1.0);
  EXPECT_DOUBLE_EQ(fractionBelow(t, 0.8), 0.5);
  EXPECT_DOUBLE_EQ(fractionBelow(t, 0.4), 0.0);
  EXPECT_DOUBLE_EQ(fractionBelow(t, 2.0), 1.0);
}

TEST(FractionBelow, SynthCpuTraceSpendsTimeDegraded) {
  Rng rng(2013);
  const auto t =
      generateTrace(cpuTraceParams(), 4 * 24 * 3600.0, 300.0, rng);
  // The Fig. 2 narrative: a nontrivial share of probes see < 90 % of
  // rated performance, but the majority do not see < 60 %.
  EXPECT_GT(fractionBelow(t, 0.9), 0.05);
  EXPECT_LT(fractionBelow(t, 0.6), 0.5);
}

}  // namespace
}  // namespace dds
