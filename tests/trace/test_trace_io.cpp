#include "dds/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dds/common/error.hpp"
#include "dds/trace/trace_gen.hpp"

namespace dds {
namespace {

TEST(TraceIo, RoundTripsThroughCsvText) {
  const PerfTrace original({1.0, 0.9, 1.1, 0.95}, 300.0);
  const auto restored = traceFromCsv(traceToCsv(original));
  ASSERT_EQ(restored.sampleCount(), original.sampleCount());
  EXPECT_DOUBLE_EQ(restored.samplePeriod(), original.samplePeriod());
  for (std::size_t i = 0; i < original.sampleCount(); ++i) {
    EXPECT_DOUBLE_EQ(restored.samples()[i], original.samples()[i]);
  }
}

TEST(TraceIo, RoundTripsGeneratedTrace) {
  Rng rng(4);
  const auto original = generateTrace(cpuTraceParams(), 7200.0, 60.0, rng);
  const auto restored = traceFromCsv(traceToCsv(original));
  ASSERT_EQ(restored.sampleCount(), original.sampleCount());
  for (std::size_t i = 0; i < original.sampleCount(); ++i) {
    EXPECT_NEAR(restored.samples()[i], original.samples()[i], 1e-9);
  }
}

TEST(TraceIo, SingleSampleDefaultsPeriod) {
  const auto t = traceFromCsv("time_s,coefficient\n0,0.8\n");
  EXPECT_EQ(t.sampleCount(), 1u);
  EXPECT_DOUBLE_EQ(t.samples()[0], 0.8);
}

TEST(TraceIo, RejectsNonUniformSampling) {
  EXPECT_THROW(
      (void)traceFromCsv("time_s,coefficient\n0,1\n60,1\n180,1\n"),
      IoError);
}

TEST(TraceIo, RejectsDecreasingTimes) {
  EXPECT_THROW((void)traceFromCsv("time_s,coefficient\n60,1\n0,1\n"),
               IoError);
}

TEST(TraceIo, RejectsMissingColumns) {
  EXPECT_THROW((void)traceFromCsv("a,b\n1,2\n"), PreconditionError);
}

TEST(TraceIo, RejectsEmptyTable) {
  EXPECT_THROW((void)traceFromCsv("time_s,coefficient\n"), IoError);
}

TEST(TraceIo, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "dds_trace_test.csv")
          .string();
  const PerfTrace original({0.7, 1.3}, 60.0);
  saveTrace(path, original);
  const auto restored = loadTrace(path);
  ASSERT_EQ(restored.sampleCount(), 2u);
  EXPECT_DOUBLE_EQ(restored.samples()[1], 1.3);
  EXPECT_DOUBLE_EQ(restored.samplePeriod(), 60.0);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)loadTrace("/no/such/trace.csv"), IoError);
}

}  // namespace
}  // namespace dds
