#include "dds/paths/dynamic_paths.hpp"

#include <gtest/gtest.h>

#include "dds/core/engine.hpp"

namespace dds {
namespace {

TEST(PathVariant, ValidationCatchesBadShapes) {
  PathVariant v;
  v.name = "v";
  EXPECT_THROW(v.validate(), PreconditionError);  // no PEs
  v.pes = {{"a", {{"a0", 1.0, 1.0, 1.0}}}};
  EXPECT_THROW(v.validate(), PreconditionError);  // no entries
  v.entries = {0};
  EXPECT_THROW(v.validate(), PreconditionError);  // no exits
  v.exits = {0};
  EXPECT_NO_THROW(v.validate());
  v.internal_edges = {{0, 5}};
  EXPECT_THROW(v.validate(), PreconditionError);  // edge out of range
}

TEST(DynamicPaths, CascadeExampleHasTwoVariants) {
  const auto app = makeCascadePathApplication();
  EXPECT_EQ(app.variantCount(), 2u);
  EXPECT_EQ(app.variant(0).name, "deep-model");
  EXPECT_EQ(app.variant(1).name, "cascade");
  EXPECT_THROW((void)app.variant(2), PreconditionError);
}

TEST(DynamicPaths, MaterializeBuildsValidGraphs) {
  const auto app = makeCascadePathApplication();
  const Dataflow deep = app.materialize(0);
  EXPECT_EQ(deep.peCount(), 3u);  // ingest, deep, publish
  EXPECT_EQ(deep.inputs().size(), 1u);
  EXPECT_EQ(deep.outputs().size(), 1u);

  const Dataflow cascade = app.materialize(1);
  EXPECT_EQ(cascade.peCount(), 4u);  // ingest, filter, light, publish
  // The fragment is wired between the boundary PEs.
  EXPECT_EQ(cascade.successors(PeId(0)).size(), 1u);
  EXPECT_EQ(cascade.predecessors(PeId(3)).size(), 1u);
}

TEST(DynamicPaths, VariantValueNormalizesToBest) {
  const auto app = makeCascadePathApplication();
  // deep raw value 0.95; cascade raw (0.9 + 0.75)/2 = 0.825.
  EXPECT_DOUBLE_EQ(app.variantValue(0), 1.0);
  EXPECT_NEAR(app.variantValue(1), 0.825 / 0.95, 1e-12);
}

TEST(DynamicPaths, GlobalCostReflectsSelectivity) {
  const auto app = makeCascadePathApplication();
  // deep: dc(deep) = 10 + 1.0 * dc(publish=1) = 11.
  EXPECT_NEAR(app.variantCost(0, Strategy::Global), 11.0, 1e-12);
  // cascade: dc(light) = 4 + 1*1 = 5; dc(filter) = 1.5 + 0.4*5 = 3.5.
  EXPECT_NEAR(app.variantCost(1, Strategy::Global), 3.5, 1e-12);
}

TEST(DynamicPaths, LocalCostIsPlainSum) {
  const auto app = makeCascadePathApplication();
  EXPECT_NEAR(app.variantCost(0, Strategy::Local), 10.0, 1e-12);
  EXPECT_NEAR(app.variantCost(1, Strategy::Local), 1.5 + 4.0, 1e-12);
}

TEST(DynamicPaths, SelectionPrefersCascadeUnderBothStrategies) {
  const auto app = makeCascadePathApplication();
  // Global: deep 1.0/11 = 0.091 vs cascade 0.868/3.5 = 0.248.
  EXPECT_EQ(app.selectVariant(Strategy::Global), 1u);
  // Local: deep 1.0/10 = 0.1 vs cascade 0.868/5.5 = 0.158.
  EXPECT_EQ(app.selectVariant(Strategy::Local), 1u);
}

TEST(DynamicPaths, SelectionCanPreferTheRichPath) {
  // When the alternatives cost the same, value decides.
  std::vector<PathVariant::FragmentPe> head = {
      {"in", {{"in", 1.0, 1.0, 1.0}}}};
  std::vector<PathVariant::FragmentPe> tail = {
      {"out", {{"out", 1.0, 1.0, 1.0}}}};
  PathVariant a;
  a.name = "rich";
  a.pes = {{"rich", {{"rich", 0.9, 2.0, 1.0}}}};
  a.entries = {0};
  a.exits = {0};
  PathVariant b = a;
  b.name = "poor";
  b.pes = {{"poor", {{"poor", 0.5, 2.0, 1.0}}}};
  const DynamicPathApplication app("t", head, tail, {a, b});
  EXPECT_EQ(app.selectVariant(Strategy::Global), 0u);
}

TEST(DynamicPaths, MaterializedVariantsRunEndToEnd) {
  const auto app = makeCascadePathApplication();
  ExperimentConfig cfg;
  cfg.horizon_s = 30.0 * kSecondsPerMinute;
  cfg.workload.mean_rate = 10.0;
  for (std::size_t i = 0; i < app.variantCount(); ++i) {
    const Dataflow df = app.materialize(i);
    const auto r = SimulationEngine(df, cfg).run(
        SchedulerKind::GlobalAdaptive);
    EXPECT_TRUE(r.constraint_met) << app.variant(i).name;
  }
}

TEST(DynamicPaths, ChosenPathIsCheaperAtRuntime) {
  const auto app = makeCascadePathApplication();
  ExperimentConfig cfg;
  cfg.horizon_s = kSecondsPerHour;
  cfg.workload.mean_rate = 20.0;
  const auto chosen = SimulationEngine(
                          app.materialize(app.selectVariant(Strategy::Global)),
                          cfg)
                          .run(SchedulerKind::GlobalAdaptive);
  const auto deep =
      SimulationEngine(app.materialize(0), cfg)
          .run(SchedulerKind::GlobalAdaptive);
  EXPECT_LT(chosen.total_cost, deep.total_cost);
}

}  // namespace
}  // namespace dds
