#include <gtest/gtest.h>

#include "dds/cloud/resource_class.hpp"
#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"

namespace dds {
namespace {

TEST(Catalogs, SecondGenHasFastCores) {
  const auto cat = awsCatalogSecondGen2013();
  ASSERT_EQ(cat.size(), 2u);
  for (const auto& cls : cat.classes()) {
    EXPECT_DOUBLE_EQ(cls.core_speed, 3.25);
  }
  EXPECT_EQ(cat.at(cat.largest()).name, "m3.2xlarge");
  EXPECT_DOUBLE_EQ(cat.at(cat.largest()).totalPower(), 26.0);
}

TEST(Catalogs, SecondGenCostsMorePerPowerUnit) {
  const auto m1 = awsCatalog2013();
  const auto m3 = awsCatalogSecondGen2013();
  const auto& m1_class = m1.at(ResourceClassId(0));
  for (const auto& cls : m3.classes()) {
    EXPECT_GT(cls.price_per_hour / cls.totalPower(),
              m1_class.price_per_hour / m1_class.totalPower());
  }
}

TEST(Catalogs, MixedCombinesBoth) {
  const auto cat = awsCatalogMixed2013();
  EXPECT_EQ(cat.size(), 6u);
  EXPECT_NO_THROW((void)cat.byName("m1.small"));
  EXPECT_NO_THROW((void)cat.byName("m3.2xlarge"));
  // smallestFitting still finds the cheap fine-grained class.
  EXPECT_EQ(cat.at(cat.smallestFitting(0.5)).name, "m1.small");
  // Very large demands land on the dense second-gen class.
  EXPECT_EQ(cat.at(cat.smallestFitting(20.0)).name, "m3.2xlarge");
}

TEST(Catalogs, ByNameLookup) {
  EXPECT_EQ(catalogByName("m1").size(), 4u);
  EXPECT_EQ(catalogByName("m3").size(), 2u);
  EXPECT_EQ(catalogByName("mixed").size(), 6u);
  EXPECT_THROW((void)catalogByName("gpu"), PreconditionError);
}

TEST(Catalogs, EngineRunsOnEveryCatalog) {
  const Dataflow df = makePaperDataflow();
  for (const std::string name : {"m1", "m3", "mixed"}) {
    ExperimentConfig cfg;
    cfg.horizon_s = 30.0 * kSecondsPerMinute;
    cfg.workload.mean_rate = 10.0;
    cfg.catalog = name;
    const auto r =
        SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
    EXPECT_TRUE(r.constraint_met) << name << " " << r.average_omega;
  }
  ExperimentConfig bad;
  bad.catalog = "quantum";
  EXPECT_THROW(SimulationEngine(df, bad), PreconditionError);
}

TEST(Catalogs, CoarseCatalogCostsMoreAtTinyRates) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = kSecondsPerHour;
  cfg.workload.mean_rate = 2.0;
  cfg.catalog = "m1";
  const auto fine =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  cfg.catalog = "m3";
  const auto coarse =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_LT(fine.total_cost, coarse.total_cost);
}

TEST(Catalogs, CheapestPowerAcquisitionFixesMixedMenu) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = kSecondsPerHour;
  cfg.workload.mean_rate = 20.0;
  cfg.catalog = "mixed";
  const auto largest_first =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  cfg.cheapest_class_acquisition = true;
  const auto cheapest =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  // The paper's largest-first rule buys the pricier m3 classes on the
  // mixed menu; cost-aware acquisition recovers the m1 price line.
  EXPECT_LT(cheapest.total_cost, largest_first.total_cost);
  EXPECT_TRUE(cheapest.constraint_met);
}

TEST(Catalogs, CheapestPowerIsNoOpOnUniformPricing) {
  // Every m1 class costs $0.06 per power unit: both policies pick the
  // largest class, so behaviour is identical.
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  const auto a = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  cfg.cheapest_class_acquisition = true;
  const auto b = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_DOUBLE_EQ(a.average_omega, b.average_omega);
}

}  // namespace
}  // namespace dds
