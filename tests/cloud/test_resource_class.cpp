#include "dds/cloud/resource_class.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

TEST(ResourceClass, ValidateAcceptsSaneSpec) {
  const ResourceClass c{"ok", 2, 1.5, 100.0, 0.12};
  EXPECT_NO_THROW(c.validate());
  EXPECT_DOUBLE_EQ(c.totalPower(), 3.0);
}

TEST(ResourceClass, ValidateRejectsBadSpecs) {
  EXPECT_THROW((ResourceClass{"", 1, 1.0, 100.0, 0.1}.validate()),
               PreconditionError);
  EXPECT_THROW((ResourceClass{"x", 0, 1.0, 100.0, 0.1}.validate()),
               PreconditionError);
  EXPECT_THROW((ResourceClass{"x", 1, 0.0, 100.0, 0.1}.validate()),
               PreconditionError);
  EXPECT_THROW((ResourceClass{"x", 1, 1.0, 0.0, 0.1}.validate()),
               PreconditionError);
  EXPECT_THROW((ResourceClass{"x", 1, 1.0, 100.0, -0.1}.validate()),
               PreconditionError);
}

TEST(ResourceCatalog, RejectsEmptyCatalog) {
  EXPECT_THROW(ResourceCatalog({}), PreconditionError);
}

TEST(ResourceCatalog, Aws2013HasFourM1Classes) {
  const auto cat = awsCatalog2013();
  ASSERT_EQ(cat.size(), 4u);
  EXPECT_EQ(cat.at(ResourceClassId(0)).name, "m1.small");
  EXPECT_EQ(cat.at(ResourceClassId(3)).name, "m1.xlarge");
}

TEST(ResourceCatalog, Aws2013PriceScalesWithPower) {
  const auto cat = awsCatalog2013();
  // 2013 m1.* pricing was linear in ECU: $0.06 per unit of power.
  for (const auto& cls : cat.classes()) {
    EXPECT_NEAR(cls.price_per_hour / cls.totalPower(), 0.06, 1e-9)
        << cls.name;
  }
}

TEST(ResourceCatalog, LargestIsXlarge) {
  const auto cat = awsCatalog2013();
  EXPECT_EQ(cat.at(cat.largest()).name, "m1.xlarge");
}

TEST(ResourceCatalog, LargestPrefersCheaperOnPowerTie) {
  const ResourceCatalog cat({{"pricey", 2, 1.0, 100.0, 0.5},
                             {"cheap", 2, 1.0, 100.0, 0.2}});
  EXPECT_EQ(cat.at(cat.largest()).name, "cheap");
}

TEST(ResourceCatalog, SmallestFittingPicksCheapestAdequate) {
  const auto cat = awsCatalog2013();
  // 0.5 power fits in m1.small (power 1) — the cheapest class.
  EXPECT_EQ(cat.at(cat.smallestFitting(0.5)).name, "m1.small");
  // 1.5 power needs m1.medium (power 2).
  EXPECT_EQ(cat.at(cat.smallestFitting(1.5)).name, "m1.medium");
  // 3.0 power needs m1.large (power 4).
  EXPECT_EQ(cat.at(cat.smallestFitting(3.0)).name, "m1.large");
  // 6.0 needs m1.xlarge (power 8).
  EXPECT_EQ(cat.at(cat.smallestFitting(6.0)).name, "m1.xlarge");
}

TEST(ResourceCatalog, SmallestFittingExactBoundaryFits) {
  const auto cat = awsCatalog2013();
  EXPECT_EQ(cat.at(cat.smallestFitting(1.0)).name, "m1.small");
  EXPECT_EQ(cat.at(cat.smallestFitting(2.0)).name, "m1.medium");
}

TEST(ResourceCatalog, SmallestFittingFallsBackToLargest) {
  const auto cat = awsCatalog2013();
  EXPECT_EQ(cat.at(cat.smallestFitting(100.0)).name, "m1.xlarge");
}

TEST(ResourceCatalog, SmallestFittingRejectsNegativeDemand) {
  const auto cat = awsCatalog2013();
  EXPECT_THROW((void)cat.smallestFitting(-1.0), PreconditionError);
}

TEST(ResourceCatalog, ByNameFindsAndThrows) {
  const auto cat = awsCatalog2013();
  EXPECT_EQ(cat.at(cat.byName("m1.large")).cores, 2);
  EXPECT_THROW((void)cat.byName("m7.turbo"), PreconditionError);
}

TEST(ResourceCatalog, AtRejectsOutOfRange) {
  const auto cat = awsCatalog2013();
  EXPECT_THROW((void)cat.at(ResourceClassId(4)), PreconditionError);
}

// ---- spot/preemptible tier ----

TEST(SpotTier, WithSpotTierAppendsDiscountedTwins) {
  const auto cat = withSpotTier(awsCatalog2013(), 0.7);
  ASSERT_EQ(cat.size(), 8u);
  EXPECT_TRUE(cat.hasPreemptible());
  // The on-demand classes keep their original ids (existing deployments
  // stay valid); the spot twins are appended after them.
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto& od = cat.at(ResourceClassId(i));
    const auto& spot = cat.at(ResourceClassId(i + 4));
    EXPECT_FALSE(od.preemptible);
    EXPECT_TRUE(spot.preemptible);
    EXPECT_EQ(spot.name, od.name + "-spot");
    EXPECT_EQ(spot.cores, od.cores);
    EXPECT_DOUBLE_EQ(spot.core_speed, od.core_speed);
    EXPECT_DOUBLE_EQ(spot.bandwidth_mbps, od.bandwidth_mbps);
    EXPECT_NEAR(spot.price_per_hour, od.price_per_hour * 0.3, 1e-12);
  }
}

TEST(SpotTier, DiscountMustBeStrictlyBetweenZeroAndOne) {
  EXPECT_THROW((void)withSpotTier(awsCatalog2013(), 0.0), PreconditionError);
  EXPECT_THROW((void)withSpotTier(awsCatalog2013(), 1.0), PreconditionError);
  EXPECT_THROW((void)withSpotTier(awsCatalog2013(), -0.5), PreconditionError);
}

TEST(SpotTier, WithSpotTierNeverMintsSpotOfSpot) {
  // Re-applying the tier twins the on-demand classes again but never
  // derives a "-spot-spot" class from an existing spot one.
  const auto twice = withSpotTier(withSpotTier(awsCatalog2013(), 0.5), 0.5);
  for (const auto& cls : twice.classes()) {
    EXPECT_EQ(cls.name.find("-spot-spot"), std::string::npos) << cls.name;
  }
}

TEST(SpotTier, TwinLookupsRoundTrip) {
  const auto cat = withSpotTier(awsCatalog2013(), 0.7);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const ResourceClassId od(i);
    const auto spot = cat.spotTwin(od);
    ASSERT_TRUE(spot.has_value()) << cat.at(od).name;
    EXPECT_EQ(cat.onDemandTwin(*spot), od);
    // Twin lookups are idempotent on their own tier.
    EXPECT_EQ(cat.onDemandTwin(od), od);
    EXPECT_EQ(cat.spotTwin(*spot), *spot);
  }
}

TEST(SpotTier, PlainCatalogHasNoTwins) {
  const auto cat = awsCatalog2013();
  EXPECT_FALSE(cat.hasPreemptible());
  EXPECT_FALSE(cat.spotTwin(ResourceClassId(0)).has_value());
  EXPECT_EQ(cat.onDemandTwin(ResourceClassId(2)), ResourceClassId(2));
}

TEST(SpotTier, OrphanSpotClassHasNoOnDemandTwin) {
  const ResourceCatalog cat(
      {{"od", 1, 1.0, 100.0, 0.1, false}, {"orphan", 2, 1.0, 100.0, 0.05, true}});
  EXPECT_THROW((void)cat.onDemandTwin(ResourceClassId(1)), PreconditionError);
}

}  // namespace
}  // namespace dds
