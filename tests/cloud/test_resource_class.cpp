#include "dds/cloud/resource_class.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

TEST(ResourceClass, ValidateAcceptsSaneSpec) {
  const ResourceClass c{"ok", 2, 1.5, 100.0, 0.12};
  EXPECT_NO_THROW(c.validate());
  EXPECT_DOUBLE_EQ(c.totalPower(), 3.0);
}

TEST(ResourceClass, ValidateRejectsBadSpecs) {
  EXPECT_THROW((ResourceClass{"", 1, 1.0, 100.0, 0.1}.validate()),
               PreconditionError);
  EXPECT_THROW((ResourceClass{"x", 0, 1.0, 100.0, 0.1}.validate()),
               PreconditionError);
  EXPECT_THROW((ResourceClass{"x", 1, 0.0, 100.0, 0.1}.validate()),
               PreconditionError);
  EXPECT_THROW((ResourceClass{"x", 1, 1.0, 0.0, 0.1}.validate()),
               PreconditionError);
  EXPECT_THROW((ResourceClass{"x", 1, 1.0, 100.0, -0.1}.validate()),
               PreconditionError);
}

TEST(ResourceCatalog, RejectsEmptyCatalog) {
  EXPECT_THROW(ResourceCatalog({}), PreconditionError);
}

TEST(ResourceCatalog, Aws2013HasFourM1Classes) {
  const auto cat = awsCatalog2013();
  ASSERT_EQ(cat.size(), 4u);
  EXPECT_EQ(cat.at(ResourceClassId(0)).name, "m1.small");
  EXPECT_EQ(cat.at(ResourceClassId(3)).name, "m1.xlarge");
}

TEST(ResourceCatalog, Aws2013PriceScalesWithPower) {
  const auto cat = awsCatalog2013();
  // 2013 m1.* pricing was linear in ECU: $0.06 per unit of power.
  for (const auto& cls : cat.classes()) {
    EXPECT_NEAR(cls.price_per_hour / cls.totalPower(), 0.06, 1e-9)
        << cls.name;
  }
}

TEST(ResourceCatalog, LargestIsXlarge) {
  const auto cat = awsCatalog2013();
  EXPECT_EQ(cat.at(cat.largest()).name, "m1.xlarge");
}

TEST(ResourceCatalog, LargestPrefersCheaperOnPowerTie) {
  const ResourceCatalog cat({{"pricey", 2, 1.0, 100.0, 0.5},
                             {"cheap", 2, 1.0, 100.0, 0.2}});
  EXPECT_EQ(cat.at(cat.largest()).name, "cheap");
}

TEST(ResourceCatalog, SmallestFittingPicksCheapestAdequate) {
  const auto cat = awsCatalog2013();
  // 0.5 power fits in m1.small (power 1) — the cheapest class.
  EXPECT_EQ(cat.at(cat.smallestFitting(0.5)).name, "m1.small");
  // 1.5 power needs m1.medium (power 2).
  EXPECT_EQ(cat.at(cat.smallestFitting(1.5)).name, "m1.medium");
  // 3.0 power needs m1.large (power 4).
  EXPECT_EQ(cat.at(cat.smallestFitting(3.0)).name, "m1.large");
  // 6.0 needs m1.xlarge (power 8).
  EXPECT_EQ(cat.at(cat.smallestFitting(6.0)).name, "m1.xlarge");
}

TEST(ResourceCatalog, SmallestFittingExactBoundaryFits) {
  const auto cat = awsCatalog2013();
  EXPECT_EQ(cat.at(cat.smallestFitting(1.0)).name, "m1.small");
  EXPECT_EQ(cat.at(cat.smallestFitting(2.0)).name, "m1.medium");
}

TEST(ResourceCatalog, SmallestFittingFallsBackToLargest) {
  const auto cat = awsCatalog2013();
  EXPECT_EQ(cat.at(cat.smallestFitting(100.0)).name, "m1.xlarge");
}

TEST(ResourceCatalog, SmallestFittingRejectsNegativeDemand) {
  const auto cat = awsCatalog2013();
  EXPECT_THROW((void)cat.smallestFitting(-1.0), PreconditionError);
}

TEST(ResourceCatalog, ByNameFindsAndThrows) {
  const auto cat = awsCatalog2013();
  EXPECT_EQ(cat.at(cat.byName("m1.large")).cores, 2);
  EXPECT_THROW((void)cat.byName("m7.turbo"), PreconditionError);
}

TEST(ResourceCatalog, AtRejectsOutOfRange) {
  const auto cat = awsCatalog2013();
  EXPECT_THROW((void)cat.at(ResourceClassId(4)), PreconditionError);
}

}  // namespace
}  // namespace dds
