#include "dds/cloud/vm_instance.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

VmInstance makeVm(int cores = 4) {
  return VmInstance(VmId(0), ResourceClassId(3),
                    ResourceClass{"test", cores, 2.0, 100.0, 0.48}, 0.0);
}

TEST(VmInstance, StartsActiveWithAllCoresFree) {
  const auto vm = makeVm();
  EXPECT_TRUE(vm.isActive());
  EXPECT_EQ(vm.coreCount(), 4);
  EXPECT_EQ(vm.freeCoreCount(), 4);
  EXPECT_EQ(vm.allocatedCoreCount(), 0);
}

TEST(VmInstance, AllocateAssignsOwnership) {
  auto vm = makeVm();
  const int idx = vm.allocateCore(PeId(7));
  EXPECT_GE(idx, 0);
  EXPECT_EQ(vm.freeCoreCount(), 3);
  ASSERT_TRUE(vm.coreOwner(idx).has_value());
  EXPECT_EQ(*vm.coreOwner(idx), PeId(7));
  EXPECT_EQ(vm.coresOwnedBy(PeId(7)), 1);
  EXPECT_EQ(vm.coresOwnedBy(PeId(8)), 0);
}

TEST(VmInstance, AllocateUntilFullThenThrows) {
  auto vm = makeVm(2);
  vm.allocateCore(PeId(1));
  vm.allocateCore(PeId(2));
  EXPECT_EQ(vm.freeCoreCount(), 0);
  EXPECT_THROW(vm.allocateCore(PeId(3)), PreconditionError);
}

TEST(VmInstance, ReleaseCoreOfFreesOne) {
  auto vm = makeVm();
  vm.allocateCore(PeId(1));
  vm.allocateCore(PeId(1));
  const int freed = vm.releaseCoreOf(PeId(1));
  EXPECT_GE(freed, 0);
  EXPECT_EQ(vm.coresOwnedBy(PeId(1)), 1);
  EXPECT_EQ(vm.freeCoreCount(), 3);
}

TEST(VmInstance, ReleaseCoreOfUnknownPeThrows) {
  auto vm = makeVm();
  EXPECT_THROW(vm.releaseCoreOf(PeId(9)), PreconditionError);
}

TEST(VmInstance, ReleaseAllCoresOf) {
  auto vm = makeVm();
  vm.allocateCore(PeId(1));
  vm.allocateCore(PeId(2));
  vm.allocateCore(PeId(1));
  EXPECT_EQ(vm.releaseAllCoresOf(PeId(1)), 2);
  EXPECT_EQ(vm.coresOwnedBy(PeId(1)), 0);
  EXPECT_EQ(vm.coresOwnedBy(PeId(2)), 1);
  EXPECT_EQ(vm.releaseAllCoresOf(PeId(1)), 0);  // idempotent
}

TEST(VmInstance, CoreOwnerOutOfRangeThrows) {
  const auto vm = makeVm(2);
  EXPECT_THROW((void)vm.coreOwner(-1), PreconditionError);
  EXPECT_THROW((void)vm.coreOwner(2), PreconditionError);
}

TEST(VmInstance, OffTimeInfiniteWhileActive) {
  const auto vm = makeVm();
  EXPECT_EQ(vm.offTime(), std::numeric_limits<SimTime>::infinity());
}

}  // namespace
}  // namespace dds
