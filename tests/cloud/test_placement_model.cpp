#include "dds/cloud/placement_model.hpp"

#include <gtest/gtest.h>

#include <map>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/monitor/monitoring.hpp"

namespace dds {
namespace {

PlacementModel makeModel(int racks = 4, std::uint64_t seed = 7) {
  PlacementConfig cfg;
  cfg.racks = racks;
  return PlacementModel(cfg, seed);
}

TEST(PlacementModel, ConfigValidation) {
  PlacementConfig bad;
  bad.racks = 0;
  EXPECT_THROW(PlacementModel(bad, 1), PreconditionError);
  bad = {};
  bad.same_rack_bandwidth = 0.0;
  EXPECT_THROW(PlacementModel(bad, 1), PreconditionError);
  bad = {};
  bad.cross_rack_latency = -1.0;
  EXPECT_THROW(PlacementModel(bad, 1), PreconditionError);
}

TEST(PlacementModel, RackAssignmentIsDeterministic) {
  const auto a = makeModel();
  const auto b = makeModel();
  for (std::uint32_t v = 0; v < 50; ++v) {
    EXPECT_EQ(a.rackOf(VmId(v)), b.rackOf(VmId(v)));
    EXPECT_GE(a.rackOf(VmId(v)), 0);
    EXPECT_LT(a.rackOf(VmId(v)), 4);
  }
}

TEST(PlacementModel, SeedChangesAssignment) {
  const auto a = makeModel(4, 1);
  const auto b = makeModel(4, 2);
  int differing = 0;
  for (std::uint32_t v = 0; v < 40; ++v) {
    if (a.rackOf(VmId(v)) != b.rackOf(VmId(v))) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST(PlacementModel, RacksAreRoughlyBalanced) {
  const auto m = makeModel(4, 99);
  std::map<int, int> counts;
  for (std::uint32_t v = 0; v < 400; ++v) ++counts[m.rackOf(VmId(v))];
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [rack, n] : counts) {
    EXPECT_GT(n, 60) << "rack " << rack;
    EXPECT_LT(n, 140) << "rack " << rack;
  }
}

TEST(PlacementModel, SameRackGetsBetterNetwork) {
  const auto m = makeModel(2, 3);
  // Find a same-rack and a cross-rack pair.
  VmId same_a(0), same_b(0), cross_a(0), cross_b(0);
  bool found_same = false, found_cross = false;
  for (std::uint32_t i = 0; i < 64 && !(found_same && found_cross); ++i) {
    for (std::uint32_t j = i + 1; j < 64; ++j) {
      if (m.sameRack(VmId(i), VmId(j)) && !found_same) {
        same_a = VmId(i);
        same_b = VmId(j);
        found_same = true;
      } else if (!m.sameRack(VmId(i), VmId(j)) && !found_cross) {
        cross_a = VmId(i);
        cross_b = VmId(j);
        found_cross = true;
      }
    }
  }
  ASSERT_TRUE(found_same && found_cross);
  EXPECT_GT(m.bandwidthFactor(same_a, same_b),
            m.bandwidthFactor(cross_a, cross_b));
  EXPECT_LT(m.latencyFactor(same_a, same_b),
            m.latencyFactor(cross_a, cross_b));
}

TEST(PlacementModel, SingleRackIsUniform) {
  const auto m = makeModel(1, 5);
  EXPECT_TRUE(m.sameRack(VmId(0), VmId(1)));
  EXPECT_DOUBLE_EQ(m.bandwidthFactor(VmId(0), VmId(1)), 2.0);
}

TEST(PlacementModel, MonitoringComposesSpatialFactors) {
  CloudProvider cloud(awsCatalog2013());
  TraceReplayer ideal = TraceReplayer::ideal();
  PlacementConfig cfg;
  cfg.racks = 2;
  const PlacementModel placement(cfg, 11);
  MonitoringService mon(cloud, ideal, &placement);
  const VmId a = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = cloud.acquire(ResourceClassId(0), 0.0);
  const double expected =
      100.0 * placement.bandwidthFactor(a, b);  // rated 100 x factor
  EXPECT_DOUBLE_EQ(mon.observedBandwidthMbps(a, b, 0.0), expected);
  EXPECT_DOUBLE_EQ(mon.observedLatencyMs(a, b, 0.0),
                   MonitoringService::kBaseLatencyMs *
                       placement.latencyFactor(a, b));
  // Colocation still wins over placement.
  EXPECT_TRUE(std::isinf(mon.observedBandwidthMbps(a, a, 0.0)));
}

TEST(PlacementModel, EngineRunsWithPlacementEnabled) {
  const Dataflow df = makePaperDataflow();
  ExperimentConfig cfg;
  cfg.horizon_s = 30.0 * kSecondsPerMinute;
  cfg.workload.mean_rate = 10.0;
  cfg.placement_racks = 4;
  const auto r = SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_TRUE(r.constraint_met) << r.average_omega;
  cfg.placement_racks = -1;
  EXPECT_THROW(SimulationEngine(df, cfg), PreconditionError);
}

}  // namespace
}  // namespace dds
