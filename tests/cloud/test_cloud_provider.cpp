#include "dds/cloud/cloud_provider.hpp"

#include <gtest/gtest.h>

namespace dds {
namespace {

CloudProvider makeCloud() { return CloudProvider(awsCatalog2013()); }

TEST(CloudProvider, AcquireCreatesActiveInstance) {
  auto cloud = makeCloud();
  const VmId id = cloud.acquire(ResourceClassId(0), 100.0);
  EXPECT_EQ(cloud.instanceCount(), 1u);
  const auto& vm = cloud.instance(id);
  EXPECT_TRUE(vm.isActive());
  EXPECT_DOUBLE_EQ(vm.startTime(), 100.0);
  EXPECT_EQ(vm.spec().name, "m1.small");
}

TEST(CloudProvider, IdsAreDenseAndNeverReused) {
  auto cloud = makeCloud();
  const VmId a = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = cloud.acquire(ResourceClassId(1), 0.0);
  cloud.release(a, 10.0);
  const VmId c = cloud.acquire(ResourceClassId(0), 20.0);
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(cloud.instanceCount(), 3u);
}

TEST(CloudProvider, ActiveVmsExcludesReleased) {
  auto cloud = makeCloud();
  const VmId a = cloud.acquire(ResourceClassId(0), 0.0);
  const VmId b = cloud.acquire(ResourceClassId(0), 0.0);
  cloud.release(a, 50.0);
  const auto active = cloud.activeVms();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], b);
}

TEST(CloudProvider, ReleaseWithAllocatedCoresThrows) {
  auto cloud = makeCloud();
  const VmId id = cloud.acquire(ResourceClassId(0), 0.0);
  cloud.instance(id).allocateCore(PeId(1));
  EXPECT_THROW(cloud.release(id, 10.0), PreconditionError);
  cloud.instance(id).releaseAllCoresOf(PeId(1));
  EXPECT_NO_THROW(cloud.release(id, 10.0));
}

TEST(CloudProvider, DoubleReleaseThrows) {
  auto cloud = makeCloud();
  const VmId id = cloud.acquire(ResourceClassId(0), 0.0);
  cloud.release(id, 10.0);
  EXPECT_THROW(cloud.release(id, 20.0), PreconditionError);
}

TEST(CloudProvider, UnknownVmIdThrows) {
  auto cloud = makeCloud();
  EXPECT_THROW((void)cloud.instance(VmId(0)), PreconditionError);
  EXPECT_THROW((void)cloud.instanceCost(VmId(3), 10.0), PreconditionError);
}

// --- billing (paper §4: rounded up to the hour, started hour charged) ---

TEST(Billing, ZeroBeforeAndAtStart) {
  auto cloud = makeCloud();
  const VmId id = cloud.acquire(ResourceClassId(0), 1000.0);
  EXPECT_DOUBLE_EQ(cloud.instanceCost(id, 500.0), 0.0);
  EXPECT_DOUBLE_EQ(cloud.instanceCost(id, 1000.0), 0.0);
  EXPECT_EQ(cloud.billedHours(id, 1000.0), 0);
}

TEST(Billing, PartialHourChargedInFull) {
  auto cloud = makeCloud();
  const VmId id = cloud.acquire(ResourceClassId(0), 0.0);  // $0.06/h
  EXPECT_DOUBLE_EQ(cloud.instanceCost(id, 60.0), 0.06);
  EXPECT_DOUBLE_EQ(cloud.instanceCost(id, 3599.0), 0.06);
}

TEST(Billing, ExactHourBoundaryChargesOneHour) {
  auto cloud = makeCloud();
  const VmId id = cloud.acquire(ResourceClassId(0), 0.0);
  EXPECT_EQ(cloud.billedHours(id, 3600.0), 1);
  EXPECT_EQ(cloud.billedHours(id, 3600.0 + 1.0), 2);
}

TEST(Billing, ReleasedVmStopsAccruing) {
  auto cloud = makeCloud();
  const VmId id = cloud.acquire(ResourceClassId(1), 0.0);  // $0.12/h
  cloud.release(id, 1800.0);
  EXPECT_DOUBLE_EQ(cloud.instanceCost(id, 1800.0), 0.12);
  // Cost is frozen after shutdown even as time advances.
  EXPECT_DOUBLE_EQ(cloud.instanceCost(id, 100000.0), 0.12);
}

TEST(Billing, InstantReleaseIsFree) {
  auto cloud = makeCloud();
  const VmId id = cloud.acquire(ResourceClassId(3), 500.0);
  cloud.release(id, 500.0);
  EXPECT_DOUBLE_EQ(cloud.instanceCost(id, 10000.0), 0.0);
}

TEST(Billing, AccumulatedCostSumsInstances) {
  auto cloud = makeCloud();
  cloud.acquire(ResourceClassId(0), 0.0);      // small  $0.06
  cloud.acquire(ResourceClassId(3), 0.0);      // xlarge $0.48
  const VmId c = cloud.acquire(ResourceClassId(1), 0.0);  // medium $0.12
  cloud.release(c, 10.0);
  // After 90 min: small 2h=0.12, xlarge 2h=0.96, medium 1h=0.12.
  EXPECT_DOUBLE_EQ(cloud.accumulatedCost(5400.0), 0.12 + 0.96 + 0.12);
}

TEST(Billing, TimeToNextHourBoundary) {
  auto cloud = makeCloud();
  const VmId id = cloud.acquire(ResourceClassId(0), 100.0);
  EXPECT_DOUBLE_EQ(cloud.timeToNextHourBoundary(id, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(cloud.timeToNextHourBoundary(id, 160.0), 3540.0);
  EXPECT_DOUBLE_EQ(cloud.timeToNextHourBoundary(id, 100.0 + 3600.0), 0.0);
  EXPECT_DOUBLE_EQ(cloud.timeToNextHourBoundary(id, 100.0 + 3601.0),
                   3599.0);
  EXPECT_THROW((void)cloud.timeToNextHourBoundary(id, 50.0),
               PreconditionError);
}

class BillingMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(BillingMonotoneTest, CostIsMonotoneInTime) {
  auto cloud = makeCloud();
  const VmId id = cloud.acquire(ResourceClassId(2), GetParam());
  double prev = 0.0;
  for (double t = GetParam(); t < GetParam() + 6 * 3600.0; t += 137.0) {
    const double c = cloud.instanceCost(id, t);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(StartTimes, BillingMonotoneTest,
                         ::testing::Values(0.0, 59.0, 3600.0, 7777.0));

/// Test acquisition-fault model: rejects a fixed set of attempt indices
/// and imposes a fixed provisioning delay.
class ScriptedAcquisitionFaults final : public AcquisitionFaultModel {
 public:
  ScriptedAcquisitionFaults(std::uint64_t reject_below, SimTime delay)
      : reject_below_(reject_below), delay_(delay) {}

  [[nodiscard]] bool acquisitionRejected(
      std::uint64_t attempt) const override {
    return attempt < reject_below_;
  }
  [[nodiscard]] SimTime provisioningDelay(VmId,
                                          const ResourceClass&) const override {
    return delay_;
  }

 private:
  std::uint64_t reject_below_;
  SimTime delay_;
};

TEST(TryAcquire, WithoutFaultModelDeliversInstantly) {
  auto cloud = makeCloud();
  const auto got = cloud.tryAcquire(ResourceClassId(0), 100.0);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got.ready_time, 100.0);
  EXPECT_TRUE(cloud.instance(got.vm).isReady(100.0));
  EXPECT_EQ(cloud.rejectedAcquisitions(), 0u);
}

TEST(TryAcquire, RejectionLeavesNoInstanceBehind) {
  auto cloud = makeCloud();
  const ScriptedAcquisitionFaults faults(/*reject_below=*/2, 0.0);
  cloud.setAcquisitionFaults(&faults);
  EXPECT_FALSE(cloud.tryAcquire(ResourceClassId(0), 0.0).ok());
  EXPECT_FALSE(cloud.tryAcquire(ResourceClassId(0), 0.0).ok());
  EXPECT_EQ(cloud.instanceCount(), 0u);
  EXPECT_EQ(cloud.rejectedAcquisitions(), 2u);
  // Attempt indices are global and monotone: the third succeeds.
  EXPECT_TRUE(cloud.tryAcquire(ResourceClassId(0), 0.0).ok());
  EXPECT_EQ(cloud.instanceCount(), 1u);
}

TEST(TryAcquire, ProvisioningDelaySetsReadyTimeButBillsFromStart) {
  auto cloud = makeCloud();
  const ScriptedAcquisitionFaults faults(0, /*delay=*/300.0);
  cloud.setAcquisitionFaults(&faults);
  const auto got = cloud.tryAcquire(ResourceClassId(0), 100.0);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got.ready_time, 400.0);
  const auto& vm = cloud.instance(got.vm);
  EXPECT_DOUBLE_EQ(vm.readyTime(), 400.0);
  EXPECT_FALSE(vm.isReady(399.0));
  EXPECT_TRUE(vm.isReady(400.0));
  // The clock (and the bill) started at acquisition, not readiness.
  EXPECT_DOUBLE_EQ(vm.startTime(), 100.0);
  EXPECT_GT(cloud.instanceCost(got.vm, 200.0), 0.0);
}

// --- spot billing audit (provider-initiated preemption forgives the
// --- partial started hour; tenant-initiated terminations never do) ---

CloudProvider makeSpotCloud() {
  return CloudProvider(withSpotTier(awsCatalog2013(), 0.7));
}

TEST(SpotBilling, PreemptedMidHourDoesNotBillTheStartedHour) {
  auto cloud = makeSpotCloud();
  // m1.small-spot: $0.06 * 0.3 = $0.018/h.
  const VmId id = cloud.acquire(cloud.catalog().byName("m1.small-spot"), 0.0);
  cloud.preempt(id, 5400.0);  // reclaimed at 1.5 h
  EXPECT_EQ(cloud.billedHours(id, 5400.0), 1);  // not 2: the partial hour
  EXPECT_DOUBLE_EQ(cloud.instanceCost(id, 5400.0), 0.018);
  EXPECT_EQ(cloud.instance(id).terminationReason(),
            TerminationReason::Preempted);
}

TEST(SpotBilling, PreemptedAtExactBoundaryBillsWholeHours) {
  auto cloud = makeSpotCloud();
  const VmId id = cloud.acquire(cloud.catalog().byName("m1.small-spot"), 0.0);
  cloud.preempt(id, 2.0 * 3600.0);
  EXPECT_EQ(cloud.billedHours(id, 2.0 * 3600.0), 2);
}

TEST(SpotBilling, PreemptedInFirstHourIsFree) {
  auto cloud = makeSpotCloud();
  const VmId id = cloud.acquire(cloud.catalog().byName("m1.small-spot"), 0.0);
  cloud.preempt(id, 1800.0);
  EXPECT_EQ(cloud.billedHours(id, 1800.0), 0);
  EXPECT_DOUBLE_EQ(cloud.instanceCost(id, 1800.0), 0.0);
}

TEST(SpotBilling, NoAccrualAfterPreemption) {
  auto cloud = makeSpotCloud();
  const VmId id = cloud.acquire(cloud.catalog().byName("m1.medium-spot"), 0.0);
  cloud.preempt(id, 5400.0);
  const double at_death = cloud.instanceCost(id, 5400.0);
  EXPECT_DOUBLE_EQ(cloud.instanceCost(id, 100000.0), at_death);
  EXPECT_EQ(cloud.billedHours(id, 100000.0),
            cloud.billedHours(id, 5400.0));
}

TEST(SpotBilling, VoluntaryReleaseOfASpotVmStillBillsTheStartedHour) {
  auto cloud = makeSpotCloud();
  // A tenant-initiated drain (e.g. on a preemption notice) forfeits the
  // spot break: the started hour is charged like any on-demand release.
  const VmId id = cloud.acquire(cloud.catalog().byName("m1.small-spot"), 0.0);
  cloud.release(id, 5400.0);
  EXPECT_EQ(cloud.billedHours(id, 5400.0), 2);
  EXPECT_EQ(cloud.instance(id).terminationReason(),
            TerminationReason::Released);
}

TEST(SpotBilling, CrashStillBillsTheStartedHour) {
  auto cloud = makeSpotCloud();
  const VmId id = cloud.acquire(cloud.catalog().byName("m1.small-spot"), 0.0);
  cloud.terminate(id, 5400.0, TerminationReason::Crashed);
  EXPECT_EQ(cloud.billedHours(id, 5400.0), 2);
}

TEST(SpotBilling, PreemptionKillsTheVmUnderItsTenants) {
  auto cloud = makeSpotCloud();
  const VmId id = cloud.acquire(cloud.catalog().byName("m1.large-spot"), 0.0);
  cloud.instance(id).allocateCore(PeId(3));
  // Provider-initiated reclamation does not wait for core releases.
  EXPECT_NO_THROW(cloud.preempt(id, 100.0));
  EXPECT_FALSE(cloud.instance(id).isActive());
}

// --- the provider's preemption-notice API ---

/// Fixed-schedule preemption model: every VM is reclaimed at `at` with a
/// `notice` second warning.
class ScriptedPreemptions final : public PreemptionFaultModel {
 public:
  ScriptedPreemptions(SimTime at, SimTime notice)
      : at_(at), notice_(notice) {}
  [[nodiscard]] SimTime preemptionTime(VmId, SimTime) const override {
    return at_;
  }
  [[nodiscard]] SimTime noticeWindow() const override { return notice_; }

 private:
  SimTime at_;
  SimTime notice_;
};

TEST(PreemptionNotice, NoModelMeansNoPreemptions) {
  auto cloud = makeSpotCloud();
  const VmId id = cloud.acquire(cloud.catalog().byName("m1.small-spot"), 0.0);
  EXPECT_EQ(cloud.preemptionTimeOf(id),
            std::numeric_limits<SimTime>::infinity());
  EXPECT_DOUBLE_EQ(cloud.noticeWindow(), 0.0);
  EXPECT_FALSE(cloud.preemptionImminent(id, 1e9));
}

TEST(PreemptionNotice, OnDemandVmsAreNeverImminent) {
  auto cloud = makeSpotCloud();
  const ScriptedPreemptions model(1000.0, 120.0);
  cloud.setPreemptionModel(&model);
  const VmId od = cloud.acquire(cloud.catalog().byName("m1.small"), 0.0);
  EXPECT_EQ(cloud.preemptionTimeOf(od),
            std::numeric_limits<SimTime>::infinity());
  EXPECT_FALSE(cloud.preemptionImminent(od, 1e9));
}

TEST(PreemptionNotice, ImminentExactlyInsideTheNoticeWindow) {
  auto cloud = makeSpotCloud();
  const ScriptedPreemptions model(1000.0, 120.0);
  cloud.setPreemptionModel(&model);
  const VmId id = cloud.acquire(cloud.catalog().byName("m1.small-spot"), 0.0);
  EXPECT_DOUBLE_EQ(cloud.preemptionTimeOf(id), 1000.0);
  EXPECT_DOUBLE_EQ(cloud.noticeWindow(), 120.0);
  EXPECT_FALSE(cloud.preemptionImminent(id, 879.0));
  EXPECT_TRUE(cloud.preemptionImminent(id, 880.0));  // notice served
  EXPECT_TRUE(cloud.preemptionImminent(id, 1500.0));
}

TEST(TryAcquire, PlainAcquireIsUnaffectedByTheFaultModel) {
  auto cloud = makeCloud();
  const ScriptedAcquisitionFaults faults(~0ull, 300.0);
  cloud.setAcquisitionFaults(&faults);
  // Direct acquire bypasses the control plane's rejections (used by the
  // idealized planners); the VM is ready immediately.
  const VmId id = cloud.acquire(ResourceClassId(0), 50.0);
  EXPECT_TRUE(cloud.instance(id).isReady(50.0));
  EXPECT_EQ(cloud.rejectedAcquisitions(), 0u);
}

}  // namespace
}  // namespace dds
