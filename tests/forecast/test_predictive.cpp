// End-to-end predictive scheduling: the forecast-off bit-identity gate
// (golden fixture + live byte compare against a pre-forecast-shaped
// run), forecast-on seed determinism, the predictive schedulers' effect
// under provisioning delays, and the forecast observability surface.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/obs/jsonl_sink.hpp"
#include "dds/obs/timeline.hpp"
#include "dds/obs/trace_reader.hpp"

namespace dds {
namespace {

/// The forecast smoke scenario: a wave the seasonal model can learn,
/// with real provisioning delays so pre-acquisition has a lag to beat.
ExperimentConfig predictiveConfig() {
  ExperimentConfig cfg;
  cfg.horizon_s = 1.0 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.seed = 2013;
  cfg.elasticity.provisioning_delay_s = 120.0;
  cfg.elasticity.provisioning_delay_per_core_s = 15.0;
  cfg.forecast.model = ForecastModel::HoltWinters;
  cfg.forecast.horizon_intervals = 5;
  cfg.forecast.hw_season_intervals = 30;  // the wave period, in intervals
  return cfg;
}

std::string traceOf(const ExperimentConfig& cfg, SchedulerKind kind) {
  const Dataflow df = makePaperDataflow();
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  (void)SimulationEngine(df, cfg).run(kind, &sink);
  return out.str();
}

double violationSeconds(const ExperimentResult& r, double target,
                        double interval_s) {
  double out = 0.0;
  for (const auto& m : r.run.intervals()) {
    if (m.omega < target) out += interval_s;
  }
  return out;
}

TEST(ForecastOff, TraceBytesUnchangedByTheSubsystem) {
  // The bit-identity gate, live: a run with forecast.model = off must
  // produce byte-identical traces whether or not the rest of the
  // forecast block is populated — the subsystem is inert when off.
  ExperimentConfig base = predictiveConfig();
  base.forecast = ForecastConfig{};
  ASSERT_FALSE(base.forecast.enabled());
  ExperimentConfig decorated = base;
  decorated.forecast.horizon_intervals = 12;
  decorated.forecast.hw_alpha = 0.9;
  decorated.forecast.preacquire_margin = 0.5;
  EXPECT_EQ(traceOf(base, SchedulerKind::GlobalAdaptive),
            traceOf(decorated, SchedulerKind::GlobalAdaptive));
}

std::string readFixture(const std::string& name) {
  const std::string path = std::string(DDS_FORECAST_TESTDATA) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ForecastGolden, ForecastOffTraceByteIdentical) {
  // Golden forecast-off fixture: the same elasticity-heavy scenario with
  // the forecast block defaulted must keep producing exactly the bytes
  // the pre-forecast engine produced (the fixture was generated against
  // it). Any drift here means the subsystem is not inert when off.
  ExperimentConfig cfg = predictiveConfig();
  cfg.forecast = ForecastConfig{};
  cfg.horizon_s = 20.0 * kSecondsPerMinute;
  EXPECT_EQ(traceOf(cfg, SchedulerKind::GlobalAdaptive),
            readFixture("golden_forecast_off_trace.jsonl"));
}

TEST(ForecastGolden, PredictiveTraceByteIdentical) {
  // Forecast-on golden: pins the predictive scheduler's full event
  // stream (forecast + preacquire records included) for one seed.
  ExperimentConfig cfg = predictiveConfig();
  cfg.horizon_s = 20.0 * kSecondsPerMinute;
  EXPECT_EQ(traceOf(cfg, SchedulerKind::GlobalPredictive),
            readFixture("golden_predictive_trace.jsonl"));
}

TEST(ForecastOn, SeedDeterministic) {
  const ExperimentConfig cfg = predictiveConfig();
  const std::string a = traceOf(cfg, SchedulerKind::GlobalPredictive);
  const std::string b = traceOf(cfg, SchedulerKind::GlobalPredictive);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"ev\":\"forecast\""), std::string::npos);
  EXPECT_NE(a.find("\"ev\":\"preacquire\""), std::string::npos);
}

TEST(ForecastOn, PredictiveReducesSloViolationUnderDelay) {
  // The subsystem's reason to exist: with provisioning delays charging
  // real boot lag, pre-acquiring ahead of the forecast wave peak must
  // cut the seconds spent below the Omega target vs reactive.
  const Dataflow df = makePaperDataflow();
  const ExperimentConfig cfg = predictiveConfig();
  const SimulationEngine engine(df, cfg);
  const ExperimentResult reactive =
      engine.run(SchedulerKind::GlobalAdaptive);
  const ExperimentResult predictive =
      engine.run(SchedulerKind::GlobalPredictive);
  EXPECT_LT(
      violationSeconds(predictive, cfg.omega_target, cfg.interval_s),
      violationSeconds(reactive, cfg.omega_target, cfg.interval_s));
  EXPECT_GT(predictive.average_omega, reactive.average_omega);
}

TEST(ForecastOn, MetricsAndTimelineSurfaceTheRun) {
  const Dataflow df = makePaperDataflow();
  const ExperimentConfig cfg = predictiveConfig();
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  const ExperimentResult result =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalPredictive, &sink);

  bool saw_predictions = false;
  bool saw_mape = false;
  bool saw_preacquired = false;
  for (const auto& m : result.metrics) {
    if (m.name == "forecast.predictions" && m.value > 0) {
      saw_predictions = true;
    }
    if (m.name == "sched.preacquired_vms" && m.value > 0) {
      saw_preacquired = true;
    }
    if (m.name == "forecast.mape") saw_mape = true;
  }
  EXPECT_TRUE(saw_predictions);
  EXPECT_TRUE(saw_mape);
  EXPECT_TRUE(saw_preacquired);

  std::istringstream in(out.str());
  const obs::TraceAnalysis a =
      obs::analyzeTrace(obs::readTraceJsonl(in));
  EXPECT_EQ(a.forecast_model, "holt-winters");
  EXPECT_GT(a.forecast_samples, 0);
  // The wave is exactly periodic: after warm-up the seasonal model is
  // near-exact, so the whole-run MAPE stays modest even with the
  // warm-up season included.
  EXPECT_LT(a.forecast_mape, 0.25);
  EXPECT_EQ(a.preacquires_beat + a.preacquires_missed,
            static_cast<std::int64_t>(a.preacquires.size()));
  EXPECT_GT(a.preacquires_beat, 0);
}

TEST(ForecastOn, SchedulerNamesCarryThePredictiveSuffix) {
  const Dataflow df = makePaperDataflow();
  const ExperimentConfig cfg = predictiveConfig();
  const ExperimentResult r =
      SimulationEngine(df, cfg).run(SchedulerKind::LocalPredictive);
  EXPECT_NE(r.scheduler_name.find("-predictive"), std::string::npos);
}

TEST(ForecastConfigValidation, RejectsBadKnobsAndEventBackend) {
  ExperimentConfig cfg = predictiveConfig();
  cfg.forecast.horizon_intervals = 0;
  cfg.forecast.ewma_alpha = 2.0;
  cfg.forecast.hw_season_intervals = 1;
  const auto errors = cfg.validationErrors();
  EXPECT_GE(errors.size(), 3u);

  ExperimentConfig ev = predictiveConfig();
  ev.backend = SimBackend::Event;
  ev.elasticity = ElasticityConfig{};  // delays are fluid-only too
  bool saw_forecast_gate = false;
  for (const auto& e : ev.validationErrors()) {
    if (e.find("forecasting") != std::string::npos) {
      saw_forecast_gate = true;
    }
  }
  EXPECT_TRUE(saw_forecast_gate);
}

}  // namespace
}  // namespace dds
