#include "dds/forecast/forecaster.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dds/common/error.hpp"

namespace dds {
namespace {

TEST(NaiveForecaster, ZeroBeforeFirstObservation) {
  const NaiveForecaster f;
  EXPECT_EQ(f.observationCount(), 0);
  for (const double r : f.forecast(4)) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(NaiveForecaster, HoldsLastValueFlat) {
  NaiveForecaster f;
  f.observe(3.0);
  f.observe(7.5);
  EXPECT_EQ(f.observationCount(), 2);
  const auto fc = f.forecast(3);
  ASSERT_EQ(fc.size(), 3u);
  for (const double r : fc) EXPECT_DOUBLE_EQ(r, 7.5);
}

TEST(NaiveForecaster, RejectsNegativeRateAndZeroHorizon) {
  NaiveForecaster f;
  EXPECT_THROW(f.observe(-1.0), PreconditionError);
  EXPECT_THROW(f.forecast(0), PreconditionError);
}

TEST(EwmaForecaster, FirstObservationSetsTheLevel) {
  EwmaForecaster f(0.5);
  f.observe(10.0);
  EXPECT_DOUBLE_EQ(f.forecast(1)[0], 10.0);
}

TEST(EwmaForecaster, BlendsTowardNewObservations) {
  EwmaForecaster f(0.5);
  f.observe(10.0);
  f.observe(20.0);  // level = 0.5*20 + 0.5*10 = 15
  const auto fc = f.forecast(2);
  EXPECT_DOUBLE_EQ(fc[0], 15.0);
  EXPECT_DOUBLE_EQ(fc[1], 15.0);  // held flat over the horizon
}

TEST(EwmaForecaster, RejectsBadAlpha) {
  EXPECT_THROW(EwmaForecaster(0.0), PreconditionError);
  EXPECT_THROW(EwmaForecaster(1.5), PreconditionError);
}

TEST(HoltWinters, FallsBackToEwmaBeforeOneSeason) {
  HoltWintersForecaster f(0.5, 0.05, 0.3, 4);
  EXPECT_FALSE(f.seasonal());
  f.observe(10.0);
  f.observe(20.0);
  EXPECT_FALSE(f.seasonal());
  EXPECT_DOUBLE_EQ(f.forecast(1)[0], 15.0);  // EWMA level, same alpha
}

TEST(HoltWinters, InitializesAfterOneFullSeason) {
  HoltWintersForecaster f(0.3, 0.05, 0.3, 4);
  for (const double r : {8.0, 12.0, 10.0, 10.0}) f.observe(r);
  EXPECT_TRUE(f.seasonal());
  // level = season mean (10), trend = 0, seasonal = deviations; the
  // next-step prediction replays the first warm-up slot's deviation.
  EXPECT_DOUBLE_EQ(f.forecast(1)[0], 8.0);
}

TEST(HoltWinters, ConvergesOnPurePeriodicProfile) {
  // The satellite acceptance for the forecasting subsystem: on an
  // exactly periodic profile the additive model's one-step error drops
  // to ~0 once the seasonal state has initialized from the first
  // season — level stays constant, trend stays zero, and the seasonal
  // terms capture the wave exactly.
  constexpr int kSeason = 24;
  const auto rate = [](std::int64_t i) {
    return 10.0 +
           4.0 * std::sin(2.0 * std::numbers::pi *
                          static_cast<double>(i % kSeason) / kSeason);
  };
  HoltWintersForecaster f(0.3, 0.05, 0.3, kSeason);
  std::int64_t i = 0;
  for (; i < 3 * kSeason; ++i) f.observe(rate(i));
  ASSERT_TRUE(f.seasonal());
  double worst = 0.0;
  for (std::int64_t k = 0; k < 2 * kSeason; ++k, ++i) {
    worst = std::max(worst, std::abs(f.forecast(1)[0] - rate(i)));
    f.observe(rate(i));
  }
  EXPECT_LT(worst, 1e-9);
}

TEST(HoltWinters, MultiStepForecastTracksTheSeason) {
  constexpr int kSeason = 6;
  const auto rate = [](std::int64_t i) {
    return 10.0 + ((i % kSeason) == 2 ? 5.0 : 0.0);
  };
  HoltWintersForecaster f(0.3, 0.05, 0.3, kSeason);
  std::int64_t i = 0;
  for (; i < 4 * kSeason; ++i) f.observe(rate(i));
  const auto fc = f.forecast(kSeason);
  for (int k = 0; k < kSeason; ++k) {
    EXPECT_NEAR(fc[static_cast<std::size_t>(k)], rate(i + k), 1e-9) << k;
  }
}

TEST(HoltWinters, PredictionsClampAtZero) {
  // A deep trough below zero in the additive decomposition must not
  // produce a negative rate.
  HoltWintersForecaster f(1.0, 0.0, 1.0, 2);
  f.observe(0.0);
  f.observe(10.0);
  f.observe(0.0);
  for (const double r : f.forecast(4)) EXPECT_GE(r, 0.0);
}

TEST(HoltWinters, RejectsBadParams) {
  EXPECT_THROW(HoltWintersForecaster(0.0, 0.1, 0.1, 4), PreconditionError);
  EXPECT_THROW(HoltWintersForecaster(0.3, -0.1, 0.1, 4), PreconditionError);
  EXPECT_THROW(HoltWintersForecaster(0.3, 0.1, 1.1, 4), PreconditionError);
  EXPECT_THROW(HoltWintersForecaster(0.3, 0.1, 0.1, 1), PreconditionError);
}

TEST(ForecastErrorTracker, MapeAndBias) {
  ForecastErrorTracker t;
  t.record(12.0, 10.0);  // +20% error, bias +2
  t.record(8.0, 10.0);   // -20% error, bias -2
  EXPECT_EQ(t.count(), 2);
  EXPECT_DOUBLE_EQ(t.mape(), 0.2);
  EXPECT_DOUBLE_EQ(t.bias(), 0.0);
}

TEST(ForecastErrorTracker, SkipsNearZeroRealizedRatesInMape) {
  ForecastErrorTracker t;
  t.record(5.0, 0.0);    // bias only; a 0-denominator APE would explode
  t.record(11.0, 10.0);  // 10%
  EXPECT_DOUBLE_EQ(t.mape(), 0.1);
  EXPECT_DOUBLE_EQ(t.bias(), 3.0);
}

TEST(ForecastErrorTracker, EmptyTrackerReportsZero) {
  const ForecastErrorTracker t;
  EXPECT_EQ(t.count(), 0);
  EXPECT_DOUBLE_EQ(t.mape(), 0.0);
  EXPECT_DOUBLE_EQ(t.bias(), 0.0);
}

// --- registry ---

TEST(ForecastRegistry, NamesRoundTrip) {
  for (const ForecastModel model : allForecastModels()) {
    EXPECT_EQ(parseForecastModel(forecastModelName(model)), model);
  }
}

TEST(ForecastRegistry, KnowsEveryModelOnce) {
  EXPECT_EQ(allForecastModels().size(), 4u);
  EXPECT_EQ(forecastModelName(ForecastModel::Off), "off");
  EXPECT_EQ(forecastModelName(ForecastModel::Naive), "naive");
  EXPECT_EQ(forecastModelName(ForecastModel::Ewma), "ewma");
  EXPECT_EQ(forecastModelName(ForecastModel::HoltWinters), "holt-winters");
}

TEST(ForecastRegistry, RejectsUnknownNames) {
  EXPECT_THROW(parseForecastModel("oracle"), PreconditionError);
  EXPECT_THROW(parseForecastModel(""), PreconditionError);
}

TEST(ForecastRegistry, FactoryBuildsEveryRealModel) {
  ForecastOptions opts;
  for (const ForecastModel model : allForecastModels()) {
    if (model == ForecastModel::Off) {
      EXPECT_THROW((void)makeForecaster(model, opts), PreconditionError);
      continue;
    }
    const auto f = makeForecaster(model, opts);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->name(), forecastModelName(model));
    EXPECT_EQ(f->observationCount(), 0);
  }
}

TEST(ForecastRegistry, FactoryAppliesOptions) {
  ForecastOptions opts;
  opts.ewma_alpha = 1.0;  // degenerate EWMA: tracks the last value
  const auto f = makeForecaster(ForecastModel::Ewma, opts);
  f->observe(4.0);
  f->observe(9.0);
  EXPECT_DOUBLE_EQ(f->forecast(1)[0], 9.0);
}

}  // namespace
}  // namespace dds
