#include "dds/obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dds/common/rng.hpp"
#include "dds/common/stats.hpp"

namespace dds::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry registry;
  registry.counter("a").inc();
  registry.counter("a").inc(3);
  EXPECT_EQ(registry.counter("a").value(), 4u);
  EXPECT_EQ(registry.counter("fresh").value(), 0u);
}

TEST(MetricsRegistry, GaugesAreLastWriteWins) {
  MetricsRegistry registry;
  registry.gauge("g").set(1.5);
  registry.gauge("g").set(-2.0);
  EXPECT_EQ(registry.gauge("g").value(), -2.0);
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  MetricsRegistry registry;
  Counter& c = registry.counter("stable");
  // Creating many other instruments must not invalidate the reference.
  for (int i = 0; i < 100; ++i) {
    const std::string suffix = std::to_string(i);
    registry.counter(std::string("c") + suffix).inc();
    registry.histogram(std::string("h") + suffix).observe(0.0);
  }
  c.inc(7);
  EXPECT_EQ(registry.counter("stable").value(), 7u);
}

TEST(MetricsRegistry, HistogramPercentilesMatchCommonStats) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("x");
  Rng rng(99);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.0, 10.0);
    samples.push_back(v);
    h.observe(v);
  }
  // Exact equality: the histogram must use the same linear-interpolation
  // percentile as dds::percentile, not an approximation.
  EXPECT_EQ(h.percentile(50.0), percentile(samples, 50.0));
  EXPECT_EQ(h.percentile(95.0), percentile(samples, 95.0));
  EXPECT_EQ(h.percentile(99.0), percentile(samples, 99.0));
  EXPECT_EQ(h.stats().count(), samples.size());

  RunningStats reference;
  for (const double v : samples) reference.add(v);
  EXPECT_EQ(h.stats().mean(), reference.mean());
  EXPECT_EQ(h.stats().min(), reference.min());
  EXPECT_EQ(h.stats().max(), reference.max());
}

TEST(MetricsRegistry, EmptyHistogramPercentileIsZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.histogram("empty").percentile(95.0), 0.0);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAcrossKinds) {
  MetricsRegistry registry;
  registry.histogram("m.hist").observe(2.0);
  registry.histogram("m.hist").observe(4.0);
  registry.counter("z.counter").inc(5);
  registry.gauge("a.gauge").set(1.25);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[0].kind, MetricSample::Kind::Gauge);
  EXPECT_EQ(snap[0].value, 1.25);
  EXPECT_EQ(snap[1].name, "m.hist");
  EXPECT_EQ(snap[1].kind, MetricSample::Kind::Histogram);
  EXPECT_EQ(snap[1].count, 2u);
  EXPECT_EQ(snap[1].mean, 3.0);
  EXPECT_EQ(snap[1].min, 2.0);
  EXPECT_EQ(snap[1].max, 4.0);
  EXPECT_EQ(snap[2].name, "z.counter");
  EXPECT_EQ(snap[2].kind, MetricSample::Kind::Counter);
  EXPECT_EQ(snap[2].count, 5u);
  EXPECT_EQ(snap[2].value, 5.0);
}

}  // namespace
}  // namespace dds::obs
