// Engine-level observability: determinism of streamed traces, timeline
// analysis of real runs, and the metrics snapshot in ExperimentResult.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "dds/core/engine.hpp"
#include "dds/dataflow/standard_graphs.hpp"
#include "dds/obs/jsonl_sink.hpp"
#include "dds/obs/timeline.hpp"
#include "dds/obs/trace_reader.hpp"

namespace dds {
namespace {

ExperimentConfig shortConfig() {
  ExperimentConfig cfg;
  cfg.horizon_s = 0.5 * kSecondsPerHour;
  cfg.workload.mean_rate = 10.0;
  cfg.workload.profile = ProfileKind::PeriodicWave;
  cfg.workload.infra_variability = true;
  cfg.seed = 77;
  return cfg;
}

std::string runTraced(const ExperimentConfig& cfg, SchedulerKind kind) {
  const Dataflow df = makePaperDataflow();
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  (void)SimulationEngine(df, cfg).run(kind, &sink);
  return out.str();
}

TEST(EngineTracing, SameSeedAndConfigYieldByteIdenticalTraces) {
  const std::string a = runTraced(shortConfig(), SchedulerKind::GlobalAdaptive);
  const std::string b = runTraced(shortConfig(), SchedulerKind::GlobalAdaptive);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(EngineTracing, DifferentSeedsDiverge) {
  ExperimentConfig other = shortConfig();
  other.seed = 78;
  EXPECT_NE(runTraced(shortConfig(), SchedulerKind::GlobalAdaptive),
            runTraced(other, SchedulerKind::GlobalAdaptive));
}

TEST(EngineTracing, TraceStartsWithHeaderAndAnalyzes) {
  const ExperimentConfig cfg = shortConfig();
  std::istringstream in(runTraced(cfg, SchedulerKind::GlobalAdaptive));
  const auto events = obs::readTraceJsonl(in);
  ASSERT_FALSE(events.empty());
  ASSERT_TRUE(std::holds_alternative<obs::RunHeaderEvent>(events.front()));
  const auto& header = std::get<obs::RunHeaderEvent>(events.front());
  EXPECT_EQ(header.scheduler, "global");
  EXPECT_EQ(header.seed, cfg.seed);
  EXPECT_EQ(header.backend, "fluid");

  const obs::TraceAnalysis a = obs::analyzeTrace(events);
  ASSERT_TRUE(a.has_header);
  // One timeline row per adaptation interval of the half-hour horizon.
  EXPECT_EQ(a.rows.size(),
            static_cast<std::size_t>(cfg.horizon_s / cfg.interval_s));
  EXPECT_GT(a.average_omega, 0.0);
  EXPECT_GT(a.final_cost, 0.0);

  // The analysis must agree with the engine's own result.
  const Dataflow df = makePaperDataflow();
  const ExperimentResult r =
      SimulationEngine(df, cfg).run(SchedulerKind::GlobalAdaptive);
  EXPECT_NEAR(a.average_omega, r.average_omega, 1e-12);
  EXPECT_NEAR(a.average_gamma, r.average_gamma, 1e-12);
  EXPECT_NEAR(a.final_cost, r.total_cost, 1e-12);
  EXPECT_NEAR(a.theta, r.theta, 1e-12);
  EXPECT_EQ(a.peak_vms, static_cast<double>(r.peak_vms));
  EXPECT_EQ(a.peak_cores, static_cast<double>(r.peak_cores));
}

TEST(EngineTracing, UntracedRunMatchesTracedRunResults) {
  const Dataflow df = makePaperDataflow();
  const SimulationEngine engine(df, shortConfig());
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  const ExperimentResult traced =
      engine.run(SchedulerKind::GlobalAdaptive, &sink);
  const ExperimentResult untraced = engine.run(SchedulerKind::GlobalAdaptive);
  // Tracing must observe the run, never steer it.
  EXPECT_EQ(traced.average_omega, untraced.average_omega);
  EXPECT_EQ(traced.average_gamma, untraced.average_gamma);
  EXPECT_EQ(traced.total_cost, untraced.total_cost);
  EXPECT_EQ(traced.theta, untraced.theta);
  EXPECT_EQ(traced.peak_vms, untraced.peak_vms);
}

TEST(EngineTracing, ResultCarriesMetricsSnapshot) {
  const Dataflow df = makePaperDataflow();
  const ExperimentResult r =
      SimulationEngine(df, shortConfig()).run(SchedulerKind::GlobalAdaptive);
  ASSERT_FALSE(r.metrics.empty());
  const auto find = [&](const std::string& name) {
    const auto it =
        std::find_if(r.metrics.begin(), r.metrics.end(),
                     [&](const obs::MetricSample& m) {
                       return m.name == name;
                     });
    EXPECT_NE(it, r.metrics.end()) << name;
    return it;
  };
  const auto omega = find("interval.omega");
  EXPECT_EQ(omega->kind, obs::MetricSample::Kind::Histogram);
  EXPECT_EQ(omega->count, r.run.intervals().size());
  EXPECT_NEAR(omega->mean, r.average_omega, 1e-12);
  EXPECT_EQ(find("run.intervals")->value,
            static_cast<double>(r.run.intervals().size()));
  EXPECT_NEAR(find("cloud.total_cost")->value, r.total_cost, 1e-12);
  EXPECT_TRUE(std::is_sorted(
      r.metrics.begin(), r.metrics.end(),
      [](const obs::MetricSample& a, const obs::MetricSample& b) {
        return a.name < b.name;
      }));
}

TEST(EngineTracing, EventBackendTracesAndAnalyzes) {
  ExperimentConfig cfg = shortConfig();
  cfg.backend = SimBackend::Event;
  cfg.workload.infra_variability = false;
  std::istringstream in(runTraced(cfg, SchedulerKind::GlobalAdaptive));
  const auto events = obs::readTraceJsonl(in);
  const obs::TraceAnalysis a = obs::analyzeTrace(events);
  ASSERT_TRUE(a.has_header);
  EXPECT_EQ(a.header.backend, "event");
  EXPECT_EQ(a.rows.size(),
            static_cast<std::size_t>(cfg.horizon_s / cfg.interval_s));
}

}  // namespace
}  // namespace dds
